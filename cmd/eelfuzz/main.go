// Command eelfuzz runs the differential-fuzzing harness: randomized
// programs for the selected machine (-isa sparc or mips; a
// generalization of internal/progen) are checked against differential
// oracles — decode/encode round-trip, interpreter vs
// translation-cache lockstep, and (SPARC only) original vs edited
// behavioral equivalence.  Failures are shrunk to a minimal
// configuration and generalized before being reported.
//
// Usage:
//
//	eelfuzz [-n 1000] [-seed 1] [-isa sparc|mips]
//	        [-oracle roundtrip,lockstep,edited]
//	        [-max-steps N] [-no-shrink] [-v] [-dump SEED]
//
// Exit status is non-zero when any oracle is violated.  A violation
// report includes the failing Config one-liner; -dump regenerates
// that program's assembly source for inspection.
package main

import (
	"flag"
	"fmt"
	"os"

	"eel/internal/fuzz"
)

func main() {
	n := flag.Int("n", 1000, "number of generated programs")
	seed := flag.Int64("seed", 1, "master seed (whole run reproduces from it)")
	oracle := flag.String("oracle", "", "comma-separated oracle subset: roundtrip,lockstep,edited (default all; edited is sparc-only)")
	isa := flag.String("isa", "sparc", "target machine: sparc or mips")
	maxSteps := flag.Uint64("max-steps", 50_000_000, "emulator step limit per execution")
	noShrink := flag.Bool("no-shrink", false, "report failures without shrinking")
	verbose := flag.Bool("v", false, "log every iteration")
	dump := flag.Int64("dump", -1, "print the generated source for this seed (default config) and exit")
	routines := flag.Int("routines", 0, "with -dump: override routine count")
	flag.Parse()

	if *dump >= 0 {
		cfg := fuzz.DefaultConfig(*dump)
		cfg.Seed = *dump
		cfg.ISA = *isa
		if *routines > 0 {
			cfg.Routines = *routines
		}
		p, err := fuzz.Generate(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "eelfuzz:", err)
			os.Exit(2)
		}
		fmt.Print(p.Source)
		return
	}

	rep := fuzz.Run(fuzz.Options{
		N:        *n,
		Seed:     *seed,
		MaxSteps: *maxSteps,
		Oracles:  *oracle,
		ISA:      *isa,
		Log:      os.Stderr,
		Verbose:  *verbose,
		NoShrink: *noShrink,
	})

	fmt.Printf("eelfuzz: %d programs generated (%d iterations), %d instructions interpreted, %d failure(s)\n",
		rep.Programs, rep.Iterations, rep.Insts, len(rep.Failures))
	for _, f := range rep.Failures {
		fmt.Printf("\nFAILURE (iteration %d): %s\n", f.Iteration, f.Cfg)
		for _, v := range f.Violations {
			fmt.Printf("  %s\n", v)
		}
		if f.Generalization != "" {
			fmt.Printf("  %s\n", f.Generalization)
		}
	}
	if !rep.OK() {
		os.Exit(1)
	}
}
