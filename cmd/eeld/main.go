// Command eeld is the EEL analysis-and-rewriting daemon: a
// long-running HTTP service answering analyze, instrument, and verify
// jobs over the wire protocol in internal/eeld, backed by the shared
// in-memory analysis cache and — when -cache-dir is given — a
// persistent content-addressed per-routine disk store that survives
// restarts and is shared by every client.
//
// Admission is bounded: at most -queue requests wait, dispatched to
// -workers executors by a weighted round robin keyed on the
// X-Eel-Client header, each request subject to -timeout.  SIGTERM and
// SIGINT trigger a graceful drain: admission stops (503), queued and
// in-flight jobs finish, then the process exits.
//
// Observability: every request carries (or is given) an X-Eel-Trace
// ID, spans cover queue wait/handler/pipeline, and one structured log
// line per request goes to stderr.  /metrics serves the telemetry
// registry in Prometheus text format, /debug/flight the flight
// recorder's recent notable events, and SIGQUIT dumps the flight
// record to stderr without stopping the daemon.
//
// Usage:
//
//	eeld [-addr HOST:PORT] [-cache-dir DIR] [-cache-entries N]
//	     [-cache-bytes N] [-mem-entries N] [-workers N] [-queue N]
//	     [-timeout D] [-drain-timeout D] [-max-binary N] [-j N]
//	     [-log] [-metrics] [-trace FILE] [-pprof ADDR]
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eel/internal/eeld"
	"eel/internal/obs"
	"eel/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8723", "listen address")
	cacheDir := flag.String("cache-dir", "", "persistent analysis cache directory (empty = memory only)")
	cacheEntries := flag.Int("cache-entries", 0, "disk cache entry bound (0 = default)")
	cacheBytes := flag.Int64("cache-bytes", 0, "disk cache byte bound (0 = default)")
	memEntries := flag.Int("mem-entries", 0, "in-memory cache entry bound (0 = unbounded)")
	workers := flag.Int("workers", 0, "concurrent job executors (0 = default)")
	queue := flag.Int("queue", 0, "admission queue bound (0 = default)")
	timeout := flag.Duration("timeout", 0, "per-request timeout, queue wait included (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown bound on SIGTERM")
	maxBinary := flag.Int64("max-binary", 0, "largest accepted binary in bytes (0 = default)")
	jobs := flag.Int("j", 0, "per-job analysis worker count (0 = GOMAXPROCS)")
	logReq := flag.Bool("log", true, "log one structured line per request to stderr")
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	tool, err := tf.Start()
	if err != nil {
		fatal(err)
	}
	defer tool.Close(os.Stderr)

	var logger *slog.Logger
	if *logReq {
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv, err := eeld.New(eeld.Config{
		Addr:            *addr,
		CacheDir:        *cacheDir,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		MemEntries:      *memEntries,
		Workers:         *workers,
		PipelineWorkers: *jobs,
		MaxQueue:        *queue,
		RequestTimeout:  *timeout,
		MaxBinaryBytes:  *maxBinary,
		Logger:          logger,
	})
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "eeld: listening on %s", srv.Addr())
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, ", cache %s", *cacheDir)
	}
	fmt.Fprintln(os.Stderr)

	// SIGQUIT dumps the flight recorder and keeps serving — the
	// "what just happened" lever for a daemon that must stay up.
	sigq := make(chan os.Signal, 1)
	signal.Notify(sigq, syscall.SIGQUIT)
	go func() {
		for range sigq {
			obs.ActiveFlight().Dump(os.Stderr)
		}
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "eeld: %v, draining\n", sig)
	case err := <-srv.ServeErr():
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintln(os.Stderr, "eeld: drained, exiting")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eeld:", err)
	os.Exit(1)
}
