// Command eelctl is the thin client for the eeld daemon.  Each
// subcommand maps to one wire-protocol endpoint:
//
//	eelctl analyze    [flags] [input]   whole-program analysis summary
//	eelctl instrument [flags] [input]   qpt-instrument, write edited binary
//	eelctl verify     [flags] [input]   instrument and compare under the emulator
//	eelctl stats                        daemon counters and cache occupancy
//	eelctl health                       liveness probe
//
// Inputs come from a file argument or are generated client-side with
// -gen/-gen-routines (a progen workload serialized over the wire), so
// a daemon round trip needs no binaries on disk.  -client and -weight
// name this client to the daemon's fairness scheduler.
//
// Usage:
//
//	eelctl [-server URL] [-client NAME] [-weight N] <subcommand> [flags] [input]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"eel/internal/binfile"
	"eel/internal/eeld"
	"eel/internal/toolmain"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:8723", "eeld base URL")
	clientName := flag.String("client", "eelctl", "client name for the fairness scheduler")
	weight := flag.Int("weight", 0, "scheduling weight (0 = server default)")
	timeout := flag.Duration("timeout", 2*time.Minute, "client-side request timeout")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}

	client := &eeld.Client{Base: *server, Name: *clientName, Weight: *weight}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	sub, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch sub {
	case "analyze":
		err = cmdAnalyze(ctx, client, args)
	case "instrument":
		err = cmdInstrument(ctx, client, args)
	case "verify":
		err = cmdVerify(ctx, client, args)
	case "stats":
		err = cmdStats(ctx, client)
	case "health":
		err = client.Health(ctx)
		if err == nil {
			fmt.Println("ok")
		}
	default:
		fmt.Fprintf(os.Stderr, "eelctl: unknown subcommand %q\n", sub)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "eelctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: eelctl [-server URL] [-client NAME] [-weight N] <subcommand> [flags] [input]

subcommands:
  analyze     whole-program analysis summary (-list for per-routine detail)
  instrument  instrument with qpt counters, write the edited binary (-o)
  verify      instrument and run both versions under the emulator
  stats       daemon counters and cache occupancy
  health      liveness probe

inputs: a container file argument, or -gen SEED [-gen-routines N] to
generate a progen workload client-side.`)
	flag.PrintDefaults()
}

// inputBytes resolves a subcommand's input binary via the shared
// toolmain flags (-gen / file argument) and serializes it for the wire.
func inputBytes(com *toolmain.Common, arg string) ([]byte, string, error) {
	stop, err := com.Start(os.Stderr)
	if err != nil {
		return nil, "", err
	}
	defer stop()
	f, name, err := com.OpenInput(arg)
	if err != nil {
		return nil, "", err
	}
	data, err := binfile.Write(f)
	if err != nil {
		return nil, "", err
	}
	return data, name, nil
}

func cacheLine(c eeld.CacheStats) string {
	return fmt.Sprintf("cache: %d hits (%d from disk), %d misses (%.1f%% hit rate)",
		c.Hits, c.DiskHits, c.Misses, 100*c.HitRate)
}

func cmdAnalyze(ctx context.Context, client *eeld.Client, args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	list := fs.Bool("list", false, "print per-routine CFG statistics")
	noLiveness := fs.Bool("no-liveness", false, "skip liveness analysis")
	com := toolmain.AddCommon(fs)
	fs.Parse(args)

	bin, name, err := inputBytes(com, fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := client.Analyze(ctx, &eeld.AnalyzeRequest{Binary: bin, NoLiveness: *noLiveness})
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d routines (%d hidden), %d errors in %s\n",
		name, resp.Routines, resp.Hidden, resp.Errors,
		time.Duration(resp.WallNS))
	fmt.Println(cacheLine(resp.Cache))
	if *list {
		for _, ri := range resp.List {
			tag := ""
			if ri.Hidden {
				tag = " hidden"
			}
			if ri.Error != "" {
				fmt.Printf("  %-24s %#08x..%#08x%s ERROR %s\n", ri.Name, ri.Start, ri.End, tag, ri.Error)
				continue
			}
			fmt.Printf("  %-24s %#08x..%#08x%s %d blocks, %d edges, %d loops\n",
				ri.Name, ri.Start, ri.End, tag, ri.Blocks, ri.Edges, ri.Loops)
		}
	}
	return nil
}

func cmdInstrument(ctx context.Context, client *eeld.Client, args []string) error {
	fs := flag.NewFlagSet("instrument", flag.ExitOnError)
	out := fs.String("o", "", "output path for the edited binary (default INPUT.qpt)")
	mode := fs.String("mode", "full", "instrumentation mode: full or light")
	com := toolmain.AddCommon(fs)
	fs.Parse(args)

	bin, name, err := inputBytes(com, fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := client.Instrument(ctx, &eeld.InstrumentRequest{Binary: bin, Mode: *mode})
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = name + ".qpt"
	}
	if err := os.WriteFile(path, resp.Binary, 0o644); err != nil {
		return err
	}
	fmt.Printf("%s: instrumented %d routines (%d hidden), %d counters in %s\n",
		name, resp.Routines, resp.Hidden, resp.Counters, time.Duration(resp.WallNS))
	fmt.Println(cacheLine(resp.Cache))
	fmt.Printf("wrote %s (%d bytes)\n", path, len(resp.Binary))
	return nil
}

func cmdVerify(ctx context.Context, client *eeld.Client, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	maxSteps := fs.Uint64("max-steps", 0, "emulator step bound per run (0 = server default)")
	com := toolmain.AddCommon(fs)
	fs.Parse(args)

	bin, name, err := inputBytes(com, fs.Arg(0))
	if err != nil {
		return err
	}
	resp, err := client.Verify(ctx, &eeld.VerifyRequest{Binary: bin, MaxSteps: *maxSteps})
	if err != nil {
		return err
	}
	fmt.Printf("%s: exit %d vs %d, %d vs %d insts, %d output bytes equal=%v in %s\n",
		name, resp.OrigExit, resp.EditedExit, resp.OrigInsts, resp.EditedInsts,
		resp.OutputBytes, resp.OutputEqual, time.Duration(resp.WallNS))
	fmt.Println(cacheLine(resp.Cache))
	if !resp.OK {
		return fmt.Errorf("verification FAILED: %s", resp.Divergence)
	}
	fmt.Println("verification OK")
	return nil
}

func cmdStats(ctx context.Context, client *eeld.Client) error {
	resp, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(resp)
}
