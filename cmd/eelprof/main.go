// Command eelprof is a qpt-style execution profiler built on the
// bundled SPARC emulator: it runs a program (a file, or a progen
// workload with -gen) with per-pc profiling hooks enabled, analyzes
// the executable on the concurrent pipeline, and prints a
// deterministic hot-routine / hot-block profile with source-symbol
// attribution from the container's symbol table — the observability
// counterpart to qpt2's instrumentation-based edge profile, with no
// editing of the program at all.
//
// Usage:
//
//	eelprof [-gen seed] [-gen-routines N] [-top N]
//	        [-engine interp|translated|chained|routine]
//	        [-jitstats] [-j N] [-metrics] [-trace FILE] [-pprof ADDR] [input]
//
// Because profiling hooks record per-pc counts that the routine tier's
// whole-routine programs do not maintain, -engine=routine degrades to
// the chained engine here; the flag still exists so scripts can pass a
// uniform engine selection to every tool.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"eel/internal/binfile"
	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/pipeline"
	"eel/internal/sim"
	"eel/internal/telemetry"
	"eel/internal/toolmain"
)

func main() {
	top := flag.Int("top", 10, "rows per table")
	maxSteps := flag.Uint64("max-steps", 500_000_000, "emulator step limit")
	jitstats := flag.Bool("jitstats", false, "print chain/IC hit rates and trace counters")
	eng := toolmain.AddEngine(flag.CommandLine)
	com := toolmain.AddCommon(flag.CommandLine)
	flag.Parse()
	engine, err := eng.Name()
	check(err)

	stop, err := com.Start(os.Stderr)
	check(err)

	f, name, err := com.OpenInput(flag.Arg(0))
	check(err)

	out, err := profileRun(f, name, engine, *jitstats, com.Jobs, *top, *maxSteps)
	check(err)
	fmt.Print(out)

	check(stop())
}

// profileRun executes f under the profiling emulator, analyzes it,
// and renders the profile report.  It is deterministic for a given
// input: the same program produces byte-identical output under either
// execution engine and any worker count.
func profileRun(f *binfile.File, name, engine string, jitstats bool, jobs, top int, maxSteps uint64) (string, error) {
	cpu := sim.LoadFile(f, nil)
	toolmain.ConfigureEngine(cpu, engine)
	cpu.Decoder().AttachTelemetry(telemetry.Default())
	prof := cpu.EnableProfile()
	if err := cpu.Run(maxSteps); err != nil {
		return "", fmt.Errorf("execution: %w", err)
	}
	prof.Publish(telemetry.Default())

	e, err := core.NewExecutable(f)
	if err != nil {
		return "", err
	}
	if err := e.ReadContents(); err != nil {
		return "", err
	}
	res, err := pipeline.AnalyzeAll(e, pipeline.Options{
		Workers:      jobs,
		NoLiveness:   true,
		NoDominators: true,
		NoLoops:      true,
	})
	if err != nil {
		return "", err
	}
	return report(name, cpu, prof, res, top, jitstats), nil
}

// row is one attributed profile entry.
type row struct {
	name   string
	lo, hi uint32
	count  uint64
	insts  int
}

// report renders the hot-routine and hot-block tables.
func report(name string, cpu *sim.CPU, prof *sim.Profile, res *pipeline.Result, top int, jitstats bool) string {
	var b strings.Builder
	total := cpu.InstCount
	fmt.Fprintf(&b, "eelprof: %s: exit %d after %d instructions (%d annulled)\n",
		name, cpu.ExitCode, total, cpu.AnnulCount)
	takenPct := 0.0
	if prof.Branches > 0 {
		takenPct = 100 * float64(prof.BranchesTaken) / float64(prof.Branches)
	}
	fmt.Fprintf(&b, "branches: %d executed, %d taken (%.1f%%); traps: %d\n",
		prof.Branches, prof.BranchesTaken, takenPct, prof.Traps)
	k := cpu.Counters()
	fmt.Fprintf(&b, "jit: %d superblocks built, %d flushes, %d deopt steps\n",
		k.Builds, k.Flushes, k.Deopts)
	if jitstats {
		// Also prefixed "jit:" so engine-sensitive lines stay strippable
		// when comparing reports across engines.
		fmt.Fprintf(&b, "jit: chain-hit %.1f%% (%d/%d), ic-hit %.1f%% (%d/%d), victim-hits %d, traces %d built / %d retired\n",
			hitPct(k.ChainHits, k.ChainMisses), k.ChainHits, k.ChainHits+k.ChainMisses,
			hitPct(k.ICHits, k.ICMisses), k.ICHits, k.ICHits+k.ICMisses,
			k.VictimHits, k.Traces, k.TracesRetired)
	}

	var routines []row
	var blocks []row
	for _, a := range res.Analyses {
		if a.Err != nil {
			continue
		}
		r := a.Routine
		var rc uint64
		for pc := r.Start; pc < r.End; pc += 4 {
			rc += prof.PCCount(pc)
		}
		if rc > 0 {
			routines = append(routines, row{name: r.Name, lo: r.Start, hi: r.End, count: rc})
		}
		for _, blk := range a.Graph.Blocks {
			if blk.Kind != cfg.KindNormal && blk.Kind != cfg.KindDelaySlot {
				continue
			}
			var bc uint64
			for _, in := range blk.Insts {
				bc += prof.PCCount(in.Addr)
			}
			if bc == 0 {
				continue
			}
			last := blk.Insts[len(blk.Insts)-1].Addr
			blocks = append(blocks, row{
				name:  fmt.Sprintf("%s+%#x B%d", r.Name, blk.Start()-r.Start, blk.ID),
				lo:    blk.Start(),
				hi:    last + 4,
				count: bc,
				insts: len(blk.Insts),
			})
		}
	}
	byHotness := func(rows []row) {
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].count != rows[j].count {
				return rows[i].count > rows[j].count
			}
			return rows[i].lo < rows[j].lo
		})
	}
	byHotness(routines)
	byHotness(blocks)

	fmt.Fprintf(&b, "\nhot routines (top %d of %d):\n", min(top, len(routines)), len(routines))
	fmt.Fprintf(&b, "  %%time      insts  routine\n")
	for i, r := range routines {
		if i >= top {
			break
		}
		fmt.Fprintf(&b, "  %5.1f%% %10d  %-20s %#x..%#x\n",
			100*float64(r.count)/float64(max(total, 1)), r.count, r.name, r.lo, r.hi)
	}
	fmt.Fprintf(&b, "\nhot blocks (top %d of %d):\n", min(top, len(blocks)), len(blocks))
	fmt.Fprintf(&b, "  %%time      insts  block\n")
	for i, r := range blocks {
		if i >= top {
			break
		}
		fmt.Fprintf(&b, "  %5.1f%% %10d  %-28s %#x..%#x (%d insts)\n",
			100*float64(r.count)/float64(max(total, 1)), r.count, r.name, r.lo, r.hi, r.insts)
	}
	return b.String()
}

func hitPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "eelprof:", err)
		os.Exit(1)
	}
}
