package main

import (
	"strings"
	"testing"

	"eel/internal/progen"
)

// TestProfileDeterministic proves the acceptance property: the same
// progen workload produces a byte-identical profile report under
// every -engine selection (routine degrades to chained while
// profiling), repeated runs included, and regardless of analysis
// worker count.
func TestProfileDeterministic(t *testing.T) {
	cfg := progen.DefaultConfig(7)
	cfg.Routines = 20
	p := progen.MustGenerate(cfg)

	// The "jit:" engine-stats line legitimately differs between the
	// two engines (the interpreter builds no superblocks); everything
	// else — the actual profile — must be byte-identical.
	stripEngine := func(s string) string {
		var keep []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.HasPrefix(line, "jit:") {
				keep = append(keep, line)
			}
		}
		return strings.Join(keep, "\n")
	}

	var reports []string
	for _, v := range []struct {
		engine string
		jobs   int
	}{
		{"chained", 1}, {"chained", 4}, {"translated", 1},
		{"interp", 1}, {"interp", 4}, {"routine", 1},
	} {
		out, err := profileRun(p.File, "gen7", v.engine, true, v.jobs, 8, 500_000_000)
		if err != nil {
			t.Fatalf("engine=%s jobs=%d: %v", v.engine, v.jobs, err)
		}
		reports = append(reports, out)
	}
	for i := 1; i < len(reports); i++ {
		if stripEngine(reports[i]) != stripEngine(reports[0]) {
			t.Fatalf("profile not deterministic:\n--- variant 0 ---\n%s\n--- variant %d ---\n%s",
				reports[0], i, reports[i])
		}
	}

	out := reports[0]
	for _, want := range []string{"eelprof: gen7:", "hot routines", "hot blocks", "branches:"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "after 0 instructions") {
		t.Errorf("workload executed nothing:\n%s", out)
	}
}
