// Command eeldump inspects an executable through EEL's eyes: the
// container's sections and raw symbols, the refined routine list
// (hidden routines, multiple entry points), per-routine CFG structure
// and statistics, a disassembly, and indirect-jump resolutions.
// Routines are analyzed concurrently by the internal/pipeline worker
// pool (-j bounds the pool); output is identical for any -j.
//
// Usage:
//
//	eeldump [-routine name] [-dis] [-cfg] [-gen seed] [-j N] [-stats]
//	        [-metrics] [-trace FILE] [-pprof ADDR] [input]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"eel/internal/cfg"
	"eel/internal/pipeline"
	"eel/internal/sparc"
	"eel/internal/toolmain"
)

func main() {
	routine := flag.String("routine", "", "limit detail to one routine")
	dis := flag.Bool("dis", false, "disassemble routines")
	showCFG := flag.Bool("cfg", false, "print CFG structure")
	dot := flag.Bool("dot", false, "emit CFGs as Graphviz dot")
	com := toolmain.AddCommon(flag.CommandLine)
	flag.Parse()

	stop, err := com.Start(os.Stderr)
	if err != nil {
		fatal(err)
	}
	defer stop()

	f, _, err := com.OpenInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	fmt.Printf("format %s, entry %#x\n", f.Format, f.Entry)
	for _, s := range f.Sections {
		fmt.Printf("  section %-8s %#08x..%#08x (%d bytes)\n", s.Name, s.Addr, s.End(), len(s.Data))
	}
	fmt.Printf("  %d raw symbols\n", len(f.Symbols))

	e, err := toolmain.Load(f)
	if err != nil {
		fatal(err)
	}

	res, err := com.Analyze(e, pipeline.Options{
		NoLiveness:   true,
		NoDominators: true,
		NoLoops:      true,
	})
	if err != nil {
		fatal(err)
	}

	var agg cfg.Stats
	indirect, unresolved := 0, 0
	for _, a := range res.Analyses {
		r := a.Routine
		if *routine != "" && r.Name != *routine {
			continue
		}
		if a.Err != nil {
			fmt.Printf("routine %-16s %#08x..%#08x  CFG error: %v\n", r.Name, r.Start, r.End, a.Err)
			continue
		}
		g := a.Graph
		s := g.Stats()
		agg.Blocks += s.Blocks
		agg.NormalBlocks += s.NormalBlocks
		agg.DelaySlotBlocks += s.DelaySlotBlocks
		agg.EntryExitBlocks += s.EntryExitBlocks
		agg.CallSurrogates += s.CallSurrogates
		agg.Edges += s.Edges
		agg.UneditableB += s.UneditableB
		agg.UneditableE += s.UneditableE
		flags := ""
		if r.Hidden {
			flags += " hidden"
		}
		if len(r.Entries) > 1 {
			flags += fmt.Sprintf(" entries=%d", len(r.Entries))
		}
		if g.HasData {
			flags += " has-data"
		}
		if !g.Complete {
			flags += " incomplete"
		}
		fmt.Printf("routine %-16s %#08x..%#08x  %3d blocks %3d edges%s\n",
			r.Name, r.Start, r.End, s.Blocks, s.Edges, flags)
		for _, ij := range g.IndirectJumps {
			indirect++
			switch {
			case ij.Resolved && ij.Literal:
				fmt.Printf("    ijump at %#x: literal %#x\n", ij.Addr, ij.LiteralTarget)
			case ij.Resolved:
				fmt.Printf("    ijump at %#x: table %#x (%d entries)\n", ij.Addr, ij.TableAddr, ij.TableLen)
			default:
				unresolved++
				fmt.Printf("    ijump at %#x: UNRESOLVED (run-time translation)\n", ij.Addr)
			}
		}
		if *showCFG {
			printCFG(g)
		}
		if *dot {
			printDot(r.Name, g)
		}
		if *dis {
			disassemble(g)
		}
	}
	fmt.Printf("\ntotals: %d blocks (%d normal, %d delay-slot, %d entry/exit, %d surrogate), %d edges\n",
		agg.Blocks, agg.NormalBlocks, agg.DelaySlotBlocks, agg.EntryExitBlocks, agg.CallSurrogates, agg.Edges)
	if agg.Blocks > 0 {
		fmt.Printf("uneditable: %.1f%% of blocks, %.1f%% of edges\n",
			100*float64(agg.UneditableB)/float64(agg.Blocks),
			100*float64(agg.UneditableE)/float64(agg.Edges))
	}
	fmt.Printf("indirect jumps: %d (%d unresolved)\n", indirect, unresolved)
}

// printDot renders one routine's CFG in Graphviz syntax: normal
// blocks as boxes, delay slots as ellipses, surrogates as diamonds,
// uneditable elements dashed.
func printDot(name string, g *cfg.Graph) {
	fmt.Printf("digraph %q {\n  rankdir=TB; node [fontname=monospace];\n", name)
	for _, b := range g.Blocks {
		label := fmt.Sprintf("B%d %s", b.ID, b.Kind)
		if b.Start() != 0 {
			label += fmt.Sprintf("\\n%#x (%d insts)", b.Start(), len(b.Insts))
		}
		shape := "box"
		switch b.Kind {
		case cfg.KindDelaySlot:
			shape = "ellipse"
		case cfg.KindCallSurrogate:
			shape = "diamond"
		case cfg.KindEntry, cfg.KindExit:
			shape = "circle"
		}
		style := ""
		if b.Uneditable {
			style = ", style=dashed"
		}
		fmt.Printf("  n%d [label=%q, shape=%s%s];\n", b.ID, label, shape, style)
	}
	for _, e := range g.Edges {
		style := ""
		if e.Uneditable {
			style = " [style=dashed]"
		}
		fmt.Printf("  n%d -> n%d%s; // %s\n", e.From.ID, e.To.ID, style, e.Kind)
	}
	fmt.Println("}")
}

func printCFG(g *cfg.Graph) {
	blocks := append([]*cfg.Block(nil), g.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	for _, b := range blocks {
		mark := ""
		if b.Uneditable {
			mark = " (uneditable)"
		}
		fmt.Printf("    B%-3d %-13s start=%#x insts=%d%s →", b.ID, b.Kind, b.Start(), len(b.Insts), mark)
		for _, e := range b.Succ {
			fmt.Printf(" B%d[%s]", e.To.ID, e.Kind)
		}
		fmt.Println()
	}
}

func disassemble(g *cfg.Graph) {
	for _, b := range g.Blocks {
		if b.Kind != cfg.KindNormal && b.Kind != cfg.KindDelaySlot {
			continue
		}
		for _, in := range b.Insts {
			fmt.Printf("    %#08x  %08x  %s\n", in.Addr, in.MI.Word(), sparc.Disasm(in.MI, in.Addr))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eeldump:", err)
	os.Exit(1)
}
