// Command qpt models the paper's pre-EEL ad-hoc profiler — the
// Table 1 baseline: the same edge-counting instrumentation as qpt2,
// but without EEL's analyses (no liveness, so snippets always spill;
// no slicing, so indirect jumps translate at run time; no delay-slot
// folding).  It instruments faster and produces larger, slower
// output — the tradeoff Table 1 quantifies.
//
// Usage:
//
//	qpt [-o out] [-run] [-gen seed] [input]
package main

import (
	"fmt"
	"os"

	"eel/internal/qpt"
	"eel/internal/toolmain"
)

func main() {
	if err := toolmain.Run("qpt", qpt.Light, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qpt:", err)
		os.Exit(1)
	}
}
