// Command spawn is the standalone driver for the machine-description
// compiler (paper §4): it parses a description, reports everything it
// derived (encodings, classifications, register sets, delay slots),
// and can emit a generated Go source file of decode tables — the
// analogue of the paper's spawn emitting machine-specific C++.
//
// Usage:
//
//	spawn [-machine sparc|mips] [-gen out.go] [-v] [description-file]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"eel/internal/alpha"
	"eel/internal/mips"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

func main() {
	machineName := flag.String("machine", "sparc", "builtin description to use (sparc, mips, or alpha) when no file is given")
	genPath := flag.String("gen", "", "emit generated Go decode tables to this file")
	verbose := flag.Bool("v", false, "print per-instruction derivations")
	flag.Parse()

	var src string
	switch {
	case flag.Arg(0) != "":
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	case *machineName == "sparc":
		src = sparc.DescriptionSource
	case *machineName == "mips":
		src = mips.DescriptionSource
	case *machineName == "alpha":
		src = alpha.DescriptionSource
	default:
		fatal(fmt.Errorf("unknown machine %q", *machineName))
	}

	desc, err := spawn.ParseDesc(src)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("machine %s: %d fields, %d register files, %d instructions\n",
		desc.MachineName, len(desc.Fields), len(desc.Files), len(desc.Insts))
	fmt.Printf("description: %d non-comment, non-blank lines\n", desc.SourceLines)

	byCat := map[string]int{}
	for _, def := range desc.Insts {
		byCat[def.Info.Cat.String()]++
	}
	var cats []string
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		fmt.Printf("  %-10s %d\n", c, byCat[c])
	}

	if *verbose {
		for _, def := range desc.Insts {
			eff := def.Info.Effects
			fmt.Printf("%-8s mask=%08x match=%08x cat=%-9s reads=%s writes=%s slots=%d\n",
				def.Name, def.Mask, def.Match, def.Info.Cat,
				eff.Reads, eff.Writes, def.Info.DelaySlots)
			fmt.Printf("         sem: %s\n", def.Sem)
		}
	}

	if *genPath != "" {
		out := spawn.GenerateGo(desc)
		if err := os.WriteFile(*genPath, []byte(out), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("generated %s: %d lines (from a %d-line description)\n",
			*genPath, strings.Count(out, "\n"), desc.SourceLines)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spawn:", err)
	os.Exit(1)
}
