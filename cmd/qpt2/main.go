// Command qpt2 is the paper's EEL-based profiler (§5): it rewrites an
// executable so that every conditional-control-flow edge increments a
// counter, using EEL's full analysis (CFGs, slicing, liveness-driven
// register scavenging, delay-slot folding).
//
// Usage:
//
//	qpt2 [-o out] [-run] [-gen seed] [-j N] [-stats] [input]
//
// With -gen N, a synthetic program is generated (seed N) instead of
// reading input.  With -run, the instrumented program executes on the
// bundled SPARC emulator and the hottest edges print afterward.
// Routine analysis runs on the concurrent pipeline (-j bounds the
// worker pool; -stats prints its throughput and stage times).
package main

import (
	"fmt"
	"os"

	"eel/internal/qpt"
	"eel/internal/toolmain"
)

func main() {
	if err := toolmain.Run("qpt2", qpt.Full, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "qpt2:", err)
		os.Exit(1)
	}
}
