// Command eelverify checks that an edited executable behaves exactly
// like its original: both run to completion on the bundled SPARC
// emulator and their exit codes, output, and (optionally) executed
// instruction counts are compared.  It is the mechanical form of the
// validation discipline this repository applies to every editing
// feature — something the paper's authors could only do by hand on
// real hardware.
//
// Usage:
//
//	eelverify [-engine interp|translated|chained|routine] [-metrics]
//	          [-trace FILE] [-pprof ADDR] original edited
//	eelverify -gen 7 -instrument     (generate, instrument, verify)
//
// With -instrument, routine analysis runs on the concurrent
// internal/pipeline worker pool (-j bounds it; -stats prints its
// metrics) before the editing pass.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"eel/internal/binfile"
	"eel/internal/pipeline"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/toolmain"
)

func main() {
	instrument := flag.Bool("instrument", false, "with -gen: instrument before verifying")
	maxSteps := flag.Uint64("max-steps", 500_000_000, "emulator step limit")
	jitstats := flag.Bool("jitstats", false, "print translation-cache chain/IC hit rates, traces, and routine-tier counters")
	eng := toolmain.AddEngine(flag.CommandLine)
	com := toolmain.AddCommon(flag.CommandLine)
	flag.Parse()
	engine, err := eng.Name()
	check(err)

	stop, err := com.Start(os.Stderr)
	check(err)
	closeTool := func() { check(stop()) }

	var orig, edited *binfile.File
	switch {
	case com.Gen >= 0:
		f, _, err := com.OpenInput("")
		check(err)
		orig = f
		e, err := toolmain.Load(f)
		check(err)
		if *instrument {
			_, err := com.Analyze(e, pipeline.Options{
				NoDominators: true,
				NoLoops:      true,
			})
			check(err)
			_, err = qpt.Instrument(e, qpt.Full)
			check(err)
		}
		edited, err = e.BuildEdited()
		check(err)
	case flag.NArg() == 2:
		var err error
		orig, err = binfile.ReadFile(flag.Arg(0))
		check(err)
		edited, err = binfile.ReadFile(flag.Arg(1))
		check(err)
	default:
		check(fmt.Errorf("need two executables, or -gen"))
	}

	o, oOut, oRate := run(orig, *maxSteps, engine)
	e, eOut, eRate := run(edited, *maxSteps, engine)

	fmt.Printf("original: exit %d, %d instructions, %d bytes output, %.0f insts/sec\n",
		o.ExitCode, o.InstCount, len(oOut), oRate)
	fmt.Printf("edited:   exit %d, %d instructions, %d bytes output (%.2fx), %.0f insts/sec\n",
		e.ExitCode, e.InstCount, len(eOut), float64(e.InstCount)/float64(max(1, o.InstCount)), eRate)
	if *jitstats {
		printJITStats("original", o)
		printJITStats("edited", e)
	}

	closeTool()

	if o.ExitCode != e.ExitCode || !bytes.Equal(oOut, eOut) {
		fmt.Println("VERIFY FAILED: behaviour diverged")
		os.Exit(1)
	}
	fmt.Println("VERIFY OK: identical behaviour")
}

func run(f *binfile.File, maxSteps uint64, engine string) (*sim.CPU, []byte, float64) {
	var out bytes.Buffer
	cpu := sim.LoadFile(f, &out)
	toolmain.ConfigureEngine(cpu, engine)
	start := time.Now()
	if err := cpu.Run(maxSteps); err != nil {
		check(fmt.Errorf("execution: %w", err))
	}
	elapsed := time.Since(start).Seconds()
	if !cpu.Halted {
		check(fmt.Errorf("program did not halt"))
	}
	rate := 0.0
	if elapsed > 0 {
		rate = float64(cpu.InstCount) / elapsed
	}
	return cpu, out.Bytes(), rate
}

// printJITStats reports the chaining tier's effectiveness for one
// run.  The counters come from sim.Counters (mirrored to telemetry by
// Run when a sink is attached; reading them here costs nothing when
// telemetry is disabled).
func printJITStats(label string, cpu *sim.CPU) {
	k := cpu.Counters()
	fmt.Printf("jit %s: blocks %d, chain-hit %.1f%%, ic-hit %.1f%%, victim-hits %d, traces %d (%d retired), deopts %d\n",
		label, k.Builds, hitPct(k.ChainHits, k.ChainMisses), hitPct(k.ICHits, k.ICMisses),
		k.VictimHits, k.Traces, k.TracesRetired, k.Deopts)
	if cpu.EnableRoutines || k.TierPromotions > 0 {
		fmt.Printf("jit %s: routines %d compiled (%d promotions), routine-deopts %d\n",
			label, k.RoutinesCompiled, k.TierPromotions, k.RoutineDeopts)
	}
}

func hitPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "eelverify:", err)
		os.Exit(1)
	}
}
