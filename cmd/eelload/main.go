// Command eelload is the load-test harness for the eeld daemon.  It
// generates a corpus of progen binaries, starts an in-process daemon
// on a persistent cache directory, and drives it with many concurrent
// clients mixing analyze and instrument requests.  It then drains the
// daemon, restarts a fresh one on the same directory, and replays the
// workload — the warm phase measures how much of the corpus the
// persistent per-routine cache serves without re-analysis.
//
// Exact client-side latency percentiles (p50/p99), per-phase cache
// hit rates, and bytes-rewritten/sec are printed and written as JSON
// to -out (BENCH_eeld.json by default).  -min-warm-hit turns the
// warm-phase hit rate into an exit-status check for CI.
//
// With -server the harness instead targets an external daemon and
// runs a single phase (no restart, since it can't restart a daemon it
// doesn't own).
//
// Usage:
//
//	eelload [-clients N] [-requests N] [-corpus N] [-routines N]
//	        [-cache-dir DIR] [-out FILE] [-min-warm-hit RATE]
//	        [-seed N] [-workers N] [-server URL]
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"flag"

	"eel/internal/binfile"
	"eel/internal/eeld"
	"eel/internal/progen"
	"eel/internal/telemetry"
)

type phaseResult struct {
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	WallMS   float64 `json:"wall_ms"`
	RPS      float64 `json:"requests_per_sec"`
	P50MS    float64 `json:"p50_ms"`
	P99MS    float64 `json:"p99_ms"`
	// SrvP50MS/SrvP99MS are exact percentiles of the server-side
	// queue+run time each response reports in its summary headers —
	// the interval the daemon's eeld.latency_ns histogram observes
	// (client wall time above also includes HTTP transport queuing).
	SrvP50MS float64 `json:"srv_p50_ms,omitempty"`
	SrvP99MS float64 `json:"srv_p99_ms,omitempty"`
	// P50EstMS/P99EstMS are the same server-side percentiles estimated
	// from that histogram (what a /metrics scrape derives); they must
	// agree with the exact SrvP* ones to within one log-scale bucket.
	// Zero in external -server mode.
	P50EstMS float64 `json:"p50_est_ms,omitempty"`
	P99EstMS float64 `json:"p99_est_ms,omitempty"`
	Hits     uint64  `json:"cache_hits"`
	DiskHits uint64  `json:"cache_disk_hits"`
	Misses   uint64  `json:"cache_misses"`
	HitRate  float64 `json:"hit_rate"`
}

// estimatePercentiles fills a phase's histogram-estimated p50/p99
// from the daemon's request-latency histogram and cross-checks them
// against the exact server-side percentiles: both summarize the same
// per-request durations, so they must land within one log-scale
// bucket of each other.  Returns false on disagreement.
func estimatePercentiles(ph *phaseResult, reg *telemetry.Registry) bool {
	h := reg.Snapshot().Histograms["eeld.latency_ns"]
	if h.Count == 0 {
		return true
	}
	ph.P50EstMS = float64(h.Quantile(0.50)) / 1e6
	ph.P99EstMS = float64(h.Quantile(0.99)) / 1e6

	ok := true
	for _, c := range []struct {
		name       string
		est, exact float64
	}{
		{"p50", ph.P50EstMS, ph.SrvP50MS},
		{"p99", ph.P99EstMS, ph.SrvP99MS},
	} {
		eb := telemetry.BucketIndex(uint64(c.est * 1e6))
		xb := telemetry.BucketIndex(uint64(c.exact * 1e6))
		if d := eb - xb; d < -1 || d > 1 {
			fmt.Fprintf(os.Stderr,
				"eelload: %s disagreement: histogram estimate %.2fms (bucket %d) vs exact server-side %.2fms (bucket %d)\n",
				c.name, c.est, eb, c.exact, xb)
			ok = false
		}
	}
	return ok
}

type benchResult struct {
	Bench    string `json:"bench"`
	Clients  int    `json:"clients"`
	Requests int    `json:"requests_per_client"`
	Corpus   int    `json:"corpus"`
	Routines int    `json:"routines"`

	Cold *phaseResult `json:"cold,omitempty"`
	Warm *phaseResult `json:"warm,omitempty"`

	WarmHitRate          float64 `json:"warm_hit_rate"`
	BytesRewritten       uint64  `json:"bytes_rewritten"`
	BytesRewrittenPerSec float64 `json:"bytes_rewritten_per_sec"`
}

func main() {
	clients := flag.Int("clients", 32, "concurrent clients")
	requests := flag.Int("requests", 6, "requests per client per phase")
	corpus := flag.Int("corpus", 8, "progen binaries in the corpus")
	routines := flag.Int("routines", 24, "routines per generated binary")
	seed := flag.Int64("seed", 1, "base progen seed")
	cacheDir := flag.String("cache-dir", "", "persistent cache directory (empty = a temp dir)")
	out := flag.String("out", "BENCH_eeld.json", "JSON results path")
	minWarmHit := flag.Float64("min-warm-hit", 0, "fail unless the warm-phase hit rate reaches this")
	workers := flag.Int("workers", 0, "daemon job executors (0 = default)")
	queue := flag.Int("queue", 4096, "daemon admission queue bound")
	server := flag.String("server", "", "target an external daemon instead of in-process restart mode")
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	tool, err := tf.Start()
	if err != nil {
		fatal(err)
	}
	defer tool.Close(os.Stderr)

	bins := make([][]byte, *corpus)
	for i := range bins {
		cfg := progen.DefaultConfig(*seed + int64(i))
		cfg.Routines = *routines
		p, err := progen.Generate(cfg)
		if err != nil {
			fatal(err)
		}
		if bins[i], err = binfile.Write(p.File); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "eelload: corpus of %d binaries, %d routines each\n", *corpus, *routines)

	res := benchResult{
		Bench:    "eeld",
		Clients:  *clients,
		Requests: *requests,
		Corpus:   *corpus,
		Routines: *routines,
	}

	agree := true
	if *server != "" {
		// External daemon: one phase, no restart.
		warm := drive(*server, bins, *clients, *requests)
		res.Warm = &warm
		res.WarmHitRate = warm.HitRate
	} else {
		dir := *cacheDir
		if dir == "" {
			tmp, err := os.MkdirTemp("", "eelload-cache-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(tmp)
			dir = tmp
		}
		cfg := eeld.Config{
			CacheDir: dir,
			Workers:  *workers,
			MaxQueue: *queue,
		}

		srv1 := startDaemon(cfg)
		cold := drive("http://"+srv1.Addr(), bins, *clients, *requests)
		agree = estimatePercentiles(&cold, srv1.Registry())
		res.Cold = &cold
		drain(srv1)

		// Fresh daemon, empty memory tier, same disk store: the warm
		// phase is the tentpole's warm-restart measurement.
		srv2 := startDaemon(cfg)
		warmStart := time.Now()
		warm := drive("http://"+srv2.Addr(), bins, *clients, *requests)
		warmWall := time.Since(warmStart)
		agree = estimatePercentiles(&warm, srv2.Registry()) && agree
		res.Warm = &warm
		res.WarmHitRate = warm.HitRate

		st, err := (&eeld.Client{Base: "http://" + srv2.Addr(), Name: "eelload"}).Stats(context.Background())
		if err != nil {
			fatal(err)
		}
		res.BytesRewritten = st.BytesRewritten
		res.BytesRewrittenPerSec = float64(st.BytesRewritten) / warmWall.Seconds()
		drain(srv2)
	}

	report(res)
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "eelload: wrote %s\n", *out)

	if !agree {
		fatal(fmt.Errorf("histogram-estimated percentiles disagree with exact server-side percentiles by more than one bucket"))
	}
	if *minWarmHit > 0 && res.WarmHitRate < *minWarmHit {
		fatal(fmt.Errorf("warm hit rate %.3f below required %.3f", res.WarmHitRate, *minWarmHit))
	}
}

func startDaemon(cfg eeld.Config) *eeld.Server {
	srv, err := eeld.New(cfg)
	if err != nil {
		fatal(err)
	}
	if err := srv.Start(); err != nil {
		fatal(err)
	}
	return srv
}

func drain(srv *eeld.Server) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		fatal(fmt.Errorf("drain: %w", err))
	}
}

// drive runs the workload: n clients, each issuing r requests over
// the corpus (every third an instrument, the rest analyzes), and
// returns the phase's latency and cache aggregates.
func drive(base string, bins [][]byte, n, r int) phaseResult {
	type sample struct {
		lat   time.Duration
		srvNS int64
		c     eeld.CacheStats
		err   error
	}
	samples := make([][]sample, n)
	start := time.Now()
	var wg sync.WaitGroup
	for ci := 0; ci < n; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			var srvNS int64
			client := &eeld.Client{
				Base: base, Name: fmt.Sprintf("load-%d", ci),
				OnSummary: func(s eeld.RequestSummary) { srvNS = s.QueueNS + s.RunNS },
			}
			ctx := context.Background()
			for ri := 0; ri < r; ri++ {
				bin := bins[(ci+ri)%len(bins)]
				t0 := time.Now()
				srvNS = 0
				var cs eeld.CacheStats
				var err error
				if ri%3 == 2 {
					var resp *eeld.InstrumentResponse
					if resp, err = client.Instrument(ctx, &eeld.InstrumentRequest{Binary: bin}); err == nil {
						cs = resp.Cache
					}
				} else {
					var resp *eeld.AnalyzeResponse
					if resp, err = client.Analyze(ctx, &eeld.AnalyzeRequest{Binary: bin}); err == nil {
						cs = resp.Cache
					}
				}
				samples[ci] = append(samples[ci], sample{time.Since(t0), srvNS, cs, err})
			}
		}(ci)
	}
	wg.Wait()
	wall := time.Since(start)

	var ph phaseResult
	var lats, srvLats []time.Duration
	for _, cs := range samples {
		for _, s := range cs {
			ph.Requests++
			if s.err != nil {
				ph.Errors++
				continue
			}
			lats = append(lats, s.lat)
			if s.srvNS > 0 {
				srvLats = append(srvLats, time.Duration(s.srvNS))
			}
			ph.Hits += s.c.Hits
			ph.DiskHits += s.c.DiskHits
			ph.Misses += s.c.Misses
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ph.P50MS = percentileMS(lats, 50)
	ph.P99MS = percentileMS(lats, 99)
	sort.Slice(srvLats, func(i, j int) bool { return srvLats[i] < srvLats[j] })
	ph.SrvP50MS = percentileMS(srvLats, 50)
	ph.SrvP99MS = percentileMS(srvLats, 99)
	ph.WallMS = float64(wall.Nanoseconds()) / 1e6
	if wall > 0 {
		ph.RPS = float64(ph.Requests) / wall.Seconds()
	}
	if total := ph.Hits + ph.Misses; total > 0 {
		ph.HitRate = float64(ph.Hits) / float64(total)
	}
	return ph
}

// percentileMS reads the exact p-th percentile from sorted latencies.
func percentileMS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

func report(res benchResult) {
	show := func(name string, ph *phaseResult) {
		if ph == nil {
			return
		}
		fmt.Fprintf(os.Stderr,
			"eelload: %-4s %d reqs (%d errors) in %.0fms — %.1f req/s, p50 %.2fms, p99 %.2fms, hit rate %.1f%% (%d disk)\n",
			name, ph.Requests, ph.Errors, ph.WallMS, ph.RPS, ph.P50MS, ph.P99MS, 100*ph.HitRate, ph.DiskHits)
		if ph.P99EstMS > 0 {
			fmt.Fprintf(os.Stderr,
				"eelload: %-4s server-side p50 %.2fms, p99 %.2fms exact; p50 %.2fms, p99 %.2fms histogram-estimated\n",
				name, ph.SrvP50MS, ph.SrvP99MS, ph.P50EstMS, ph.P99EstMS)
		}
	}
	show("cold", res.Cold)
	show("warm", res.Warm)
	if res.BytesRewritten > 0 {
		fmt.Fprintf(os.Stderr, "eelload: %.0f bytes rewritten/sec in the warm phase\n", res.BytesRewrittenPerSec)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eelload:", err)
	os.Exit(1)
}
