module eel

go 1.22
