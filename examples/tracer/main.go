// The tracer example is qpt's other half (paper §1, §3.4): memory
// reference tracing.  Every load and store is preceded by a snippet
// appending its effective address to a trace buffer in the edited
// program's data segment.  It also runs the paper's Figure 4
// backward address slice over each traced site and reports how many
// address computations abstract execution could regenerate from
// easy/hard slices — the optimization that made qpt's traces compact.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eel"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/progen"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/telemetry"
	"eel/internal/toolmain"
)

func main() {
	seed := flag.Int64("seed", 4, "workload seed")
	show := flag.Int("show", 12, "trace entries to print")
	eng := toolmain.AddEngine(flag.CommandLine)
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	tool, err := tf.Start()
	check(err)
	defer tool.Close(os.Stderr)

	cfg := progen.DefaultConfig(*seed)
	cfg.Routines = 12
	p, err := progen.Generate(cfg)
	check(err)

	exec, err := eel.Load(p.File)
	check(err)

	const bufWords = 1 << 16
	bufPtr := exec.AllocData(4)
	buf := exec.AllocData(4 * bufWords)

	// Whole-program analysis on the concurrent pipeline; hidden
	// routines discovered during CFG construction are analyzed too,
	// replacing the manual TakeHidden worklist.
	res, err := eel.AnalyzeAll(exec, eel.AnalysisOptions{})
	check(err)

	sites, easy, hard, impossible := 0, 0, 0, 0
	for _, a := range res.Analyses {
		check(a.Err)
		r, g := a.Routine, a.Graph
		for _, b := range g.Blocks {
			if b.Uneditable {
				continue
			}
			for i, in := range b.Insts {
				if !in.MI.Category().IsMemory() {
					continue
				}
				snip, err := traceSnippet(in.MI, bufPtr)
				check(err)
				check(r.AddCodeBefore(b, i, snip))
				sites++
				// Figure 4: slice the address register.
				rs1F, _ := in.MI.Field("rs1")
				for _, entry := range dataflow.BackwardSlice(g, b, i, machine.Reg(rs1F)) {
					switch entry.Mark {
					case dataflow.SliceEasy:
						easy++
					case dataflow.SliceHard:
						hard++
					default:
						impossible++
					}
				}
			}
		}
		check(r.ProduceEditedRoutine())
	}

	// The buffer pointer must start at the buffer: patch the initial
	// word via the image (AllocData memory is zero; we set it before
	// writing).  BuildEdited copies newData, so set it through a tiny
	// bootstrap: easiest is to make the first traced write initialize
	// it — instead we bake the value in via a data edit:
	edited, err := exec.BuildEdited()
	check(err)
	for i := range edited.Sections {
		s := &edited.Sections[i]
		if s.Contains(bufPtr) {
			off := bufPtr - s.Addr
			v := buf
			s.Data[off] = byte(v >> 24)
			s.Data[off+1] = byte(v >> 16)
			s.Data[off+2] = byte(v >> 8)
			s.Data[off+3] = byte(v)
		}
	}

	cpu := sim.LoadFile(edited, os.Stdout)
	check(eng.Configure(cpu))
	start := time.Now()
	check(cpu.Run(500_000_000))
	rate := float64(cpu.InstCount) / time.Since(start).Seconds()

	end := cpu.Mem.Read32(bufPtr)
	n := (end - buf) / 4
	fmt.Printf("traced %d memory sites; %d references recorded (%.0f insts/sec)\n", sites, n, rate)
	fmt.Printf("slice profile over traced sites: %d easy, %d hard, %d impossible\n", easy, hard, impossible)
	fmt.Printf("first %d references:\n", *show)
	for i := uint32(0); i < uint32(*show) && i < n; i++ {
		fmt.Printf("  %#x\n", cpu.Mem.Read32(buf+4*i))
	}
}

// traceSnippet appends the site's effective address to the trace
// buffer: *bufPtr++ = EA.
func traceSnippet(inst *machine.Inst, bufPtr uint32) (*eel.Snippet, error) {
	phs, err := core.PickPlaceholders(inst, 3)
	if err != nil {
		return nil, err
	}
	p1, p2, p3 := phs[0], phs[1], phs[2]
	var words []uint32
	emit := func(w uint32, err error) error {
		if err != nil {
			return err
		}
		words = append(words, w)
		return nil
	}
	rs1F, _ := inst.Field("rs1")
	iflag, _ := inst.Field("iflag")
	if iflag == 1 {
		simmF, _ := inst.Field("simm13")
		if err := emit(sparc.EncodeOp3Imm("add", p1, machine.Reg(rs1F), int32(simmF<<19)>>19)); err != nil {
			return nil, err
		}
	} else {
		rs2F, _ := inst.Field("rs2")
		if err := emit(sparc.EncodeOp3("add", p1, machine.Reg(rs1F), machine.Reg(rs2F))); err != nil {
			return nil, err
		}
	}
	steps := []func() error{
		func() error { return emit(sparc.EncodeSethi(p2, bufPtr)) },
		func() error { return emit(sparc.EncodeOp3Imm("ld", p3, p2, int32(sparc.Lo(bufPtr)))) },
		func() error { return emit(sparc.EncodeOp3Imm("st", p1, p3, 0)) },
		func() error { return emit(sparc.EncodeOp3Imm("add", p3, p3, 4)) },
		func() error { return emit(sparc.EncodeOp3Imm("st", p3, p2, int32(sparc.Lo(bufPtr)))) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return eel.NewSnippet(words, []machine.Reg{p1, p2, p3}), nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}
