// The sandbox example implements software fault isolation (paper §1,
// citing Wahbe et al.): every store instruction is replaced by a
// sequence that masks the effective address into a designated data
// segment, so a corrupted pointer cannot overwrite memory outside
// its domain.  The example runs a program with a wild store twice:
// unsandboxed (the stray write lands in the stack area) and
// sandboxed (the write is confined to the segment).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eel"
	"eel/internal/asm"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/telemetry"
	"eel/internal/toolmain"
)

// Segment geometry: stores are confined to [SegBase, SegBase+SegSize).
const (
	segBase = 0x400000
	segSize = 0x100000
)

// program performs one legitimate store and one store through a
// corrupted pointer aimed at the stack red zone (0x7fe000).
const program = `
main:	set 0x400010, %l0
	mov 42, %l1
	st %l1, [%l0]        ! legitimate store
	set 0x7fe000, %l2    ! corrupted pointer
	mov 666, %l3
	st %l3, [%l2]        ! wild store
	ld [%l0], %o0        ! prove the good data survived
	mov 1, %g1
	ta 0
`

func main() {
	eng := toolmain.AddEngine(flag.CommandLine)
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	tool, err := tf.Start()
	check(err)
	defer tool.Close(os.Stderr)

	prog, err := asm.Assemble(program, 0x10000)
	check(err)
	img := &eel.File{
		Format: "aout",
		Entry:  0x10000,
		Sections: []eel.Section{
			{Name: "text", Addr: 0x10000, Data: prog.Bytes},
			{Name: "data", Addr: segBase, Data: make([]byte, 4096)},
		},
		Symbols: []eel.Symbol{{Name: "main", Addr: 0x10000, Global: true}},
	}

	// Unsandboxed run: the wild store lands at 0x7fe000.
	orig := sim.LoadFile(img, os.Stdout)
	check(eng.Configure(orig))
	check(orig.Run(10000))
	fmt.Printf("unsandboxed: [0x7fe000] = %d (corrupted), exit %d\n",
		orig.Mem.Read32(0x7fe000), orig.ExitCode)

	// Sandbox every store.  The concurrent pipeline analyzes all
	// routines (this tiny image has one; real programs fan out).
	exec, err := eel.Load(img)
	check(err)
	res, err := eel.AnalyzeAll(exec, eel.AnalysisOptions{})
	check(err)
	sites := 0
	for _, a := range res.Analyses {
		check(a.Err)
		r := a.Routine
		for _, b := range a.Graph.Blocks {
			if b.Uneditable {
				continue
			}
			for i, in := range b.Insts {
				if !in.MI.WritesMem() {
					continue
				}
				snip, err := sandboxStore(in.MI)
				check(err)
				check(r.AddCodeBefore(b, i, snip))
				check(r.DeleteInst(b, i))
				sites++
			}
		}
		check(r.ProduceEditedRoutine())
	}
	edited, err := exec.BuildEdited()
	check(err)

	boxed := sim.LoadFile(edited, os.Stdout)
	check(eng.Configure(boxed))
	start := time.Now()
	check(boxed.Run(10000))
	rate := float64(boxed.InstCount) / time.Since(start).Seconds()
	fmt.Printf("sandboxed run: %d instructions at %.0f insts/sec\n", boxed.InstCount, rate)
	confined := segBase + (0x7fe000 & (segSize - 1) &^ 3)
	fmt.Printf("sandboxed (%d stores rewritten): [0x7fe000] = %d, confined write at %#x = %d, exit %d\n",
		sites, boxed.Mem.Read32(0x7fe000), confined, boxed.Mem.Read32(uint32(confined)), boxed.ExitCode)
	if boxed.Mem.Read32(0x7fe000) != 0 {
		fmt.Println("SANDBOX FAILED: wild store escaped")
		os.Exit(1)
	}
}

// sandboxStore replaces a store with: compute the effective address,
// mask it into the segment, and perform the same-width store there.
// The original store instruction itself is deleted by the caller.
func sandboxStore(inst *machine.Inst) (*eel.Snippet, error) {
	phs, err := core.PickPlaceholders(inst, 2)
	if err != nil {
		return nil, err
	}
	p1, p2 := phs[0], phs[1]
	rs1F, _ := inst.Field("rs1")
	rdF, _ := inst.Field("rd")
	iflag, _ := inst.Field("iflag")
	align := uint32(inst.MemWidth() - 1)
	if inst.MemWidth() == 8 {
		align = 7
	}
	offMask := uint32(segSize-1) &^ align

	var words []uint32
	emit := func(w uint32, err error) error {
		if err != nil {
			return err
		}
		words = append(words, w)
		return nil
	}
	// Effective address.
	if iflag == 1 {
		simmF, _ := inst.Field("simm13")
		if err := emit(sparc.EncodeOp3Imm("add", p1, machine.Reg(rs1F), int32(simmF<<19)>>19)); err != nil {
			return nil, err
		}
	} else {
		rs2F, _ := inst.Field("rs2")
		if err := emit(sparc.EncodeOp3("add", p1, machine.Reg(rs1F), machine.Reg(rs2F))); err != nil {
			return nil, err
		}
	}
	// Mask into the segment.
	for _, step := range [][2]uint32{{offMask, 0}, {segBase, 1}} {
		if err := emit(sparc.EncodeSethi(p2, step[0])); err != nil {
			return nil, err
		}
		if err := emit(sparc.EncodeOp3Imm("or", p2, p2, int32(sparc.Lo(step[0])))); err != nil {
			return nil, err
		}
		op := "and"
		if step[1] == 1 {
			op = "or"
		}
		if err := emit(sparc.EncodeOp3(op, p1, p1, p2)); err != nil {
			return nil, err
		}
	}
	// The same-width store to the confined address.
	if err := emit(sparc.EncodeOp3Imm(inst.Name(), machine.Reg(rdF), p1, 0)); err != nil {
		return nil, err
	}
	return eel.NewSnippet(words, []machine.Reg{p1, p2}), nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sandbox:", err)
		os.Exit(1)
	}
}
