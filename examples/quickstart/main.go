// The quickstart example is the paper's Figure 1 tool, end to end:
// open an executable, put a counter on every out-edge of every block
// with more than one successor, write the edited executable, run
// both versions on the bundled SPARC emulator, and show that the
// edited program behaves identically while the counters record every
// branch decision.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eel"
	"eel/internal/asm"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/telemetry"
	"eel/internal/toolmain"
)

// program sums the integers 1..10 with a loop and reports whether
// the result is even — two branch sites to profile.
const program = `
main:	mov 10, %l0
	clr %o0
loop:	add %o0, %l0, %o0
	subcc %l0, 1, %l0
	bne loop
	nop
	and %o0, 1, %l1
	cmp %l1, 0
	bne odd
	nop
	mov 2, %o1        ! even
	ba done
	nop
odd:	mov 1, %o1
done:	mov 1, %g1
	ta 0
`

func main() {
	eng := toolmain.AddEngine(flag.CommandLine)
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	tool, err := tf.Start()
	check(err)
	defer tool.Close(os.Stderr)

	// Assemble the demo program into an executable image.
	prog, err := asm.Assemble(program, 0x10000)
	check(err)
	img := &eel.File{
		Format: "aout",
		Entry:  0x10000,
		Sections: []eel.Section{
			{Name: "text", Addr: 0x10000, Data: prog.Bytes},
		},
		Symbols: []eel.Symbol{
			{Name: "main", Addr: 0x10000, Kind: 0 /* SymFunc */, Global: true},
		},
	}

	// --- The Figure 1 tool ---
	exec, err := eel.Load(img)
	check(err)

	// AnalyzeAll builds every routine's CFG on the concurrent
	// pipeline, including hidden routines discovered along the way —
	// the paper's Figure 1 worklist loop, handled by the library.
	res, err := eel.AnalyzeAll(exec, eel.AnalysisOptions{})
	check(err)

	num := 0
	var counters []uint32
	for _, a := range res.Analyses {
		check(a.Err)
		r := a.Routine
		for _, b := range a.Graph.Blocks {
			if len(b.Succ) <= 1 {
				continue
			}
			for _, e := range b.Succ {
				if e.Uneditable {
					continue
				}
				addr := exec.AllocData(4)
				check(r.AddCodeAlong(e, incrCount(addr)))
				counters = append(counters, addr)
				num++
			}
		}
		check(r.ProduceEditedRoutine())
	}

	edited, err := exec.BuildEdited()
	check(err)
	fmt.Printf("instrumented %d edges; text %d -> %d bytes\n",
		num, len(img.Text().Data), len(edited.Text().Data))

	// --- Run both versions ---
	start := time.Now()
	orig := sim.LoadFile(img, os.Stdout)
	check(eng.Configure(orig))
	check(orig.Run(1_000_000))
	inst := sim.LoadFile(edited, os.Stdout)
	check(eng.Configure(inst))
	check(inst.Run(1_000_000))
	rate := float64(orig.InstCount+inst.InstCount) / time.Since(start).Seconds()
	fmt.Printf("original: exit %d in %d instructions\n", orig.ExitCode, orig.InstCount)
	fmt.Printf("edited:   exit %d in %d instructions (%.0f insts/sec)\n", inst.ExitCode, inst.InstCount, rate)
	if orig.ExitCode != inst.ExitCode {
		fmt.Println("BEHAVIOUR DIVERGED — editing bug!")
		os.Exit(1)
	}
	for i, addr := range counters {
		fmt.Printf("counter %d = %d\n", i, inst.Mem.Read32(addr))
	}
}

// incrCount is the Figure 2 snippet: increment the counter at addr
// through two scavenged registers.
func incrCount(addr uint32) *eel.Snippet {
	p1, p2 := eel.Reg(16), eel.Reg(17)
	hi, err := sparc.EncodeSethi(p1, addr)
	check(err)
	ld, err := sparc.EncodeOp3Imm("ld", p2, p1, int32(sparc.Lo(addr)))
	check(err)
	add, err := sparc.EncodeOp3Imm("add", p2, p2, 1)
	check(err)
	st, err := sparc.EncodeOp3Imm("st", p2, p1, int32(sparc.Lo(addr)))
	check(err)
	return eel.NewSnippet([]uint32{hi, ld, add, st}, []eel.Reg{p1, p2})
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}
