// The cachesim example reproduces Active Memory (paper §1, §5): a
// direct-mapped cache is simulated by inserting a branch-free state
// test before every load and store, bringing cache simulation down
// to the 2-7× slowdown the paper reports (instead of trace
// post-processing).  It generates a synthetic workload, instruments
// it, runs original and instrumented versions on the emulator, and
// reports miss ratio and slowdown.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eel"
	"eel/internal/activemem"
	"eel/internal/progen"
	"eel/internal/sim"
	"eel/internal/telemetry"
	"eel/internal/toolmain"
)

func main() {
	seed := flag.Int64("seed", 11, "workload generator seed")
	routines := flag.Int("routines", 40, "workload size")
	lineBytes := flag.Int("line", 16, "cache line size")
	sets := flag.Int("sets", 256, "direct-mapped sets")
	eng := toolmain.AddEngine(flag.CommandLine)
	tf := telemetry.AddFlags(flag.CommandLine)
	flag.Parse()

	tool, err := tf.Start()
	check(err)
	defer tool.Close(os.Stderr)

	cfg := progen.DefaultConfig(*seed)
	cfg.Routines = *routines
	p, err := progen.Generate(cfg)
	check(err)

	orig := sim.LoadFile(p.File, os.Stdout)
	check(eng.Configure(orig))
	check(orig.Run(500_000_000))

	exec, err := eel.Load(p.File)
	check(err)
	// Analyze the whole program on the concurrent pipeline first;
	// instrumentation below reuses every cached CFG and liveness.
	ares, err := eel.AnalyzeAll(exec, eel.AnalysisOptions{})
	check(err)
	res, err := activemem.Instrument(exec, activemem.Config{LineBytes: *lineBytes, Sets: *sets})
	check(err)
	edited, err := exec.BuildEdited()
	check(err)

	inst := sim.LoadFile(edited, os.Stdout)
	check(eng.Configure(inst))
	simStart := time.Now()
	check(inst.Run(2_000_000_000))
	simRate := float64(inst.InstCount) / time.Since(simStart).Seconds()
	if inst.ExitCode != orig.ExitCode {
		fmt.Fprintln(os.Stderr, "cachesim: edited program diverged!")
		os.Exit(1)
	}

	accesses, misses := res.Counts(inst.Mem)
	slowdown := float64(inst.InstCount) / float64(orig.InstCount)
	fmt.Printf("workload: %d routines, %d memory sites instrumented\n", *routines, res.Sites)
	fmt.Printf("analysis: %d routines at %.0f routines/s (%d workers)\n",
		ares.Stats.Routines, ares.Stats.RoutinesPerSec(), ares.Stats.Workers)
	fmt.Printf("cache: %d sets x %dB lines (%d KB direct-mapped)\n",
		*sets, *lineBytes, *sets**lineBytes/1024)
	fmt.Printf("original run:     %10d instructions\n", orig.InstCount)
	fmt.Printf("instrumented run: %10d instructions (%.1fx slowdown — paper reports 2-7x) at %.0f insts/sec\n",
		inst.InstCount, slowdown, simRate)
	fmt.Printf("accesses %d, misses %d (%.1f%% miss ratio)\n",
		accesses, misses, 100*float64(misses)/float64(max(1, accesses)))
}

func max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachesim:", err)
		os.Exit(1)
	}
}
