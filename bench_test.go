package eel_test

// Benchmarks regenerating the paper's tables and figures (see
// DESIGN.md's experiment index) plus ablations of the design choices
// DESIGN.md calls out.  Custom metrics carry the paper's "shape"
// numbers: slowdown ratios, size ratios, analysis rates.

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"eel"
	"eel/internal/activemem"
	"eel/internal/asm"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/mips"
	"eel/internal/progen"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
	"eel/internal/telemetry"
)

// benchProgram caches one medium workload for the benchmarks: seed
// 2012 executes ~43k instructions including ~800 dispatch-table
// jumps, so the slicing and folding ablations have something to
// measure.
var benchProgram = func() *progen.Program {
	cfg := progen.DefaultConfig(2012)
	cfg.Routines = 60
	return progen.MustGenerate(cfg)
}()

// BenchmarkTable1QptVsQpt2 is experiment E1: instrumentation
// throughput and output quality of the ad-hoc baseline vs EEL,
// unoptimized and optimized.
func BenchmarkTable1QptVsQpt2(b *testing.B) {
	variants := []struct {
		name string
		mode qpt.Mode
		opts func(e *core.Executable)
	}{
		{"qpt-adhoc", qpt.Light, nil},
		{"qpt2", qpt.Full, func(e *core.Executable) {
			e.Scavenge = false
			e.FoldDelaySlots = false
		}},
		{"qpt2-O2", qpt.Full, nil},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			var textBytes, runInsts float64
			for i := 0; i < b.N; i++ {
				e, err := core.NewExecutable(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.ReadContents(); err != nil {
					b.Fatal(err)
				}
				if v.opts != nil {
					v.opts(e)
				}
				if _, err := qpt.Instrument(e, v.mode); err != nil {
					b.Fatal(err)
				}
				edited, err := e.BuildEdited()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.StopTimer()
					textBytes = float64(len(edited.Text().Data))
					cpu := sim.LoadFile(edited, nil)
					if err := cpu.Run(2_000_000_000); err != nil {
						b.Fatal(err)
					}
					runInsts = float64(cpu.InstCount)
					b.StartTimer()
				}
			}
			b.ReportMetric(textBytes, "text-bytes")
			b.ReportMetric(runInsts, "run-insts")
		})
	}
}

// BenchmarkIndirectJumpsGCC / SunPro are experiments E2/E3: full
// program analysis including dispatch-table slicing.
func benchmarkJumps(b *testing.B, pers progen.Personality) {
	cfg := progen.DefaultConfig(7)
	cfg.Personality = pers
	p := progen.MustGenerate(cfg)
	var indirect, unresolved int
	for i := 0; i < b.N; i++ {
		indirect, unresolved = 0, 0
		e, err := eel.Load(p.File)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range e.Routines() {
			g, err := r.ControlFlowGraph()
			if err != nil {
				continue
			}
			for _, ij := range g.IndirectJumps {
				indirect++
				if !ij.Resolved {
					unresolved++
				}
			}
		}
	}
	b.ReportMetric(float64(indirect), "ijumps")
	b.ReportMetric(float64(unresolved), "unresolved")
}

func BenchmarkIndirectJumpsGCC(b *testing.B)    { benchmarkJumps(b, progen.GCC) }
func BenchmarkIndirectJumpsSunPro(b *testing.B) { benchmarkJumps(b, progen.SunPro) }

// BenchmarkUneditableFraction is experiment E4 as a CFG-construction
// throughput benchmark.
func BenchmarkUneditableFraction(b *testing.B) {
	p := benchProgram
	var ub, ue, tb, te int
	for i := 0; i < b.N; i++ {
		e, err := eel.Load(p.File)
		if err != nil {
			b.Fatal(err)
		}
		ub, ue, tb, te = 0, 0, 0, 0
		for _, r := range e.Routines() {
			g, err := r.ControlFlowGraph()
			if err != nil {
				continue
			}
			s := g.Stats()
			ub += s.UneditableB
			ue += s.UneditableE
			tb += s.Blocks
			te += s.Edges
		}
	}
	b.ReportMetric(100*float64(ub)/float64(tb), "uneditable-blocks-%")
	b.ReportMetric(100*float64(ue)/float64(te), "uneditable-edges-%")
}

// BenchmarkInstructionSharing is experiment E6's ablation: decode
// throughput and allocations with and without interning.
func BenchmarkInstructionSharing(b *testing.B) {
	text := benchProgram.File.Text()
	for _, intern := range []bool{true, false} {
		name := "interned"
		if !intern {
			name = "uninterned"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			dec := sparc.NewDecoder()
			dec.SetIntern(intern)
			for i := 0; i < b.N; i++ {
				for a := text.Addr; a+4 <= text.End(); a += 4 {
					off := a - text.Addr
					w := uint32(text.Data[off])<<24 | uint32(text.Data[off+1])<<16 |
						uint32(text.Data[off+2])<<8 | uint32(text.Data[off+3])
					dec.Decode(w)
				}
			}
		})
	}
}

// BenchmarkSpawnCompile is experiment E9: compiling machine
// descriptions.
func BenchmarkSpawnCompile(b *testing.B) {
	for _, src := range []struct {
		name string
		text string
	}{{"sparc", sparc.DescriptionSource}, {"mips", mips.DescriptionSource}} {
		b.Run(src.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := spawn.ParseDesc(src.text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkActiveMemory is experiment E10: executing the
// cache-instrumented program; the slowdown metric is the paper's
// headline 2-7x.
func BenchmarkActiveMemory(b *testing.B) {
	cfg := progen.DefaultConfig(1011)
	cfg.MemHeavy = true
	p := progen.MustGenerate(cfg)
	orig := sim.LoadFile(p.File, nil)
	if err := orig.Run(2_000_000_000); err != nil {
		b.Fatal(err)
	}
	e, err := eel.Load(p.File)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := activemem.Instrument(e, activemem.DefaultConfig()); err != nil {
		b.Fatal(err)
	}
	edited, err := e.BuildEdited()
	if err != nil {
		b.Fatal(err)
	}
	var slowdown float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := sim.LoadFile(edited, nil)
		if err := cpu.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
		slowdown = float64(cpu.InstCount) / float64(orig.InstCount)
	}
	b.ReportMetric(slowdown, "slowdown-x")
}

// BenchmarkBlizzardCC is experiment E11: the liveness analysis that
// enables the cc-aware access test.
func BenchmarkBlizzardCC(b *testing.B) {
	e, err := eel.Load(benchProgram.File)
	if err != nil {
		b.Fatal(err)
	}
	var graphs []*eel.CFG
	for _, r := range e.Routines() {
		if g, err := r.ControlFlowGraph(); err == nil {
			graphs = append(graphs, g)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			eel.ComputeLiveness(g)
		}
	}
}

// BenchmarkScavengeVsSpill ablates snippet register scavenging: the
// run-insts metric shows the edited program's execution cost with
// liveness-driven allocation vs always-spilling.
func BenchmarkScavengeVsSpill(b *testing.B) {
	for _, scavenge := range []bool{true, false} {
		name := "scavenge"
		if !scavenge {
			name = "spill"
		}
		b.Run(name, func(b *testing.B) {
			var runInsts float64
			for i := 0; i < b.N; i++ {
				e, err := core.NewExecutable(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.ReadContents(); err != nil {
					b.Fatal(err)
				}
				e.Scavenge = scavenge
				if _, err := qpt.Instrument(e, qpt.Full); err != nil {
					b.Fatal(err)
				}
				edited, err := e.BuildEdited()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.StopTimer()
					cpu := sim.LoadFile(edited, nil)
					if err := cpu.Run(2_000_000_000); err != nil {
						b.Fatal(err)
					}
					runInsts = float64(cpu.InstCount)
					b.StartTimer()
				}
			}
			b.ReportMetric(runInsts, "run-insts")
		})
	}
}

// BenchmarkSliceVsRuntime ablates dispatch-table slicing: resolved
// jumps keep their (rewritten) tables; forcing run-time translation
// shows the cost the slicer avoids.
func BenchmarkSliceVsRuntime(b *testing.B) {
	for _, force := range []bool{false, true} {
		name := "sliced"
		if force {
			name = "runtime-translate"
		}
		b.Run(name, func(b *testing.B) {
			var runInsts float64
			for i := 0; i < b.N; i++ {
				e, err := core.NewExecutable(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.ReadContents(); err != nil {
					b.Fatal(err)
				}
				e.ForceRuntimeTranslation = force
				if _, err := qpt.Instrument(e, qpt.Full); err != nil {
					b.Fatal(err)
				}
				edited, err := e.BuildEdited()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.StopTimer()
					cpu := sim.LoadFile(edited, nil)
					if err := cpu.Run(2_000_000_000); err != nil {
						b.Fatal(err)
					}
					runInsts = float64(cpu.InstCount)
					b.StartTimer()
				}
			}
			b.ReportMetric(runInsts, "run-insts")
		})
	}
}

// BenchmarkDelaySlotFolding ablates folding hoisted slot
// instructions back into delay slots (§3.3): the text-bytes metric
// shows the size cost of leaving them unfolded.
func BenchmarkDelaySlotFolding(b *testing.B) {
	for _, fold := range []bool{true, false} {
		name := "folded"
		if !fold {
			name = "unfolded"
		}
		b.Run(name, func(b *testing.B) {
			var textBytes float64
			for i := 0; i < b.N; i++ {
				e, err := core.NewExecutable(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.ReadContents(); err != nil {
					b.Fatal(err)
				}
				e.FoldDelaySlots = fold
				edited, err := e.BuildEdited()
				if err != nil {
					b.Fatal(err)
				}
				textBytes = float64(len(edited.Text().Data))
			}
			b.ReportMetric(textBytes, "text-bytes")
		})
	}
}

// BenchmarkPipelineParallel is the pipeline scaling experiment: full
// whole-executable analysis (CFG + liveness + dominators + loops) at
// 1, 2, 4, and GOMAXPROCS workers.  The routines/s metric is the
// pipeline's throughput; speedup only appears when the host grants
// more than one CPU.
func BenchmarkPipelineParallel(b *testing.B) {
	workers := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var routines float64
			for i := 0; i < b.N; i++ {
				e, err := eel.Load(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				res, err := eel.AnalyzeAll(e, eel.AnalysisOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				routines = float64(res.Stats.Routines)
			}
			b.ReportMetric(routines, "routines")
			b.ReportMetric(routines*float64(b.N)/b.Elapsed().Seconds(), "routines/s")
		})
	}
}

// BenchmarkPipelineCache measures the memoizing analysis cache: cold
// is a first analysis into an empty cache, warm re-analyzes a fresh
// executable with every routine served from cache.
func BenchmarkPipelineCache(b *testing.B) {
	for _, warm := range []bool{false, true} {
		name := "cold"
		if warm {
			name = "warm"
		}
		b.Run(name, func(b *testing.B) {
			var cache *eel.AnalysisCache
			if warm {
				cache = eel.NewAnalysisCache(0)
				e, err := eel.Load(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := eel.AnalyzeAll(e, eel.AnalysisOptions{Cache: cache}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
			}
			var hitRate float64
			for i := 0; i < b.N; i++ {
				if !warm {
					cache = eel.NewAnalysisCache(0)
				}
				e, err := eel.Load(benchProgram.File)
				if err != nil {
					b.Fatal(err)
				}
				res, err := eel.AnalyzeAll(e, eel.AnalysisOptions{Cache: cache})
				if err != nil {
					b.Fatal(err)
				}
				hitRate = res.Stats.CacheHitRate()
			}
			b.ReportMetric(100*hitRate, "hit-%")
		})
	}
}

// BenchmarkCFGConstruction measures the core analysis kernel.
func BenchmarkCFGConstruction(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, err := eel.Load(benchProgram.File)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range e.Routines() {
			if _, err := r.ControlFlowGraph(); err != nil {
				continue
			}
		}
	}
}

// BenchmarkDominators measures dominator computation over the corpus.
func BenchmarkDominators(b *testing.B) {
	e, err := eel.Load(benchProgram.File)
	if err != nil {
		b.Fatal(err)
	}
	var graphs []*eel.CFG
	for _, r := range e.Routines() {
		if g, err := r.ControlFlowGraph(); err == nil {
			graphs = append(graphs, g)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range graphs {
			idom := dataflow.Dominators(g)
			dataflow.NaturalLoops(g, idom)
		}
	}
}

// BenchmarkEmulator measures raw emulation speed (simulated
// instructions per second).
func BenchmarkEmulator(b *testing.B) {
	start := time.Now()
	var insts uint64
	for i := 0; i < b.N; i++ {
		cpu := sim.LoadFile(benchProgram.File, nil)
		if err := cpu.Run(2_000_000_000); err != nil {
			b.Fatal(err)
		}
		insts += cpu.InstCount
	}
	sec := time.Since(start).Seconds()
	if sec > 0 {
		b.ReportMetric(float64(insts)/sec, "sim-insts/s")
	}
}

// benchLoopProgram is the loop-heavy flavour: a hot counted loop in
// main repeatedly calls the routine DAG, so execution is dominated by
// the same paths crossing many block boundaries — the workload where
// inter-block dispatch overhead (and therefore chaining and trace
// extension) matters most.
var benchLoopProgram = func() *progen.Program {
	cfg := progen.DefaultConfig(2012)
	cfg.BodyOps = 12
	cfg.HotLoop = 8000
	return progen.MustGenerate(cfg)
}()

// benchCallProgram is the call-heavy flavour: every non-tail routine
// makes windowed calls deeper into the DAG, so execution is dominated
// by call/return boundaries — exactly where the routine tier's
// zero-spill cross-routine continuation pays and where per-block
// engines pay dispatch on every transfer.
var benchCallProgram = func() *progen.Program {
	cfg := progen.DefaultConfig(2012)
	cfg.Routines = 30 // ~5.9M executed insts: big enough to dwarf load/translate fixed costs, small enough for the interpreter leg of CI
	cfg.CallHeavy = true
	return progen.MustGenerate(cfg)
}()

// simFlavours are the workloads the engine benchmarks run; bench.sh
// records each flavour separately in BENCH_sim.json.
var simFlavours = []struct {
	name string
	prog *progen.Program
}{
	{"medium", benchProgram},
	{"loopheavy", benchLoopProgram},
	{"callheavy", benchCallProgram},
}

// benchmarkSim runs each workload flavour end to end in one of the
// four execution engines and reports simulated instructions per
// second; chained runs also report chain/IC hit rates and traces,
// routine runs the tier counters.  The routine tier compiles
// synchronously at the lowest heat threshold so every iteration
// measures steady-state routine execution (the content-addressed
// program cache makes compilation a lookup after the first
// iteration, mirroring a warmed long-running process).
func benchmarkSim(b *testing.B, nojit, nochain, routine bool) {
	for _, f := range simFlavours {
		prog := f.prog
		b.Run(f.name, func(b *testing.B) {
			start := time.Now()
			var insts uint64
			var k sim.Counters
			for i := 0; i < b.N; i++ {
				cpu := sim.LoadFile(prog.File, nil)
				cpu.NoJIT, cpu.NoChain = nojit, nochain
				if routine {
					cpu.EnableRoutines = true
					cpu.RoutineSync = true
					cpu.RoutineHotThreshold = 1
				}
				if err := cpu.Run(2_000_000_000); err != nil {
					b.Fatal(err)
				}
				insts += cpu.InstCount
				k = cpu.Counters()
			}
			sec := time.Since(start).Seconds()
			if sec > 0 {
				b.ReportMetric(float64(insts)/sec, "sim-insts/s")
			}
			if routine {
				b.ReportMetric(float64(k.RoutinesCompiled), "routines-compiled")
				b.ReportMetric(float64(k.RoutineDeopts), "routine-deopts")
			} else if !nojit && !nochain {
				b.ReportMetric(hitPct(k.ChainHits, k.ChainMisses), "chain-hit-%")
				b.ReportMetric(hitPct(k.ICHits, k.ICMisses), "ic-hit-%")
				b.ReportMetric(float64(k.Traces), "traces")
				b.ReportMetric(float64(k.VictimHits), "victim-hits")
			}
		})
	}
}

func hitPct(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}

// BenchmarkSimInterp is the single-step AST-interpreter baseline.
func BenchmarkSimInterp(b *testing.B) { benchmarkSim(b, true, false, false) }

// BenchmarkSimTranslated is the translation-cache (threaded-code)
// engine with chaining disabled — every superblock exit returns to
// the dispatcher, as in the original engine; its sim-insts/s over
// BenchmarkSimInterp's is the translation speedup.
func BenchmarkSimTranslated(b *testing.B) { benchmarkSim(b, false, true, false) }

// BenchmarkSimChained is the block engine — translation cache plus
// block chaining, indirect-jump inline caches, and trace extension.
// Its sim-insts/s over BenchmarkSimTranslated's isolates the dispatch
// overhead that chaining removes.
func BenchmarkSimChained(b *testing.B) { benchmarkSim(b, false, false, false) }

// BenchmarkSimRoutine is the whole-routine tier on top of the chained
// engine: hot routine entries are compiled against CFG + liveness into
// flat programs where registers and condition codes stay in locals
// across block boundaries.  Its sim-insts/s over BenchmarkSimChained's
// is the residency speedup.
func BenchmarkSimRoutine(b *testing.B) { benchmarkSim(b, false, false, true) }

// BenchmarkSimTelemetry is the observability-overhead experiment: the
// same workload AND the same engine as BenchmarkSimTranslated with
// telemetry fully enabled (process-wide registry + tracer).  Its
// sim-insts/s against BenchmarkSimTranslated's is the enabled cost; the
// disabled cost is what BenchmarkSimTranslated itself pays (the
// nil-sink branches) and is held under 2% by publishing counters per
// Run, not per step.  The engine flags must match the baseline's —
// an earlier version ran the (faster) chained engine here and reported
// a nonsensical 0.749 "overhead" — so overhead = base/telemetry is
// >= ~1.0 by construction and benchmerge -check gates its ceiling.
func BenchmarkSimTelemetry(b *testing.B) {
	telemetry.Enable()
	telemetry.SetTracer(telemetry.NewTracer())
	defer func() {
		telemetry.SetTracer(nil)
		telemetry.Disable()
	}()
	benchmarkSim(b, false, true, false)
}

// BenchmarkSimProfiled measures the per-pc profiling hooks eelprof
// uses: per-instruction hotness recording on top of the translation
// cache.  The CPU runs with default engine flags — the chained engine,
// held on its fully-instrumented path while a profile is attached — so
// the same-engine baseline is BenchmarkSimChained.  It runs only the
// medium flavour, as a named sub-benchmark so benchmerge pairs it with
// BenchmarkSimChained/medium when deriving profiling_overhead.
func BenchmarkSimProfiled(b *testing.B) {
	b.Run("medium", func(b *testing.B) {
		start := time.Now()
		var insts uint64
		for i := 0; i < b.N; i++ {
			cpu := sim.LoadFile(benchProgram.File, nil)
			prof := cpu.EnableProfile()
			if err := cpu.Run(2_000_000_000); err != nil {
				b.Fatal(err)
			}
			if prof.Branches == 0 {
				b.Fatal("profile recorded no branches")
			}
			insts += cpu.InstCount
		}
		sec := time.Since(start).Seconds()
		if sec > 0 {
			b.ReportMetric(float64(insts)/sec, "sim-insts/s")
		}
	})
}

// BenchmarkAssemble measures the two-pass assembler.
func BenchmarkAssemble(b *testing.B) {
	src := benchProgram.Source
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src, 0x10000); err != nil {
			b.Fatal(err)
		}
	}
}
