package eel_test

// Tests of the public API surface: the five abstractions as a
// downstream user of the library sees them.

import (
	"testing"

	"eel"
	"eel/internal/asm"
	"eel/internal/machine"
	"eel/internal/progen"
	"eel/internal/sim"
	"eel/internal/sparc"
)

func apiExec(t *testing.T, seed int64) *eel.Executable {
	t.Helper()
	p := progen.MustGenerate(progen.DefaultConfig(seed))
	e, err := eel.Load(p.File)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestOpenFromDisk(t *testing.T) {
	p := progen.MustGenerate(progen.DefaultConfig(50))
	path := t.TempDir() + "/prog"
	data, err := eel.WriteImage(p.File)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eel.ReadImage(data); err != nil {
		t.Fatal(err)
	}
	// Round-trip through the filesystem.
	if err := eel.WriteImageFile(path, p.File); err != nil {
		t.Fatal(err)
	}
	e, err := eel.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Routines()) < 5 {
		t.Fatalf("routines = %d", len(e.Routines()))
	}
}

func TestPublicAnalyses(t *testing.T) {
	e := apiExec(t, 51)
	r := e.Routines()[1]
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	idom := eel.Dominators(g)
	if idom[g.Entry] != g.Entry {
		t.Error("dominators broken through facade")
	}
	loops := eel.NaturalLoops(g)
	_ = loops
	lv := eel.ComputeLiveness(g)
	if lv == nil {
		t.Fatal("liveness nil")
	}
	// Category constants re-exported coherently.
	for _, b := range g.Blocks {
		for _, in := range b.Insts {
			c := in.MI.Category()
			if c == eel.CatInvalid && b.Kind == eel.KindNormal {
				t.Fatalf("invalid instruction inside normal block at %#x", in.Addr)
			}
		}
	}
}

func TestInstructionInquiries(t *testing.T) {
	// The §3.4 inquiry set on a handful of instructions, through the
	// public types.
	prog := asm.MustAssemble(`
	ld [%g1+4], %o0
	st %o0, [%g1]
	call target
	nop
target:	retl
	nop
`, 0x10000)
	e, err := eel.Load(&eel.File{
		Format:   "aout",
		Entry:    0x10000,
		Sections: []eel.Section{{Name: "text", Addr: 0x10000, Data: prog.Bytes}},
		Symbols:  []eel.Symbol{{Name: "main", Addr: 0x10000, Global: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, err := e.Routines()[0].ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	first := g.ByAddr[0x10000]
	ld := first.Insts[0].MI
	if !ld.ReadsMem() || ld.WritesMem() || ld.MemWidth() != 4 {
		t.Error("load inquiries wrong")
	}
	st := first.Insts[1].MI
	if !st.WritesMem() || st.ReadsMem() {
		t.Error("store inquiries wrong")
	}
	call := first.Insts[2].MI
	if call.Category() != eel.CatCallDirect || call.DelaySlots() != 1 {
		t.Error("call inquiries wrong")
	}
	if tgt, ok := call.StaticTarget(0x10008); !ok || tgt != prog.Labels["target"] {
		t.Error("call target wrong")
	}
}

func TestSnippetCallback(t *testing.T) {
	// The §3.5 call-back: invoked after register allocation with the
	// final address, allowed to rewrite words in place.
	prog := asm.MustAssemble(`
main:	cmp %o0, 0
	bne skip
	nop
	add %o0, 1, %o0
skip:	mov 1, %g1
	ta 0
`, 0x10000)
	e, err := eel.Load(&eel.File{
		Format:   "aout",
		Entry:    0x10000,
		Sections: []eel.Section{{Name: "text", Addr: 0x10000, Data: prog.Bytes}},
		Symbols:  []eel.Symbol{{Name: "main", Addr: 0x10000, Global: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Routines()[0]
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	ctr := e.AllocData(4)
	var cbAddr uint32
	var cbAssign map[eel.Reg]eel.Reg
	p1, p2 := eel.Reg(16), eel.Reg(17)
	hi, _ := sparc.EncodeSethi(p1, ctr)
	ld, _ := sparc.EncodeOp3Imm("ld", p2, p1, int32(sparc.Lo(ctr)))
	add, _ := sparc.EncodeOp3Imm("add", p2, p2, 1)
	st, _ := sparc.EncodeOp3Imm("st", p2, p1, int32(sparc.Lo(ctr)))
	snip := &eel.Snippet{
		Body:      []uint32{hi, ld, add, st},
		AllocRegs: []eel.Reg{p1, p2},
		Callback: func(words []uint32, addr uint32, assign map[machine.Reg]machine.Reg) {
			cbAddr = addr
			cbAssign = assign
			// Rewrite the increment to +2 (same length).
			w, _ := sparc.EncodeOp3Imm("add", assign[p2], assign[p2], 2)
			words[2] = w
		},
	}
	// Instrument both out-edges of the branch: whichever path runs,
	// the counter must step by the callback-rewritten amount.
	edited := 0
	for _, b := range g.Blocks {
		if len(b.Succ) <= 1 || b.Kind != eel.KindNormal {
			continue
		}
		for _, edge := range b.Succ {
			if !edge.Uneditable {
				if err := r.AddCodeAlong(edge, snip); err != nil {
					t.Fatal(err)
				}
				edited++
			}
		}
	}
	if edited == 0 {
		t.Fatal("no editable edge")
	}
	img, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	if cbAddr == 0 || cbAssign == nil {
		t.Fatal("callback not invoked with placement info")
	}
	text := img.Text()
	if cbAddr < text.Addr || cbAddr >= text.End() {
		t.Errorf("callback address %#x outside edited text", cbAddr)
	}
	// The callback's rewrite is live: the counter steps by 2.
	cpu := sim.LoadFile(img, nil)
	if err := cpu.Run(10000); err != nil {
		t.Fatal(err)
	}
	if got := cpu.Mem.Read32(ctr); got != 2 {
		t.Errorf("counter = %d, want 2 (callback rewrite lost)", got)
	}
}

func TestBlizzardAlternateBody(t *testing.T) {
	// A snippet whose body clobbers the condition codes must use its
	// cc-preserving alternative where the codes are live, and the
	// fast body elsewhere (§5's Blizzard optimization).
	prog := asm.MustAssemble(`
main:	cmp %o0, 5
	ld [%g1], %o1      ! cc LIVE here (cmp feeds the branch)
	bne skip
	nop
	ld [%g1+4], %o2    ! cc dead here
	add %o0, 1, %o0
skip:	mov 1, %g1
	ta 0
`, 0x10000)
	e, err := eel.Load(&eel.File{
		Format:   "aout",
		Entry:    0x10000,
		Sections: []eel.Section{{Name: "text", Addr: 0x10000, Data: prog.Bytes}},
		Symbols:  []eel.Symbol{{Name: "main", Addr: 0x10000, Global: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Routines()[0]
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	p1 := eel.Reg(16)
	fast, _ := sparc.EncodeOp3Imm("subcc", p1, 0, 1) // clobbers cc
	slow, _ := sparc.EncodeOp3Imm("sub", p1, 0, 1)   // preserves cc
	mkSnip := func() *eel.Snippet {
		return &eel.Snippet{Body: []uint32{fast}, CCAlt: []uint32{slow}, AllocRegs: []eel.Reg{p1}}
	}
	// Instrument before each ld.
	count := 0
	for _, b := range g.Blocks {
		for i, in := range b.Insts {
			if in.MI.ReadsMem() && !b.Uneditable {
				if err := r.AddCodeBefore(b, i, mkSnip()); err != nil {
					t.Fatal(err)
				}
				count++
			}
		}
	}
	if count != 2 {
		t.Fatalf("instrumented %d loads", count)
	}
	if _, err := e.BuildEdited(); err != nil {
		t.Fatal(err)
	}
	if e.Stats.CCLive != 1 {
		t.Errorf("cc-live sites = %d, want exactly 1 (the load between cmp and bne)", e.Stats.CCLive)
	}
	if e.Stats.Sites != 2 {
		t.Errorf("sites = %d", e.Stats.Sites)
	}
}

func TestCCLiveWithoutAlternativeFails(t *testing.T) {
	prog := asm.MustAssemble(`
main:	cmp %o0, 5
	ld [%g1], %o1
	bne main
	nop
	mov 1, %g1
	ta 0
`, 0x10000)
	e, err := eel.Load(&eel.File{
		Format:   "aout",
		Entry:    0x10000,
		Sections: []eel.Section{{Name: "text", Addr: 0x10000, Data: prog.Bytes}},
		Symbols:  []eel.Symbol{{Name: "main", Addr: 0x10000, Global: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := e.Routines()[0]
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	p1 := eel.Reg(16)
	fast, _ := sparc.EncodeOp3Imm("subcc", p1, 0, 1)
	snip := &eel.Snippet{Body: []uint32{fast}, AllocRegs: []eel.Reg{p1}}
	b := g.ByAddr[0x10000]
	if err := r.AddCodeBefore(b, 1, snip); err != nil {
		t.Fatal(err)
	}
	if _, err := e.BuildEdited(); err == nil {
		t.Error("cc-clobbering snippet at a cc-live point must fail without an alternative")
	}
}
