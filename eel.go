// Package eel is a Go implementation of EEL (Executable Editing
// Library), the machine-independent executable editing system of
// Larus and Schnarr (PLDI 1995).  EEL lets a tool analyze and modify
// a compiled program — without source code, compiler, or linker
// cooperation — through five abstractions:
//
//   - Executable: code and data from an executable file, behind a
//     format-independent container layer, with the paper's
//     symbol-table refinement (hidden routines, multiple entry
//     points, stripped-executable recovery).
//   - Routine: a named text-segment entity and the gateway to
//     analysis and editing.
//   - CFG: the routine's control-flow graph, normalized so delayed
//     branches, annulled slots, and calls present no machine detail
//     to tools (delay-slot instructions hoisted onto edges, call
//     surrogate blocks, virtual entry/exit).
//   - Inst: a machine-independent instruction with category,
//     register read/write sets, memory width, and static targets —
//     derived by the spawn machine-description compiler from a
//     ~150-line description rather than handwritten code.
//   - Snippet: machine-specific foreign code with
//     liveness-driven register scavenging, spill wrapping, and
//     placement call-backs.
//
// A minimal branch-counting tool (the paper's Figure 1):
//
//	exec, _ := eel.Open("a.out")
//	for _, r := range exec.Routines() {
//		g, _ := r.ControlFlowGraph()
//		for _, b := range g.Blocks {
//			if len(b.Succ) > 1 {
//				for _, e := range b.Succ {
//					r.AddCodeAlong(e, counterSnippet(next()))
//				}
//			}
//		}
//		r.ProduceEditedRoutine()
//	}
//	exec.WriteEditedExecutable("a.out.count")
//
// The machine layer targets SPARC V8; programs execute on the
// bundled emulator (eel/internal/sim), which runs directly off the
// same machine description.
package eel

import (
	_ "eel/internal/aout"  // register the a.out container format
	_ "eel/internal/elf32" // register the ELF32 container format

	"eel/internal/binfile"
	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/pipeline"
)

// Core abstractions (paper §3).
type (
	// Executable is an opened program image (§3.1).
	Executable = core.Executable
	// Routine is a text-segment entity (§3.2).
	Routine = core.Routine
	// Snippet is foreign code to insert (§3.5).
	Snippet = core.Snippet
	// ScavengeStats counts snippet register-allocation outcomes.
	ScavengeStats = core.ScavengeStats

	// CFG is a routine's normalized control-flow graph (§3.3).
	CFG = cfg.Graph
	// Block is a basic block.
	Block = cfg.Block
	// Edge is a control-flow edge.
	Edge = cfg.Edge
	// BlockKind distinguishes normal, entry/exit, delay-slot, and
	// call-surrogate blocks.
	BlockKind = cfg.BlockKind
	// EdgeKind distinguishes fall/taken/call/return/entry/exit
	// edges.
	EdgeKind = cfg.EdgeKind
	// CFGInst is an instruction at a text address.
	CFGInst = cfg.Inst
	// IndirectJump describes a register-indirect jump and its
	// dispatch-table resolution.
	IndirectJump = cfg.IndirectJump

	// Inst is a machine-independent instruction (§3.4).
	Inst = machine.Inst
	// Category classifies instructions.
	Category = machine.Category
	// Reg names a register.
	Reg = machine.Reg
	// RegSet is a register set.
	RegSet = machine.RegSet

	// Liveness holds live-register analysis results.
	Liveness = dataflow.Liveness
	// Loop is a natural loop.
	Loop = dataflow.Loop

	// File is a format-independent executable image.
	File = binfile.File
	// Section is one loadable section.
	Section = binfile.Section
	// Symbol is one symbol-table entry.
	Symbol = binfile.Symbol

	// AnalysisOptions configures AnalyzeAll (zero value: GOMAXPROCS
	// workers, every analysis stage, no cache).
	AnalysisOptions = pipeline.Options
	// AnalysisResult is a whole-executable analysis with stats.
	AnalysisResult = pipeline.Result
	// RoutineAnalysis is one routine's analysis bundle.
	RoutineAnalysis = pipeline.RoutineAnalysis
	// AnalysisStats reports pipeline timing, throughput, and cache
	// behaviour.
	AnalysisStats = pipeline.Stats
	// AnalysisCache memoizes routine analyses across runs,
	// content-addressed by the routine's machine words.
	AnalysisCache = pipeline.Cache
)

// Block kinds.
const (
	KindNormal        = cfg.KindNormal
	KindEntry         = cfg.KindEntry
	KindExit          = cfg.KindExit
	KindDelaySlot     = cfg.KindDelaySlot
	KindCallSurrogate = cfg.KindCallSurrogate
)

// Edge kinds.
const (
	EdgeFall   = cfg.EdgeFall
	EdgeTaken  = cfg.EdgeTaken
	EdgeCall   = cfg.EdgeCall
	EdgeReturn = cfg.EdgeReturn
	EdgeEntry  = cfg.EdgeEntry
	EdgeExit   = cfg.EdgeExit
)

// Instruction categories (§3.4).
const (
	CatInvalid      = machine.CatInvalid
	CatCompute      = machine.CatCompute
	CatBranch       = machine.CatBranch
	CatJumpDirect   = machine.CatJumpDirect
	CatJumpIndirect = machine.CatJumpIndirect
	CatCallDirect   = machine.CatCallDirect
	CatCallIndirect = machine.CatCallIndirect
	CatReturn       = machine.CatReturn
	CatLoad         = machine.CatLoad
	CatStore        = machine.CatStore
	CatLoadStore    = machine.CatLoadStore
	CatSystem       = machine.CatSystem
)

// Open reads, refines, and wraps the executable at path.
func Open(path string) (*Executable, error) {
	e, err := core.OpenExecutable(path)
	if err != nil {
		return nil, err
	}
	if err := e.ReadContents(); err != nil {
		return nil, err
	}
	return e, nil
}

// Load wraps an already-parsed image and refines its symbol table.
func Load(f *File) (*Executable, error) {
	e, err := core.NewExecutable(f)
	if err != nil {
		return nil, err
	}
	if err := e.ReadContents(); err != nil {
		return nil, err
	}
	return e, nil
}

// ReadImage parses raw executable bytes (auto-detecting the format).
func ReadImage(data []byte) (*File, error) { return binfile.Read(data) }

// WriteImage serializes an image in its declared format.
func WriteImage(f *File) ([]byte, error) { return binfile.Write(f) }

// WriteImageFile serializes an image to a file.
func WriteImageFile(path string, f *File) error { return binfile.WriteFile(path, f) }

// NewSnippet builds a snippet from machine words with the given
// placeholder registers.
func NewSnippet(body []uint32, alloc []Reg) *Snippet {
	return core.NewSnippet(body, alloc)
}

// AnalyzeAll analyzes every routine of exec concurrently — CFG
// construction with indirect-jump slicing, liveness, dominators, and
// natural loops — using a bounded worker pool, and returns one bundle
// per routine in routine order.  Results are identical to a
// sequential walk for any worker count; hidden routines discovered
// during analysis are included.  See pipeline.Options for worker
// count, stage selection, and memoization.
func AnalyzeAll(exec *Executable, opts AnalysisOptions) (*AnalysisResult, error) {
	return pipeline.AnalyzeAll(exec, opts)
}

// NewAnalysisCache builds a bounded analysis cache for
// AnalysisOptions.Cache (capacity <= 0 selects the default).
func NewAnalysisCache(capacity int) *AnalysisCache { return pipeline.NewCache(capacity) }

// ComputeLiveness runs live-register analysis over g with the
// standard exit convention.
func ComputeLiveness(g *CFG) *Liveness {
	return dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
}

// Dominators computes immediate dominators.
func Dominators(g *CFG) map[*Block]*Block { return dataflow.Dominators(g) }

// NaturalLoops finds natural loops.
func NaturalLoops(g *CFG) []*Loop {
	return dataflow.NaturalLoops(g, dataflow.Dominators(g))
}
