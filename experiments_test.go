package eel_test

// This file regenerates every measurement in the paper's evaluation
// (see DESIGN.md's experiment index E1-E15 and EXPERIMENTS.md for
// paper-vs-measured numbers).  Run with -v to see the tables.

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"eel"
	"eel/internal/activemem"
	"eel/internal/alpha"
	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/mips"
	"eel/internal/progen"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// corpus generates a deterministic program set with the given
// personality (the SPEC92 substitute).
func corpus(t testing.TB, personality progen.Personality, programs, routines int) []*progen.Program {
	t.Helper()
	out := make([]*progen.Program, programs)
	for i := range out {
		cfg := progen.DefaultConfig(int64(1000 + i))
		cfg.Personality = personality
		cfg.Routines = routines
		p, err := progen.Generate(cfg)
		if err != nil {
			t.Fatalf("progen: %v", err)
		}
		out[i] = p
	}
	return out
}

// analyze opens a program and builds every routine's CFG.
func analyze(t testing.TB, p *progen.Program) *eel.Executable {
	t.Helper()
	e, err := eel.Load(p.File)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Routines() {
		if _, err := r.ControlFlowGraph(); err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
	}
	for {
		h := e.TakeHidden()
		if h == nil {
			break
		}
		if _, err := h.ControlFlowGraph(); err != nil {
			t.Fatalf("%s: %v", h.Name, err)
		}
	}
	return e
}

// jumpStats aggregates the paper's §3.3 indirect-jump measurement.
type jumpStats struct {
	routines     int
	instructions uint64
	indirect     int
	unanalyzable int
	tailIdiom    int
}

func measureJumps(t testing.TB, programs []*progen.Program) jumpStats {
	t.Helper()
	var s jumpStats
	for _, p := range programs {
		e := analyze(t, p)
		for _, r := range e.Routines() {
			g, err := r.ControlFlowGraph()
			if err != nil {
				continue
			}
			if g.HasData {
				// A data table under a routine-like symbol: its
				// "jumps" are garbage words, which EEL classifies
				// as data, not control flow (§3.1 step 4).
				continue
			}
			s.routines++
			for _, b := range g.Blocks {
				if b.Kind == cfg.KindNormal {
					s.instructions += uint64(len(b.Insts))
				}
			}
			for _, ij := range g.IndirectJumps {
				s.indirect++
				if !ij.Resolved {
					s.unanalyzable++
					// Attribute to the tail-call pop-and-jump idiom
					// when the jump reads a global register set by
					// the caller (the fp-slot protocol uses %g5).
					last := ij.Block.Last()
					if last != nil && last.MI.Reads().Has(5) {
						s.tailIdiom++
					}
				}
			}
		}
	}
	return s
}

// TestIndirectJumpTableGCC is experiment E2: the gcc/SunOS row of the
// paper's §3.3 measurement — every indirect jump analyzable.
func TestIndirectJumpTableGCC(t *testing.T) {
	s := measureJumps(t, corpus(t, progen.GCC, 6, 40))
	t.Logf("gcc personality: %d routines, %d instructions, %d indirect jumps, %d unanalyzable",
		s.routines, s.instructions, s.indirect, s.unanalyzable)
	if s.indirect == 0 {
		t.Fatal("corpus produced no indirect jumps")
	}
	if s.unanalyzable != 0 {
		t.Errorf("paper found 0 unanalyzable indirect jumps for gcc; got %d of %d",
			s.unanalyzable, s.indirect)
	}
}

// TestIndirectJumpTableSunPro is experiment E3: the SunPro/Solaris
// row — a nonzero set of unanalyzable jumps, every one caused by the
// pop-frame-and-jump tail-call idiom.
func TestIndirectJumpTableSunPro(t *testing.T) {
	s := measureJumps(t, corpus(t, progen.SunPro, 6, 40))
	t.Logf("sunpro personality: %d routines, %d instructions, %d indirect jumps, %d unanalyzable (%d tail idiom)",
		s.routines, s.instructions, s.indirect, s.unanalyzable, s.tailIdiom)
	if s.unanalyzable == 0 {
		t.Fatal("SunPro personality should produce unanalyzable jumps")
	}
	if s.tailIdiom != s.unanalyzable {
		t.Errorf("paper attributes all unanalyzable jumps to the tail-call idiom; got %d of %d",
			s.tailIdiom, s.unanalyzable)
	}
}

// TestUneditableFraction is experiment E4: the paper reports 15-20 %
// of blocks and edges uneditable.
func TestUneditableFraction(t *testing.T) {
	var agg cfg.Stats
	for _, p := range corpus(t, progen.GCC, 4, 40) {
		e := analyze(t, p)
		for _, r := range e.Routines() {
			g, err := r.ControlFlowGraph()
			if err != nil {
				continue
			}
			s := g.Stats()
			agg.Blocks += s.Blocks
			agg.Edges += s.Edges
			agg.UneditableB += s.UneditableB
			agg.UneditableE += s.UneditableE
		}
	}
	bf := 100 * float64(agg.UneditableB) / float64(agg.Blocks)
	ef := 100 * float64(agg.UneditableE) / float64(agg.Edges)
	t.Logf("uneditable: %.1f%% of %d blocks, %.1f%% of %d edges (paper: 15-20%%)",
		bf, agg.Blocks, ef, agg.Edges)
	if bf < 8 || bf > 30 || ef < 8 || ef > 30 {
		t.Errorf("uneditable fraction %.1f%%/%.1f%% far from the paper's 15-20%% band", bf, ef)
	}
}

// TestCFGBlockBreakdown is experiment E7: the paper's §5 footnote
// block composition (delay-slot, entry/exit, and call-surrogate
// blocks dominate the difference vs a naive CFG).
func TestCFGBlockBreakdown(t *testing.T) {
	var agg cfg.Stats
	for _, p := range corpus(t, progen.GCC, 4, 40) {
		e := analyze(t, p)
		for _, r := range e.Routines() {
			g, err := r.ControlFlowGraph()
			if err != nil {
				continue
			}
			s := g.Stats()
			agg.Blocks += s.Blocks
			agg.NormalBlocks += s.NormalBlocks
			agg.DelaySlotBlocks += s.DelaySlotBlocks
			agg.EntryExitBlocks += s.EntryExitBlocks
			agg.CallSurrogates += s.CallSurrogates
		}
	}
	t.Logf("blocks: %d total = %d normal + %d delay-slot + %d entry/exit + %d call-surrogate",
		agg.Blocks, agg.NormalBlocks, agg.DelaySlotBlocks, agg.EntryExitBlocks, agg.CallSurrogates)
	if agg.DelaySlotBlocks == 0 || agg.CallSurrogates == 0 || agg.EntryExitBlocks == 0 {
		t.Error("expected all three synthetic block kinds (paper §5 footnote)")
	}
	if agg.Blocks <= agg.NormalBlocks {
		t.Error("normalization should add blocks over the naive count")
	}
}

// TestInstructionSharingFactor is experiment E6: interning one Inst
// per distinct machine word reduces allocations roughly fourfold
// (§3.4).
func TestInstructionSharingFactor(t *testing.T) {
	p := corpus(t, progen.GCC, 1, 80)[0]
	dec := sparc.NewDecoder()
	text := p.File.Text()
	for a := text.Addr; a+4 <= text.End(); a += 4 {
		w := uint32(text.Data[a-text.Addr])<<24 | uint32(text.Data[a-text.Addr+1])<<16 |
			uint32(text.Data[a-text.Addr+2])<<8 | uint32(text.Data[a-text.Addr+3])
		dec.Decode(w)
	}
	decodes, unique := dec.SharingStats()
	factor := float64(decodes) / float64(unique)
	t.Logf("decoded %d words, %d unique instruction objects: sharing factor %.1fx (paper: ~4x)",
		decodes, unique, factor)
	if factor < 2 {
		t.Errorf("sharing factor %.1f too low", factor)
	}
}

// TestFigure1BranchCounting is experiment E13: the full Figure 1
// tool validated against emulator ground truth on a known workload.
func TestFigure1BranchCounting(t *testing.T) {
	p := corpus(t, progen.GCC, 1, 30)[0]
	orig := sim.LoadFile(p.File, nil)
	if err := orig.Run(100_000_000); err != nil {
		t.Fatal(err)
	}

	e, err := eel.Load(p.File)
	if err != nil {
		t.Fatal(err)
	}
	res, err := qpt.Instrument(e, qpt.Full)
	if err != nil {
		t.Fatal(err)
	}
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.LoadFile(edited, nil)
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if cpu.ExitCode != orig.ExitCode {
		t.Fatalf("edited exit %d != %d", cpu.ExitCode, orig.ExitCode)
	}
	total := res.Total(cpu.Mem)
	t.Logf("%d counters, %d branch-edge events recorded, %d→%d instructions",
		res.Edits, total, orig.InstCount, cpu.InstCount)
	if total == 0 {
		t.Error("no branch events recorded")
	}
}

// TestActiveMemorySlowdown is experiment E10: the paper reports cache
// simulation at a 2-7x slowdown.  The instrumented run's miss and
// access counts are validated exactly against a golden direct-mapped
// model replayed over the original execution.
func TestActiveMemorySlowdown(t *testing.T) {
	gcfg := progen.DefaultConfig(1011)
	gcfg.Routines = 40
	gcfg.MemHeavy = true
	p, err0 := progen.Generate(gcfg)
	if err0 != nil {
		t.Fatal(err0)
	}
	cc := activemem.DefaultConfig()

	orig := sim.LoadFile(p.File, nil)
	if err := orig.Run(100_000_000); err != nil {
		t.Fatal(err)
	}

	e, err := eel.Load(p.File)
	if err != nil {
		t.Fatal(err)
	}
	res, err := activemem.Instrument(e, cc)
	if err != nil {
		t.Fatal(err)
	}
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.LoadFile(edited, nil)
	if err := cpu.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	if cpu.ExitCode != orig.ExitCode {
		t.Fatalf("edited exit diverged")
	}
	accesses, misses := res.Counts(cpu.Mem)
	slowdown := float64(cpu.InstCount) / float64(orig.InstCount)
	t.Logf("accesses %d, misses %d, slowdown %.1fx (paper: 2-7x)", accesses, misses, slowdown)
	if slowdown < 1.2 || slowdown > 10 {
		t.Errorf("slowdown %.1fx outside plausible band", slowdown)
	}

	// Golden model: replay the original execution, simulating the
	// same cache at exactly the instrumented sites.
	sites := map[uint32]bool{}
	for _, a := range res.SiteAddrs {
		sites[a] = true
	}
	tags := make(map[uint32]uint32)
	inTag := make(map[uint32]bool)
	var gAcc, gMiss uint64
	replay := sim.LoadFile(p.File, nil)
	replay.OnExec = func(pc uint32, inst *machine.Inst) {
		if !sites[pc] {
			return
		}
		rs1F, _ := inst.Field("rs1")
		iflag, _ := inst.Field("iflag")
		ea := replay.R[rs1F&31]
		if rs1F == 0 {
			ea = 0
		}
		if iflag == 1 {
			simmF, _ := inst.Field("simm13")
			ea += uint32(int32(simmF<<19) >> 19)
		} else {
			rs2F, _ := inst.Field("rs2")
			v := replay.R[rs2F&31]
			if rs2F == 0 {
				v = 0
			}
			ea += v
		}
		block := ea >> 4
		set := block & uint32(cc.Sets-1)
		gAcc++
		if !inTag[set] || tags[set] != block {
			gMiss++
		}
		tags[set] = block
		inTag[set] = true
	}
	if err := replay.Run(100_000_000); err != nil {
		t.Fatal(err)
	}
	if gAcc != accesses || gMiss != misses {
		t.Errorf("instrumented counts %d/%d != golden model %d/%d", accesses, misses, gAcc, gMiss)
	}
}

// TestBlizzardCCOptimization is experiment E11: the fraction of
// instrumentation sites where the condition codes are dead — where
// Blizzard's faster cc-clobbering access test is legal (§5).
func TestBlizzardCCOptimization(t *testing.T) {
	deadSites, liveSites := 0, 0
	for _, p := range corpus(t, progen.GCC, 2, 40) {
		e := analyze(t, p)
		for _, r := range e.Routines() {
			g, err := r.ControlFlowGraph()
			if err != nil {
				continue
			}
			lv := eel.ComputeLiveness(g)
			for _, b := range g.Blocks {
				if b.Uneditable || b.Kind != cfg.KindNormal {
					continue
				}
				for i, in := range b.Insts {
					if !in.MI.Category().IsMemory() {
						continue
					}
					if lv.LiveBefore(b, i).Has(machine.RegPSR) {
						liveSites++
					} else {
						deadSites++
					}
				}
			}
		}
	}
	frac := 100 * float64(deadSites) / float64(deadSites+liveSites)
	t.Logf("condition codes dead at %d/%d memory sites (%.1f%%): the fast Blizzard test applies there",
		deadSites, deadSites+liveSites, frac)
	if deadSites == 0 || liveSites == 0 {
		t.Error("expected a mix of cc-dead and cc-live sites")
	}
}

// TestSpawnConciseness is experiment E9: the paper's §4 line counts —
// descriptions an order of magnitude smaller than the code derived
// from them (SPARC: 145-line description vs 2,268 handwritten and
// 6,178 generated lines; MIPS: 128 lines).
func TestSpawnConciseness(t *testing.T) {
	sparcGen := strings.Count(spawn.GenerateGo(sparc.Desc()), "\n")
	mipsGen := strings.Count(spawn.GenerateGo(mips.Desc()), "\n")
	alphaGen := strings.Count(spawn.GenerateGo(alpha.Desc()), "\n")
	handwritten := countGoLines(t, "internal/sparc")
	t.Logf("%-8s %12s %12s %22s", "machine", "description", "generated", "handwritten glue (Go)")
	t.Logf("%-8s %12d %12d %22d", "sparc", sparc.Desc().SourceLines, sparcGen, handwritten)
	t.Logf("%-8s %12d %12d", "mips32e", mips.Desc().SourceLines, mipsGen)
	t.Logf("%-8s %12d %12d", "alpha64e", alpha.Desc().SourceLines, alphaGen)
	if sparc.Desc().SourceLines > 200 {
		t.Errorf("SPARC description %d lines; paper's was 145", sparc.Desc().SourceLines)
	}
	if sparcGen < 3*sparc.Desc().SourceLines {
		t.Errorf("generated tables (%d lines) should dwarf the description (%d)",
			sparcGen, sparc.Desc().SourceLines)
	}
}

// countGoLines counts non-blank, non-comment lines of .go files
// (excluding tests) under dir.
func countGoLines(t testing.TB, dir string) int {
	t.Helper()
	total := 0
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		name := ent.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			trimmed := strings.TrimSpace(line)
			if trimmed == "" || strings.HasPrefix(trimmed, "//") {
				continue
			}
			total++
		}
	}
	return total
}

// TestLineCountInventory is experiment E12: the paper's §5 code-size
// comparison, reproduced as this repository's module inventory.
func TestLineCountInventory(t *testing.T) {
	dirs := []string{
		".", "internal/machine", "internal/rtl", "internal/spawn",
		"internal/sparc", "internal/mips", "internal/asm",
		"internal/binfile", "internal/aout", "internal/elf32",
		"internal/cfg", "internal/dataflow", "internal/core",
		"internal/sim", "internal/progen", "internal/qpt",
		"internal/activemem", "internal/toolmain",
	}
	total := 0
	for _, d := range dirs {
		n := countGoLines(t, d)
		total += n
		t.Logf("%-22s %6d lines", d, n)
	}
	t.Logf("%-22s %6d lines (paper: EEL itself was 13,960 lines of C++)", "total (non-test)", total)
	// The EEL-based tool should be a small fraction of the library,
	// as qpt2's 6,276 lines were of the old qpt's 14,500.
	toolLines := countGoLines(t, "internal/qpt")
	if toolLines > total/5 {
		t.Errorf("the qpt tool (%d lines) should be small relative to the library (%d)", toolLines, total)
	}
}

// TestTable1 is experiment E1: the paper's Table 1 — the ad-hoc tool
// (qpt) vs the EEL-based tool (qpt2), with and without optimization.
// Columns: instrumentation time, edited program size, and edited
// program run length (the paper's size/time tradeoff).
func TestTable1(t *testing.T) {
	p := corpus(t, progen.GCC, 1, 60)[0]
	orig := sim.LoadFile(p.File, nil)
	if err := orig.Run(200_000_000); err != nil {
		t.Fatal(err)
	}

	type variant struct {
		name string
		mode qpt.Mode
		opts func(e *core.Executable)
	}
	variants := []variant{
		{"qpt (ad-hoc)", qpt.Light, nil},
		{"qpt2", qpt.Full, func(e *core.Executable) {
			e.Scavenge = false
			e.FoldDelaySlots = false
		}},
		{"qpt2 -O2", qpt.Full, nil},
	}
	t.Logf("%-14s %12s %12s %14s (original: %d bytes text, %d insts)",
		"tool", "instr time", "text bytes", "run insts", len(p.File.Text().Data), orig.InstCount)
	for _, v := range variants {
		e, err := eel.Load(p.File)
		if err != nil {
			t.Fatal(err)
		}
		if v.opts != nil {
			v.opts(e)
		}
		start := time.Now()
		if _, err := qpt.Instrument(e, v.mode); err != nil {
			t.Fatal(err)
		}
		edited, err := e.BuildEdited()
		if err != nil {
			t.Fatal(err)
		}
		elapsed := time.Since(start)
		cpu := sim.LoadFile(edited, nil)
		if err := cpu.Run(2_000_000_000); err != nil {
			t.Fatal(err)
		}
		if cpu.ExitCode != orig.ExitCode {
			t.Fatalf("%s: behaviour diverged", v.name)
		}
		t.Logf("%-14s %10.1fms %12d %14d", v.name,
			float64(elapsed.Microseconds())/1000, len(edited.Text().Data), cpu.InstCount)
	}
}

// TestAllocationComparison is experiment E8: the EEL tool allocates
// more objects than the ad-hoc one (paper: 317,494 vs 84,655),
// the price of explicit program representations.
func TestAllocationComparison(t *testing.T) {
	p := corpus(t, progen.GCC, 1, 40)[0]
	run := func(mode qpt.Mode) uint64 {
		return allocsDuring(t, func() {
			e, err := eel.Load(p.File)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := qpt.Instrument(e, mode); err != nil {
				t.Fatal(err)
			}
			if _, err := e.BuildEdited(); err != nil {
				t.Fatal(err)
			}
		})
	}
	light := run(qpt.Light)
	full := run(qpt.Full)
	t.Logf("heap objects allocated: ad-hoc %d, EEL %d (%.1fx; the paper's 3.8x compared two unrelated implementations)",
		light, full, float64(full)/float64(light))

	// The object-count effect the paper attributes to explicit
	// program representations shows directly in the interning
	// ablation: decoding the corpus without instruction sharing.
	text := p.File.Text()
	decodeAll := func(intern bool) uint64 {
		return allocsDuring(t, func() {
			dec := sparc.NewDecoder()
			dec.SetIntern(intern)
			for a := text.Addr; a+4 <= text.End(); a += 4 {
				w := uint32(text.Data[a-text.Addr])<<24 | uint32(text.Data[a-text.Addr+1])<<16 |
					uint32(text.Data[a-text.Addr+2])<<8 | uint32(text.Data[a-text.Addr+3])
				dec.Decode(w)
			}
		})
	}
	shared := decodeAll(true)
	unshared := decodeAll(false)
	t.Logf("decode allocations: %d interned vs %d uninterned (%.1fx saved — the §3.4 factor)",
		shared, unshared, float64(unshared)/float64(shared))
	if unshared <= shared {
		t.Error("interning should reduce allocations")
	}
}

func allocsDuring(t testing.TB, f func()) uint64 {
	t.Helper()
	var before, after memStats
	readMemStats(&before)
	f()
	readMemStats(&after)
	return after.mallocs - before.mallocs
}

// memStats is the slice of runtime.MemStats we need.
type memStats struct{ mallocs uint64 }

func readMemStats(m *memStats) {
	var rs runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&rs)
	m.mallocs = rs.Mallocs
}
