#!/bin/sh
# bench.sh — run the pipeline and emulator benchmarks and emit
# BENCH_pipeline.json, BENCH_sim.json, BENCH_telemetry.json, and
# BENCH_eeld.json.
#
# Usage: scripts/bench.sh [output.json]
#
# Runs BenchmarkPipelineParallel (worker scaling) and
# BenchmarkPipelineCache (cold vs warm memoization) and converts the
# `go test -bench` output into a JSON array of
#   {"name": ..., "ns_per_op": ..., "metrics": {unit: value, ...}}
# records, one per benchmark line.  Then runs BenchmarkSimInterp,
# BenchmarkSimTranslated, BenchmarkSimChained, and BenchmarkSimRoutine
# over every workload flavour and pipes the output through
# scripts/benchmerge, which MERGES the run into BENCH_sim.json under
# today's date — earlier dated runs are kept, not overwritten —
# recording each engine's instructions/sec, the chained engine's
# chain/IC hit-rate and trace counters, the routine tier's compile and
# deopt counters, and the derived speedup ratios.  Finally
# runs BenchmarkSimTelemetry and BenchmarkSimProfiled against their
# same-engine baselines (SimTranslated and SimChained) and merges
# BENCH_telemetry.json with per-flavour enabled-telemetry and
# profiling overhead ratios (slowdowns; ~1.0 means free), ceiling-
# checked against scripts/bench_overhead_baseline.json.
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_pipeline.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkPipeline' -benchtime "${BENCHTIME:-5x}" . | tee "$raw"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    ns = ""
    metrics = ""
    for (i = 2; i <= NF - 1; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) ~ /\//  || $(i + 1) ~ /^[a-zA-Z%-]/) {
            if ($(i + 1) == "ns/op") continue
            if (metrics != "") metrics = metrics ", "
            metrics = metrics "\"" $(i + 1) "\": " $i
        }
    }
    if (!first) printf ",\n"
    first = 0
    printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"metrics\": {%s}}", name, (ns == "" ? "null" : ns), metrics
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"

# --- emulator engines: interp vs translated vs chained vs routine ---
simout="BENCH_sim.json"
simraw="$(mktemp)"
trap 'rm -f "$raw" "$simraw"' EXIT

go test -run '^$' -bench 'BenchmarkSim(Interp|Translated|Chained|Routine)$' \
    -benchtime "${BENCHTIME:-5x}" . | tee "$simraw"

go run ./scripts/benchmerge -out "$simout" < "$simraw"
go run ./scripts/benchmerge -check scripts/bench_baseline.json < "$simraw" ||
    echo "WARNING: engine speedups regressed vs scripts/bench_baseline.json" >&2

# --- observability overhead: telemetry/profiling vs plain JIT ---
# Each instrumented benchmark is paired with its SAME-ENGINE baseline
# from the same run: SimTelemetry vs SimTranslated (both unchained),
# SimProfiled vs SimChained (both chained).  benchmerge derives the
# per-flavour telemetry_overhead / profiling_overhead slowdown ratios
# (>= ~1.0 by construction — an earlier awk version here compared
# mismatched engines and flavours and reported overheads below 1) and
# gates them with a CEILING against scripts/bench_overhead_baseline.json.
telout="BENCH_telemetry.json"
telraw="$(mktemp)"
trap 'rm -f "$raw" "$simraw" "$telraw"' EXIT

go test -run '^$' -bench 'BenchmarkSim(Translated|Chained|Telemetry|Profiled)$' \
    -benchtime "${BENCHTIME:-5x}" . | tee "$telraw"

go run ./scripts/benchmerge -out "$telout" < "$telraw"
go run ./scripts/benchmerge -check scripts/bench_overhead_baseline.json < "$telraw" ||
    echo "WARNING: observability overhead regressed vs scripts/bench_overhead_baseline.json" >&2

echo "wrote $telout"

# --- eeld service: concurrent clients, cold vs warm-restart cache ---
# Drives an in-process daemon with concurrent clients over a progen
# corpus, drains it, restarts on the same cache directory, and replays
# the workload.  BENCH_eeld.json records per-phase p50/p99 latency,
# request throughput, cache hit rates, and bytes-rewritten/sec; the
# warm-restart phase must serve >= 90% of the corpus from the
# persistent per-routine cache or the run fails.
go run ./cmd/eelload \
    -clients "${EELD_CLIENTS:-32}" -requests "${EELD_REQUESTS:-6}" \
    -corpus "${EELD_CORPUS:-8}" -routines "${EELD_ROUTINES:-24}" \
    -min-warm-hit 0.9 -out BENCH_eeld.json

echo "wrote BENCH_eeld.json"
