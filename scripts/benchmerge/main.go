// Command benchmerge converts `go test -bench` output for the
// emulator engine benchmarks into BENCH_sim.json, merging rather than
// overwriting: each invocation records its results under the run date
// and keeps every earlier dated run, so the file accumulates a
// history of engine performance on this machine.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkSim...' . | benchmerge -out BENCH_sim.json
//	go test -run '^$' -bench 'BenchmarkSim...' . | benchmerge -check scripts/bench_baseline.json
//
// The merged document looks like
//
//	{"current": "2026-08-06",
//	 "runs": {"2026-08-06": {"flavours": {...}, "speedups": {...}}, ...}}
//
// with per-flavour, per-engine ns/op and custom metrics (including
// the chained engine's chain-hit-%, ic-hit-%, traces and victim-hits
// counters) plus derived speedup ratios.
//
// -check compares the parsed results against a checked-in baseline of
// engine speedup *ratios* (translated vs interp, chained vs
// translated, routine vs chained).  Ratios, unlike ns/op, are stable
// across machines, so
// the baseline can live in the repository and gate CI: the check
// fails when a measured ratio falls more than the baseline's
// tolerance below its recorded value — e.g. SimTranslated regressing
// >20% relative to the interpreter.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// engineResult is one benchmark line: BenchmarkSim<Engine>/<flavour>.
type engineResult struct {
	NsPerOp     float64            `json:"ns_per_op"`
	InstsPerSec float64            `json:"insts_per_sec,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// runRecord is one dated benchmark run.
type runRecord struct {
	Flavours map[string]map[string]engineResult `json:"flavours"`
	Speedups map[string]map[string]float64      `json:"speedups,omitempty"`
}

// document is the merged BENCH_sim.json.  Runs other than today's are
// kept as raw JSON so old records survive schema drift untouched.
type document struct {
	Current string                     `json:"current"`
	Runs    map[string]json.RawMessage `json:"runs"`
}

// baseline is the checked-in regression gate (scripts/bench_baseline.json).
type baseline struct {
	Comment   string                        `json:"comment,omitempty"`
	Tolerance float64                       `json:"tolerance"`
	Flavours  map[string]map[string]float64 `json:"flavours"`
}

var benchLine = regexp.MustCompile(`^BenchmarkSim([A-Za-z]+)/([A-Za-z0-9_-]+?)(?:-\d+)?\s`)

func main() {
	out := flag.String("out", "", "merge results into this JSON file (kept runs under dated keys)")
	check := flag.String("check", "", "compare speedup ratios against this baseline file; exit 1 on regression")
	date := flag.String("date", time.Now().Format("2006-01-02"), "key for this run in the merged file")
	flag.Parse()

	rec, err := parse(os.Stdin)
	if err != nil {
		fatal(err)
	}
	if len(rec.Flavours) == 0 {
		fatal(fmt.Errorf("no BenchmarkSim* lines on stdin"))
	}
	rec.Speedups = speedups(rec.Flavours)

	if *out != "" {
		if err := merge(*out, *date, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("benchmerge: merged run %q into %s\n", *date, *out)
	}
	if *check != "" {
		if err := checkBaseline(*check, rec); err != nil {
			fmt.Fprintln(os.Stderr, "benchmerge: REGRESSION:", err)
			os.Exit(1)
		}
		fmt.Printf("benchmerge: within baseline %s\n", *check)
	}
	if *out == "" && *check == "" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			fatal(err)
		}
	}
}

// parse reads `go test -bench` output and collects the SimInterp /
// SimTranslated / SimChained / SimRoutine / SimTelemetry engine lines
// per flavour.
func parse(r io.Reader) (*runRecord, error) {
	rec := &runRecord{Flavours: map[string]map[string]engineResult{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		engine, flavour := strings.ToLower(m[1]), m[2]
		res := engineResult{Metrics: map[string]float64{}}
		// Fields after the name: iteration count, then value/unit pairs.
		f := strings.Fields(line)
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch unit := f[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "sim-insts/s":
				res.InstsPerSec = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		if rec.Flavours[flavour] == nil {
			rec.Flavours[flavour] = map[string]engineResult{}
		}
		rec.Flavours[flavour][engine] = res
	}
	return rec, sc.Err()
}

// speedups derives the engine ratios per flavour: how much the
// translation cache buys over the interpreter, how much chaining
// plus traces buy over the unchained translation cache, and how much
// whole-routine compilation buys over the chained engine.
func speedups(flavours map[string]map[string]engineResult) map[string]map[string]float64 {
	out := map[string]map[string]float64{}
	for flavour, engines := range flavours {
		s := map[string]float64{}
		if i, t := engines["interp"], engines["translated"]; i.InstsPerSec > 0 && t.InstsPerSec > 0 {
			s["translated_vs_interp"] = round2(t.InstsPerSec / i.InstsPerSec)
		}
		if t, c := engines["translated"], engines["chained"]; t.InstsPerSec > 0 && c.InstsPerSec > 0 {
			s["chained_vs_translated"] = round2(c.InstsPerSec / t.InstsPerSec)
		}
		if c, r := engines["chained"], engines["routine"]; c.InstsPerSec > 0 && r.InstsPerSec > 0 {
			s["routine_vs_chained"] = round2(r.InstsPerSec / c.InstsPerSec)
		}
		// Overhead ratios are slowdowns — base over instrumented, same
		// engine both sides — so >= ~1.0 by construction; -check gates
		// them with a ceiling, not a floor.
		if t, tel := engines["translated"], engines["telemetry"]; t.InstsPerSec > 0 && tel.InstsPerSec > 0 {
			s["telemetry_overhead"] = round2(t.InstsPerSec / tel.InstsPerSec)
		}
		if c, p := engines["chained"], engines["profiled"]; c.InstsPerSec > 0 && p.InstsPerSec > 0 {
			s["profiling_overhead"] = round2(c.InstsPerSec / p.InstsPerSec)
		}
		if len(s) > 0 {
			out[flavour] = s
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// merge inserts rec under date in path, preserving all other dated
// runs already in the file (a re-run on the same date replaces only
// that date's record).
func merge(path, date string, rec *runRecord) error {
	doc := document{Runs: map[string]json.RawMessage{}}
	if old, err := os.ReadFile(path); err == nil {
		// Tolerate the pre-merge scalar format (or anything else
		// unrecognized) by archiving it verbatim under a legacy key.
		if err := json.Unmarshal(old, &doc); err != nil || doc.Runs == nil {
			doc = document{Runs: map[string]json.RawMessage{}}
			if json.Valid(old) {
				doc.Runs["legacy"] = json.RawMessage(old)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	doc.Runs[date] = raw
	doc.Current = date
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// checkBaseline fails when any ratio recorded in the baseline file is
// measured more than tolerance below its baseline value.
func checkBaseline(path string, rec *runRecord) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base baseline
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if base.Tolerance <= 0 {
		base.Tolerance = 0.20
	}
	for flavour, ratios := range base.Flavours {
		for name, want := range ratios {
			got, ok := rec.Speedups[flavour][name]
			if !ok {
				return fmt.Errorf("%s/%s: baseline ratio not measured (missing engine lines?)", flavour, name)
			}
			if strings.HasSuffix(name, "_overhead") {
				// Overheads are slowdown ratios: regression means the
				// instrumented run got SLOWER, i.e. the ratio grew.
				if ceil := want * (1 + base.Tolerance); got > ceil {
					return fmt.Errorf("%s/%s: measured %.2fx, baseline %.2fx (ceiling %.2fx at %.0f%% tolerance)",
						flavour, name, got, want, ceil, 100*base.Tolerance)
				}
				continue
			}
			if floor := want * (1 - base.Tolerance); got < floor {
				return fmt.Errorf("%s/%s: measured %.2fx, baseline %.2fx (floor %.2fx at %.0f%% tolerance)",
					flavour, name, got, want, floor, 100*base.Tolerance)
			}
		}
	}
	return nil
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchmerge:", err)
	os.Exit(1)
}
