package mips

import "fmt"

// Encoding helpers build MIPS instruction words from the compiled
// description's field layout, so the program generator, fuzz
// round-trip oracles, and tests share one source of encoding truth.

func mustField(name string) func(word, v uint32) uint32 {
	f, ok := desc.Field(name)
	if !ok {
		panic("mips: missing field " + name)
	}
	return f.Insert
}

var (
	insRS       = mustField("rs")
	insRT       = mustField("rt")
	insRDF      = mustField("rdf")
	insShamt    = mustField("shamt")
	insImm16    = mustField("imm16")
	insTarget26 = mustField("target26")
)

// matchWord returns the fixed encoding bits of a named instruction.
func matchWord(name string) (uint32, error) {
	def, ok := desc.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("mips: unknown instruction %q", name)
	}
	return def.Match, nil
}

func regField(r uint32) (uint32, error) {
	if r >= 32 {
		return 0, fmt.Errorf("mips: $%d is not a general register", r)
	}
	return r, nil
}

// EncodeR encodes an op=0 R-type instruction: name rd, rs, rt (shift
// instructions read rt and shamt; jr/jalr read rs).
func EncodeR(name string, rd, rs, rt uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	for _, r := range []uint32{rd, rs, rt} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insRDF(insRT(insRS(w, rs), rt), rd), nil
}

// EncodeShift encodes a constant shift: name rd, rt, shamt.
func EncodeShift(name string, rd, rt, shamt uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if shamt >= 32 {
		return 0, fmt.Errorf("mips: shift amount %d exceeds shamt", shamt)
	}
	for _, r := range []uint32{rd, rt} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insShamt(insRDF(insRT(w, rt), rd), shamt), nil
}

// EncodeI encodes a signed-immediate I-type instruction (addiu, slti,
// sltiu, loads, stores): name rt, rs, imm.  The immediate is the
// sign-extended simm16 the semantics consume, so its range is
// [-32768, 32767]; anything outside is rejected, never silently
// truncated.
func EncodeI(name string, rt, rs uint32, imm int32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if imm < -(1<<15) || imm >= 1<<15 {
		return 0, fmt.Errorf("mips: immediate %d out of simm16 range", imm)
	}
	for _, r := range []uint32{rt, rs} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insImm16(insRT(insRS(w, rs), rt), uint32(imm)&0xffff), nil
}

// EncodeIU encodes a zero-extended-immediate I-type instruction
// (andi, ori, xori, lui): name rt, rs, imm with imm in [0, 0xffff].
func EncodeIU(name string, rt, rs uint32, imm uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if imm > 0xffff {
		return 0, fmt.Errorf("mips: immediate %#x out of uimm16 range", imm)
	}
	for _, r := range []uint32{rt, rs} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insImm16(insRT(insRS(w, rs), rt), imm), nil
}

// EncodeBranch encodes a PC-relative branch with a displacement in
// instruction words from the delay slot (target = pc + 4 + 4*disp):
// name rs, rt, disp.  blez/bgtz/bltz/bgez ignore rt (bltz/bgez own
// the rt field as their opcode extension, so rt must be 0 for them).
func EncodeBranch(name string, rs, rt uint32, dispWords int32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if dispWords < -(1<<15) || dispWords >= 1<<15 {
		return 0, fmt.Errorf("mips: branch displacement %d words exceeds simm16", dispWords)
	}
	if _, err := regField(rs); err != nil {
		return 0, err
	}
	switch name {
	case "bltz", "bgez":
		// rt is the REGIMM opcode extension, already in the match word.
		if rt != 0 {
			return 0, fmt.Errorf("mips: %s takes no rt register", name)
		}
	default:
		if _, err := regField(rt); err != nil {
			return 0, err
		}
		w = insRT(w, rt)
	}
	return insImm16(insRS(w, rs), uint32(dispWords)&0xffff), nil
}

// EncodeJ encodes j/jal: the target26 field holds the word address
// within the current 256 MiB region (target = pc&0xf0000000 |
// target26<<2).
func EncodeJ(name string, targetWords uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if targetWords >= 1<<26 {
		return 0, fmt.Errorf("mips: jump target %#x exceeds target26", targetWords)
	}
	return insTarget26(w, targetWords), nil
}

// EncodeSyscall returns the syscall word.
func EncodeSyscall() (uint32, error) {
	return matchWord("syscall")
}

// Nop returns the canonical MIPS nop (sll $0, $0, 0).
func Nop() uint32 {
	w, _ := EncodeShift("sll", 0, 0, 0)
	return w
}

// JTargetFor converts an absolute byte address into the target26
// word index EncodeJ consumes, rejecting addresses outside the
// 256 MiB region the description's jtgt semantics splice it into.
func JTargetFor(pc, target uint32) (uint32, error) {
	if target&3 != 0 {
		return 0, fmt.Errorf("mips: jump target %#x is not word-aligned", target)
	}
	if pc&0xf0000000 != target&0xf0000000 {
		return 0, fmt.Errorf("mips: jump target %#x outside pc %#x's 256MiB region", target, pc)
	}
	return (target & 0x0fffffff) >> 2, nil
}
