package mips

import (
	"testing"

	"eel/internal/machine"
)

// enc builds a MIPS word from fields.
func enc(t *testing.T, fields map[string]uint32) uint32 {
	t.Helper()
	var w uint32
	for name, v := range fields {
		f, ok := Desc().Field(name)
		if !ok {
			t.Fatalf("no field %q", name)
		}
		w = f.Insert(w, v)
	}
	return w
}

func TestDescriptionCompiles(t *testing.T) {
	if Desc().MachineName != "mips32e" {
		t.Fatalf("name = %q", Desc().MachineName)
	}
	if len(Desc().Insts) < 30 {
		t.Fatalf("only %d instructions", len(Desc().Insts))
	}
}

func TestAdduClassification(t *testing.T) {
	// addu $3, $1, $2
	w := enc(t, map[string]uint32{"op": 0, "funct": 0b100001, "rs": 1, "rt": 2, "rdf": 3})
	inst := NewDecoder().Decode(w)
	if inst.Name() != "addu" || inst.Category() != machine.CatCompute {
		t.Fatalf("%s %s", inst.Name(), inst.Category())
	}
	if !inst.Reads().Equal(machine.NewRegSet(1, 2)) || !inst.Writes().Equal(machine.NewRegSet(3)) {
		t.Errorf("reads=%s writes=%s", inst.Reads(), inst.Writes())
	}
}

func TestBranchWithoutConditionCodes(t *testing.T) {
	// beq $4, $5, +16 words — MIPS branches read the compared
	// registers directly (no PSR equivalent).
	w := enc(t, map[string]uint32{"op": 0b000100, "rs": 4, "rt": 5, "imm16": 16})
	inst := NewDecoder().Decode(w)
	if inst.Category() != machine.CatBranch {
		t.Fatalf("beq category = %s", inst.Category())
	}
	if !inst.Reads().Equal(machine.NewRegSet(4, 5)) {
		t.Errorf("beq reads = %s", inst.Reads())
	}
	if inst.DelaySlots() != 1 {
		t.Errorf("beq delay slots = %d", inst.DelaySlots())
	}
	if inst.AnnulBit() {
		t.Error("MIPS has no annul bit")
	}
	// target = pc + 4 + 16*4
	if tgt, ok := inst.StaticTarget(0x1000); !ok || tgt != 0x1000+4+64 {
		t.Errorf("target = %#x ok=%v", tgt, ok)
	}
}

func TestJalIsCall(t *testing.T) {
	w := enc(t, map[string]uint32{"op": 0b000011, "target26": 0x100})
	inst := NewDecoder().Decode(w)
	if inst.Category() != machine.CatCallDirect {
		t.Fatalf("jal category = %s (link via pc+8 must be recognized)", inst.Category())
	}
	if !inst.Writes().Has(31) {
		t.Errorf("jal writes = %s, want $31", inst.Writes())
	}
	if tgt, ok := inst.StaticTarget(0x10000000); !ok || tgt != 0x10000000&0xf0000000|0x400 {
		t.Errorf("jal target = %#x ok=%v", tgt, ok)
	}
}

func TestJrOverloads(t *testing.T) {
	ret := enc(t, map[string]uint32{"op": 0, "funct": 0b001000, "rs": 31})
	if c := NewDecoder().Decode(ret).Category(); c != machine.CatReturn {
		t.Errorf("jr $31 category = %s", c)
	}
	ij := enc(t, map[string]uint32{"op": 0, "funct": 0b001000, "rs": 8})
	if c := NewDecoder().Decode(ij).Category(); c != machine.CatJumpIndirect {
		t.Errorf("jr $8 category = %s", c)
	}
}

func TestLoadsStores(t *testing.T) {
	lw := enc(t, map[string]uint32{"op": 0b100011, "rs": 4, "rt": 2, "imm16": 8})
	inst := NewDecoder().Decode(lw)
	if inst.Category() != machine.CatLoad || inst.MemWidth() != 4 {
		t.Errorf("lw: %s width %d", inst.Category(), inst.MemWidth())
	}
	sb := enc(t, map[string]uint32{"op": 0b101000, "rs": 4, "rt": 2})
	i2 := NewDecoder().Decode(sb)
	if i2.Category() != machine.CatStore || i2.MemWidth() != 1 {
		t.Errorf("sb: %s width %d", i2.Category(), i2.MemWidth())
	}
	if !i2.Reads().Has(2) || !i2.Reads().Has(4) {
		t.Errorf("sb reads = %s", i2.Reads())
	}
}

func TestZeroRegister(t *testing.T) {
	// addu $5, $0, $0: reads nothing.
	w := enc(t, map[string]uint32{"op": 0, "funct": 0b100001, "rdf": 5})
	inst := NewDecoder().Decode(w)
	if !inst.Reads().IsEmpty() {
		t.Errorf("reads = %s", inst.Reads())
	}
	// MIPS nop (sll $0,$0,0) writes nothing.
	nop := NewDecoder().Decode(0)
	if !nop.Writes().IsEmpty() {
		t.Errorf("nop writes = %s", nop.Writes())
	}
}

func TestSyscall(t *testing.T) {
	w := enc(t, map[string]uint32{"op": 0, "funct": 0b001100})
	if c := NewDecoder().Decode(w).Category(); c != machine.CatSystem {
		t.Errorf("syscall category = %s", c)
	}
}

func TestConcision(t *testing.T) {
	// The paper: "a spawn description of the MIPS R2000 architecture
	// is 128 lines."  Ours should be in that ballpark.
	lines := Desc().SourceLines
	if lines < 40 || lines > 200 {
		t.Errorf("description is %d lines, expected a Fig-7-like size", lines)
	}
	t.Logf("mips description: %d non-comment non-blank lines", lines)
}
