package mips

import (
	"testing"

	"eel/internal/machine"
)

// enc builds a MIPS word from fields.
func enc(t *testing.T, fields map[string]uint32) uint32 {
	t.Helper()
	var w uint32
	for name, v := range fields {
		f, ok := Desc().Field(name)
		if !ok {
			t.Fatalf("no field %q", name)
		}
		w = f.Insert(w, v)
	}
	return w
}

func TestDescriptionCompiles(t *testing.T) {
	if Desc().MachineName != "mips32e" {
		t.Fatalf("name = %q", Desc().MachineName)
	}
	if len(Desc().Insts) < 30 {
		t.Fatalf("only %d instructions", len(Desc().Insts))
	}
}

func TestAdduClassification(t *testing.T) {
	// addu $3, $1, $2
	w := enc(t, map[string]uint32{"op": 0, "funct": 0b100001, "rs": 1, "rt": 2, "rdf": 3})
	inst := NewDecoder().Decode(w)
	if inst.Name() != "addu" || inst.Category() != machine.CatCompute {
		t.Fatalf("%s %s", inst.Name(), inst.Category())
	}
	if !inst.Reads().Equal(machine.NewRegSet(1, 2)) || !inst.Writes().Equal(machine.NewRegSet(3)) {
		t.Errorf("reads=%s writes=%s", inst.Reads(), inst.Writes())
	}
}

func TestBranchWithoutConditionCodes(t *testing.T) {
	// beq $4, $5, +16 words — MIPS branches read the compared
	// registers directly (no PSR equivalent).
	w := enc(t, map[string]uint32{"op": 0b000100, "rs": 4, "rt": 5, "imm16": 16})
	inst := NewDecoder().Decode(w)
	if inst.Category() != machine.CatBranch {
		t.Fatalf("beq category = %s", inst.Category())
	}
	if !inst.Reads().Equal(machine.NewRegSet(4, 5)) {
		t.Errorf("beq reads = %s", inst.Reads())
	}
	if inst.DelaySlots() != 1 {
		t.Errorf("beq delay slots = %d", inst.DelaySlots())
	}
	if inst.AnnulBit() {
		t.Error("MIPS has no annul bit")
	}
	// target = pc + 4 + 16*4
	if tgt, ok := inst.StaticTarget(0x1000); !ok || tgt != 0x1000+4+64 {
		t.Errorf("target = %#x ok=%v", tgt, ok)
	}
}

func TestJalIsCall(t *testing.T) {
	w := enc(t, map[string]uint32{"op": 0b000011, "target26": 0x100})
	inst := NewDecoder().Decode(w)
	if inst.Category() != machine.CatCallDirect {
		t.Fatalf("jal category = %s (link via pc+8 must be recognized)", inst.Category())
	}
	if !inst.Writes().Has(31) {
		t.Errorf("jal writes = %s, want $31", inst.Writes())
	}
	if tgt, ok := inst.StaticTarget(0x10000000); !ok || tgt != 0x10000000&0xf0000000|0x400 {
		t.Errorf("jal target = %#x ok=%v", tgt, ok)
	}
}

func TestJrOverloads(t *testing.T) {
	ret := enc(t, map[string]uint32{"op": 0, "funct": 0b001000, "rs": 31})
	if c := NewDecoder().Decode(ret).Category(); c != machine.CatReturn {
		t.Errorf("jr $31 category = %s", c)
	}
	ij := enc(t, map[string]uint32{"op": 0, "funct": 0b001000, "rs": 8})
	if c := NewDecoder().Decode(ij).Category(); c != machine.CatJumpIndirect {
		t.Errorf("jr $8 category = %s", c)
	}
}

func TestLoadsStores(t *testing.T) {
	lw := enc(t, map[string]uint32{"op": 0b100011, "rs": 4, "rt": 2, "imm16": 8})
	inst := NewDecoder().Decode(lw)
	if inst.Category() != machine.CatLoad || inst.MemWidth() != 4 {
		t.Errorf("lw: %s width %d", inst.Category(), inst.MemWidth())
	}
	sb := enc(t, map[string]uint32{"op": 0b101000, "rs": 4, "rt": 2})
	i2 := NewDecoder().Decode(sb)
	if i2.Category() != machine.CatStore || i2.MemWidth() != 1 {
		t.Errorf("sb: %s width %d", i2.Category(), i2.MemWidth())
	}
	if !i2.Reads().Has(2) || !i2.Reads().Has(4) {
		t.Errorf("sb reads = %s", i2.Reads())
	}
}

func TestZeroRegister(t *testing.T) {
	// addu $5, $0, $0: reads nothing.
	w := enc(t, map[string]uint32{"op": 0, "funct": 0b100001, "rdf": 5})
	inst := NewDecoder().Decode(w)
	if !inst.Reads().IsEmpty() {
		t.Errorf("reads = %s", inst.Reads())
	}
	// MIPS nop (sll $0,$0,0) writes nothing.
	nop := NewDecoder().Decode(0)
	if !nop.Writes().IsEmpty() {
		t.Errorf("nop writes = %s", nop.Writes())
	}
}

func TestSyscall(t *testing.T) {
	w := enc(t, map[string]uint32{"op": 0, "funct": 0b001100})
	if c := NewDecoder().Decode(w).Category(); c != machine.CatSystem {
		t.Errorf("syscall category = %s", c)
	}
}

func TestConcision(t *testing.T) {
	// The paper: "a spawn description of the MIPS R2000 architecture
	// is 128 lines."  Ours should be in that ballpark.
	lines := Desc().SourceLines
	if lines < 40 || lines > 200 {
		t.Errorf("description is %d lines, expected a Fig-7-like size", lines)
	}
	t.Logf("mips description: %d non-comment non-blank lines", lines)
}

// signExt sign-extends a raw field value from the given bit width.
func signExt(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

func fieldOf(t *testing.T, w uint32, name string) uint32 {
	t.Helper()
	inst := NewDecoder().Decode(w)
	if !inst.Valid() {
		t.Fatalf("word %08x does not decode", w)
	}
	v, ok := inst.Field(name)
	if !ok {
		t.Fatalf("decoded %s has no %s field", inst.Name(), name)
	}
	return v
}

// TestEncodeDecodeBoundarySweep is the per-ISA port of the SPARC fuzz
// oracle's deterministic boundary sweep: every field is driven to its
// signed extremes, in-range values must round-trip exactly (including
// sign), and out-of-range values must be rejected by the encoder,
// never silently truncated.  Field-extent off-by-ones in the
// description show up here without a fuzzing session.
func TestEncodeDecodeBoundarySweep(t *testing.T) {
	// simm16: signed-immediate ALU ops and memory ops.
	for _, name := range []string{"addiu", "slti", "sltiu", "lw", "sw", "lb", "sh"} {
		for _, imm := range []int32{-32768, -32767, -1024, -1, 0, 1, 1023, 32766, 32767} {
			w, err := EncodeI(name, 2, 3, imm)
			if err != nil {
				t.Errorf("%s simm16 %d: encode failed: %v", name, imm, err)
				continue
			}
			if got := signExt(fieldOf(t, w, "imm16"), 16); got != imm {
				t.Errorf("%s: simm16 %d encoded to %08x, decoded back as %d", name, imm, w, got)
			}
		}
		for _, imm := range []int32{-32769, 32768, 1 << 20, -(1 << 20)} {
			if w, err := EncodeI(name, 2, 3, imm); err == nil {
				t.Errorf("%s: out-of-range simm16 %d encoded silently to %08x", name, imm, w)
			}
		}
	}

	// uimm16: zero-extended logical immediates and lui.
	for _, name := range []string{"andi", "ori", "xori", "lui"} {
		for _, imm := range []uint32{0, 1, 0x7fff, 0x8000, 0xfffe, 0xffff} {
			w, err := EncodeIU(name, 2, 3, imm)
			if err != nil {
				t.Errorf("%s uimm16 %#x: encode failed: %v", name, imm, err)
				continue
			}
			if got := fieldOf(t, w, "imm16"); got != imm {
				t.Errorf("%s: uimm16 %#x encoded to %08x, decoded back as %#x", name, imm, w, got)
			}
		}
		if w, err := EncodeIU(name, 2, 3, 0x10000); err == nil {
			t.Errorf("%s: out-of-range uimm16 encoded silently to %08x", name, err)
			_ = w
		}
	}

	// Branch displacements, through the derived static target.
	const pc = 0x40000000
	for _, tc := range []struct {
		name string
		rt   uint32
	}{
		{"beq", 5}, {"bne", 5}, {"blez", 0}, {"bgtz", 0}, {"bltz", 0}, {"bgez", 0},
	} {
		for _, d := range []int32{-32768, -1024, -1, 0, 1, 1024, 32767} {
			w, err := EncodeBranch(tc.name, 4, tc.rt, d)
			if err != nil {
				t.Errorf("%s disp %d: encode failed: %v", tc.name, d, err)
				continue
			}
			inst := NewDecoder().Decode(w)
			if !inst.Valid() || inst.Name() != tc.name {
				t.Errorf("%s disp %d: decoded as %s (word %08x)", tc.name, d, inst, w)
				continue
			}
			tgt, ok := inst.StaticTarget(pc)
			want := uint32(int64(pc) + 4 + 4*int64(d))
			if !ok || tgt != want {
				t.Errorf("%s: disp %d target %#x, want %#x (word %08x)", tc.name, d, tgt, want, w)
			}
		}
		for _, d := range []int32{32768, -32769, 1 << 20} {
			if w, err := EncodeBranch(tc.name, 4, tc.rt, d); err == nil {
				t.Errorf("%s: out-of-range disp %d encoded silently to %08x", tc.name, d, w)
			}
		}
	}

	// Jump target26.
	for _, tw := range []uint32{0, 1, 1<<26 - 1} {
		for _, name := range []string{"j", "jal"} {
			w, err := EncodeJ(name, tw)
			if err != nil {
				t.Errorf("%s target26 %#x: encode failed: %v", name, tw, err)
				continue
			}
			if got := fieldOf(t, w, "target26"); got != tw {
				t.Errorf("%s: target26 %#x encoded to %08x, decoded back as %#x", name, tw, w, got)
			}
			inst := NewDecoder().Decode(w)
			tgt, ok := inst.StaticTarget(pc)
			want := pc&0xf0000000 | tw<<2
			if !ok || tgt != want {
				t.Errorf("%s: target26 %#x target %#x, want %#x", name, tw, tgt, want)
			}
		}
	}
	if w, err := EncodeJ("j", 1<<26); err == nil {
		t.Errorf("j: out-of-range target26 encoded silently to %08x", w)
	}

	// Shift amounts.
	for _, s := range []uint32{0, 1, 31} {
		w, err := EncodeShift("sll", 2, 3, s)
		if err != nil {
			t.Errorf("sll shamt %d: encode failed: %v", s, err)
			continue
		}
		if got := fieldOf(t, w, "shamt"); got != s {
			t.Errorf("sll: shamt %d decoded back as %d", s, got)
		}
	}
	if w, err := EncodeShift("sll", 2, 3, 32); err == nil {
		t.Errorf("sll: out-of-range shamt encoded silently to %08x", w)
	}

	// Register field extents.
	if w, err := EncodeR("addu", 32, 1, 2); err == nil {
		t.Errorf("addu: register 32 encoded silently to %08x", w)
	}
}
