// Package mips provides a second spawn machine description — a
// MIPS-I-like 32-bit RISC — demonstrating the paper's retargetability
// claim (§4: "a spawn description of the MIPS R2000 architecture is
// 128 lines").  Unlike SPARC, this machine has no condition codes
// (branches compare registers directly) and no annul bit, which
// exercises different corners of the description language; the same
// spawn compiler derives its decoder, classifications, register
// sets, and targets.
package mips

import (
	"fmt"

	"eel/internal/machine"
	"eel/internal/spawn"
)

// DescriptionSource is the spawn description for the MIPS-like
// machine.
const DescriptionSource = `
machine mips32e

instruction{32} fields
  op 26:31, rs 21:25, rt 16:20, rdf 11:15,
  shamt 6:10, funct 0:5, imm16 0:15, target26 0:25

register integer{32} R[34]
alias integer{32} HI is R[32]
alias integer{32} LO is R[33]
register integer{32} pc
zero is R[0]

// ---- Encodings ----

pat [ sll _ srl sra _ _ _ _ jr jalr _ _ syscall ]
  is op=0 && funct=[0b000000..0b001100]

pat [ mfhi _ mflo ] is op=0 && funct=[0b010000..0b010010]
pat [ mult multu ] is op=0 && funct=[0b011000 0b011001]

pat [ addu subu and or xor nor _ _ slt sltu ]
  is op=0 && funct=[0b100001 0b100011 0b100100 0b100101 0b100110 0b100111 0b101000 0b101001 0b101010 0b101011]

pat [ bltz bgez ] is op=0b000001 && rt=[0 1]
pat [ j jal beq bne blez bgtz ] is op=[0b000010 0b000011 0b000100 0b000101 0b000110 0b000111]
pat [ addiu slti sltiu andi ori xori lui ] is op=[0b001001..0b001111]
pat [ lb lh _ lw lbu lhu ] is op=[0b100000..0b100101]
pat [ sb sh _ sw ] is op=[0b101000..0b101011]

// ---- Semantics ----

val simm is sex(imm16)
val btgt is pc + 4 + shl(simm, 2)
val jtgt is (pc & 0xf0000000) | shl(target26, 2)

sem sll is R[rdf] := shl(R[rt], shamt)
sem srl is R[rdf] := shr(R[rt], shamt)
sem sra is R[rdf] := sar(R[rt], shamt)
sem jr is t := R[rs] ; pc := t
sem jalr is t := R[rs], R[rdf] := pc + 8 ; pc := t
sem syscall is trap(0)

sem mfhi is R[rdf] := HI
sem mflo is R[rdf] := LO
sem mult is p := sex(R[rs], 32) * sex(R[rt], 32), HI := p >> 32, LO := p
sem multu is p := R[rs] * R[rt], HI := p >> 32, LO := p

sem addu is R[rdf] := R[rs] + R[rt]
sem subu is R[rdf] := R[rs] - R[rt]
sem and is R[rdf] := R[rs] & R[rt]
sem or is R[rdf] := R[rs] | R[rt]
sem xor is R[rdf] := R[rs] ^ R[rt]
sem nor is R[rdf] := ~(R[rs] | R[rt])
sem slt is R[rdf] := sex(R[rs], 32) < sex(R[rt], 32)
sem sltu is R[rdf] := R[rs] < R[rt]

sem bltz is t := btgt ; (sex(R[rs], 32) < 0) ? pc := t
sem bgez is t := btgt ; (sex(R[rs], 32) >= 0) ? pc := t
sem j is t := jtgt ; pc := t
sem jal is t := jtgt, R[31] := pc + 8 ; pc := t
sem beq is t := btgt ; (R[rs] == R[rt]) ? pc := t
sem bne is t := btgt ; (R[rs] != R[rt]) ? pc := t
sem blez is t := btgt ; (sex(R[rs], 32) <= 0) ? pc := t
sem bgtz is t := btgt ; (sex(R[rs], 32) > 0) ? pc := t

sem addiu is R[rt] := R[rs] + simm
sem slti is R[rt] := sex(R[rs], 32) < simm
sem sltiu is R[rt] := R[rs] < (simm & 0xffffffff)
sem andi is R[rt] := R[rs] & imm16
sem ori is R[rt] := R[rs] | imm16
sem xori is R[rt] := R[rs] ^ imm16
sem lui is R[rt] := shl(imm16, 16)

sem lb is R[rt] := sexb(M[R[rs] + simm]{1})
sem lh is R[rt] := sexh(M[R[rs] + simm]{2})
sem lw is R[rt] := M[R[rs] + simm]{4}
sem lbu is R[rt] := M[R[rs] + simm]{1}
sem lhu is R[rt] := M[R[rs] + simm]{2}
sem sb is M[R[rs] + simm]{1} := R[rt]
sem sh is M[R[rs] + simm]{2} := R[rt]
sem sw is M[R[rs] + simm]{4} := R[rt]
`

var desc = spawn.MustParseDesc(DescriptionSource)

func init() {
	machine.RegisterArch(machine.ArchInfo{
		Name:       "mips32e",
		Aliases:    []string{"mips"},
		NewDecoder: func() machine.Decoder { return NewDecoder() },
		Trap: machine.TrapModel{
			Code:     0,               // "syscall"
			NumReg:   2,               // $v0
			Args:     [3]int{4, 5, 6}, // $a0..$a2
			Ret:      2,
			SysExit:  1,
			SysWrite: 4,
		},
		Lockstep: true,
	})
}

// Desc returns the compiled MIPS description.
func Desc() *spawn.Desc { return desc }

// NewDecoder returns a decoder for the MIPS-like machine.
func NewDecoder() *spawn.TableDecoder {
	return spawn.NewDecoder(desc, Glue, RegName)
}

// Glue resolves the machine's conventions: jr through the
// return-address register is a return.
func Glue(d *spawn.Desc, def *spawn.InstDef, spec *machine.InstSpec) {
	get := func(name string) uint32 {
		for _, f := range spec.Fields {
			if f.Name == name {
				return f.Val
			}
		}
		return 0
	}
	switch def.Name {
	case "jr":
		if get("rs") == 31 {
			spec.Cat = machine.CatReturn
		}
	case "jalr":
		spec.Cat = machine.CatCallIndirect
	}
}

// RegName renders registers in MIPS syntax.
func RegName(r machine.Reg) string {
	switch {
	case r < 32:
		return fmt.Sprintf("$%d", r)
	case r == 32:
		return "$hi"
	case r == 33:
		return "$lo"
	case r == machine.RegPC:
		return "$pc"
	}
	return fmt.Sprintf("$r%d", r)
}
