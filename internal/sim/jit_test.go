package sim

import (
	"bytes"
	"errors"
	"testing"

	"eel/internal/binfile"
	"eel/internal/machine"
	"eel/internal/progen"
)

// runMode executes f to completion in the chosen engine and returns
// the final CPU and its output.
func runMode(t *testing.T, f *binfile.File, nojit, nochain bool) (*CPU, []byte) {
	t.Helper()
	var out bytes.Buffer
	cpu := LoadFile(f, &out)
	cpu.NoJIT, cpu.NoChain = nojit, nochain
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatalf("run (nojit=%v nochain=%v): %v", nojit, nochain, err)
	}
	if !cpu.Halted {
		t.Fatalf("program did not halt (nojit=%v nochain=%v)", nojit, nochain)
	}
	return cpu, out.Bytes()
}

// TestTranslatedMatchesInterpreter is the differential test: every
// progen workload flavour runs under both the single-step interpreter
// and the translation-cache engine, and the architected results —
// exit code, output, instruction and annul counts, registers, and
// final memory — must be bit-identical.
func TestTranslatedMatchesInterpreter(t *testing.T) {
	configs := []struct {
		name string
		cfg  progen.Config
	}{
		{"gcc-default", progen.DefaultConfig(1)},
		{"gcc-seed7", progen.DefaultConfig(7)},
		{"gcc-large", func() progen.Config {
			c := progen.DefaultConfig(2012)
			c.Routines = 60
			return c
		}()},
		{"sunpro", func() progen.Config {
			c := progen.DefaultConfig(11)
			c.Personality = progen.SunPro
			return c
		}()},
		{"memheavy", func() progen.Config {
			c := progen.DefaultConfig(1011)
			c.MemHeavy = true
			return c
		}()},
		{"kitchen-sink", func() progen.Config {
			c := progen.DefaultConfig(99)
			c.Personality = progen.SunPro
			c.DataTables = true
			c.MultiEntry = true
			c.DebugLabels = true
			c.HiddenFrac = 0.2
			return c
		}()},
	}
	engines := []struct {
		name    string
		nojit   bool
		nochain bool
	}{
		{"translated", false, true},
		{"chained", false, false},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			p, err := progen.Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			interp, interpOut := runMode(t, p.File, true, false)
			for _, eng := range engines {
				trans, transOut := runMode(t, p.File, eng.nojit, eng.nochain)

				if interp.ExitCode != trans.ExitCode {
					t.Errorf("%s: exit code: interp %d, got %d", eng.name, interp.ExitCode, trans.ExitCode)
				}
				if !bytes.Equal(interpOut, transOut) {
					t.Errorf("%s: output diverged: interp %d bytes, got %d bytes", eng.name, len(interpOut), len(transOut))
				}
				if interp.InstCount != trans.InstCount {
					t.Errorf("%s: InstCount: interp %d, got %d", eng.name, interp.InstCount, trans.InstCount)
				}
				if interp.AnnulCount != trans.AnnulCount {
					t.Errorf("%s: AnnulCount: interp %d, got %d", eng.name, interp.AnnulCount, trans.AnnulCount)
				}
				if interp.R != trans.R {
					t.Errorf("%s: integer registers diverged:\ninterp %v\ngot    %v", eng.name, interp.R, trans.R)
				}
				if interp.F != trans.F {
					t.Errorf("%s: float registers diverged", eng.name)
				}
				if interp.Y != trans.Y || interp.PSR != trans.PSR || interp.FSR != trans.FSR {
					t.Errorf("%s: special registers diverged: Y %x/%x PSR %x/%x FSR %x/%x",
						eng.name, interp.Y, trans.Y, interp.PSR, trans.PSR, interp.FSR, trans.FSR)
				}
				if len(interp.windows) != len(trans.windows) {
					t.Errorf("%s: window depth: interp %d, got %d", eng.name, len(interp.windows), len(trans.windows))
				}
				if addr, ok := interp.Mem.Diff(trans.Mem); !ok {
					t.Errorf("%s: memory diverged at %#x: interp %#x, got %#x",
						eng.name, addr, interp.Mem.ByteAt(addr), trans.Mem.ByteAt(addr))
				}
				if builds, _ := trans.TranslationStats(); builds == 0 {
					t.Errorf("%s: translation cache built no blocks; jit path not exercised", eng.name)
				}
			}
		})
	}
}

// TestJITInvalidatesOnTextWrite checks the self-modifying-code path:
// writing into watched text flushes the block cache, and re-execution
// picks up the edited instruction.
func TestJITInvalidatesOnTextWrite(t *testing.T) {
	cpu, prog := load(t, `
	mov 21, %o0
	mov 1, %g1
	ta 0
`, 0x10000)
	cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
	run(t, cpu)
	if cpu.ExitCode != 21 {
		t.Fatalf("exit = %d, want 21", cpu.ExitCode)
	}
	builds, flushesBefore := cpu.TranslationStats()
	if builds == 0 {
		t.Fatal("no blocks built; jit not engaged")
	}

	// Patch the mov's immediate from 21 to 42 (simm13 bits 12:0).
	word := cpu.Mem.Read32(prog.Base)
	cpu.Mem.Write32(prog.Base, word&^0x1fff|42)
	if _, flushes := cpu.TranslationStats(); flushes <= flushesBefore {
		t.Fatalf("text write did not flush the cache (flushes %d -> %d)", flushesBefore, flushes)
	}

	cpu.Reset(prog.Base, 0x7ff000)
	run(t, cpu)
	if cpu.ExitCode != 42 {
		t.Fatalf("exit after patch = %d, want 42", cpu.ExitCode)
	}
}

// TestJITDeoptOnExec checks that setting OnExec forces single-step
// observation of every executed instruction with unchanged counts.
func TestJITDeoptOnExec(t *testing.T) {
	src := `
	mov 5, %o1
	clr %o0
loop:
	add %o0, %o1, %o0
	subcc %o1, 1, %o1
	bne loop
	nop
	mov 1, %g1
	ta 0
`
	ref, refProg := load(t, src, 0x10000)
	ref.TextStart, ref.TextEnd = refProg.Base, refProg.Base+uint32(len(refProg.Bytes))
	ref.NoJIT = true
	run(t, ref)

	cpu, prog := load(t, src, 0x10000)
	cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
	count := uint64(0)
	cpu.OnExec = func(pc uint32, _ *machine.Inst) { count++ }
	run(t, cpu)

	if cpu.InstCount != ref.InstCount || cpu.AnnulCount != ref.AnnulCount {
		t.Errorf("counts diverged: got %d/%d, want %d/%d",
			cpu.InstCount, cpu.AnnulCount, ref.InstCount, ref.AnnulCount)
	}
	if count != cpu.InstCount {
		t.Errorf("OnExec observed %d instructions, InstCount %d", count, cpu.InstCount)
	}
	if builds, _ := cpu.TranslationStats(); builds != 0 {
		t.Errorf("jit built %d blocks while OnExec was set; want deopt to single-step", builds)
	}
	if cpu.ExitCode != ref.ExitCode || cpu.R != ref.R {
		t.Error("deoptimized run diverged from interpreter")
	}
}

// TestJITStepLimitParity checks that both engines fault with the same
// step-limit state.
func TestJITStepLimitParity(t *testing.T) {
	src := `
loop:
	ba loop
	nop
`
	faultOf := func(nojit bool) (*CPU, *Fault) {
		cpu, prog := load(t, src, 0x10000)
		cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
		cpu.NoJIT = nojit
		err := cpu.Run(100)
		var f *Fault
		if !errors.As(err, &f) || !errors.Is(err, ErrStepLimit) {
			t.Fatalf("nojit=%v: err = %v, want step-limit fault", nojit, err)
		}
		return cpu, f
	}
	icpu, ifault := faultOf(true)
	tcpu, tfault := faultOf(false)
	if icpu.InstCount != tcpu.InstCount || ifault.PC != tfault.PC {
		t.Errorf("limit state diverged: interp %d@%#x, translated %d@%#x",
			icpu.InstCount, ifault.PC, tcpu.InstCount, tfault.PC)
	}
}

// TestMemoryAlignedFastPath pins the aligned Read32/Write32 fast path
// to the byte-at-a-time semantics.
func TestMemoryAlignedFastPath(t *testing.T) {
	m := NewMemory()
	m.Write32(0x2000, 0xdeadbeef)
	if got := m.Read32(0x2000); got != 0xdeadbeef {
		t.Fatalf("Read32 = %#x", got)
	}
	// Big-endian byte order must match SetByte/ByteAt.
	for i, want := range []byte{0xde, 0xad, 0xbe, 0xef} {
		if got := m.ByteAt(0x2000 + uint32(i)); got != want {
			t.Errorf("byte %d = %#x, want %#x", i, got, want)
		}
	}
	// Unaligned accesses still work via the slow path.
	m.Write32(0x3001, 0x01020304)
	if got := m.Read32(0x3001); got != 0x01020304 {
		t.Fatalf("unaligned Read32 = %#x", got)
	}
	// Page-boundary aligned access at the last word of a page.
	m.Write32(pageSize-4, 0xa1b2c3d4)
	if got := m.Read32(pageSize - 4); got != 0xa1b2c3d4 {
		t.Fatalf("page-tail Read32 = %#x", got)
	}
	if got := m.Read32(0x9000); got != 0 {
		t.Fatalf("unmapped Read32 = %#x, want 0", got)
	}
}
