package sim

import (
	"io"

	"eel/internal/binfile"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// DefaultStack is the initial stack pointer used by LoadFile.
const DefaultStack = 0x7ff000

// LoadFile builds a SPARC CPU with every section of f loaded,
// execution restricted to the text section, and the pc at the entry
// point.  Use LoadFileWith to run another machine's image.
func LoadFile(f *binfile.File, stdout io.Writer) *CPU {
	return LoadFileWith(sparc.NewDecoder(), f, stdout)
}

// LoadFileWith is LoadFile for any registered architecture's decoder.
func LoadFileWith(dec *spawn.TableDecoder, f *binfile.File, stdout io.Writer) *CPU {
	mem := NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := New(dec, mem)
	cpu.Stdout = stdout
	if text := f.Text(); text != nil {
		cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	}
	cpu.Reset(f.Entry, DefaultStack)
	return cpu
}
