package sim

import (
	"io"

	"eel/internal/binfile"
	"eel/internal/sparc"
)

// DefaultStack is the initial stack pointer used by LoadFile.
const DefaultStack = 0x7ff000

// LoadFile builds a CPU with every section of f loaded, execution
// restricted to the text section, and the pc at the entry point.
func LoadFile(f *binfile.File, stdout io.Writer) *CPU {
	mem := NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := New(sparc.NewDecoder(), mem)
	cpu.Stdout = stdout
	if text := f.Text(); text != nil {
		cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	}
	cpu.Reset(f.Entry, DefaultStack)
	return cpu
}
