package sim

import (
	"testing"

	"eel/internal/obs"
)

// TestFlightEventsFromRoutineTier checks that the routine tier's
// notable transitions land in the flight recorder: promotion at the
// heat threshold, program install, the self-modifying store's text
// invalidation, and the resulting deopt.
func TestFlightEventsFromRoutineTier(t *testing.T) {
	prev := obs.ActiveFlight()
	defer func() {
		obs.DisableFlight()
		if prev != nil {
			obs.EnableFlight(0)
		}
	}()
	f := obs.EnableFlight(1024)

	src := `
	sethi %hi(0x10018), %o3
	or %o3, %lo(0x10018), %o3
	ld [%o3], %o4
	st %o4, [%o3]
	mov 33, %o0
	mov 1, %g1
	ta 0
	retl
	nop
`
	cpu, prog := load(t, src, 0x10000)
	cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
	cpu.EnableRoutines = true
	cpu.RoutineSync = true
	cpu.RoutineHotThreshold = 1
	run(t, cpu)

	if cpu.ExitCode != 33 {
		t.Fatalf("exit = %d, want 33", cpu.ExitCode)
	}
	k := cpu.Counters()
	if k.RoutinesCompiled == 0 || k.RoutineDeopts == 0 {
		t.Fatalf("tier not exercised: compiled %d deopts %d", k.RoutinesCompiled, k.RoutineDeopts)
	}

	kinds := map[obs.EventKind]int{}
	for _, e := range f.Events() {
		kinds[e.Kind]++
	}
	for _, want := range []obs.EventKind{
		obs.EvTierPromote, obs.EvRoutineInstall, obs.EvInvalidate, obs.EvRoutineDeopt,
	} {
		if kinds[want] == 0 {
			t.Errorf("no %v event recorded (got %v)", want, kinds)
		}
	}
	if got := uint64(kinds[obs.EvRoutineDeopt]); got != k.RoutineDeopts {
		t.Errorf("%d deopt events for %d counted deopts", got, k.RoutineDeopts)
	}
}
