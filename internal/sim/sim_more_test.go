package sim

import (
	"testing"
	"testing/quick"

	"eel/internal/machine"
)

// These tests cover the semantic corners the main suite does not:
// carry arithmetic, the Y register, doubleword and atomic memory
// operations, and memory properties.

func TestCarryChain(t *testing.T) {
	// 64-bit add from 32-bit halves: addcc sets C, addx consumes it.
	cpu, _ := load(t, `
	set 0xffffffff, %l0   ! low(a)
	mov 0, %l1            ! high(a)
	mov 1, %l2            ! low(b)
	mov 0, %l3            ! high(b)
	addcc %l0, %l2, %o1   ! low sum, sets carry
	addx %l1, %l3, %o0    ! high sum + carry
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 1 {
		t.Errorf("high word = %d, want 1 (carry)", cpu.ExitCode)
	}
	if cpu.R[9] != 0 {
		t.Errorf("low word = %#x, want 0", cpu.R[9])
	}
}

func TestSubxBorrow(t *testing.T) {
	cpu, _ := load(t, `
	mov 0, %l0
	mov 1, %l1
	subcc %l0, %l1, %o1   ! 0-1: borrow
	mov 5, %l2
	subx %l2, 0, %o0      ! 5 - 0 - borrow = 4
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 4 {
		t.Errorf("subx = %d, want 4", cpu.ExitCode)
	}
}

func TestYRegister(t *testing.T) {
	cpu, _ := load(t, `
	mov 7, %l0
	wr %l0, %y
	rd %y, %o0
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 7 {
		t.Errorf("y round trip = %d", cpu.ExitCode)
	}
}

func TestDoubleword(t *testing.T) {
	cpu, _ := load(t, `
	set buf, %l0
	set 0x11223344, %o2
	set 0x55667788, %o3
	std %o2, [%l0]
	ldd [%l0], %o4
	xor %o4, %o2, %o0
	xor %o5, %o3, %o1
	or %o0, %o1, %o0
	mov 1, %g1
	ta 0
	.align 8
buf:	.skip 8
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 0 {
		t.Errorf("ldd/std round trip failed: %d", cpu.ExitCode)
	}
}

func TestLdstubAtomic(t *testing.T) {
	cpu, _ := load(t, `
	set lock, %l0
	ldstub [%l0], %o0     ! acquire: reads 0, writes 0xff
	ldstub [%l0], %o1     ! second acquire: reads 0xff
	mov 1, %g1
	ta 0
	.align 4
lock:	.byte 0
	.byte 0, 0, 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 0 {
		t.Errorf("first ldstub = %d, want 0", cpu.ExitCode)
	}
	if cpu.R[9] != 0xff {
		t.Errorf("second ldstub = %#x, want 0xff", cpu.R[9])
	}
}

func TestSwapInstruction(t *testing.T) {
	cpu, _ := load(t, `
	set buf, %l0
	mov 42, %l1
	st %l1, [%l0]
	mov 7, %o0
	swap [%l0], %o0       ! o0 <-> [buf]
	ld [%l0], %o1
	mov 1, %g1
	ta 0
	.align 4
buf:	.word 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 42 {
		t.Errorf("swap loaded %d", cpu.ExitCode)
	}
	if cpu.R[9] != 7 {
		t.Errorf("swap stored %d", cpu.R[9])
	}
}

func TestXnorAndShifts(t *testing.T) {
	cpu, _ := load(t, `
	set 0xf0f0f0f0, %l0
	xnor %l0, 0, %o0      ! ~x
	srl %o0, 28, %o0      ! 0x0f0f0f0f >> 28 = 0
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 0 {
		t.Errorf("xnor/srl = %#x", cpu.ExitCode)
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	mem := NewMemory()
	f := func(addr uint32, v uint32) bool {
		a := addr &^ 3
		mem.Write32(a, v)
		return mem.Read32(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Byte-level big-endian agreement.
	g := func(addr uint32, v uint32) bool {
		a := addr &^ 3
		mem.Write32(a, v)
		return mem.ByteAt(a) == byte(v>>24) && mem.ByteAt(a+3) == byte(v)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHalfwordMemory(t *testing.T) {
	mem := NewMemory()
	mem.Write(0x100, 2, 0xBEEF)
	if mem.Read(0x100, 2) != 0xBEEF {
		t.Error("halfword round trip")
	}
	if mem.ByteAt(0x100) != 0xBE || mem.ByteAt(0x101) != 0xEF {
		t.Error("halfword endianness")
	}
}

func TestResetClearsState(t *testing.T) {
	cpu, prog := load(t, `
	mov 9, %l0
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	cpu.Reset(prog.Base, 0x7ff000)
	if cpu.Halted || cpu.InstCount != 0 || cpu.R[16] != 0 {
		t.Error("Reset left state behind")
	}
	run(t, cpu) // runs again cleanly
}

func TestOnExecSeesCategories(t *testing.T) {
	cpu, _ := load(t, `
	call f
	nop
	mov 1, %g1
	ta 0
f:	retl
	nop
`, 0x10000)
	var cats []machine.Category
	cpu.OnExec = func(pc uint32, inst *machine.Inst) {
		cats = append(cats, inst.Category())
	}
	run(t, cpu)
	// call, nop, retl, nop, mov, ta
	want := []machine.Category{
		machine.CatCallDirect, machine.CatCompute, machine.CatReturn,
		machine.CatCompute, machine.CatCompute, machine.CatSystem,
	}
	if len(cats) != len(want) {
		t.Fatalf("saw %d instructions: %v", len(cats), cats)
	}
	for i, w := range want {
		if cats[i] != w {
			t.Errorf("inst %d: %s, want %s", i, cats[i], w)
		}
	}
}
