package sim

import (
	"testing"

	"eel/internal/progen"
)

// TestResetCounters covers the per-run JIT accounting fix: a reused
// CPU accumulated builds/flushes/deopts across Run invocations, so a
// second run's numbers included the first's.  ResetCounters gives
// callers a clean baseline without discarding cached translations.
func TestResetCounters(t *testing.T) {
	p := progen.MustGenerate(progen.DefaultConfig(3))

	cpu := LoadFile(p.File, nil)
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	first := cpu.Counters()
	if first.Builds == 0 {
		t.Fatalf("first run built no superblocks: %+v", first)
	}
	if first.Insts != cpu.InstCount {
		t.Fatalf("Counters().Insts = %d, want InstCount %d", first.Insts, cpu.InstCount)
	}

	// Without a reset, a second run on the reused CPU starts from the
	// first run's JIT totals (the bug this API fixes).
	cpu.ResetCounters()
	after := cpu.Counters()
	if after.Builds != 0 || after.Flushes != 0 || after.Deopts != 0 {
		t.Fatalf("ResetCounters left JIT counters nonzero: %+v", after)
	}

	// Rerun the same program: translations were kept (Reset below
	// invalidates, so rebuild counts are fresh) and the counters now
	// describe only this run.
	cpu.Reset(p.File.Entry, DefaultStack)
	cpu.ResetCounters() // Reset's own invalidation counts as a flush; start clean
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	second := cpu.Counters()
	if second.Builds == 0 {
		t.Fatalf("second run built no superblocks: %+v", second)
	}
	if second.Builds > first.Builds {
		t.Fatalf("second run reports more builds (%d) than a full cold run (%d)",
			second.Builds, first.Builds)
	}
	if second.Flushes != 0 {
		t.Fatalf("second run reports stale flushes: %+v", second)
	}
}

// TestCountersDeopt checks the deopt counter stays zero on a fully
// translatable workload: deopts only happen when a pc has no
// translation, which progen programs never produce.
func TestCountersDeopt(t *testing.T) {
	p := progen.MustGenerate(progen.DefaultConfig(3))
	cpu := LoadFile(p.File, nil)
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if k := cpu.Counters(); k.Deopts != 0 {
		t.Fatalf("fully translatable workload reported %d deopts", k.Deopts)
	}
}
