// Emulator profiling hooks: per-pc and per-superblock hotness plus
// branch/annul/trap counters, collected while a program runs under
// either execution engine.  The data is what cmd/eelprof turns into a
// qpt-style hot-routine / hot-block profile — the paper's headline
// application family, measured from the inside.
package sim

import (
	"eel/internal/machine"
	"eel/internal/telemetry"
)

// Profile accumulates execution hotness while attached to a CPU (see
// CPU.EnableProfile).  Counts cover executed (non-annulled)
// instructions only and are identical under the translation-cache
// engine and the single-step interpreter — annulled slots are skipped
// by the shared pipeline-advance in both.
type Profile struct {
	textStart uint32
	pc        []uint64 // executions per word in [TextStart, TextEnd)

	// blockEnters counts entries into each translated superblock (by
	// anchor pc).  Empty when the CPU ran with NoJIT.
	blockEnters map[uint32]uint64

	// Branches counts executed conditional branches; BranchesTaken
	// the subset that transferred control.  Traps counts executed
	// system (trap) instructions.
	Branches      uint64
	BranchesTaken uint64
	Traps         uint64
}

// EnableProfile attaches (and returns) a fresh profile sized to the
// CPU's current [TextStart, TextEnd) window.  Call it after loading
// the program; calling again discards the previous profile.
// Profiling costs one predictable branch per executed instruction
// when disabled, and one array increment when enabled.
func (c *CPU) EnableProfile() *Profile {
	p := &Profile{
		textStart:   c.TextStart,
		blockEnters: map[uint32]uint64{},
	}
	if c.TextEnd > c.TextStart {
		p.pc = make([]uint64, (c.TextEnd-c.TextStart+3)/4)
	}
	c.prof = p
	return p
}

// DisableProfile detaches the profile; execution reverts to the
// unobserved fast path.
func (c *CPU) DisableProfile() { c.prof = nil }

// record notes one executed instruction; transfer reports whether it
// scheduled a control transfer (immediate or delayed).
func (p *Profile) record(pc uint32, inst *machine.Inst, transfer bool) {
	if i := (pc - p.textStart) >> 2; int(i) < len(p.pc) {
		p.pc[i]++
	}
	switch inst.Category() {
	case machine.CatBranch:
		p.Branches++
		if transfer {
			p.BranchesTaken++
		}
	case machine.CatSystem:
		p.Traps++
	}
}

// PCCount returns how many times the instruction at pc executed.
func (p *Profile) PCCount(pc uint32) uint64 {
	i := (pc - p.textStart) >> 2
	if int(i) >= len(p.pc) {
		return 0
	}
	return p.pc[i]
}

// Range calls fn for every profiled pc with a nonzero count, in
// ascending address order.
func (p *Profile) Range(fn func(pc uint32, count uint64)) {
	for i, n := range p.pc {
		if n != 0 {
			fn(p.textStart+uint32(i)*4, n)
		}
	}
}

// BlockEnters returns the superblock-entry counts (anchor pc →
// enters); empty when the run never used the translation cache.
func (p *Profile) BlockEnters() map[uint32]uint64 { return p.blockEnters }

// Publish exports the profile's distributions into reg: log-scale
// hotness histograms over per-pc and per-superblock counts
// ("sim.profile.pc_hotness", "sim.profile.block_hotness") and the
// branch/trap counters.  A nil registry is a no-op.
func (p *Profile) Publish(reg *telemetry.Registry) {
	if reg == nil || p == nil {
		return
	}
	pcHist := reg.Histogram("sim.profile.pc_hotness")
	for _, n := range p.pc {
		if n != 0 {
			pcHist.Observe(n)
		}
	}
	blockHist := reg.Histogram("sim.profile.block_hotness")
	for _, n := range p.blockEnters {
		blockHist.Observe(n)
	}
	reg.Counter("sim.profile.branches").Add(p.Branches)
	reg.Counter("sim.profile.branches_taken").Add(p.BranchesTaken)
	reg.Counter("sim.profile.traps").Add(p.Traps)
}
