// The translation-cache execution engine: a threaded-code fast path
// for Run.  On first execution of a text address the decoded
// instruction's RTL semantics are lowered (once per distinct word, by
// rtl.Compile via spawn.InstSem.Compiled) to a flat micro-op program,
// and straight-line runs are collected into superblocks stored in a
// direct-mapped-by-address cache.  Executing a superblock repeats
// execute-compiled-program / advance-pipeline with no memory fetch,
// no decoder lookup, and no AST dispatch; untaken conditional
// branches and annulled slots continue inside the block, and tight
// loops whose target lies in the block never leave it.
//
// Control stays out of the central dispatcher between blocks too
// (see runChained in sim.go): every block records, per exit site, the
// successor block last observed there.  Static exits act as direct
// chain links; indirect exits (jmpl/ret/dispatch tables) use the same
// slot as a monomorphic inline cache, with a shared hashed victim
// table as a second level behind the direct-mapped cache.  Hot block
// anchors are re-translated into traces — longer superblocks that
// follow the observed hot path across block boundaries, biased by
// per-exit transition counts.  Every cached pointer is validated by
// the generation counter, and invalidation runs a bounded
// chain-unlinking pass over the blocks built since the last flush, so
// self-modifying-code handling stays exact and O(affected blocks).
//
// Architected behaviour is bit-identical to the interpreter: each
// block step mirrors Step minus fetch/decode and shares finishStep,
// so delayed branches, annulled slots, register windows, traps,
// InstCount and AnnulCount agree exactly (the differential tests in
// jit_test.go and the three-way fuzz lockstep prove it).  The engine
// deoptimizes to Step whenever OnExec is set, the pc leaves
// translated text, or an instruction cannot be compiled — and cached
// blocks are invalidated when text memory is written (self-modifying
// edits) or the CPU is Reset onto a new executable.
package sim

import (
	"eel/internal/machine"
	"eel/internal/obs"
	"eel/internal/rtl"
	"eel/internal/spawn"
	"eel/internal/telemetry"
)

const (
	// tcEntries sizes the direct-mapped block cache (indexed by
	// word-aligned pc).
	tcEntries = 1 << 12
	// tcMaxBlock bounds superblock length in instructions.
	tcMaxBlock = 64
	// vtEntries sizes the hashed victim table that backs the
	// direct-mapped cache: conflict-evicted blocks land here and are
	// promoted back on a hit instead of being rebuilt.
	vtEntries = 1 << 9
	// traceHotThreshold is the number of anchor entries after which a
	// linear block is re-translated into a trace.
	traceHotThreshold = 64
	// traceSiteMin is the minimum transition count an exit site needs
	// before it may steer trace extension, and a site must also carry
	// a strict majority of its block's observed exits.
	traceSiteMin = 16
	// traceMaxInsts / traceMaxSegs bound trace size.
	traceMaxInsts = 256
	traceMaxSegs  = 8
)

// compiledInst is one translated instruction: the interned decoded
// instruction plus its compiled semantics and its text address (trace
// blocks are not contiguous, so each entry carries its own pc).
type compiledInst struct {
	inst *machine.Inst
	prog *rtl.Prog
	pc   uint32
}

// exitSlot caches the successor last seen leaving a block at one exit
// site.  For exits reached through a static branch or fall-through it
// is a direct chain link; for indirect transfers it is a monomorphic
// inline cache keyed by pc.  count biases trace extension toward the
// dominant exit.
type exitSlot struct {
	blk      *tblock
	pc       uint32
	count    uint32
	indirect bool
}

// tblock is a superblock: compiled instructions for the text run
// starting at pc.  A block with no instructions marks an address the
// engine must interpret (invalid word, uncompilable semantics).
// exits parallels insts: slot i caches the successor for exits whose
// last executed instruction was insts[i].  gen records the cache
// generation the block was built in; a chain pointer may be followed
// only while the generations still match.
type tblock struct {
	pc     uint32
	insts  []compiledInst
	exits  []exitSlot
	gen    uint64
	enters uint64
	trace  bool

	// Hot-tier re-translation (see promote): fast[i], when non-nil,
	// is insts[i]'s direct-commit program, which executes without the
	// pending-write machinery; lean[i] additionally marks it free of
	// control effects (no pc write, annul or trap), admitting the
	// short pipeline advance.  ops[i], when non-nil, is the same
	// program as a flat op list run inline by the exec loops (skipping
	// the per-instruction RunDirect call), and memw[i] marks the
	// instructions that can write memory — the only ones whose
	// execution can invalidate the cache, so the others skip the
	// generation re-check.  Cold blocks leave all four nil.
	fast []*rtl.Prog
	lean []bool
	ops  [][]rtl.OpFunc
	memw []bool
}

// transCache is a direct-mapped translation cache plus its
// generation counter, bumped on every invalidation so in-flight
// superblocks notice text writes mid-run.  blocks registers every
// block built since the last flush so invalidation and trace
// installation can sever chain pointers without scanning the whole
// cache.
type transCache struct {
	entries [tcEntries]*tblock
	victims [vtEntries]*tblock
	blocks  []*tblock
	gen     uint64

	// counters for introspection and tests (see CPU.Counters and
	// CPU.ResetCounters; a reused CPU carries them across Run calls
	// until explicitly reset).
	builds  uint64
	flushes uint64
	deopts  uint64

	chainHits   uint64
	chainMisses uint64
	icHits      uint64
	icMisses    uint64
	victimHits  uint64

	traces        uint64
	tracesRetired uint64
}

func tcIndex(pc uint32) uint32 { return (pc >> 2) & (tcEntries - 1) }

// vtIndex hashes a block anchor into the victim table.  Colliding
// anchors differ in bits above the direct-mapped index, so a
// multiplicative hash keeps them from colliding here too.
func vtIndex(pc uint32) uint32 { return ((pc >> 2) * 0x9e3779b1) >> (32 - 9) }

// InvalidateText discards every cached translation block.  It is
// called automatically when a watched text write occurs or the CPU is
// Reset; callers that mutate text bypassing Memory (or change
// TextStart/TextEnd) should call it directly.
//
// Besides bumping the generation and clearing both cache levels, it
// severs every chain pointer installed since the last flush (the
// chain-unlinking pass): a caller holding a stale block reference can
// then never re-enter retired code through a link, and the work is
// bounded by the number of blocks actually built.
func (c *CPU) InvalidateText() {
	if c.tc == nil {
		return
	}
	c.tc.gen++
	c.tc.flushes++
	for i := range c.tc.entries {
		c.tc.entries[i] = nil
	}
	for i := range c.tc.victims {
		c.tc.victims[i] = nil
	}
	for _, b := range c.tc.blocks {
		if b.trace {
			c.tc.tracesRetired++
		}
		for i := range b.exits {
			b.exits[i].blk = nil
		}
	}
	c.tc.blocks = c.tc.blocks[:0]
	if c.rt != nil {
		// Stale routine programs must not be re-entered; in-flight
		// jobs are discarded at install by the generation check, and
		// content-keyed cache entries stay valid for unchanged text.
		c.rt.heads = make(map[uint32]rhead)
		c.rt.candidates = make(map[uint32]bool)
		c.rt.enters = make(map[uint32]uint64)
		c.rt.pending = make(map[uint32]bool)
	}
	c.textHashOK = false // text content changed; re-hash on demand
	telemetry.ActiveTracer().Instant("sim.jit.invalidate", "sim")
	obs.Record(obs.EvInvalidate, uint64(c.TextStart), c.tc.gen)
}

// TranslationStats reports translation-cache activity: superblocks
// built and whole-cache invalidations.
func (c *CPU) TranslationStats() (builds, flushes uint64) {
	if c.tc == nil {
		return 0, 0
	}
	return c.tc.builds, c.tc.flushes
}

// block returns the translation block anchored at pc, building (and
// caching) it on a miss.  Conflict-evicted blocks are demoted to the
// victim table and promoted back — rather than rebuilt — when their
// anchor comes around again.
func (c *CPU) block(pc uint32) *tblock {
	c.ensureTC()
	i := tcIndex(pc)
	if b := c.tc.entries[i]; b != nil && b.pc == pc {
		return b
	}
	if vi := vtIndex(pc); c.tc.victims[vi] != nil {
		if b := c.tc.victims[vi]; b.pc == pc && b.gen == c.tc.gen {
			c.tc.victims[vi] = nil
			c.tc.victimHits++
			c.install(i, b)
			return b
		}
	}
	b := c.buildBlock(pc)
	b.gen = c.tc.gen
	b.exits = make([]exitSlot, len(b.insts))
	for j := range b.insts {
		b.exits[j].indirect = indirectTransfer(b.insts[j].inst) ||
			(j > 0 && indirectTransfer(b.insts[j-1].inst))
	}
	c.install(i, b)
	c.tc.blocks = append(c.tc.blocks, b)
	c.tc.builds++
	return b
}

// install places b in its direct-mapped slot, demoting any
// different-anchor occupant to the victim table so colliding hot
// blocks displace rather than destroy each other.
func (c *CPU) install(i uint32, b *tblock) {
	if old := c.tc.entries[i]; old != nil && old.pc != b.pc {
		c.tc.victims[vtIndex(old.pc)] = old
	}
	c.tc.entries[i] = b
}

// unlink severs every chain pointer to dead (bounded by the blocks
// built since the last flush) and drops it from the victim table, so
// a replaced translation cannot be re-entered through a link.
func (c *CPU) unlink(dead *tblock) {
	for _, b := range c.tc.blocks {
		for i := range b.exits {
			if b.exits[i].blk == dead {
				b.exits[i].blk = nil
			}
		}
	}
	if vi := vtIndex(dead.pc); c.tc.victims[vi] == dead {
		c.tc.victims[vi] = nil
	}
}

// buildBlock translates the straight-line run starting at pc.  It
// stops at text bounds, undecodable or uncompilable instructions, the
// block length cap, or DelaySlots() instructions past an unconditional
// control transfer (zero on machines without delay slots, so the block
// ends at the transfer itself); conditional branches do not end the
// block, which is what makes it a superblock.
//
// A control transfer sitting in another transfer's delay slot (a DCTI
// couple) is never admitted into a block: the couple's interleaved
// pipeline state spans what the block machinery treats as a boundary,
// so the builder conservatively closes the block at the first
// transfer and leaves the couple to the dispatcher's per-instruction
// path, which carries full PC/NPC bookkeeping.
func (c *CPU) buildBlock(pc uint32) *tblock {
	b := &tblock{pc: pc}
	slotsLeft := -1 // <0: not closing; 0: stop
	for addr := pc; len(b.insts) < tcMaxBlock && slotsLeft != 0; addr += c.isize {
		if addr < c.TextStart || addr >= c.TextEnd || addr%c.isize != 0 {
			break
		}
		word := c.Mem.Read32(addr)
		inst := c.dec.Decode(word)
		if !inst.Valid() {
			break
		}
		if slotsLeft > 0 && (inst.Category().IsControl() || inst.DelaySlots() > 0) {
			// DCTI couple: drop the slot instruction and close the
			// block at the first transfer.
			break
		}
		sem, ok := inst.Sem().(*spawn.InstSem)
		if !ok {
			break
		}
		prog, err := sem.Compiled()
		if err != nil {
			break
		}
		b.insts = append(b.insts, compiledInst{inst: inst, prog: prog, pc: addr})
		if c.rtOn && inst.Category() == machine.CatCallDirect {
			// Static call targets are the routine tier's promotion
			// candidates.
			if t, ok := inst.StaticTarget(addr); ok {
				c.rtNoteCandidate(t)
			}
		}
		if slotsLeft > 0 {
			slotsLeft--
		} else if uncondTransfer(inst) {
			slotsLeft = inst.DelaySlots()
		}
	}
	return b
}

// promote re-translates a hot block's instructions into the direct
// tier: each semantic program that rtl.CompileDirect can prove
// reorder-safe is swapped in, committing writes immediately instead
// of buffering them per step.  Instructions whose semantics resist
// the proof (swap, cc ops overwriting their own source, register
// windows sharing a step) simply keep the buffered program — the two
// tiers interleave freely within a block because each instruction's
// observable behaviour is identical either way.  Only the chained
// engine promotes, so the NoChain baseline keeps measuring the
// dispatcher-era execution path unchanged.
func (c *CPU) promote(b *tblock) {
	if b.fast != nil {
		return
	}
	b.fast = make([]*rtl.Prog, len(b.insts))
	b.lean = make([]bool, len(b.insts))
	b.ops = make([][]rtl.OpFunc, len(b.insts))
	b.memw = make([]bool, len(b.insts))
	for i := range b.insts {
		sem, ok := b.insts[i].inst.Sem().(*spawn.InstSem)
		if !ok {
			b.memw[i] = true
			continue
		}
		p := sem.CompiledDirect()
		if p == nil {
			b.memw[i] = true // conservatively re-check gen after it
			continue
		}
		b.fast[i] = p
		b.lean[i] = p.Flags()&(rtl.FlagPC|rtl.FlagAnnul|rtl.FlagTrap) == 0
		b.ops[i] = p.DirectOps()
		b.memw[i] = p.Flags()&rtl.FlagMemWrite != 0
	}
}

// uncondTransfer reports whether inst always leaves the fall-through
// path, so that translating past its delay slot is wasted work.
func uncondTransfer(inst *machine.Inst) bool {
	switch inst.Category() {
	case machine.CatJumpDirect, machine.CatJumpIndirect,
		machine.CatCallDirect, machine.CatCallIndirect, machine.CatReturn:
		return !inst.Conditional()
	}
	return false
}

// indirectTransfer reports whether inst's target is computed at run
// time, so an exit attributed to it (or to its delay slot) behaves as
// an inline-cache site rather than a direct chain link.
func indirectTransfer(inst *machine.Inst) bool {
	switch inst.Category() {
	case machine.CatJumpIndirect, machine.CatCallIndirect, machine.CatReturn:
		return true
	}
	return false
}

// runBlock executes translated instructions for as long as the pc
// stays inside b, mirroring Step exactly (minus fetch and decode).
// It returns with no error whenever the generic loop must take over:
// pc left the block, the step limit was reached, or a text write
// invalidated the cache mid-block.  This is the whole NoChain engine;
// the chained engine drives the same core through runChained.
func (c *CPU) runBlock(b *tblock, maxSteps uint64) error {
	_, _, err := c.execLinear(b, maxSteps, c.tc.gen)
	return err
}

// execLinear is the superblock execution core.  It runs until the pc
// leaves b or execution must stop, and reports the index of the last
// executed instruction (-1 if none ran) so the caller can attribute
// the exit to a chain slot.  stop is true when control must return to
// the dispatcher regardless of chaining: halt, step limit, or a
// mid-run cache invalidation.
func (c *CPU) execLinear(b *tblock, maxSteps uint64, gen uint64) (last int, stop bool, err error) {
	last = -1
	insts := b.insts
	fast := b.fast
	if c.prof != nil {
		fast = nil // profiled runs keep the fully-instrumented path
	}
	c.rtlCtx.Bind(&c.env)
	for {
		// Fixed 4-byte stride: bindDesc rejects any other instruction
		// width at New, so the shifts here cannot drift out of sync
		// with the description.
		off := c.PC - b.pc
		if off&3 != 0 || off>>2 >= uint32(len(insts)) {
			return last, false, nil
		}
		if c.InstCount >= maxSteps {
			return last, true, nil // outer loop raises ErrStepLimit at this pc
		}
		i := int(off >> 2)
		if i <= last && c.rtOn && c.rt.mb.has.Load() {
			// An in-block backward branch closed a loop iteration and a
			// finished routine compile is waiting: bounce to the
			// dispatcher so it installs between steps.  Straight-line
			// execution (i == last+1) never pays the atomic load.
			return last, true, nil
		}
		if fast != nil && fast[i] != nil {
			if b.lean[i] {
				// Hot tier, no control effects: direct write commits
				// and a pipeline advance that reduces to a sequential
				// shift (NPC already encodes any pending delayed
				// target, so this is exact even in a delay slot).
				// Temp-free programs run as inline op lists; only
				// memory-writing instructions can invalidate the
				// cache, so the rest skip the generation re-check.
				if ops := b.ops[i]; ops != nil {
					for _, op := range ops {
						if err := op(&c.rtlCtx); err != nil {
							return last, true, &Fault{c.PC, err}
						}
					}
				} else if err := fast[i].RunDirect(&c.env, &c.rtlCtx); err != nil {
					return last, true, &Fault{c.PC, err}
				}
				c.InstCount++
				last = i
				c.PC = c.NPC
				c.NPC += c.isize
				if b.memw[i] && c.tc.gen != gen {
					return last, true, nil
				}
				continue
			}
			// Hot tier with control effects (branch, call, trap):
			// direct commits but the full pipeline bookkeeping.
			c.hasDelayed, c.hasImmediate = false, false
			annulBefore := c.annulNext
			if err := fast[i].RunDirect(&c.env, &c.rtlCtx); err != nil {
				return last, true, &Fault{c.PC, err}
			}
			c.InstCount++
			last = i
			if c.Halted {
				return last, true, nil
			}
			c.finishStep(annulBefore)
			if c.tc.gen != gen {
				return last, true, nil
			}
			continue
		}
		ci := &insts[i]
		c.curInst = ci.inst
		c.hasDelayed, c.hasImmediate = false, false
		annulBefore := c.annulNext
		if err := ci.prog.Run(&c.env, &c.rtlCtx); err != nil {
			return last, true, &Fault{c.PC, err}
		}
		c.InstCount++
		last = i
		if c.prof != nil {
			c.prof.record(c.PC, ci.inst, c.hasImmediate || c.hasDelayed)
		}
		if c.Halted {
			return last, true, nil
		}
		c.finishStep(annulBefore)
		if c.tc.gen != gen {
			return last, true, nil // text was written; b may be stale
		}
	}
}

// execTrace executes a trace block.  Trace entries are not contiguous
// in memory, so instead of pc arithmetic each executed instruction is
// checked against the recorded pc of the next entry: a mismatch is a
// side exit (the observed hot path was not taken this time), and a pc
// equal to the trace head closes the loop without leaving translated
// code.  The contract with execLinear is identical.
func (c *CPU) execTrace(b *tblock, maxSteps uint64, gen uint64) (last int, stop bool, err error) {
	last = -1
	insts := b.insts
	fast := b.fast
	if c.prof != nil {
		fast = nil // profiled runs keep the fully-instrumented path
	}
	if c.PC != b.pc {
		return last, false, nil
	}
	c.rtlCtx.Bind(&c.env)
	for i := 0; ; {
		if c.InstCount >= maxSteps {
			return last, true, nil
		}
		if fast != nil && fast[i] != nil {
			if b.lean[i] {
				if ops := b.ops[i]; ops != nil {
					for _, op := range ops {
						if err := op(&c.rtlCtx); err != nil {
							return last, true, &Fault{c.PC, err}
						}
					}
				} else if err := fast[i].RunDirect(&c.env, &c.rtlCtx); err != nil {
					return last, true, &Fault{c.PC, err}
				}
				c.InstCount++
				last = i
				c.PC = c.NPC
				c.NPC += c.isize
				if !b.memw[i] {
					// Only a memory write can invalidate the cache;
					// skip straight to the next-entry guard.
					goto advance
				}
			} else {
				c.hasDelayed, c.hasImmediate = false, false
				annulBefore := c.annulNext
				if err := fast[i].RunDirect(&c.env, &c.rtlCtx); err != nil {
					return last, true, &Fault{c.PC, err}
				}
				c.InstCount++
				last = i
				if c.Halted {
					return last, true, nil
				}
				c.finishStep(annulBefore)
			}
		} else {
			ci := &insts[i]
			c.curInst = ci.inst
			c.hasDelayed, c.hasImmediate = false, false
			annulBefore := c.annulNext
			if err := ci.prog.Run(&c.env, &c.rtlCtx); err != nil {
				return last, true, &Fault{c.PC, err}
			}
			c.InstCount++
			last = i
			if c.prof != nil {
				c.prof.record(c.PC, ci.inst, c.hasImmediate || c.hasDelayed)
			}
			if c.Halted {
				return last, true, nil
			}
			c.finishStep(annulBefore)
		}
		if c.tc.gen != gen {
			return last, true, nil
		}
	advance:
		i++
		if i < len(insts) && insts[i].pc == c.PC {
			continue
		}
		if c.PC == b.pc {
			if c.rtOn && c.rt.mb.has.Load() {
				// Loop closed with a finished routine compile waiting:
				// hand back to the dispatcher to install between steps.
				return last, true, nil
			}
			i = 0 // loop closed back to the trace head
			continue
		}
		return last, false, nil
	}
}

// dominantExit picks the exit site carrying a strict majority of b's
// observed exits (and at least traceSiteMin transitions), returning
// the successor pc recorded there.  Blocks without a clearly biased
// exit do not steer trace extension.
func dominantExit(b *tblock) (site int, target uint32, ok bool) {
	var total uint64
	best, bestN := -1, uint32(0)
	for i := range b.exits {
		n := b.exits[i].count
		total += uint64(n)
		if n > bestN {
			best, bestN = i, n
		}
	}
	if best < 0 || bestN < traceSiteMin || uint64(bestN)*2 <= total {
		return 0, 0, false
	}
	s := &b.exits[best]
	if s.blk == nil {
		return 0, 0, false
	}
	return best, s.pc, true
}

// buildTrace re-translates the hot block head into a trace: a longer
// superblock following the observed dominant path across block
// boundaries, cut at each segment's majority exit.  The trace
// replaces head in the direct-mapped slot (chains into head are
// severed so the trace captures future entries); it returns nil when
// no extension is profitable.  Traces rely on no extra invariants:
// each executed entry is pc-guarded by execTrace and the generation
// counter, so a mispredicted path or text write simply side-exits.
func (c *CPU) buildTrace(head *tblock) *tblock {
	t := &tblock{pc: head.pc, trace: true, gen: c.tc.gen}
	cur := head
	for seg := 0; seg < traceMaxSegs; seg++ {
		site, target, ok := dominantExit(cur)
		if !ok {
			t.insts = append(t.insts, cur.insts...)
			break
		}
		t.insts = append(t.insts, cur.insts[:site+1]...)
		if len(t.insts) >= traceMaxInsts || target == head.pc {
			break
		}
		nb := c.block(target)
		if len(nb.insts) == 0 || nb.trace {
			break
		}
		cur = nb
	}
	if len(t.insts) <= len(head.insts) {
		return nil
	}
	t.exits = make([]exitSlot, len(t.insts))
	for j := range t.insts {
		t.exits[j].indirect = indirectTransfer(t.insts[j].inst) ||
			(j > 0 && indirectTransfer(t.insts[j-1].inst))
	}
	c.promote(t) // traces are hot by construction
	c.unlink(head)
	c.install(tcIndex(head.pc), t)
	c.tc.blocks = append(c.tc.blocks, t)
	c.tc.traces++
	return t
}
