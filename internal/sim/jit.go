// The translation-cache execution engine: a threaded-code fast path
// for Run.  On first execution of a text address the decoded
// instruction's RTL semantics are lowered (once per distinct word, by
// rtl.Compile via spawn.InstSem.Compiled) to a flat micro-op program,
// and straight-line runs are collected into superblocks stored in a
// direct-mapped-by-address cache.  Executing a superblock repeats
// execute-compiled-program / advance-pipeline with no memory fetch,
// no decoder lookup, and no AST dispatch; untaken conditional
// branches and annulled slots continue inside the block, and tight
// loops whose target lies in the block never leave it.
//
// Architected behaviour is bit-identical to the interpreter: each
// block step mirrors Step minus fetch/decode and shares finishStep,
// so delayed branches, annulled slots, register windows, traps,
// InstCount and AnnulCount agree exactly (the differential tests in
// jit_test.go prove it).  The engine deoptimizes to Step whenever
// OnExec is set, the pc leaves translated text, or an instruction
// cannot be compiled — and cached blocks are invalidated when text
// memory is written (self-modifying edits) or the CPU is Reset onto a
// new executable.
package sim

import (
	"eel/internal/machine"
	"eel/internal/rtl"
	"eel/internal/spawn"
	"eel/internal/telemetry"
)

const (
	// tcEntries sizes the direct-mapped block cache (indexed by
	// word-aligned pc).
	tcEntries = 1 << 12
	// tcMaxBlock bounds superblock length in instructions.
	tcMaxBlock = 64
)

// compiledInst is one translated instruction: the interned decoded
// instruction plus its compiled semantics.
type compiledInst struct {
	inst *machine.Inst
	prog *rtl.Prog
}

// tblock is a superblock: compiled instructions for the text run
// starting at pc.  A block with no instructions marks an address the
// engine must interpret (invalid word, uncompilable semantics).
type tblock struct {
	pc    uint32
	insts []compiledInst
}

// transCache is a direct-mapped translation cache plus its
// generation counter, bumped on every invalidation so in-flight
// superblocks notice text writes mid-run.
type transCache struct {
	entries [tcEntries]*tblock
	gen     uint64

	// counters for introspection and tests (see CPU.Counters and
	// CPU.ResetCounters; a reused CPU carries them across Run calls
	// until explicitly reset).
	builds  uint64
	flushes uint64
	deopts  uint64
}

func tcIndex(pc uint32) uint32 { return (pc >> 2) & (tcEntries - 1) }

// InvalidateText discards every cached translation block.  It is
// called automatically when a watched text write occurs or the CPU is
// Reset; callers that mutate text bypassing Memory (or change
// TextStart/TextEnd) should call it directly.
func (c *CPU) InvalidateText() {
	if c.tc == nil {
		return
	}
	c.tc.gen++
	c.tc.flushes++
	for i := range c.tc.entries {
		c.tc.entries[i] = nil
	}
	telemetry.ActiveTracer().Instant("sim.jit.invalidate", "sim")
}

// TranslationStats reports translation-cache activity: superblocks
// built and whole-cache invalidations.
func (c *CPU) TranslationStats() (builds, flushes uint64) {
	if c.tc == nil {
		return 0, 0
	}
	return c.tc.builds, c.tc.flushes
}

// block returns the translation block anchored at pc, building (and
// caching) it on a miss.
func (c *CPU) block(pc uint32) *tblock {
	if c.tc == nil {
		c.tc = &transCache{}
		// Self-modifying edits must evict stale translations.
		c.Mem.WatchWrites(c.TextStart, c.TextEnd, func(addr, n uint32) { c.InvalidateText() })
	}
	i := tcIndex(pc)
	if b := c.tc.entries[i]; b != nil && b.pc == pc {
		return b
	}
	b := c.buildBlock(pc)
	c.tc.entries[i] = b
	c.tc.builds++
	return b
}

// buildBlock translates the straight-line run starting at pc.  It
// stops at text bounds, undecodable or uncompilable instructions, the
// block length cap, or one instruction past an unconditional control
// transfer (its delay slot); conditional branches do not end the
// block, which is what makes it a superblock.
func (c *CPU) buildBlock(pc uint32) *tblock {
	b := &tblock{pc: pc}
	slotsLeft := -1 // <0: not closing; 0: stop
	for addr := pc; len(b.insts) < tcMaxBlock && slotsLeft != 0; addr += 4 {
		if addr < c.TextStart || addr >= c.TextEnd || addr%4 != 0 {
			break
		}
		word := c.Mem.Read32(addr)
		inst := c.dec.Decode(word)
		if !inst.Valid() {
			break
		}
		sem, ok := inst.Sem().(*spawn.InstSem)
		if !ok {
			break
		}
		prog, err := sem.Compiled()
		if err != nil {
			break
		}
		b.insts = append(b.insts, compiledInst{inst: inst, prog: prog})
		if slotsLeft > 0 {
			slotsLeft--
		} else if uncondTransfer(inst) {
			slotsLeft = inst.DelaySlots()
		}
	}
	return b
}

// uncondTransfer reports whether inst always leaves the fall-through
// path, so that translating past its delay slot is wasted work.
func uncondTransfer(inst *machine.Inst) bool {
	switch inst.Category() {
	case machine.CatJumpDirect, machine.CatJumpIndirect,
		machine.CatCallDirect, machine.CatCallIndirect, machine.CatReturn:
		return !inst.Conditional()
	}
	return false
}

// runBlock executes translated instructions for as long as the pc
// stays inside b, mirroring Step exactly (minus fetch and decode).
// It returns with no error whenever the generic loop must take over:
// pc left the block, the step limit was reached, or a text write
// invalidated the cache mid-block.
func (c *CPU) runBlock(b *tblock, maxSteps uint64) error {
	gen := c.tc.gen
	for {
		off := c.PC - b.pc
		if off&3 != 0 || off>>2 >= uint32(len(b.insts)) {
			return nil
		}
		if c.InstCount >= maxSteps {
			return nil // outer loop raises ErrStepLimit at this pc
		}
		ci := &b.insts[off>>2]
		c.curInst = ci.inst
		c.hasDelayed, c.hasImmediate = false, false
		annulBefore := c.annulNext
		if err := ci.prog.Run(&c.env, &c.rtlCtx); err != nil {
			return &Fault{c.PC, err}
		}
		c.InstCount++
		if c.prof != nil {
			c.prof.record(c.PC, ci.inst, c.hasImmediate || c.hasDelayed)
		}
		if c.Halted {
			return nil
		}
		c.finishStep(annulBefore)
		if c.tc.gen != gen {
			return nil // text was written; b may be stale
		}
	}
}
