package sim

import (
	"bytes"
	"errors"
	"testing"

	"eel/internal/binfile"
	"eel/internal/progen"
)

// runRoutineMode executes f to completion under the routine tier
// (synchronous compilation, immediate promotion) and returns the
// final CPU and its output.
func runRoutineMode(t *testing.T, f *binfile.File) (*CPU, []byte) {
	t.Helper()
	var out bytes.Buffer
	cpu := LoadFile(f, &out)
	cpu.EnableRoutines = true
	cpu.RoutineSync = true
	cpu.RoutineHotThreshold = 1
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatalf("routine run: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("program did not halt (routine)")
	}
	return cpu, out.Bytes()
}

// TestRoutineMatchesInterpreter is the routine tier's differential
// test: every progen workload flavour runs under the single-step
// interpreter and under the routine tier, and the architected results
// must be bit-identical.
func TestRoutineMatchesInterpreter(t *testing.T) {
	configs := []struct {
		name string
		cfg  progen.Config
	}{
		{"gcc-default", progen.DefaultConfig(1)},
		{"gcc-seed7", progen.DefaultConfig(7)},
		{"gcc-large", func() progen.Config {
			c := progen.DefaultConfig(2012)
			c.Routines = 60
			return c
		}()},
		{"sunpro", func() progen.Config {
			c := progen.DefaultConfig(11)
			c.Personality = progen.SunPro
			return c
		}()},
		{"memheavy", func() progen.Config {
			c := progen.DefaultConfig(1011)
			c.MemHeavy = true
			return c
		}()},
		{"callheavy", func() progen.Config {
			c := progen.DefaultConfig(4021)
			c.CallHeavy = true
			return c
		}()},
		{"kitchen-sink", func() progen.Config {
			c := progen.DefaultConfig(99)
			c.Personality = progen.SunPro
			c.DataTables = true
			c.MultiEntry = true
			c.DebugLabels = true
			c.HiddenFrac = 0.2
			return c
		}()},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			p, err := progen.Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			interp, interpOut := runMode(t, p.File, true, false)
			rt, rtOut := runRoutineMode(t, p.File)

			if interp.ExitCode != rt.ExitCode {
				t.Errorf("exit code: interp %d, got %d", interp.ExitCode, rt.ExitCode)
			}
			if !bytes.Equal(interpOut, rtOut) {
				t.Errorf("output diverged: interp %d bytes, got %d bytes", len(interpOut), len(rtOut))
			}
			if interp.InstCount != rt.InstCount {
				t.Errorf("InstCount: interp %d, got %d", interp.InstCount, rt.InstCount)
			}
			if interp.AnnulCount != rt.AnnulCount {
				t.Errorf("AnnulCount: interp %d, got %d", interp.AnnulCount, rt.AnnulCount)
			}
			if interp.R != rt.R {
				t.Errorf("integer registers diverged:\ninterp %v\ngot    %v", interp.R, rt.R)
			}
			if interp.F != rt.F {
				t.Error("float registers diverged")
			}
			if interp.Y != rt.Y || interp.PSR != rt.PSR || interp.FSR != rt.FSR {
				t.Errorf("special registers diverged: Y %x/%x PSR %x/%x FSR %x/%x",
					interp.Y, rt.Y, interp.PSR, rt.PSR, interp.FSR, rt.FSR)
			}
			if len(interp.windows) != len(rt.windows) {
				t.Errorf("window depth: interp %d, got %d", len(interp.windows), len(rt.windows))
			}
			if addr, ok := interp.Mem.Diff(rt.Mem); !ok {
				t.Errorf("memory diverged at %#x: interp %#x, got %#x",
					addr, interp.Mem.ByteAt(addr), rt.Mem.ByteAt(addr))
			}
			k := rt.Counters()
			if k.RoutinesCompiled == 0 {
				t.Error("no routines compiled; routine tier not exercised")
			}
			if k.TierPromotions == 0 {
				t.Error("no tier promotions recorded")
			}
		})
	}
}

// TestRoutineSelfModifyingDeopt pins the deopt invariant: a store
// into watched text from inside a routine program retires, bumps the
// generation, and falls back to the lower tiers with exact state.
func TestRoutineSelfModifyingDeopt(t *testing.T) {
	src := `
	sethi %hi(0x10018), %o3
	or %o3, %lo(0x10018), %o3
	ld [%o3], %o4
	st %o4, [%o3]
	mov 33, %o0
	mov 1, %g1
	ta 0
	retl
	nop
`
	ref, refProg := load(t, src, 0x10000)
	ref.TextStart, ref.TextEnd = refProg.Base, refProg.Base+uint32(len(refProg.Bytes))
	ref.NoJIT = true
	run(t, ref)

	cpu, prog := load(t, src, 0x10000)
	cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
	cpu.EnableRoutines = true
	cpu.RoutineSync = true
	cpu.RoutineHotThreshold = 1
	run(t, cpu)

	if cpu.ExitCode != 33 || cpu.ExitCode != ref.ExitCode {
		t.Errorf("exit = %d (interp %d), want 33", cpu.ExitCode, ref.ExitCode)
	}
	if cpu.InstCount != ref.InstCount {
		t.Errorf("InstCount = %d, interp %d", cpu.InstCount, ref.InstCount)
	}
	k := cpu.Counters()
	if k.RoutinesCompiled == 0 {
		t.Fatal("routine never compiled; deopt path not exercised")
	}
	if k.RoutineDeopts == 0 {
		t.Error("self-modifying store did not count a routine deopt")
	}
	if len(cpu.rt.heads) != 0 {
		t.Error("stale routine heads survived text invalidation")
	}
}

// TestRoutineStepLimitParity: for every step budget, the routine tier
// stops with the identical fault, pc, and instruction count as the
// interpreter — the budget refusal must hand over to a tier that can
// hit the limit exactly.
func TestRoutineStepLimitParity(t *testing.T) {
	src := `
	mov 0, %o0
	mov 5, %o1
loop:	add %o0, %o1, %o0
	subcc %o1, 1, %o1
	bne loop
	nop
	mov 1, %g1
	ta 0
	retl
	nop
`
	for limit := uint64(1); limit <= 26; limit++ {
		ref, refProg := load(t, src, 0x10000)
		ref.TextStart, ref.TextEnd = refProg.Base, refProg.Base+uint32(len(refProg.Bytes))
		ref.NoJIT = true
		refErr := ref.Run(limit)

		cpu, prog := load(t, src, 0x10000)
		cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
		cpu.EnableRoutines = true
		cpu.RoutineSync = true
		cpu.RoutineHotThreshold = 1
		rtErr := cpu.Run(limit)

		if (refErr == nil) != (rtErr == nil) {
			t.Fatalf("limit %d: err: interp %v, routine %v", limit, refErr, rtErr)
		}
		if refErr != nil {
			if !errors.Is(rtErr, ErrStepLimit) {
				t.Fatalf("limit %d: routine err = %v, want step limit", limit, rtErr)
			}
			if refErr.Error() != rtErr.Error() {
				t.Fatalf("limit %d: err: interp %q, routine %q", limit, refErr, rtErr)
			}
		}
		if ref.InstCount != cpu.InstCount || ref.PC != cpu.PC || ref.NPC != cpu.NPC {
			t.Fatalf("limit %d: state: interp insts=%d pc=%#x npc=%#x, routine insts=%d pc=%#x npc=%#x",
				limit, ref.InstCount, ref.PC, ref.NPC, cpu.InstCount, cpu.PC, cpu.NPC)
		}
		if ref.R != cpu.R {
			t.Fatalf("limit %d: registers diverged", limit)
		}
	}
}

// TestRoutineAsyncPromotion pins the no-stall property: with the
// background compiler (no RoutineSync), a long-running loop is
// promoted mid-run — between steps — and the architected results stay
// exact.  The worker touches only job-private data, so this test is
// meaningful under -race.
func TestRoutineAsyncPromotion(t *testing.T) {
	const n = 2_000_000
	src := `
	sethi %hi(2000000), %o1
	or %o1, %lo(2000000), %o1
loop:	subcc %o1, 1, %o1
	bne loop
	nop
	mov 7, %o0
	mov 1, %g1
	ta 0
	retl
	nop
`
	cpu, prog := load(t, src, 0x10000)
	cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
	cpu.EnableRoutines = true
	cpu.RoutineHotThreshold = 1
	if err := cpu.Run(20_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("program did not halt")
	}

	if cpu.ExitCode != 7 {
		t.Errorf("exit = %d, want 7", cpu.ExitCode)
	}
	// 2 setup + 3 per iteration + mov + mov + ta.
	if want := uint64(2 + 3*n + 3); cpu.InstCount != want {
		t.Errorf("InstCount = %d, want %d", cpu.InstCount, want)
	}
	k := cpu.Counters()
	if k.TierPromotions == 0 {
		t.Error("no promotion requested for the hot loop")
	}
	if k.RoutinesCompiled == 0 {
		t.Error("background compile did not install before the loop finished")
	}
}

// TestRoutineCountersAndReset: tier counters accumulate and reset
// like the chaining counters.
func TestRoutineCountersAndReset(t *testing.T) {
	p, err := progen.Generate(progen.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runRoutineMode(t, p.File)
	k := cpu.Counters()
	if k.RoutinesCompiled == 0 || k.TierPromotions == 0 {
		t.Fatalf("counters not engaged: %+v", k)
	}
	cpu.ResetCounters()
	k = cpu.Counters()
	if k.RoutinesCompiled != 0 || k.TierPromotions != 0 || k.RoutineDeopts != 0 {
		t.Errorf("counters survived reset: %+v", k)
	}
}
