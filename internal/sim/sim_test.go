package sim

import (
	"bytes"
	"testing"

	"eel/internal/asm"
	"eel/internal/machine"
	"eel/internal/sparc"
)

// load assembles src at base, loads it, and returns a ready CPU.
func load(t *testing.T, src string, base uint32) (*CPU, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	mem := NewMemory()
	mem.LoadSegment(prog.Base, prog.Bytes)
	cpu := New(sparc.NewDecoder(), mem)
	cpu.Reset(prog.Base, 0x7ff000)
	return cpu, prog
}

func run(t *testing.T, cpu *CPU) {
	t.Helper()
	if err := cpu.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("program did not halt")
	}
}

const exitSeq = `
	mov 1, %g1
	ta 0
`

func TestArithmetic(t *testing.T) {
	cpu, _ := load(t, `
	mov 6, %l0
	mov 7, %l1
	smul %l0, %l1, %o0
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", cpu.ExitCode)
	}
}

func TestLoop(t *testing.T) {
	// Sum 1..10 with a countdown loop and delay-slot decrement.
	cpu, _ := load(t, `
	mov 10, %l0
	clr %o0
loop:	add %o0, %l0, %o0
	subcc %l0, 1, %l0
	bne loop
	nop
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", cpu.ExitCode)
	}
}

func TestDelaySlotExecutesBeforeTransfer(t *testing.T) {
	cpu, _ := load(t, `
	mov 1, %o0
	ba done
	mov 2, %o0       ! delay slot: executes, o0 = 2
	mov 3, %o0       ! skipped
done:	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 2 {
		t.Errorf("exit = %d, want 2 (delay slot must execute)", cpu.ExitCode)
	}
}

func TestAnnulledBranchTaken(t *testing.T) {
	// bne,a taken: delay slot executes.
	cpu, _ := load(t, `
	clr %o0
	cmp %g0, 1
	bne,a done
	add %o0, 5, %o0   ! executes (branch taken)
	add %o0, 100, %o0 ! skipped
done:	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 5 {
		t.Errorf("exit = %d, want 5", cpu.ExitCode)
	}
}

func TestAnnulledBranchUntaken(t *testing.T) {
	// be,a untaken: delay slot annulled.
	cpu, _ := load(t, `
	clr %o0
	cmp %g0, 1
	be,a away
	add %o0, 5, %o0   ! annulled (branch untaken)
	add %o0, 1, %o0
	mov 1, %g1
	ta 0
away:	mov 99, %o0
	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 1 {
		t.Errorf("exit = %d, want 1 (slot must be annulled)", cpu.ExitCode)
	}
	if cpu.AnnulCount != 1 {
		t.Errorf("annul count = %d, want 1", cpu.AnnulCount)
	}
}

func TestBaAnnulAlwaysSkipsSlot(t *testing.T) {
	cpu, _ := load(t, `
	clr %o0
	ba,a done
	add %o0, 50, %o0  ! always annulled on ba,a
done:	mov 1, %g1
	ta 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 0 {
		t.Errorf("exit = %d, want 0 (ba,a must annul)", cpu.ExitCode)
	}
}

func TestCallAndReturn(t *testing.T) {
	cpu, _ := load(t, `
	call double
	mov 21, %o0      ! delay slot sets the argument
	mov 1, %g1
	ta 0
double:	retl
	add %o0, %o0, %o0 ! delay slot computes the result
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", cpu.ExitCode)
	}
}

func TestRegisterWindows(t *testing.T) {
	cpu, _ := load(t, `
	mov 7, %o0
	call f
	nop
	mov 1, %g1       ! result back in %o0
	ta 0
f:	save %sp, -96, %sp
	add %i0, 1, %i0  ! callee sees arg as %i0
	mov 55, %l3      ! clobber a local in the new window
	ret
	restore %i0, 0, %o0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 8 {
		t.Errorf("exit = %d, want 8", cpu.ExitCode)
	}
}

func TestWindowsPreserveCallerLocals(t *testing.T) {
	cpu, _ := load(t, `
	mov 11, %l3
	call f
	nop
	mov %l3, %o0     ! caller local survives the callee
	mov 1, %g1
	ta 0
f:	save %sp, -96, %sp
	mov 999, %l3
	ret
	restore
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 11 {
		t.Errorf("exit = %d, want 11 (caller %%l3 clobbered)", cpu.ExitCode)
	}
}

func TestMemory(t *testing.T) {
	cpu, _ := load(t, `
	set buf, %l0
	mov 0x12, %l1
	st %l1, [%l0]
	ldub [%l0+3], %o0  ! big-endian: low byte is at offset 3
	mov 1, %g1
	ta 0
	.align 4
buf:	.word 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 0x12 {
		t.Errorf("exit = %#x, want 0x12", cpu.ExitCode)
	}
}

func TestSignedLoads(t *testing.T) {
	cpu, _ := load(t, `
	set buf, %l0
	ldsb [%l0], %o0
	sub %g0, %o0, %o0   ! negate: 0x80 sign-extends to -128
	mov 1, %g1
	ta 0
	.align 4
buf:	.byte 0x80
	.byte 0, 0, 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 128 {
		t.Errorf("exit = %d, want 128", cpu.ExitCode)
	}
}

func TestWriteSyscall(t *testing.T) {
	cpu, _ := load(t, `
	mov 4, %g1
	mov 1, %o0
	set msg, %o1
	mov 5, %o2
	ta 0
	mov 1, %g1
	clr %o0
	ta 0
	.align 4
msg:	.ascii "hello"
`, 0x10000)
	var out bytes.Buffer
	cpu.Stdout = &out
	run(t, cpu)
	if out.String() != "hello" {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestDispatchTable(t *testing.T) {
	// A gcc-style switch: bounds check, table load, indirect jump.
	src := `
	mov 2, %l0        ! case index
	cmp %l0, 3
	bgu default
	sll %l0, 2, %l1
	set table, %l2
	ld [%l2+%l1], %l3
	jmp %l3
	nop
case0:	mov 10, %o0
	ba done
	nop
case1:	mov 20, %o0
	ba done
	nop
case2:	mov 30, %o0
	ba done
	nop
case3:	mov 40, %o0
	ba done
	nop
default: mov 99, %o0
done:	mov 1, %g1
	ta 0
	.align 4
table:	.word case0
	.word case1
	.word case2
	.word case3
`
	cpu, _ := load(t, src, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 30 {
		t.Errorf("exit = %d, want 30", cpu.ExitCode)
	}
}

func TestFloatingPoint(t *testing.T) {
	cpu, _ := load(t, `
	set three, %l0
	ldf [%l0], %f0
	set four, %l0
	ldf [%l0], %f1
	fmuls %f0, %f1, %f2
	fstoi %f2, %f3
	set out, %l0
	stf %f3, [%l0]
	ld [%l0], %o0
	mov 1, %g1
	ta 0
	.align 4
three:	.word 0x40400000   ! 3.0f
four:	.word 0x40800000   ! 4.0f
out:	.word 0
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 12 {
		t.Errorf("exit = %d, want 12", cpu.ExitCode)
	}
}

func TestFloatBranch(t *testing.T) {
	cpu, _ := load(t, `
	set one, %l0
	ldf [%l0], %f0
	set two, %l0
	ldf [%l0], %f1
	fcmps %f0, %f1
	fbl less
	nop
	mov 0, %o0
	ba done
	nop
less:	mov 1, %o0
done:	mov 1, %g1
	ta 0
	.align 4
one:	.word 0x3f800000
two:	.word 0x40000000
`, 0x10000)
	run(t, cpu)
	if cpu.ExitCode != 1 {
		t.Errorf("exit = %d, want 1 (1.0 < 2.0)", cpu.ExitCode)
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	mem := NewMemory()
	mem.Write32(0x1000, 0) // UNIMP
	cpu := New(sparc.NewDecoder(), mem)
	cpu.Reset(0x1000, 0x7ff000)
	if err := cpu.Step(); err == nil {
		t.Fatal("illegal instruction did not fault")
	}
}

func TestMisalignedLoadFaults(t *testing.T) {
	cpu, _ := load(t, `
	set buf, %l0
	ld [%l0+1], %o0
	.align 4
buf:	.word 0
`, 0x10000)
	err := cpu.Run(100)
	if err == nil {
		t.Fatal("misaligned load did not fault")
	}
}

func TestStepLimit(t *testing.T) {
	cpu, _ := load(t, `
self:	ba self
	nop
`, 0x10000)
	if err := cpu.Run(100); err == nil {
		t.Fatal("infinite loop did not hit step limit")
	}
}

func TestInstCountMatchesOnExec(t *testing.T) {
	cpu, _ := load(t, `
	mov 5, %l0
loop:	subcc %l0, 1, %l0
	bne loop
	nop
	mov 1, %g1
	ta 0
`, 0x10000)
	var n uint64
	cpu.OnExec = func(uint32, *machine.Inst) { n++ }
	run(t, cpu)
	if n != cpu.InstCount {
		t.Errorf("OnExec saw %d instructions, InstCount = %d", n, cpu.InstCount)
	}
	// 1 mov + 5*(subcc+bne+nop) - the final nop after the untaken
	// bne still executes + mov + ta: count exactly.
	if cpu.InstCount != 1+5*3+2 {
		t.Errorf("InstCount = %d, want %d", cpu.InstCount, 1+5*3+2)
	}
}
