package sim

import (
	"fmt"
	"strings"
)

// This file exposes the architected state of a CPU and the contents
// of a Memory in comparable form.  The differential-fuzzing oracles
// (internal/fuzz) and the engine-equivalence tests use these to
// require bit-identical results from the interpreter, the
// translation-cache engine, and edited executables.

// ArchState renders every piece of architected state — registers,
// special registers, the floating-point file, pc/npc, the saved
// register-window stack, and halt status — as a deterministic string.
// Two CPUs that executed the same program on equivalent engines must
// produce identical ArchState strings.
func (c *CPU) ArchState() string {
	var b strings.Builder
	for i, v := range c.R {
		fmt.Fprintf(&b, "r%d=%08x ", i, v)
	}
	fmt.Fprintf(&b, "y=%08x psr=%08x fsr=%08x pc=%08x npc=%08x\n", c.Y, c.PSR, c.FSR, c.PC, c.NPC)
	for i, v := range c.F {
		fmt.Fprintf(&b, "f%d=%08x ", i, v)
	}
	fmt.Fprintf(&b, "\nhalted=%v exit=%d insts=%d annuls=%d windows=%d\n",
		c.Halted, c.ExitCode, c.InstCount, c.AnnulCount, len(c.windows))
	for i, w := range c.windows {
		fmt.Fprintf(&b, "w%d: locals=%08x ins=%08x\n", i, w.Locals, w.Ins)
	}
	return b.String()
}

// Diff compares two memories byte-for-byte (absent pages read as
// zero).  It returns the address of the first difference, or ok=true
// when the memories are identical.
func (m *Memory) Diff(o *Memory) (addr uint32, ok bool) {
	keys := map[uint32]bool{}
	for k := range m.pages {
		keys[k] = true
	}
	for k := range o.pages {
		keys[k] = true
	}
	var zero [pageSize]byte
	for k := range keys {
		pa, pb := m.pages[k], o.pages[k]
		if pa == nil {
			pa = &zero
		}
		if pb == nil {
			pb = &zero
		}
		if *pa != *pb {
			for i := range pa {
				if pa[i] != pb[i] {
					return k<<pageShift + uint32(i), false
				}
			}
		}
	}
	return 0, true
}
