// Package sim is a machine-generic emulator driven directly by the
// spawn machine description's RTL semantics: each step decodes a word
// and executes its semantic AST, so the description is the single
// source of truth for both analysis and execution.  The register map,
// instruction stride, delay-slot behaviour, and trap ABI are all data
// read from the description and the arch registry — SPARC, MIPS, and
// Alpha descriptions run on the same substrate.  The emulator models
// delayed control transfers, annulled delay slots, register windows,
// big-endian memory, and a small system-call ABI — everything the
// paper's execution-based experiments (Active Memory cache
// simulation, edited-program validation) need.
package sim

import (
	"errors"
	"fmt"
	"io"

	"eel/internal/machine"
	"eel/internal/rtl"
	"eel/internal/spawn"
	"eel/internal/telemetry"
)

// System-call numbers in the default ABI (SPARC: "ta 0" with the
// number in %g1; other machines name their registers through their
// TrapModel).
const (
	SysExit  = 1 // exit(arg0)
	SysWrite = 4 // write(arg0 fd, arg1 buf, arg2 len) -> ret bytes
)

// Fault describes an execution failure with its faulting address.
type Fault struct {
	PC  uint32
	Err error
}

func (f *Fault) Error() string { return fmt.Sprintf("sim: fault at %#x: %v", f.PC, f.Err) }

func (f *Fault) Unwrap() error { return f.Err }

// Common fault causes.
var (
	ErrIllegalInst  = errors.New("illegal instruction")
	ErrMisaligned   = errors.New("misaligned memory access")
	ErrUnmappedExec = errors.New("execution outside mapped text")
	ErrBadSyscall   = errors.New("unknown system call")
	ErrStepLimit    = errors.New("step limit exceeded")
)

const (
	pageShift = 12
	pageSize  = 1 << pageShift
)

// Memory is a sparse, big-endian, byte-addressed 32-bit memory.
type Memory struct {
	pages map[uint32]*[pageSize]byte

	// watches observe writes into address ranges; the translation
	// cache uses one over the text segment to catch self-modifying
	// edits.
	watches []memWatch
}

type memWatch struct {
	lo, hi uint32
	fn     func(addr, n uint32)
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: map[uint32]*[pageSize]byte{}}
}

// WatchWrites registers fn to be called before every write that
// overlaps [lo, hi).
func (m *Memory) WatchWrites(lo, hi uint32, fn func(addr, n uint32)) {
	m.watches = append(m.watches, memWatch{lo: lo, hi: hi, fn: fn})
}

func (m *Memory) notifyWrite(addr, n uint32) {
	for _, w := range m.watches {
		if addr < w.hi && addr+n > w.lo {
			w.fn(addr, n)
		}
	}
}

func (m *Memory) page(addr uint32, create bool) *[pageSize]byte {
	key := addr >> pageShift
	p := m.pages[key]
	if p == nil && create {
		p = new([pageSize]byte)
		m.pages[key] = p
	}
	return p
}

// ByteAt returns the byte at addr (unmapped memory reads zero).
func (m *Memory) ByteAt(addr uint32) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr%pageSize]
}

// SetByte stores b at addr.
func (m *Memory) SetByte(addr uint32, b byte) {
	if len(m.watches) != 0 {
		m.notifyWrite(addr, 1)
	}
	m.page(addr, true)[addr%pageSize] = b
}

// Read reads width bytes big-endian, zero-extended.
func (m *Memory) Read(addr uint32, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v = v<<8 | uint64(m.ByteAt(addr+uint32(i)))
	}
	return v
}

// Write stores the low width bytes of v big-endian at addr.
func (m *Memory) Write(addr uint32, width int, v uint64) {
	for i := width - 1; i >= 0; i-- {
		m.SetByte(addr+uint32(i), byte(v))
		v >>= 8
	}
}

// Read32 reads a big-endian word.  Aligned reads never cross a page
// and index the page array directly instead of going byte-at-a-time
// through ByteAt.
func (m *Memory) Read32(addr uint32) uint32 {
	if addr&3 == 0 {
		p := m.pages[addr>>pageShift]
		if p == nil {
			return 0
		}
		o := addr & (pageSize - 1)
		return uint32(p[o])<<24 | uint32(p[o+1])<<16 | uint32(p[o+2])<<8 | uint32(p[o+3])
	}
	return uint32(m.Read(addr, 4))
}

// Write32 stores a big-endian word, with the same aligned in-page
// fast path as Read32.
func (m *Memory) Write32(addr uint32, v uint32) {
	if addr&3 == 0 {
		if len(m.watches) != 0 {
			m.notifyWrite(addr, 4)
		}
		p := m.page(addr, true)
		o := addr & (pageSize - 1)
		p[o], p[o+1], p[o+2], p[o+3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
		return
	}
	m.Write(addr, 4, uint64(v))
}

// LoadSegment copies data into memory at addr.
func (m *Memory) LoadSegment(addr uint32, data []byte) {
	for i, b := range data {
		m.SetByte(addr+uint32(i), b)
	}
}

// window is one SPARC register window's saved locals and ins.  It
// aliases the routine tier's representation so the window stack moves
// between engines as a slice header, never element-copied.
type window = rtl.RWindow

// CPU is one SPARC V8 processor.
type CPU struct {
	// R holds the current window's view: 0-7 globals, 8-15 outs,
	// 16-23 locals, 24-31 ins.
	R   [32]uint32
	Y   uint32
	PSR uint32
	FSR uint32
	F   [32]uint32

	PC, NPC uint32

	Mem *Memory

	// Stdout receives SysWrite output; nil discards it.
	Stdout io.Writer

	// Halted is set by SysExit; ExitCode carries its argument.
	Halted   bool
	ExitCode uint32

	// InstCount counts executed (non-annulled) instructions; the
	// Active Memory experiment's "slowdown" is a ratio of these.
	InstCount uint64
	// AnnulCount counts annulled (skipped) delay slots.
	AnnulCount uint64

	// TextStart/TextEnd bound executable memory; a pc outside
	// faults rather than interpreting data (catches editing bugs).
	TextStart, TextEnd uint32

	// OnExec, if set, observes every executed instruction — tests
	// use it to compute ground-truth branch/edge counts.  While set,
	// Run deoptimizes from the translation cache to single-step
	// interpretation so every instruction is observed.
	OnExec func(pc uint32, inst *machine.Inst)

	// NoJIT forces Run to use the single-step AST interpreter
	// instead of the translation-cache engine.
	NoJIT bool

	// NoChain keeps the translation cache but disables block
	// chaining, indirect-jump inline caches, and trace extension:
	// every superblock exit returns to the dispatcher.  Useful for
	// benchmarking the dispatch overhead and for bisecting engines.
	NoChain bool

	// EnableRoutines turns on the routine tier on top of the chained
	// engine: hot routine entries are compiled whole (CFG + liveness
	// feeding rtl.CompileRoutine) on a background goroutine and run
	// with registers and flags resident across block boundaries.
	// Ignored under NoJIT/NoChain, while OnExec observes execution,
	// or while profiling (those paths need per-step visibility).
	EnableRoutines bool
	// RoutineSync compiles routine programs inline on the engine
	// thread instead of the background worker — deterministic
	// promotion for tests and fuzzing.
	RoutineSync bool
	// RoutineHotThreshold overrides the block-enter count that
	// triggers routine compilation; 0 means the default.
	RoutineHotThreshold uint64

	dec *spawn.TableDecoder

	// Description-derived machine shape, bound once at New: the
	// instruction stride, the integer/float register file names, the
	// hardwired-zero index, and the architecture's trap model and
	// tier capabilities.  Everything below is data read from the
	// spawn description or the arch registry — the substrate has no
	// per-machine code paths.
	isize    uint32
	arch     *machine.ArchInfo
	intFile  string
	intCount int
	zeroIdx  int64 // -1 when the machine has no hardwired zero
	fltFile  string

	windows   []window
	annulNext bool

	// transfer state recorded by the RTL environment during one step
	delayedTarget   uint32
	hasDelayed      bool
	immediateTarget uint32
	hasImmediate    bool
	curInst         *machine.Inst

	// env is the reusable rtl.Machine view of this CPU; rtlCtx the
	// reusable scratch state for compiled semantics.
	env    cpuEnv
	rtlCtx rtl.Ctx

	// fetchKey/fetchPage cache the last instruction-fetch page:
	// straight-line fetches hit the same 4 KiB page, so the common
	// case skips the page-map lookup entirely.  Page pointers are
	// stable for the life of a Memory, so the cache never goes stale.
	fetchKey  uint32
	fetchPage *[pageSize]byte

	// tc is the translation-cache engine state (see jit.go).
	tc *transCache

	// rt is the routine-tier state (see routine.go); rtOn caches the
	// per-run gate, and renv is the reusable routine environment.
	// textHash content-addresses [TextStart,TextEnd) for the shared
	// routine-program cache; it is computed lazily at the first
	// routine request (after the write watch exists, so it can never
	// go stale unnoticed) and dropped on text invalidation.
	rt         *routineState
	rtOn       bool
	renv       rtl.REnv
	textHash   uint64
	textHashOK bool

	// prof, when non-nil, accumulates per-pc hotness and branch/trap
	// counters (see profile.go); both engines feed it.
	prof *Profile
}

// Decoder returns the CPU's instruction decoder (e.g. to bridge its
// interning statistics into a telemetry registry).
func (c *CPU) Decoder() *spawn.TableDecoder { return c.dec }

// New returns a CPU for dec's machine.  The register map, instruction
// stride, and trap ABI are derived from the spawn description and the
// arch registry (machine.RegisterArch), so any registered description
// runs on the same substrate.  New panics — loudly, at load time —
// when the description's shape is outside what the substrate
// supports, rather than mis-executing silently mid-block.
func New(dec *spawn.TableDecoder, mem *Memory) *CPU {
	c := &CPU{Mem: mem, dec: dec}
	c.bindDesc()
	c.env.c = c
	return c
}

// bindDesc derives the CPU's machine shape from the spawn description
// and arch registry.  Every constraint violation is a panic: these are
// description bugs, and the one place to catch them is load, not the
// middle of a translated block.
func (c *CPU) bindDesc() {
	d := c.dec.Desc()
	ws := c.dec.WordSize()
	if ws != 4 {
		panic(fmt.Sprintf("sim: %s has %d-byte instruction words; the execution substrate supports only fixed 4-byte instructions", c.dec.Name(), ws))
	}
	c.isize = uint32(ws)
	c.zeroIdx = -1
	for i := range d.Files {
		f := &d.Files[i]
		if f.Count <= 0 {
			continue // scalar registers such as pc
		}
		switch f.Typ {
		case "integer":
			if c.intFile != "" {
				panic(fmt.Sprintf("sim: %s declares two integer register files (%s, %s)", c.dec.Name(), c.intFile, f.Name))
			}
			if f.Count > 32+numExtendedSlots {
				panic(fmt.Sprintf("sim: %s integer file %s has %d registers; the substrate holds at most %d", c.dec.Name(), f.Name, f.Count, 32+numExtendedSlots))
			}
			c.intFile, c.intCount = f.Name, f.Count
		case "float":
			if f.Count > 32 {
				panic(fmt.Sprintf("sim: %s float file %s has %d registers; the substrate holds at most 32", c.dec.Name(), f.Name, f.Count))
			}
			c.fltFile = f.Name
		}
	}
	if c.intFile == "" {
		panic(fmt.Sprintf("sim: %s declares no integer register file", c.dec.Name()))
	}
	if d.HasZero {
		if d.ZeroFile != c.intFile {
			panic(fmt.Sprintf("sim: %s hardwires zero in non-integer file %s", c.dec.Name(), d.ZeroFile))
		}
		c.zeroIdx = d.ZeroIndex
	}
	arch, ok := machine.ArchByName(c.dec.Name())
	if !ok {
		panic(fmt.Sprintf("sim: no architecture registered for %q (import its package or call machine.RegisterArch)", c.dec.Name()))
	}
	c.arch = arch
}

// numExtendedSlots is how many integer-file indices at and above 32
// the CPU can hold, mapped in order onto the named special registers
// Y, PSR, FSR.  SPARC uses all three (Y/PSR/FSR aliases); MIPS lands
// HI/LO on the first two; Alpha uses none.
const numExtendedSlots = 3

// Reset prepares the CPU to run from entry with the given stack
// pointer.  Cached translation blocks are discarded (a reused CPU may
// be resuming on freshly loaded or edited text).
func (c *CPU) Reset(entry, sp uint32) {
	c.R = [32]uint32{}
	c.R[14] = sp
	c.Y, c.PSR, c.FSR = 0, 0, 0
	c.F = [32]uint32{}
	c.PC, c.NPC = entry, entry+c.isize
	c.Halted = false
	c.ExitCode = 0
	c.InstCount = 0
	c.AnnulCount = 0
	c.windows = c.windows[:0]
	c.annulNext = false
	c.fetchPage = nil
	c.InvalidateText()
}

// fetch reads the instruction word at pc through the last-page cache.
func (c *CPU) fetch(pc uint32) uint32 {
	key := pc >> pageShift
	p := c.fetchPage
	if p == nil || key != c.fetchKey {
		p = c.Mem.page(pc, false)
		if p == nil {
			return 0
		}
		c.fetchKey, c.fetchPage = key, p
	}
	o := pc & (pageSize - 1)
	return uint32(p[o])<<24 | uint32(p[o+1])<<16 | uint32(p[o+2])<<8 | uint32(p[o+3])
}

// Step executes one instruction.  It returns nil when the program
// halts cleanly.
func (c *CPU) Step() error {
	if c.Halted {
		return nil
	}
	if c.TextEnd > c.TextStart && (c.PC < c.TextStart || c.PC >= c.TextEnd) {
		return &Fault{c.PC, ErrUnmappedExec}
	}
	if c.PC%c.isize != 0 {
		return &Fault{c.PC, ErrMisaligned}
	}
	word := c.fetch(c.PC)
	inst := c.dec.Decode(word)
	if !inst.Valid() {
		return &Fault{c.PC, fmt.Errorf("%w: %#08x", ErrIllegalInst, word)}
	}
	sem, ok := inst.Sem().(*spawn.InstSem)
	if !ok {
		return &Fault{c.PC, fmt.Errorf("instruction %s lacks semantics", inst.Name())}
	}
	c.curInst = inst
	c.hasDelayed, c.hasImmediate = false, false
	annulBefore := c.annulNext

	if c.OnExec != nil {
		c.OnExec(c.PC, inst)
	}
	if c.env.c == nil {
		c.env.c = c
	}
	if err := rtl.Exec(sem.Def.Sem, &c.env); err != nil {
		return &Fault{c.PC, err}
	}
	c.InstCount++
	if c.prof != nil {
		c.prof.record(c.PC, inst, c.hasImmediate || c.hasDelayed)
	}
	if c.Halted {
		return nil
	}
	c.finishStep(annulBefore)
	return nil
}

// finishStep advances the delayed-control-transfer pipeline after a
// successful semantic execution; annulBefore is annulNext as observed
// before the instruction ran.  Step and the translation-cache engine
// share it so architected behaviour is identical in both modes.
func (c *CPU) finishStep(annulBefore bool) {
	newPC := c.NPC
	newNPC := c.NPC + c.isize
	if c.hasImmediate {
		newPC = c.immediateTarget
		newNPC = newPC + c.isize
	} else if c.hasDelayed {
		newNPC = c.delayedTarget
	}
	c.PC, c.NPC = newPC, newNPC
	if c.annulNext != annulBefore { // this instruction annulled its slot
		c.annulNext = false
		c.AnnulCount++
		c.PC = c.NPC
		c.NPC += c.isize
	}
}

// Counters is a snapshot of the CPU's activity counters: architected
// execution counts plus translation-cache activity.
type Counters struct {
	Insts   uint64 // executed (non-annulled) instructions
	Annuls  uint64 // annulled (skipped) delay slots
	Builds  uint64 // superblocks translated
	Flushes uint64 // whole-cache invalidations
	Deopts  uint64 // interpreted steps taken because the pc had no translation

	ChainHits   uint64 // block transitions served by a direct chain link
	ChainMisses uint64 // static exits that had to re-probe the cache
	ICHits      uint64 // indirect exits served by the inline cache
	ICMisses    uint64 // indirect exits that had to re-probe the cache
	VictimHits  uint64 // conflict-evicted blocks promoted back instead of rebuilt

	Traces        uint64 // traces built from hot block heads
	TracesRetired uint64 // traces discarded by text invalidation

	RoutinesCompiled uint64 // routine programs installed by the routine tier
	TierPromotions   uint64 // routine compile requests issued by heat
	RoutineDeopts    uint64 // routine-tier deopts back to chained (self-modifying code)
}

// Counters returns the current counter snapshot.
func (c *CPU) Counters() Counters {
	k := Counters{Insts: c.InstCount, Annuls: c.AnnulCount}
	if c.tc != nil {
		k.Builds, k.Flushes, k.Deopts = c.tc.builds, c.tc.flushes, c.tc.deopts
		k.ChainHits, k.ChainMisses = c.tc.chainHits, c.tc.chainMisses
		k.ICHits, k.ICMisses = c.tc.icHits, c.tc.icMisses
		k.VictimHits = c.tc.victimHits
		k.Traces, k.TracesRetired = c.tc.traces, c.tc.tracesRetired
	}
	if c.rt != nil {
		k.RoutinesCompiled = c.rt.compiled
		k.TierPromotions = c.rt.promotions
		k.RoutineDeopts = c.rt.deopts
	}
	return k
}

// ResetCounters zeroes the translation-cache activity counters —
// builds, flushes, deopts, chaining and trace statistics — without
// discarding cached translations.  A reused CPU otherwise accumulates
// them across Run invocations (Reset zeroes only the architected
// InstCount/AnnulCount state), which made per-run JIT accounting
// wrong.
func (c *CPU) ResetCounters() {
	if c.tc != nil {
		c.tc.builds, c.tc.flushes, c.tc.deopts = 0, 0, 0
		c.tc.chainHits, c.tc.chainMisses = 0, 0
		c.tc.icHits, c.tc.icMisses = 0, 0
		c.tc.victimHits = 0
		c.tc.traces, c.tc.tracesRetired = 0, 0
	}
	if c.rt != nil {
		c.rt.compiled, c.rt.promotions, c.rt.deopts = 0, 0, 0
	}
}

// Run executes until halt or maxSteps instructions.  Unless NoJIT is
// set (or OnExec demands single-step observation), execution goes
// through the translation cache: straight-line runs of text compile
// once into superblocks that execute without per-step decode or AST
// dispatch, falling back to Step for anything unusual.
//
// When process-wide telemetry is enabled, the run is traced as a
// "sim.Run" span and its counter deltas are added to the registry
// under "sim.*" names; when disabled, Run pays two atomic loads.
func (c *CPU) Run(maxSteps uint64) error {
	tracer := telemetry.ActiveTracer()
	reg := telemetry.Default()
	var before Counters
	if tracer != nil || reg != nil {
		before = c.Counters()
	}
	span := tracer.Begin("sim.Run", "sim")

	err := c.run(maxSteps)

	if tracer != nil || reg != nil {
		after := c.Counters()
		d := Counters{
			Insts:       after.Insts - before.Insts,
			Annuls:      after.Annuls - before.Annuls,
			Builds:      after.Builds - before.Builds,
			Flushes:     after.Flushes - before.Flushes,
			Deopts:      after.Deopts - before.Deopts,
			ChainHits:   after.ChainHits - before.ChainHits,
			ChainMisses: after.ChainMisses - before.ChainMisses,
			ICHits:      after.ICHits - before.ICHits,
			ICMisses:    after.ICMisses - before.ICMisses,
			VictimHits:  after.VictimHits - before.VictimHits,
			Traces:      after.Traces - before.Traces,
			TracesRetired: after.TracesRetired -
				before.TracesRetired,
			RoutinesCompiled: after.RoutinesCompiled - before.RoutinesCompiled,
			TierPromotions:   after.TierPromotions - before.TierPromotions,
			RoutineDeopts:    after.RoutineDeopts - before.RoutineDeopts,
		}
		span.Arg("insts", d.Insts)
		span.Arg("jit_builds", d.Builds)
		span.Arg("jit_deopts", d.Deopts)
		span.Arg("jit_chain_hits", d.ChainHits)
		span.Arg("jit_traces", d.Traces)
		if reg != nil {
			reg.Counter("sim.insts").Add(d.Insts)
			reg.Counter("sim.annuls").Add(d.Annuls)
			reg.Counter("sim.jit.builds").Add(d.Builds)
			reg.Counter("sim.jit.flushes").Add(d.Flushes)
			reg.Counter("sim.jit.deopts").Add(d.Deopts)
			reg.Counter("sim.jit.chain_hits").Add(d.ChainHits)
			reg.Counter("sim.jit.chain_misses").Add(d.ChainMisses)
			reg.Counter("sim.jit.ic_hits").Add(d.ICHits)
			reg.Counter("sim.jit.ic_misses").Add(d.ICMisses)
			reg.Counter("sim.jit.victim_hits").Add(d.VictimHits)
			reg.Counter("sim.jit.traces").Add(d.Traces)
			reg.Counter("sim.jit.traces_retired").Add(d.TracesRetired)
			reg.Counter("sim.jit.routines_compiled").Add(d.RoutinesCompiled)
			reg.Counter("sim.jit.tier_promotions").Add(d.TierPromotions)
			reg.Counter("sim.jit.routine_deopts").Add(d.RoutineDeopts)
			reg.Gauge("sim.jit.routine_queue").Set(int64(rtQueueDepthNow()))
		}
	}
	span.End()
	return err
}

// run is Run's engine loop, free of telemetry bookkeeping.
func (c *CPU) run(maxSteps uint64) error {
	useJIT := !c.NoJIT && c.TextEnd > c.TextStart
	c.rtOn = useJIT && !c.NoChain && c.EnableRoutines && c.prof == nil &&
		c.arch.RoutineTier
	if c.rtOn {
		c.ensureRT()
		c.rtNoteCandidate(c.PC) // the run's entry is a routine entry
	}
	for !c.Halted {
		if c.InstCount >= maxSteps {
			return &Fault{c.PC, ErrStepLimit}
		}
		if !useJIT || c.OnExec != nil {
			if err := c.Step(); err != nil {
				return err
			}
			continue
		}
		if c.rtOn {
			c.rtDrain() // install background results between steps
			if c.NPC == c.PC+c.isize && c.rt.candidates[c.PC] {
				if _, in := c.rt.heads[c.PC]; !in {
					// A candidate entry arriving at the dispatcher heats
					// up here, so promotion needs no throwaway
					// superblock translation first.  (>= because an
					// async request can be dropped on a full queue.)
					c.rt.enters[c.PC]++
					if c.rt.enters[c.PC] >= c.rtThreshold() {
						c.rtRequest(c.PC)
					}
				}
			}
			if rh, ok := c.rt.heads[c.PC]; ok && c.NPC == c.PC+c.isize {
				executed, err := c.runRoutine(rh, maxSteps)
				if err != nil {
					return err
				}
				if executed {
					continue
				}
				// Budget refusal before any work: fall through to the
				// per-instruction tiers, which hit the limit exactly.
			}
		}
		b := c.block(c.PC)
		if len(b.insts) == 0 {
			// Unbuildable here (faulting pc, rare op): one interpreted
			// step surfaces the identical behaviour or fault — a
			// deoptimization, counted as such.
			c.tc.deopts++
			if err := c.Step(); err != nil {
				return err
			}
			continue
		}
		if c.prof != nil {
			c.prof.blockEnters[b.pc]++
		}
		var err error
		if c.NoChain {
			err = c.runBlock(b, maxSteps)
		} else {
			err = c.runChained(b, maxSteps)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// runChained executes b and keeps control inside translated code
// across block boundaries: each exit consults the per-site chain
// slot (a direct link for static exits, a monomorphic inline cache
// for indirect ones) and transfers straight to the cached successor
// when its anchor and generation still match.  Misses fall back to
// the two-level cache probe; anything the cache cannot serve returns
// to the dispatcher.  Hot anchors are re-translated into traces on
// entry.  Every loop iteration enters a block exactly at its anchor
// (the dispatcher, a chain hit, and a resolved miss all guarantee
// c.PC == b.pc), which is what makes trace entry sound.
func (c *CPU) runChained(b *tblock, maxSteps uint64) error {
	gen := c.tc.gen
	for {
		b.enters++
		if c.rtOn && b.enters == c.rtThreshold() && c.rt.candidates[b.pc] {
			c.rtRequest(b.pc)
			if _, ok := c.rt.heads[b.pc]; ok {
				return nil // synchronous install: re-enter via the dispatcher
			}
		}
		if !b.trace && b.enters == traceHotThreshold {
			if t := c.buildTrace(b); t != nil {
				b = t
			} else {
				// No profitable extension, but the block is hot: still
				// re-translate it in place onto the direct tier.
				c.promote(b)
			}
		}
		var last int
		var stop bool
		var err error
		if b.trace {
			last, stop, err = c.execTrace(b, maxSteps, gen)
		} else {
			last, stop, err = c.execLinear(b, maxSteps, gen)
		}
		if err != nil || stop {
			return err
		}
		if last < 0 {
			return nil // nothing executed; let the dispatcher resolve
		}
		// Mid-run engine changes (an OnExec hook installed by a
		// syscall callback, say) deopt at block granularity, exactly
		// as the dispatcher loop would.
		if c.OnExec != nil || c.NoJIT || c.NoChain {
			return nil
		}
		s := &b.exits[last]
		if s.blk != nil && s.pc == c.PC && s.blk.gen == gen {
			if s.count != ^uint32(0) {
				s.count++
			}
			if s.indirect {
				c.tc.icHits++
			} else {
				c.tc.chainHits++
			}
			b = s.blk
		} else {
			nb := c.chainTarget(s, c.PC)
			if nb == nil {
				return nil
			}
			b = nb
		}
		if c.rtOn {
			// Promotion happens between steps: a finished background
			// compile or a transition onto an installed routine head
			// hands control to the dispatcher at a block boundary.
			if c.rt.mb.has.Load() {
				return nil
			}
			if _, ok := c.rt.heads[c.PC]; ok && c.NPC == c.PC+c.isize {
				return nil
			}
		}
		if c.prof != nil {
			c.prof.blockEnters[b.pc]++
		}
	}
}

// chainTarget resolves a chain/IC miss: if the next pc is translatable
// the successor is installed in the exit slot (retargeting the slot —
// a megamorphic site simply keeps retargeting) and execution chains
// on; otherwise the dispatcher takes over.
func (c *CPU) chainTarget(s *exitSlot, pc uint32) *tblock {
	if s.indirect {
		c.tc.icMisses++
	} else {
		c.tc.chainMisses++
	}
	if pc%c.isize != 0 || pc < c.TextStart || pc >= c.TextEnd {
		return nil
	}
	nb := c.block(pc)
	if len(nb.insts) == 0 {
		return nil
	}
	s.blk, s.pc, s.count = nb, pc, 1
	return nb
}

// cpuEnv adapts CPU to rtl.Machine.  It is a type alias-style view so
// the evaluator can call back without allocation.
type cpuEnv struct{ c *CPU }

func (e *cpuEnv) Field(name string) (int64, bool) {
	v, ok := e.c.curInst.Field(name)
	return int64(v), ok
}

func (e *cpuEnv) FieldWidth(name string) (int, bool) {
	f, ok := e.c.dec.Desc().Field(name)
	if !ok {
		return 0, false
	}
	return f.Width(), true
}

func (e *cpuEnv) RegAlias(name string) (string, int64, bool) {
	a, ok := e.c.dec.Desc().AliasFor(name)
	if !ok {
		return "", 0, false
	}
	return a.File, a.Index, true
}

func (e *cpuEnv) IsRegFile(name string) bool {
	rf, ok := e.c.dec.Desc().File(name)
	return ok && rf.Count > 0
}

// ReadReg and WriteReg map description register references onto the
// CPU's architected state.  The file names, the hardwired-zero index,
// and the file sizes come from the spawn description at New; integer
// indices at and above 32 occupy the extended slots (Y, PSR, FSR in
// order), which is where SPARC's aliases and MIPS's HI/LO live.
func (e *cpuEnv) ReadReg(file string, idx int64) (uint64, error) {
	c := e.c
	switch file {
	case c.intFile:
		switch {
		case idx == c.zeroIdx:
			return 0, nil
		case idx >= 0 && idx < 32 && idx < int64(c.intCount):
			return uint64(c.R[idx]), nil
		case idx == 32 && c.intCount > 32:
			return uint64(c.Y), nil
		case idx == 33 && c.intCount > 33:
			return uint64(c.PSR), nil
		case idx == 34 && c.intCount > 34:
			return uint64(c.FSR), nil
		}
	case c.fltFile:
		if idx >= 0 && idx < 32 {
			return uint64(c.F[idx]), nil
		}
	}
	return 0, fmt.Errorf("sim: read of unknown register %s[%d]", file, idx)
}

func (e *cpuEnv) WriteReg(file string, idx int64, v uint64) error {
	c := e.c
	switch file {
	case c.intFile:
		switch {
		case idx == c.zeroIdx:
			return nil // hardwired zero
		case idx >= 0 && idx < 32 && idx < int64(c.intCount):
			c.R[idx] = uint32(v)
			return nil
		case idx == 32 && c.intCount > 32:
			c.Y = uint32(v)
			return nil
		case idx == 33 && c.intCount > 33:
			c.PSR = uint32(v)
			return nil
		case idx == 34 && c.intCount > 34:
			c.FSR = uint32(v)
			return nil
		}
	case c.fltFile:
		if idx >= 0 && idx < 32 {
			c.F[idx] = uint32(v)
			return nil
		}
	}
	return fmt.Errorf("sim: write of unknown register %s[%d]", file, idx)
}

func (e *cpuEnv) ReadMem(addr uint64, width int) (uint64, error) {
	a := uint32(addr)
	if width == 4 && a&3 == 0 {
		return uint64(e.c.Mem.Read32(a)), nil
	}
	if width > 1 && a%uint32(width) != 0 {
		return 0, fmt.Errorf("%w: read%d at %#x", ErrMisaligned, width, a)
	}
	return e.c.Mem.Read(a, width), nil
}

func (e *cpuEnv) WriteMem(addr uint64, width int, v uint64) error {
	a := uint32(addr)
	if width == 4 && a&3 == 0 {
		e.c.Mem.Write32(a, uint32(v))
		return nil
	}
	if width > 1 && a%uint32(width) != 0 {
		return fmt.Errorf("%w: write%d at %#x", ErrMisaligned, width, a)
	}
	e.c.Mem.Write(a, width, v)
	return nil
}

func (e *cpuEnv) PC() uint64 { return uint64(e.c.PC) }

func (e *cpuEnv) SetPC(v uint64, delayed bool) {
	if delayed {
		e.c.delayedTarget = uint32(v)
		e.c.hasDelayed = true
	} else {
		e.c.immediateTarget = uint32(v)
		e.c.hasImmediate = true
	}
}

func (e *cpuEnv) Annul() { e.c.annulNext = true }

// Trap implements the system-call ABI described by the architecture's
// TrapModel (SPARC: "ta 0" with the number in %g1 and arguments in
// %o0..%o2; MIPS: "syscall" with $v0/$a0..; Alpha: "call_pal callsys"
// with $v0/$a0..).
func (e *cpuEnv) Trap(code uint64) error {
	t := &e.c.arch.Trap
	if code != t.Code {
		return fmt.Errorf("sim: unhandled trap %d", code)
	}
	switch e.c.R[t.NumReg] {
	case t.SysExit:
		e.c.Halted = true
		e.c.ExitCode = e.c.R[t.Args[0]]
		return nil
	case t.SysWrite:
		buf := e.c.R[t.Args[1]]
		n := e.c.R[t.Args[2]]
		if e.c.Stdout != nil {
			data := make([]byte, n)
			for i := uint32(0); i < n; i++ {
				data[i] = e.c.Mem.ByteAt(buf + i)
			}
			if _, err := e.c.Stdout.Write(data); err != nil {
				return fmt.Errorf("sim: write syscall: %w", err)
			}
		}
		e.c.R[t.Ret] = n
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadSyscall, e.c.R[t.NumReg])
	}
}

// RTrap is the routine tier's trap bridge: behaviour and error
// strings identical to Trap, but the syscall registers are read from
// (and results written to) the routine environment, where the
// register file lives while a routine program runs.
func (e *cpuEnv) RTrap(re *rtl.REnv, code uint64) error {
	t := &e.c.arch.Trap
	if code != t.Code {
		return fmt.Errorf("sim: unhandled trap %d", code)
	}
	switch re.R[t.NumReg] {
	case t.SysExit:
		re.Halted = true
		re.ExitCode = re.R[t.Args[0]]
		return nil
	case t.SysWrite:
		buf := re.R[t.Args[1]]
		n := re.R[t.Args[2]]
		if e.c.Stdout != nil {
			data := make([]byte, n)
			for i := uint32(0); i < n; i++ {
				data[i] = e.c.Mem.ByteAt(buf + i)
			}
			if _, err := e.c.Stdout.Write(data); err != nil {
				return fmt.Errorf("sim: write syscall: %w", err)
			}
		}
		re.R[t.Ret] = n
		return nil
	default:
		return fmt.Errorf("%w: %d", ErrBadSyscall, re.R[t.NumReg])
	}
}

// Special implements SPARC register windows.  winsave computes the
// new stack pointer in the old window, shifts the window (callee's
// ins are the caller's outs), and writes rd in the new window;
// winrestore reverses it.
func (e *cpuEnv) Special(name string, args []uint64) error {
	if len(args) != 2 {
		return fmt.Errorf("sim: %s wants 2 arguments", name)
	}
	v := uint32(args[0])
	rd := int(args[1])
	switch name {
	case "winsave":
		var w window
		copy(w.Locals[:], e.c.R[16:24])
		copy(w.Ins[:], e.c.R[24:32])
		e.c.windows = append(e.c.windows, w)
		copy(e.c.R[24:32], e.c.R[8:16]) // new ins = old outs
		for i := 8; i < 24; i++ {
			e.c.R[i] = 0 // fresh outs and locals
		}
	case "winrestore":
		copy(e.c.R[8:16], e.c.R[24:32]) // new outs = old ins
		if n := len(e.c.windows); n > 0 {
			w := e.c.windows[n-1]
			e.c.windows = e.c.windows[:n-1]
			copy(e.c.R[16:24], w.Locals[:])
			copy(e.c.R[24:32], w.Ins[:])
		} else {
			for i := 16; i < 32; i++ {
				e.c.R[i] = 0
			}
		}
	default:
		return fmt.Errorf("sim: unknown special %q", name)
	}
	if rd != 0 && rd < 32 {
		e.c.R[rd] = v
	}
	return nil
}
