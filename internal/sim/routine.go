// The routine tier: the emulator's third execution engine.  When a
// chained block stays hot and its anchor is a known routine entry
// (a static call target, the initial pc, or a pc the tier itself
// exited to), the routine's whole extent is compiled by
// rtl.CompileRoutine — CFG and liveness from the paper's analyses
// feeding code generation — into a flat block program in which the
// register file and condition codes live in an rtl.REnv across block
// boundaries, spilled back to the CPU only at routine exits, faults,
// traps, and deopt points.
//
// Compilation runs on a background goroutine so the running engine
// never stalls: the chained tier keeps executing, finished programs
// land in a mailbox, and the dispatcher installs them between blocks
// (never mid-step).  Installed programs are validated against the
// write-watch generation counter; a self-modifying store inside a
// routine deopts back to the chained tier with exact architected
// state (the store retires, nothing after it runs).
//
// Programs are content-addressed — keyed by (entry, length,
// fnv64a(text)) in a process-wide cache — so every CPU executing the
// same routine shares one compilation, and a Reset onto the same
// image re-installs instead of re-compiling.
package sim

import (
	"sync"
	"sync/atomic"

	"eel/internal/cfg"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/obs"
	"eel/internal/rtl"
	"eel/internal/spawn"
)

const (
	// rtDefaultHotThreshold is the block-enter count that promotes a
	// candidate routine entry to background compilation.
	rtDefaultHotThreshold = 32
	// rtMaxExtent bounds the forward extent scan, in instructions.
	rtMaxExtent = 2048
	// rtMaxCandidates bounds the discovered-entry set.
	rtMaxCandidates = 1024
	// rtQueueDepth is the background compile queue capacity; requests
	// beyond it are dropped (the entry stays a candidate and can be
	// re-requested after an invalidation).
	rtQueueDepth = 64
)

// rhead is one enterable pc of an installed routine program.
type rhead struct {
	prog *rtl.RoutineProg
	idx  int32
}

// rtMailbox receives finished compilations from the background
// worker.  has is the engine's cheap "anything to install?" probe,
// checked at block transitions.
type rtMailbox struct {
	mu   sync.Mutex
	jobs []*rtJob
	has  atomic.Bool
}

func (mb *rtMailbox) deliver(job *rtJob) {
	mb.mu.Lock()
	mb.jobs = append(mb.jobs, job)
	mb.mu.Unlock()
	mb.has.Store(true)
}

// rtJob is one compile request: a private copy of the routine's text
// (the worker must not race engine-side memory writes) plus the
// generation it was snapshotted under.
type rtJob struct {
	dec      *spawn.TableDecoder
	text     []byte
	textAddr uint32
	entry    uint32
	gen      uint64
	key      rtCacheKey
	mb       *rtMailbox
	prog     *rtl.RoutineProg // result; nil = not compilable
}

// rtCacheKey content-addresses a routine compilation by the image's
// whole-text hash plus the entry pc.  Keying on the whole text (hashed
// once per image, see rtTextHash) instead of the routine's own bytes
// lets a repeat run of the same image skip the extent scan entirely —
// the scan decodes up to rtMaxExtent instructions and dominated
// promotion cost before results were reusable.
type rtCacheKey struct {
	textStart, textEnd uint32
	hash               uint64
	entry              uint32
}

type rtCacheEnt struct{ prog *rtl.RoutineProg }

// rtProgCache shares compiled routine programs (including negative
// results) process-wide; programs are immutable after compilation.
var rtProgCache sync.Map // rtCacheKey -> *rtCacheEnt

// routineState is the per-CPU routine-tier state.
type routineState struct {
	// heads indexes every enterable block base of every installed
	// routine program.
	heads map[uint32]rhead
	// candidates are pcs believed to be routine entries: static call
	// targets seen during block translation, the run's initial pc,
	// and pcs the routine tier exited to.
	candidates map[uint32]bool
	// enters counts dispatcher arrivals at candidate entries, so a hot
	// candidate promotes straight from the dispatcher without first
	// paying a superblock translation it would immediately abandon.
	enters map[uint32]uint64
	// pending marks entries with an in-flight compile request.
	pending map[uint32]bool
	mb      *rtMailbox

	compiled   uint64 // routine programs installed
	promotions uint64 // compile requests issued
	deopts     uint64 // StopGen exits back to the chained tier
}

// ensureTC lazily creates the translation cache and its write watch;
// extracted from block() so the routine tier can pin the generation
// counter's address before the first block is built.
func (c *CPU) ensureTC() {
	if c.tc == nil {
		c.tc = &transCache{}
		// Self-modifying edits must evict stale translations.
		c.Mem.WatchWrites(c.TextStart, c.TextEnd, func(addr, n uint32) { c.InvalidateText() })
	}
}

func (c *CPU) ensureRT() {
	c.ensureTC()
	if c.rt == nil {
		c.rt = &routineState{
			heads:      make(map[uint32]rhead),
			candidates: make(map[uint32]bool),
			enters:     make(map[uint32]uint64),
			pending:    make(map[uint32]bool),
			mb:         &rtMailbox{},
		}
	}
}

func (c *CPU) rtThreshold() uint64 {
	if c.RoutineHotThreshold != 0 {
		return c.RoutineHotThreshold
	}
	return rtDefaultHotThreshold
}

// rtNoteCandidate records pc as a believed routine entry.
func (c *CPU) rtNoteCandidate(pc uint32) {
	if pc&3 != 0 || pc < c.TextStart || pc >= c.TextEnd {
		return
	}
	if len(c.rt.candidates) < rtMaxCandidates {
		c.rt.candidates[pc] = true
	}
}

// fnv64a is the FNV-1a content hash used by the routine cache key.
func fnv64a(p []byte) uint64 { return fnvAdd(0xcbf29ce484222325, p) }

func fnvAdd(h uint64, p []byte) uint64 {
	for _, b := range p {
		h = (h ^ uint64(b)) * 0x100000001b3
	}
	return h
}

// rtTextHash returns the content hash of [TextStart,TextEnd),
// computed page-at-a-time and cached on the CPU.  The cached value is
// dropped by InvalidateText, and the write watch (installed by
// ensureTC before any routine request) reports every text write, so
// the hash cannot go stale unnoticed.
func (c *CPU) rtTextHash() uint64 {
	if c.textHashOK {
		return c.textHash
	}
	h := uint64(0xcbf29ce484222325)
	for a := c.TextStart; a < c.TextEnd; {
		base := a &^ (pageSize - 1)
		end := base + pageSize
		if end > c.TextEnd || end < base { // clamp; guard address wrap
			end = c.TextEnd
		}
		if p := c.Mem.page(a, false); p != nil {
			h = fnvAdd(h, p[a-base:end-base])
		} else {
			for i := a; i < end; i++ { // unmapped reads as zero
				h = (h ^ 0) * 0x100000001b3
			}
		}
		a = end
	}
	c.textHash, c.textHashOK = h, true
	return h
}

// rtExtent scans forward from entry for the routine's textual extent:
// the smallest contiguous range that contains every forward branch
// target and ends just past an unconditional transfer (and its delay
// slot).  Calls do not end the extent — control returns after them.
func (c *CPU) rtExtent(entry uint32) (end uint32, ok bool) {
	maxTarget := entry
	for pc := entry; pc < c.TextEnd && (pc-entry)>>2 < rtMaxExtent; pc += 4 {
		inst := c.dec.Decode(c.Mem.Read32(pc))
		if !inst.Valid() {
			if pc > maxTarget {
				return pc, true // ran into data past every pending target
			}
			return 0, false
		}
		if t, tok := inst.StaticTarget(pc); tok && inst.Category() != machine.CatCallDirect {
			if t > maxTarget && t < c.TextEnd {
				maxTarget = t
			}
		}
		if uncondTransfer(inst) &&
			inst.Category() != machine.CatCallDirect &&
			inst.Category() != machine.CatCallIndirect &&
			pc >= maxTarget {
			end = pc + 8 // transfer + delay slot
			if end > c.TextEnd {
				end = c.TextEnd
			}
			return end, true
		}
	}
	return 0, false
}

// rtCompileJob resolves a job through the shared program cache,
// compiling on a miss.  Negative results are cached too.
func rtCompileJob(job *rtJob) *rtl.RoutineProg {
	if ent, ok := rtProgCache.Load(job.key); ok {
		return ent.(*rtCacheEnt).prog
	}
	prog := rtCompileText(job.dec, job.text, job.textAddr, job.entry)
	rtProgCache.Store(job.key, &rtCacheEnt{prog})
	return prog
}

func rtCompileText(dec *spawn.TableDecoder, text []byte, textAddr, entry uint32) *rtl.RoutineProg {
	end := textAddr + uint32(len(text))
	g, err := cfg.Build(dec, text, textAddr, textAddr, end, []uint32{entry})
	if err != nil {
		return nil
	}
	lv := dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	rp, err := rtl.CompileRoutine(g, lv, entry)
	if err != nil {
		return nil
	}
	return rp
}

// The background compiler: one process-wide worker goroutine and a
// bounded queue.  Jobs carry their own text copy and mailbox, so one
// worker serves every CPU.
var (
	rtWorkerOnce sync.Once
	rtWorkQueue  chan *rtJob
)

func rtWorkerStart() {
	rtWorkQueue = make(chan *rtJob, rtQueueDepth)
	go func() {
		for job := range rtWorkQueue {
			job.prog = rtCompileJob(job)
			job.mb.deliver(job)
		}
	}()
}

// rtQueueDepthNow reports the background queue's current depth for
// the telemetry gauge.
func rtQueueDepthNow() int { return len(rtWorkQueue) }

// rtRequest issues a compile request for the routine entered at
// entry.  Synchronous mode (tests, fuzzing) compiles and installs
// inline; otherwise the job goes to the background worker and the
// engine keeps running chained code until the mailbox delivers.
func (c *CPU) rtRequest(entry uint32) {
	if c.rt.pending[entry] {
		return
	}
	c.rt.promotions++
	obs.Record(obs.EvTierPromote, uint64(entry), c.rt.enters[entry])
	key := rtCacheKey{textStart: c.TextStart, textEnd: c.TextEnd, hash: c.rtTextHash(), entry: entry}
	if ent, ok := rtProgCache.Load(key); ok {
		// Same image, same entry: install the shared program (or the
		// cached negative result) without scanning or compiling.
		c.rtInstall(&rtJob{entry: entry, gen: c.tc.gen, prog: ent.(*rtCacheEnt).prog})
		return
	}
	end, ok := c.rtExtent(entry)
	if !ok || end <= entry {
		rtProgCache.Store(key, &rtCacheEnt{}) // negative: no routine extent here
		delete(c.rt.candidates, entry)
		return
	}
	text := make([]byte, end-entry)
	for i := range text {
		text[i] = c.Mem.ByteAt(entry + uint32(i))
	}
	job := &rtJob{
		dec:      c.dec,
		text:     text,
		textAddr: entry,
		entry:    entry,
		gen:      c.tc.gen,
		key:      key,
		mb:       c.rt.mb,
	}
	c.rt.pending[entry] = true
	if c.RoutineSync {
		job.prog = rtCompileJob(job)
		c.rtInstall(job)
		return
	}
	rtWorkerOnce.Do(rtWorkerStart)
	select {
	case rtWorkQueue <- job:
	default:
		delete(c.rt.pending, entry) // queue full: drop, keep candidacy
		obs.Record(obs.EvCompileStall, uint64(entry), rtQueueDepth)
	}
}

// rtDrain installs every finished compilation waiting in the
// mailbox.  Called only between blocks, so promotion never interrupts
// a step.
func (c *CPU) rtDrain() {
	if !c.rt.mb.has.Load() {
		return
	}
	c.rt.mb.mu.Lock()
	jobs := c.rt.mb.jobs
	c.rt.mb.jobs = nil
	c.rt.mb.has.Store(false)
	c.rt.mb.mu.Unlock()
	for _, job := range jobs {
		c.rtInstall(job)
	}
}

func (c *CPU) rtInstall(job *rtJob) {
	delete(c.rt.pending, job.entry)
	if job.prog == nil {
		delete(c.rt.candidates, job.entry) // not compilable; stop asking
		return
	}
	if job.gen != c.tc.gen {
		return // text changed since the snapshot; a rebuilt hot block re-requests
	}
	for pc, k := range job.prog.Index {
		c.rt.heads[pc] = rhead{prog: job.prog, idx: k}
	}
	c.rt.compiled++
	obs.Record(obs.EvRoutineInstall, uint64(job.entry), uint64(len(job.prog.Index)))
}

// rtFill loads the routine environment from architected state.
func (c *CPU) rtFill(e *rtl.REnv) {
	e.R = c.R
	e.Y, e.PSR, e.FSR = c.Y, c.PSR, c.FSR
	e.F = c.F
	e.PC, e.NPC = c.PC, c.NPC
	e.Insts, e.Annuls = c.InstCount, c.AnnulCount
	e.Windows = c.windows
	e.Halted, e.ExitCode = c.Halted, c.ExitCode
	e.ResetCC()
	e.StopKind, e.StopErr, e.StopPC = rtl.StopNone, nil, 0
	e.Bridge = &c.env
	e.Gen = c.tc.gen
	e.GenP = &c.tc.gen
}

// rtSpill writes the routine environment back, materializing any
// pending condition codes first — the only place lazy flags become
// architected PSR.
func (c *CPU) rtSpill(e *rtl.REnv) {
	e.FlushCC()
	c.R = e.R
	c.Y, c.PSR, c.FSR = e.Y, e.PSR, e.FSR
	c.F = e.F
	c.PC, c.NPC = e.PC, e.NPC
	c.InstCount, c.AnnulCount = e.Insts, e.Annuls
	c.windows = e.Windows
	c.Halted, c.ExitCode = e.Halted, e.ExitCode
}

// runRoutine executes installed routine programs starting at rh until
// control leaves compiled routines, execution must stop, or the step
// budget cannot cover the next block.  It reports whether any
// instruction was executed: a budget refusal before the first block
// returns (false, nil) so the caller falls back to a per-instruction
// tier that can hit the limit exactly.
func (c *CPU) runRoutine(rh rhead, maxSteps uint64) (executed bool, err error) {
	e := &c.renv
	c.rtFill(e)
	p, k := rh.prog, rh.idx
	for {
		blk := &p.Blocks[k]
		if e.Insts+blk.Cost > maxSteps {
			// At a block head the pipeline is sequential, so the
			// architected pc is exactly the head address.  In-program
			// terminators return a block index without touching e.PC,
			// so it must be refreshed before spilling.
			e.PC, e.NPC = blk.Base, blk.Base+4
			c.rtSpill(e)
			return executed, nil
		}
		executed = true
		for i := range blk.Ops {
			if blk.Ops[i](e) {
				pc := blk.Base + uint32(4*i)
				switch e.StopKind {
				case rtl.StopHalt:
					e.Insts += uint64(i) + 1
					e.PC, e.NPC = pc, pc+4
					c.rtSpill(e)
					return true, nil
				case rtl.StopGen:
					e.Insts += uint64(i) + 1
					e.PC, e.NPC = pc+4, pc+8
					c.rt.deopts++
					obs.Record(obs.EvRoutineDeopt, uint64(pc), e.Gen)
					c.rtSpill(e)
					return true, nil
				default: // StopFault
					e.Insts += uint64(i)
					e.PC, e.NPC = pc, pc+4
					c.rtSpill(e)
					return true, &Fault{pc, e.StopErr}
				}
			}
		}
		e.Insts += uint64(len(blk.Ops))
		next := blk.Term(e)
		if next >= 0 {
			k = next
			continue
		}
		if next == rtl.RTermExit {
			// Cross-routine continuation: an exit landing on another
			// installed head (call, tail call, return) stays in the
			// tier with zero spill traffic.
			if nh, ok := c.rt.heads[e.PC]; ok && e.NPC == e.PC+4 {
				p, k = nh.prog, nh.idx
				continue
			}
			c.rtNoteCandidate(e.PC)
			c.rtSpill(e)
			return true, nil
		}
		// RTermStop: the terminator finalized everything.
		if e.StopKind == rtl.StopGen {
			c.rt.deopts++
			obs.Record(obs.EvRoutineDeopt, uint64(e.PC), e.Gen)
		}
		c.rtSpill(e)
		if e.StopKind == rtl.StopFault {
			return true, &Fault{e.StopPC, e.StopErr}
		}
		return true, nil
	}
}
