package sim

import (
	"testing"

	"eel/internal/asm"
	"eel/internal/progen"
	"eel/internal/sparc"
	"eel/internal/telemetry"
)

// TestChainCollisionNoLivelock pins tcIndex collision behaviour: the
// direct-mapped cache indexes by (pc>>2) & (tcEntries-1), so blocks
// 0x4000*4 bytes apart map to the same slot.  Three mutually-calling
// hot chunks at 0x10000/0x14000/0x18000 all collide on slot 0; they
// must displace each other through the victim table (victim hits, not
// rebuilds), keep their chain links correct, and the program must
// terminate with the interpreter's exact result — no livelock, no
// cross-unchaining corruption.
func TestChainCollisionNoLivelock(t *testing.T) {
	main := `
	mov 200, %l0
	clr %o0
loop:
	set 0x14000, %l1
	jmpl %l1, %o7
	nop
	set 0x18000, %l1
	jmpl %l1, %o7
	nop
	subcc %l0, 1, %l0
	bne loop
	nop
	mov 1, %g1
	ta 0
`
	f1 := `
	jmpl %o7+8, %g0
	add %o0, 1, %o0
`
	f2 := `
	jmpl %o7+8, %g0
	add %o0, 2, %o0
`
	build := func(nojit, nochain bool) *CPU {
		cpu, prog := load(t, main, 0x10000)
		if tcIndex(0x10000) != tcIndex(0x14000) || tcIndex(0x10000) != tcIndex(0x18000) {
			t.Fatal("test addresses no longer collide in the direct-mapped cache")
		}
		for _, c := range []struct {
			src  string
			base uint32
		}{{f1, 0x14000}, {f2, 0x18000}} {
			p, err := asm.Assemble(c.src, c.base)
			if err != nil {
				t.Fatalf("assemble chunk at %#x: %v", c.base, err)
			}
			cpu.Mem.LoadSegment(p.Base, p.Bytes)
		}
		cpu.TextStart, cpu.TextEnd = prog.Base, 0x18000+0x100
		cpu.NoJIT, cpu.NoChain = nojit, nochain
		return cpu
	}

	ref := build(true, false)
	run(t, ref)
	if ref.ExitCode != 600 {
		t.Fatalf("interpreter exit = %d, want 600", ref.ExitCode)
	}

	cpu := build(false, false)
	run(t, cpu) // run's step budget is the livelock guard
	if cpu.ExitCode != ref.ExitCode || cpu.InstCount != ref.InstCount {
		t.Fatalf("chained diverged: exit %d insts %d, want %d/%d",
			cpu.ExitCode, cpu.InstCount, ref.ExitCode, ref.InstCount)
	}
	k := cpu.Counters()
	if k.VictimHits == 0 {
		t.Errorf("colliding hot blocks never hit the victim table: %+v", k)
	}
	if k.Builds > 3*k.VictimHits+16 {
		t.Errorf("collisions are rebuilding instead of using the victim table: builds %d, victim hits %d",
			k.Builds, k.VictimHits)
	}
}

// TestChainedSelfModifyInvalidation is the self-modifying-code repro
// for chained-block invalidation: a hot loop — chained and possibly
// trace-extended by the time the write happens — patches its own body
// (add %o0,1 becomes add %o0,2) and runs another phase.  The store
// must flush the cache, sever every chain into the retired blocks, and
// the re-translation must execute the patched instruction; all three
// engines must agree bit-exactly.
func TestChainedSelfModifyInvalidation(t *testing.T) {
	src := `
	mov 2, %l5
	clr %o0
phase:
	mov 100, %l0
loop:
slot:
	add %o0, 1, %o0
	subcc %l0, 1, %l0
	bne loop
	nop
	set 0x20000, %l1
	ld [%l1], %l2
	set slot, %l3
	st %l2, [%l3]
	subcc %l5, 1, %l5
	bne phase
	nop
	mov 1, %g1
	ta 0
`
	patched, err := sparc.EncodeOp3Imm("add", sparc.RegO0, sparc.RegO0, 2)
	if err != nil {
		t.Fatal(err)
	}
	build := func(nojit, nochain bool) *CPU {
		cpu, prog := load(t, src, 0x10000)
		cpu.Mem.Write32(0x20000, patched) // replacement word, outside text
		cpu.TextStart, cpu.TextEnd = prog.Base, prog.Base+uint32(len(prog.Bytes))
		cpu.NoJIT, cpu.NoChain = nojit, nochain
		return cpu
	}

	ref := build(true, false)
	run(t, ref)
	if ref.ExitCode != 300 { // 100*1 + 100*2
		t.Fatalf("interpreter exit = %d, want 300", ref.ExitCode)
	}
	for _, eng := range []struct {
		name    string
		nojit   bool
		nochain bool
	}{{"translated", false, true}, {"chained", false, false}} {
		cpu := build(eng.nojit, eng.nochain)
		run(t, cpu)
		if cpu.ExitCode != ref.ExitCode || cpu.InstCount != ref.InstCount {
			t.Errorf("%s: exit %d insts %d, want %d/%d",
				eng.name, cpu.ExitCode, cpu.InstCount, ref.ExitCode, ref.InstCount)
		}
		if addr, ok := ref.Mem.Diff(cpu.Mem); !ok {
			t.Errorf("%s: memory diverged at %#x", eng.name, addr)
		}
		if k := cpu.Counters(); k.Flushes == 0 {
			t.Errorf("%s: self-modifying store did not flush the cache: %+v", eng.name, k)
		}
	}
}

// TestTraceExtension checks profile-guided trace building on a
// loop-heavy progen workload: the chained engine must build at least
// one trace, serve most transitions from chain links, and still match
// the interpreter's architected state exactly.
func TestTraceExtension(t *testing.T) {
	cfg := progen.DefaultConfig(41)
	cfg.BodyOps = 8
	cfg.HotLoop = 500
	p := progen.MustGenerate(cfg)

	ref := LoadFile(p.File, nil)
	ref.NoJIT = true
	if err := ref.Run(500_000_000); err != nil {
		t.Fatal(err)
	}

	cpu := LoadFile(p.File, nil)
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	if a, b := ref.ArchState(), cpu.ArchState(); a != b {
		t.Fatalf("architected state diverged:\ninterp:  %schained: %s", a, b)
	}
	if addr, ok := ref.Mem.Diff(cpu.Mem); !ok {
		t.Fatalf("memory diverged at %#x", addr)
	}
	k := cpu.Counters()
	if k.Traces == 0 {
		t.Errorf("hot loop built no traces: %+v", k)
	}
	if k.ChainHits == 0 || k.ChainHits < k.ChainMisses {
		t.Errorf("chain links are not carrying the hot path: %+v", k)
	}
}

// TestChainCountersByEngine checks the engine plumbing: the NoChain
// engine must record no chaining activity at all, and the chained
// engine must serve indirect transfers from the inline caches.
func TestChainCountersByEngine(t *testing.T) {
	p := progen.MustGenerate(progen.DefaultConfig(5))

	nochain := LoadFile(p.File, nil)
	nochain.NoChain = true
	if err := nochain.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	k := nochain.Counters()
	if k.ChainHits+k.ChainMisses+k.ICHits+k.ICMisses+k.Traces != 0 {
		t.Errorf("NoChain engine recorded chaining activity: %+v", k)
	}

	chained := LoadFile(p.File, nil)
	if err := chained.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	k = chained.Counters()
	if k.ChainHits == 0 {
		t.Errorf("chained engine recorded no chain hits: %+v", k)
	}
	if k.ICHits == 0 {
		t.Errorf("chained engine recorded no inline-cache hits (progen emits dispatch tables): %+v", k)
	}
}

// BenchmarkRunTelemetrySink pins Run's telemetry publication to the
// BenchmarkDisabledSink contract: with process-wide telemetry
// disabled, the counter-delta/span path around a run must not
// allocate (a halted CPU isolates exactly that wrapper).
func BenchmarkRunTelemetrySink(b *testing.B) {
	p := progen.MustGenerate(progen.DefaultConfig(5))
	cpu := LoadFile(p.File, nil)
	if err := cpu.Run(500_000_000); err != nil {
		b.Fatal(err)
	}
	if !cpu.Halted {
		b.Fatal("program did not halt")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := cpu.Run(1); err != nil {
			b.Fatal(err)
		}
	}
	if testing.AllocsPerRun(100, func() {
		if err := cpu.Run(1); err != nil {
			b.Fatal(err)
		}
	}) != 0 {
		b.Fatal("disabled telemetry allocates in Run")
	}
	_ = telemetry.Default() // disabled: nil registry is the contract
}
