package sim

// Tests for the machine-generic substrate: the DCTI-couple builder
// bail-out, the load-time description-shape validation, and the
// DelaySlots()==0 execution paths (the Alpha shape).

import (
	"testing"

	"eel/internal/alpha"
	"eel/internal/machine"
	_ "eel/internal/mips" // register the MIPS ArchInfo
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// mustWord unwraps an encoder result (panicking keeps call sites
// usable directly inside composite literals).
func mustWord(w uint32, err error) uint32 {
	if err != nil {
		panic(err)
	}
	return w
}

// loadWords builds a CPU over a text segment of raw words.
func loadWords(t *testing.T, dec *spawn.TableDecoder, base uint32, words []uint32) *CPU {
	t.Helper()
	mem := NewMemory()
	for i, w := range words {
		mem.Write32(base+uint32(4*i), w)
	}
	cpu := New(dec, mem)
	cpu.TextStart, cpu.TextEnd = base, base+uint32(4*len(words))
	cpu.Reset(base, DefaultStack)
	return cpu
}

// assertNoCoupleInBlock fails if any instruction in b sits in the
// delay slot of an unconditional transfer while being a control
// transfer itself — the DCTI-couple shape the superblock machinery
// must never admit.
func assertNoCoupleInBlock(t *testing.T, b *tblock) {
	t.Helper()
	for i := 1; i < len(b.insts); i++ {
		prev := b.insts[i-1].inst
		cur := b.insts[i].inst
		if uncondTransfer(prev) && prev.DelaySlots() > 0 &&
			(cur.Category().IsControl() || cur.DelaySlots() > 0) {
			t.Errorf("block %#x admits DCTI couple: %s at %#x in delay slot of %s at %#x",
				b.pc, cur.Name(), b.insts[i].pc, prev.Name(), b.insts[i-1].pc)
		}
	}
}

// TestDCTICoupleExcludedFromBlocks is the pinned repro for the
// superblock-builder bug: a control transfer in another transfer's
// delay slot (a SPARC DCTI couple) must close the block at the first
// transfer instead of being translated into it.  On the pre-fix
// builder the couple's second transfer lands inside the block and
// this test fails.
func TestDCTICoupleExcludedFromBlocks(t *testing.T) {
	const base = 0x10000
	ba1 := mustWord(sparc.EncodeBranch("ba", false, 4)) // → base+0x10
	ba2 := mustWord(sparc.EncodeBranch("ba", false, 6)) // slot CTI → base+0x1c
	nop := sparc.Nop()
	cpu := loadWords(t, sparc.NewDecoder(), base, []uint32{
		ba1, ba2, nop, nop, nop, nop, nop, nop,
	})
	b := cpu.buildBlock(base)
	if len(b.insts) != 1 {
		t.Errorf("block at couple head has %d instructions, want 1 (the first transfer only)", len(b.insts))
	}
	assertNoCoupleInBlock(t, b)

	// call with a branch in its slot: the same shape through a
	// different transfer category.
	callw := mustWord(sparc.EncodeCall(8))
	cpu2 := loadWords(t, sparc.NewDecoder(), base, []uint32{
		callw, ba2, nop, nop, nop, nop, nop, nop, nop, nop,
	})
	b2 := cpu2.buildBlock(base)
	if len(b2.insts) != 1 {
		t.Errorf("call-couple block has %d instructions, want 1", len(b2.insts))
	}
	assertNoCoupleInBlock(t, b2)
}

// TestDCTICoupleLockstep executes a DCTI couple to completion in all
// three per-instruction engines and checks the architected results
// agree: the couple's interleaved delayed transfers must survive the
// block boundary the builder now places between them.
func TestDCTICoupleLockstep(t *testing.T) {
	const base = 0x10000
	words := []uint32{
		mustWord(sparc.EncodeBranch("ba", false, 4)), // → base+0x10
		mustWord(sparc.EncodeBranch("ba", false, 6)), // slot: → base+0x1c
		sparc.Nop(), // skipped
		sparc.Nop(), // skipped
		mustWord(sparc.EncodeOp3Imm("or", sparc.RegO0, sparc.RegG0, 42)), // L1: one inst, then off to L2
		sparc.Nop(), // not reached
		sparc.Nop(), // not reached
		mustWord(sparc.EncodeOp3Imm("or", sparc.RegG1, sparc.RegG0, 1)), // L2: exit(…)
		mustWord(sparc.EncodeTa(0)),
	}
	type result struct {
		exit  uint32
		insts uint64
		state string
	}
	var results []result
	for _, eng := range []struct {
		name           string
		nojit, nochain bool
	}{
		{"interp", true, false},
		{"translated", false, true},
		{"chained", false, false},
	} {
		cpu := loadWords(t, sparc.NewDecoder(), base, words)
		cpu.NoJIT, cpu.NoChain = eng.nojit, eng.nochain
		if err := cpu.Run(10_000); err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if !cpu.Halted {
			t.Fatalf("%s: did not halt", eng.name)
		}
		results = append(results, result{cpu.ExitCode, cpu.InstCount, cpu.ArchState()})
	}
	want := result{exit: 42, insts: 5}
	for i, r := range results {
		if r.exit != want.exit || r.insts != want.insts {
			t.Errorf("engine %d: exit=%d insts=%d, want exit=%d insts=%d",
				i, r.exit, r.insts, want.exit, want.insts)
		}
		if r.state != results[0].state {
			t.Errorf("engine %d final state diverges:\n%s\nvs interp:\n%s", i, r.state, results[0].state)
		}
	}
}

// TestWordSizeRejectedAtLoad pins the loud failure mode for
// descriptions whose instruction width the substrate does not
// support: New must panic at CPU construction, not mis-stride
// silently mid-block.
func TestWordSizeRejectedAtLoad(t *testing.T) {
	desc, err := spawn.ParseDesc(`
machine tiny16
instruction{16} fields op 0:15
register integer{32} R[32]
pat nop16 is op=0
sem nop16 is R[1] := R[1]
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dec := spawn.NewDecoder(desc, nil, nil)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("New accepted a 2-byte instruction stride without panicking")
		}
	}()
	New(dec, NewMemory())
}

// TestUnregisteredArchRejectedAtLoad: a well-formed description whose
// machine has no ArchInfo registration must fail at New — the trap
// model and tier gates would otherwise be silently absent.
func TestUnregisteredArchRejectedAtLoad(t *testing.T) {
	desc, err := spawn.ParseDesc(`
machine neverregistered
instruction{32} fields op 0:31
register integer{32} R[32]
pat nop32 is op=0
sem nop32 is R[1] := R[1]
`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dec := spawn.NewDecoder(desc, nil, nil)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("New accepted an unregistered architecture without panicking")
		}
	}()
	New(dec, NewMemory())
}

// alphaExit emits the two-instruction exit idiom: v0 := 1, callsys.
func alphaExit() []uint32 {
	return []uint32{
		mustWord(alpha.EncodeOpLit("addl", 31, 1, 0)), // $v0 := 1 (SysExit)
		mustWord(alpha.EncodeCallPal(0x83)),
	}
}

// runAlpha runs the words in every engine and checks the architected
// results agree, returning the interpreter's CPU.
func runAlpha(t *testing.T, words []uint32) *CPU {
	t.Helper()
	const base = 0x10000
	var first *CPU
	var firstState string
	for _, eng := range []struct {
		name           string
		nojit, nochain bool
	}{
		{"interp", true, false},
		{"translated", false, true},
		{"chained", false, false},
	} {
		cpu := loadWords(t, alpha.NewDecoder(), base, words)
		cpu.NoJIT, cpu.NoChain = eng.nojit, eng.nochain
		if err := cpu.Run(100_000); err != nil {
			t.Fatalf("%s: %v", eng.name, err)
		}
		if !cpu.Halted {
			t.Fatalf("%s: did not halt", eng.name)
		}
		if cpu.AnnulCount != 0 {
			t.Errorf("%s: AnnulCount=%d on a machine with no delay slots (phantom delay-slot commit)",
				eng.name, cpu.AnnulCount)
		}
		if first == nil {
			first, firstState = cpu, cpu.ArchState()
			continue
		}
		if cpu.ExitCode != first.ExitCode || cpu.InstCount != first.InstCount {
			t.Errorf("%s: exit=%d insts=%d, interp got exit=%d insts=%d",
				eng.name, cpu.ExitCode, cpu.InstCount, first.ExitCode, first.InstCount)
		}
		if s := cpu.ArchState(); s != firstState {
			t.Errorf("%s final state diverges:\n%s\nvs interp:\n%s", eng.name, s, firstState)
		}
	}
	return first
}

// TestAlphaNoDelaySlotTransfer: an unconditional branch on a
// DelaySlots()==0 machine must transfer immediately — the next
// sequential instruction must not execute, no slot is committed, and
// the dispatcher's NPC handling stays sequential at the target.
func TestAlphaNoDelaySlotTransfer(t *testing.T) {
	const base = 0x10000
	words := []uint32{
		mustWord(alpha.EncodeMem("lda", 16, 31, 42)),  // $a0 := 42
		mustWord(alpha.EncodeBranch("br", 31, 1)),     // → +2 words (skip the poison)
		mustWord(alpha.EncodeMem("lda", 16, 31, 99)),  // must NOT execute
		mustWord(alpha.EncodeOpLit("addl", 31, 1, 0)), // $v0 := 1
		mustWord(alpha.EncodeCallPal(0x83)),           // exit($a0)
	}
	cpu := runAlpha(t, words)
	if cpu.ExitCode != 42 {
		t.Errorf("exit=%d, want 42 (the branch shadow executed)", cpu.ExitCode)
	}
	if cpu.InstCount != 4 {
		t.Errorf("InstCount=%d, want exactly 4 (lda, br, addl, call_pal)", cpu.InstCount)
	}

	// Block construction: the superblock must end at the transfer
	// itself — zero delay slots means zero instructions after it.
	bc := loadWords(t, alpha.NewDecoder(), base, words)
	b := bc.buildBlock(base)
	if len(b.insts) != 2 {
		t.Errorf("block has %d instructions, want 2 (lda, br) — a phantom delay slot was admitted", len(b.insts))
	}
	if last := b.insts[len(b.insts)-1].inst; last.DelaySlots() != 0 {
		t.Errorf("alpha %s reports %d delay slots", last.Name(), last.DelaySlots())
	}
}

// TestAlphaLoopLockstep runs a countdown loop (conditional backward
// branch, no delay slots) through all engines: block re-entry and the
// dispatcher's NPC handling must agree with single-step execution.
func TestAlphaLoopLockstep(t *testing.T) {
	words := []uint32{
		mustWord(alpha.EncodeMem("lda", 1, 31, 5)),    // counter $1 := 5
		mustWord(alpha.EncodeMem("lda", 2, 31, 0)),    // acc $2 := 0
		mustWord(alpha.EncodeOpLit("addl", 2, 3, 2)),  // loop: $2 += 3
		mustWord(alpha.EncodeOpLit("subl", 1, 1, 1)),  // $1 -= 1
		mustWord(alpha.EncodeBranch("bne", 1, -3)),    // → loop while $1 != 0
		mustWord(alpha.EncodeOp("bis", 2, 31, 16)),    // $a0 := $2
		mustWord(alpha.EncodeOpLit("addl", 31, 1, 0)), // $v0 := 1
		mustWord(alpha.EncodeCallPal(0x83)),           // exit(15)
	}
	cpu := runAlpha(t, words)
	if cpu.ExitCode != 15 {
		t.Errorf("exit=%d, want 15", cpu.ExitCode)
	}
	// 2 setup + 5 iterations × 3 + 3 tail (bis, addl, call_pal).
	if want := uint64(2 + 5*3 + 3); cpu.InstCount != want {
		t.Errorf("InstCount=%d, want %d", cpu.InstCount, want)
	}
}

// TestAlphaIndirectJumpLockstep drives the inline-cache exit path on
// the DelaySlots()==0 shape: jsr/retj through a register.
func TestAlphaIndirectJumpLockstep(t *testing.T) {
	// sub sits at base+0x18 = 0x10018; materialize the address in two
	// halves since it exceeds a single 16-bit displacement.
	words := []uint32{
		mustWord(alpha.EncodeMem("ldah", 27, 31, 1)),   // $27 := 0x10000
		mustWord(alpha.EncodeMem("lda", 27, 27, 0x18)), // $27 := sub
		mustWord(alpha.EncodeJump("jsr", 26, 27)),      // call sub, link $26
		mustWord(alpha.EncodeOp("bis", 0, 31, 16)),     // $a0 := $v0
		mustWord(alpha.EncodeOpLit("addl", 31, 1, 0)),  // $v0 := 1
		mustWord(alpha.EncodeCallPal(0x83)),            // exit(7)
		mustWord(alpha.EncodeMem("lda", 0, 31, 7)),     // sub: $v0 := 7
		mustWord(alpha.EncodeJump("retj", 31, 26)),     // return
	}
	cpu := runAlpha(t, words)
	if cpu.ExitCode != 7 {
		t.Errorf("exit=%d, want 7", cpu.ExitCode)
	}
	if cpu.InstCount != 8 {
		t.Errorf("InstCount=%d, want 8", cpu.InstCount)
	}
}

// TestMachineArchRegistry pins the registry contents this repo
// ships: three architectures, addressable by canonical name and by
// the -isa short forms.
func TestMachineArchRegistry(t *testing.T) {
	for _, name := range []string{"sparc", "mips32e", "mips", "alpha64e", "alpha"} {
		a, ok := machine.ArchByName(name)
		if !ok {
			t.Errorf("ArchByName(%q) missing", name)
			continue
		}
		if a.NewDecoder == nil {
			t.Errorf("%s: no decoder constructor", name)
		}
	}
	if a, _ := machine.ArchByName("sparc"); a == nil || !a.RoutineTier {
		t.Error("sparc must support the routine tier")
	}
	if a, _ := machine.ArchByName("mips"); a == nil || a.RoutineTier {
		t.Error("mips routine tier is not implemented; must be gated off")
	}
}
