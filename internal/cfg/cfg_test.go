package cfg_test

import (
	"testing"

	"eel/internal/asm"
	"eel/internal/cfg"
	"eel/internal/machine"
	"eel/internal/sparc"
)

// build assembles src at 0x10000 and constructs the CFG of the whole
// image as one routine entered at its base.
func build(t *testing.T, src string) (*cfg.Graph, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	end := prog.Base + uint32(len(prog.Bytes))
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end, []uint32{prog.Base})
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g, prog
}

func blockAt(t *testing.T, g *cfg.Graph, addr uint32) *cfg.Block {
	t.Helper()
	b := g.ByAddr[addr]
	if b == nil {
		t.Fatalf("no block at %#x", addr)
	}
	return b
}

func TestStraightLine(t *testing.T) {
	g, _ := build(t, `
	mov 1, %o0
	mov 1, %g1
	ta 0
`)
	s := g.Stats()
	if s.NormalBlocks != 1 {
		t.Errorf("normal blocks = %d, want 1", s.NormalBlocks)
	}
	b := blockAt(t, g, 0x10000)
	if len(b.Insts) != 3 {
		t.Errorf("insts = %d, want 3 (ta is not a terminator)", len(b.Insts))
	}
	if !g.Complete {
		t.Error("graph should be complete")
	}
}

func TestFigure3Normalization(t *testing.T) {
	// The paper's Figure 3: an annulled conditional branch's delay
	// slot instruction appears along only the taken edge.
	g, prog := build(t, `
	cmp %l1, %l2
	bne,a L1
	add %l1, %l2, %l1    ! delay slot of annulled branch
	mov 9, %o0           ! fallthrough
L1:	mov 1, %g1
	ta 0
`)
	branchBlk := blockAt(t, g, 0x10000)
	last := branchBlk.Last()
	if last == nil || last.MI.Name() != "bne" {
		t.Fatalf("branch block ends with %v", last)
	}
	if len(branchBlk.Succ) != 2 {
		t.Fatalf("branch block has %d successors", len(branchBlk.Succ))
	}
	var taken, fall *cfg.Edge
	for _, e := range branchBlk.Succ {
		switch e.Kind {
		case cfg.EdgeTaken:
			taken = e
		case cfg.EdgeFall:
			fall = e
		}
	}
	if taken == nil || fall == nil {
		t.Fatal("missing taken or fall edge")
	}
	// Taken path goes through a delay-slot block holding the add.
	if taken.To.Kind != cfg.KindDelaySlot {
		t.Fatalf("taken edge leads to %s, want delayslot", taken.To.Kind)
	}
	if taken.To.Insts[0].MI.Name() != "add" {
		t.Errorf("delay slot holds %s", taken.To.Insts[0].MI.Name())
	}
	if taken.To.Succ[0].To != g.ByAddr[prog.Labels["L1"]] {
		t.Error("delay slot does not reach L1")
	}
	// Fall path skips the slot entirely (annulled, untaken).
	if fall.To.Kind == cfg.KindDelaySlot {
		t.Error("annulled branch must not execute its slot on the untaken path")
	}
	if fall.To.Start() != 0x1000c {
		t.Errorf("fall edge to %#x, want 0x1000c", fall.To.Start())
	}
}

func TestNonAnnulledSlotDuplicated(t *testing.T) {
	g, _ := build(t, `
	cmp %l1, %l2
	bne L1
	add %l1, %l2, %l1
	mov 9, %o0
L1:	mov 1, %g1
	ta 0
`)
	branchBlk := blockAt(t, g, 0x10000)
	dsCount := 0
	for _, e := range branchBlk.Succ {
		if e.To.Kind == cfg.KindDelaySlot {
			dsCount++
		}
	}
	if dsCount != 2 {
		t.Errorf("delay-slot copies = %d, want 2 (both edges)", dsCount)
	}
	if got := g.Stats().DelaySlotBlocks; got != 2 {
		t.Errorf("stats delay slots = %d, want 2", got)
	}
}

func TestCallSurrogate(t *testing.T) {
	g, prog := build(t, `
	call f
	nop
	mov 1, %g1
	ta 0
f:	retl
	nop
`)
	callBlk := blockAt(t, g, 0x10000)
	if callBlk.Last().MI.Category() != machine.CatCallDirect {
		t.Fatalf("block ends with %s", callBlk.Last().MI)
	}
	// call → uneditable DS → uneditable surrogate → return point.
	ds := callBlk.Succ[0].To
	if ds.Kind != cfg.KindDelaySlot || !ds.Uneditable {
		t.Fatalf("after call: %s uneditable=%v", ds.Kind, ds.Uneditable)
	}
	surr := ds.Succ[0].To
	if surr.Kind != cfg.KindCallSurrogate || !surr.Uneditable {
		t.Fatalf("surrogate: %s uneditable=%v", surr.Kind, surr.Uneditable)
	}
	if surr.CallTarget != prog.Labels["f"] {
		t.Errorf("call target = %#x, want %#x", surr.CallTarget, prog.Labels["f"])
	}
	ret := surr.Succ[0]
	if ret.Kind != cfg.EdgeReturn || ret.Uneditable {
		t.Errorf("return edge kind=%s uneditable=%v (should be editable)", ret.Kind, ret.Uneditable)
	}
	if ret.To.Start() != 0x10008 {
		t.Errorf("return point = %#x", ret.To.Start())
	}
	// The callee is a separate routine: reached via OutRefs.
	foundCall := false
	for _, or := range g.OutRefs {
		if or.IsCall && or.Target == prog.Labels["f"] {
			foundCall = true
		}
	}
	if !foundCall {
		t.Error("call target not recorded in OutRefs")
	}
}

func TestReturnEdges(t *testing.T) {
	g, _ := build(t, `
	retl
	nop
`)
	b := blockAt(t, g, 0x10000)
	ds := b.Succ[0].To
	if ds.Kind != cfg.KindDelaySlot {
		t.Fatalf("return slot kind = %s", ds.Kind)
	}
	if ds.Succ[0].To != g.Exit {
		t.Error("return does not reach exit")
	}
}

func TestBaAnnulledHasNoSlotBlock(t *testing.T) {
	g, _ := build(t, `
	ba,a L1
	mov 5, %o0      ! never executes
L1:	mov 1, %g1
	ta 0
`)
	b := blockAt(t, g, 0x10000)
	if b.Succ[0].To.Kind == cfg.KindDelaySlot {
		t.Error("ba,a must not produce a delay-slot block")
	}
	if g.Stats().DelaySlotBlocks != 0 {
		t.Errorf("delay slot blocks = %d, want 0", g.Stats().DelaySlotBlocks)
	}
	// The annulled instruction at 0x10004 is unreachable; it should
	// not appear in any block.
	if g.ByAddr[0x10004] != nil {
		t.Error("annulled slot formed a block")
	}
}

func TestDataInText(t *testing.T) {
	// A reachable invalid word means the routine contains data
	// (paper §3.1 step 4).
	g, _ := build(t, `
	mov 1, %o0
	.word 0
	mov 2, %o0
`)
	if !g.HasData {
		t.Error("reachable invalid word not flagged as data")
	}
}

func TestIndirectJumpUnresolved(t *testing.T) {
	g, _ := build(t, `
	jmp %l0
	nop
`)
	if g.Complete {
		t.Error("graph with unresolved indirect jump must be incomplete")
	}
	if len(g.IndirectJumps) != 1 {
		t.Fatalf("indirect jumps = %d", len(g.IndirectJumps))
	}
	ij := g.IndirectJumps[0]
	if ij.Resolved {
		t.Error("jump should be unresolved")
	}
	if ij.Slot == nil || ij.Slot.Succ[0].To != g.Exit {
		t.Error("unresolved jump should flow to exit")
	}
}

func TestResolvedIndirectJump(t *testing.T) {
	src := `
	jmp %l0
	nop
A:	mov 1, %o0
	mov 1, %g1
	ta 0
B:	mov 2, %o0
	mov 1, %g1
	ta 0
`
	prog := asm.MustAssemble(src, 0x10000)
	end := prog.Base + uint32(len(prog.Bytes))
	opts := cfg.Options{
		IndirectTargets: map[uint32][]uint32{
			0x10000: {prog.Labels["A"], prog.Labels["B"]},
		},
		Tables: map[uint32]cfg.TableInfo{
			0x10000: {Addr: 0x20000, Len: 2},
		},
	}
	g, err := cfg.BuildWithOptions(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end, []uint32{prog.Base}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Complete {
		t.Error("resolved graph should be complete")
	}
	ij := g.IndirectJumps[0]
	if !ij.Resolved || ij.TableAddr != 0x20000 || ij.TableLen != 2 {
		t.Errorf("resolution = %+v", ij)
	}
	// The slot block fans out to both targets.
	if ij.Slot == nil || len(ij.Slot.Succ) != 2 {
		t.Fatalf("slot successors = %d, want 2", len(ij.Slot.Succ))
	}
	if g.ByAddr[prog.Labels["A"]] == nil || g.ByAddr[prog.Labels["B"]] == nil {
		t.Error("case arms did not become blocks")
	}
}

func TestMultipleEntryPoints(t *testing.T) {
	src := `
e1:	mov 1, %o0
	ba out
	nop
e2:	mov 2, %o0
	ba out
	nop
out:	mov 1, %g1
	ta 0
`
	prog := asm.MustAssemble(src, 0x10000)
	end := prog.Base + uint32(len(prog.Bytes))
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end,
		[]uint32{prog.Labels["e1"], prog.Labels["e2"]})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Entry.Succ) != 2 {
		t.Errorf("entry edges = %d, want 2", len(g.Entry.Succ))
	}
}

func TestOutJumpRecorded(t *testing.T) {
	// A branch out of the routine becomes an OutRef and exit edge —
	// the raw material for entry-point refinement (§3.1 step 3).
	src := `
	ba target
	nop
target:	mov 1, %g1
	ta 0
`
	prog := asm.MustAssemble(src, 0x10000)
	// Restrict the routine to just the first two instructions.
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, prog.Base+8, []uint32{prog.Base})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.OutRefs) != 1 || g.OutRefs[0].Target != prog.Labels["target"] || g.OutRefs[0].IsCall {
		t.Errorf("outrefs = %+v", g.OutRefs)
	}
}

func TestUnreachableTailDetected(t *testing.T) {
	// Code after an unconditional exit that nothing reaches: the
	// signature of a hidden routine (§3.1 step 4).
	src := `
	mov 1, %g1
	ta 0
	jmp %o7+8
	nop
hidden:	mov 7, %o0
	retl
	nop
`
	prog := asm.MustAssemble(src, 0x10000)
	end := prog.Base + uint32(len(prog.Bytes))
	// Entry only covers the first part; 'ta 0' does not end the
	// block, so execution nominally continues, but build from an
	// artificial routine that stops before the ret:
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end, []uint32{prog.Base})
	if err != nil {
		t.Fatal(err)
	}
	_ = g // reachability covers it all here; see symtab tests for the driver
}

func TestCTIInDelaySlotTreatedAsData(t *testing.T) {
	src := `
	ba L1
	ba L2
L1:	nop
L2:	nop
`
	prog := asm.MustAssemble(src, 0x10000)
	end := prog.Base + uint32(len(prog.Bytes))
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end, []uint32{prog.Base})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasData {
		t.Error("control transfer in delay slot should demote the region to data")
	}
	if len(g.Warnings) == 0 {
		t.Error("expected a warning")
	}
}

func TestUneditableFractionPlausible(t *testing.T) {
	// A call-heavy routine should show a visible uneditable
	// fraction, in the spirit of the paper's 15-20%.
	g, _ := build(t, `
	call f
	nop
	call f
	nop
	call f
	nop
	mov 1, %g1
	ta 0
f:	retl
	nop
`)
	s := g.Stats()
	if s.UneditableB == 0 || s.UneditableE == 0 {
		t.Errorf("expected some uneditable blocks/edges, got %d/%d", s.UneditableB, s.UneditableE)
	}
}

func TestBlockSplitAtBranchTarget(t *testing.T) {
	g, prog := build(t, `
	mov 1, %o0
	mov 2, %o1
mid:	mov 3, %o2
	cmp %o0, %o1
	bne mid
	nop
	mov 1, %g1
	ta 0
`)
	if g.ByAddr[prog.Labels["mid"]] == nil {
		t.Fatal("branch target did not start a block")
	}
	first := blockAt(t, g, 0x10000)
	if len(first.Insts) != 2 {
		t.Errorf("first block has %d insts, want 2 (split at mid)", len(first.Insts))
	}
	// Fall edge connects them.
	if first.Succ[0].To != g.ByAddr[prog.Labels["mid"]] {
		t.Error("fall edge missing after split")
	}
}
