// Package cfg builds EEL's control-flow graphs (paper §3.3).  A CFG
// normalizes away the target machine's internal control flow: delayed
// branches' slot instructions are hoisted into their own
// single-instruction blocks on the appropriate edges (an annulled
// branch's slot only on the taken edge — Fig 3; a non-annulled
// branch's slot duplicated on both edges), calls are followed by a
// zero-length "call surrogate" block standing for the callee's
// execution, and a virtual entry/exit pair absorbs multiple entry
// points and every way out of the routine.  After normalization a
// tool can add code before or after almost any instruction, or along
// any edge, without knowing the machine has delay slots at all.
//
// Blocks and edges that would require interprocedural editing (the
// delay slot after a call, the surrogate itself, the slot of a
// return or unresolved indirect jump) are marked uneditable; the
// paper reports 15–20 % of blocks and edges are, and experiment E4
// measures the same fraction here.
package cfg

import (
	"fmt"

	"eel/internal/machine"
)

// BlockKind distinguishes the paper's block flavours (§5 footnote:
// "EEL's 12,774 delay slot blocks, 920 CFG entry/exit blocks, and
// 1,942 call surrogate blocks").
type BlockKind int

// Block kinds.
const (
	// KindNormal blocks hold straight-line instructions.
	KindNormal BlockKind = iota
	// KindEntry is the routine's virtual entry (zero-length).
	KindEntry
	// KindExit is the routine's virtual exit (zero-length).
	KindExit
	// KindDelaySlot holds one hoisted delay-slot instruction.
	KindDelaySlot
	// KindCallSurrogate is the zero-length placeholder for a
	// callee's execution between a call and its return point.
	KindCallSurrogate
)

var blockKindNames = [...]string{"normal", "entry", "exit", "delayslot", "callsurrogate"}

// String returns the kind's short name.
func (k BlockKind) String() string {
	if int(k) < len(blockKindNames) {
		return blockKindNames[k]
	}
	return fmt.Sprintf("blockkind(%d)", int(k))
}

// EdgeKind classifies edges.
type EdgeKind int

// Edge kinds.
const (
	// EdgeFall is fall-through control flow.
	EdgeFall EdgeKind = iota
	// EdgeTaken is a taken branch or jump.
	EdgeTaken
	// EdgeCall links a call block to its surrogate.
	EdgeCall
	// EdgeReturn links a surrogate to the call's return point, or a
	// return's slot to the exit block.
	EdgeReturn
	// EdgeEntry links the virtual entry to an entry point.
	EdgeEntry
	// EdgeExit links interprocedural transfers to the virtual exit.
	EdgeExit
)

var edgeKindNames = [...]string{"fall", "taken", "call", "return", "entry", "exit"}

// String returns the kind's short name.
func (k EdgeKind) String() string {
	if int(k) < len(edgeKindNames) {
		return edgeKindNames[k]
	}
	return fmt.Sprintf("edgekind(%d)", int(k))
}

// Inst is a machine-independent instruction at a text address.
type Inst struct {
	Addr uint32
	MI   *machine.Inst
}

// Block is a single-entry, single-exit instruction sequence.
type Block struct {
	ID   int
	Kind BlockKind
	// Insts is empty for entry/exit/surrogate blocks and holds
	// exactly one instruction for delay-slot blocks.
	Insts []Inst
	// Succ and Pred are the out- and in-edges.
	Succ []*Edge
	Pred []*Edge
	// Uneditable marks blocks a tool may not modify (paper §3.3).
	Uneditable bool
	// CallTarget is the callee address for surrogate blocks of
	// direct calls (0 when indirect/unknown).
	CallTarget uint32
	// HasData marks a block terminated by a reachable invalid word:
	// EEL concludes the routine contains data here (§3.1 step 4).
	HasData bool
}

// Start returns the block's first instruction address (0 for
// synthetic blocks).
func (b *Block) Start() uint32 {
	if len(b.Insts) == 0 {
		return 0
	}
	return b.Insts[0].Addr
}

// Last returns the block's final instruction, or nil.
func (b *Block) Last() *Inst {
	if len(b.Insts) == 0 {
		return nil
	}
	return &b.Insts[len(b.Insts)-1]
}

// SuccBlocks returns the successor blocks.
func (b *Block) SuccBlocks() []*Block {
	out := make([]*Block, len(b.Succ))
	for i, e := range b.Succ {
		out[i] = e.To
	}
	return out
}

// Edge is one control-flow edge.
type Edge struct {
	ID         int
	From, To   *Block
	Kind       EdgeKind
	Uneditable bool
}

// IndirectJump records an unresolved register-indirect jump; the
// slicing analysis (internal/dataflow) later resolves it to a
// dispatch table or marks the graph incomplete.
type IndirectJump struct {
	Block *Block // block whose last instruction is the jump
	Addr  uint32 // jump instruction address
	Slot  *Block // its delay-slot block (nil if annulled/absent)
	// Resolved is set once dispatch-table analysis succeeded.
	Resolved bool
	// TableAddr/TableLen describe the dispatch table when resolved.
	TableAddr uint32
	TableLen  int
	// LiteralTarget is set for single-literal resolutions.
	Literal       bool
	LiteralTarget uint32
	// RuntimeOnly keeps the jump's run-time translation even though
	// targets are known (ablation / light-analysis mode): the
	// discovered targets materialize code and edges, but the table
	// is not rewritten and the edges are uneditable.
	RuntimeOnly bool
}

// OutRef records a control transfer that leaves the routine; the
// symbol-table refinement (paper §3.1 step 3) turns these into entry
// points and hidden-routine discoveries.
type OutRef struct {
	From   uint32 // transfer instruction address
	Target uint32
	IsCall bool
}

// Graph is one routine's control-flow graph.
type Graph struct {
	// Start and End bound the routine in the text segment.
	Start, End uint32
	// Entries are the routine's entry-point addresses.
	Entries []uint32

	Blocks []*Block
	Edges  []*Edge
	Entry  *Block
	Exit   *Block

	// ByAddr maps an original instruction address to the normal
	// block that starts there.
	ByAddr map[uint32]*Block

	// Complete is false when some indirect jump could not be
	// resolved statically; editing then needs run-time translation
	// (paper §3.3).
	Complete bool

	// IndirectJumps lists register-indirect jumps for the slicing
	// pass.
	IndirectJumps []*IndirectJump

	// OutRefs lists interprocedural transfers out of this routine.
	OutRefs []OutRef

	// HasData reports that a reachable path hit an invalid word.
	HasData bool

	// Warnings records analysis anomalies (e.g. a control transfer
	// in a delay slot, treated as data).
	Warnings []string

	// UnreachableTail is the address of the first never-reached
	// instruction after the last reachable one, when a gap suggests
	// a hidden routine follows (0 if none): §3.1 step 4.
	UnreachableTail uint32

	// ExternalReads lists image addresses outside [Start, End) whose
	// words the indirect-jump resolver consulted while building this
	// graph (dispatch tables and literal pointer slots living outside
	// the routine's own extent).  A memoized analysis is reusable only
	// while those words are unchanged; the analysis cache validates
	// them on every hit.
	ExternalReads []uint32

	dec machine.Decoder
}

// Decoder returns the decoder the graph was built with.
func (g *Graph) Decoder() machine.Decoder { return g.dec }

// SetDecoder installs the decoder on a graph reconstructed from a
// serialized form (the persistent analysis cache); graphs built by
// Build carry their decoder already.
func (g *Graph) SetDecoder(d machine.Decoder) { g.dec = d }

// NewEdge links from→to and registers the edge.
func (g *Graph) NewEdge(from, to *Block, kind EdgeKind, uneditable bool) *Edge {
	e := &Edge{ID: len(g.Edges), From: from, To: to, Kind: kind, Uneditable: uneditable}
	g.Edges = append(g.Edges, e)
	from.Succ = append(from.Succ, e)
	to.Pred = append(to.Pred, e)
	return e
}

// NewBlock allocates and registers a block.
func (g *Graph) NewBlock(kind BlockKind) *Block {
	b := &Block{ID: len(g.Blocks), Kind: kind}
	g.Blocks = append(g.Blocks, b)
	return b
}

// RemoveEdge unlinks e from its endpoints (used when re-resolving
// indirect jumps).
func (g *Graph) RemoveEdge(e *Edge) {
	e.From.Succ = removeEdge(e.From.Succ, e)
	e.To.Pred = removeEdge(e.To.Pred, e)
}

func removeEdge(list []*Edge, e *Edge) []*Edge {
	out := list[:0]
	for _, x := range list {
		if x != e {
			out = append(out, x)
		}
	}
	return out
}

// Stats summarizes block/edge composition (experiments E4, E7).
type Stats struct {
	Blocks          int
	NormalBlocks    int
	DelaySlotBlocks int
	EntryExitBlocks int
	CallSurrogates  int
	Edges           int
	UneditableB     int
	UneditableE     int
}

// Stats computes the graph's composition.
func (g *Graph) Stats() Stats {
	var s Stats
	s.Blocks = len(g.Blocks)
	s.Edges = len(g.Edges)
	for _, b := range g.Blocks {
		switch b.Kind {
		case KindNormal:
			s.NormalBlocks++
		case KindDelaySlot:
			s.DelaySlotBlocks++
		case KindEntry, KindExit:
			s.EntryExitBlocks++
		case KindCallSurrogate:
			s.CallSurrogates++
		}
		if b.Uneditable {
			s.UneditableB++
		}
	}
	for _, e := range g.Edges {
		if e.Uneditable {
			s.UneditableE++
		}
	}
	return s
}
