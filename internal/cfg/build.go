package cfg

import (
	"fmt"
	"sort"

	"eel/internal/machine"
)

// BuildError reports a construction failure.
type BuildError struct {
	Addr uint32
	Msg  string
}

func (e *BuildError) Error() string { return fmt.Sprintf("cfg: at %#x: %s", e.Addr, e.Msg) }

// Options refine construction.  IndirectTargets carries the results
// of a prior slicing pass (paper §3.3: "although at the time of
// slicing, the CFG is incomplete ... after finding the table's
// address, EEL builds a precise CFG for the indirect jump"): mapping
// a register-indirect jump's address to its dispatch-table targets
// lets the rebuild reach the case arms and wire precise edges.
type Options struct {
	// IndirectTargets maps jump address → in-routine targets.
	IndirectTargets map[uint32][]uint32
	// Tables maps jump address → its dispatch table, for
	// bookkeeping and later table rewriting.
	Tables map[uint32]TableInfo
	// ForceTranslate marks resolved jumps RuntimeOnly: targets are
	// used to discover code, but the jump still translates its
	// address at run time (light-analysis/ablation mode).
	ForceTranslate bool
}

// TableInfo describes a resolved dispatch table.
type TableInfo struct {
	Addr    uint32
	Len     int
	Literal bool
	Target  uint32 // for Literal resolutions
}

// Build constructs the CFG of the routine occupying [start, end)
// within the text segment (text begins at textAddr), entered at the
// given entry points.  The text segment may extend beyond the
// routine; control transfers leaving [start, end) become OutRefs and
// exit edges.
func Build(dec machine.Decoder, text []byte, textAddr uint32, start, end uint32, entries []uint32) (*Graph, error) {
	return BuildWithOptions(dec, text, textAddr, start, end, entries, Options{})
}

// BuildWithOptions is Build with indirect-jump resolutions applied.
func BuildWithOptions(dec machine.Decoder, text []byte, textAddr uint32, start, end uint32, entries []uint32, opts Options) (*Graph, error) {
	if start < textAddr || end > textAddr+uint32(len(text)) || start > end {
		return nil, &BuildError{start, "routine bounds outside text segment"}
	}
	if start%4 != 0 || end%4 != 0 {
		return nil, &BuildError{start, "routine bounds not word aligned"}
	}
	b := &builder{
		g: &Graph{
			Start: start, End: end, Entries: append([]uint32(nil), entries...),
			ByAddr: map[uint32]*Block{}, Complete: true, dec: dec,
		},
		dec:     dec,
		text:    text,
		base:    textAddr,
		start:   start,
		end:     end,
		reached: map[uint32]bool{},
		leader:  map[uint32]bool{},
		dsOf:    map[uint32]bool{},
		dataAt:  map[uint32]bool{},
		opts:    opts,
	}
	b.g.Entry = b.g.NewBlock(KindEntry)
	b.g.Exit = b.g.NewBlock(KindExit)
	if err := b.reach(); err != nil {
		return nil, err
	}
	b.formBlocks()
	b.connect()
	b.findUnreachableTail()
	return b.g, nil
}

type builder struct {
	g     *Graph
	dec   machine.Decoder
	text  []byte
	base  uint32
	start uint32
	end   uint32

	reached map[uint32]bool
	leader  map[uint32]bool
	dsOf    map[uint32]bool // addresses consumed as delay slots
	dataAt  map[uint32]bool // reachable invalid words
	opts    Options

	// terminator info per block-ending CTI address
	content []uint32 // sorted content addresses (phase 2)
}

func (b *builder) inRoutine(a uint32) bool { return a >= b.start && a < b.end }

func (b *builder) instAt(a uint32) *machine.Inst {
	off := a - b.base
	word := uint32(b.text[off])<<24 | uint32(b.text[off+1])<<16 |
		uint32(b.text[off+2])<<8 | uint32(b.text[off+3])
	return b.dec.Decode(word)
}

// reach walks all paths from the entry points, marking reachable
// instructions, leaders, delay-slot consumption, and data.
func (b *builder) reach() error {
	work := append([]uint32(nil), b.g.Entries...)
	for _, e := range b.g.Entries {
		if !b.inRoutine(e) {
			return &BuildError{e, "entry point outside routine"}
		}
		if e%4 != 0 {
			return &BuildError{e, "misaligned entry point"}
		}
		b.leader[e] = true
	}
	push := func(a uint32) {
		if b.inRoutine(a) && !b.reached[a] {
			work = append(work, a)
		}
	}
	markLeader := func(a uint32) {
		if b.inRoutine(a) {
			b.leader[a] = true
		}
	}
	for len(work) > 0 {
		a := work[len(work)-1]
		work = work[:len(work)-1]
		for b.inRoutine(a) && !b.reached[a] {
			b.reached[a] = true
			inst := b.instAt(a)
			if !inst.Valid() {
				b.dataAt[a] = true
				b.g.HasData = true
				break
			}
			if !inst.Category().IsControl() {
				a += 4
				continue
			}
			// Control transfer: account for its delay slot.
			delay := inst.DelaySlots()
			dsAddr := a + 4
			hasDS := delay == 1 && !inst.IsAnnulledUncond()
			if delay == 1 {
				if dsAddr >= b.end {
					b.dataAt[a] = true
					b.g.HasData = true
					break
				}
				if hasDS {
					b.reached[dsAddr] = true
					b.dsOf[dsAddr] = true
					ds := b.instAt(dsAddr)
					if !ds.Valid() {
						b.dataAt[dsAddr] = true
						b.g.HasData = true
					} else if ds.Category().IsControl() {
						// A control transfer in a delay slot would
						// need the paper's repeated normalization;
						// real compilers do not emit it, so treat
						// the region as data (it shows up when a
						// data table carries a routine-like symbol).
						b.dataAt[a] = true
						b.dataAt[dsAddr] = true
						b.g.HasData = true
						b.g.Warnings = append(b.g.Warnings,
							fmt.Sprintf("control transfer in delay slot at %#x treated as data", dsAddr))
						break
					}
				}
			}
			fall := a + 4 + 4*uint32(delay)
			switch inst.Category() {
			case machine.CatBranch:
				if t, ok := inst.StaticTarget(a); ok {
					if b.inRoutine(t) {
						markLeader(t)
						push(t)
					} else {
						b.g.OutRefs = append(b.g.OutRefs, OutRef{From: a, Target: t})
					}
				}
				markLeader(fall)
				push(fall)
			case machine.CatJumpDirect:
				if t, ok := inst.StaticTarget(a); ok {
					if b.inRoutine(t) {
						markLeader(t)
						push(t)
					} else {
						b.g.OutRefs = append(b.g.OutRefs, OutRef{From: a, Target: t})
					}
				}
			case machine.CatCallDirect, machine.CatCallIndirect:
				if t, ok := inst.StaticTarget(a); ok {
					b.g.OutRefs = append(b.g.OutRefs, OutRef{From: a, Target: t, IsCall: true})
				}
				if fall < b.end {
					markLeader(fall)
					push(fall)
				}
			case machine.CatJumpIndirect:
				// Targets from a prior slicing pass become leaders;
				// otherwise the jump has no known successors yet.
				for _, t := range b.opts.IndirectTargets[a] {
					if b.inRoutine(t) {
						markLeader(t)
						push(t)
					}
				}
			case machine.CatReturn:
				// No successors inside the routine.
			}
			break
		}
	}
	return nil
}

// formBlocks groups content addresses into maximal straight-line
// blocks.  Content excludes addresses consumed as delay slots unless
// they are also explicit transfer targets.
func (b *builder) formBlocks() {
	for a := range b.reached {
		if b.dataAt[a] {
			continue
		}
		if b.dsOf[a] && !b.leader[a] {
			continue
		}
		b.content = append(b.content, a)
	}
	sort.Slice(b.content, func(i, j int) bool { return b.content[i] < b.content[j] })

	var cur *Block
	var prev uint32
	for _, a := range b.content {
		startNew := cur == nil || b.leader[a] || a != prev+4
		if !startNew {
			last := cur.Last()
			if last != nil && last.MI.Category().IsControl() {
				startNew = true
			}
		}
		if startNew {
			cur = b.g.NewBlock(KindNormal)
			b.g.ByAddr[a] = cur
		}
		cur.Insts = append(cur.Insts, Inst{Addr: a, MI: b.instAt(a)})
		prev = a
		if b.instAt(a).Category().IsControl() {
			cur = nil // force a new block after the transfer
		}
	}
}

// blockAt returns the block starting at a, splitting is never needed
// because all transfer targets were leaders during formation.
func (b *builder) blockAt(a uint32) *Block { return b.g.ByAddr[a] }

// dsBlock creates a delay-slot block holding the instruction at
// dsAddr.
func (b *builder) dsBlock(dsAddr uint32, uneditable bool) *Block {
	blk := b.g.NewBlock(KindDelaySlot)
	blk.Insts = []Inst{{Addr: dsAddr, MI: b.instAt(dsAddr)}}
	blk.Uneditable = uneditable
	return blk
}

// connect builds edges, hoisting delay slots per Fig 3.
func (b *builder) connect() {
	g := b.g
	for _, entry := range g.Entries {
		if blk := b.blockAt(entry); blk != nil {
			g.NewEdge(g.Entry, blk, EdgeEntry, false)
		}
	}
	// Iterate over a snapshot: connecting creates DS/surrogate blocks.
	normal := make([]*Block, 0, len(g.Blocks))
	for _, blk := range g.Blocks {
		if blk.Kind == KindNormal {
			normal = append(normal, blk)
		}
	}
	for _, blk := range normal {
		last := blk.Last()
		if last == nil {
			continue
		}
		a := last.Addr
		inst := last.MI
		if !inst.Category().IsControl() {
			// Fell off the block: leader split, data, or routine end.
			next := a + 4
			if b.dataAt[next] {
				blk.HasData = true
				g.NewEdge(blk, g.Exit, EdgeExit, true)
				continue
			}
			if nb := b.blockAt(next); nb != nil {
				g.NewEdge(blk, nb, EdgeFall, false)
			} else {
				// Falls out of the routine into the next one.
				g.OutRefs = append(g.OutRefs, OutRef{From: a, Target: next})
				g.NewEdge(blk, g.Exit, EdgeExit, true)
			}
			continue
		}

		delay := inst.DelaySlots()
		dsAddr := a + 4
		hasDS := delay == 1 && !inst.IsAnnulledUncond() && !b.dataAt[dsAddr]
		fall := a + 4 + 4*uint32(delay)
		target, hasTarget := inst.StaticTarget(a)

		// linkVia routes from→…→to through a fresh delay-slot copy
		// when the transfer executes its slot on that path.
		linkVia := func(withDS bool, to *Block, kind EdgeKind, unedit bool) {
			from := blk
			if withDS {
				ds := b.dsBlock(dsAddr, unedit)
				g.NewEdge(from, ds, kind, unedit)
				from = ds
			}
			g.NewEdge(from, to, kind, unedit)
		}
		takenDest := func() (*Block, bool) { // in-routine destination
			if !hasTarget {
				return nil, false
			}
			blkT := b.blockAt(target)
			return blkT, blkT != nil
		}

		switch inst.Category() {
		case machine.CatBranch:
			// Taken path always executes the slot; the untaken path
			// executes it only when the annul bit is clear (Fig 3).
			if dest, ok := takenDest(); ok {
				linkVia(hasDS, dest, EdgeTaken, false)
			} else {
				linkVia(hasDS, g.Exit, EdgeExit, true)
			}
			fallDS := hasDS && !inst.AnnulBit()
			if dest := b.blockAt(fall); dest != nil {
				linkVia(fallDS, dest, EdgeFall, false)
			} else {
				linkVia(fallDS, g.Exit, EdgeExit, true)
			}
		case machine.CatJumpDirect:
			if dest, ok := takenDest(); ok {
				linkVia(hasDS, dest, EdgeTaken, false)
			} else {
				linkVia(hasDS, g.Exit, EdgeExit, true)
			}
		case machine.CatCallDirect, machine.CatCallIndirect:
			// The slot runs before the callee; both it and the
			// surrogate would need interprocedural editing, so they
			// are uneditable (paper §3.3).
			surr := g.NewBlock(KindCallSurrogate)
			surr.Uneditable = true
			if hasTarget {
				surr.CallTarget = target
			}
			from := blk
			if hasDS {
				ds := b.dsBlock(dsAddr, true)
				g.NewEdge(from, ds, EdgeCall, true)
				from = ds
			}
			g.NewEdge(from, surr, EdgeCall, true)
			if dest := b.blockAt(fall); dest != nil {
				g.NewEdge(surr, dest, EdgeReturn, false)
			} else {
				g.NewEdge(surr, g.Exit, EdgeExit, true)
			}
		case machine.CatReturn:
			linkVia(hasDS, g.Exit, EdgeReturn, true)
		case machine.CatJumpIndirect:
			ij := &IndirectJump{Block: blk, Addr: a}
			targets, resolved := b.opts.IndirectTargets[a]
			var slot *Block
			from := blk
			if hasDS {
				// All paths through an indirect jump execute the
				// slot once, so one slot block fans out to every
				// target; it stays uneditable only while the jump
				// is unresolved.
				slot = b.dsBlock(dsAddr, !resolved)
				g.NewEdge(from, slot, EdgeTaken, !resolved)
				from = slot
			}
			ij.Slot = slot
			if resolved {
				ij.Resolved = true
				ij.RuntimeOnly = b.opts.ForceTranslate
				if ti, ok := b.opts.Tables[a]; ok {
					ij.TableAddr = ti.Addr
					ij.TableLen = ti.Len
					ij.Literal = ti.Literal
					ij.LiteralTarget = ti.Target
				}
				seen := map[*Block]bool{}
				for _, t := range targets {
					if dest := b.blockAt(t); dest != nil && !seen[dest] {
						seen[dest] = true
						g.NewEdge(from, dest, EdgeTaken, ij.RuntimeOnly)
					}
				}
				if len(seen) == 0 {
					g.NewEdge(from, g.Exit, EdgeExit, true)
				}
			} else {
				g.NewEdge(from, g.Exit, EdgeExit, true)
				g.Complete = false
			}
			g.IndirectJumps = append(g.IndirectJumps, ij)
		}
	}
}

// findUnreachableTail locates the first instruction in the routine's
// extent that no path reaches: the paper's evidence of a hidden
// routine (§3.1 step 4).  The unreached region is not necessarily a
// suffix: when a later address inside the extent is itself an entry
// point (a hidden routine called directly, discovered by symbol
// refinement), a hidden routine between the reachable parts forms an
// unreached *hole*.  Splitting at the first unreached real
// instruction handles both shapes; ControlFlowGraph re-runs on the
// split-off part, peeling one hidden routine per pass.
func (b *builder) findUnreachableTail() {
	if len(b.reached) == 0 {
		return
	}
	for a := b.start; a < b.end; a += 4 {
		if b.reached[a] {
			continue
		}
		// The delay slot of a reached annulled unconditional branch
		// (ba,a) is never executed and never marked reached, but it
		// is still part of this routine's code, not a hidden routine.
		if a >= b.start+4 && b.reached[a-4] {
			if prev := b.instAt(a - 4); prev.Valid() &&
				prev.DelaySlots() == 1 && prev.IsAnnulledUncond() {
				continue
			}
		}
		inst := b.instAt(a)
		// Skip padding: invalid words and the canonical nop
		// (sethi 0, %g0).  Any other valid instruction — including a
		// real sethi — marks hidden code.
		if inst.Valid() && inst.Word() != 0x01000000 {
			b.g.UnreachableTail = a
			return
		}
	}
}
