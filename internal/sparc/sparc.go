// Package sparc provides the SPARC V8 machine layer: the embedded
// spawn description (the Go analogue of the paper's Fig 7), the
// hand-written glue that resolves convention-level instruction
// overloads (Fig 6), assembly-syntax register names, and encoding
// helpers used by the assembler, snippets, and the program generator.
package sparc

import (
	"fmt"

	"eel/internal/machine"
	"eel/internal/spawn"
)

// DescriptionSource is the spawn machine description for SPARC V8.
// It is deliberately written in the style of the paper's Figure 7:
// field declarations, register files and aliases, encoding matrices
// ("pat"), and semantic bindings ("sem") built from parameterized
// semantic functions ("val").  Everything else in this package — and
// every machine-independent analysis above it — derives its SPARC
// knowledge from this text.
const DescriptionSource = `
machine sparc

// Instruction field definitions.
instruction{32} fields
  op 30:31, op2 22:24, op3 19:24, opf 5:13,
  rd 25:29, rs1 14:18, rs2 0:4, iflag 13:13,
  simm13 0:12, imm22 0:21, disp22 0:21,
  disp30 0:29, cond 25:28, aflag 29:29, asi 5:12

// Register files.  R[32]=Y, R[33]=PSR (icc), R[34]=FSR (fcc).
register integer{32} R[35]
alias integer{32} Y is R[32]
alias integer{32} PSR is R[33]
alias integer{32} FSR is R[34]
register float{32} F[32]
register integer{32} pc
zero is R[0]

// ---- Encodings (syntax) ----

pat sethi is op=0 && op2=0b100

pat [ bn be ble bl bleu bcs bneg bvs ba bne bg bge bgu bcc bpos bvc ]
  is op=0 && op2=0b010 && cond=[0..15]

pat [ fbn fbne fblg fbul fbl fbug fbg fbu fba fbe fbue fbge fbuge fble fbule fbo ]
  is op=0 && op2=0b110 && cond=[0..15]

pat call is op=1

pat [ add  and   or    xor   sub   andn   orn   xnor
      addx _     umul  smul  subx  _      udiv  sdiv
      addcc andcc orcc xorcc subcc andncc orncc xnorcc
      _    _     _     _     _     _      _     _ ]
  is op=2 && op3=[0b000000..0b011111]

pat [ sll srl sra ] is op=2 && op3=[0b100101 0b100110 0b100111]
pat rdy is op=2 && op3=0b101000
pat wry is op=2 && op3=0b110000
pat jmpl is op=2 && op3=0b111000
pat ta is op=2 && op3=0b111010 && cond=8
pat save is op=2 && op3=0b111100
pat restore is op=2 && op3=0b111101

pat [ ld ldub lduh ldd st stb sth std _ ldsb ldsh _ _ ldstub _ swap ]
  is op=3 && op3=[0b000000..0b001111]
pat [ ldf stf ] is op=3 && op3=[0b100000 0b100100]

pat [ fmovs fnegs fabss ] is op=2 && op3=0b110100 && opf=[0b000000001 0b000000101 0b000001001]
pat [ fadds fsubs fmuls fdivs ] is op=2 && op3=0b110100 && opf=[0b001000001 0b001000101 0b001001001 0b001001101]
pat fitos is op=2 && op3=0b110100 && opf=0b011000100
pat fstoi is op=2 && op3=0b110100 && opf=0b011010001
pat fcmps is op=2 && op3=0b110101 && opf=0b001010001

// ---- Semantics ----

// Register-or-immediate second operand and effective address.
val op2v is iflag = 1 ? sex(simm13) : R[rs2]
val ea is R[rs1] + op2v
val disp is shl(sex(disp22), 2)

// Conditional branches: compute the target now; the transfer
// overlaps the next instruction (delay slot); an untaken annulled
// branch suppresses the slot.
val branch is \r.\t.(tgt := pc + disp ; (t r) ? pc := tgt : (aflag = 1 ? annul))

sem [ bn be ble bl bleu bcs bneg bvs ba bne bg bge bgu bcc bpos bvc ]
  is branch PSR @ ['n 'e 'le 'l 'leu 'cs 'neg 'vs 'a 'ne 'g 'ge 'gu 'cc 'pos 'vc]
sem [ fbn fbne fblg fbul fbl fbug fbg fbu fba fbe fbue fbge fbuge fble fbule fbo ]
  is branch FSR @ ['fn 'fne 'flg 'ful 'fl 'fug 'fg 'fu 'fa 'fe 'fue 'fge 'fuge 'fle 'fule 'fo]

// Branch-always/never annul semantics differ from the conditional
// form (SPARC's a-bit on ba/fba annuls unconditionally), so they are
// rebound after the matrix.
sem ba is tgt := pc + disp ; pc := tgt, (aflag = 1 ? annul)
sem fba is tgt := pc + disp ; pc := tgt, (aflag = 1 ? annul)
sem bn is aflag = 1 ? annul
sem fbn is aflag = 1 ? annul

sem sethi is R[rd] := shl(imm22, 10)
sem call is t := pc + shl(sex(disp30), 2), R[15] := pc ; pc := t
sem jmpl is t := ea, R[rd] := pc ; pc := t

sem add is R[rd] := R[rs1] + op2v
sem sub is R[rd] := R[rs1] - op2v
sem and is R[rd] := R[rs1] & op2v
sem or is R[rd] := R[rs1] | op2v
sem xor is R[rd] := R[rs1] ^ op2v
sem andn is R[rd] := R[rs1] & ~op2v
sem orn is R[rd] := R[rs1] | ~op2v
sem xnor is R[rd] := ~(R[rs1] ^ op2v)
sem addx is R[rd] := R[rs1] + op2v + (shr(PSR, 20) & 1)
sem subx is R[rd] := R[rs1] - op2v - (shr(PSR, 20) & 1)
sem umul is R[rd] := umul(R[rs1], op2v)
sem smul is R[rd] := smul(R[rs1], op2v)
sem udiv is R[rd] := udiv(R[rs1], op2v)
sem sdiv is R[rd] := sdiv(R[rs1], op2v)

sem addcc is R[rd] := R[rs1] + op2v, PSR := cc_add(R[rs1], op2v)
sem subcc is R[rd] := R[rs1] - op2v, PSR := cc_sub(R[rs1], op2v)
sem andcc is R[rd] := R[rs1] & op2v, PSR := cc_logic(R[rs1] & op2v)
sem orcc is R[rd] := R[rs1] | op2v, PSR := cc_logic(R[rs1] | op2v)
sem xorcc is R[rd] := R[rs1] ^ op2v, PSR := cc_logic(R[rs1] ^ op2v)
sem andncc is R[rd] := R[rs1] & ~op2v, PSR := cc_logic(R[rs1] & ~op2v)
sem orncc is R[rd] := R[rs1] | ~op2v, PSR := cc_logic(R[rs1] | ~op2v)
sem xnorcc is R[rd] := ~(R[rs1] ^ op2v), PSR := cc_logic(~(R[rs1] ^ op2v))

sem sll is R[rd] := shl(R[rs1], op2v)
sem srl is R[rd] := shr(R[rs1], op2v)
sem sra is R[rd] := sar(R[rs1], op2v)
sem rdy is R[rd] := Y
sem wry is Y := R[rs1] ^ op2v
sem save is winsave(ea, rd)
sem restore is winrestore(ea, rd)
sem ta is trap(op2v)

sem ld is R[rd] := M[ea]{4}
sem ldub is R[rd] := M[ea]{1}
sem lduh is R[rd] := M[ea]{2}
sem ldsb is R[rd] := sexb(M[ea]{1})
sem ldsh is R[rd] := sexh(M[ea]{2})
sem ldd is R[rd] := M[ea]{4}, R[rd | 1] := M[ea + 4]{4}
sem st is M[ea]{4} := R[rd]
sem stb is M[ea]{1} := R[rd]
sem sth is M[ea]{2} := R[rd]
sem std is M[ea]{4} := R[rd], M[ea + 4]{4} := R[rd | 1]
sem ldstub is R[rd] := M[ea]{1}, M[ea]{1} := 255
sem swap is R[rd] := M[ea]{4}, M[ea]{4} := R[rd]
sem ldf is F[rd] := M[ea]{4}
sem stf is M[ea]{4} := F[rd]

sem fmovs is F[rd] := F[rs2]
sem fnegs is F[rd] := fneg(F[rs2])
sem fabss is F[rd] := fabs(F[rs2])
sem fadds is F[rd] := fadd(F[rs1], F[rs2])
sem fsubs is F[rd] := fsub(F[rs1], F[rs2])
sem fmuls is F[rd] := fmul(F[rs1], F[rs2])
sem fdivs is F[rd] := fdiv(F[rs1], F[rs2])
sem fitos is F[rd] := fitos(F[rs2])
sem fstoi is F[rd] := fstoi(F[rs2])
sem fcmps is FSR := fcmp(F[rs1], F[rs2])
`

// Well-known SPARC registers in the machine-independent space.
const (
	RegG0 machine.Reg = 0 // hardwired zero
	RegG1 machine.Reg = 1 // system-call number (our ABI)
	RegO0 machine.Reg = 8 // first argument / return value
	RegO1 machine.Reg = 9
	RegO2 machine.Reg = 10
	RegO3 machine.Reg = 11
	RegSP machine.Reg = 14 // %sp = %o6
	RegO7 machine.Reg = 15 // call return address
	RegL0 machine.Reg = 16
	RegI7 machine.Reg = 31 // saved return address (windowed)
	RegFP machine.Reg = 30 // %fp = %i6
)

var desc = spawn.MustParseDesc(DescriptionSource)

func init() {
	machine.RegisterArch(machine.ArchInfo{
		Name:       "sparc",
		NewDecoder: func() machine.Decoder { return NewDecoder() },
		Trap: machine.TrapModel{
			Code:     0, // "ta 0"
			NumReg:   int(RegG1),
			Args:     [3]int{int(RegO0), int(RegO1), int(RegO2)},
			Ret:      int(RegO0),
			SysExit:  1,
			SysWrite: 4,
		},
		RoutineTier: true,
		Lockstep:    true,
	})
}

// Desc returns the compiled SPARC description.
func Desc() *spawn.Desc { return desc }

// NewDecoder returns a fresh SPARC decoder (with its own intern
// cache and sharing statistics).
func NewDecoder() *spawn.TableDecoder {
	return spawn.NewDecoder(desc, Glue, RegName)
}

// Glue refines spawn's derived classification with SPARC calling and
// trap conventions — the hand-written residue the paper's Figure 6
// shows: jmpl's three overloaded uses and the system-call idiom.
func Glue(d *spawn.Desc, def *spawn.InstDef, spec *machine.InstSpec) {
	get := func(name string) uint32 {
		for _, f := range spec.Fields {
			if f.Name == name {
				return f.Val
			}
		}
		return 0
	}
	switch def.Name {
	case "jmpl":
		rd, rs1 := get("rd"), get("rs1")
		iflag, simm := get("iflag"), get("simm13")
		switch {
		case rd == 15:
			spec.Cat = machine.CatCallIndirect
		case rd == 0 && iflag == 1 && simm == 8 && (rs1 == 15 || rs1 == 31):
			spec.Cat = machine.CatReturn
		case rd == 0 && rs1 == 0 && iflag == 1:
			// Jump to a literal address ("IS LITERAL && READ 1 == 0"
			// in Fig 6): spawn already proved the target static via
			// the hardwired zero.
			spec.Cat = machine.CatJumpDirect
		case rd == 0:
			spec.Cat = machine.CatJumpIndirect
		default:
			// Link into an unusual register: an indirect jump that
			// also records pc; treat as indirect jump.
			spec.Cat = machine.CatJumpIndirect
		}
	case "ta":
		// System calls read the call number and arguments under our
		// ABI (%g1 number, %o0-%o3 arguments) and write the result
		// register; liveness must see that.
		spec.Reads = spec.Reads.Add(RegG1).Add(RegO0).Add(RegO1).Add(RegO2).Add(RegO3)
		spec.Writes = spec.Writes.Add(RegO0)
	}
}

// RegName renders a register in SPARC assembly syntax.
func RegName(r machine.Reg) string {
	switch {
	case r == RegSP:
		return "%sp"
	case r == RegFP:
		return "%fp"
	case r < 8:
		return fmt.Sprintf("%%g%d", r)
	case r < 16:
		return fmt.Sprintf("%%o%d", r-8)
	case r < 24:
		return fmt.Sprintf("%%l%d", r-16)
	case r < 32:
		return fmt.Sprintf("%%i%d", r-24)
	case r == machine.RegY:
		return "%y"
	case r == machine.RegPSR:
		return "%psr"
	case r == machine.RegFSR:
		return "%fsr"
	case r == machine.RegPC:
		return "%pc"
	case r.IsFloat():
		return fmt.Sprintf("%%f%d", r-machine.FloatBase)
	}
	return fmt.Sprintf("%%r%d", r)
}

// ParseReg parses a SPARC register name ("%g0", "%o7", "%l3", "%i2",
// "%sp", "%fp", "%f5").
func ParseReg(s string) (machine.Reg, error) {
	if len(s) < 2 || s[0] != '%' {
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	switch s {
	case "%sp":
		return RegSP, nil
	case "%fp":
		return RegFP, nil
	case "%y":
		return machine.RegY, nil
	}
	var n int
	if _, err := fmt.Sscanf(s[2:], "%d", &n); err != nil || n < 0 {
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	var base machine.Reg
	switch s[1] {
	case 'g':
		base = 0
	case 'o':
		base = 8
	case 'l':
		base = 16
	case 'i':
		base = 24
	case 'f':
		if n > 31 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return machine.FloatBase + machine.Reg(n), nil
	case 'r':
		if n >= 32 {
			return 0, fmt.Errorf("sparc: bad register %q", s)
		}
		return machine.Reg(n), nil
	default:
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	if n > 7 {
		return 0, fmt.Errorf("sparc: bad register %q", s)
	}
	return base + machine.Reg(n), nil
}
