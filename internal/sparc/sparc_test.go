package sparc

import (
	"testing"

	"eel/internal/machine"
)

func decode(t *testing.T, word uint32) *machine.Inst {
	t.Helper()
	return NewDecoder().Decode(word)
}

func enc3(t *testing.T, name string, rd, rs1, rs2 machine.Reg) uint32 {
	t.Helper()
	w, err := EncodeOp3(name, rd, rs1, rs2)
	if err != nil {
		t.Fatalf("EncodeOp3(%s): %v", name, err)
	}
	return w
}

func encImm(t *testing.T, name string, rd, rs1 machine.Reg, imm int32) uint32 {
	t.Helper()
	w, err := EncodeOp3Imm(name, rd, rs1, imm)
	if err != nil {
		t.Fatalf("EncodeOp3Imm(%s): %v", name, err)
	}
	return w
}

func TestDescriptionCompiles(t *testing.T) {
	d := Desc()
	if d.MachineName != "sparc" {
		t.Fatalf("machine name = %q", d.MachineName)
	}
	if len(d.Insts) < 70 {
		t.Fatalf("too few instructions derived: %d", len(d.Insts))
	}
}

func TestAddDecodes(t *testing.T) {
	w := enc3(t, "add", 3, 1, 2) // add %g1, %g2, %g3
	inst := decode(t, w)
	if inst.Name() != "add" || inst.Category() != machine.CatCompute {
		t.Fatalf("got %s cat=%s", inst.Name(), inst.Category())
	}
	if !inst.Reads().Equal(machine.NewRegSet(1, 2)) {
		t.Errorf("reads = %s, want {r1,r2}", inst.Reads())
	}
	if !inst.Writes().Equal(machine.NewRegSet(3)) {
		t.Errorf("writes = %s, want {r3}", inst.Writes())
	}
}

func TestAddImmediateReadsOnlyRS1(t *testing.T) {
	w := encImm(t, "add", 3, 1, 42)
	inst := decode(t, w)
	if !inst.Reads().Equal(machine.NewRegSet(1)) {
		t.Errorf("reads = %s, want {r1}", inst.Reads())
	}
}

func TestZeroRegisterSuppressed(t *testing.T) {
	// or %g0, 5, %g1 — reads nothing (g0 is hardwired zero).
	w := encImm(t, "or", 1, 0, 5)
	inst := decode(t, w)
	if !inst.Reads().IsEmpty() {
		t.Errorf("reads = %s, want empty", inst.Reads())
	}
	// Writes to %g0 are discarded: nop = sethi 0,%g0.
	nop := decode(t, Nop())
	if !nop.Writes().IsEmpty() {
		t.Errorf("nop writes = %s, want empty", nop.Writes())
	}
}

func TestCondBranch(t *testing.T) {
	w, err := EncodeBranch("bne", false, 12)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if inst.Category() != machine.CatBranch {
		t.Fatalf("bne category = %s", inst.Category())
	}
	if !inst.Conditional() || inst.DelaySlots() != 1 || inst.AnnulBit() {
		t.Errorf("cond=%v slots=%d annul=%v", inst.Conditional(), inst.DelaySlots(), inst.AnnulBit())
	}
	if tgt, ok := inst.StaticTarget(0x1000); !ok || tgt != 0x1000+48 {
		t.Errorf("target = %#x ok=%v, want %#x", tgt, ok, 0x1000+48)
	}
	if !inst.Reads().Has(machine.RegPSR) {
		t.Errorf("bne should read PSR, reads=%s", inst.Reads())
	}
}

func TestAnnulledBranch(t *testing.T) {
	w, err := EncodeBranch("be", true, -4)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if !inst.AnnulBit() {
		t.Error("annul bit not derived")
	}
	if tgt, ok := inst.StaticTarget(0x2000); !ok || tgt != 0x2000-16 {
		t.Errorf("target = %#x ok=%v", tgt, ok)
	}
}

func TestBranchAlways(t *testing.T) {
	w, err := EncodeBranch("ba", false, 2)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if inst.Category() != machine.CatJumpDirect {
		t.Fatalf("ba category = %s", inst.Category())
	}
	if inst.Conditional() {
		t.Error("ba should be unconditional")
	}
	wa, err := EncodeBranch("ba", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	ia := decode(t, wa)
	if !ia.IsAnnulledUncond() {
		t.Error("ba,a should annul its delay slot unconditionally")
	}
}

func TestCall(t *testing.T) {
	w, err := EncodeCall(100)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if inst.Category() != machine.CatCallDirect {
		t.Fatalf("call category = %s", inst.Category())
	}
	if !inst.Writes().Has(RegO7) {
		t.Errorf("call writes = %s, want o7 link", inst.Writes())
	}
	if tgt, ok := inst.StaticTarget(0x4000); !ok || tgt != 0x4000+400 {
		t.Errorf("call target = %#x ok=%v", tgt, ok)
	}
	if inst.DelaySlots() != 1 {
		t.Errorf("call delay slots = %d", inst.DelaySlots())
	}
}

func TestJmplOverloadResolution(t *testing.T) {
	// Figure 6's three overloaded uses of jmpl.
	cases := []struct {
		name string
		word func() (uint32, error)
		want machine.Category
	}{
		{"indirect call: jmpl %g1+0, %o7", func() (uint32, error) {
			return EncodeOp3Imm("jmpl", RegO7, RegG1, 0)
		}, machine.CatCallIndirect},
		{"retl: jmpl %o7+8, %g0", func() (uint32, error) {
			return EncodeOp3Imm("jmpl", RegG0, RegO7, 8)
		}, machine.CatReturn},
		{"ret: jmpl %i7+8, %g0", func() (uint32, error) {
			return EncodeOp3Imm("jmpl", RegG0, RegI7, 8)
		}, machine.CatReturn},
		{"literal jump: jmpl %g0+64, %g0", func() (uint32, error) {
			return EncodeOp3Imm("jmpl", RegG0, RegG0, 64)
		}, machine.CatJumpDirect},
		{"indirect jump: jmpl %l0+0, %g0", func() (uint32, error) {
			return EncodeOp3Imm("jmpl", RegG0, RegL0, 0)
		}, machine.CatJumpIndirect},
	}
	for _, c := range cases {
		w, err := c.word()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		inst := decode(t, w)
		if inst.Category() != c.want {
			t.Errorf("%s: category = %s, want %s", c.name, inst.Category(), c.want)
		}
	}
}

func TestLiteralJumpTarget(t *testing.T) {
	w, err := EncodeOp3Imm("jmpl", RegG0, RegG0, 64)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if tgt, ok := inst.StaticTarget(0x9999); !ok || tgt != 64 {
		t.Errorf("literal jump target = %#x ok=%v, want 64", tgt, ok)
	}
}

func TestLoadsAndStores(t *testing.T) {
	cases := []struct {
		name  string
		cat   machine.Category
		width int
	}{
		{"ld", machine.CatLoad, 4},
		{"ldub", machine.CatLoad, 1},
		{"ldsh", machine.CatLoad, 2},
		{"ldd", machine.CatLoad, 8},
		{"st", machine.CatStore, 4},
		{"stb", machine.CatStore, 1},
		{"std", machine.CatStore, 8},
		{"swap", machine.CatLoadStore, 4},
		{"ldstub", machine.CatLoadStore, 1},
	}
	for _, c := range cases {
		w := encImm(t, c.name, 2, 1, 16)
		inst := decode(t, w)
		if inst.Category() != c.cat {
			t.Errorf("%s: category = %s, want %s", c.name, inst.Category(), c.cat)
		}
		if inst.MemWidth() != c.width {
			t.Errorf("%s: width = %d, want %d", c.name, inst.MemWidth(), c.width)
		}
	}
}

func TestStoreReadsDataAndAddress(t *testing.T) {
	w := enc3(t, "st", 5, 1, 2) // st %g5, [%g1+%g2]
	inst := decode(t, w)
	if !inst.Reads().Equal(machine.NewRegSet(1, 2, 5)) {
		t.Errorf("st reads = %s", inst.Reads())
	}
	if !inst.Writes().IsEmpty() {
		t.Errorf("st writes = %s", inst.Writes())
	}
}

func TestCCInstructions(t *testing.T) {
	w := enc3(t, "subcc", 0, 1, 2) // cmp %g1, %g2
	inst := decode(t, w)
	if !inst.Writes().Has(machine.RegPSR) {
		t.Errorf("subcc writes = %s, want PSR", inst.Writes())
	}
	// subcc with rd=%g0 writes only PSR.
	if inst.Writes().Has(0) || inst.Writes().Len() != 1 {
		t.Errorf("subcc %%g0 writes = %s", inst.Writes())
	}
}

func TestSystemCall(t *testing.T) {
	w, err := EncodeTa(0)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if inst.Category() != machine.CatSystem {
		t.Fatalf("ta category = %s", inst.Category())
	}
	if !inst.Reads().Has(RegG1) || !inst.Reads().Has(RegO0) {
		t.Errorf("ta reads = %s, want syscall ABI registers", inst.Reads())
	}
}

func TestSaveRestoreBarrier(t *testing.T) {
	w := encImm(t, "save", RegSP, RegSP, -96)
	inst := decode(t, w)
	if inst.Reads().Len() < 30 || inst.Writes().Len() < 30 {
		t.Errorf("save should touch the whole integer file: reads=%d writes=%d",
			inst.Reads().Len(), inst.Writes().Len())
	}
}

func TestInvalidWordDecodes(t *testing.T) {
	// 0x00000000 is UNIMP (op=0 op2=000): undefined in the
	// description, so it must decode to the invalid category —
	// that's how EEL tells data from instructions (paper §4).
	inst := decode(t, 0)
	if inst.Valid() {
		t.Fatalf("word 0 decoded as %s", inst.Name())
	}
	inst2 := decode(t, 0xffffffff)
	if inst2.Valid() {
		t.Fatalf("word ~0 decoded as %s", inst2.Name())
	}
}

func TestFloatOps(t *testing.T) {
	w := enc3(t, "fadds", machine.FloatBase+2, machine.FloatBase, machine.FloatBase+1)
	inst := decode(t, w)
	if inst.Category() != machine.CatCompute {
		t.Fatalf("fadds category = %s", inst.Category())
	}
	if !inst.Reads().Has(machine.FloatBase) || !inst.Reads().Has(machine.FloatBase+1) {
		t.Errorf("fadds reads = %s", inst.Reads())
	}
	if !inst.Writes().Has(machine.FloatBase + 2) {
		t.Errorf("fadds writes = %s", inst.Writes())
	}
	wc := enc3(t, "fcmps", 0, machine.FloatBase, machine.FloatBase+1)
	ic := decode(t, wc)
	if !ic.Writes().Has(machine.RegFSR) {
		t.Errorf("fcmps writes = %s, want FSR", ic.Writes())
	}
}

func TestFloatBranchReadsFSR(t *testing.T) {
	w, err := EncodeBranch("fbl", false, 4)
	if err != nil {
		t.Fatal(err)
	}
	inst := decode(t, w)
	if inst.Category() != machine.CatBranch {
		t.Fatalf("fbl category = %s", inst.Category())
	}
	if !inst.Reads().Has(machine.RegFSR) {
		t.Errorf("fbl reads = %s, want FSR", inst.Reads())
	}
}

func TestInterning(t *testing.T) {
	dec := NewDecoder()
	w := enc3(t, "add", 3, 1, 2)
	a := dec.Decode(w)
	b := dec.Decode(w)
	if a != b {
		t.Error("same word should return the same *Inst")
	}
	decodes, unique := dec.SharingStats()
	if decodes != 2 || unique != 1 {
		t.Errorf("stats = %d/%d, want 2/1", decodes, unique)
	}
}

func TestRegNameRoundTrip(t *testing.T) {
	for r := machine.Reg(0); r < 32; r++ {
		got, err := ParseReg(RegName(r))
		if err != nil || got != r {
			t.Errorf("round trip r%d: got %v err %v", r, got, err)
		}
	}
	if r, err := ParseReg("%sp"); err != nil || r != RegSP {
		t.Errorf("%%sp = %v, %v", r, err)
	}
	if _, err := ParseReg("%q3"); err == nil {
		t.Error("bad register accepted")
	}
}

func TestSethiPatching(t *testing.T) {
	w, err := EncodeSethi(RegG1, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := uint32(0x12345678)
	w = SetSethiHi(w, addr)
	inst := decode(t, w)
	imm, _ := inst.Field("imm22")
	if imm != addr>>10 {
		t.Errorf("imm22 = %#x, want %#x", imm, addr>>10)
	}
	or, err := EncodeOp3Imm("or", RegG1, RegG1, 0)
	if err != nil {
		t.Fatal(err)
	}
	or = SetSimm13Lo(or, addr)
	io := decode(t, or)
	lo, _ := io.Field("simm13")
	if lo != addr&0x3ff {
		t.Errorf("simm13 = %#x, want %#x", lo, addr&0x3ff)
	}
	if Hi(addr)<<10|Lo(addr) != addr {
		t.Error("Hi/Lo do not reconstruct the address")
	}
}

func TestBranchDisplacementRange(t *testing.T) {
	if _, err := EncodeBranch("bne", false, 1<<21); err == nil {
		t.Error("overflowing displacement accepted")
	}
	if _, err := EncodeBranch("bne", false, -(1<<21)-1); err == nil {
		t.Error("underflowing displacement accepted")
	}
}

func TestPatternsDisjoint(t *testing.T) {
	// Every instruction's match word must decode back to itself:
	// patterns may not shadow one another.
	for _, def := range Desc().Insts {
		got := Desc().DecodeRaw(def.Match)
		if got == nil || got.Name != def.Name {
			name := "<nil>"
			if got != nil {
				name = got.Name
			}
			t.Errorf("match word of %s decodes to %s", def.Name, name)
		}
	}
}
