package sparc

import (
	"testing"
	"testing/quick"

	"eel/internal/machine"
)

func dis(t *testing.T, w uint32, pc uint32) string {
	t.Helper()
	return Disasm(sharedDec.Decode(w), pc)
}

func TestDisasmForms(t *testing.T) {
	enc := func(w uint32, err error) uint32 {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	cases := []struct {
		word uint32
		pc   uint32
		want string
	}{
		{enc(EncodeOp3Imm("add", 3, 1, 5)), 0, "add %g1, 5, %g3"},
		{enc(EncodeOp3("sub", 8, 16, 17)), 0, "sub %l0, %l1, %o0"},
		{enc(EncodeOp3Imm("ld", 2, 1, 8)), 0, "ld [%g1+8], %g2"},
		{enc(EncodeOp3("st", 5, 1, 2)), 0, "st %g5, [%g1+%g2]"},
		{enc(EncodeBranch("bne", false, 4)), 0x1000, "bne 0x1010"},
		{enc(EncodeBranch("be", true, -4)), 0x1000, "be,a 0xff0"},
		{enc(EncodeCall(16)), 0x2000, "call 0x2040"},
		{enc(EncodeOp3Imm("jmpl", 0, RegO7, 8)), 0, "retl"},
		{enc(EncodeOp3Imm("jmpl", 0, RegI7, 8)), 0, "ret"},
		{enc(EncodeOp3Imm("jmpl", 0, RegL0, 0)), 0, "jmp [%l0]"},
		{enc(EncodeTa(0)), 0, "ta 0"},
		{Nop(), 0, "nop"},
		{enc(EncodeOp3("fadds", machine.FloatBase+2, machine.FloatBase, machine.FloatBase+1)), 0, "fadds %f0, %f1, %f2"},
		{enc(EncodeOp3Imm("save", RegSP, RegSP, -96)), 0, "save %sp, -96, %sp"},
		{0, 0, ".word 0x00000000"},
	}
	for _, c := range cases {
		if got := dis(t, c.word, c.pc); got != c.want {
			t.Errorf("Disasm(%08x) = %q, want %q", c.word, got, c.want)
		}
	}
}

func TestDisasmNeverPanicsAndNeverEmpty(t *testing.T) {
	f := func(w uint32, pc uint32) bool {
		s := Disasm(sharedDec.Decode(w), pc&^3)
		return s != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstRegIdentityAndTargets(t *testing.T) {
	// from == to is the identity.
	w, _ := EncodeOp3("add", 3, 1, 2)
	if SubstReg(w, 1, 1) != w {
		t.Error("self-substitution changed the word")
	}
	// Branch displacement bits must never be touched even when they
	// numerically contain the register value.
	b, _ := EncodeBranch("bne", false, int32(5)) // disp22=5 ≈ rs2=5 bits
	if SubstReg(b, 5, 9) != b {
		t.Error("branch word rewritten")
	}
	c, _ := EncodeCall(12345)
	if SubstReg(c, 3, 4) != c {
		t.Error("call word rewritten")
	}
}

func TestSubstRegRewritesOperands(t *testing.T) {
	w, _ := EncodeOp3("add", 3, 1, 2)
	got := SubstReg(w, 1, 20)
	inst := sharedDec.Decode(got)
	if !inst.Reads().Has(20) || inst.Reads().Has(1) {
		t.Errorf("reads = %s", inst.Reads())
	}
	// Immediate form: rs2 bits hold the immediate, not a register.
	wi, _ := EncodeOp3Imm("add", 3, 1, 2) // simm13 = 2
	gi := SubstReg(wi, 2, 20)
	simm, _ := sharedDec.Decode(gi).Field("simm13")
	if simm != 2 {
		t.Errorf("immediate rewritten: %d", simm)
	}
}

func TestSubstRegFloatUntouched(t *testing.T) {
	w, _ := EncodeOp3("fadds", machine.FloatBase+1, machine.FloatBase+1, machine.FloatBase+1)
	if SubstReg(w, 1, 9) != w {
		t.Error("fp word rewritten")
	}
	ldf, _ := EncodeOp3Imm("ldf", machine.FloatBase+3, 3, 0)
	got := SubstReg(ldf, 3, 9)
	// rs1 (integer base) rewritten, rd (fp) kept.
	inst := sharedDec.Decode(got)
	if !inst.Reads().Has(9) {
		t.Errorf("base not rewritten: %s", inst.Reads())
	}
	if !inst.Writes().Has(machine.FloatBase + 3) {
		t.Errorf("fp destination corrupted: %s", inst.Writes())
	}
}

func TestSubstRegsSimultaneous(t *testing.T) {
	// Swapping two registers through a cyclic assignment must not
	// cascade.
	w, _ := EncodeOp3("add", 16, 16, 17) // add %l0, %l1, %l0
	got := SubstRegs(w, map[machine.Reg]machine.Reg{16: 17, 17: 16})
	inst := sharedDec.Decode(got)
	if !inst.Reads().Equal(machine.NewRegSet(16, 17)) {
		t.Errorf("reads = %s", inst.Reads())
	}
	if !inst.Writes().Has(17) || inst.Writes().Has(16) {
		t.Errorf("writes = %s", inst.Writes())
	}
}

func TestSubstRegTrapCondUntouched(t *testing.T) {
	// ta's rd bit positions hold the trap condition, and the syscall
	// convention's registers (%g1 in, %o0 out) are not named by any
	// field — substituting them must leave the word alone.  (0x91d025c1
	// is ta with cond=always; rewriting "rd" 8→1 turned it into an
	// undecodable word.)
	const ta = uint32(0x91d025c1)
	for _, r := range []machine.Reg{1, 8} {
		if got := SubstReg(ta, r, 20); got != ta {
			t.Errorf("SubstReg(ta, %d, 20) = %#x, want unchanged %#x", r, got, ta)
		}
	}
}

// TestSubstRegSemanticsPreserved: substituting a register that the
// instruction does not mention leaves decode-visible behaviour
// identical.
func TestSubstRegSemanticsPreserved(t *testing.T) {
	f := func(w uint32, from8, to8 uint8) bool {
		from := machine.Reg(from8 % 32)
		to := machine.Reg(to8 % 32)
		before := sharedDec.Decode(w)
		after := sharedDec.Decode(SubstReg(w, from, to))
		if before.Name() != after.Name() || before.Category() != after.Category() {
			return false
		}
		// If the original didn't touch `from`, nothing changes.
		if !before.Reads().Has(from) && !before.Writes().Has(from) {
			return after.Word() == before.Word()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func TestWritesPSR(t *testing.T) {
	cc, _ := EncodeOp3("subcc", 0, 1, 2)
	plain, _ := EncodeOp3("sub", 3, 1, 2)
	if !WritesPSR(cc) || WritesPSR(plain) {
		t.Error("WritesPSR misclassifies")
	}
}
