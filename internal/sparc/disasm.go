package sparc

import (
	"fmt"

	"eel/internal/machine"
)

// Disasm renders the instruction at pc in SPARC assembly syntax.
// Invalid words render as ".word 0x...".
func Disasm(inst *machine.Inst, pc uint32) string {
	if !inst.Valid() {
		return fmt.Sprintf(".word %#08x", inst.Word())
	}
	f := func(name string) uint32 { v, _ := inst.Field(name); return v }
	rd := machine.Reg(f("rd"))
	rs1 := machine.Reg(f("rs1"))
	rs2 := machine.Reg(f("rs2"))
	simm := int32(f("simm13")<<19) >> 19

	op2str := func() string {
		if f("iflag") == 1 {
			return fmt.Sprintf("%d", simm)
		}
		return RegName(rs2)
	}
	addr := func() string {
		if f("iflag") == 1 {
			if simm == 0 {
				return fmt.Sprintf("[%s]", RegName(rs1))
			}
			return fmt.Sprintf("[%s%+d]", RegName(rs1), simm)
		}
		return fmt.Sprintf("[%s+%s]", RegName(rs1), RegName(rs2))
	}
	annul := ""
	if inst.AnnulBit() {
		annul = ",a"
	}

	name := inst.Name()
	switch inst.Category() {
	case machine.CatBranch, machine.CatJumpDirect:
		if t, ok := inst.StaticTarget(pc); ok {
			if name == "jmpl" {
				return fmt.Sprintf("jmp %#x", t)
			}
			return fmt.Sprintf("%s%s %#x", name, annul, t)
		}
	case machine.CatCallDirect:
		if t, ok := inst.StaticTarget(pc); ok {
			return fmt.Sprintf("call %#x", t)
		}
	case machine.CatCallIndirect:
		return fmt.Sprintf("call %s", addr())
	case machine.CatReturn:
		if rs1 == RegO7 {
			return "retl"
		}
		return "ret"
	case machine.CatJumpIndirect:
		return fmt.Sprintf("jmp %s", addr())
	case machine.CatLoad, machine.CatStore, machine.CatLoadStore:
		dataReg := RegName(rd)
		if name == "ldf" || name == "stf" {
			dataReg = fmt.Sprintf("%%f%d", rd)
		}
		if inst.Category() == machine.CatStore {
			return fmt.Sprintf("%s %s, %s", name, dataReg, addr())
		}
		return fmt.Sprintf("%s %s, %s", name, addr(), dataReg)
	case machine.CatSystem:
		return fmt.Sprintf("ta %d", simm)
	}

	switch name {
	case "sethi":
		if inst.Word() == Nop() {
			return "nop"
		}
		return fmt.Sprintf("sethi %%hi(%#x), %s", f("imm22")<<10, RegName(rd))
	case "rdy":
		return fmt.Sprintf("rd %%y, %s", RegName(rd))
	case "wry":
		return fmt.Sprintf("wr %s, %%y", RegName(rs1))
	case "save", "restore":
		return fmt.Sprintf("%s %s, %s, %s", name, RegName(rs1), op2str(), RegName(rd))
	case "fmovs", "fnegs", "fabss", "fitos", "fstoi":
		return fmt.Sprintf("%s %%f%d, %%f%d", name, rs2, rd)
	case "fcmps":
		return fmt.Sprintf("fcmps %%f%d, %%f%d", rs1, rs2)
	case "fadds", "fsubs", "fmuls", "fdivs":
		return fmt.Sprintf("%s %%f%d, %%f%d, %%f%d", name, rs1, rs2, rd)
	}
	return fmt.Sprintf("%s %s, %s, %s", name, RegName(rs1), op2str(), RegName(rd))
}
