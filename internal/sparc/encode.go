package sparc

import (
	"fmt"

	"eel/internal/machine"
)

// Encoding helpers build SPARC instruction words from the compiled
// description's field layout, so the assembler, snippets, and
// program generator share one source of encoding truth.

func mustField(name string) func(word, v uint32) uint32 {
	f, ok := desc.Field(name)
	if !ok {
		panic("sparc: missing field " + name)
	}
	return f.Insert
}

var (
	insRD     = mustField("rd")
	insRS1    = mustField("rs1")
	insRS2    = mustField("rs2")
	insIflag  = mustField("iflag")
	insSimm13 = mustField("simm13")
	insImm22  = mustField("imm22")
	insDisp22 = mustField("disp22")
	insDisp30 = mustField("disp30")
	insAflag  = mustField("aflag")
)

// matchWord returns the fixed encoding bits of a named instruction.
func matchWord(name string) (uint32, error) {
	def, ok := desc.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("sparc: unknown instruction %q", name)
	}
	return def.Match, nil
}

// regField converts a machine register to its 5-bit field value; it
// rejects non-integer registers unless the instruction is a
// floating-point one (fp=true maps %fN).
func regField(r machine.Reg, fp bool) (uint32, error) {
	if fp {
		if !r.IsFloat() {
			return 0, fmt.Errorf("sparc: %s is not a float register", RegName(r))
		}
		return uint32(r - machine.FloatBase), nil
	}
	if !r.IsInt() {
		return 0, fmt.Errorf("sparc: %s is not an integer register", RegName(r))
	}
	return uint32(r), nil
}

// fpOperand reports which operands of a named instruction live in
// the floating-point file.
func fpOperand(name string) (rdFP, rsFP bool) {
	switch name {
	case "ldf":
		return true, false
	case "stf":
		return true, false
	case "fmovs", "fnegs", "fabss", "fadds", "fsubs", "fmuls", "fdivs", "fitos", "fstoi":
		return true, true
	case "fcmps":
		return false, true
	}
	return false, false
}

// EncodeOp3 encodes a three-operand (register form) instruction:
// name rs1, rs2, rd.  It covers arithmetic, jmpl, and memory
// instructions (for memory, rd is the data register and rs1+rs2 the
// address).
func EncodeOp3(name string, rd, rs1, rs2 machine.Reg) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	rdFP, rsFP := fpOperand(name)
	rdv, err := regField(rd, rdFP && name != "fcmps")
	if err != nil {
		return 0, err
	}
	rs1v, err := regField(rs1, rsFP && isFPArith(name))
	if err != nil {
		return 0, err
	}
	rs2v, err := regField(rs2, rsFP)
	if err != nil {
		return 0, err
	}
	return insRS2(insRS1(insRD(w, rdv), rs1v), rs2v), nil
}

func isFPArith(name string) bool {
	switch name {
	case "fadds", "fsubs", "fmuls", "fdivs", "fcmps":
		return true
	}
	return false
}

// EncodeOp3Imm encodes the immediate form: name rs1, simm13, rd.
func EncodeOp3Imm(name string, rd, rs1 machine.Reg, imm int32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if imm < -4096 || imm > 4095 {
		return 0, fmt.Errorf("sparc: immediate %d out of simm13 range", imm)
	}
	rdFP, _ := fpOperand(name)
	rdv, err := regField(rd, rdFP)
	if err != nil {
		return 0, err
	}
	rs1v, err := regField(rs1, false)
	if err != nil {
		return 0, err
	}
	return insSimm13(insIflag(insRS1(insRD(w, rdv), rs1v), 1), uint32(imm)&0x1fff), nil
}

// EncodeSethi encodes "sethi %hi(value), rd": the imm22 field holds
// value's upper 22 bits.
func EncodeSethi(rd machine.Reg, value uint32) (uint32, error) {
	w, err := matchWord("sethi")
	if err != nil {
		return 0, err
	}
	rdv, err := regField(rd, false)
	if err != nil {
		return 0, err
	}
	return insImm22(insRD(w, rdv), value>>10), nil
}

// Nop returns the canonical SPARC nop (sethi 0, %g0).
func Nop() uint32 {
	w, _ := EncodeSethi(RegG0, 0)
	return w
}

// EncodeBranch encodes a conditional branch with a displacement in
// instruction words (target = pc + 4*dispWords).
func EncodeBranch(name string, annul bool, dispWords int32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	w, err = patchDisp22(w, dispWords)
	if err != nil {
		return 0, err
	}
	if annul {
		w = insAflag(w, 1)
	}
	return w, nil
}

func patchDisp22(w uint32, dispWords int32) (uint32, error) {
	if dispWords < -(1<<21) || dispWords >= 1<<21 {
		return 0, fmt.Errorf("sparc: branch displacement %d words exceeds disp22", dispWords)
	}
	return insDisp22(w, uint32(dispWords)&0x3fffff), nil
}

// WithBranchDisp re-targets an existing branch word.
func WithBranchDisp(word uint32, dispWords int32) (uint32, error) {
	return patchDisp22(word, dispWords)
}

// EncodeCall encodes "call" with a word displacement.
func EncodeCall(dispWords int32) (uint32, error) {
	w, err := matchWord("call")
	if err != nil {
		return 0, err
	}
	// disp30 is signed; out-of-range displacements previously
	// truncated silently and decoded back to a different target
	// (found by the fuzz round-trip oracle).
	if dispWords < -(1<<29) || dispWords >= 1<<29 {
		return 0, fmt.Errorf("sparc: call displacement %d words exceeds disp30", dispWords)
	}
	return insDisp30(w, uint32(dispWords)&0x3fffffff), nil
}

// WithCallDisp re-targets an existing call word.
func WithCallDisp(word uint32, dispWords int32) uint32 {
	return insDisp30(word, uint32(dispWords)&0x3fffffff)
}

// EncodeTa encodes "ta imm" (trap always).
func EncodeTa(imm int32) (uint32, error) {
	w, err := matchWord("ta")
	if err != nil {
		return 0, err
	}
	if imm < -4096 || imm > 4095 {
		return 0, fmt.Errorf("sparc: trap number %d out of range", imm)
	}
	return insSimm13(insIflag(w, 1), uint32(imm)&0x1fff), nil
}

// SetSethiHi patches a sethi word to load the upper bits of addr
// (the paper's SET_SETHI_HI, Fig 2/5).
func SetSethiHi(word uint32, addr uint32) uint32 {
	return insImm22(word, addr>>10)
}

// SetSimm13Lo patches an immediate-form word's simm13 to the low 10
// bits of addr (the paper's SET_SETHI_LOW: the %lo complement of a
// sethi %hi pair).
func SetSimm13Lo(word uint32, addr uint32) uint32 {
	return insSimm13(word, addr&0x3ff)
}

// Hi returns the sethi %hi part of v; Lo the %lo part.  hi<<10|lo
// reconstructs v.
func Hi(v uint32) uint32 { return v >> 10 }

// Lo returns the low 10 bits of v.
func Lo(v uint32) uint32 { return v & 0x3ff }
