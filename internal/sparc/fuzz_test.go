package sparc

import (
	"encoding/binary"
	"testing"

	"eel/internal/spawn"
)

// FuzzDecode decodes arbitrary words through the table decoder.  For
// any input the decoder must not panic; for words that decode it
// checks internal consistency: the instruction's fields re-insert
// into the definition's match bits to reproduce a word that decodes
// identically, and the semantics compile.
func FuzzDecode(f *testing.F) {
	seed := []uint32{
		0x01000000,             // nop
		0x9de3bfa0,             // save %sp, -96, %sp
		0x81c7e008, 0x81e80000, // ret; restore
		0x81c3e008,                         // retl
		0x40000000,                         // call .
		0x30800000, 0x12bfffff, 0x02800001, // ba,a / bne,a -1 / be +1
		0x91d02000,             // ta 0
		0x90022001, 0xd0022000, // add %o0,1,%o0 / ld [%o0],%o0
		0x00000000, 0xffffffff, 0xdeadbeef,
	}
	for _, w := range seed {
		var b [4]byte
		binary.BigEndian.PutUint32(b[:], w)
		f.Add(b[:])
	}
	dec := NewDecoder()
	f.Fuzz(func(t *testing.T, data []byte) {
		for off := 0; off+4 <= len(data); off += 4 {
			w := binary.BigEndian.Uint32(data[off:])
			inst := dec.Decode(w)
			if !inst.Valid() {
				continue
			}
			if inst.Word() != w {
				t.Fatalf("%08x: Word() = %08x", w, inst.Word())
			}
			sem, ok := inst.Sem().(*spawn.InstSem)
			if !ok {
				t.Fatalf("%08x (%s): no spawn semantics", w, inst.Name())
			}
			// Re-insert the decoded fields over the match bits: the
			// normalized word must decode to the same instruction
			// with the same fields (encode/decode agreement on every
			// operand bit).
			w2 := sem.Def.Match
			for _, fld := range inst.Fields() {
				df, ok := sem.Desc.Field(fld.Name)
				if !ok {
					t.Fatalf("%08x (%s): unknown field %s", w, inst.Name(), fld.Name)
				}
				w2 = df.Insert(w2, fld.Val)
			}
			inst2 := dec.Decode(w2)
			if !inst2.Valid() || inst2.Name() != inst.Name() {
				t.Fatalf("%08x (%s): normalized %08x decodes to %q",
					w, inst.Name(), w2, inst2.Name())
			}
			fa, fb := inst.Fields(), inst2.Fields()
			if len(fa) != len(fb) {
				t.Fatalf("%08x (%s): field count changed", w, inst.Name())
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("%08x (%s): field %s changed %#x -> %#x",
						w, inst.Name(), fa[i].Name, fa[i].Val, fb[i].Val)
				}
			}
			// Semantics must compile (or fail cleanly) — never panic.
			if _, err := sem.Compiled(); err != nil {
				// Acceptable: some decodable words have semantics the
				// compiler rejects; the emulator treats them as
				// illegal.  The property under test is "no panic".
				continue
			}
			// StaticTarget and the disassembler must not panic either.
			inst.StaticTarget(0x10000)
			_ = Disasm(inst, 0x10000)
		}
	})
}

// TestGoldenEncodings pins known-good SPARC V8 encodings so an
// encoder and decoder that err in the same direction cannot agree
// their way past the round-trip oracle.
func TestGoldenEncodings(t *testing.T) {
	cases := []struct {
		name string
		want uint32
		got  func() (uint32, error)
	}{
		{"nop", 0x01000000, func() (uint32, error) { return Nop(), nil }},
		{"add %o0,1,%o0", 0x90022001, func() (uint32, error) { return EncodeOp3Imm("add", RegO0, RegO0, 1) }},
		{"save %sp,-96,%sp", 0x9de3bfa0, func() (uint32, error) { return EncodeOp3Imm("save", RegSP, RegSP, -96) }},
		{"retl", 0x81c3e008, func() (uint32, error) { return EncodeOp3Imm("jmpl", RegG0, RegO7, 8) }},
		{"ret", 0x81c7e008, func() (uint32, error) { return EncodeOp3Imm("jmpl", RegG0, RegI7, 8) }},
		{"call +0", 0x40000000, func() (uint32, error) { return EncodeCall(0) }},
		{"ba +16w", 0x10800010, func() (uint32, error) { return EncodeBranch("ba", false, 16) }},
		{"bne,a -1w", 0x32bfffff, func() (uint32, error) { return EncodeBranch("bne", true, -1) }},
		{"sethi %hi(0x10000),%g1", 0x03000040, func() (uint32, error) { return EncodeSethi(RegG1, 0x10000) }},
		{"ta 0", 0x91d02000, func() (uint32, error) { return EncodeTa(0) }},
		{"ld [%o0],%o0", 0xd0022000, func() (uint32, error) { return EncodeOp3Imm("ld", RegO0, RegO0, 0) }},
		{"st %o0,[%o1]", 0xd0226000, func() (uint32, error) { return EncodeOp3Imm("st", RegO0, RegO1, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := tc.got()
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("encoded %08x, want %08x", got, tc.want)
			}
		})
	}
}
