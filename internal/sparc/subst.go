package sparc

import "eel/internal/machine"

// SubstReg rewrites integer-register operand fields of word that name
// the register from so they name to — the mechanism behind snippet
// register allocation (paper §3.5): snippet bodies are written with
// placeholder registers that EEL replaces with scavenged dead
// registers at each insertion point.
//
// Only fields that actually denote integer registers for the decoded
// instruction are touched: branch and call words (whose bits overlap
// rd/rs1 positions) and floating-point register operands pass through
// unchanged.
func SubstReg(word uint32, from, to machine.Reg) uint32 {
	return SubstRegs(word, map[machine.Reg]machine.Reg{from: to})
}

// substUsed reports whether the decoded instruction actually reads
// or writes r: fields some instructions ignore (rdy's rs1, for
// example) are never rewritten.
func substUsed(word uint32, r machine.Reg) bool {
	inst := sharedDec.Decode(word)
	return inst.Reads().Has(r) || inst.Writes().Has(r)
}

// SubstRegs rewrites every integer-register operand field of word in
// one simultaneous pass: each field is looked up once in assign, so
// an assignment may map one placeholder onto another placeholder's
// name without the second rewrite corrupting the first (sequential
// SubstReg calls would).
func SubstRegs(word uint32, assign map[machine.Reg]machine.Reg) uint32 {
	def := desc.DecodeRaw(word)
	if def == nil {
		return word
	}
	op := def.Fixed["op"]
	op3, hasOp3 := def.Fixed["op3"]
	op2 := def.Fixed["op2"]
	sub := func(w uint32, name string) uint32 {
		f, ok := desc.Field(name)
		if !ok {
			return w
		}
		cur := machine.Reg(f.Extract(w))
		if cur == 0 {
			return w // %g0 means constant zero, never a placeholder
		}
		if !substUsed(word, cur) {
			return w // the instruction ignores this field
		}
		if to, ok := assign[cur]; ok && to.IsInt() {
			return f.Insert(w, uint32(to))
		}
		return w
	}
	switch {
	case op == 0 && op2 == 0b100: // sethi
		return sub(word, "rd")
	case op == 2 && hasOp3 && (op3 == 0b110100 || op3 == 0b110101):
		return word // floating-point operate
	case op == 2 || op == 3:
		w := word
		switch {
		case op == 3 && (op3 == 0b100000 || op3 == 0b100100):
			// ldf/stf: rd names a floating-point register
		case op == 2 && op3 == 0b111010:
			// ticc: the rd bit positions hold the trap condition, and
			// the registers the trap convention reads/writes (%g1,
			// %o0-%o3) are not named by any field
		default:
			w = sub(w, "rd")
		}
		w = sub(w, "rs1")
		if iflagField(w) == 0 {
			w = sub(w, "rs2")
		}
		return w
	}
	return word
}

func iflagField(word uint32) uint32 {
	f, ok := desc.Field("iflag")
	if !ok {
		return 0
	}
	return f.Extract(word)
}

// sharedDec serves package-level inquiries; it is safe for
// concurrent use.
var sharedDec = NewDecoder()

// WritesPSR reports whether the instruction word clobbers the integer
// condition codes — tools use it to decide between a snippet's fast
// (cc-clobbering) and slow (cc-preserving) bodies, the Blizzard
// optimization of §5.
func WritesPSR(word uint32) bool {
	return sharedDec.Decode(word).Writes().Has(machine.RegPSR)
}
