// Package qpt implements the profiling tool the paper rebuilds on
// EEL (§5): branch/edge counting in the style of Figure 1, including
// the hidden-routine worklist loop, plus count recovery from an
// executed image.  The same instrumentation runs in two modes:
//
//   - Full (qpt2): EEL's complete analysis — CFGs with resolved
//     indirect jumps, liveness-driven register scavenging,
//     delay-slot folding.
//   - Light (the pre-EEL "qpt" baseline of Table 1): no liveness
//     (every snippet spills), no slicing (indirect jumps translate
//     at run time), no delay-slot folding.
package qpt

import (
	"fmt"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/sim"
	"eel/internal/sparc"
)

// Counter describes one inserted edge counter.
type Counter struct {
	// Addr is the counter word's address in the edited program.
	Addr uint32
	// Routine names the routine containing the edge.
	Routine string
	// From is the branch block's last original instruction address.
	From uint32
	// EdgeKind describes the instrumented edge ("taken", "fall", ...).
	EdgeKind string
}

// Result is an instrumentation run's outcome.
type Result struct {
	Counters []Counter
	// Edits is the number of snippets inserted.
	Edits int
	// RoutinesSeen counts instrumented routines (including hidden
	// ones discovered during the run).
	RoutinesSeen int
	// HiddenSeen counts hidden routines processed via the worklist.
	HiddenSeen int
}

// Mode selects the tool variant.
type Mode int

// Modes.
const (
	// Full is qpt2: complete EEL analysis.
	Full Mode = iota
	// Light is the ad-hoc baseline: no liveness, slicing, or
	// folding.
	Light
)

// CounterSnippet builds the Figure 2/5 increment snippet for the
// counter at addr: sethi/ld/add/st through two scavenged registers.
func CounterSnippet(addr uint32) (*core.Snippet, error) {
	p1, p2 := machine.Reg(16), machine.Reg(17)
	hi, err := sparc.EncodeSethi(p1, addr)
	if err != nil {
		return nil, err
	}
	ld, err := sparc.EncodeOp3Imm("ld", p2, p1, int32(sparc.Lo(addr)))
	if err != nil {
		return nil, err
	}
	add, err := sparc.EncodeOp3Imm("add", p2, p2, 1)
	if err != nil {
		return nil, err
	}
	st, err := sparc.EncodeOp3Imm("st", p2, p1, int32(sparc.Lo(addr)))
	if err != nil {
		return nil, err
	}
	return core.NewSnippet([]uint32{hi, ld, add, st}, []machine.Reg{p1, p2}), nil
}

// Instrument adds an edge counter to every editable out-edge of
// every block with more than one successor, in every routine —
// the paper's Figure 1 tool, including its hidden-routine loop.
func Instrument(e *core.Executable, mode Mode) (*Result, error) {
	if mode == Light {
		e.LightAnalysis = true
		e.Scavenge = false
		e.FoldDelaySlots = false
	}
	res := &Result{}
	instrumented := map[*core.Routine]bool{}
	instrument := func(r *core.Routine) error {
		if instrumented[r] {
			return nil
		}
		instrumented[r] = true
		res.RoutinesSeen++
		g, err := r.ControlFlowGraph()
		if err != nil {
			return fmt.Errorf("qpt: %s: %w", r.Name, err)
		}
		for _, b := range g.Blocks {
			if len(b.Succ) <= 1 || b.Kind != cfg.KindNormal {
				continue
			}
			for _, edge := range b.Succ {
				if edge.Uneditable {
					continue
				}
				addr := e.AllocData(4)
				snip, err := CounterSnippet(addr)
				if err != nil {
					return err
				}
				if err := r.AddCodeAlong(edge, snip); err != nil {
					return fmt.Errorf("qpt: %s: %w", r.Name, err)
				}
				last := b.Last()
				var from uint32
				if last != nil {
					from = last.Addr
				}
				res.Counters = append(res.Counters, Counter{
					Addr: addr, Routine: r.Name, From: from,
					EdgeKind: edge.Kind.String(),
				})
				res.Edits++
			}
		}
		return r.ProduceEditedRoutine()
	}
	for _, r := range e.Routines() {
		if err := instrument(r); err != nil {
			return nil, err
		}
	}
	// The Figure 1 worklist: analysis may keep discovering hidden
	// routines.
	for {
		h := e.TakeHidden()
		if h == nil {
			break
		}
		res.HiddenSeen++
		if err := instrument(h); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// ReadCounts extracts counter values from an executed memory image.
func (r *Result) ReadCounts(mem *sim.Memory) []uint64 {
	out := make([]uint64, len(r.Counters))
	for i, c := range r.Counters {
		out[i] = uint64(mem.Read32(c.Addr))
	}
	return out
}

// Total sums all counters in an executed image.
func (r *Result) Total(mem *sim.Memory) uint64 {
	var t uint64
	for _, v := range r.ReadCounts(mem) {
		t += v
	}
	return t
}
