package qpt

// Optimal edge profiling, the algorithm of qpt's companion paper
// (Ball & Larus, "Optimally Profiling and Tracing Programs", TOPLAS
// 1994 — the paper's reference [4] and EEL's first application):
// counters go only on edges *outside* a maximum spanning tree of the
// CFG (weighted by estimated execution frequency), and the remaining
// edge counts are derived afterward from flow conservation.  This is
// why qpt wanted CFG edges, not just blocks (§3.3: "the initial
// application of EEL, qpt, required CFGs to implement efficient
// profiling ... by placing instrumentation on CFG edges").

import (
	"fmt"
	"sort"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/sim"
)

// flowEdge is an edge of the circulation graph: every CFG edge plus
// one virtual Exit→Entry edge that closes the flow.
type flowEdge struct {
	e       *cfg.Edge // nil for the virtual edge
	from    *cfg.Block
	to      *cfg.Block
	virtual bool
	// countable edges may carry a counter.
	countable bool
	weight    float64
	inTree    bool
	counter   uint32 // counter address when instrumented
}

// RoutineProfile is one routine's optimal instrumentation.
type RoutineProfile struct {
	Routine *core.Routine
	Graph   *cfg.Graph
	// Dense marks routines where the spanning-tree placement was
	// infeasible and every editable branch edge was counted instead.
	Dense bool
	edges []*flowEdge
	// Instrumented is the number of counters placed.
	Instrumented int
	// TotalEdges is the number of real CFG edges.
	TotalEdges int
}

// OptimalResult is the whole program's optimal instrumentation.
type OptimalResult struct {
	Routines []*RoutineProfile
	// Counters / Edges aggregate placement totals (experimentally:
	// counters ≪ edges, the Ball-Larus saving).
	Counters, Edges int
}

// InstrumentOptimal places edge counters using the spanning-tree
// method.  Derived counts for every CFG edge are recovered with
// RoutineProfile.DeriveCounts after execution.
func InstrumentOptimal(e *core.Executable) (*OptimalResult, error) {
	res := &OptimalResult{}
	seen := map[*core.Routine]bool{}
	process := func(r *core.Routine) error {
		if seen[r] {
			return nil
		}
		seen[r] = true
		g, err := r.ControlFlowGraph()
		if err != nil {
			return fmt.Errorf("qpt: %s: %w", r.Name, err)
		}
		rp, err := buildProfile(e, r, g)
		if err != nil {
			return err
		}
		res.Routines = append(res.Routines, rp)
		res.Counters += rp.Instrumented
		res.Edges += rp.TotalEdges
		return r.ProduceEditedRoutine()
	}
	for _, r := range e.Routines() {
		if err := process(r); err != nil {
			return nil, err
		}
	}
	for {
		h := e.TakeHidden()
		if h == nil {
			break
		}
		if err := process(h); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// eligible reports whether the spanning-tree method applies: flow
// conservation must hold at run time, which rules out routines that
// can stop mid-block (system calls) or with unknown control flow.
func eligible(g *cfg.Graph) bool {
	if g.HasData || !g.Complete {
		return false
	}
	for _, b := range g.Blocks {
		for _, in := range b.Insts {
			if in.MI.Category() == machine.CatSystem {
				return false
			}
		}
	}
	return true
}

// buildProfile chooses and places counters for one routine.
func buildProfile(e *core.Executable, r *core.Routine, g *cfg.Graph) (*RoutineProfile, error) {
	rp := &RoutineProfile{Routine: r, Graph: g, TotalEdges: len(g.Edges)}
	if !eligible(g) {
		return denseFallback(e, r, g, rp)
	}
	// Build the circulation graph.
	loops := dataflow.NaturalLoops(g, dataflow.Dominators(g))
	depth := dataflow.LoopDepth(loops)
	for _, edge := range g.Edges {
		fe := &flowEdge{e: edge, from: edge.From, to: edge.To}
		fe.countable = !edge.Uneditable &&
			edge.Kind != cfg.EdgeEntry && edge.Kind != cfg.EdgeExit
		d := depth[edge.From]
		if depth[edge.To] > d {
			d = depth[edge.To]
		}
		if d > 6 {
			d = 6
		}
		fe.weight = pow10(d)
		if !fe.countable {
			fe.weight = 1e12 // force into the tree
		}
		rp.edges = append(rp.edges, fe)
	}
	rp.edges = append(rp.edges, &flowEdge{
		from: g.Exit, to: g.Entry, virtual: true, weight: 1e12,
	})

	// Kruskal maximum spanning tree over the undirected view.
	sorted := append([]*flowEdge(nil), rp.edges...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].weight > sorted[j].weight })
	uf := newUnionFind(len(g.Blocks))
	for _, fe := range sorted {
		if uf.union(fe.from.ID, fe.to.ID) {
			fe.inTree = true
		}
	}
	// Every non-tree edge must be countable, or the method fails.
	for _, fe := range rp.edges {
		if !fe.inTree && !fe.countable {
			return denseFallback(e, r, g, rp)
		}
	}
	// Place counters on non-tree edges.
	for _, fe := range rp.edges {
		if fe.inTree {
			continue
		}
		addr := e.AllocData(4)
		snip, err := CounterSnippet(addr)
		if err != nil {
			return nil, err
		}
		if err := r.AddCodeAlong(fe.e, snip); err != nil {
			return nil, fmt.Errorf("qpt: optimal placement on uneditable edge: %w", err)
		}
		fe.counter = addr
		rp.Instrumented++
	}
	return rp, nil
}

// denseFallback instruments every editable branch edge (the
// Figure 1 placement) for routines where the tree method is unsound.
func denseFallback(e *core.Executable, r *core.Routine, g *cfg.Graph, rp *RoutineProfile) (*RoutineProfile, error) {
	rp.Dense = true
	rp.edges = nil
	for _, b := range g.Blocks {
		if len(b.Succ) <= 1 || b.Kind != cfg.KindNormal {
			continue
		}
		for _, edge := range b.Succ {
			if edge.Uneditable {
				continue
			}
			addr := e.AllocData(4)
			snip, err := CounterSnippet(addr)
			if err != nil {
				return nil, err
			}
			if err := r.AddCodeAlong(edge, snip); err != nil {
				return nil, err
			}
			rp.edges = append(rp.edges, &flowEdge{e: edge, from: edge.From, to: edge.To, countable: true, counter: addr})
			rp.Instrumented++
		}
	}
	return rp, nil
}

// DeriveCounts recovers every CFG edge's execution count from the
// instrumented counters by flow conservation (leaf elimination over
// the spanning tree).  For Dense routines it returns only the
// directly counted edges.
func (rp *RoutineProfile) DeriveCounts(mem *sim.Memory) (map[*cfg.Edge]uint64, error) {
	out := map[*cfg.Edge]uint64{}
	if rp.Dense {
		for _, fe := range rp.edges {
			out[fe.e] = uint64(mem.Read32(fe.counter))
		}
		return out, nil
	}
	known := map[*flowEdge]uint64{}
	for _, fe := range rp.edges {
		if !fe.inTree {
			known[fe] = uint64(mem.Read32(fe.counter))
		}
	}
	// Leaf elimination: a block with exactly one unknown incident
	// edge determines it by conservation (in-sum == out-sum, signed).
	incident := map[*cfg.Block][]*flowEdge{}
	for _, fe := range rp.edges {
		incident[fe.from] = append(incident[fe.from], fe)
		incident[fe.to] = append(incident[fe.to], fe)
	}
	for changed := true; changed; {
		changed = false
		for blk, edges := range incident {
			var unknown *flowEdge
			bal := int64(0)
			solvable := true
			for _, fe := range edges {
				v, ok := known[fe]
				if !ok {
					if unknown != nil {
						solvable = false
						break
					}
					unknown = fe
					continue
				}
				if fe.to == blk {
					bal += int64(v)
				}
				if fe.from == blk {
					bal -= int64(v)
				}
			}
			if !solvable || unknown == nil {
				continue
			}
			// The unknown edge balances the block's flow.
			var v int64
			if unknown.to == blk {
				v = -bal
			} else {
				v = bal
			}
			if v < 0 {
				return nil, fmt.Errorf("qpt: negative derived count %d in %s (conservation violated)", v, rp.Routine.Name)
			}
			known[unknown] = uint64(v)
			changed = true
		}
	}
	for _, fe := range rp.edges {
		v, ok := known[fe]
		if !ok {
			return nil, fmt.Errorf("qpt: underdetermined flow in %s", rp.Routine.Name)
		}
		if fe.e != nil {
			out[fe.e] = v
		}
	}
	return out, nil
}

func pow10(n int) float64 {
	v := 1.0
	for i := 0; i < n; i++ {
		v *= 10
	}
	return v
}

// unionFind is a tiny disjoint-set structure for Kruskal.
type unionFind struct{ parent []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were
// distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u.parent[ra] = rb
	return true
}
