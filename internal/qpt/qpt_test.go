package qpt_test

import (
	"testing"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/progen"
	"eel/internal/qpt"
	"eel/internal/sim"
)

func load(t *testing.T, seed int64) *core.Executable {
	t.Helper()
	p := progen.MustGenerate(progen.DefaultConfig(seed))
	e, err := core.NewExecutable(p.File)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	return e
}

func execute(t *testing.T, e *core.Executable) *sim.CPU {
	t.Helper()
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.LoadFile(edited, nil)
	if err := cpu.Run(500_000_000); err != nil {
		t.Fatal(err)
	}
	return cpu
}

func TestInstrumentFullCountsEveryBranch(t *testing.T) {
	e := load(t, 31)
	res, err := qpt.Instrument(e, qpt.Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.Edits == 0 || len(res.Counters) != res.Edits {
		t.Fatalf("edits=%d counters=%d", res.Edits, len(res.Counters))
	}
	cpu := execute(t, e)
	if res.Total(cpu.Mem) == 0 {
		t.Error("no events recorded")
	}
	counts := res.ReadCounts(cpu.Mem)
	if len(counts) != res.Edits {
		t.Fatalf("counts = %d", len(counts))
	}
}

func TestLightModeMatchesFullCounts(t *testing.T) {
	// The two tool variants must agree on what they measure — only
	// cost differs.
	eFull := load(t, 32)
	full, err := qpt.Instrument(eFull, qpt.Full)
	if err != nil {
		t.Fatal(err)
	}
	cpuF := execute(t, eFull)

	eLight := load(t, 32)
	light, err := qpt.Instrument(eLight, qpt.Light)
	if err != nil {
		t.Fatal(err)
	}
	cpuL := execute(t, eLight)

	if full.Total(cpuF.Mem) != light.Total(cpuL.Mem) {
		t.Errorf("totals differ: full %d, light %d", full.Total(cpuF.Mem), light.Total(cpuL.Mem))
	}
	if cpuF.ExitCode != cpuL.ExitCode {
		t.Errorf("exit codes differ: %d vs %d", cpuF.ExitCode, cpuL.ExitCode)
	}
}

// TestOptimalPlacementMatchesDense is the Ball-Larus validation: the
// spanning-tree placement's *derived* per-edge counts must equal the
// directly measured counts of the dense (every-edge) placement.
func TestOptimalPlacementMatchesDense(t *testing.T) {
	for _, seed := range []int64{33, 34, 35} {
		// Dense run.
		eDense := load(t, seed)
		dense, err := qpt.Instrument(eDense, qpt.Full)
		if err != nil {
			t.Fatal(err)
		}
		cpuD := execute(t, eDense)
		denseCounts := map[[2]uint32]uint64{} // (branch addr, edge kind idx)
		vals := dense.ReadCounts(cpuD.Mem)
		kindIdx := map[string]uint32{"fall": 0, "taken": 1, "return": 2}
		for i, c := range dense.Counters {
			denseCounts[[2]uint32{c.From, kindIdx[c.EdgeKind]}] += vals[i]
		}

		// Optimal run.
		eOpt := load(t, seed)
		opt, err := qpt.InstrumentOptimal(eOpt)
		if err != nil {
			t.Fatal(err)
		}
		cpuO := execute(t, eOpt)
		if cpuO.ExitCode != cpuD.ExitCode {
			t.Fatalf("seed %d: behaviour diverged", seed)
		}
		if opt.Counters >= opt.Edges {
			t.Errorf("seed %d: optimal placed %d counters on %d edges (no saving)",
				seed, opt.Counters, opt.Edges)
		}

		checked := 0
		for _, rp := range opt.Routines {
			derived, err := rp.DeriveCounts(cpuO.Mem)
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, rp.Routine.Name, err)
			}
			if rp.Dense {
				continue
			}
			for edge, got := range derived {
				if edge.From.Kind != cfg.KindNormal || len(edge.From.Succ) <= 1 || edge.Uneditable {
					continue
				}
				last := edge.From.Last()
				if last == nil {
					continue
				}
				key := [2]uint32{last.Addr, kindIdx[edge.Kind.String()]}
				want, ok := denseCounts[key]
				if !ok {
					continue
				}
				if got != want {
					t.Errorf("seed %d: %s edge at %#x (%s): derived %d, measured %d",
						seed, rp.Routine.Name, last.Addr, edge.Kind, got, want)
				}
				checked++
			}
		}
		if checked < 5 {
			t.Errorf("seed %d: only %d edges cross-checked", seed, checked)
		}
		t.Logf("seed %d: optimal used %d counters for %d edges (dense used %d); %d cross-checked",
			seed, opt.Counters, opt.Edges, dense.Edits, checked)
	}
}

func TestOptimalConservation(t *testing.T) {
	e := load(t, 36)
	opt, err := qpt.InstrumentOptimal(e)
	if err != nil {
		t.Fatal(err)
	}
	cpu := execute(t, e)
	// Derived counts must satisfy conservation at every block.
	for _, rp := range opt.Routines {
		if rp.Dense {
			continue
		}
		derived, err := rp.DeriveCounts(cpu.Mem)
		if err != nil {
			t.Fatalf("%s: %v", rp.Routine.Name, err)
		}
		in := map[*cfg.Block]uint64{}
		out := map[*cfg.Block]uint64{}
		for edge, v := range derived {
			out[edge.From] += v
			in[edge.To] += v
		}
		for _, b := range rp.Graph.Blocks {
			if b == rp.Graph.Entry || b == rp.Graph.Exit {
				continue // closed by the virtual edge, not present here
			}
			if in[b] != out[b] {
				t.Errorf("%s block %d: in %d != out %d", rp.Routine.Name, b.ID, in[b], out[b])
			}
		}
	}
}

func TestHiddenRoutineWorklist(t *testing.T) {
	cfg0 := progen.DefaultConfig(37)
	cfg0.HiddenFrac = 0.4
	p := progen.MustGenerate(cfg0)
	e, err := core.NewExecutable(p.File)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	res, err := qpt.Instrument(e, qpt.Full)
	if err != nil {
		t.Fatal(err)
	}
	if res.HiddenSeen == 0 {
		t.Skip("seed produced no hidden routines")
	}
	t.Logf("instrumented %d routines, %d via the hidden worklist", res.RoutinesSeen, res.HiddenSeen)
}
