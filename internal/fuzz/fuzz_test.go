package fuzz

import (
	"strings"
	"testing"
)

// TestGenerateDeterministic checks that the same config always yields
// the same program bytes — the property that makes shrunk configs
// usable as regression tests.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig(42)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Source != b.Source {
		t.Fatal("same config generated different source")
	}
	aw, bw := a.TextWords(), b.TextWords()
	if len(aw) != len(bw) {
		t.Fatalf("text length differs: %d vs %d", len(aw), len(bw))
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("word %d differs: %08x vs %08x", i, aw[i], bw[i])
		}
	}
}

// TestGenerateSeedsDiffer checks the per-routine seeding scheme
// actually spreads: different master seeds give different programs,
// and all feature-toggled shrink candidates still generate.
func TestGenerateSeedsDiffer(t *testing.T) {
	a, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if a.Source == b.Source {
		t.Fatal("different seeds generated identical programs")
	}
	// Every single-toggle-off shrink candidate of a full config must
	// still assemble: Shrink relies on candidates generating cleanly.
	for _, tc := range toggleClears {
		cand := DefaultConfig(7)
		tc.clear(&cand)
		if _, err := Generate(cand); err != nil {
			t.Errorf("config without %s fails to generate: %v", tc.name, err)
		}
	}
}

// TestRandConfigCoverage checks that RandConfig explores the space:
// over a modest sample every feature toggle is seen both on and off.
func TestRandConfigCoverage(t *testing.T) {
	on := map[string]int{}
	const n = 200
	for i := 0; i < n; i++ {
		cfg := RandConfig(99, i)
		if cfg.Routines < 1 || cfg.BodyOps < 1 {
			t.Fatalf("config %d has empty structure: %+v", i, cfg)
		}
		for _, tc := range toggleClears {
			if tc.isSet(cfg) {
				on[tc.name]++
			}
		}
	}
	for _, tc := range toggleClears {
		if on[tc.name] == 0 || on[tc.name] == n {
			t.Errorf("toggle %s never varies (%d/%d on)", tc.name, on[tc.name], n)
		}
	}
}

// TestShrinkMinimizes drives Shrink with a synthetic oracle that
// fails whenever the Traps toggle is set: the shrinker must reduce to
// the minimal structure with only that toggle surviving.
func TestShrinkMinimizes(t *testing.T) {
	cfg := DefaultConfig(5)
	check := func(p *Program, _ uint64) []Violation {
		if p.Cfg.Traps {
			return []Violation{{Oracle: "synthetic", Detail: "traps set"}}
		}
		return nil
	}
	got := Shrink(cfg, check, 1000)
	if !got.Traps {
		t.Fatal("shrink lost the failing toggle")
	}
	if got.Routines != 1 || got.BodyOps != 1 {
		t.Errorf("structure not minimized: %+v", got)
	}
	for _, tc := range toggleClears {
		if tc.name != "traps" && tc.isSet(got) {
			t.Errorf("irrelevant toggle %s survived shrinking", tc.name)
		}
	}
	summary := Generalize(got, check, 1000)
	if !strings.Contains(summary, "traps") || !strings.Contains(summary, "8/8") {
		t.Errorf("generalization summary %q should name traps and reproduce under all seeds", summary)
	}
}

// TestDefaultConfigPasses is the clean-run smoke test: a handful of
// fully-featured programs must satisfy all three oracles.
func TestDefaultConfigPasses(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p, err := Generate(DefaultConfig(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, v := range CheckAll(p, 10_000_000) {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}
