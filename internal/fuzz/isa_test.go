package fuzz

import (
	"testing"
)

// TestMIPSHarnessPasses runs the harness end-to-end for the MIPS
// machine: generated programs through the round-trip and lockstep
// oracles (the edited oracle is SPARC-only and must self-gate).
func TestMIPSHarnessPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep := Run(Options{N: 25, Seed: 11, ISA: "mips", MaxSteps: 5_000_000})
	if !rep.OK() {
		for _, f := range rep.Failures {
			t.Errorf("iteration %d (%s):", f.Iteration, f.Cfg)
			for _, v := range f.Violations {
				t.Errorf("  %s", v)
			}
		}
	}
	if rep.Programs != rep.Iterations {
		t.Errorf("generated %d of %d programs", rep.Programs, rep.Iterations)
	}
	if rep.Insts == 0 {
		t.Error("lockstep interpreted no instructions")
	}
}

// TestEditedOracleGatesOnISA: the editing pipeline is SPARC-only, so
// the edited oracle must be a no-op for other machines rather than a
// spurious failure.
func TestEditedOracleGatesOnISA(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.ISA = "mips"
	p := MustGenerate(cfg)
	if vs := CheckEdited(p, 5_000_000); len(vs) != 0 {
		t.Errorf("edited oracle reported %d violations for a non-SPARC program", len(vs))
	}
}

// TestMIPSConfigString pins the reproducible one-liner carrying the
// ISA, so a reported failure regenerates on the right machine.
func TestMIPSConfigString(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.ISA = "mips"
	if s := cfg.String(); len(s) < 9 || s[:9] != "isa=mips " {
		t.Errorf("config string %q does not lead with the ISA", s)
	}
}
