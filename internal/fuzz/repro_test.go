package fuzz

import "testing"

// Regression programs found by the differential harness (cmd/eelfuzz)
// and shrunk by Shrink.  Each entry pins a real bug: the config
// regenerates the exact program that failed, and the oracles must now
// pass on it.
func TestFuzzRegressions(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		why  string
	}{
		{
			// eelfuzz -seed 1, iteration 359: r1 was a hidden
			// continuation target lying between two reachable ranges
			// of its containing routine (the hidden r2 after it was
			// called directly, so refinement made r2 an extra entry).
			// findUnreachableTail only looked past the highest
			// reached address, missed the hole, and the edited build
			// translated r1's address to 0 and jumped there.
			name: "hidden-routine-hole",
			cfg:  Config{Seed: 360, Routines: 4, BodyOps: 1, Continuations: true, Hidden: true},
			why:  "unreached hole between entry-split ranges must become a hidden routine",
		},
		{
			// eelfuzz -seed 1, iteration 3 (after the hole fix above):
			// the delay slot of a ba,a is valid code that reach() never
			// marks (the annul bit suppresses it), so the generalized
			// hole scan mistook it for a hidden routine and split the
			// routine mid-body; the edited image faulted on the stub.
			name: "annulled-delay-slot-not-hidden",
			cfg:  Config{Seed: 4, Routines: 1, BodyOps: 2, Annulled: true},
			why:  "ba,a delay slots are unreached but belong to the routine",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range CheckAll(p, 10_000_000) {
				t.Errorf("%s (%s)", v, tc.why)
			}
		})
	}
}
