package fuzz

import "testing"

// Regression programs found by the differential harness (cmd/eelfuzz)
// and shrunk by Shrink.  Each entry pins a real bug: the config
// regenerates the exact program that failed, and the oracles must now
// pass on it.
func TestFuzzRegressions(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		why  string
	}{
		{
			// eelfuzz -seed 1, iteration 359: r1 was a hidden
			// continuation target lying between two reachable ranges
			// of its containing routine (the hidden r2 after it was
			// called directly, so refinement made r2 an extra entry).
			// findUnreachableTail only looked past the highest
			// reached address, missed the hole, and the edited build
			// translated r1's address to 0 and jumped there.
			name: "hidden-routine-hole",
			cfg:  Config{Seed: 360, Routines: 4, BodyOps: 1, Continuations: true, Hidden: true},
			why:  "unreached hole between entry-split ranges must become a hidden routine",
		},
		{
			// eelfuzz -seed 1, iteration 3 (after the hole fix above):
			// the delay slot of a ba,a is valid code that reach() never
			// marks (the annul bit suppresses it), so the generalized
			// hole scan mistook it for a hidden routine and split the
			// routine mid-body; the edited image faulted on the stub.
			name: "annulled-delay-slot-not-hidden",
			cfg:  Config{Seed: 4, Routines: 1, BodyOps: 2, Annulled: true},
			why:  "ba,a delay slots are unreached but belong to the routine",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range CheckAll(p, 10_000_000) {
				t.Errorf("%s (%s)", v, tc.why)
			}
		})
	}
}

// TestRoutineTierRegressions pins routine-tier bring-up bugs under the
// four-way lockstep oracle.  The tight step budgets matter: the first
// bug only shows when the limit lands while routine-compiled code is
// mid-flight.
func TestRoutineTierRegressions(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		maxSteps uint64
		why      string
	}{
		{
			// Routine-tier bring-up: runRoutine's budget refusal spilled
			// with e.PC still holding the fill-time pc — in-program
			// terminators return a block index without updating PC — so
			// a step limit landing at an interior block head reported
			// the routine's entry as the faulting pc.  Truncated budgets
			// across a loop-carrying program make the refusal land on
			// interior heads.
			name:     "budget-refusal-interior-pc",
			cfg:      Config{Seed: 41, Routines: 3, BodyOps: 6, Calls: true, Windows: true},
			maxSteps: 97,
			why:      "step limit inside a routine must report the interior block pc",
		},
		{
			// Full-feature lockstep over the routine tier: calls and
			// returns between installed routines take the zero-spill
			// cross-routine continuation, traps and window over/underflow
			// spill at the boundary.
			name:     "cross-routine-continuation",
			cfg:      Config{Seed: 11, Routines: 5, BodyOps: 8, Calls: true, Windows: true, Traps: true, Mem: true, MulDiv: true},
			maxSteps: 10_000_000,
			why:      "routine exits onto installed heads must continue with exact state",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := Generate(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range CheckLockstep(p, tc.maxSteps) {
				t.Errorf("%s (%s)", v, tc.why)
			}
		})
	}
}
