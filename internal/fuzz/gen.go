// Package fuzz is EEL's differential-fuzzing subsystem.  It
// generalizes internal/progen into a randomized, seeded SPARC V8
// program generator with orthogonal feature toggles (delayed and
// annulled branches, register windows, traps, indirect jumps,
// edge-valued immediates, ...) and checks three differential oracles
// over every generated program:
//
//   - round-trip: decoding any text word and re-encoding it through
//     the canonical encoders reproduces the same operands
//     (internal/sparc must not lose or resign immediate bits);
//   - lockstep: the single-step interpreter and the translation-cache
//     engine of internal/sim finish in bit-identical architected
//     state;
//   - edited: an executable rewritten by internal/core (both an
//     identity relayout and full qpt instrumentation) behaves exactly
//     like the original.
//
// Failures shrink to a minimal configuration and generalize across
// seeds, so a reported violation is a small, reproducible program
// plus the feature set required to trigger it.  cmd/eelfuzz is the
// command-line driver.
package fuzz

import (
	"fmt"
	"math/rand"
	"strings"

	"eel/internal/asm"
	"eel/internal/binfile"
	"eel/internal/progen"
)

// Config parameterizes one generated program.  Every field is
// deterministic input: the same Config always generates the same
// program.  The boolean toggles gate generator features so the
// shrinker can turn them off one at a time.
type Config struct {
	Seed     int64
	Routines int
	BodyOps  int

	// ISA selects the target machine: "" or "sparc" runs the native
	// SPARC generator below; "mips" delegates to internal/progen's
	// MIPS personality.  SPARC-only toggles (Annulled, Windows,
	// Continuations, Indirect, FP, MulDiv, MultiEntry, EdgeImms) are
	// ignored for other machines.
	ISA string

	// Annulled emits annulled branches: bne,a loops, ba,a skips, and
	// the bn/bn,a never-taken forms.
	Annulled bool
	// Windows emits register-window routines (save/restore); without
	// it every routine is a leaf.
	Windows bool
	// Calls lets windowed routines call later routines (a DAG, so
	// termination is preserved).
	Calls bool
	// Traps emits mid-routine write(2) system calls whose output the
	// oracles compare.
	Traps bool
	// Indirect emits gcc-style dispatch-table switches (register
	// indirect jumps through text-embedded tables).
	Indirect bool
	// Continuations emits SunPro-style pop-frame-and-jump tail
	// transfers through writable function-pointer slots.
	Continuations bool
	// EdgeImms biases immediates toward encoding boundaries (±4095,
	// ±4096, 0x3ff/0x400, sign bits).
	EdgeImms bool
	// FP emits single-precision floating-point conversions and
	// arithmetic on small integers.
	FP bool
	// Mem emits the full load/store menu: byte/half/word, signed
	// loads, ldd/std pairs, swap and ldstub.
	Mem bool
	// MulDiv emits umul/smul and guarded udiv/sdiv plus %y traffic.
	MulDiv bool
	// MultiEntry gives some flat routines a second entry point.
	MultiEntry bool
	// Hidden omits symbols for some routines.
	Hidden bool
	// DataBlobs embeds data tables in the text segment.
	DataBlobs bool
	// Strip removes the symbol table entirely.
	Strip bool
}

// DefaultConfig returns a medium-sized configuration with every
// feature enabled.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Routines:      10,
		BodyOps:       10,
		Annulled:      true,
		Windows:       true,
		Calls:         true,
		Traps:         true,
		Indirect:      true,
		Continuations: true,
		EdgeImms:      true,
		FP:            true,
		Mem:           true,
		MulDiv:        true,
		MultiEntry:    true,
		Hidden:        true,
		DataBlobs:     true,
	}
}

// RandConfig derives a randomized configuration for iteration i of a
// run seeded with master.  Sizes and toggles vary so the corpus
// explores feature interactions, not just the everything-on point.
func RandConfig(master int64, i int) Config {
	rng := rand.New(rand.NewSource(master ^ int64(i)*-0x61C8864680B583EB))
	c := DefaultConfig(master + int64(i))
	c.Routines = 3 + rng.Intn(12)
	c.BodyOps = 4 + rng.Intn(10)
	flip := func(p float64) bool { return rng.Float64() < p }
	// Each feature stays on most of the time; occasionally a subset
	// is disabled so failures in feature interactions are reachable.
	c.Annulled = flip(0.9)
	c.Windows = flip(0.9)
	c.Calls = flip(0.9)
	c.Traps = flip(0.8)
	c.Indirect = flip(0.8)
	c.Continuations = flip(0.7)
	c.EdgeImms = flip(0.9)
	c.FP = flip(0.7)
	c.Mem = flip(0.9)
	c.MulDiv = flip(0.8)
	c.MultiEntry = flip(0.6)
	c.Hidden = flip(0.6)
	c.DataBlobs = flip(0.6)
	c.Strip = flip(0.1)
	return c
}

// String renders the config as a reproducible one-liner.
func (c Config) String() string {
	var on []string
	for _, f := range []struct {
		name string
		set  bool
	}{
		{"annulled", c.Annulled}, {"windows", c.Windows}, {"calls", c.Calls},
		{"traps", c.Traps}, {"indirect", c.Indirect}, {"cont", c.Continuations},
		{"edgeimms", c.EdgeImms}, {"fp", c.FP}, {"mem", c.Mem},
		{"muldiv", c.MulDiv}, {"multientry", c.MultiEntry}, {"hidden", c.Hidden},
		{"datablobs", c.DataBlobs}, {"strip", c.Strip},
	} {
		if f.set {
			on = append(on, f.name)
		}
	}
	isa := ""
	if !isSPARC(c.ISA) {
		isa = fmt.Sprintf("isa=%s ", c.ISA)
	}
	return fmt.Sprintf("%sseed=%d routines=%d bodyops=%d features=%s",
		isa, c.Seed, c.Routines, c.BodyOps, strings.Join(on, ","))
}

// Program is one generated program.
type Program struct {
	Cfg    Config
	Source string
	File   *binfile.File
	// dataRanges lists [start,end) address ranges inside the text
	// segment that hold data (dispatch tables, blobs), not
	// instructions.  Words outside these ranges came from the
	// canonical encoders and must round-trip bit-identically.
	dataRanges [][2]uint32
}

// IsData reports whether the text word at addr is embedded data
// rather than an encoder-produced instruction.
func (p *Program) IsData(addr uint32) bool {
	for _, r := range p.dataRanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

// TextWords returns the text segment as big-endian words.
func (p *Program) TextWords() []uint32 {
	text := p.File.Text()
	out := make([]uint32, len(text.Data)/4)
	for i := range out {
		d := text.Data[i*4:]
		out[i] = uint32(d[0])<<24 | uint32(d[1])<<16 | uint32(d[2])<<8 | uint32(d[3])
	}
	return out
}

const (
	textBase = 0x10000
	dataBase = 0x400000
	// fpSlotBase holds continuation function-pointer slots (one word
	// per routine), matching progen's layout.
	fpSlotBase = 0x400800
	// trapBufBase holds per-routine spill+write buffers (8 bytes
	// each, 8-aligned).
	trapBufBase = 0x400a00
)

func fpSlot(i int) uint32 { return fpSlotBase + uint32(i)*4 }

// routine traits, decided up front from per-routine rngs so that
// main's slot initialization and the DAG are consistent.
type traits struct {
	win        bool
	mayCall    bool
	tailTarget int // >= 0: continuation jump to that routine
	entry2     bool
	hidden     bool
}

type gen struct {
	cfg    Config
	b      strings.Builder
	label  int
	traits []traits
	// dataWords maps a label to the number of data words emitted at
	// it, so Program.IsData can be computed after assembly.
	dataWords map[string]int
}

// routineRNG returns the dedicated random stream for routine idx.
// Each routine draws only from its own stream, so shrinking the
// routine count leaves the surviving routines identical.
func (g *gen) routineRNG(idx int) *rand.Rand {
	return rand.New(rand.NewSource(g.cfg.Seed ^ (int64(idx)+1)*-0x61C8864680B583EB))
}

// isSPARC reports whether isa names the default SPARC machine.
func isSPARC(isa string) bool { return isa == "" || isa == "sparc" }

// Generate builds the program for cfg, dispatching on cfg.ISA.
func Generate(cfg Config) (*Program, error) {
	if cfg.Routines < 1 {
		return nil, fmt.Errorf("fuzz: need at least one routine")
	}
	if cfg.BodyOps < 1 {
		cfg.BodyOps = 1
	}
	if !isSPARC(cfg.ISA) {
		return generateOther(cfg)
	}
	g := &gen{cfg: cfg, traits: make([]traits, cfg.Routines), dataWords: map[string]int{}}
	for i := range g.traits {
		rng := g.routineRNG(i)
		t := &g.traits[i]
		t.tailTarget = -1
		// Draw every trait unconditionally so disabling a feature
		// toggle perturbs the rest of the routine as little as
		// possible (better shrinking).
		dTail, dCall, dWin, dEntry2, dHidden :=
			rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()
		if cfg.Continuations && i+1 < cfg.Routines && dTail < 0.2 {
			t.tailTarget = i + 1 + rng.Intn(cfg.Routines-i-1)
		}
		isTail := t.tailTarget >= 0
		// Non-leaf routines must keep a frame: a flat routine that
		// calls would clobber its own return address in %o7.
		if cfg.Calls && cfg.Windows && i+1 < cfg.Routines && !isTail && dCall < 0.5 {
			t.mayCall = true
			t.win = true
		} else if cfg.Windows && !isTail && dWin < 0.3 {
			t.win = true
		}
		if cfg.MultiEntry && !t.win && !isTail && dEntry2 < 0.2 {
			t.entry2 = true
		}
		if cfg.Hidden && dHidden < 0.15 {
			t.hidden = true
		}
	}
	g.emitMain()
	for i := 0; i < cfg.Routines; i++ {
		g.emitRoutine(i)
	}
	src := g.b.String()
	prog, err := asm.Assemble(src, textBase)
	if err != nil {
		return nil, fmt.Errorf("fuzz: assembling generated program (%s): %w", cfg, err)
	}
	f := &binfile.File{
		Format: "aout",
		Entry:  textBase,
		Sections: []binfile.Section{
			{Name: "text", Addr: textBase, Data: prog.Bytes},
			{Name: "data", Addr: dataBase, Data: make([]byte, 8192)},
		},
	}
	g.addSymbols(f, prog)
	if cfg.Strip {
		f.Strip()
	}
	p := &Program{Cfg: cfg, Source: src, File: f}
	for name, words := range g.dataWords {
		if addr, ok := prog.Labels[name]; ok {
			p.dataRanges = append(p.dataRanges, [2]uint32{addr, addr + uint32(words)*4})
		}
	}
	return p, nil
}

// generateOther delegates non-SPARC generation to internal/progen's
// per-ISA personalities, mapping the fuzz toggles that have
// machine-independent meaning (sizes, Hidden, DataBlobs, Mem, Strip)
// and ignoring the SPARC-only ones.
func generateOther(cfg Config) (*Program, error) {
	pcfg := progen.Config{
		Seed:       cfg.Seed,
		Routines:   cfg.Routines,
		BodyOps:    cfg.BodyOps,
		ISA:        cfg.ISA,
		DataTables: cfg.DataBlobs,
		MemHeavy:   cfg.Mem,
		Strip:      cfg.Strip,
		Base:       textBase,
	}
	if cfg.Hidden {
		pcfg.HiddenFrac = 0.15
	}
	p, err := progen.Generate(pcfg)
	if err != nil {
		return nil, fmt.Errorf("fuzz: %s generator (%s): %w", cfg.ISA, cfg, err)
	}
	return &Program{Cfg: cfg, Source: p.Source, File: p.File, dataRanges: p.DataRanges}, nil
}

// MustGenerate panics on error (tests).
func MustGenerate(cfg Config) *Program {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func (g *gen) l(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) fresh(prefix string) string {
	g.label++
	return fmt.Sprintf(".F%s%d", prefix, g.label)
}

// emitMain seeds the accumulator, initializes continuation slots, and
// calls the root routines several unrolled rounds.
func (g *gen) emitMain() {
	rng := rand.New(rand.NewSource(g.cfg.Seed ^ 0x5DEECE66D))
	g.l("main:")
	for i := range g.traits {
		if g.traits[i].tailTarget < 0 {
			continue
		}
		g.l("\tset r%d, %%l0", g.traits[i].tailTarget)
		g.l("\tset %d, %%l1", fpSlot(i))
		g.l("\tst %%l0, [%%l1]")
	}
	g.l("\tmov %d, %%o0", 1+rng.Intn(64))
	roots := 1 + rng.Intn(minInt(3, g.cfg.Routines))
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < roots; i++ {
			g.callTo(rng, i*(g.cfg.Routines/roots))
		}
		g.l("\txor %%o0, %d, %%o0", rep+1)
	}
	g.l("\tmov 1, %%g1")
	g.l("\tta 0")
}

// callTo emits a call to routine idx (or its second entry).
func (g *gen) callTo(rng *rand.Rand, idx int) {
	if idx >= g.cfg.Routines {
		return
	}
	entry := fmt.Sprintf("r%d", idx)
	if g.traits[idx].entry2 && rng.Intn(2) == 0 {
		entry = fmt.Sprintf("r%d_entry2", idx)
	}
	g.l("\tcall %s", entry)
	g.l("\tnop")
}

// emitRoutine generates routine idx.  Convention: argument and result
// in %o0; %l0-%l7, %o1-%o5, %g1-%g5 scratch.
func (g *gen) emitRoutine(idx int) {
	rng := g.routineRNG(idx)
	t := g.traits[idx]
	g.l("r%d:", idx)
	if t.win {
		g.l("\tsave %%sp, -96, %%sp")
		g.l("\tmov %%i0, %%o0")
	}
	ops := g.cfg.BodyOps/2 + rng.Intn(g.cfg.BodyOps)
	if t.entry2 && ops < 3 {
		ops = 3
	}
	var tables []string
	// Bound the call DAG's dynamic fan-out: routines near the end may
	// call twice (their subtrees are shallow); earlier ones once.
	callsLeft := 1
	if g.cfg.Routines-idx <= 4 {
		callsLeft = 2
	}
	for i := 0; i < ops; i++ {
		if t.entry2 && i == maxInt(1, ops/3) {
			g.l("r%d_entry2:", idx)
		}
		g.op(rng, idx, t, &tables, &callsLeft)
	}
	switch {
	case t.tailTarget >= 0:
		// SunPro pop-frame-and-jump: the callee returns directly to
		// this routine's caller through the untouched %o7.
		g.l("\tset %d, %%l1", fpSlot(idx))
		g.l("\tld [%%l1], %%g5")
		g.l("\tadd %%sp, 0, %%sp")
		g.l("\tjmp %%g5")
		g.l("\tnop")
	case t.win:
		g.l("\tret")
		g.l("\trestore %%o0, 0, %%o0")
	default:
		g.l("\tretl")
		g.l("\tnop")
	}
	for _, tab := range tables {
		g.l("\t.align 4")
		g.l("%s", tab)
	}
	if g.cfg.DataBlobs && rng.Intn(4) == 0 {
		g.emitDataBlob(rng)
	}
}

// op emits one body operation chosen from the enabled feature menu.
func (g *gen) op(rng *rand.Rand, idx int, t traits, tables *[]string, callsLeft *int) {
	type choice struct {
		ok bool
		fn func()
	}
	menu := []choice{
		{true, func() { g.arith(rng) }},
		{true, func() { g.arith(rng) }},
		{true, func() { g.loop(rng) }},
		{true, func() { g.ifThen(rng) }},
		{true, func() { g.setEdge(rng) }},
		{g.cfg.Annulled, func() { g.annulledLoop(rng) }},
		{g.cfg.Annulled, func() { g.annulledSkips(rng) }},
		{g.cfg.Indirect, func() { *tables = append(*tables, g.dispatchSwitch(rng)) }},
		{g.cfg.Mem, func() { g.memOp(rng, idx) }},
		{g.cfg.FP, func() { g.fpOp(rng, idx) }},
		{g.cfg.MulDiv, func() { g.mulDiv(rng) }},
		{g.cfg.Traps, func() { g.trapWrite(rng, idx) }},
		{t.mayCall && *callsLeft > 0, func() {
			lo := idx + 1
			if lo < g.cfg.Routines {
				*callsLeft--
				g.callTo(rng, lo+rng.Intn(g.cfg.Routines-lo))
			} else {
				g.arith(rng)
			}
		}},
	}
	for {
		c := menu[rng.Intn(len(menu))]
		if c.ok {
			c.fn()
			return
		}
	}
}

// edgeImms are the immediate values at simm13 and %lo boundaries.
var edgeImms = []int{-4096, -4095, -1024, -1, 0, 1, 7, 1023, 1024, 4095}

func (g *gen) imm(rng *rand.Rand) int {
	if g.cfg.EdgeImms && rng.Intn(2) == 0 {
		return edgeImms[rng.Intn(len(edgeImms))]
	}
	return rng.Intn(31) + 1
}

func (g *gen) arith(rng *rand.Rand) {
	dst := []string{"%o0", "%l0", "%l1", "%l2", "%o1", "%o2"}[rng.Intn(6)]
	src := []string{"%o0", "%l0", "%l1", "%o1"}[rng.Intn(4)]
	op := []string{"add", "sub", "xor", "and", "or", "andn", "orn", "xnor",
		"addx", "subx", "sll", "srl", "sra"}[rng.Intn(13)]
	imm := g.imm(rng)
	if op == "sll" || op == "srl" || op == "sra" {
		// Shift semantics mask the count; edge values 31/32 are
		// interesting, huge ones are legal simm13 too.
		imm = []int{0, 1, 5, 31, 32, 63}[rng.Intn(6)]
	}
	g.l("\t%s %s, %d, %s", op, src, imm, dst)
}

// setEdge materializes a 32-bit boundary constant and mixes it in.
var edgeConsts = []uint32{0, 1, 0x3ff, 0x400, 0xfff, 0x1000, 0x7fffffff,
	0x80000000, 0xfffffc00, 0xffffffff, 0xdeadbeef}

func (g *gen) setEdge(rng *rand.Rand) {
	v := edgeConsts[rng.Intn(len(edgeConsts))]
	if !g.cfg.EdgeImms {
		v = uint32(rng.Intn(4096))
	}
	g.l("\tset %d, %%l4", v)
	g.l("\txor %%o0, %%l4, %%o0")
	g.l("\tsrl %%o0, 1, %%o0")
}

func (g *gen) loop(rng *rand.Rand) {
	top := g.fresh("loop")
	g.l("\tmov %d, %%l6", 2+rng.Intn(6))
	g.l("%s:", top)
	g.arith(rng)
	g.l("\tsubcc %%l6, 1, %%l6")
	g.l("\tbne %s", top)
	g.l("\tnop")
}

// annulledLoop uses bne,a with productive code in the delay slot.
func (g *gen) annulledLoop(rng *rand.Rand) {
	top := g.fresh("aloop")
	g.l("\tmov %d, %%l7", 2+rng.Intn(5))
	g.l("%s:", top)
	g.l("\tsubcc %%l7, 1, %%l7")
	g.l("\tbne,a %s", top)
	g.l("\tadd %%o0, 3, %%o0")
}

// annulledSkips exercises the unconditional annul forms: ba,a (slot
// never executes), bn (never taken, slot executes), and bn,a (skip
// the next instruction unconditionally).
func (g *gen) annulledSkips(rng *rand.Rand) {
	switch rng.Intn(3) {
	case 0:
		skip := g.fresh("baa")
		g.l("\tba,a %s", skip)
		g.l("\tadd %%o0, %d, %%o0", 1+rng.Intn(63)) // annulled
		g.l("%s:", skip)
	case 1:
		tgt := g.fresh("bn")
		g.l("\tbn %s", tgt)
		g.l("\tadd %%o0, %d, %%o0", 1+rng.Intn(63)) // executes
		g.l("%s:", tgt)
	default:
		tgt := g.fresh("bna")
		g.l("\tbn,a %s", tgt)
		g.l("\txor %%o0, %d, %%o0", 1+rng.Intn(63)) // annulled
		g.l("%s:", tgt)
	}
}

func (g *gen) ifThen(rng *rand.Rand) {
	skip := g.fresh("skip")
	cond := []string{"be", "bne", "bg", "ble", "bl", "bge", "bgu", "bleu",
		"bcc", "bcs", "bpos", "bneg", "bvc", "bvs"}[rng.Intn(14)]
	g.l("\tcmp %%o0, %d", g.imm(rng))
	g.l("\t%s %s", cond, skip)
	g.l("\tnop")
	g.arith(rng)
	g.l("%s:", skip)
}

// dispatchSwitch emits a gcc-style table switch and returns the table
// text (placed after the routine body, in the text segment).
func (g *gen) dispatchSwitch(rng *rand.Rand) string {
	n := 3 + rng.Intn(5)
	tab := g.fresh("tab")
	def := g.fresh("def")
	end := g.fresh("end")
	arms := make([]string, n)
	for i := range arms {
		arms[i] = g.fresh("case")
	}
	g.l("\tand %%o0, %d, %%l5", n)
	g.l("\tcmp %%l5, %d", n-1)
	g.l("\tbgu %s", def)
	g.l("\tsll %%l5, 2, %%l4")
	g.l("\tset %s, %%l3", tab)
	g.l("\tld [%%l3+%%l4], %%l3")
	g.l("\tjmp %%l3")
	g.l("\tnop")
	for i, a := range arms {
		g.l("%s:", a)
		g.l("\tadd %%o0, %d, %%o0", i+1)
		g.l("\tba %s", end)
		g.l("\tnop")
	}
	g.l("%s:", def)
	g.l("\txor %%o0, 5, %%o0")
	g.l("%s:", end)

	var t strings.Builder
	fmt.Fprintf(&t, "%s:", tab)
	for _, a := range arms {
		fmt.Fprintf(&t, "\n\t.word %s", a)
	}
	g.dataWords[tab] = len(arms)
	return t.String()
}

// memOp exercises the load/store menu through aligned data slots.
func (g *gen) memOp(rng *rand.Rand, idx int) {
	slot := dataBase + uint32(idx%32)*8
	g.l("\tset %d, %%l3", slot)
	switch rng.Intn(6) {
	case 0: // word store/load
		g.l("\tst %%o0, [%%l3]")
		g.l("\tld [%%l3], %%l2")
	case 1: // byte, unsigned + signed reload
		g.l("\tstb %%o0, [%%l3]")
		g.l("\tldub [%%l3], %%l2")
		g.l("\tldsb [%%l3], %%l1")
		g.l("\tadd %%l2, %%l1, %%l2")
	case 2: // half, unsigned + signed reload
		g.l("\tsth %%o0, [%%l3]")
		g.l("\tlduh [%%l3], %%l2")
		g.l("\tldsh [%%l3], %%l1")
		g.l("\txor %%l2, %%l1, %%l2")
	case 3: // doubleword pair
		g.l("\tmov %%o0, %%l0")
		g.l("\txor %%o0, %d, %%l1", 1+rng.Intn(255))
		g.l("\tstd %%l0, [%%l3]")
		g.l("\tldd [%%l3], %%l2")
	case 4: // atomic swap
		g.l("\tst %%o0, [%%l3]")
		g.l("\tmov %d, %%l2", 1+rng.Intn(63))
		g.l("\tswap [%%l3], %%l2")
	default: // ldstub
		g.l("\tst %%o0, [%%l3]")
		g.l("\tldstub [%%l3], %%l2")
	}
	g.l("\tadd %%o0, %%l2, %%o0")
	g.l("\tsrl %%o0, 1, %%o0")
}

// fpOp converts the accumulator through the float file and back.
func (g *gen) fpOp(rng *rand.Rand, idx int) {
	slot := dataBase + 0x400 + uint32(idx%16)*4
	g.l("\tset %d, %%l3", slot)
	g.l("\tand %%o0, 0xff, %%l2")
	g.l("\tst %%l2, [%%l3]")
	g.l("\tldf [%%l3], %%f0")
	g.l("\tfitos %%f0, %%f1")
	switch rng.Intn(3) {
	case 0:
		g.l("\tfadds %%f1, %%f1, %%f2")
	case 1:
		g.l("\tfsubs %%f1, %%f1, %%f2")
	default:
		g.l("\tfmuls %%f1, %%f1, %%f2")
	}
	g.l("\tfstoi %%f2, %%f3")
	g.l("\tstf %%f3, [%%l3]")
	g.l("\tld [%%l3], %%l2")
	g.l("\txor %%o0, %%l2, %%o0")
}

// mulDiv exercises the multiply/divide builtins and the %y register.
// Divisors are forced non-zero.
func (g *gen) mulDiv(rng *rand.Rand) {
	switch rng.Intn(4) {
	case 0:
		g.l("\tumul %%o0, %d, %%o0", 3+rng.Intn(13))
		g.l("\tsrl %%o0, %d, %%o0", 1+rng.Intn(4))
	case 1:
		g.l("\tsmul %%o0, %d, %%o0", -8+rng.Intn(17))
		g.l("\tsra %%o0, %d, %%o0", 1+rng.Intn(4))
	case 2:
		g.l("\tand %%o0, 7, %%l1")
		g.l("\tor %%l1, 1, %%l1")
		if rng.Intn(2) == 0 {
			g.l("\tudiv %%o0, %%l1, %%o0")
		} else {
			g.l("\tsdiv %%o0, %%l1, %%o0")
		}
	default:
		g.l("\twr %%o0, %%y")
		g.l("\trd %%y, %%l2")
		g.l("\tadd %%o0, %%l2, %%o0")
		g.l("\tsrl %%o0, 1, %%o0")
	}
}

// trapWrite spills the accumulator, issues a 1-byte write(2) system
// call whose payload the oracles compare, and mixes the syscall
// result back in.
func (g *gen) trapWrite(rng *rand.Rand, idx int) {
	buf := trapBufBase + uint32(idx%32)*8
	g.l("\tset %d, %%l1", buf)
	g.l("\tst %%o0, [%%l1]")
	g.l("\tstb %%o0, [%%l1+4]")
	g.l("\tmov 4, %%g1")
	g.l("\tmov 1, %%o0")
	g.l("\tadd %%l1, 4, %%o1")
	g.l("\tmov 1, %%o2")
	g.l("\tta 0")
	g.l("\tld [%%l1], %%l2")
	g.l("\txor %%l2, %%o0, %%o0")
}

// emitDataBlob embeds a data table with a routine-indistinguishable
// label.
func (g *gen) emitDataBlob(rng *rand.Rand) {
	g.l("\t.align 4")
	name := fmt.Sprintf("dtab%d", g.label)
	g.label++
	g.l("%s:", name)
	n := 2 + rng.Intn(5)
	g.dataWords[name] = n
	for i := 0; i < n; i++ {
		g.l("\t.word %d", rng.Uint32())
	}
}

// addSymbols builds the symbol table: function symbols for visible
// routines, label symbols for data blobs, and a duplicate for
// refinement to discard.
func (g *gen) addSymbols(f *binfile.File, prog *asm.Program) {
	add := func(name string, kind binfile.SymKind, global bool) {
		if addr, ok := prog.Labels[name]; ok {
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: kind, Global: global})
		}
	}
	add("main", binfile.SymFunc, true)
	for i := 0; i < g.cfg.Routines; i++ {
		if g.traits[i].hidden {
			continue
		}
		add(fmt.Sprintf("r%d", i), binfile.SymFunc, true)
	}
	for name, addr := range prog.Labels {
		if strings.HasPrefix(name, "dtab") {
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: binfile.SymLabel})
		}
	}
	if addr, ok := prog.Labels["main"]; ok {
		f.Symbols = append(f.Symbols, binfile.Symbol{Name: "main_dup", Addr: addr, Kind: binfile.SymLabel})
	}
	f.SortSymbols()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
