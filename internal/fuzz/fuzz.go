package fuzz

import (
	"fmt"
	"io"
	"strings"
)

// Options configures a fuzzing run.
type Options struct {
	// N is the number of generated programs.
	N int
	// Seed is the master seed; iteration i derives its config from
	// Seed and i, so a whole run reproduces from one number.
	Seed int64
	// MaxSteps bounds each emulator execution.
	MaxSteps uint64
	// Oracles selects which oracles run, comma-separated from
	// "roundtrip", "lockstep", "edited"; empty means all.  The edited
	// oracle and the deterministic SPARC encoder sweep apply only when
	// ISA is SPARC (per-ISA sweeps live in the arch packages' tests).
	Oracles string
	// ISA selects the target machine ("sparc" when empty; "mips" runs
	// the MIPS generator and engines).
	ISA string
	// Log, when non-nil, receives per-iteration progress.
	Log io.Writer
	// Verbose logs every iteration rather than every failure.
	Verbose bool
	// NoShrink reports raw failures without minimizing them.
	NoShrink bool
}

// Failure is one reproducible oracle violation.
type Failure struct {
	// Iteration is the failing iteration number.
	Iteration int
	// Cfg reproduces the failing program (post-shrink if shrinking
	// ran).
	Cfg Config
	// Violations are the oracle reports for Cfg.
	Violations []Violation
	// Generalization summarizes required features and seed
	// sensitivity.
	Generalization string
}

// Report summarizes a run.
type Report struct {
	Iterations int
	// Programs is the number successfully generated (the rest are
	// generator errors, reported as failures).
	Programs int
	// Insts is the total instruction count executed by the lockstep
	// oracle's interpreter runs (a coverage proxy).
	Insts    uint64
	Failures []Failure
}

// OK reports whether the run found no violations.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (o *Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

func (o *Options) oracleEnabled(name string) bool {
	if o.Oracles == "" {
		return true
	}
	for _, s := range strings.Split(o.Oracles, ",") {
		if strings.TrimSpace(s) == name {
			return true
		}
	}
	return false
}

// check builds the CheckFunc for the enabled oracles.
func (o *Options) check() CheckFunc {
	return func(p *Program, maxSteps uint64) []Violation {
		var vs []Violation
		if o.oracleEnabled("roundtrip") {
			vs = append(vs, CheckRoundTripWords(p)...)
		}
		if o.oracleEnabled("lockstep") {
			vs = append(vs, CheckLockstep(p, maxSteps)...)
		}
		if o.oracleEnabled("edited") {
			vs = append(vs, CheckEdited(p, maxSteps)...)
		}
		return vs
	}
}

// Run executes a fuzzing session: the deterministic encoder sweep
// once, then N generated programs through the enabled differential
// oracles, shrinking and generalizing every failure.
func Run(opts Options) *Report {
	if opts.N <= 0 {
		opts.N = 100
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 50_000_000
	}
	rep := &Report{Iterations: opts.N}
	check := opts.check()

	if opts.oracleEnabled("roundtrip") && isSPARC(opts.ISA) {
		if vs := CheckRoundTripSweep(); len(vs) > 0 {
			rep.Failures = append(rep.Failures, Failure{
				Iteration:      -1,
				Violations:     vs,
				Generalization: "deterministic encoder/decoder sweep (no program involved)",
			})
		}
	}

	for i := 0; i < opts.N; i++ {
		cfg := RandConfig(opts.Seed, i)
		cfg.ISA = opts.ISA
		p, err := Generate(cfg)
		if err != nil {
			rep.Failures = append(rep.Failures, Failure{
				Iteration:  i,
				Cfg:        cfg,
				Violations: []Violation{{Oracle: "generate", Detail: err.Error()}},
			})
			opts.logf("iter %d: generation failed: %v", i, err)
			continue
		}
		rep.Programs++
		vs := check(p, opts.MaxSteps)
		if opts.oracleEnabled("lockstep") {
			if res := runOnce(p.File, opts.MaxSteps, EngineInterp, p.decoder()); res.cpu != nil {
				rep.Insts += res.cpu.InstCount
			}
		}
		if len(vs) == 0 {
			if opts.Verbose {
				opts.logf("iter %d: ok (%s)", i, cfg)
			}
			continue
		}
		f := Failure{Iteration: i, Cfg: cfg, Violations: vs}
		if !opts.NoShrink {
			opts.logf("iter %d: %d violation(s), shrinking...", i, len(vs))
			f.Cfg = Shrink(cfg, check, opts.MaxSteps)
			if p2, err := Generate(f.Cfg); err == nil {
				if vs2 := check(p2, opts.MaxSteps); len(vs2) > 0 {
					f.Violations = vs2
				}
			}
			f.Generalization = Generalize(f.Cfg, check, opts.MaxSteps)
		}
		rep.Failures = append(rep.Failures, f)
		opts.logf("iter %d: FAIL %s", i, f.Cfg)
		for _, v := range f.Violations {
			opts.logf("  %s", v)
		}
		if f.Generalization != "" {
			opts.logf("  %s", f.Generalization)
		}
	}
	return rep
}
