package fuzz

import (
	"bytes"
	"fmt"
	"sync"

	"eel/internal/binfile"
	"eel/internal/core"
	"eel/internal/machine"
	_ "eel/internal/mips" // register the MIPS architecture
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Violation is one oracle failure.
type Violation struct {
	Oracle string // "roundtrip", "lockstep", "edited", "sweep"
	Detail string
}

func (v Violation) String() string { return v.Oracle + ": " + v.Detail }

func violate(oracle, format string, args ...any) Violation {
	return Violation{Oracle: oracle, Detail: fmt.Sprintf(format, args...)}
}

// dec is the shared SPARC decoder the deterministic sweep uses
// (interning makes it cheap and safe to share).
var dec = sparc.NewDecoder()

// decoders caches one shared decoder per ISA for the per-program
// oracles.
var decoders sync.Map // isa name -> *spawn.TableDecoder

// decoderFor returns the shared decoder for an ISA name.
func decoderFor(isa string) *spawn.TableDecoder {
	if isSPARC(isa) {
		return dec
	}
	if d, ok := decoders.Load(isa); ok {
		return d.(*spawn.TableDecoder)
	}
	info, ok := machine.ArchByName(isa)
	if !ok {
		panic(fmt.Sprintf("fuzz: no architecture registered for %q", isa))
	}
	d := info.NewDecoder().(*spawn.TableDecoder)
	decoders.Store(isa, d)
	return d
}

// archFor returns the registered architecture record for an ISA name.
func archFor(isa string) *machine.ArchInfo {
	if isSPARC(isa) {
		isa = "sparc"
	}
	info, ok := machine.ArchByName(isa)
	if !ok {
		panic(fmt.Sprintf("fuzz: no architecture registered for %q", isa))
	}
	return info
}

// decoder returns the decoder matching the program's ISA.
func (p *Program) decoder() *spawn.TableDecoder { return decoderFor(p.Cfg.ISA) }

// rebuild reconstructs an instruction word from its definition's
// fixed match bits plus the decoded operand fields.  For a word
// produced by the canonical encoders this is the identity; for
// arbitrary words it is a normalization (bits outside any operand
// field are dropped).
func rebuild(inst *machine.Inst) (uint32, error) {
	sem, ok := inst.Sem().(*spawn.InstSem)
	if !ok {
		return 0, fmt.Errorf("instruction %s has no spawn semantics handle", inst.Name())
	}
	w := sem.Def.Match
	for _, f := range inst.Fields() {
		fld, ok := sem.Desc.Field(f.Name)
		if !ok {
			return 0, fmt.Errorf("instruction %s has unknown field %s", inst.Name(), f.Name)
		}
		w = fld.Insert(w, f.Val)
	}
	return w, nil
}

func sameFields(a, b *machine.Inst) bool {
	fa, fb := a.Fields(), b.Fields()
	if len(fa) != len(fb) {
		return false
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false
		}
	}
	return true
}

// CheckRoundTripWords checks the decode→encode direction over every
// word of the generated text segment:
//
//   - every valid word, re-encoded from its decoded operands, decodes
//     back to the same instruction with the same operands, and the
//     re-encoding is a fixed point;
//   - words the generator emitted as instructions (everything outside
//     the embedded data tables) must re-encode bit-identically — the
//     encoders and the decoder agree on every operand bit.
func CheckRoundTripWords(p *Program) []Violation {
	var vs []Violation
	dec := p.decoder()
	text := p.File.Text()
	for i, w := range p.TextWords() {
		addr := text.Addr + uint32(i)*4
		inst := dec.Decode(w)
		if !inst.Valid() {
			if !p.IsData(addr) {
				vs = append(vs, violate("roundtrip",
					"generated instruction %08x at %#x does not decode", w, addr))
			}
			continue
		}
		w2, err := rebuild(inst)
		if err != nil {
			vs = append(vs, violate("roundtrip", "%08x at %#x: %v", w, addr, err))
			continue
		}
		if !p.IsData(addr) && w2 != w {
			vs = append(vs, violate("roundtrip",
				"%s at %#x: re-encoding changed bits %08x -> %08x", inst.Name(), addr, w, w2))
			continue
		}
		inst2 := dec.Decode(w2)
		if !inst2.Valid() || inst2.Name() != inst.Name() {
			vs = append(vs, violate("roundtrip",
				"%s at %#x: normalized word %08x decodes to %q", inst.Name(), addr, w2, inst2.Name()))
			continue
		}
		if !sameFields(inst, inst2) {
			vs = append(vs, violate("roundtrip",
				"%s at %#x: operand fields changed across re-encode of %08x", inst.Name(), addr, w))
			continue
		}
		w3, err := rebuild(inst2)
		if err != nil || w3 != w2 {
			vs = append(vs, violate("roundtrip",
				"%s at %#x: re-encoding is not a fixed point (%08x -> %08x)", inst.Name(), addr, w2, w3))
			continue
		}
		if !p.IsData(addr) {
			sem := inst.Sem().(*spawn.InstSem)
			if _, err := sem.Compiled(); err != nil {
				vs = append(vs, violate("roundtrip",
					"%s at %#x: semantics do not compile: %v", inst.Name(), addr, err))
			}
		}
	}
	return vs
}

func signExt(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

func fieldOf(inst *machine.Inst, name string) (uint32, bool) {
	return inst.Field(name)
}

// CheckRoundTripSweep checks the encode→decode direction at the
// encoding boundaries: simm13 at ±4096, branch disp22 and call disp30
// at their signed extremes, sethi's imm22 high bits.  In-range
// operands must be recovered exactly (including sign); out-of-range
// operands must be rejected, never silently truncated.  The sweep is
// deterministic, so it runs once per fuzzing session.
func CheckRoundTripSweep() []Violation {
	var vs []Violation

	// simm13: immediate-form ALU ops and memory ops.
	for _, name := range []string{"add", "sub", "xor", "and", "ld", "st", "jmpl"} {
		for _, imm := range []int32{-4096, -4095, -1024, -1, 0, 1, 1023, 4094, 4095} {
			w, err := sparc.EncodeOp3Imm(name, sparc.RegO0, sparc.RegO1, imm)
			if err != nil {
				vs = append(vs, violate("sweep", "%s simm13 %d: encode failed: %v", name, imm, err))
				continue
			}
			inst := dec.Decode(w)
			if !inst.Valid() {
				vs = append(vs, violate("sweep", "%s simm13 %d: word %08x does not decode", name, imm, w))
				continue
			}
			raw, ok := fieldOf(inst, "simm13")
			if !ok {
				vs = append(vs, violate("sweep", "%s simm13 %d: decoded %s has no simm13 field", name, imm, inst.Name()))
				continue
			}
			if got := signExt(raw, 13); got != imm {
				vs = append(vs, violate("sweep",
					"%s: simm13 %d encoded to %08x, decoded back as %d", name, imm, w, got))
			}
		}
		for _, imm := range []int32{-4097, 4096, 8192, -1 << 13, 1 << 13} {
			if w, err := sparc.EncodeOp3Imm(name, sparc.RegO0, sparc.RegO1, imm); err == nil {
				vs = append(vs, violate("sweep",
					"%s: out-of-range simm13 %d encoded silently to %08x", name, imm, w))
			}
		}
	}

	// Branch disp22, including the annul bit.
	const pc = 0x40000000
	for _, name := range []string{"ba", "bn", "bne", "be", "bgu", "bcs", "bvs"} {
		for _, d := range []int32{-(1 << 21), -1024, -1, 0, 1, 1024, 1<<21 - 1} {
			for _, annul := range []bool{false, true} {
				w, err := sparc.EncodeBranch(name, annul, d)
				if err != nil {
					vs = append(vs, violate("sweep", "%s disp22 %d: encode failed: %v", name, d, err))
					continue
				}
				inst := dec.Decode(w)
				if !inst.Valid() || inst.AnnulBit() != annul {
					vs = append(vs, violate("sweep",
						"%s disp22 %d annul=%v: decode mismatch (word %08x)", name, d, annul, w))
					continue
				}
				if name == "bn" {
					// "branch never" is decoded as a non-transfer, so
					// it has no static target; check the raw field.
					raw, ok := fieldOf(inst, "disp22")
					if !ok || signExt(raw, 22) != d {
						vs = append(vs, violate("sweep",
							"bn: disp22 %d decoded back as %d (word %08x)", d, signExt(raw, 22), w))
					}
					continue
				}
				tgt, ok := inst.StaticTarget(pc)
				want := uint32(int64(pc) + 4*int64(d))
				if !ok || tgt != want {
					vs = append(vs, violate("sweep",
						"%s: disp22 %d target %#x, want %#x (word %08x)", name, d, tgt, want, w))
				}
			}
		}
		for _, d := range []int32{1 << 21, -(1 << 21) - 1, 1 << 24} {
			if w, err := sparc.EncodeBranch(name, false, d); err == nil {
				vs = append(vs, violate("sweep",
					"%s: out-of-range disp22 %d encoded silently to %08x", name, d, w))
			}
		}
	}

	// Call disp30.
	for _, d := range []int32{-(1 << 29), -1, 0, 1, 1<<29 - 1} {
		w, err := sparc.EncodeCall(d)
		if err != nil {
			vs = append(vs, violate("sweep", "call disp30 %d: encode failed: %v", d, err))
			continue
		}
		inst := dec.Decode(w)
		tgt, ok := inst.StaticTarget(pc)
		want := uint32(int64(pc) + 4*int64(d))
		if !inst.Valid() || !ok || tgt != want {
			vs = append(vs, violate("sweep",
				"call: disp30 %d target %#x, want %#x (word %08x)", d, tgt, want, w))
		}
	}
	for _, d := range []int32{1 << 29, -(1 << 29) - 1} {
		if w, err := sparc.EncodeCall(d); err == nil {
			vs = append(vs, violate("sweep",
				"call: out-of-range disp30 %d encoded silently to %08x", d, w))
		}
	}

	// sethi imm22: the upper 22 bits survive, including the sign bit
	// and the %hi/%lo reconstruction identity.
	for _, v := range []uint32{0, 1 << 10, 0x3ff << 10, 0x7fffffff, 0x80000000, 0xfffffc00, 0xffffffff, 0xdeadbeef} {
		w, err := sparc.EncodeSethi(sparc.RegO0, v)
		if err != nil {
			vs = append(vs, violate("sweep", "sethi %#x: encode failed: %v", v, err))
			continue
		}
		inst := dec.Decode(w)
		raw, ok := fieldOf(inst, "imm22")
		if !inst.Valid() || !ok || raw != v>>10 {
			vs = append(vs, violate("sweep",
				"sethi %#x: imm22 decoded as %#x, want %#x (word %08x)", v, raw, v>>10, w))
		}
		if got := sparc.Hi(v)<<10 | sparc.Lo(v); got != v {
			vs = append(vs, violate("sweep", "Hi/Lo of %#x reassemble to %#x", v, got))
		}
	}

	// Trap numbers.
	for _, imm := range []int32{-4096, 0, 127, 4095} {
		w, err := sparc.EncodeTa(imm)
		if err != nil {
			vs = append(vs, violate("sweep", "ta %d: encode failed: %v", imm, err))
			continue
		}
		inst := dec.Decode(w)
		raw, ok := fieldOf(inst, "simm13")
		if !inst.Valid() || !ok || signExt(raw, 13) != imm {
			vs = append(vs, violate("sweep", "ta %d: decoded back as %d", imm, signExt(raw, 13)))
		}
	}
	for _, imm := range []int32{-4097, 4096} {
		if w, err := sparc.EncodeTa(imm); err == nil {
			vs = append(vs, violate("sweep", "ta: out-of-range %d encoded silently to %08x", imm, w))
		}
	}
	return vs
}

// runResult is one complete execution.
type runResult struct {
	cpu *sim.CPU
	out []byte
	err error
}

// Engine selects one of the emulator's four execution engines for a
// lockstep run.
type Engine int

const (
	EngineInterp  Engine = iota // single-step AST interpreter
	EngineJIT                   // translation cache, no chaining
	EngineChained               // chaining + inline caches + traces
	EngineRoutine               // whole-routine tier over chained
)

func (e Engine) String() string {
	switch e {
	case EngineInterp:
		return "interpreter"
	case EngineJIT:
		return "jit"
	case EngineChained:
		return "chained"
	default:
		return "routine"
	}
}

// runOnce executes f on a fresh emulator with the given engine,
// converting panics to errors so a harness iteration survives engine
// bugs.
func runOnce(f *binfile.File, maxSteps uint64, eng Engine, dec *spawn.TableDecoder) (res runResult) {
	var buf bytes.Buffer
	defer func() {
		if r := recover(); r != nil {
			res.err = fmt.Errorf("panic: %v", r)
		}
		res.out = buf.Bytes()
	}()
	cpu := sim.LoadFileWith(dec, f, &buf)
	cpu.NoJIT = eng == EngineInterp
	cpu.NoChain = eng == EngineJIT
	if eng == EngineRoutine {
		// Synchronous promotion at the lowest threshold so every run
		// actually exercises routine-compiled code, deterministically.
		cpu.EnableRoutines = true
		cpu.RoutineSync = true
		cpu.RoutineHotThreshold = 1
	}
	res.cpu = cpu
	res.err = cpu.Run(maxSteps)
	return res
}

// CheckLockstep runs the program to completion on every execution
// engine the target machine supports — the single-step interpreter,
// the translation-cache engine, the chained/trace engine, and (where
// the architecture registration enables it) the whole-routine tier —
// and requires bit-identical outcomes against the interpreter: same
// error (if any), same output bytes, same architected state, same
// memory image.
func CheckLockstep(p *Program, maxSteps uint64) []Violation {
	d := p.decoder()
	interp := runOnce(p.File, maxSteps, EngineInterp, d)
	var vs []Violation
	engines := []Engine{EngineJIT, EngineChained}
	if archFor(p.Cfg.ISA).RoutineTier {
		engines = append(engines, EngineRoutine)
	}
	for _, eng := range engines {
		vs = append(vs, lockstepDiff(interp, runOnce(p.File, maxSteps, eng, d), eng)...)
	}
	return vs
}

// lockstepDiff compares one engine's run against the interpreter
// reference.
func lockstepDiff(interp, run runResult, eng Engine) []Violation {
	var vs []Violation
	if (interp.err == nil) != (run.err == nil) ||
		(interp.err != nil && run.err != nil && interp.err.Error() != run.err.Error()) {
		vs = append(vs, violate("lockstep",
			"errors diverge: interpreter=%v %s=%v", interp.err, eng, run.err))
		return vs
	}
	if !bytes.Equal(interp.out, run.out) {
		vs = append(vs, violate("lockstep",
			"output diverges: interpreter wrote %q, %s wrote %q", interp.out, eng, run.out))
	}
	if interp.cpu == nil || run.cpu == nil {
		return vs
	}
	if a, b := interp.cpu.ArchState(), run.cpu.ArchState(); a != b {
		vs = append(vs, violate("lockstep",
			"architected state diverges:\ninterpreter: %s%s: %s", a, eng, b))
	}
	if addr, ok := interp.cpu.Mem.Diff(run.cpu.Mem); !ok {
		vs = append(vs, violate("lockstep", "memory diverges at %#x (%s)", addr, eng))
	}
	return vs
}

// edit rewrites prog.File through internal/core, with instrument
// optionally applying full qpt instrumentation first.  Panics in the
// editing pipeline are returned as errors.
func edit(f *binfile.File, instrument bool) (edited *binfile.File, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	e, err := core.NewExecutable(f)
	if err != nil {
		return nil, err
	}
	if err := e.ReadContents(); err != nil {
		return nil, err
	}
	if instrument {
		if _, err := qpt.Instrument(e, qpt.Full); err != nil {
			return nil, err
		}
	}
	return e.BuildEdited()
}

// CheckEdited verifies that editing preserves behavior: the original,
// an identity relayout (BuildEdited with no edits), and a fully
// qpt-instrumented build must all exit with the same code and write
// the same output.
func CheckEdited(p *Program, maxSteps uint64) []Violation {
	if !isSPARC(p.Cfg.ISA) {
		// The editing pipeline (internal/core, internal/qpt) analyzes
		// SPARC executables only; the oracle does not apply elsewhere.
		return nil
	}
	orig := runOnce(p.File, maxSteps, EngineChained, dec)
	if orig.err != nil {
		return []Violation{violate("edited", "original program fails to run: %v", orig.err)}
	}
	if orig.cpu == nil || !orig.cpu.Halted {
		return []Violation{violate("edited", "original program did not halt")}
	}
	var vs []Violation
	for _, mode := range []struct {
		name       string
		instrument bool
	}{{"identity", false}, {"instrumented", true}} {
		ed, err := edit(p.File, mode.instrument)
		if err != nil {
			vs = append(vs, violate("edited", "%s edit failed: %v", mode.name, err))
			continue
		}
		res := runOnce(ed, maxSteps*8, EngineChained, dec)
		if res.err != nil {
			vs = append(vs, violate("edited", "%s build fails to run: %v", mode.name, res.err))
			continue
		}
		if res.cpu == nil || !res.cpu.Halted {
			vs = append(vs, violate("edited", "%s build did not halt", mode.name))
			continue
		}
		if res.cpu.ExitCode != orig.cpu.ExitCode {
			vs = append(vs, violate("edited",
				"%s build exits %d, original exits %d", mode.name, res.cpu.ExitCode, orig.cpu.ExitCode))
		}
		if !bytes.Equal(res.out, orig.out) {
			vs = append(vs, violate("edited",
				"%s build wrote %q, original wrote %q", mode.name, res.out, orig.out))
		}
	}
	return vs
}

// CheckAll runs every program-dependent oracle.
func CheckAll(p *Program, maxSteps uint64) []Violation {
	vs := CheckRoundTripWords(p)
	vs = append(vs, CheckLockstep(p, maxSteps)...)
	vs = append(vs, CheckEdited(p, maxSteps)...)
	return vs
}
