package fuzz

import (
	"fmt"
	"strings"
)

// CheckFunc runs some oracle set over a generated program.
type CheckFunc func(p *Program, maxSteps uint64) []Violation

// fails regenerates cfg and reports whether check still finds a
// violation.  Generation failures count as failures too (a config
// that stops assembling mid-shrink is its own bug).
func fails(cfg Config, check CheckFunc, maxSteps uint64) bool {
	p, err := Generate(cfg)
	if err != nil {
		return true
	}
	return len(check(p, maxSteps)) > 0
}

// Shrink greedily minimizes a failing configuration: it halves and
// then decrements the structural sizes, and turns feature toggles off
// one at a time, keeping any reduction that still fails.  Because the
// generator draws each routine from its own seed-derived stream,
// reducing Routines is a prefix-preserving shrink.  The result is the
// smallest configuration this greedy process can reach that still
// violates check.
func Shrink(cfg Config, check CheckFunc, maxSteps uint64) Config {
	if !fails(cfg, check, maxSteps) {
		return cfg // not reproducible; nothing to shrink
	}
	changed := true
	for changed {
		changed = false
		// Structural sizes first: halve while possible, then step.
		for _, step := range []func(c *Config) bool{
			func(c *Config) bool { c.Routines /= 2; return c.Routines >= 1 },
			func(c *Config) bool { c.Routines--; return c.Routines >= 1 },
			func(c *Config) bool { c.BodyOps /= 2; return c.BodyOps >= 1 },
			func(c *Config) bool { c.BodyOps--; return c.BodyOps >= 1 },
		} {
			for {
				cand := cfg
				if !step(&cand) {
					break
				}
				if !fails(cand, check, maxSteps) {
					break
				}
				cfg = cand
				changed = true
			}
		}
		for _, clear := range toggleClears {
			cand := cfg
			if !clear.clear(&cand) {
				continue // already off
			}
			if fails(cand, check, maxSteps) {
				cfg = cand
				changed = true
			}
		}
	}
	return cfg
}

// toggleClears enumerates the feature toggles for Shrink and
// Generalize.
var toggleClears = []struct {
	name  string
	clear func(c *Config) bool
	isSet func(c Config) bool
}{
	{"annulled", func(c *Config) bool { r := c.Annulled; c.Annulled = false; return r }, func(c Config) bool { return c.Annulled }},
	{"windows", func(c *Config) bool { r := c.Windows; c.Windows = false; return r }, func(c Config) bool { return c.Windows }},
	{"calls", func(c *Config) bool { r := c.Calls; c.Calls = false; return r }, func(c Config) bool { return c.Calls }},
	{"traps", func(c *Config) bool { r := c.Traps; c.Traps = false; return r }, func(c Config) bool { return c.Traps }},
	{"indirect", func(c *Config) bool { r := c.Indirect; c.Indirect = false; return r }, func(c Config) bool { return c.Indirect }},
	{"cont", func(c *Config) bool { r := c.Continuations; c.Continuations = false; return r }, func(c Config) bool { return c.Continuations }},
	{"edgeimms", func(c *Config) bool { r := c.EdgeImms; c.EdgeImms = false; return r }, func(c Config) bool { return c.EdgeImms }},
	{"fp", func(c *Config) bool { r := c.FP; c.FP = false; return r }, func(c Config) bool { return c.FP }},
	{"mem", func(c *Config) bool { r := c.Mem; c.Mem = false; return r }, func(c Config) bool { return c.Mem }},
	{"muldiv", func(c *Config) bool { r := c.MulDiv; c.MulDiv = false; return r }, func(c Config) bool { return c.MulDiv }},
	{"multientry", func(c *Config) bool { r := c.MultiEntry; c.MultiEntry = false; return r }, func(c Config) bool { return c.MultiEntry }},
	{"hidden", func(c *Config) bool { r := c.Hidden; c.Hidden = false; return r }, func(c Config) bool { return c.Hidden }},
	{"datablobs", func(c *Config) bool { r := c.DataBlobs; c.DataBlobs = false; return r }, func(c Config) bool { return c.DataBlobs }},
	{"strip", func(c *Config) bool { r := c.Strip; c.Strip = false; return r }, func(c Config) bool { return c.Strip }},
}

// Generalize characterizes a shrunk failure: which of the surviving
// feature toggles are required (clearing them makes the failure
// vanish), and whether the failure reproduces under nearby seeds.  It
// returns a human-readable summary for the report.
func Generalize(cfg Config, check CheckFunc, maxSteps uint64) string {
	var required []string
	for _, t := range toggleClears {
		if !t.isSet(cfg) {
			continue
		}
		cand := cfg
		t.clear(&cand)
		if !fails(cand, check, maxSteps) {
			required = append(required, t.name)
		}
	}
	hits := 0
	const trials = 8
	for d := int64(1); d <= trials; d++ {
		cand := cfg
		cand.Seed += d
		if fails(cand, check, maxSteps) {
			hits++
		}
	}
	var b strings.Builder
	if len(required) > 0 {
		fmt.Fprintf(&b, "required features: %s; ", strings.Join(required, ","))
	} else {
		b.WriteString("no single feature is required; ")
	}
	fmt.Fprintf(&b, "reproduces under %d/%d nearby seeds", hits, trials)
	return b.String()
}
