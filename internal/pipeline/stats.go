package pipeline

import (
	"fmt"
	"strings"
	"time"

	"eel/internal/telemetry"
)

// Stats summarizes one AnalyzeAll run: where the time went (per-stage
// wall time summed across workers), how much work was done
// (instructions decoded, blocks and edges built), and how the
// memoizing cache behaved.  It is the measurement substrate for the
// repository's performance trajectory; scripts/bench.sh serializes
// the same quantities as JSON.
type Stats struct {
	// Routines is the number of routines analyzed (including hidden
	// routines discovered during the run); Hidden counts just the
	// latter.  Errors counts routines whose CFG construction failed.
	Routines int
	Hidden   int
	Errors   int

	// Workers is the pool size used; Waves is the number of
	// fan-out rounds (more than one only when analysis discovers
	// hidden routines that then need analyzing themselves).
	Workers int
	Waves   int

	// Wall is the end-to-end elapsed time of the run.  The per-stage
	// durations below are summed across workers, so they can exceed
	// Wall on multi-core machines; their ratios show where the CPU
	// time goes.
	Wall         time.Duration
	CFGTime      time.Duration
	LivenessTime time.Duration
	DomTime      time.Duration
	LoopTime     time.Duration
	HashTime     time.Duration

	// Work volume.
	InstsDecoded int64
	BlocksBuilt  int64
	EdgesBuilt   int64

	// Cache behaviour during this run (zero when no cache was
	// supplied), counted per access against this run's own registry —
	// concurrent runs sharing one cache each see exactly their own
	// traffic.  Evictions counts entries this run pushed out.
	CacheHits      uint64
	CacheMisses    uint64
	CacheEvictions uint64
	// CacheDiskHits counts the subset of CacheHits served by decoding
	// a persisted bundle from the cache's disk backend (rather than
	// from the in-memory tier).
	CacheDiskHits uint64
}

// RoutinesPerSec is the run's analysis throughput.
func (s Stats) RoutinesPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Routines) / s.Wall.Seconds()
}

// InstsPerSec is the run's decode throughput.
func (s Stats) InstsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.InstsDecoded) / s.Wall.Seconds()
}

// CacheHitRate is hits/(hits+misses), or 0 when the run had no cache
// traffic.
func (s Stats) CacheHitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// String renders the stats in the multi-line form the CLI tools print
// under -stats.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pipeline: %d routines (%d hidden, %d errors) in %v with %d workers, %d wave(s)\n",
		s.Routines, s.Hidden, s.Errors, s.Wall.Round(time.Microsecond), s.Workers, s.Waves)
	fmt.Fprintf(&b, "  throughput: %.0f routines/s, %.0f insts/s (%d insts, %d blocks, %d edges)\n",
		s.RoutinesPerSec(), s.InstsPerSec(), s.InstsDecoded, s.BlocksBuilt, s.EdgesBuilt)
	fmt.Fprintf(&b, "  stage time (summed over workers): cfg %v, liveness %v, dominators %v, loops %v, hashing %v\n",
		s.CFGTime.Round(time.Microsecond), s.LivenessTime.Round(time.Microsecond),
		s.DomTime.Round(time.Microsecond), s.LoopTime.Round(time.Microsecond),
		s.HashTime.Round(time.Microsecond))
	if s.CacheHits+s.CacheMisses > 0 {
		fmt.Fprintf(&b, "  cache: %d hits (%d from disk), %d misses, %d evictions (%.1f%% hit rate)",
			s.CacheHits, s.CacheDiskHits, s.CacheMisses, s.CacheEvictions, 100*s.CacheHitRate())
	} else {
		fmt.Fprintf(&b, "  cache: disabled")
	}
	return b.String()
}

// collector is one run's private telemetry registry plus direct
// handles to its hot counters.  Scoping the registry per run is what
// makes concurrent AnalyzeAll calls attribute cache hits (and
// everything else) to the right run: workers increment only their
// run's counters, and Stats is a snapshot view of them.  At run end
// the registry's totals are folded into the process-wide registry
// (when one is enabled) under the same "pipeline.*" names.
type collector struct {
	reg *telemetry.Registry

	cfgNS, liveNS, domNS, loopNS, hashNS *telemetry.Counter
	insts, blocks, edges, errs           *telemetry.Counter
	cacheHits, cacheMisses, cacheEvict   *telemetry.Counter
	cacheDiskHits                        *telemetry.Counter
	routineInsts                         *telemetry.Histogram
}

func newCollector() *collector {
	reg := telemetry.New()
	return &collector{
		reg:           reg,
		cfgNS:         reg.Counter("pipeline.cfg_ns"),
		liveNS:        reg.Counter("pipeline.liveness_ns"),
		domNS:         reg.Counter("pipeline.dominators_ns"),
		loopNS:        reg.Counter("pipeline.loops_ns"),
		hashNS:        reg.Counter("pipeline.hash_ns"),
		insts:         reg.Counter("pipeline.insts_decoded"),
		blocks:        reg.Counter("pipeline.blocks_built"),
		edges:         reg.Counter("pipeline.edges_built"),
		errs:          reg.Counter("pipeline.errors"),
		cacheHits:     reg.Counter("pipeline.cache.hits"),
		cacheMisses:   reg.Counter("pipeline.cache.misses"),
		cacheEvict:    reg.Counter("pipeline.cache.evictions"),
		cacheDiskHits: reg.Counter("pipeline.cache.disk_hits"),
		routineInsts:  reg.Histogram("pipeline.routine_insts"),
	}
}

// timed runs f and adds its duration to the given nanosecond counter.
func timed(ns *telemetry.Counter, f func()) {
	t0 := time.Now()
	f()
	ns.Add(uint64(time.Since(t0)))
}

func (c *collector) snapshot(s *Stats) {
	s.CFGTime = time.Duration(c.cfgNS.Value())
	s.LivenessTime = time.Duration(c.liveNS.Value())
	s.DomTime = time.Duration(c.domNS.Value())
	s.LoopTime = time.Duration(c.loopNS.Value())
	s.HashTime = time.Duration(c.hashNS.Value())
	s.InstsDecoded = int64(c.insts.Value())
	s.BlocksBuilt = int64(c.blocks.Value())
	s.EdgesBuilt = int64(c.edges.Value())
	s.Errors = int(c.errs.Value())
	s.CacheHits = c.cacheHits.Value()
	s.CacheMisses = c.cacheMisses.Value()
	s.CacheEvictions = c.cacheEvict.Value()
	s.CacheDiskHits = c.cacheDiskHits.Value()
}
