package pipeline

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eel/internal/obs"
)

// DiskStore is the persistent second level of the analysis cache: a
// directory of content-addressed entry files, one per Key, that
// survives process restarts and is shared by every client of a
// long-running server (cmd/eeld).  It implements Backend.
//
// Properties the service depends on:
//
//   - Crash safety: entries are written to a temp file and renamed
//     into place, so a crash mid-write leaves at most a stray temp
//     file, never a half-written entry under a valid name.
//   - Corruption safety: every entry carries a magic, a version, a
//     length, and an FNV-64a checksum; a truncated or bit-flipped
//     entry is silently discarded (and deleted) on load, never fatal.
//   - Bounded: both entry count and total byte size are capped; the
//     least-recently-used entries are evicted (their files deleted)
//     when a store pushes past either bound.
//   - Concurrent: loads, stores, and evictions may interleave freely.
//     A reader that loses the race with an eviction sees a miss.
//
// Restart recovery scans the directory once: undamaged entries are
// indexed (oldest access first, using file mtimes as the cross-
// process LRU approximation), temp files are swept, and anything
// unreadable is removed.
type DiskStore struct {
	dir string

	mu         sync.Mutex
	entries    map[Key]*list.Element
	order      *list.List // front = most recently used
	totalBytes int64
	maxEntries int
	maxBytes   int64

	loads, loadHits, stores, evictions, corrupt atomic.Uint64
	evictedBytes                                atomic.Uint64
}

// diskEntry is what order elements carry.
type diskEntry struct {
	key  Key
	size int64
}

// Default DiskStore bounds.
const (
	DefaultDiskEntries = 65536
	DefaultDiskBytes   = 256 << 20
)

const (
	diskMagic  = 0x45454c42 // "EELB"
	diskSuffix = ".eelb"
	tmpPrefix  = "tmp-"
)

// OpenDiskStore opens (creating if needed) a persistent store rooted
// at dir, holding at most maxEntries entries and maxBytes total bytes
// (<= 0 selects the defaults).  Existing entries are re-indexed so a
// restarted server starts warm.
func OpenDiskStore(dir string, maxEntries int, maxBytes int64) (*DiskStore, error) {
	if maxEntries <= 0 {
		maxEntries = DefaultDiskEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultDiskBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pipeline: disk store: %w", err)
	}
	s := &DiskStore{
		dir:        dir,
		entries:    map[Key]*list.Element{},
		order:      list.New(),
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	return s, nil
}

// recover scans dir, sweeping temp files and indexing entries oldest
// first so the in-memory LRU order approximates cross-restart use.
func (s *DiskStore) recover() error {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("pipeline: disk store: %w", err)
	}
	type found struct {
		key   Key
		size  int64
		mtime time.Time
	}
	var all []found
	for _, de := range des {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, tmpPrefix) {
			os.Remove(filepath.Join(s.dir, name)) // crash leftovers
			continue
		}
		key, ok := parseEntryName(name)
		if !ok {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		all = append(all, found{key: key, size: info.Size(), mtime: info.ModTime()})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].mtime.Before(all[j].mtime) })
	for _, f := range all {
		// PushFront in oldest→newest order leaves the newest at the
		// front, i.e. most recently used.
		s.entries[f.key] = s.order.PushFront(&diskEntry{key: f.key, size: f.size})
		s.totalBytes += f.size
	}
	s.mu.Lock()
	s.evictLocked(nil)
	s.mu.Unlock()
	return nil
}

// entryName renders k as a filename; parseEntryName inverts it.
func entryName(k Key) string {
	return fmt.Sprintf("%016x-%08x-%06x%s", k.Hash, k.Start, k.Words, diskSuffix)
}

func parseEntryName(name string) (Key, bool) {
	if !strings.HasSuffix(name, diskSuffix) {
		return Key{}, false
	}
	var k Key
	_, err := fmt.Sscanf(strings.TrimSuffix(name, diskSuffix), "%16x-%8x-%6x", &k.Hash, &k.Start, &k.Words)
	if err != nil {
		return Key{}, false
	}
	return k, true
}

// frame wraps payload in the on-disk envelope: magic, version, key
// echo, length, checksum, payload.  The key echo guards against a
// renamed or hash-colliding file serving the wrong entry.
func frame(k Key, payload []byte) []byte {
	buf := make([]byte, 0, 44+len(payload))
	var hdr [44]byte
	binary.BigEndian.PutUint32(hdr[0:], diskMagic)
	binary.BigEndian.PutUint32(hdr[4:], codecVersion)
	binary.BigEndian.PutUint64(hdr[8:], k.Hash)
	binary.BigEndian.PutUint32(hdr[16:], k.Start)
	binary.BigEndian.PutUint32(hdr[20:], k.Words)
	binary.BigEndian.PutUint64(hdr[24:], uint64(len(payload)))
	h := fnv.New64a()
	h.Write(payload)
	binary.BigEndian.PutUint64(hdr[32:], h.Sum64())
	binary.BigEndian.PutUint32(hdr[40:], 0) // reserved
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	return buf
}

// unframe validates the envelope and returns the payload.
func unframe(k Key, data []byte) ([]byte, error) {
	if len(data) < 44 {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint32(data[0:]) != diskMagic {
		return nil, fmt.Errorf("bad magic")
	}
	if v := binary.BigEndian.Uint32(data[4:]); v != codecVersion {
		return nil, fmt.Errorf("codec version %d (want %d)", v, codecVersion)
	}
	ek := Key{
		Hash:  binary.BigEndian.Uint64(data[8:]),
		Start: binary.BigEndian.Uint32(data[16:]),
		Words: binary.BigEndian.Uint32(data[20:]),
	}
	if ek != k {
		return nil, fmt.Errorf("key mismatch")
	}
	n := binary.BigEndian.Uint64(data[24:])
	if n != uint64(len(data)-44) {
		return nil, fmt.Errorf("length %d does not match %d payload bytes", n, len(data)-44)
	}
	payload := data[44:]
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != binary.BigEndian.Uint64(data[32:]) {
		return nil, fmt.Errorf("checksum mismatch")
	}
	return payload, nil
}

// Load implements Backend: it returns the payload stored under k, or
// ok=false.  Damaged entries are deleted and reported as misses.
func (s *DiskStore) Load(k Key) ([]byte, bool) {
	s.loads.Add(1)
	path := filepath.Join(s.dir, entryName(k))
	data, err := os.ReadFile(path)
	if err != nil {
		// Lost a race with an eviction, or never stored: a miss.
		s.dropIndex(k)
		return nil, false
	}
	payload, err := unframe(k, data)
	if err != nil {
		s.corrupt.Add(1)
		obs.Record(obs.EvCacheCorrupt, uint64(k.Start), k.Hash)
		os.Remove(path)
		s.dropIndex(k)
		return nil, false
	}
	s.touch(k, int64(len(data)))
	// Refresh mtime so a future restart's LRU recovery sees the use;
	// best-effort (failure only skews cross-restart eviction order).
	now := time.Now()
	_ = os.Chtimes(path, now, now)
	s.loadHits.Add(1)
	return payload, true
}

// Store implements Backend: it persists payload under k, evicting
// least-recently-used entries beyond the store's bounds.
func (s *DiskStore) Store(k Key, payload []byte) {
	data := frame(k, payload)
	tmp, err := os.CreateTemp(s.dir, tmpPrefix+"*")
	if err != nil {
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		return
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, entryName(k))); err != nil {
		os.Remove(tmpName)
		return
	}
	s.stores.Add(1)

	s.mu.Lock()
	if el, ok := s.entries[k]; ok {
		de := el.Value.(*diskEntry)
		s.totalBytes += int64(len(data)) - de.size
		de.size = int64(len(data))
		s.order.MoveToFront(el)
	} else {
		s.entries[k] = s.order.PushFront(&diskEntry{key: k, size: int64(len(data))})
		s.totalBytes += int64(len(data))
	}
	var victims []Key
	s.evictLocked(&victims)
	s.mu.Unlock()
	for _, v := range victims {
		os.Remove(filepath.Join(s.dir, entryName(v)))
	}
}

// evictLocked trims the index to the store's bounds, recording the
// evicted keys in victims (nil to skip); the caller deletes the files
// outside the lock.  recover passes nil and deletes nothing — bounds
// shrank between runs only if the caller reconfigured them, and the
// next Store pass cleans up.
func (s *DiskStore) evictLocked(victims *[]Key) {
	for len(s.entries) > s.maxEntries || s.totalBytes > s.maxBytes {
		last := s.order.Back()
		if last == nil {
			break
		}
		de := last.Value.(*diskEntry)
		s.order.Remove(last)
		delete(s.entries, de.key)
		s.totalBytes -= de.size
		s.evictions.Add(1)
		s.evictedBytes.Add(uint64(de.size))
		if victims != nil {
			*victims = append(*victims, de.key)
		}
	}
}

// touch refreshes k's LRU position (re-inserting it if an eviction
// removed the index entry while the file still existed).
func (s *DiskStore) touch(k Key, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.entries[k] = s.order.PushFront(&diskEntry{key: k, size: size})
	s.totalBytes += size
}

// dropIndex forgets k without touching the filesystem.
func (s *DiskStore) dropIndex(k Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[k]; ok {
		de := el.Value.(*diskEntry)
		s.order.Remove(el)
		delete(s.entries, k)
		s.totalBytes -= de.size
	}
}

// Len returns the number of indexed entries.
func (s *DiskStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the indexed entries' total on-disk size.
func (s *DiskStore) Bytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalBytes
}

// Dir returns the store's root directory.
func (s *DiskStore) Dir() string { return s.dir }

// DiskCounters reports a store's lifetime activity.
type DiskCounters struct {
	Loads, LoadHits, Stores, Evictions, Corrupt uint64
	EvictedBytes                                uint64
}

// Counters returns lifetime load/store/eviction/corruption counts.
func (s *DiskStore) Counters() DiskCounters {
	return DiskCounters{
		Loads:        s.loads.Load(),
		LoadHits:     s.loadHits.Load(),
		Stores:       s.stores.Load(),
		Evictions:    s.evictions.Load(),
		Corrupt:      s.corrupt.Load(),
		EvictedBytes: s.evictedBytes.Load(),
	}
}
