package pipeline

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/dataflow"
)

// analysisVersion is baked into every cache key; bump it whenever the
// CFG builder, liveness, dominator, loop, or slicing code changes
// meaning, so stale entries from an older analysis can never be
// returned.  Version 2 switched the image salt from whole-text
// hashing to layout hashing plus per-bundle external-read validation
// (see imageSalt), so keys from version 1 mean something different.
const analysisVersion = 2

// Key content-addresses one routine analysis: a 64-bit FNV-1a digest
// over the routine's machine words, its entry-point offsets, the
// analysis version, the option bits that change analysis results, and
// a whole-image salt (see imageSalt).  Start and the word count are
// kept alongside the digest: block and instruction addresses are
// absolute, so an analysis is only reusable for a routine loaded at
// the same address, and keeping them in the key also cuts the
// collision surface.
type Key struct {
	Hash  uint64
	Start uint32
	Words uint32
}

// readDep records one word of the image outside the routine's own
// extent that the analysis consulted (a dispatch table or literal
// pointer slot found by indirect-jump slicing).  A cached bundle is
// valid only while every recorded word still reads the same.
type readDep struct {
	addr uint32
	word uint32
	ok   bool
}

// bundle is the immutable payload cached per key.  Graphs, liveness
// maps, dominators, and loops are shared on a hit — callers must
// treat them as read-only, which every analysis consumer in this
// repository does.
type bundle struct {
	graph *cfg.Graph
	live  *dataflow.Liveness
	idom  map[*cfg.Block]*cfg.Block
	loops []*dataflow.Loop
	// hasLoops distinguishes "loop stage ran, found none" from "loop
	// stage skipped" (both leave loops nil).
	hasLoops bool
	// tail records a hidden-routine discovery (§3.1 stage 4) made
	// while this analysis was first computed, so a hit on a fresh
	// executable replays the split; 0 when none.
	tail uint32
	// reads are the analysis's out-of-routine image dependencies,
	// validated on every hit (see imageSalt for why the key alone
	// cannot cover them).
	reads []readDep
	// work volume, replayed into Stats on a hit so cached and
	// uncached runs report comparable totals.
	insts, blocks, edges int64
}

// depsValid reports whether every external word b's analysis read
// still has the value it read — the incremental-re-analysis
// invariant: a routine's cached bundle survives edits elsewhere in
// the image exactly when none of the words it actually consulted
// changed.
func (b *bundle) depsValid(e *core.Executable) bool {
	for _, d := range b.reads {
		w, ok := e.ReadWord(d.addr)
		if ok != d.ok || (ok && w != d.word) {
			return false
		}
	}
	return true
}

// Backend is a second-level cache consulted when the in-memory tier
// misses: Load returns the serialized bundle stored under k, Store
// persists one.  Implementations must be safe for concurrent use;
// DiskStore is the production implementation (content-addressed
// files, LRU-bounded, survives restarts).  A Backend sees only
// opaque bytes — the pipeline owns the bundle codec (codec.go).
type Backend interface {
	Load(k Key) ([]byte, bool)
	Store(k Key, data []byte)
}

// Cache is a bounded, content-addressed memoization of routine
// analyses with LRU eviction, optionally backed by a persistent
// second level.  It is safe for concurrent use by the pipeline's
// workers and may be shared across executables and across AnalyzeAll
// runs; re-analyzing an unchanged program is pure hits.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[Key]*list.Element
	order    *list.List // front = most recently used

	backend Backend

	hits, misses, evictions atomic.Uint64
}

// lruEntry is what order elements carry.
type lruEntry struct {
	key Key
	b   *bundle
}

// DefaultCacheCapacity bounds a Cache built with capacity <= 0.
const DefaultCacheCapacity = 4096

// NewCache builds a cache holding at most capacity routine analyses
// (DefaultCacheCapacity when capacity <= 0).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[Key]*list.Element),
		order:    list.New(),
	}
}

// SetBackend attaches a second-level store consulted on in-memory
// misses and populated on computes.  Call it before sharing the
// cache; the backend itself must be concurrency-safe.
func (c *Cache) SetBackend(b Backend) { c.backend = b }

// Backend returns the attached second-level store, or nil.
func (c *Cache) Backend() Backend { return c.backend }

// lookup returns the cached bundle for k without touching hit/miss
// accounting (the caller counts after validating the bundle against
// the executable, so a dependency-invalidated entry counts as a
// miss, not a hit).
func (c *Cache) lookup(k Key) (*bundle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).b, true
}

// countHit / countMiss attribute one access to both the cache's
// lifetime counters and col's per-run counters.  Attributing at the
// access (rather than differencing the lifetime counters around a
// run) is what keeps concurrent AnalyzeAll runs sharing one cache
// from claiming each other's traffic.
func (c *Cache) countHit(col *collector) {
	c.hits.Add(1)
	col.cacheHits.Add(1)
}

func (c *Cache) countMiss(col *collector) {
	c.misses.Add(1)
	col.cacheMisses.Add(1)
}

// put stores b under k, evicting least-recently-used entries beyond
// capacity; evictions are charged to col's run.  Storing an existing
// key refreshes it (two workers racing on identical routines both
// compute; the second store wins, which is harmless since the bundles
// are equivalent).
func (c *Cache) put(k Key, b *bundle, col *collector) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*lruEntry).b = b
		c.order.MoveToFront(el)
		return
	}
	c.entries[k] = c.order.PushFront(&lruEntry{key: k, b: b})
	for len(c.entries) > c.capacity {
		last := c.order.Back()
		if last == nil {
			break
		}
		c.order.Remove(last)
		delete(c.entries, last.Value.(*lruEntry).key)
		c.evictions.Add(1)
		col.cacheEvict.Add(1)
	}
}

// Len returns the number of cached analyses.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters returns lifetime hit/miss/eviction counts.
func (c *Cache) Counters() (hits, misses, evictions uint64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}

// Reset empties the in-memory tier and zeroes its counters (an
// attached backend is untouched: its contents are still valid).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[Key]*list.Element)
	c.order = list.New()
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
}

// imageSalt digests the image properties outside a routine's own
// words that can still influence its analysis: the container format,
// the entry point, every section's name and placement, and the full
// contents of non-text sections.  The text section contributes only
// its layout — hashing its contents would make every routine's key
// change whenever any routine changes, defeating incremental
// re-analysis.  What this leaves uncovered (text words outside the
// routine that slicing read: dispatch tables, literal pointer slots)
// is recorded per bundle as readDeps and validated on every hit.
func imageSalt(e *core.Executable) uint64 {
	h := fnv.New64a()
	writeU32 := func(v uint32) {
		h.Write([]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	h.Write([]byte(e.File.Format))
	writeU32(e.File.Entry)
	text := e.File.Text()
	for i := range e.File.Sections {
		s := &e.File.Sections[i]
		h.Write([]byte(s.Name))
		writeU32(s.Addr)
		writeU32(uint32(len(s.Data)))
		if s != text {
			h.Write(s.Data)
		}
	}
	return h.Sum64()
}

// routineKey content-addresses r's current extent.  ok is false when
// the routine's words are not fully mapped in the text section, in
// which case the analysis is simply not cached.
func routineKey(e *core.Executable, r *core.Routine, salt uint64) (Key, bool) {
	text := e.File.Text()
	if text == nil || r.Start < text.Addr || r.End > text.End() || r.End < r.Start {
		return Key{}, false
	}
	words := text.Data[r.Start-text.Addr : r.End-text.Addr]
	h := fnv.New64a()
	writeU32 := func(v uint32) {
		h.Write([]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
	}
	writeU32(analysisVersion)
	writeU32(optionBits(e))
	writeU32(uint32(salt >> 32))
	writeU32(uint32(salt))
	for _, entry := range r.Entries {
		writeU32(entry - r.Start)
	}
	h.Write(words)
	return Key{Hash: h.Sum64(), Start: r.Start, Words: uint32(len(words) / 4)}, true
}

// optionBits encodes the executable options that change analysis
// results (they gate indirect-jump resolution in the CFG builder).
func optionBits(e *core.Executable) uint32 {
	var bits uint32
	if e.ForceRuntimeTranslation {
		bits |= 1
	}
	if e.LightAnalysis {
		bits |= 2
	}
	return bits
}
