package pipeline

import (
	"encoding/binary"
	"fmt"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/machine"
)

// This file is the bundle serialization layer behind the persistent
// analysis cache: encodeBundle flattens one routine's analysis —
// graph structure, indirect-jump resolutions, liveness, dominators,
// loops, and the bundle's external-read dependencies — into a
// compact, deterministic byte string, and decodeBundle rebuilds live
// objects from it against a concrete executable.  Instruction objects
// are not serialized at all: a decoded bundle re-reads each
// instruction's word from the image and decodes it through the
// executable's interning decoder, so a load costs a few table lookups
// per instruction instead of re-running CFG construction, slicing,
// and the dataflow fixpoints.
//
// The format carries codecVersion and analysisVersion up front;
// decodeBundle rejects both mismatches, so bumping either invalidates
// every persisted entry without touching the store.

// codecVersion guards the serialized layout itself (field order,
// varint framing); analysisVersion (cache.go) guards the meaning of
// the analyses.
const codecVersion = 1

// bundle flag bits.
const (
	flagLive = 1 << iota
	flagIdom
	flagLoops
	flagGraphComplete
	flagGraphHasData
)

// encLimit caps decoded element counts so a corrupt length prefix
// cannot allocate unbounded memory.
const encLimit = 1 << 22

type enc struct{ buf []byte }

func (e *enc) u(v uint64)   { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) u32(v uint32) { e.u(uint64(v)) }
func (e *enc) b(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}
func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

type dec struct {
	buf []byte
	err error
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("pipeline: truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) u32() uint32 {
	v := d.u()
	if v > 0xffffffff {
		d.err = fmt.Errorf("pipeline: u32 overflow")
	}
	return uint32(v)
}

func (d *dec) n() int {
	v := d.u()
	if v > encLimit {
		d.err = fmt.Errorf("pipeline: implausible count %d", v)
		return 0
	}
	return int(v)
}

func (d *dec) b() bool {
	if d.err != nil {
		return false
	}
	if len(d.buf) == 0 {
		d.err = fmt.Errorf("pipeline: truncated bool")
		return false
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v != 0
}

func (d *dec) str() string {
	n := d.n()
	if d.err != nil {
		return ""
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("pipeline: truncated string")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// blockIndex maps graph blocks to their slice positions for encoding.
func blockIndex(g *cfg.Graph) map[*cfg.Block]int {
	idx := make(map[*cfg.Block]int, len(g.Blocks))
	for i, b := range g.Blocks {
		idx[b] = i
	}
	return idx
}

// encodeBundle serializes b.  Every field round-trips except the
// instruction objects themselves, which decode re-derives from the
// image.
func encodeBundle(b *bundle) []byte {
	g := b.graph
	e := &enc{buf: make([]byte, 0, 256+32*len(g.Blocks))}
	e.u(codecVersion)
	e.u(analysisVersion)

	var flags uint64
	if b.live != nil {
		flags |= flagLive
	}
	if b.idom != nil {
		flags |= flagIdom
	}
	if b.hasLoops {
		flags |= flagLoops
	}
	if g.Complete {
		flags |= flagGraphComplete
	}
	if g.HasData {
		flags |= flagGraphHasData
	}
	e.u(flags)

	e.u32(b.tail)
	e.u(uint64(b.insts))
	e.u(uint64(b.blocks))
	e.u(uint64(b.edges))

	// External-read dependencies.
	e.u(uint64(len(b.reads)))
	for _, r := range b.reads {
		e.u32(r.addr)
		e.b(r.ok)
		e.u32(r.word)
	}

	// Graph shell.
	e.u32(g.Start)
	e.u32(g.End)
	e.u(uint64(len(g.Entries)))
	for _, a := range g.Entries {
		e.u32(a)
	}
	e.u32(g.UnreachableTail)
	e.u(uint64(len(g.Warnings)))
	for _, w := range g.Warnings {
		e.str(w)
	}

	// Blocks: kind, flags, call target, and instruction addresses
	// (delta-encoded from the block's first address).
	idx := blockIndex(g)
	e.u(uint64(len(g.Blocks)))
	for _, blk := range g.Blocks {
		e.u(uint64(blk.Kind))
		e.b(blk.Uneditable)
		e.b(blk.HasData)
		e.u32(blk.CallTarget)
		e.u(uint64(len(blk.Insts)))
		prev := uint32(0)
		for i, in := range blk.Insts {
			if i == 0 {
				e.u32(in.Addr)
			} else {
				e.u32(in.Addr - prev)
			}
			prev = in.Addr
		}
	}
	entryID, exitID := 0, 0
	if g.Entry != nil {
		entryID = idx[g.Entry] + 1
	}
	if g.Exit != nil {
		exitID = idx[g.Exit] + 1
	}
	e.u(uint64(entryID)) // 0 = nil
	e.u(uint64(exitID))

	// Edges, in creation order (replaying them in order reproduces
	// each block's Succ/Pred ordering exactly).
	e.u(uint64(len(g.Edges)))
	for _, ed := range g.Edges {
		e.u(uint64(idx[ed.From]))
		e.u(uint64(idx[ed.To]))
		e.u(uint64(ed.Kind))
		e.b(ed.Uneditable)
	}

	// Indirect jumps.
	e.u(uint64(len(g.IndirectJumps)))
	for _, ij := range g.IndirectJumps {
		e.u(uint64(idx[ij.Block]))
		e.u32(ij.Addr)
		slot := 0
		if ij.Slot != nil {
			slot = idx[ij.Slot] + 1
		}
		e.u(uint64(slot))
		e.b(ij.Resolved)
		e.u32(ij.TableAddr)
		e.u(uint64(ij.TableLen))
		e.b(ij.Literal)
		e.u32(ij.LiteralTarget)
		e.b(ij.RuntimeOnly)
	}

	// Out-refs and external reads recorded on the graph.
	e.u(uint64(len(g.OutRefs)))
	for _, o := range g.OutRefs {
		e.u32(o.From)
		e.u32(o.Target)
		e.b(o.IsCall)
	}
	e.u(uint64(len(g.ExternalReads)))
	for _, a := range g.ExternalReads {
		e.u32(a)
	}

	// Liveness: per-block In/Out register sets, in block order.
	if b.live != nil {
		for _, blk := range g.Blocks {
			lo, hi := b.live.In[blk].Words()
			e.u(lo)
			e.u(hi)
			lo, hi = b.live.Out[blk].Words()
			e.u(lo)
			e.u(hi)
		}
	}

	// Dominators: per-block immediate dominator index (+1; 0 = none).
	if b.idom != nil {
		for _, blk := range g.Blocks {
			d := 0
			if id := b.idom[blk]; id != nil {
				d = idx[id] + 1
			}
			e.u(uint64(d))
		}
	}

	// Loops.
	if b.hasLoops {
		edgeIdx := make(map[*cfg.Edge]int, len(g.Edges))
		for i, ed := range g.Edges {
			edgeIdx[ed] = i
		}
		e.u(uint64(len(b.loops)))
		for _, l := range b.loops {
			e.u(uint64(idx[l.Head]))
			e.u(uint64(len(l.Body)))
			for _, blk := range g.Blocks { // deterministic body order
				if l.Body[blk] {
					e.u(uint64(idx[blk]))
				}
			}
			e.u(uint64(len(l.BackEdges)))
			for _, ed := range l.BackEdges {
				e.u(uint64(edgeIdx[ed]))
			}
		}
	}
	return e.buf
}

// decodeBundle rebuilds a bundle from data against e's image and
// decoder.  Any structural implausibility (truncation, out-of-range
// index, unmapped instruction address) returns an error; callers
// treat that as a cache miss, never a failure.
func decodeBundle(e *core.Executable, data []byte) (*bundle, error) {
	d := &dec{buf: data}
	if v := d.u(); v != codecVersion {
		return nil, fmt.Errorf("pipeline: codec version %d (want %d)", v, codecVersion)
	}
	if v := d.u(); v != analysisVersion {
		return nil, fmt.Errorf("pipeline: analysis version %d (want %d)", v, analysisVersion)
	}
	flags := d.u()

	b := &bundle{hasLoops: flags&flagLoops != 0}
	b.tail = d.u32()
	b.insts = int64(d.u())
	b.blocks = int64(d.u())
	b.edges = int64(d.u())

	nreads := d.n()
	for i := 0; i < nreads && d.err == nil; i++ {
		var r readDep
		r.addr = d.u32()
		r.ok = d.b()
		r.word = d.u32()
		b.reads = append(b.reads, r)
	}

	g := &cfg.Graph{
		ByAddr:   map[uint32]*cfg.Block{},
		Complete: flags&flagGraphComplete != 0,
		HasData:  flags&flagGraphHasData != 0,
	}
	g.SetDecoder(e.Dec)
	g.Start = d.u32()
	g.End = d.u32()
	nent := d.n()
	for i := 0; i < nent && d.err == nil; i++ {
		g.Entries = append(g.Entries, d.u32())
	}
	g.UnreachableTail = d.u32()
	nwarn := d.n()
	for i := 0; i < nwarn && d.err == nil; i++ {
		g.Warnings = append(g.Warnings, d.str())
	}

	nblocks := d.n()
	if d.err != nil {
		return nil, d.err
	}
	for i := 0; i < nblocks; i++ {
		blk := &cfg.Block{ID: i, Kind: cfg.BlockKind(d.u())}
		blk.Uneditable = d.b()
		blk.HasData = d.b()
		blk.CallTarget = d.u32()
		ninsts := d.n()
		addr := uint32(0)
		for j := 0; j < ninsts && d.err == nil; j++ {
			if j == 0 {
				addr = d.u32()
			} else {
				addr += d.u32()
			}
			w, ok := e.ReadWord(addr)
			if !ok {
				return nil, fmt.Errorf("pipeline: instruction address %#x unmapped", addr)
			}
			blk.Insts = append(blk.Insts, cfg.Inst{Addr: addr, MI: e.Dec.Decode(w)})
		}
		if d.err != nil {
			return nil, d.err
		}
		g.Blocks = append(g.Blocks, blk)
		if blk.Kind == cfg.KindNormal && len(blk.Insts) > 0 {
			g.ByAddr[blk.Insts[0].Addr] = blk
		}
	}

	blockAt := func(i int) (*cfg.Block, error) {
		if i < 0 || i >= len(g.Blocks) {
			return nil, fmt.Errorf("pipeline: block index %d out of range", i)
		}
		return g.Blocks[i], nil
	}
	if id := int(d.u()); id > 0 {
		blk, err := blockAt(id - 1)
		if err != nil {
			return nil, err
		}
		g.Entry = blk
	}
	if id := int(d.u()); id > 0 {
		blk, err := blockAt(id - 1)
		if err != nil {
			return nil, err
		}
		g.Exit = blk
	}

	nedges := d.n()
	if d.err != nil {
		return nil, d.err
	}
	for i := 0; i < nedges; i++ {
		from, errF := blockAt(int(d.u()))
		to, errT := blockAt(int(d.u()))
		kind := cfg.EdgeKind(d.u())
		uned := d.b()
		if d.err != nil {
			return nil, d.err
		}
		if errF != nil {
			return nil, errF
		}
		if errT != nil {
			return nil, errT
		}
		g.NewEdge(from, to, kind, uned)
	}

	nij := d.n()
	for i := 0; i < nij && d.err == nil; i++ {
		ij := &cfg.IndirectJump{}
		blk, err := blockAt(int(d.u()))
		if err != nil {
			return nil, err
		}
		ij.Block = blk
		ij.Addr = d.u32()
		if slot := int(d.u()); slot > 0 {
			s, err := blockAt(slot - 1)
			if err != nil {
				return nil, err
			}
			ij.Slot = s
		}
		ij.Resolved = d.b()
		ij.TableAddr = d.u32()
		ij.TableLen = d.n()
		ij.Literal = d.b()
		ij.LiteralTarget = d.u32()
		ij.RuntimeOnly = d.b()
		g.IndirectJumps = append(g.IndirectJumps, ij)
	}

	nrefs := d.n()
	for i := 0; i < nrefs && d.err == nil; i++ {
		var o cfg.OutRef
		o.From = d.u32()
		o.Target = d.u32()
		o.IsCall = d.b()
		g.OutRefs = append(g.OutRefs, o)
	}
	next := d.n()
	for i := 0; i < next && d.err == nil; i++ {
		g.ExternalReads = append(g.ExternalReads, d.u32())
	}

	if flags&flagLive != 0 {
		in := make(map[*cfg.Block]machine.RegSet, len(g.Blocks))
		out := make(map[*cfg.Block]machine.RegSet, len(g.Blocks))
		for _, blk := range g.Blocks {
			in[blk] = machine.RegSetFromWords(d.u(), d.u())
			out[blk] = machine.RegSetFromWords(d.u(), d.u())
		}
		b.live = dataflow.RestoreLiveness(g, in, out)
	}

	if flags&flagIdom != 0 {
		idom := make(map[*cfg.Block]*cfg.Block, len(g.Blocks))
		for _, blk := range g.Blocks {
			if id := int(d.u()); id > 0 {
				dom, err := blockAt(id - 1)
				if err != nil {
					return nil, err
				}
				idom[blk] = dom
			}
		}
		b.idom = idom
	}

	if b.hasLoops {
		nloops := d.n()
		for i := 0; i < nloops && d.err == nil; i++ {
			head, err := blockAt(int(d.u()))
			if err != nil {
				return nil, err
			}
			l := &dataflow.Loop{Head: head, Body: map[*cfg.Block]bool{}}
			nbody := d.n()
			for j := 0; j < nbody && d.err == nil; j++ {
				blk, err := blockAt(int(d.u()))
				if err != nil {
					return nil, err
				}
				l.Body[blk] = true
			}
			nback := d.n()
			for j := 0; j < nback && d.err == nil; j++ {
				ei := int(d.u())
				if ei < 0 || ei >= len(g.Edges) {
					return nil, fmt.Errorf("pipeline: edge index %d out of range", ei)
				}
				l.BackEdges = append(l.BackEdges, g.Edges[ei])
			}
			b.loops = append(b.loops, l)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	b.graph = g
	return b, nil
}
