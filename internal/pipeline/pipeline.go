// Package pipeline analyzes a whole executable concurrently.  EEL's
// per-routine analyses — CFG construction with indirect-jump slicing
// (§3.3), liveness (§3.5), dominators, natural loops — are
// independent across routines, so a bounded worker pool fans routines
// out and collects one immutable RoutineAnalysis bundle per routine,
// in routine order, making the result bit-identical to a sequential
// walk regardless of worker count.
//
// Analysis can discover new routines (the §3.1 stage-4 hidden-routine
// split of unreachable tails); the pipeline runs in waves until no
// undiscovered routine remains, so callers never need the manual
// hidden-routine worklist loop of the paper's Figure 1.
//
// An optional content-addressed Cache memoizes bundles across runs
// and executables: a routine whose machine words (and anything its
// analysis can observe) are unchanged is a map hit instead of a
// recompute, which makes re-edit workflows and repeated corpus runs
// cheap.  A Stats block (per-stage times, throughput, cache hit rate)
// comes back with every run.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/telemetry"
)

// Options configures AnalyzeAll.  The zero value asks for everything:
// GOMAXPROCS workers, liveness, dominators, and loops, with no cache.
type Options struct {
	// Workers bounds the worker pool; <= 0 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, memoizes routine analyses across runs.
	Cache *Cache
	// NoLiveness, NoDominators, and NoLoops skip the corresponding
	// dataflow stage (the CFG is always built).  Skipping loops
	// implies nothing about dominators; each flag is independent,
	// except that loops need dominators and compute them on demand.
	NoLiveness   bool
	NoDominators bool
	NoLoops      bool

	// Telemetry, when non-nil, receives this run's counters (under
	// "pipeline.*" names) merged in at completion.  Counters are
	// accumulated in a private per-run registry first, so concurrent
	// AnalyzeAll runs never mix their numbers.  Nil defaults to the
	// process-wide telemetry.Default() registry, which is itself nil
	// (a no-op sink) unless telemetry was enabled.
	Telemetry *telemetry.Registry
	// Tracer receives structured spans: one per run, one per wave,
	// and one per routine analysis (on the analyzing worker's track).
	// Nil defaults to telemetry.ActiveTracer(), which is nil — and
	// free — unless tracing was enabled.
	Tracer *telemetry.Tracer
	// TraceTag, when non-empty, is attached as the "trace" argument on
	// every span this run emits, tying the run's waves and per-routine
	// analyses to the distributed trace of the request that triggered
	// them (eeld threads its X-Eel-Trace ID through here).
	TraceTag string
}

// RoutineAnalysis is one routine's immutable analysis bundle.  When
// it came from a cache shared with another executable, Graph and the
// dataflow results are shared objects: treat them as read-only.
type RoutineAnalysis struct {
	Routine *core.Routine
	// Graph is the normalized CFG (nil when Err is set).
	Graph *cfg.Graph
	// Liveness, IDom, and Loops are nil when the corresponding
	// Options flag disabled them (or Err is set).
	Liveness *dataflow.Liveness
	IDom     map[*cfg.Block]*cfg.Block
	Loops    []*dataflow.Loop
	// Err records a CFG-construction failure; the pipeline keeps
	// going so one bad routine doesn't hide the rest.
	Err error
	// FromCache reports that this bundle was a cache hit; FromDisk
	// that the hit was served by the persistent tier (and decoded),
	// not the in-memory one.
	FromCache bool
	FromDisk  bool
}

// IndirectJumps is a convenience accessor (nil-safe on Err bundles).
func (a *RoutineAnalysis) IndirectJumps() []*cfg.IndirectJump {
	if a.Graph == nil {
		return nil
	}
	return a.Graph.IndirectJumps
}

// Result is a whole-executable analysis.
type Result struct {
	Exec *core.Executable
	// Analyses holds one bundle per routine — including hidden
	// routines discovered during this run — sorted by routine start
	// address (the executable's routine order).
	Analyses []*RoutineAnalysis
	Stats    Stats

	byRoutine map[*core.Routine]*RoutineAnalysis
}

// Of returns r's bundle, or nil.
func (res *Result) Of(r *core.Routine) *RoutineAnalysis { return res.byRoutine[r] }

// ByName returns the bundle for the named routine, or nil.
func (res *Result) ByName(name string) *RoutineAnalysis {
	for _, a := range res.Analyses {
		if a.Routine.Name == name {
			return a
		}
	}
	return nil
}

// AnalyzeAll analyzes every routine of e concurrently and returns the
// bundles in routine order.  The result is deterministic: any worker
// count produces the same analyses in the same order as a sequential
// walk.  e's routine list may grow during the run (hidden-routine
// discovery); the returned analyses cover the final list.
func AnalyzeAll(e *core.Executable, opts Options) (*Result, error) {
	if e == nil {
		return nil, fmt.Errorf("pipeline: nil executable")
	}
	if e.File == nil || e.File.Text() == nil {
		return nil, fmt.Errorf("pipeline: executable has no text section")
	}
	if len(e.Routines()) == 0 {
		return nil, fmt.Errorf("pipeline: executable has no routines (call ReadContents first)")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	res := &Result{Exec: e, byRoutine: map[*core.Routine]*RoutineAnalysis{}}
	col := newCollector()
	tracer := opts.Tracer
	if tracer == nil {
		tracer = telemetry.ActiveTracer()
	}
	runSpan := tracer.Begin("pipeline.AnalyzeAll", "pipeline")
	if opts.TraceTag != "" {
		runSpan.Arg("trace", opts.TraceTag)
	}
	start := time.Now()

	var salt uint64
	if opts.Cache != nil {
		timed(col.hashNS, func() { salt = imageSalt(e) })
	}

	// Waves: analyze every not-yet-analyzed routine, which may
	// discover hidden routines for the next wave.  Workers touch only
	// their own routine (plus executable-level state behind the
	// executable's lock), so each wave is race-free; the barrier
	// between waves makes discovery deterministic.
	discovered := 0
	waves := 0
	for {
		var pending []*core.Routine
		for _, r := range e.Routines() {
			if res.byRoutine[r] == nil {
				pending = append(pending, r)
			}
		}
		if len(pending) == 0 {
			break
		}
		waves++
		if waves > 1 {
			discovered += len(pending)
		}
		waveSpan := tracer.Begin(fmt.Sprintf("wave %d", waves), "pipeline")
		waveSpan.Arg("routines", len(pending))
		if opts.TraceTag != "" {
			waveSpan.Arg("trace", opts.TraceTag)
		}

		out := make([]*RoutineAnalysis, len(pending))
		jobs := make(chan int)
		var wg sync.WaitGroup
		n := workers
		if n > len(pending) {
			n = len(pending)
		}
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for idx := range jobs {
					r := pending[idx]
					sp := tracer.BeginTID("analyze "+r.Name, "routine", worker+1)
					if opts.TraceTag != "" {
						sp.Arg("trace", opts.TraceTag)
					}
					out[idx] = analyzeRoutine(e, r, opts, salt, col)
					if out[idx].FromCache {
						sp.Arg("cache", "hit")
						if out[idx].FromDisk {
							sp.Arg("disk", "hit")
						}
					}
					sp.End()
				}
			}(w)
		}
		for idx := range pending {
			jobs <- idx
		}
		close(jobs)
		wg.Wait()
		waveSpan.End()

		for i, r := range pending {
			res.byRoutine[r] = out[i]
		}
	}

	// Collect in the executable's (address-sorted) routine order.
	for _, r := range e.Routines() {
		if a := res.byRoutine[r]; a != nil {
			res.Analyses = append(res.Analyses, a)
		}
	}

	res.Stats.Routines = len(res.Analyses)
	res.Stats.Hidden = discovered
	res.Stats.Workers = workers
	res.Stats.Waves = waves
	res.Stats.Wall = time.Since(start)
	col.snapshot(&res.Stats)

	runSpan.Arg("routines", res.Stats.Routines)
	runSpan.Arg("waves", waves)
	runSpan.Arg("workers", workers)
	if opts.Cache != nil {
		runSpan.Arg("cache_hits", res.Stats.CacheHits)
		runSpan.Arg("cache_misses", res.Stats.CacheMisses)
	}
	runSpan.End()

	// Fold this run's private counters into the process-wide (or
	// caller-supplied) registry.  Doing it once at run end keeps the
	// workers' hot path free of global-registry traffic.
	dst := opts.Telemetry
	if dst == nil {
		dst = telemetry.Default()
	}
	col.reg.AddTo(dst)
	// Live gauges over the decoder's interning atomics; registering is
	// idempotent (latest decoder wins) and snapshot-time only.
	e.Dec.AttachTelemetry(dst)
	return res, nil
}

// analyzeRoutine produces one routine's bundle, consulting and
// populating the cache when one is configured.
func analyzeRoutine(e *core.Executable, r *core.Routine, opts Options, salt uint64, col *collector) *RoutineAnalysis {
	var key Key
	keyOK := false
	if opts.Cache != nil {
		timed(col.hashNS, func() { key, keyOK = routineKey(e, r, salt) })
		if keyOK {
			// First level: in-memory bundle.  A hit still has to cover
			// what this run asks for and have its out-of-routine read
			// dependencies intact; anything else falls through and is
			// counted as a miss.
			if b, hit := opts.Cache.lookup(key); hit && bundleCovers(b, opts) && b.depsValid(e) {
				opts.Cache.countHit(col)
				return adoptBundle(e, r, b, col)
			}
			// Second level: persisted bundle.  Decode re-derives the
			// instructions from this executable's image words, so a
			// decoded bundle is native to e; promote it to the
			// in-memory tier for the rest of the run.
			if be := opts.Cache.Backend(); be != nil {
				if data, ok := be.Load(key); ok {
					if b, err := decodeBundle(e, data); err == nil && bundleCovers(b, opts) && b.depsValid(e) {
						opts.Cache.put(key, b, col)
						opts.Cache.countHit(col)
						col.cacheDiskHits.Add(1)
						a := adoptBundle(e, r, b, col)
						a.FromDisk = true
						return a
					}
				}
			}
			opts.Cache.countMiss(col)
		}
	}

	preEnd := r.End
	a := &RoutineAnalysis{Routine: r}
	var g *cfg.Graph
	var err error
	timed(col.cfgNS, func() { g, err = r.ControlFlowGraph() })
	if err != nil {
		col.errs.Add(1)
		a.Err = err
		return a
	}
	a.Graph = g
	var insts int64
	for _, b := range g.Blocks {
		insts += int64(len(b.Insts))
	}
	col.insts.Add(uint64(insts))
	col.blocks.Add(uint64(len(g.Blocks)))
	col.edges.Add(uint64(len(g.Edges)))
	col.routineInsts.Observe(uint64(insts))

	if !opts.NoLiveness {
		timed(col.liveNS, func() {
			a.Liveness = dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
		})
	}
	if !opts.NoDominators || !opts.NoLoops {
		var idom map[*cfg.Block]*cfg.Block
		timed(col.domNS, func() { idom = dataflow.Dominators(g) })
		if !opts.NoDominators {
			a.IDom = idom
		}
		if !opts.NoLoops {
			timed(col.loopNS, func() { a.Loops = dataflow.NaturalLoops(g, idom) })
		}
	}

	if opts.Cache != nil && keyOK {
		b := &bundle{
			graph:    g,
			live:     a.Liveness,
			idom:     a.IDom,
			loops:    a.Loops,
			hasLoops: !opts.NoLoops,
			insts:    insts,
			blocks:   int64(len(g.Blocks)),
			edges:    int64(len(g.Edges)),
		}
		// Snapshot the out-of-routine words the analysis consulted;
		// depsValid re-reads them on every future hit.
		for _, addr := range g.ExternalReads {
			w, ok := e.ReadWord(addr)
			b.reads = append(b.reads, readDep{addr: addr, word: w, ok: ok})
		}
		if r.End < preEnd {
			// Analysis split an unreachable tail off this routine;
			// remember it so a hit on a fresh executable replays the
			// split.
			b.tail = r.End
		}
		opts.Cache.put(key, b, col)
		var persist []Key
		persist = append(persist, key)
		if b.tail != 0 {
			// Also index by the shrunken extent, so re-analyzing this
			// same (already split) executable still hits.
			var postKey Key
			var postOK bool
			timed(col.hashNS, func() { postKey, postOK = routineKey(e, r, salt) })
			if postOK {
				opts.Cache.put(postKey, b, col)
				persist = append(persist, postKey)
			}
		}
		if be := opts.Cache.Backend(); be != nil {
			data := encodeBundle(b)
			for _, k := range persist {
				be.Store(k, data)
			}
		}
	}
	return a
}

// bundleCovers reports whether a cached bundle satisfies what opts
// asks for (a bundle cached by a run that skipped liveness cannot
// serve a run that wants it).
func bundleCovers(b *bundle, opts Options) bool {
	if !opts.NoLiveness && b.live == nil {
		return false
	}
	if !opts.NoDominators && b.idom == nil {
		return false
	}
	if !opts.NoLoops && !b.hasLoops {
		return false
	}
	return true
}

// adoptBundle installs a cached analysis into r: the routine's CFG
// accessor will return the cached graph, and a recorded hidden-tail
// discovery is replayed against this executable.
func adoptBundle(e *core.Executable, r *core.Routine, b *bundle, col *collector) *RoutineAnalysis {
	if b.tail != 0 && b.tail < r.End {
		e.RegisterHiddenTail(r, b.tail)
	}
	r.InstallGraph(b.graph)
	col.insts.Add(uint64(b.insts))
	col.blocks.Add(uint64(b.blocks))
	col.edges.Add(uint64(b.edges))
	return &RoutineAnalysis{
		Routine:   r,
		Graph:     b.graph,
		Liveness:  b.live,
		IDom:      b.idom,
		Loops:     b.loops,
		FromCache: true,
	}
}
