package pipeline_test

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"eel/internal/pipeline"
	"eel/internal/progen"
	"eel/internal/telemetry"
)

// diskCorpusFile is a progen workload big enough to exercise hidden
// routines and dispatch tables.
func diskCorpusFile(t testing.TB, seed int64, routines int) *progen.Program {
	t.Helper()
	c := progen.DefaultConfig(seed)
	c.Routines = routines
	p, err := progen.Generate(c)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDiskStoreWarmRestart is the service's restart story: a fresh
// process (new in-memory cache) pointed at the same store directory
// replays every analysis from disk — zero recomputes — and the
// results are identical.
func TestDiskStoreWarmRestart(t *testing.T) {
	p := diskCorpusFile(t, 7, 30)
	dir := t.TempDir()

	store, err := pipeline.OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := pipeline.NewCache(0)
	cache.SetBackend(store)
	cold, res1 := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache})
	if res1.Stats.CacheMisses == 0 {
		t.Fatal("cold run recorded no misses")
	}
	if store.Len() == 0 {
		t.Fatal("cold run persisted nothing")
	}

	// "Restart": new cache, new store handle, same directory.
	store2, err := pipeline.OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != store.Len() {
		t.Fatalf("recovery indexed %d entries, want %d", store2.Len(), store.Len())
	}
	cache2 := pipeline.NewCache(0)
	cache2.SetBackend(store2)
	warm, res2 := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache2})
	if res2.Stats.CacheMisses != 0 {
		t.Errorf("warm restart had %d misses, want 0", res2.Stats.CacheMisses)
	}
	if int(res2.Stats.CacheHits) != res2.Stats.Routines {
		t.Errorf("warm restart: %d hits for %d routines", res2.Stats.CacheHits, res2.Stats.Routines)
	}
	if res2.Stats.CacheDiskHits != res2.Stats.CacheHits {
		t.Errorf("warm restart: %d disk hits of %d hits, want all from disk",
			res2.Stats.CacheDiskHits, res2.Stats.CacheHits)
	}
	diffFingerprints(t, "warm restart", cold, warm)
}

// TestDiskStoreCrashRecovery damages a populated store the ways a
// crash can — a leftover temp file, a truncated entry, an entry full
// of garbage — and asserts recovery and subsequent runs shrug: the
// damaged entries become recomputes, never errors.
func TestDiskStoreCrashRecovery(t *testing.T) {
	p := diskCorpusFile(t, 11, 20)
	dir := t.TempDir()

	store, err := pipeline.OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := pipeline.NewCache(0)
	cache.SetBackend(store)
	cold, _ := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache})

	names, err := filepath.Glob(filepath.Join(dir, "*.eelb"))
	if err != nil || len(names) < 2 {
		t.Fatalf("want >= 2 entries, got %d (err %v)", len(names), err)
	}
	// Truncate one entry mid-payload, fill another with garbage, and
	// drop a stray temp file and an unrelated file in the directory.
	if err := os.Truncate(names[0], 20); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(names[1], []byte(strings.Repeat("junk", 64)), 0o644); err != nil {
		t.Fatal(err)
	}
	tmpStray := filepath.Join(dir, "tmp-crashed123")
	if err := os.WriteFile(tmpStray, []byte("partial write"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "NOTES.txt"), []byte("not an entry"), 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := pipeline.OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if _, err := os.Stat(tmpStray); !os.IsNotExist(err) {
		t.Errorf("recovery left temp file behind (err %v)", err)
	}

	cache2 := pipeline.NewCache(0)
	cache2.SetBackend(store2)
	warm, res := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache2})
	diffFingerprints(t, "post-crash", cold, warm)
	if res.Stats.CacheMisses != 2 {
		t.Errorf("post-crash run had %d misses, want 2 (the damaged entries)", res.Stats.CacheMisses)
	}
	c := store2.Counters()
	if c.Corrupt != 2 {
		t.Errorf("store counted %d corrupt entries, want 2", c.Corrupt)
	}
	// The damaged files must be gone (recomputes re-stored fresh ones).
	for _, n := range names[:2] {
		data, err := os.ReadFile(n)
		if err == nil && (len(data) == 20 || strings.HasPrefix(string(data), "junk")) {
			t.Errorf("damaged entry %s still on disk", filepath.Base(n))
		}
	}
}

// TestDiskStoreVersionBumpInvalidation asserts both version fences: a
// future on-disk envelope version is rejected at the frame layer, and
// a payload whose analysis version differs is rejected at the codec
// layer.  Either way the entry is a miss, never a wrong answer.
func TestDiskStoreVersionBumpInvalidation(t *testing.T) {
	p := diskCorpusFile(t, 13, 12)
	dir := t.TempDir()

	store, err := pipeline.OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache := pipeline.NewCache(0)
	cache.SetBackend(store)
	analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache})

	names, err := filepath.Glob(filepath.Join(dir, "*.eelb"))
	if err != nil || len(names) < 2 {
		t.Fatalf("want >= 2 entries, got %d (err %v)", len(names), err)
	}

	// Bump the envelope version of one entry (header bytes 4:8).
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[7]++ // big-endian low byte of the version field
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Bump the analysis version inside another entry's payload (the
	// payload's second uvarint; both versions are single-byte today)
	// and re-checksum so only the codec-layer fence can catch it.
	data2, err := os.ReadFile(names[1])
	if err != nil {
		t.Fatal(err)
	}
	payload := data2[44:]
	payload[1]++ // analysisVersion uvarint
	refreshChecksum(data2)
	if err := os.WriteFile(names[1], data2, 0o644); err != nil {
		t.Fatal(err)
	}

	store2, err := pipeline.OpenDiskStore(dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cache2 := pipeline.NewCache(0)
	cache2.SetBackend(store2)
	_, res := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache2})
	if res.Stats.CacheMisses != 2 {
		t.Errorf("versioned-out entries produced %d misses, want 2", res.Stats.CacheMisses)
	}
	if res.Stats.CacheDiskHits == 0 {
		t.Errorf("undamaged entries should still hit from disk (disk hits %d)", res.Stats.CacheDiskHits)
	}
}

// refreshChecksum recomputes a framed entry's payload checksum
// (header bytes 32:40, FNV-64a over the payload) after a test mutates
// the payload, so only deeper validation layers can reject it.
func refreshChecksum(data []byte) {
	h := fnv.New64a()
	h.Write(data[44:])
	binary.BigEndian.PutUint64(data[32:], h.Sum64())
}

// TestDiskStoreConcurrentReadersDuringEviction hammers a tiny store
// with concurrent loaders and storers; run under -race this checks
// the store's locking, and functionally that readers racing evictions
// see clean misses, and the bounds hold afterwards.
func TestDiskStoreConcurrentReadersDuringEviction(t *testing.T) {
	store, err := pipeline.OpenDiskStore(t.TempDir(), 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]pipeline.Key, 32)
	for i := range keys {
		keys[i] = pipeline.Key{Hash: uint64(i) * 0x9e3779b97f4a7c15, Start: uint32(i) * 64, Words: 16}
	}
	payload := func(i int) []byte {
		return []byte(fmt.Sprintf("payload-%d-%s", i, strings.Repeat("x", i*7)))
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for i, k := range keys {
					if (i+round+w)%2 == 0 {
						store.Store(k, payload(i))
					} else if data, ok := store.Load(k); ok {
						if want := string(payload(i)); string(data) != want {
							t.Errorf("key %d: loaded %q, want %q", i, data, want)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if n := store.Len(); n > 4 {
		t.Errorf("store holds %d entries, bound is 4", n)
	}
	names, _ := filepath.Glob(filepath.Join(store.Dir(), "*.eelb"))
	if len(names) > 4 {
		t.Errorf("%d entry files on disk, bound is 4", len(names))
	}
	c := store.Counters()
	if c.Evictions == 0 {
		t.Error("no evictions despite 32 keys in a 4-entry store")
	}
	if c.Corrupt != 0 {
		t.Errorf("%d corrupt entries in a healthy store", c.Corrupt)
	}
}

// TestPipelineIncrementalReanalysis is the incremental-re-analysis
// invariant end to end: resubmitting an image with exactly one
// routine's code changed re-analyzes exactly that routine — every
// other routine replays from the cache.
func TestPipelineIncrementalReanalysis(t *testing.T) {
	p := diskCorpusFile(t, 7, 30)
	cache := pipeline.NewCache(0)
	_, res1 := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache})
	if res1.Stats.Errors != 0 {
		t.Fatalf("baseline run had %d errors", res1.Stats.Errors)
	}

	// Collect every out-of-routine word any analysis depends on; the
	// patch must avoid them or it would legitimately invalidate more
	// than one routine.
	e := load(t, p.File)
	res, err := pipeline.AnalyzeAll(e, pipeline.Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	external := map[uint32]bool{}
	for _, a := range res.Analyses {
		if a.Graph == nil {
			continue
		}
		for _, addr := range a.Graph.ExternalReads {
			external[addr] = true
		}
	}

	// Find an immediate-form ALU instruction (SPARC op=2, i=1, op3 in
	// the arithmetic range) no other routine reads, and flip the low
	// bit of its simm13 — a one-word, control-flow-preserving change
	// to exactly one routine.
	text := e.File.Text()
	var patchAddr uint32
	var patched string
	for _, a := range res.Analyses {
		if a.Graph == nil || a.Routine.Hidden {
			continue
		}
		for _, b := range a.Graph.Blocks {
			for _, in := range b.Insts {
				w := in.MI.Word()
				if w>>30 == 2 && w&(1<<13) != 0 && (w>>19)&0x3f < 0x10 && !external[in.Addr] {
					patchAddr, patched = in.Addr, a.Routine.Name
					break
				}
			}
			if patched != "" {
				break
			}
		}
		if patched != "" {
			break
		}
	}
	if patched == "" {
		t.Fatal("no patchable ALU-immediate instruction found")
	}
	off := patchAddr - text.Addr
	text.Data[off+3] ^= 1 // low bit of simm13 (big-endian word)

	_, res2 := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache})
	if res2.Stats.CacheMisses != 1 {
		t.Errorf("patched %s at %#x: %d misses, want exactly 1", patched, patchAddr, res2.Stats.CacheMisses)
	}
	if int(res2.Stats.CacheHits) != res2.Stats.Routines-1 {
		t.Errorf("patched run: %d hits for %d routines, want %d",
			res2.Stats.CacheHits, res2.Stats.Routines, res2.Stats.Routines-1)
	}
	if res2.Stats.Errors != 0 {
		t.Errorf("patched run had %d errors", res2.Stats.Errors)
	}
}

// TestPerRunCacheEvictionAttribution asserts evictions are charged to
// the run whose stores caused them: each run's Stats (and its folded
// telemetry registry) sees exactly its own evictions, and the runs'
// numbers sum to the cache's lifetime counter.
func TestPerRunCacheEvictionAttribution(t *testing.T) {
	p := diskCorpusFile(t, 7, 30)
	cache := pipeline.NewCache(8) // far smaller than the routine count

	reg1 := telemetry.New()
	_, res1 := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache, Telemetry: reg1})
	if res1.Stats.CacheEvictions == 0 {
		t.Fatal("first run evicted nothing despite an 8-entry cache")
	}

	reg2 := telemetry.New()
	_, res2 := analyzeParallel(t, p.File, pipeline.Options{Workers: 4, Cache: cache, Telemetry: reg2})
	if res2.Stats.CacheEvictions == 0 {
		t.Fatal("second run evicted nothing despite an 8-entry cache")
	}

	_, _, lifetime := cache.Counters()
	if got := res1.Stats.CacheEvictions + res2.Stats.CacheEvictions; got != lifetime {
		t.Errorf("per-run evictions %d + %d != lifetime %d",
			res1.Stats.CacheEvictions, res2.Stats.CacheEvictions, lifetime)
	}
	for i, pair := range []struct {
		reg  *telemetry.Registry
		want uint64
	}{{reg1, res1.Stats.CacheEvictions}, {reg2, res2.Stats.CacheEvictions}} {
		snap := pair.reg.Snapshot()
		if got := snap.Counters["pipeline.cache.evictions"]; got != pair.want {
			t.Errorf("run %d registry shows %d evictions, stats say %d", i+1, got, pair.want)
		}
	}
}
