package pipeline_test

import (
	"sync"
	"testing"

	"eel/internal/pipeline"
	"eel/internal/telemetry"
)

// TestPerRunCacheAttribution reproduces the counter-misattribution
// bug: concurrent AnalyzeAll runs sharing one cache used to compute
// their Stats as deltas of the cache's lifetime counters, so one run
// could absorb another's hits.  Per-run counting must give every run
// exactly its own traffic, with the lifetime counters as the sum.
func TestPerRunCacheAttribution(t *testing.T) {
	files := corpus(t)
	cache := pipeline.NewCache(0)

	// Warm the cache sequentially so the concurrent phase is all hits.
	warm := 0
	for _, f := range files {
		res, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		warm += res.Stats.Routines
		if res.Stats.CacheHits != 0 {
			t.Fatalf("cold run reported %d hits", res.Stats.CacheHits)
		}
		if int(res.Stats.CacheMisses) != res.Stats.Routines {
			t.Fatalf("cold run: %d misses for %d routines", res.Stats.CacheMisses, res.Stats.Routines)
		}
	}

	// Many concurrent warm runs over the shared cache.
	const runs = 8
	stats := make([]pipeline.Stats, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := files[i%len(files)]
			res, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Cache: cache, Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			stats[i] = res.Stats
		}(i)
	}
	wg.Wait()

	var totalHits, totalMisses uint64
	for i, s := range stats {
		// Every warm run's traffic is exactly its own routine count,
		// all hits — no bleed-through from the 7 sibling runs.
		if int(s.CacheHits) != s.Routines || s.CacheMisses != 0 {
			t.Errorf("run %d: hits=%d misses=%d for %d routines",
				i, s.CacheHits, s.CacheMisses, s.Routines)
		}
		totalHits += s.CacheHits
		totalMisses += s.CacheMisses
	}

	hits, misses, _ := cache.Counters()
	if hits != totalHits || int(misses) != warm {
		t.Errorf("lifetime counters (hits=%d misses=%d) != per-run sums (hits=%d) + warm misses (%d)",
			hits, misses, totalHits, warm)
	}
}

// TestPipelineTelemetryRegistry checks the per-run registry folds into
// the caller-supplied one under "pipeline.*" names.
func TestPipelineTelemetryRegistry(t *testing.T) {
	f := corpus(t)[0]
	reg := telemetry.New()
	res, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters["pipeline.insts_decoded"]; got != uint64(res.Stats.InstsDecoded) {
		t.Errorf("pipeline.insts = %d, want %d", got, res.Stats.InstsDecoded)
	}
	if got := snap.Counters["pipeline.blocks_built"]; got != uint64(res.Stats.BlocksBuilt) {
		t.Errorf("pipeline.blocks = %d, want %d", got, res.Stats.BlocksBuilt)
	}
	h, ok := snap.Histograms["pipeline.routine_insts"]
	if !ok || int(h.Count) != res.Stats.Routines-res.Stats.Errors {
		t.Errorf("pipeline.routine_insts count = %d, want %d analyzed routines",
			h.Count, res.Stats.Routines-res.Stats.Errors)
	}
	// The decoder bridge surfaces interning stats as gauges.
	if snap.Gauges["spawn.decodes"] <= 0 {
		t.Errorf("spawn.decodes gauge = %d, want > 0", snap.Gauges["spawn.decodes"])
	}

	// A second executable's run merges additively into the same registry.
	if _, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Telemetry: reg}); err != nil {
		t.Fatal(err)
	}
	snap2 := reg.Snapshot()
	if got, want := snap2.Counters["pipeline.insts_decoded"], 2*uint64(res.Stats.InstsDecoded); got != want {
		t.Errorf("after second run pipeline.insts = %d, want %d", got, want)
	}
}

// TestPipelineTracer checks spans land on the configured tracer: one
// run span, one per wave, one per routine.
func TestPipelineTracer(t *testing.T) {
	f := corpus(t)[0]
	tr := telemetry.NewTracer()
	res, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	runSpans, waveSpans, routineSpans := 0, 0, 0
	for _, ev := range tr.Events() {
		switch {
		case ev.Name == "pipeline.AnalyzeAll":
			runSpans++
		case ev.Cat == "pipeline":
			waveSpans++
		case ev.Cat == "routine":
			routineSpans++
		}
	}
	if runSpans != 1 {
		t.Errorf("run spans = %d, want 1", runSpans)
	}
	if waveSpans != res.Stats.Waves {
		t.Errorf("wave spans = %d, want %d", waveSpans, res.Stats.Waves)
	}
	if routineSpans != res.Stats.Routines {
		t.Errorf("routine spans = %d, want %d", routineSpans, res.Stats.Routines)
	}
}
