package pipeline_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"eel/internal/binfile"
	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/dataflow"
	"eel/internal/pipeline"
	"eel/internal/progen"
)

// corpus builds the progen workloads the determinism tests compare
// across worker counts: a gcc-style program (dispatch tables, hidden
// routines) and a sunpro-style one (unanalyzable continuation jumps).
func corpus(t testing.TB) []*binfile.File {
	t.Helper()
	var files []*binfile.File
	for _, c := range []progen.Config{
		func() progen.Config {
			c := progen.DefaultConfig(7)
			c.Routines = 30
			return c
		}(),
		func() progen.Config {
			c := progen.DefaultConfig(41)
			c.Routines = 24
			c.Personality = progen.SunPro
			return c
		}(),
	} {
		p, err := progen.Generate(c)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, p.File)
	}
	return files
}

func load(t testing.TB, f *binfile.File) *core.Executable {
	t.Helper()
	e, err := core.NewExecutable(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	return e
}

// fingerprint renders every analysis fact the pipeline produces for
// one routine into a canonical string, so results can be compared
// bit-for-bit across worker counts and against sequential calls.
func fingerprint(r *core.Routine, g *cfg.Graph, lv *dataflow.Liveness,
	idom map[*cfg.Block]*cfg.Block, loops []*dataflow.Loop, err error) string {
	var b strings.Builder
	fmt.Fprintf(&b, "routine %s %#x..%#x entries=%v hidden=%v\n", r.Name, r.Start, r.End, r.Entries, r.Hidden)
	if err != nil {
		fmt.Fprintf(&b, "  err=%v\n", err)
		return b.String()
	}
	fmt.Fprintf(&b, "  complete=%v hasdata=%v warnings=%d\n", g.Complete, g.HasData, len(g.Warnings))
	for _, blk := range g.Blocks {
		fmt.Fprintf(&b, "  B%d %s insts=%d uneditable=%v succ=", blk.ID, blk.Kind, len(blk.Insts), blk.Uneditable)
		for _, e := range blk.Succ {
			fmt.Fprintf(&b, "B%d[%s,%v] ", e.To.ID, e.Kind, e.Uneditable)
		}
		if lv != nil {
			fmt.Fprintf(&b, " in=%s out=%s", lv.In[blk], lv.Out[blk])
		}
		if idom != nil {
			if d := idom[blk]; d != nil {
				fmt.Fprintf(&b, " idom=B%d", d.ID)
			} else {
				fmt.Fprintf(&b, " idom=nil")
			}
		}
		b.WriteString("\n")
	}
	for _, ij := range g.IndirectJumps {
		fmt.Fprintf(&b, "  ijump %#x resolved=%v table=%#x len=%d literal=%v target=%#x runtime=%v\n",
			ij.Addr, ij.Resolved, ij.TableAddr, ij.TableLen, ij.Literal, ij.LiteralTarget, ij.RuntimeOnly)
	}
	for _, l := range loops {
		var body []int
		for blk := range l.Body {
			body = append(body, blk.ID)
		}
		sort.Ints(body)
		fmt.Fprintf(&b, "  loop head=B%d body=%v backedges=%d\n", l.Head.ID, body, len(l.BackEdges))
	}
	return b.String()
}

// analyzeSequential is the ground truth: direct per-routine calls in
// a plain loop (with the same hidden-routine fixpoint the paper's
// Figure 1 worklist performs), no pipeline involved.
func analyzeSequential(t testing.TB, f *binfile.File) []string {
	t.Helper()
	e := load(t, f)
	type res struct {
		g     *cfg.Graph
		lv    *dataflow.Liveness
		idom  map[*cfg.Block]*cfg.Block
		loops []*dataflow.Loop
		err   error
	}
	done := map[*core.Routine]*res{}
	for {
		var pending []*core.Routine
		for _, r := range e.Routines() {
			if done[r] == nil {
				pending = append(pending, r)
			}
		}
		if len(pending) == 0 {
			break
		}
		for _, r := range pending {
			g, err := r.ControlFlowGraph()
			rr := &res{g: g, err: err}
			if err == nil {
				rr.lv = dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
				rr.idom = dataflow.Dominators(g)
				rr.loops = dataflow.NaturalLoops(g, rr.idom)
			}
			done[r] = rr
		}
	}
	var out []string
	for _, r := range e.Routines() {
		rr := done[r]
		out = append(out, fingerprint(r, rr.g, rr.lv, rr.idom, rr.loops, rr.err))
	}
	return out
}

// analyzeParallel fingerprints one AnalyzeAll run.
func analyzeParallel(t testing.TB, f *binfile.File, opts pipeline.Options) ([]string, *pipeline.Result) {
	t.Helper()
	e := load(t, f)
	res, err := pipeline.AnalyzeAll(e, opts)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, a := range res.Analyses {
		out = append(out, fingerprint(a.Routine, a.Graph, a.Liveness, a.IDom, a.Loops, a.Err))
	}
	return out, res
}

func diffFingerprints(t *testing.T, label string, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d routines, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("%s: routine %d diverged:\n--- sequential ---\n%s--- pipeline ---\n%s", label, i, want[i], got[i])
		}
	}
}

// TestPipelineDeterminism asserts the parallel pipeline produces
// results identical to direct sequential analysis — CFG structure,
// liveness sets, dominators, loops, indirect-jump resolutions, and
// hidden-routine discoveries — at every worker count.
func TestPipelineDeterminism(t *testing.T) {
	for ci, f := range corpus(t) {
		want := analyzeSequential(t, f)
		for _, workers := range []int{1, 2, 8} {
			got, res := analyzeParallel(t, f, pipeline.Options{Workers: workers})
			diffFingerprints(t, fmt.Sprintf("corpus %d workers=%d", ci, workers), want, got)
			if res.Stats.Routines != len(want) {
				t.Errorf("stats.Routines = %d, want %d", res.Stats.Routines, len(want))
			}
		}
	}
}

// TestPipelineCacheCorrectness asserts a second analysis of the same
// image through a shared cache is 100% hits and yields identical
// results.
func TestPipelineCacheCorrectness(t *testing.T) {
	for ci, f := range corpus(t) {
		cache := pipeline.NewCache(0)
		first, res1 := analyzeParallel(t, f, pipeline.Options{Workers: 4, Cache: cache})
		if res1.Stats.CacheHits != 0 {
			// Identical routines inside one image may legitimately
			// hit (content-addressing shares them) — but only at
			// identical load addresses, which progen never produces.
			t.Errorf("corpus %d: first run had %d hits, want 0", ci, res1.Stats.CacheHits)
		}
		if res1.Stats.CacheMisses == 0 {
			t.Fatalf("corpus %d: first run recorded no misses", ci)
		}

		second, res2 := analyzeParallel(t, f, pipeline.Options{Workers: 4, Cache: cache})
		if res2.Stats.CacheMisses != 0 {
			t.Errorf("corpus %d: second run had %d misses, want 0 (hits=%d)",
				ci, res2.Stats.CacheMisses, res2.Stats.CacheHits)
		}
		if int(res2.Stats.CacheHits) != res2.Stats.Routines {
			t.Errorf("corpus %d: second run %d hits for %d routines",
				ci, res2.Stats.CacheHits, res2.Stats.Routines)
		}
		for _, a := range res2.Analyses {
			if !a.FromCache {
				t.Errorf("corpus %d: routine %s not served from cache", ci, a.Routine.Name)
			}
		}
		diffFingerprints(t, fmt.Sprintf("corpus %d cached-rerun", ci), first, second)

		// The cached run must also match plain sequential analysis.
		diffFingerprints(t, fmt.Sprintf("corpus %d cached-vs-sequential", ci), analyzeSequential(t, f), second)
	}
}

// TestPipelineCacheEviction asserts the LRU bound holds and evictions
// are counted.
func TestPipelineCacheEviction(t *testing.T) {
	f := corpus(t)[0]
	cache := pipeline.NewCache(4)
	_, res := analyzeParallel(t, f, pipeline.Options{Workers: 2, Cache: cache})
	if cache.Len() > 4 {
		t.Errorf("cache holds %d entries, capacity 4", cache.Len())
	}
	if res.Stats.CacheEvictions == 0 {
		t.Error("expected evictions with capacity 4")
	}
	// A rerun through the tiny cache still produces correct results,
	// just with few hits.
	got, _ := analyzeParallel(t, f, pipeline.Options{Workers: 2, Cache: cache})
	diffFingerprints(t, "evicting-cache rerun", analyzeSequential(t, f), got)
}

// TestPipelineHiddenRoutines asserts hidden-routine discovery happens
// inside the pipeline (waves) and is replayed from cache onto a fresh
// executable.
func TestPipelineHiddenRoutines(t *testing.T) {
	f := corpus(t)[0] // gcc corpus generates hidden routines
	e1 := load(t, f)
	cache := pipeline.NewCache(0)
	res1, err := pipeline.AnalyzeAll(e1, pipeline.Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Stats.Hidden == 0 || res1.Stats.Waves < 2 {
		t.Fatalf("corpus produced no hidden routines (hidden=%d waves=%d); pick a better seed",
			res1.Stats.Hidden, res1.Stats.Waves)
	}

	// Fresh executable, warm cache: the same routine set must emerge
	// even though every analysis is a hit.
	e2 := load(t, f)
	res2, err := pipeline.AnalyzeAll(e2, pipeline.Options{Workers: 4, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if len(e2.Routines()) != len(e1.Routines()) {
		t.Errorf("cached run found %d routines, uncached %d", len(e2.Routines()), len(e1.Routines()))
	}
	if res2.Stats.Routines != res1.Stats.Routines {
		t.Errorf("cached run analyzed %d routines, uncached %d", res2.Stats.Routines, res1.Stats.Routines)
	}
	if res2.Stats.CacheMisses != 0 {
		t.Errorf("cached run had %d misses (tail-split replay broke keying?)", res2.Stats.CacheMisses)
	}
}

// TestPipelineStats sanity-checks the metrics block.
func TestPipelineStats(t *testing.T) {
	f := corpus(t)[0]
	_, res := analyzeParallel(t, f, pipeline.Options{Workers: 3})
	s := res.Stats
	if s.Workers != 3 {
		t.Errorf("Workers = %d, want 3", s.Workers)
	}
	if s.InstsDecoded == 0 || s.BlocksBuilt == 0 || s.EdgesBuilt == 0 {
		t.Errorf("work counters empty: %+v", s)
	}
	if s.Wall <= 0 || s.CFGTime <= 0 {
		t.Errorf("timing counters empty: wall=%v cfg=%v", s.Wall, s.CFGTime)
	}
	if s.RoutinesPerSec() <= 0 {
		t.Error("RoutinesPerSec = 0")
	}
	if !strings.Contains(s.String(), "routines") {
		t.Errorf("String() = %q", s.String())
	}
	// Stage selection: skipping stages must leave their results nil.
	e := load(t, f)
	res2, err := pipeline.AnalyzeAll(e, pipeline.Options{NoLiveness: true, NoDominators: true, NoLoops: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res2.Analyses {
		if a.Liveness != nil || a.IDom != nil || a.Loops != nil {
			t.Fatal("skipped stages still produced results")
		}
	}
	if res2.Stats.LivenessTime != 0 || res2.Stats.DomTime != 0 {
		t.Errorf("skipped stages recorded time: %+v", res2.Stats)
	}
}

// TestPipelineOptionsMismatchRecomputes asserts a bundle cached
// without dataflow stages does not satisfy a run that wants them.
func TestPipelineOptionsMismatchRecomputes(t *testing.T) {
	f := corpus(t)[0]
	cache := pipeline.NewCache(0)
	if _, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{
		Cache: cache, NoLiveness: true, NoDominators: true, NoLoops: true,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Analyses {
		if a.Err == nil && a.Liveness == nil {
			t.Fatalf("routine %s: liveness missing after cache upgrade", a.Routine.Name)
		}
	}
	// And the upgraded bundles now serve full requests.
	res2, err := pipeline.AnalyzeAll(load(t, f), pipeline.Options{Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.CacheMisses != 0 {
		t.Errorf("upgraded cache still missing: %d misses", res2.Stats.CacheMisses)
	}
}

// TestAnalyzeAllErrors covers argument validation.
func TestAnalyzeAllErrors(t *testing.T) {
	if _, err := pipeline.AnalyzeAll(nil, pipeline.Options{}); err == nil {
		t.Error("nil executable accepted")
	}
	e := load(t, corpus(t)[0])
	fresh, err := core.NewExecutable(e.File)
	if err != nil {
		t.Fatal(err)
	}
	// No ReadContents: no routines.
	if _, err := pipeline.AnalyzeAll(fresh, pipeline.Options{}); err == nil {
		t.Error("routine-less executable accepted")
	}
}
