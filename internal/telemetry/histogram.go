package telemetry

import "sync/atomic"

// histBuckets is one bucket per possible bit length of a uint64 value
// plus one for zero: bucket 0 holds the value 0, bucket i (i >= 1)
// holds values in [2^(i-1), 2^i - 1].
const histBuckets = 65

// Histogram is a log-scale (power-of-two bucket) histogram of uint64
// samples — hotness counts, sizes, durations in nanoseconds.  Buckets
// are atomic, so concurrent Observe calls never lock; a nil Histogram
// discards samples.  The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// bucketFor returns the bucket index for v: 0 for 0, otherwise the
// bit length of v (so 1 → 1, 2..3 → 2, 4..7 → 3, ...).
func bucketFor(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	if i >= 64 {
		return 1 << 63, ^uint64(0)
	}
	return 1 << (i - 1), 1<<i - 1
}

// Observe records one sample.  Safe for concurrent use; a no-op on a
// nil receiver.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bucketFor(v)].Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// HistBucket is one non-empty bucket in a snapshot.
type HistBucket struct {
	// Bucket is the bucket index; Lo/Hi its inclusive value range.
	Bucket int    `json:"bucket"`
	Lo     uint64 `json:"lo"`
	Hi     uint64 `json:"hi"`
	Count  uint64 `json:"count"`
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	Count   uint64       `json:"count"`
	Sum     uint64       `json:"sum"`
	Max     uint64       `json:"max"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's non-empty buckets, total count, sum
// and max.  A nil histogram snapshots empty.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		s.Buckets = append(s.Buckets, HistBucket{Bucket: i, Lo: lo, Hi: hi, Count: n})
		s.Count += n
	}
	s.Sum = h.sum.Load()
	s.Max = h.max.Load()
	return s
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the recorded
// samples from the bucket counts: it finds the bucket containing the
// p-th sample and interpolates linearly inside its [Lo, Hi] range.
// The estimate is exact for bucket 0/1 and otherwise off by at most
// the width of one log-scale bucket (a factor of two), which is the
// error bound the /metrics p99 agreement tests rely on.  An empty
// snapshot estimates 0.
func (s HistSnapshot) Quantile(p float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Rank of the target sample, 1-based, matching "the value v such
	// that p of the samples are <= v".
	rank := uint64(p * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum uint64
	for _, b := range s.Buckets {
		if cum+b.Count < rank {
			cum += b.Count
			continue
		}
		if b.Hi == b.Lo {
			return b.Lo
		}
		// Position of the target within this bucket, in (0, 1].
		frac := float64(rank-cum) / float64(b.Count)
		return b.Lo + uint64(frac*float64(b.Hi-b.Lo))
	}
	return s.Max
}

// Quantile estimates the p-quantile of the live histogram; see
// HistSnapshot.Quantile for the error bound.
func (h *Histogram) Quantile(p float64) uint64 {
	return h.Snapshot().Quantile(p)
}

// BucketIndex returns the bucket index a value falls into — exported
// so tests elsewhere can assert two values land within one log-scale
// bucket of each other.
func BucketIndex(v uint64) int { return bucketFor(v) }

// observeBucket adds count samples directly to bucket i (used by
// Registry.AddTo to merge histograms; sum/max are approximated by the
// bucket's lower bound, which preserves the shape merges care about).
func (h *Histogram) observeBucket(i int, count uint64) {
	if h == nil || i < 0 || i >= histBuckets || count == 0 {
		return
	}
	h.buckets[i].Add(count)
	lo, _ := BucketBounds(i)
	h.sum.Add(lo * count)
	for {
		old := h.max.Load()
		if lo <= old || h.max.CompareAndSwap(old, lo) {
			break
		}
	}
}
