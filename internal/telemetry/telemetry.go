// Package telemetry is the repository's unified observability layer:
// a process-wide metrics registry (sharded atomic counters, gauges,
// log-scale histograms) with named registration, snapshot, and JSON
// export, plus span-based structured tracing that emits Chrome
// trace-event JSON (see trace.go).  Every layer of the stack — the
// analysis pipeline, the spawn decoder, the rtl compiler, and the
// emulator — reports through it, so one run's numbers correlate
// across layers instead of living in incompatible ad-hoc Stats
// structs.
//
// The package is dependency-free (standard library only) and designed
// to cost nothing when unused: a nil *Registry hands out nil
// instruments, and Add/Set/Observe on a nil instrument is a
// single-branch no-op with zero allocations (the "nil sink";
// BenchmarkDisabledSink asserts it).  Enabled counters are sharded
// across cache-line-padded atomics so concurrent writers from the
// pipeline's worker pool do not serialize on one hot word.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
)

// counterShards is the number of cache-line-padded stripes per
// counter.  Writers pick a stripe with a cheap per-thread random, so
// contention drops roughly by this factor; readers sum all stripes.
const counterShards = 8

// shard is one cache-line-padded atomic stripe.
type shard struct {
	v atomic.Uint64
	_ [56]byte // pad to 64 bytes so stripes never share a line
}

// Counter is a monotonically increasing, sharded atomic counter.  The
// zero value is ready to use; a nil Counter discards updates.
type Counter struct {
	shards [counterShards]shard
}

// Add increments the counter by n.  Safe for concurrent use; a no-op
// on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.shards[rand.Uint32()%counterShards].v.Add(n)
}

// Value returns the current total (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value.  A nil Gauge discards
// updates.
type Gauge struct {
	v atomic.Int64
}

// Set stores v; a no-op on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta; a no-op on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Registry is a named collection of instruments.  All methods are
// safe for concurrent use, and every method on a nil *Registry
// returns a nil instrument (whose updates are discarded), so code can
// hold an optional registry without branching at each call site.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() int64
	hists    map[string]*Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		funcs:    map[string]func() int64{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers fn as a read-only gauge evaluated at snapshot
// time — the bridge that lets pre-existing atomic counters (decoder
// interning stats, emulator counters) surface in the registry without
// touching their hot paths.  Re-registering a name replaces the
// function.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
}

// Histogram returns the named log-scale histogram, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every instrument's value.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]int64        `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument.  GaugeFuncs are evaluated
// outside the registry lock (they may read foreign state).  A nil
// registry snapshots empty.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	funcs := make(map[string]func() int64, len(r.funcs))
	for k, v := range r.funcs {
		funcs[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, fn := range funcs {
		s.Gauges[k] = fn()
	}
	for k, h := range hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// AddTo folds r's counter and histogram totals into dst under the
// same names (per-run registries use it to contribute to the
// process-wide one).  Gauges and gauge funcs are skipped: they are
// instantaneous, not additive.
func (r *Registry) AddTo(dst *Registry) {
	if r == nil || dst == nil {
		return
	}
	s := r.Snapshot()
	for name, v := range s.Counters {
		if v != 0 {
			dst.Counter(name).Add(v)
		}
	}
	for name, hs := range s.Histograms {
		dh := dst.Histogram(name)
		for _, b := range hs.Buckets {
			dh.observeBucket(b.Bucket, b.Count)
		}
	}
}

// WriteJSON writes the registry snapshot as deterministic (sorted-key)
// indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	// encoding/json sorts map keys, so the output is deterministic
	// for a given snapshot.
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// String renders a compact sorted name=value dump, histograms as
// count/sum/max.
func (s Snapshot) String() string {
	type kv struct {
		k string
		v string
	}
	var rows []kv
	for k, v := range s.Counters {
		rows = append(rows, kv{k, fmt.Sprintf("%d", v)})
	}
	for k, v := range s.Gauges {
		rows = append(rows, kv{k, fmt.Sprintf("%d", v)})
	}
	for k, h := range s.Histograms {
		rows = append(rows, kv{k, fmt.Sprintf("count=%d sum=%d max=%d", h.Count, h.Sum, h.Max)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].k < rows[j].k })
	out := ""
	for _, r := range rows {
		out += r.k + " = " + r.v + "\n"
	}
	return out
}

// global is the process-wide registry; nil until Enable.
var global atomic.Pointer[Registry]

// Default returns the process-wide registry, or nil when telemetry is
// disabled.  Callers pass the result straight to Counter/Gauge/
// Histogram — the nil sink absorbs everything when disabled.
func Default() *Registry { return global.Load() }

// Enable installs (idempotently) and returns the process-wide
// registry.
func Enable() *Registry {
	for {
		if r := global.Load(); r != nil {
			return r
		}
		r := New()
		if global.CompareAndSwap(nil, r) {
			return r
		}
	}
}

// Disable removes the process-wide registry; subsequent Default calls
// return nil and instrument updates become no-ops for new lookups.
func Disable() { global.Store(nil) }
