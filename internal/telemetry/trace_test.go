package telemetry

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

// TestTraceRoundTrip records spans and instants, encodes the Chrome
// trace-event JSON, and decodes it back with plain encoding/json — the
// same parse any trace viewer performs.
func TestTraceRoundTrip(t *testing.T) {
	tr := NewTracer()

	sp := tr.Begin("pipeline.AnalyzeAll", "pipeline")
	sp.Arg("routines", 40)
	inner := tr.BeginTID("analyze main", "routine", 3)
	inner.End()
	tr.Instant("sim.jit.invalidate", "sim")
	sp.End()

	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}

	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("trace JSON does not decode: %v\n%s", err, buf.String())
	}
	if decoded.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", decoded.DisplayTimeUnit)
	}
	if len(decoded.TraceEvents) != 3 {
		t.Fatalf("decoded %d events, want 3", len(decoded.TraceEvents))
	}

	byName := map[string]int{}
	for i, ev := range decoded.TraceEvents {
		byName[ev.Name] = i
		if ev.PID != 1 {
			t.Errorf("event %q pid = %d, want 1", ev.Name, ev.PID)
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Errorf("event %q has negative time: ts=%v dur=%v", ev.Name, ev.TS, ev.Dur)
		}
	}

	outer := decoded.TraceEvents[byName["pipeline.AnalyzeAll"]]
	if outer.Ph != "X" || outer.Cat != "pipeline" {
		t.Errorf("outer span malformed: %+v", outer)
	}
	if got, ok := outer.Args["routines"].(float64); !ok || got != 40 {
		t.Errorf("outer span args = %v, want routines=40", outer.Args)
	}

	in := decoded.TraceEvents[byName["analyze main"]]
	if in.TID != 3 {
		t.Errorf("worker span tid = %d, want 3", in.TID)
	}
	// The inner span is fully contained in the outer one.
	if in.TS < outer.TS || in.TS+in.Dur > outer.TS+outer.Dur+0.5 {
		t.Errorf("inner span [%v, %v] escapes outer [%v, %v]",
			in.TS, in.TS+in.Dur, outer.TS, outer.TS+outer.Dur)
	}

	instant := decoded.TraceEvents[byName["sim.jit.invalidate"]]
	if instant.Ph != "i" {
		t.Errorf("instant ph = %q, want i", instant.Ph)
	}
}

// TestTracerNil checks the disabled-tracing no-ops, including the zero
// Span a nil tracer hands out.
func TestTracerNil(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin("x", "y")
	sp.Arg("k", 1)
	sp.End()
	tr.Instant("z", "y")
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer recorded %d events", len(evs))
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("empty trace does not decode: %v", err)
	}
}

// TestTracerConcurrent appends spans from many goroutines; with -race
// this proves the event buffer is properly locked.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const goroutines = 8
	const spans = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				sp := tr.BeginTID("work", "test", g)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Events()); got != goroutines*spans {
		t.Errorf("recorded %d events, want %d", got, goroutines*spans)
	}
}

// TestSetTracer covers the process-wide tracer install/remove cycle.
func TestSetTracer(t *testing.T) {
	SetTracer(nil)
	if ActiveTracer() != nil {
		t.Fatal("ActiveTracer not nil after SetTracer(nil)")
	}
	tr := NewTracer()
	SetTracer(tr)
	if ActiveTracer() != tr {
		t.Fatal("SetTracer did not install")
	}
	ActiveTracer().Instant("ping", "test")
	SetTracer(nil)
	if len(tr.Events()) != 1 {
		t.Fatal("event through ActiveTracer was lost")
	}
}
