package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// lookups and updates interleaved — and checks the totals.  Run under
// -race this is the package's data-race proof.
func TestRegistryConcurrent(t *testing.T) {
	r := New()
	const goroutines = 16
	const rounds = 1000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				r.Counter("shared").Add(1)
				r.Counter("shared").Add(2)
				r.Gauge("level").Set(int64(g))
				r.Histogram("sizes").Observe(uint64(i))
				if i%100 == 0 {
					r.Snapshot() // concurrent readers too
				}
			}
		}(g)
	}
	wg.Wait()

	if got, want := r.Counter("shared").Value(), uint64(goroutines*rounds*3); got != want {
		t.Errorf("counter total = %d, want %d", got, want)
	}
	hs := r.Histogram("sizes").Snapshot()
	if got, want := hs.Count, uint64(goroutines*rounds); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	if hs.Max != rounds-1 {
		t.Errorf("histogram max = %d, want %d", hs.Max, rounds-1)
	}
	if lv := r.Gauge("level").Value(); lv < 0 || lv >= goroutines {
		t.Errorf("gauge = %d, want one of the writers' values", lv)
	}
}

// TestNilSink covers the disabled fast path: every instrument handed
// out by a nil registry absorbs updates and reads as zero.
func TestNilSink(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(5)
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(9)
	r.GaugeFunc("f", func() int64 { return 1 })
	if v := r.Counter("c").Value(); v != 0 {
		t.Errorf("nil counter reads %d", v)
	}
	if v := r.Gauge("g").Value(); v != 0 {
		t.Errorf("nil gauge reads %d", v)
	}
	if s := r.Histogram("h").Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram counts %d", s.Count)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Errorf("nil registry snapshot not empty: %v", s)
	}
	r.AddTo(New()) // must not panic
	New().AddTo(r) // nor this
}

// TestHistogramBuckets pins the log-scale bucket boundaries: value 0
// in bucket 0, and each power-of-two range [2^(i-1), 2^i-1] in bucket
// i, for the edges that matter.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0},
		{1, 1},
		{2, 2}, {3, 2},
		{4, 3}, {7, 3},
		{8, 4}, {15, 4},
		{255, 8}, {256, 9},
		{1 << 62, 63}, {1<<63 - 1, 63},
		{1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.bucket {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside BucketBounds(%d) = [%d, %d]", c.v, c.bucket, lo, hi)
		}
	}

	var h Histogram
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Errorf("snapshot count = %d, want %d", s.Count, len(cases))
	}
	if s.Max != ^uint64(0) {
		t.Errorf("snapshot max = %d, want %d", s.Max, uint64(^uint64(0)))
	}
	for _, b := range s.Buckets {
		if b.Lo > b.Hi {
			t.Errorf("bucket %d has inverted bounds [%d, %d]", b.Bucket, b.Lo, b.Hi)
		}
	}
}

// TestAddTo checks per-run → process-wide folding: counters sum, and
// merged histograms preserve bucket shape.
func TestAddTo(t *testing.T) {
	dst := New()
	dst.Counter("n").Add(10)
	src := New()
	src.Counter("n").Add(5)
	src.Counter("only-src").Add(1)
	src.Histogram("h").Observe(100)
	src.Histogram("h").Observe(100)
	src.Gauge("g").Set(3)

	src.AddTo(dst)

	if got := dst.Counter("n").Value(); got != 15 {
		t.Errorf("merged counter = %d, want 15", got)
	}
	if got := dst.Counter("only-src").Value(); got != 1 {
		t.Errorf("new counter = %d, want 1", got)
	}
	hs := dst.Histogram("h").Snapshot()
	if hs.Count != 2 || len(hs.Buckets) != 1 || hs.Buckets[0].Bucket != bucketFor(100) {
		t.Errorf("merged histogram shape wrong: %+v", hs)
	}
	if _, ok := dst.Snapshot().Gauges["g"]; ok {
		t.Error("AddTo copied a gauge; gauges are not additive")
	}
}

// TestWriteJSONDeterministic checks the export is stable and decodes
// back to the same snapshot values.
func TestWriteJSONDeterministic(t *testing.T) {
	r := New()
	r.Counter("b").Add(2)
	r.Counter("a").Add(1)
	r.Gauge("g").Set(-4)
	r.Histogram("h").Observe(3)

	var one, two bytes.Buffer
	if err := r.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Errorf("exports differ:\n%s\n%s", one.String(), two.String())
	}

	var s Snapshot
	if err := json.Unmarshal(one.Bytes(), &s); err != nil {
		t.Fatalf("export does not decode: %v", err)
	}
	if s.Counters["a"] != 1 || s.Counters["b"] != 2 || s.Gauges["g"] != -4 {
		t.Errorf("decoded snapshot wrong: %+v", s)
	}
	if s.Histograms["h"].Count != 1 {
		t.Errorf("decoded histogram wrong: %+v", s.Histograms["h"])
	}

	str := r.Snapshot().String()
	for _, want := range []string{"a = 1", "b = 2", "g = -4", "count=1"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q:\n%s", want, str)
		}
	}
}

// TestEnableDisable covers the process-wide registry lifecycle.
func TestEnableDisable(t *testing.T) {
	Disable()
	if Default() != nil {
		t.Fatal("Default not nil after Disable")
	}
	r1 := Enable()
	if r1 == nil || Default() != r1 {
		t.Fatal("Enable did not install a registry")
	}
	if r2 := Enable(); r2 != r1 {
		t.Fatal("Enable not idempotent")
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable did not clear the registry")
	}
}

// BenchmarkDisabledSink measures the nil-sink fast path (registry
// lookup excluded, as instrumented code holds the instrument): it must
// not allocate.
func BenchmarkDisabledSink(b *testing.B) {
	var c *Counter
	var h *Histogram
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		h.Observe(uint64(i))
		sp := tr.Begin("x", "y")
		sp.End()
	}
	if testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(3)
		sp := tr.Begin("x", "y")
		sp.End()
	}) != 0 {
		b.Fatal("disabled telemetry allocates")
	}
}

// BenchmarkCounterAdd measures the enabled sharded-counter hot path.
func BenchmarkCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
	_ = c.Value()
}
