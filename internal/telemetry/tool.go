package telemetry

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling handlers
	"os"
	"sync"
)

// ToolFlags carries the observability flags shared by every CLI tool
// and example: -metrics (print the registry at exit), -trace FILE
// (write a Chrome trace-event JSON file), and -pprof ADDR (serve
// net/http/pprof and expvar, with the registry published as the
// "eel" expvar).
type ToolFlags struct {
	Metrics   bool
	TracePath string
	PprofAddr string
}

// AddFlags registers the shared observability flags on fs (pass
// flag.CommandLine for the default set) and returns the destination
// struct to Start after parsing.
func AddFlags(fs *flag.FlagSet) *ToolFlags {
	tf := &ToolFlags{}
	fs.BoolVar(&tf.Metrics, "metrics", false, "print the telemetry metrics registry at exit")
	fs.StringVar(&tf.TracePath, "trace", "", "write a Chrome trace-event JSON file (load in chrome://tracing)")
	fs.StringVar(&tf.PprofAddr, "pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return tf
}

// Tool is a started observability session; Close it before exit.
type Tool struct {
	Registry *Registry
	Tracer   *Tracer
	flags    *ToolFlags
}

// expvarOnce guards the process-wide expvar publication (expvar
// panics on duplicate names).
var expvarOnce sync.Once

// Start activates whatever the parsed flags asked for: the
// process-wide registry for -metrics or -pprof, the process-wide
// tracer for -trace, and the pprof/expvar HTTP server for -pprof.
// With no flags set it does nothing and Close is a no-op, so tools
// can call it unconditionally.
func (tf *ToolFlags) Start() (*Tool, error) {
	t := &Tool{flags: tf}
	if tf.Metrics || tf.PprofAddr != "" {
		t.Registry = Enable()
	}
	if tf.TracePath != "" {
		t.Tracer = NewTracer()
		SetTracer(t.Tracer)
	}
	if tf.PprofAddr != "" {
		expvarOnce.Do(func() {
			expvar.Publish("eel", expvar.Func(func() any { return Default().Snapshot() }))
		})
		ln := tf.PprofAddr
		go func() {
			// The server lives for the process; an unusable address is
			// reported but not fatal (the tool's real work proceeds).
			if err := http.ListenAndServe(ln, nil); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: pprof server: %v\n", err)
			}
		}()
	}
	return t, nil
}

// Close flushes the session: the trace file is written and the
// metrics snapshot printed to w (stderr in the tools).  Safe to call
// when nothing was enabled.
func (t *Tool) Close(w io.Writer) error {
	if t == nil {
		return nil
	}
	var firstErr error
	if t.Tracer != nil {
		SetTracer(nil)
		if err := t.Tracer.WriteFile(t.flags.TracePath); err != nil {
			firstErr = err
		} else if w != nil {
			fmt.Fprintf(w, "telemetry: wrote trace to %s (load in chrome://tracing)\n", t.flags.TracePath)
		}
	}
	if t.flags.Metrics && t.Registry != nil && w != nil {
		fmt.Fprintln(w, "telemetry metrics:")
		if err := t.Registry.WriteJSON(w); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
