package telemetry

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileEmptyAndClamp(t *testing.T) {
	var empty HistSnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}

	h := &Histogram{}
	h.Observe(5)
	if got := h.Quantile(-1); got != h.Quantile(0) {
		t.Errorf("p<0 not clamped: %d", got)
	}
	if got := h.Quantile(2); got != h.Quantile(1) {
		t.Errorf("p>1 not clamped: %d", got)
	}
	// A single observation: every quantile lands in its bucket.
	if got, want := h.Quantile(0.5), uint64(5); BucketIndex(got) != BucketIndex(want) {
		t.Errorf("Quantile(0.5) = %d, not in bucket of %d", got, want)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	// All values identical: the estimate must stay in that bucket and
	// p=1 must not run past Max.
	h := &Histogram{}
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	s := h.Snapshot()
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(p); BucketIndex(got) != BucketIndex(1000) {
			t.Errorf("Quantile(%g) = %d, outside the bucket of 1000", p, got)
		}
	}
}

// TestQuantileVsExact is the satellite contract eelload relies on: the
// histogram-estimated percentile of a latency-shaped distribution must
// land within one log-scale bucket of the exact order-statistic.
func TestQuantileVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	var vals []uint64
	for i := 0; i < 10000; i++ {
		// Log-normal-ish latencies: microseconds to tens of ms in ns.
		v := uint64(1000 * (1 << uint(rng.Intn(15))))
		v += uint64(rng.Int63n(int64(v)))
		h.Observe(v)
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })

	s := h.Snapshot()
	for _, p := range []float64{0.5, 0.9, 0.99} {
		exact := vals[int(float64(len(vals)-1)*p)]
		est := s.Quantile(p)
		eb, xb := BucketIndex(est), BucketIndex(exact)
		if d := eb - xb; d < -1 || d > 1 {
			t.Errorf("p%.0f: estimated %d (bucket %d) vs exact %d (bucket %d) — more than one bucket apart",
				100*p, est, eb, exact, xb)
		}
	}
	if s.Quantile(1) < s.Quantile(0.5) {
		t.Error("quantiles not monotone")
	}
}

func TestBucketIndexMatchesBounds(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 3, 4, 100, 1 << 20, 1<<63 + 5} {
		i := BucketIndex(v)
		lo, hi := BucketBounds(i)
		if v < lo || v > hi {
			t.Errorf("BucketIndex(%d) = %d with bounds [%d, %d] not containing it", v, i, lo, hi)
		}
	}
}
