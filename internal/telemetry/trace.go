package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one Chrome trace-event record (the JSON object format the
// chrome://tracing and Perfetto viewers load).  Ph "X" is a complete
// span (ts + dur), "i" an instant, "M" metadata.
type Event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// Tracer accumulates trace events.  All methods are safe for
// concurrent use, and every method on a nil *Tracer is a no-op, so
// instrumented code paths pay one branch when tracing is off.
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []Event
}

// NewTracer returns a tracer whose timestamps are microseconds since
// this call.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is an in-progress trace span returned by Begin.  The zero Span
// (from a nil tracer) is valid and End on it is a no-op.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	tid   int
	begin time.Duration
	args  map[string]any
}

// Begin opens a span on virtual thread 0.  End it to record.
func (t *Tracer) Begin(name, cat string) Span { return t.BeginTID(name, cat, 0) }

// BeginTID opens a span on the given virtual thread id — concurrent
// workers use distinct tids so the viewer lays their spans out on
// separate tracks.
func (t *Tracer) BeginTID(name, cat string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, tid: tid, begin: time.Since(t.start)}
}

// Arg attaches a key/value argument to the span (shown in the
// viewer's detail pane).  No-op on a zero Span.
func (s *Span) Arg(key string, value any) {
	if s.t == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]any{}
	}
	s.args[key] = value
}

// End records the span as a complete ("X") event.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := time.Since(s.t.start)
	s.t.append(Event{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		TS:   float64(s.begin.Nanoseconds()) / 1e3,
		Dur:  float64((end - s.begin).Nanoseconds()) / 1e3,
		PID:  1,
		TID:  s.tid,
		Args: s.args,
	})
}

// Instant records a point-in-time ("i") event on virtual thread 0.
func (t *Tracer) Instant(name, cat string) { t.InstantTID(name, cat, 0, nil) }

// InstantTID records an instant event with optional args on the given
// virtual thread.
func (t *Tracer) InstantTID(name, cat string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.append(Event{
		Name: name,
		Cat:  cat,
		Ph:   "i",
		TS:   float64(time.Since(t.start).Nanoseconds()) / 1e3,
		PID:  1,
		TID:  tid,
		S:    "t",
		Args: args,
	})
}

func (t *Tracer) append(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// traceFile is the on-disk shape: the Chrome trace-event "JSON object
// format", loadable by chrome://tracing and ui.perfetto.dev.
type traceFile struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Encode serializes the trace in Chrome trace-event JSON object
// format.
func (t *Tracer) Encode(w io.Writer) error {
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

// WriteFile writes the trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// activeTracer is the process-wide tracer; nil when tracing is off.
var activeTracer atomic.Pointer[Tracer]

// ActiveTracer returns the process-wide tracer, or nil.  Instrumented
// code calls Begin/Instant on the result directly — the nil receiver
// no-ops.
func ActiveTracer() *Tracer { return activeTracer.Load() }

// SetTracer installs (or, with nil, removes) the process-wide tracer.
func SetTracer(t *Tracer) { activeTracer.Store(t) }
