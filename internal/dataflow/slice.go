package dataflow

import (
	"eel/internal/cfg"
	"eel/internal/machine"
)

// This file implements the paper's marquee analysis (§3.3): a
// backward slice from an indirect jump's address register that
// discovers the case-statement dispatch table the jump reads — "a
// path from the routine's entry to the jump must compute the dispatch
// table's address (or the jump would fail along the path)" — or the
// literal target of a jump-to-constant idiom.  When the slice fails,
// the jump stays unresolved and the editing layer falls back on
// run-time address translation.

// svKind is the symbolic value lattice for the slice.
type svKind int

const (
	svUnknown svKind = iota
	svConst          // a compile-time constant (sethi/or/add chains)
	svScaled         // a bounded, shifted index (sll idx, k)
	svTable          // a load from constant base + scaled index
)

type sval struct {
	kind svKind
	c    uint32 // constant value or table base
}

// maxTraceDepth bounds interblock tracing.
const maxTraceDepth = 32

// Resolver runs dispatch-table analysis over one graph.
type Resolver struct {
	// G is the graph under analysis.
	G *cfg.Graph
	// ReadWord reads a word of the program image (text or data);
	// ok=false outside mapped sections.
	ReadWord func(addr uint32) (uint32, bool)
	// InText reports whether addr lies in the read-only text
	// segment.  Loads from constant addresses fold to constants
	// only there: a load from writable data (e.g. a function-pointer
	// slot) is not a compile-time value.  When nil, no
	// constant-address load folds.
	InText func(addr uint32) bool
	// MaxTable caps dispatch-table scanning.
	MaxTable int
}

// Resolution is the outcome for one indirect jump.
type Resolution struct {
	OK      bool
	Targets []uint32
	Table   cfg.TableInfo
}

// AnalyzeIndirectJumps slices every unresolved indirect jump in g.
// The result maps jump address → resolution; the caller rebuilds the
// CFG with cfg.Options carrying the discovered targets.
func (r *Resolver) AnalyzeIndirectJumps() map[uint32]Resolution {
	if r.MaxTable == 0 {
		r.MaxTable = 4096
	}
	out := map[uint32]Resolution{}
	for _, ij := range r.G.IndirectJumps {
		if ij.Resolved {
			continue
		}
		out[ij.Addr] = r.resolve(ij)
	}
	return out
}

func (r *Resolver) resolve(ij *cfg.IndirectJump) Resolution {
	b := ij.Block
	idx := len(b.Insts) - 1
	inst := b.Insts[idx].MI

	rs1F, _ := inst.Field("rs1")
	iflag, _ := inst.Field("iflag")
	base := r.trace(b, idx, machine.Reg(rs1F), 0)

	var addend sval
	if iflag == 1 {
		simm, _ := inst.Field("simm13")
		addend = sval{kind: svConst, c: signExtend13(simm)}
	} else {
		rs2F, _ := inst.Field("rs2")
		addend = r.trace(b, idx, machine.Reg(rs2F), 0)
	}
	v := combineAdd(base, addend)

	switch v.kind {
	case svConst:
		// Indirect jump to a literal address.
		return Resolution{
			OK:      true,
			Targets: []uint32{v.c},
			Table:   cfg.TableInfo{Literal: true, Target: v.c},
		}
	case svTable:
		targets, n := r.scanTable(v.c, ij)
		if n == 0 {
			return Resolution{}
		}
		return Resolution{
			OK:      true,
			Targets: targets,
			Table:   cfg.TableInfo{Addr: v.c, Len: n},
		}
	}
	return Resolution{}
}

// scanTable reads dispatch-table entries at base: plausible entries
// are aligned addresses inside the routine.  A dominating bounds
// check (cmp idx, N) clamps the scan; otherwise it stops at the
// first implausible word.
func (r *Resolver) scanTable(base uint32, ij *cfg.IndirectJump) ([]uint32, int) {
	bound := r.findBound(ij.Block)
	max := r.MaxTable
	if bound > 0 && bound < max {
		max = bound
	}
	var targets []uint32
	for i := 0; i < max; i++ {
		w, ok := r.ReadWord(base + uint32(i*4))
		if !ok {
			break
		}
		if w%4 != 0 || w < r.G.Start || w >= r.G.End {
			break
		}
		targets = append(targets, w)
	}
	return targets, len(targets)
}

// findBound searches the jump's block and a short predecessor chain
// for the bounds-check idiom "subcc idx, N" guarding the switch.
func (r *Resolver) findBound(b *cfg.Block) int {
	for depth := 0; b != nil && depth < 4; depth++ {
		for i := len(b.Insts) - 1; i >= 0; i-- {
			mi := b.Insts[i].MI
			if mi.Name() != "subcc" {
				continue
			}
			if iflag, _ := mi.Field("iflag"); iflag != 1 {
				continue
			}
			simm, _ := mi.Field("simm13")
			n := int(int32(signExtend13(simm)))
			if n >= 0 && n < 1<<20 {
				return n + 1
			}
		}
		b = singlePred(b)
	}
	return 0
}

func singlePred(b *cfg.Block) *cfg.Block {
	var p *cfg.Block
	for _, e := range b.Pred {
		if e.From.Kind == cfg.KindEntry {
			continue
		}
		if p != nil && p != e.From {
			return nil
		}
		p = e.From
	}
	return p
}

// trace computes the symbolic value of reg immediately before
// instruction index idx of block b.
func (r *Resolver) trace(b *cfg.Block, idx int, reg machine.Reg, depth int) sval {
	if reg == 0 {
		return sval{kind: svConst, c: 0}
	}
	if depth > maxTraceDepth {
		return sval{}
	}
	for i := idx - 1; i >= 0; i-- {
		if b.Insts[i].MI.Writes().Has(reg) {
			return r.evalDef(b, i, reg, depth)
		}
	}
	// Not defined here: a call surrogate clobbers caller-saved
	// registers; otherwise continue into predecessors and require
	// agreement at joins.
	if b.Kind == cfg.KindCallSurrogate && CallDef().Has(reg) {
		return sval{}
	}
	var result sval
	first := true
	for _, e := range b.Pred {
		p := e.From
		if p.Kind == cfg.KindEntry {
			return sval{} // value flows in from the caller: unknown
		}
		v := r.trace(p, len(p.Insts), reg, depth+1)
		if first {
			result = v
			first = false
		} else if v != result {
			return sval{}
		}
	}
	if first {
		return sval{} // no predecessors
	}
	return result
}

// evalDef interprets the defining instruction at b.Insts[i]
// symbolically.
func (r *Resolver) evalDef(b *cfg.Block, i int, reg machine.Reg, depth int) sval {
	mi := b.Insts[i].MI
	op2 := func() sval {
		if iflag, _ := mi.Field("iflag"); iflag == 1 {
			simm, _ := mi.Field("simm13")
			return sval{kind: svConst, c: signExtend13(simm)}
		}
		rs2, _ := mi.Field("rs2")
		return r.trace(b, i, machine.Reg(rs2), depth+1)
	}
	rs1v := func() sval {
		rs1, _ := mi.Field("rs1")
		return r.trace(b, i, machine.Reg(rs1), depth+1)
	}
	switch mi.Name() {
	case "sethi":
		imm, _ := mi.Field("imm22")
		return sval{kind: svConst, c: imm << 10}
	case "or":
		return combineOr(rs1v(), op2())
	case "add":
		return combineAdd(rs1v(), op2())
	case "sll":
		// A shifted value is a scaled index whatever its source —
		// the bound comes from the dominating comparison.
		return sval{kind: svScaled}
	case "ld":
		a := combineAdd(rs1v(), op2())
		switch a.kind {
		case svTable:
			return a // load of table entry IS the jump target source
		case svConst:
			// Constant-address load: folds only from the read-only
			// text segment (a literal pointer table); loads from
			// writable data stay unknown.
			if r.InText != nil && r.InText(a.c) {
				if w, ok := r.ReadWord(a.c); ok {
					return sval{kind: svConst, c: w}
				}
			}
		}
		return sval{}
	}
	return sval{}
}

func combineAdd(a, b sval) sval {
	switch {
	case a.kind == svConst && b.kind == svConst:
		return sval{kind: svConst, c: a.c + b.c}
	case a.kind == svConst && b.kind == svScaled:
		return sval{kind: svTable, c: a.c}
	case a.kind == svScaled && b.kind == svConst:
		return sval{kind: svTable, c: b.c}
	case a.kind == svTable && b.kind == svConst:
		return sval{kind: svTable, c: a.c + b.c}
	case a.kind == svConst && b.kind == svTable:
		return sval{kind: svTable, c: a.c + b.c}
	}
	return sval{}
}

func combineOr(a, b sval) sval {
	if a.kind == svConst && b.kind == svConst {
		return sval{kind: svConst, c: a.c | b.c}
	}
	// or rd, %g0, x is the mov idiom.
	if a.kind == svConst && a.c == 0 {
		return b
	}
	if b.kind == svConst && b.c == 0 {
		return a
	}
	return sval{}
}

func signExtend13(v uint32) uint32 {
	return uint32(int32(v<<19) >> 19)
}

// SliceMark classifies an instruction in a backward slice, following
// the paper's Figure 4 vocabulary.
type SliceMark int

// Slice marks.
const (
	// SliceEasy instructions read nothing further (constants).
	SliceEasy SliceMark = iota
	// SliceHard instructions read registers the slice follows.
	SliceHard
	// SliceImpossible instructions stop the slice (e.g. floating
	// point operations, which qpt refuses to trace).
	SliceImpossible
)

// SliceEntry is one instruction in a backward slice.
type SliceEntry struct {
	Block *cfg.Block
	Index int
	Mark  SliceMark
}

// BackwardSlice computes the backward address slice of reg starting
// before instruction index idx of block b — the Figure 4 algorithm:
// a defining instruction that reads nothing is easy; one that reads
// registers is hard and the slice continues through what it reads;
// floating-point definitions are impossible.
func BackwardSlice(g *cfg.Graph, b *cfg.Block, idx int, reg machine.Reg) []SliceEntry {
	type key struct {
		blk *cfg.Block
		i   int
	}
	visited := map[key]bool{}
	var out []SliceEntry

	type item struct {
		b   *cfg.Block
		idx int
		r   machine.Reg
	}
	work := []item{{b, idx, reg}}
	regSeen := map[key]map[machine.Reg]bool{}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		if it.r == 0 {
			continue
		}
		k := key{it.b, it.idx}
		if regSeen[k] == nil {
			regSeen[k] = map[machine.Reg]bool{}
		}
		if regSeen[k][it.r] {
			continue
		}
		regSeen[k][it.r] = true

		found := false
		for i := it.idx - 1; i >= 0; i-- {
			mi := it.b.Insts[i].MI
			if !mi.Writes().Has(it.r) {
				continue
			}
			found = true
			dk := key{it.b, i}
			if visited[dk] {
				break
			}
			visited[dk] = true
			var mark SliceMark
			switch {
			case !mi.Reads().Intersect(floatRegs()).IsEmpty() || it.r.IsFloat():
				mark = SliceImpossible
			case mi.Reads().IsEmpty():
				mark = SliceEasy
			default:
				mark = SliceHard
				mi.Reads().ForEach(func(rr machine.Reg) {
					work = append(work, item{it.b, i, rr})
				})
			}
			out = append(out, SliceEntry{Block: it.b, Index: i, Mark: mark})
			break
		}
		if !found {
			for _, e := range it.b.Pred {
				if e.From.Kind == cfg.KindEntry {
					continue
				}
				work = append(work, item{e.From, len(e.From.Insts), it.r})
			}
		}
	}
	return out
}

func floatRegs() machine.RegSet {
	var s machine.RegSet
	for r := machine.Reg(0); r < 32; r++ {
		s = s.Add(machine.FloatBase + r)
	}
	return s
}
