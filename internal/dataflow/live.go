package dataflow

import (
	"eel/internal/cfg"
	"eel/internal/machine"
)

// DefaultExitLive is the register set assumed live when a routine
// exits under the SPARC calling convention this repository's programs
// use: the return value (%o0), the stack and frame pointers, the
// return address (%o7), and the windowed in registers (they belong to
// the caller).
func DefaultExitLive() machine.RegSet {
	s := machine.NewRegSet(8, 14, 15, 30) // %o0 %sp %o7 %fp
	for r := machine.Reg(24); r < 32; r++ {
		s = s.Add(r) // %i0..%i7
	}
	return s
}

// CallUse is the set a call surrogate is assumed to read: outgoing
// arguments, the stack/frame pointers, and the return address.
func CallUse() machine.RegSet {
	return machine.NewRegSet(8, 9, 10, 11, 12, 13, 14, 15, 30)
}

// CallDef is the set a call surrogate may clobber: the caller-saved
// globals and out registers plus the condition codes.
func CallDef() machine.RegSet {
	s := machine.NewRegSet(machine.RegPSR, machine.RegFSR, machine.RegY)
	for r := machine.Reg(1); r < 8; r++ {
		s = s.Add(r) // %g1..%g7
	}
	for r := machine.Reg(8); r < 16; r++ {
		s = s.Add(r) // %o0..%o7
	}
	for r := machine.Reg(0); r < 32; r++ {
		s = s.Add(machine.FloatBase + r)
	}
	return s
}

// Liveness holds per-block live-register sets.  LiveOut(b) is the
// set live immediately after b; use LiveBefore for instruction-level
// queries and LiveAtEdge for edge-level ones — the latter is what
// snippet register scavenging (paper §3.5) consumes.
type Liveness struct {
	In, Out map[*cfg.Block]machine.RegSet
	g       *cfg.Graph
}

// instUseDef returns what one instruction reads and writes for
// liveness purposes.
func instUseDef(in cfg.Inst) (use, def machine.RegSet) {
	return in.MI.Reads(), in.MI.Writes()
}

// blockUseDef computes a block's aggregate use/def.  Call surrogate
// blocks use/def the calling convention's sets.
func blockUseDef(b *cfg.Block) (use, def machine.RegSet) {
	if b.Kind == cfg.KindCallSurrogate {
		return CallUse(), CallDef()
	}
	// Backward accumulation: use = reads before any same-block def.
	for i := len(b.Insts) - 1; i >= 0; i-- {
		u, d := instUseDef(b.Insts[i])
		use = use.Minus(d).Union(u)
		def = def.Union(d)
	}
	return use, def
}

// ComputeLiveness solves backward liveness over the graph; exitLive
// is assumed live at the routine's exit (pass DefaultExitLive() for
// the standard convention, or the full register universe to be fully
// conservative).
func ComputeLiveness(g *cfg.Graph, exitLive machine.RegSet) *Liveness {
	lv := &Liveness{
		In:  make(map[*cfg.Block]machine.RegSet, len(g.Blocks)),
		Out: make(map[*cfg.Block]machine.RegSet, len(g.Blocks)),
		g:   g,
	}
	use := make(map[*cfg.Block]machine.RegSet, len(g.Blocks))
	def := make(map[*cfg.Block]machine.RegSet, len(g.Blocks))
	for _, b := range g.Blocks {
		use[b], def[b] = blockUseDef(b)
	}
	rpo := ReversePostorder(g)
	for changed := true; changed; {
		changed = false
		// Postorder (reverse of rpo) converges fastest for a
		// backward problem.
		for i := len(rpo) - 1; i >= 0; i-- {
			b := rpo[i]
			var out machine.RegSet
			if b == g.Exit {
				out = exitLive
			}
			for _, e := range b.Succ {
				out = out.Union(lv.In[e.To])
			}
			in := out.Minus(def[b]).Union(use[b])
			if !out.Equal(lv.Out[b]) || !in.Equal(lv.In[b]) {
				lv.Out[b] = out
				lv.In[b] = in
				changed = true
			}
		}
	}
	return lv
}

// RestoreLiveness rebuilds a Liveness over g from per-block sets (the
// persistent analysis cache deserializes through it); ComputeLiveness
// remains the way to solve liveness from scratch.
func RestoreLiveness(g *cfg.Graph, in, out map[*cfg.Block]machine.RegSet) *Liveness {
	return &Liveness{In: in, Out: out, g: g}
}

// LiveBefore returns the registers live immediately before
// instruction index idx of block b (idx == len(b.Insts) queries the
// block's live-out).
func (lv *Liveness) LiveBefore(b *cfg.Block, idx int) machine.RegSet {
	live := lv.Out[b]
	for i := len(b.Insts) - 1; i >= idx; i-- {
		u, d := instUseDef(b.Insts[i])
		live = live.Minus(d).Union(u)
	}
	return live
}

// LiveAfter returns the registers live immediately after instruction
// index idx of block b.
func (lv *Liveness) LiveAfter(b *cfg.Block, idx int) machine.RegSet {
	return lv.LiveBefore(b, idx+1)
}

// LiveAtEdge returns the registers live while control flows along e:
// the destination's live-in (plus exit liveness on exit edges).
func (lv *Liveness) LiveAtEdge(e *cfg.Edge) machine.RegSet {
	return lv.In[e.To]
}

// DeadAtEdge returns integer registers (excluding %g0, %sp, %fp,
// %o7) free for scavenging along e — the paper's snippet register
// allocation (§3.5) assigns these.
func (lv *Liveness) DeadAtEdge(e *cfg.Edge) machine.RegSet {
	return scavengeable().Minus(lv.LiveAtEdge(e))
}

// DeadBefore returns scavengeable registers dead before instruction
// idx of b.
func (lv *Liveness) DeadBefore(b *cfg.Block, idx int) machine.RegSet {
	return scavengeable().Minus(lv.LiveBefore(b, idx))
}

// CondCodesLiveAtEdge reports whether the integer condition codes
// are live along e — the inquiry Blizzard's fast-path access test
// uses (paper §5).
func (lv *Liveness) CondCodesLiveAtEdge(e *cfg.Edge) bool {
	return lv.LiveAtEdge(e).Has(machine.RegPSR)
}

// scavengeable returns the candidate registers snippets may borrow:
// the integer file minus the hardwired zero, stack/frame pointers,
// and the return-address register.
func scavengeable() machine.RegSet {
	var s machine.RegSet
	for r := machine.Reg(1); r < 32; r++ {
		s = s.Add(r)
	}
	return s.Remove(14).Remove(30).Remove(15) // %sp %fp %o7
}
