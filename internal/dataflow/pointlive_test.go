package dataflow_test

import (
	"testing"

	"eel/internal/dataflow"
	"eel/internal/machine"
)

// Point-level liveness must agree with the block-level solution at
// every address, and must answer false for addresses outside the
// graph.
func TestPointLiveness(t *testing.T) {
	g, prog := build(t, `
	mov 3, %l0
	subcc %o0, 1, %o1
	be out
	nop
	add %l0, %o1, %o0
out:	retl
	nop
`)
	lv := dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	pl := lv.Points()

	if pl.Len() == 0 {
		t.Fatal("point fold covered no addresses")
	}
	for _, b := range g.Blocks {
		for i, in := range b.Insts {
			got, ok := pl.LiveAfter(in.Addr)
			if !ok {
				t.Fatalf("pc %#x missing from point fold", in.Addr)
			}
			want := lv.LiveAfter(b, i)
			// Duplicated addresses union across occurrences, so the
			// point answer may only grow.
			if !want.Minus(got).IsEmpty() {
				t.Errorf("pc %#x: point live-after %v lost block-level bits %v",
					in.Addr, got, want)
			}
		}
	}

	// subcc's flags feed the be two slots later, so PSR is live right
	// after the subcc; after the be's delay slot the branch has
	// consumed them on both paths and nothing else reads PSR.
	subccPC := prog.Base + 4
	live, ok := pl.LiveAfter(subccPC)
	if !ok || !live.Has(machine.RegPSR) {
		t.Errorf("PSR not live after subcc at %#x (live=%v ok=%v)", subccPC, live, ok)
	}

	if _, ok := pl.LiveAfter(0xdead0000); ok {
		t.Error("out-of-graph pc reported as covered")
	}
}
