package dataflow

import "eel/internal/machine"

// PointLiveness maps individual program points (instruction addresses)
// to the registers live immediately after that instruction executes.
// It folds the block-level Liveness solution down to addresses so a
// consumer that partitions code differently from the CFG builder (the
// routine-tier compiler keeps its own leader partition) can still ask
// liveness questions at arbitrary pcs.
//
// An address that appears in more than one block (delay-slot
// duplication, overlapping entry splits) gets the union of every
// occurrence's live-after set — the conservative answer for any
// execution reaching that pc.
type PointLiveness struct {
	after map[uint32]machine.RegSet
}

// Points folds lv down to per-address live-after sets.
func (lv *Liveness) Points() *PointLiveness {
	pl := &PointLiveness{after: make(map[uint32]machine.RegSet)}
	for _, b := range lv.g.Blocks {
		for i, in := range b.Insts {
			live := lv.LiveAfter(b, i)
			if prev, ok := pl.after[in.Addr]; ok {
				live = live.Union(prev)
			}
			pl.after[in.Addr] = live
		}
	}
	return pl
}

// LiveAfter returns the registers live immediately after the
// instruction at pc, and whether pc was part of the analyzed graph.
// Callers must treat a missing pc as "everything live".
func (pl *PointLiveness) LiveAfter(pc uint32) (machine.RegSet, bool) {
	s, ok := pl.after[pc]
	return s, ok
}

// Len reports how many program points the fold covered.
func (pl *PointLiveness) Len() int { return len(pl.after) }
