package dataflow_test

import (
	"testing"

	"eel/internal/asm"
	"eel/internal/cfg"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/sparc"
)

func build(t *testing.T, src string) (*cfg.Graph, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	end := prog.Base + uint32(len(prog.Bytes))
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end, []uint32{prog.Base})
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g, prog
}

const diamond = `
	cmp %o0, 0
	be elsepart
	nop
	mov 1, %l0
	ba join
	nop
elsepart: mov 2, %l0
join:	mov %l0, %o0
	retl
	nop
`

func TestDominators(t *testing.T) {
	g, prog := build(t, diamond)
	idom := dataflow.Dominators(g)
	head := g.ByAddr[0x10000]
	join := g.ByAddr[prog.Labels["join"]]
	elseB := g.ByAddr[prog.Labels["elsepart"]]
	if !dataflow.Dominates(idom, head, join) {
		t.Error("head must dominate join")
	}
	if !dataflow.Dominates(idom, head, elseB) {
		t.Error("head must dominate else")
	}
	if dataflow.Dominates(idom, elseB, join) {
		t.Error("else must not dominate join")
	}
	if idom[g.Entry] != g.Entry {
		t.Error("entry idom broken")
	}
}

const loopSrc = `
	mov 10, %l0
	clr %o0
loop:	add %o0, %l0, %o0
	subcc %l0, 1, %l0
	bne loop
	nop
	retl
	nop
`

func TestNaturalLoops(t *testing.T) {
	g, prog := build(t, loopSrc)
	idom := dataflow.Dominators(g)
	loops := dataflow.NaturalLoops(g, idom)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Head != g.ByAddr[prog.Labels["loop"]] {
		t.Errorf("loop head at %#x", l.Head.Start())
	}
	if !l.Body[l.Head] {
		t.Error("head not in body")
	}
	depth := dataflow.LoopDepth(loops)
	if depth[l.Head] != 1 {
		t.Errorf("depth = %d", depth[l.Head])
	}
	if depth[g.Entry] != 0 {
		t.Error("entry should be outside the loop")
	}
}

func TestLivenessBasics(t *testing.T) {
	g, _ := build(t, `
	mov 1, %l0
	mov 2, %l1
	add %l0, %l1, %o0
	retl
	nop
`)
	lv := dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	b := g.ByAddr[0x10000]
	// Before the add (index 2), l0 and l1 are live.
	live := lv.LiveBefore(b, 2)
	if !live.Has(16) || !live.Has(17) {
		t.Errorf("live before add = %s, want l0,l1", live)
	}
	// Before the first mov nothing of l0/l1 is live.
	live0 := lv.LiveBefore(b, 0)
	if live0.Has(16) || live0.Has(17) {
		t.Errorf("live at block start = %s", live0)
	}
	// o0 is live at exit (return value).
	if !lv.Out[b].Has(8) && !lv.In[g.Exit].Has(8) {
		// o0 flows through the return path blocks.
		t.Log("o0 liveness flows through return slot; checking edge")
	}
}

func TestDeadRegistersForScavenging(t *testing.T) {
	g, _ := build(t, `
	mov 1, %l0
	add %l0, 1, %o0
	retl
	nop
`)
	lv := dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	b := g.ByAddr[0x10000]
	dead := lv.DeadBefore(b, 0)
	// Plenty of dead registers at routine entry in this tiny code;
	// and never %sp/%fp/%o7/%g0.
	if dead.Len() < 10 {
		t.Errorf("dead = %s (%d), want many", dead, dead.Len())
	}
	for _, r := range []machine.Reg{0, 14, 15, 30} {
		if dead.Has(r) {
			t.Errorf("reserved register r%d offered for scavenging", r)
		}
	}
}

func TestCondCodesLiveness(t *testing.T) {
	// Blizzard's optimization (§5): insert the cheap cc-clobbering
	// test only where the condition codes are dead.
	g, prog := build(t, `
	cmp %o0, 5
	mov 1, %l0
use:	be somewhere
	nop
	retl
	nop
somewhere: retl
	nop
`)
	lv := dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	first := g.ByAddr[0x10000]
	// After cmp, before be: PSR is live (the mov doesn't kill it).
	if !lv.LiveBefore(first, 1).Has(machine.RegPSR) {
		t.Error("PSR should be live between cmp and be")
	}
	// At the branch target, PSR is dead.
	tgt := g.ByAddr[prog.Labels["somewhere"]]
	if lv.LiveBefore(tgt, 0).Has(machine.RegPSR) {
		t.Error("PSR should be dead after the branch consumed it")
	}
}

func TestCallClobbersOutRegisters(t *testing.T) {
	g, _ := build(t, `
	mov 5, %l5
	call f
	nop
	add %l5, 1, %o0
	retl
	nop
f:	retl
	nop
`)
	lv := dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	first := g.ByAddr[0x10000]
	// l5 is live across the call (used after).
	if !lv.LiveBefore(first, 1).Has(21) {
		t.Error("l5 must be live across the call")
	}
	// o5 is dead before the call (clobbered by surrogate, not an
	// argument... it IS in CallUse, so live). Check g3 instead:
	// dead (surrogate clobbers it, nothing reads it).
	if lv.LiveBefore(first, 1).Has(3) {
		t.Error("g3 should be dead before the call")
	}
}

// dispatchSrc is the canonical gcc-style switch lowering.
const dispatchSrc = `
	cmp %o0, 3
	bgu default
	sll %o0, 2, %l1
	set table, %l2
	ld [%l2+%l1], %l3
	jmp %l3
	nop
case0:	mov 10, %o0
	retl
	nop
case1:	mov 20, %o0
	retl
	nop
case2:	mov 30, %o0
	retl
	nop
case3:	mov 40, %o0
	retl
	nop
default: mov 99, %o0
	retl
	nop
	.align 4
table:	.word case0
	.word case1
	.word case2
	.word case3
`

func resolver(g *cfg.Graph, prog *asm.Program) *dataflow.Resolver {
	return &dataflow.Resolver{
		ReadWord: func(addr uint32) (uint32, bool) {
			off := addr - prog.Base
			if off+4 > uint32(len(prog.Bytes)) {
				return 0, false
			}
			return uint32(prog.Bytes[off])<<24 | uint32(prog.Bytes[off+1])<<16 |
				uint32(prog.Bytes[off+2])<<8 | uint32(prog.Bytes[off+3]), true
		},
	}
}

func TestDispatchTableResolution(t *testing.T) {
	g, prog := build(t, dispatchSrc)
	if g.Complete {
		t.Fatal("first pass should be incomplete")
	}
	r := &dataflow.Resolver{G: g, ReadWord: resolver(nil, prog).ReadWord}
	res := r.AnalyzeIndirectJumps()
	if len(res) != 1 {
		t.Fatalf("resolutions = %d", len(res))
	}
	var jumpAddr uint32
	var got dataflow.Resolution
	for a, rr := range res {
		jumpAddr, got = a, rr
	}
	if !got.OK {
		t.Fatal("dispatch table not found")
	}
	if got.Table.Addr != prog.Labels["table"] {
		t.Errorf("table at %#x, want %#x", got.Table.Addr, prog.Labels["table"])
	}
	if len(got.Targets) != 4 {
		t.Fatalf("targets = %d, want 4 (bounds check should clamp)", len(got.Targets))
	}
	want := []string{"case0", "case1", "case2", "case3"}
	for i, w := range want {
		if got.Targets[i] != prog.Labels[w] {
			t.Errorf("target[%d] = %#x, want %s", i, got.Targets[i], w)
		}
	}
	// Rebuild with the resolution: the graph becomes complete.
	end := prog.Base + uint32(len(prog.Bytes))
	g2, err := cfg.BuildWithOptions(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end,
		[]uint32{prog.Base}, cfg.Options{
			IndirectTargets: map[uint32][]uint32{jumpAddr: got.Targets},
			Tables:          map[uint32]cfg.TableInfo{jumpAddr: got.Table},
		})
	if err != nil {
		t.Fatal(err)
	}
	if !g2.Complete {
		t.Error("rebuilt graph should be complete")
	}
	if g2.ByAddr[prog.Labels["case2"]] == nil {
		t.Error("case arm not materialized after rebuild")
	}
}

func TestLiteralJumpResolution(t *testing.T) {
	g, prog := build(t, `
	set target, %l0
	jmp %l0
	nop
target:	retl
	nop
`)
	r := &dataflow.Resolver{G: g, ReadWord: resolver(nil, prog).ReadWord}
	res := r.AnalyzeIndirectJumps()
	for _, got := range res {
		if !got.OK || !got.Table.Literal {
			t.Fatalf("literal jump unresolved: %+v", got)
		}
		if got.Targets[0] != prog.Labels["target"] {
			t.Errorf("literal target = %#x", got.Targets[0])
		}
	}
	if len(res) != 1 {
		t.Fatalf("resolutions = %d", len(res))
	}
}

func TestTailCallPopAndJumpUnresolvable(t *testing.T) {
	// The SunPro idiom the paper measured: pop the frame and jump
	// through a register whose value came from the caller — the
	// slice reaches the routine entry and gives up.
	g, _ := build(t, `
	add %sp, 96, %sp
	jmp %g1
	nop
`)
	r := &dataflow.Resolver{G: g, ReadWord: func(uint32) (uint32, bool) { return 0, false }}
	res := r.AnalyzeIndirectJumps()
	for _, got := range res {
		if got.OK {
			t.Error("caller-provided jump target should be unresolvable")
		}
	}
	if len(res) != 1 {
		t.Fatalf("resolutions = %d", len(res))
	}
}

func TestBackwardSliceFigure4(t *testing.T) {
	g, _ := build(t, `
	mov 4, %l0
	sll %l0, 2, %l1
	set 0x20000, %l2
	add %l2, %l1, %l3
	ld [%l3], %o0
	retl
	nop
`)
	b := g.ByAddr[0x10000]
	// Slice the address register %l3 of the load (index 5 in block:
	// mov, sll, sethi, or, add, ld).
	entries := dataflow.BackwardSlice(g, b, 5, 19) // %l3
	if len(entries) < 4 {
		t.Fatalf("slice entries = %d, want >= 4", len(entries))
	}
	// Index in block: 0 mov(or g0), 1 sll, 2 sethi, 3 or, 4 add.
	marks := map[int]dataflow.SliceMark{}
	for _, e := range entries {
		marks[e.Index] = e.Mark
	}
	if m, ok := marks[2]; !ok || m != dataflow.SliceEasy {
		t.Errorf("sethi should be easy (reads nothing): %v ok=%v", m, ok)
	}
	if m, ok := marks[4]; !ok || m != dataflow.SliceHard {
		t.Errorf("add should be hard: %v ok=%v", m, ok)
	}
	if m, ok := marks[0]; !ok || m != dataflow.SliceEasy {
		t.Errorf("mov imm (or %%g0) should be easy: %v ok=%v", m, ok)
	}
	if m, ok := marks[1]; !ok || m != dataflow.SliceHard {
		t.Errorf("sll should be hard (reads the index): %v ok=%v", m, ok)
	}
}

func TestSliceStopsAtFloat(t *testing.T) {
	g, _ := build(t, `
	fstoi %f0, %f1
	retl
	nop
`)
	b := g.ByAddr[0x10000]
	entries := dataflow.BackwardSlice(g, b, 1, machine.FloatBase+1)
	for _, e := range entries {
		if e.Mark != dataflow.SliceImpossible {
			t.Errorf("float def should be impossible, got %v", e.Mark)
		}
	}
}
