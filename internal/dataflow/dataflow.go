// Package dataflow provides EEL's standard CFG analyses (paper
// §3.3): dominators, natural loops, live registers (including
// condition codes, which enables the Blizzard optimization of §5),
// and the backward slicing that resolves indirect jumps to their
// dispatch tables.
package dataflow

import "eel/internal/cfg"

// ReversePostorder returns the graph's blocks in reverse postorder
// from the entry block (unreachable blocks are appended at the end in
// ID order so analyses still see them).
func ReversePostorder(g *cfg.Graph) []*cfg.Block {
	seen := make([]bool, len(g.Blocks))
	post := make([]*cfg.Block, 0, len(g.Blocks))
	// Iterative DFS with an explicit frame stack: recursion depth is
	// the length of the longest straight-line chain, which for large
	// machine-generated routines can overflow the goroutine stack.
	type frame struct {
		b    *cfg.Block
		next int // index of the next successor edge to explore
	}
	seen[g.Entry.ID] = true
	stack := []frame{{b: g.Entry}}
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(f.b.Succ) {
			e := f.b.Succ[f.next]
			f.next++
			if !seen[e.To.ID] {
				seen[e.To.ID] = true
				stack = append(stack, frame{b: e.To})
			}
			continue
		}
		post = append(post, f.b)
		stack = stack[:len(stack)-1]
	}
	// Reverse.
	out := make([]*cfg.Block, 0, len(g.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range g.Blocks {
		if !seen[b.ID] {
			out = append(out, b)
		}
	}
	return out
}

// Dominators computes each block's immediate dominator using the
// Cooper-Harvey-Kennedy iterative algorithm.  The entry block's idom
// is itself; unreachable blocks have nil.
func Dominators(g *cfg.Graph) map[*cfg.Block]*cfg.Block {
	rpo := ReversePostorder(g)
	index := make(map[*cfg.Block]int, len(rpo))
	for i, b := range rpo {
		index[b] = i
	}
	idom := make(map[*cfg.Block]*cfg.Block, len(rpo))
	idom[g.Entry] = g.Entry
	intersect := func(a, b *cfg.Block) *cfg.Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var newIdom *cfg.Block
			for _, e := range b.Pred {
				p := e.From
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under idom.
func Dominates(idom map[*cfg.Block]*cfg.Block, a, b *cfg.Block) bool {
	for {
		if b == a {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is one natural loop: a back edge's target (head) plus every
// block that can reach the back edge without passing through the
// head.
type Loop struct {
	Head *cfg.Block
	// Body includes the head.
	Body map[*cfg.Block]bool
	// BackEdges are the latch edges into the head.
	BackEdges []*cfg.Edge
}

// NaturalLoops finds the graph's natural loops from back edges
// (edges whose target dominates their source).  Loops sharing a head
// are merged, as usual.
func NaturalLoops(g *cfg.Graph, idom map[*cfg.Block]*cfg.Block) []*Loop {
	byHead := map[*cfg.Block]*Loop{}
	var order []*cfg.Block
	for _, e := range g.Edges {
		if idom[e.From] == nil || !Dominates(idom, e.To, e.From) {
			continue
		}
		l := byHead[e.To]
		if l == nil {
			l = &Loop{Head: e.To, Body: map[*cfg.Block]bool{e.To: true}}
			byHead[e.To] = l
			order = append(order, e.To)
		}
		l.BackEdges = append(l.BackEdges, e)
		// Collect the body by walking predecessors from the latch.
		work := []*cfg.Block{e.From}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			if l.Body[b] {
				continue
			}
			l.Body[b] = true
			for _, pe := range b.Pred {
				work = append(work, pe.From)
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHead[h])
	}
	return loops
}

// LoopDepth returns each block's loop nesting depth (0 outside any
// loop).
func LoopDepth(loops []*Loop) map[*cfg.Block]int {
	depth := map[*cfg.Block]int{}
	for _, l := range loops {
		for b := range l.Body {
			depth[b]++
		}
	}
	return depth
}
