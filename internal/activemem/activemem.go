// Package activemem reimplements Active Memory (paper §1, §5), the
// EEL-based memory-system simulation platform of Lebeck and Wood:
// every load and store is preceded by an inline test of the accessed
// location's cache state, so cache simulation costs a 2-7× slowdown
// instead of the orders of magnitude of trace post-processing.
//
// The inserted test simulates a direct-mapped cache entirely
// branch-free and condition-code-free (a miss is computed as
// ((old-tag XOR new-tag) | -(old-tag XOR new-tag)) >> 31), so the
// snippet never needs the Blizzard cc-alternative body and can be
// placed anywhere.
package activemem

import (
	"fmt"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/sim"
	"eel/internal/sparc"
)

// Config sets the simulated cache's geometry.
type Config struct {
	// LineBytes is the cache line size (power of two).
	LineBytes int
	// Sets is the number of direct-mapped sets (power of two).
	Sets int
}

// DefaultConfig is a 4 KB direct-mapped cache with 16-byte lines.
func DefaultConfig() Config { return Config{LineBytes: 16, Sets: 256} }

// Result describes the instrumented executable.
type Result struct {
	// Accesses/Misses are the counter addresses in the edited image.
	AccessCtr, MissCtr uint32
	// Tags is the simulated tag array's base address.
	Tags uint32
	// Sites is the number of instrumented memory instructions.
	Sites int
	// SiteAddrs lists the original addresses of instrumented memory
	// instructions (tests replay them against a golden cache model).
	SiteAddrs []uint32
	cfg       Config
}

// lineShift returns log2(LineBytes).
func (c Config) lineShift() (uint32, error) {
	s := uint32(0)
	for v := c.LineBytes; v > 1; v >>= 1 {
		if v&1 != 0 {
			return 0, fmt.Errorf("activemem: line size %d not a power of two", c.LineBytes)
		}
		s++
	}
	return s, nil
}

// Instrument inserts the cache test before every load and store in
// every routine of e.
func Instrument(e *core.Executable, cc Config) (*Result, error) {
	shift, err := cc.lineShift()
	if err != nil {
		return nil, err
	}
	if cc.Sets&(cc.Sets-1) != 0 || cc.Sets > 1024 {
		return nil, fmt.Errorf("activemem: sets must be a power of two <= 1024")
	}
	res := &Result{cfg: cc}
	res.AccessCtr = e.AllocData(4)
	res.MissCtr = e.AllocData(4)
	res.Tags = e.AllocData(4 * cc.Sets)

	for _, r := range e.Routines() {
		g, err := r.ControlFlowGraph()
		if err != nil {
			return nil, fmt.Errorf("activemem: %s: %w", r.Name, err)
		}
		if err := instrumentGraph(r, g, res, shift); err != nil {
			return nil, err
		}
		if err := r.ProduceEditedRoutine(); err != nil {
			return nil, err
		}
	}
	for {
		h := e.TakeHidden()
		if h == nil {
			break
		}
		g, err := h.ControlFlowGraph()
		if err != nil {
			return nil, err
		}
		if err := instrumentGraph(h, g, res, shift); err != nil {
			return nil, err
		}
		if err := h.ProduceEditedRoutine(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func instrumentGraph(r *core.Routine, g *cfg.Graph, res *Result, shift uint32) error {
	for _, b := range g.Blocks {
		if b.Uneditable {
			continue
		}
		for i, in := range b.Insts {
			if !in.MI.Category().IsMemory() {
				continue
			}
			snip, err := testSnippet(in.MI, res, shift)
			if err != nil {
				return err
			}
			if err := r.AddCodeBefore(b, i, snip); err != nil {
				return fmt.Errorf("activemem: %s at %#x: %w", r.Name, in.Addr, err)
			}
			res.Sites++
			res.SiteAddrs = append(res.SiteAddrs, in.Addr)
		}
	}
	return nil
}

// testSnippet builds the per-site cache test.  The first instruction
// recomputes the access's effective address from the instrumented
// instruction's own registers (the per-site customization of the
// paper's Fig 2); the rest is shared.
func testSnippet(inst *machine.Inst, res *Result, shift uint32) (*core.Snippet, error) {
	phs, err := core.PickPlaceholders(inst, 4)
	if err != nil {
		return nil, err
	}
	p1, p2, p3, p4 := phs[0], phs[1], phs[2], phs[3]
	var words []uint32
	emit := func(w uint32, err error) error {
		if err != nil {
			return err
		}
		words = append(words, w)
		return nil
	}
	rs1F, _ := inst.Field("rs1")
	iflag, _ := inst.Field("iflag")
	rs1 := machine.Reg(rs1F)
	// 1: effective address into p1.
	if iflag == 1 {
		simmF, _ := inst.Field("simm13")
		simm := int32(simmF<<19) >> 19
		if err := emit(sparc.EncodeOp3Imm("add", p1, rs1, simm)); err != nil {
			return nil, err
		}
	} else {
		rs2F, _ := inst.Field("rs2")
		if err := emit(sparc.EncodeOp3("add", p1, rs1, machine.Reg(rs2F))); err != nil {
			return nil, err
		}
	}
	steps := []func() error{
		// 2: block number.
		func() error { return emit(sparc.EncodeOp3Imm("srl", p1, p1, int32(shift))) },
		// 3-4: set index, scaled.
		func() error { return emit(sparc.EncodeOp3Imm("and", p2, p1, int32(res.cfg.Sets-1))) },
		func() error { return emit(sparc.EncodeOp3Imm("sll", p2, p2, 2)) },
		// 5-6: tag array base.
		func() error { return emit(sparc.EncodeSethi(p3, res.Tags)) },
		func() error { return emit(sparc.EncodeOp3Imm("or", p3, p3, int32(sparc.Lo(res.Tags)))) },
		// 7: old tag.
		func() error { return emit(sparc.EncodeOp3("ld", p4, p3, p2)) },
		// 8: store new tag (same value on a hit: harmless).
		func() error { return emit(sparc.EncodeOp3("st", p1, p3, p2)) },
		// 9-12: miss = ((old^new) | -(old^new)) >> 31, branch-free.
		func() error { return emit(sparc.EncodeOp3("xor", p4, p4, p1)) },
		func() error { return emit(sparc.EncodeOp3("sub", p2, 0, p4)) },
		func() error { return emit(sparc.EncodeOp3("or", p4, p4, p2)) },
		func() error { return emit(sparc.EncodeOp3Imm("srl", p4, p4, 31)) },
		// 13-16: misses += miss.
		func() error { return emit(sparc.EncodeSethi(p2, res.MissCtr)) },
		func() error { return emit(sparc.EncodeOp3Imm("ld", p3, p2, int32(sparc.Lo(res.MissCtr)))) },
		func() error { return emit(sparc.EncodeOp3("add", p3, p3, p4)) },
		func() error { return emit(sparc.EncodeOp3Imm("st", p3, p2, int32(sparc.Lo(res.MissCtr)))) },
		// 17-20: accesses++.
		func() error { return emit(sparc.EncodeSethi(p2, res.AccessCtr)) },
		func() error { return emit(sparc.EncodeOp3Imm("ld", p3, p2, int32(sparc.Lo(res.AccessCtr)))) },
		func() error { return emit(sparc.EncodeOp3Imm("add", p3, p3, 1)) },
		func() error { return emit(sparc.EncodeOp3Imm("st", p3, p2, int32(sparc.Lo(res.AccessCtr)))) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	return core.NewSnippet(words, []machine.Reg{p1, p2, p3, p4}), nil
}

// Counts reads the access and miss counters from an executed image.
func (r *Result) Counts(mem *sim.Memory) (accesses, misses uint64) {
	return uint64(mem.Read32(r.AccessCtr)), uint64(mem.Read32(r.MissCtr))
}
