package activemem_test

import (
	"testing"

	"eel/internal/activemem"
	"eel/internal/asm"
	"eel/internal/binfile"
	"eel/internal/core"
	"eel/internal/sim"
)

func makeExec(t *testing.T, src string) *core.Executable {
	t.Helper()
	prog, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	f := &binfile.File{
		Format: "aout",
		Entry:  0x10000,
		Sections: []binfile.Section{
			{Name: "text", Addr: 0x10000, Data: prog.Bytes},
			{Name: "data", Addr: 0x400000, Data: make([]byte, 4096)},
		},
		Symbols: []binfile.Symbol{{Name: "main", Addr: 0x10000, Kind: binfile.SymFunc, Global: true}},
	}
	e, err := core.NewExecutable(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestExactCountsKnownPattern validates the inline cache test on a
// hand-computed access pattern.
func TestExactCountsKnownPattern(t *testing.T) {
	// Four accesses: A, A (hit), A+16 (miss: new line), A (miss:
	// 2-set cache with 16B lines — A and A+16 map to different sets,
	// so the last A hits!).  With sets=2: set(A)=0, set(A+16)=1:
	// pattern A(miss) A(hit) A+16(miss) A(hit) = 3 hits... recount:
	// accesses: 4, misses: 2.
	src := `
main:	set 0x400100, %l0
	ld [%l0], %o1
	ld [%l0], %o1
	ld [%l0+16], %o1
	ld [%l0], %o1
	mov 1, %g1
	ta 0
`
	e := makeExec(t, src)
	res, err := activemem.Instrument(e, activemem.Config{LineBytes: 16, Sets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sites != 4 {
		t.Fatalf("sites = %d", res.Sites)
	}
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.LoadFile(edited, nil)
	if err := cpu.Run(100000); err != nil {
		t.Fatal(err)
	}
	acc, miss := res.Counts(cpu.Mem)
	if acc != 4 || miss != 2 {
		t.Errorf("accesses=%d misses=%d, want 4/2", acc, miss)
	}
}

func TestConflictMisses(t *testing.T) {
	// A and A+32 collide in a 2-set 16B-line cache (both set 0):
	// alternating accesses always miss.
	src := `
main:	set 0x400100, %l0
	mov 3, %l1
loop:	ld [%l0], %o1
	ld [%l0+32], %o1
	subcc %l1, 1, %l1
	bne loop
	nop
	mov 1, %g1
	ta 0
`
	e := makeExec(t, src)
	res, err := activemem.Instrument(e, activemem.Config{LineBytes: 16, Sets: 2})
	if err != nil {
		t.Fatal(err)
	}
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.LoadFile(edited, nil)
	if err := cpu.Run(100000); err != nil {
		t.Fatal(err)
	}
	acc, miss := res.Counts(cpu.Mem)
	if acc != 6 || miss != 6 {
		t.Errorf("accesses=%d misses=%d, want 6/6 (pure conflict)", acc, miss)
	}
}

func TestRegisterIndexedAddress(t *testing.T) {
	src := `
main:	set 0x400100, %l0
	mov 8, %l1
	ld [%l0+%l1], %o1
	mov 1, %g1
	ta 0
`
	e := makeExec(t, src)
	res, err := activemem.Instrument(e, activemem.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu := sim.LoadFile(edited, nil)
	if err := cpu.Run(100000); err != nil {
		t.Fatal(err)
	}
	if acc, _ := res.Counts(cpu.Mem); acc != 1 {
		t.Errorf("accesses = %d", acc)
	}
	if cpu.ExitCode != 0 {
		t.Errorf("exit = %d", cpu.ExitCode)
	}
}

func TestBadGeometryRejected(t *testing.T) {
	e := makeExec(t, "main:\tmov 1, %g1\n\tta 0\n")
	if _, err := activemem.Instrument(e, activemem.Config{LineBytes: 12, Sets: 4}); err == nil {
		t.Error("non-power-of-two line accepted")
	}
	if _, err := activemem.Instrument(e, activemem.Config{LineBytes: 16, Sets: 3}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}
