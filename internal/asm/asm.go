// Package asm is a two-pass SPARC V8 assembler for the subset of
// syntax this repository's tests, examples, snippets, and program
// generator need: labels, data directives (.word/.half/.byte/.ascii/
// .asciz/.align/.skip), the instruction set of the spawn description,
// memory operands, %hi()/%lo() relocation operators, and the common
// pseudo-instructions (set, mov, cmp, jmp, ret, retl, nop, clr, b).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"eel/internal/machine"
	"eel/internal/sparc"
)

// Program is an assembled byte image with its label table.
type Program struct {
	Base   uint32
	Bytes  []byte
	Labels map[string]uint32
}

// Words returns the image as big-endian words (the image length must
// be word-aligned).
func (p *Program) Words() []uint32 {
	out := make([]uint32, len(p.Bytes)/4)
	for i := range out {
		out[i] = be32(p.Bytes[i*4:])
	}
	return out
}

func be32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Error reports an assembly failure with line context.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

type stmt struct {
	line   int
	label  string
	op     string
	args   string
	addr   uint32
	length uint32
}

// Assemble assembles src at the given base address.
func Assemble(src string, base uint32) (*Program, error) {
	stmts, err := scan(src)
	if err != nil {
		return nil, err
	}
	p := &Program{Base: base, Labels: map[string]uint32{}}
	// Pass 1: lay out addresses.
	addr := base
	for i := range stmts {
		s := &stmts[i]
		if s.op == ".align" {
			n, err := parseNum(strings.TrimSpace(s.args))
			if err != nil || n == 0 {
				return nil, &Error{s.line, "bad .align"}
			}
			for addr%uint32(n) != 0 {
				addr++
			}
		}
		s.addr = addr
		if s.label != "" {
			if _, dup := p.Labels[s.label]; dup {
				return nil, &Error{s.line, "duplicate label " + s.label}
			}
			p.Labels[s.label] = addr
		}
		n, err := sizeOf(s)
		if err != nil {
			return nil, err
		}
		s.length = n
		addr += n
	}
	// Pass 2: encode.
	a := &assembler{prog: p}
	for i := range stmts {
		if err := a.emit(&stmts[i]); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustAssemble is Assemble for known-good test inputs.
func MustAssemble(src string, base uint32) *Program {
	p, err := Assemble(src, base)
	if err != nil {
		panic(err)
	}
	return p
}

// scan splits source into labelled statements.
func scan(src string) ([]stmt, error) {
	var stmts []stmt
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		for _, c := range []string{"!", ";", "//"} {
			if idx := strings.Index(line, c); idx >= 0 {
				line = line[:idx]
			}
		}
		line = strings.TrimSpace(line)
		for line != "" {
			var s stmt
			s.line = i + 1
			if idx := strings.Index(line, ":"); idx >= 0 && isLabel(line[:idx]) {
				s.label = line[:idx]
				line = strings.TrimSpace(line[idx+1:])
				// Several labels may share one address ("a: b: nop"):
				// emit a label-only statement and keep scanning.
				if idx2 := strings.Index(line, ":"); idx2 >= 0 && isLabel(line[:idx2]) {
					stmts = append(stmts, s)
					continue
				}
			}
			fields := strings.SplitN(line, " ", 2)
			s.op = strings.TrimSpace(fields[0])
			if len(fields) > 1 {
				s.args = strings.TrimSpace(fields[1])
			}
			line = ""
			stmts = append(stmts, s)
		}
	}
	return stmts, nil
}

func isLabel(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || r == '.' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' ||
			(i > 0 && r >= '0' && r <= '9') {
			continue
		}
		return false
	}
	return true
}

// sizeOf returns a statement's byte length.
func sizeOf(s *stmt) (uint32, error) {
	switch s.op {
	case "", ".align", ".global":
		return 0, nil
	case ".word":
		return uint32(4 * len(splitArgs(s.args))), nil
	case ".half":
		return uint32(2 * len(splitArgs(s.args))), nil
	case ".byte":
		return uint32(len(splitArgs(s.args))), nil
	case ".skip":
		n, err := parseNum(strings.TrimSpace(s.args))
		if err != nil {
			return 0, &Error{s.line, "bad .skip"}
		}
		return uint32(n), nil
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(strings.TrimSpace(s.args))
		if err != nil {
			return 0, &Error{s.line, "bad string literal"}
		}
		n := uint32(len(str))
		if s.op == ".asciz" {
			n++
		}
		return n, nil
	case "set":
		return 8, nil // sethi + or
	default:
		return 4, nil
	}
}

type assembler struct {
	prog *Program
}

func (a *assembler) emit(s *stmt) error {
	switch s.op {
	case "", ".align", ".global":
		// .align pads with zeros up to s.addr.
		for uint32(len(a.prog.Bytes))+a.prog.Base < s.addr {
			a.prog.Bytes = append(a.prog.Bytes, 0)
		}
		return nil
	case ".word", ".half", ".byte":
		width := map[string]int{".word": 4, ".half": 2, ".byte": 1}[s.op]
		for _, arg := range splitArgs(s.args) {
			v, err := a.value(arg, s)
			if err != nil {
				return err
			}
			for i := width - 1; i >= 0; i-- {
				a.prog.Bytes = append(a.prog.Bytes, byte(v>>(8*i)))
			}
		}
		return nil
	case ".skip":
		for i := uint32(0); i < s.length; i++ {
			a.prog.Bytes = append(a.prog.Bytes, 0)
		}
		return nil
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(strings.TrimSpace(s.args))
		if err != nil {
			return &Error{s.line, "bad string literal"}
		}
		a.prog.Bytes = append(a.prog.Bytes, str...)
		if s.op == ".asciz" {
			a.prog.Bytes = append(a.prog.Bytes, 0)
		}
		return nil
	}
	words, err := a.inst(s)
	if err != nil {
		return err
	}
	for _, w := range words {
		a.prog.Bytes = append(a.prog.Bytes, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return nil
}

// value resolves a numeric or label operand, with %hi()/%lo().
func (a *assembler) value(arg string, s *stmt) (int64, error) {
	arg = strings.TrimSpace(arg)
	if strings.HasPrefix(arg, "%hi(") && strings.HasSuffix(arg, ")") {
		v, err := a.value(arg[4:len(arg)-1], s)
		if err != nil {
			return 0, err
		}
		return int64(sparc.Hi(uint32(v))), nil
	}
	if strings.HasPrefix(arg, "%lo(") && strings.HasSuffix(arg, ")") {
		v, err := a.value(arg[4:len(arg)-1], s)
		if err != nil {
			return 0, err
		}
		return int64(sparc.Lo(uint32(v))), nil
	}
	// label+offset / label-offset
	for _, sep := range []string{"+", "-"} {
		if idx := strings.LastIndex(arg, sep); idx > 0 && isLabel(arg[:idx]) {
			base, ok := a.prog.Labels[arg[:idx]]
			if !ok {
				break
			}
			off, err := parseNum(arg[idx+1:])
			if err != nil {
				return 0, &Error{s.line, "bad offset in " + arg}
			}
			if sep == "-" {
				off = -off
			}
			return int64(base) + off, nil
		}
	}
	if v, ok := a.prog.Labels[arg]; ok {
		return int64(v), nil
	}
	v, err := parseNum(arg)
	if err != nil {
		return 0, &Error{s.line, fmt.Sprintf("cannot resolve operand %q", arg)}
	}
	return v, nil
}

func parseNum(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasPrefix(s, "0b"):
		v, err = strconv.ParseUint(s[2:], 2, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// splitArgs splits on commas outside brackets and parens.
func splitArgs(s string) []string {
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	if rest := strings.TrimSpace(s[start:]); rest != "" {
		out = append(out, rest)
	}
	return out
}

// branchNames is the set of branch mnemonics accepted with an
// optional ",a" annul suffix.
var branchNames = map[string]bool{
	"ba": true, "bn": true, "bne": true, "be": true, "bg": true, "ble": true,
	"bge": true, "bl": true, "bgu": true, "bleu": true, "bcc": true, "bcs": true,
	"bpos": true, "bneg": true, "bvc": true, "bvs": true,
	"fba": true, "fbn": true, "fbu": true, "fbg": true, "fbug": true, "fbl": true,
	"fbul": true, "fblg": true, "fbne": true, "fbe": true, "fbue": true,
	"fbge": true, "fbuge": true, "fble": true, "fbule": true, "fbo": true,
}

var aluOps = map[string]bool{
	"add": true, "sub": true, "and": true, "or": true, "xor": true,
	"andn": true, "orn": true, "xnor": true, "addx": true, "subx": true,
	"umul": true, "smul": true, "udiv": true, "sdiv": true,
	"addcc": true, "subcc": true, "andcc": true, "orcc": true, "xorcc": true,
	"andncc": true, "orncc": true, "xnorcc": true,
	"sll": true, "srl": true, "sra": true, "save": true, "restore": true,
	"fadds": true, "fsubs": true, "fmuls": true, "fdivs": true,
}

var loadOps = map[string]bool{
	"ld": true, "ldub": true, "lduh": true, "ldsb": true, "ldsh": true,
	"ldd": true, "ldstub": true, "swap": true, "ldf": true,
}

var storeOps = map[string]bool{"st": true, "stb": true, "sth": true, "std": true, "stf": true}

// inst assembles one instruction (possibly a pseudo expanding to two
// words).
func (a *assembler) inst(s *stmt) ([]uint32, error) {
	op := s.op
	annul := false
	if strings.HasSuffix(op, ",a") {
		op = strings.TrimSuffix(op, ",a")
		annul = true
	}
	args := splitArgs(s.args)
	fail := func(format string, v ...any) ([]uint32, error) {
		return nil, &Error{s.line, fmt.Sprintf(format, v...)}
	}
	one := func(w uint32, err error) ([]uint32, error) {
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return []uint32{w}, nil
	}

	switch {
	case op == "nop":
		return []uint32{sparc.Nop()}, nil
	case op == "b":
		op = "ba"
		fallthrough
	case branchNames[op]:
		if len(args) != 1 {
			return fail("%s wants one target", op)
		}
		tgt, err := a.value(args[0], s)
		if err != nil {
			return nil, err
		}
		disp := (int32(tgt) - int32(s.addr)) / 4
		return one(sparc.EncodeBranch(op, annul, disp))
	case op == "call":
		if len(args) != 1 {
			return fail("call wants one target")
		}
		if strings.HasPrefix(args[0], "%") {
			// call through a register: jmpl reg, %o7
			r, err := sparc.ParseReg(args[0])
			if err != nil {
				return nil, &Error{s.line, err.Error()}
			}
			return one(sparc.EncodeOp3Imm("jmpl", sparc.RegO7, r, 0))
		}
		tgt, err := a.value(args[0], s)
		if err != nil {
			return nil, err
		}
		return one(sparc.EncodeCall((int32(tgt) - int32(s.addr)) / 4))
	case op == "jmp":
		if len(args) != 1 {
			return fail("jmp wants one target")
		}
		r, off, ri, useRI, err := a.memOperand(strings.Trim(args[0], "[]"), s)
		if err != nil {
			return nil, err
		}
		if useRI {
			return one(sparc.EncodeOp3("jmpl", sparc.RegG0, r, ri))
		}
		return one(sparc.EncodeOp3Imm("jmpl", sparc.RegG0, r, off))
	case op == "jmpl":
		if len(args) != 2 {
			return fail("jmpl wants address, rd")
		}
		rd, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		r, off, ri, useRI, err := a.memOperand(strings.Trim(args[0], "[]"), s)
		if err != nil {
			return nil, err
		}
		if useRI {
			return one(sparc.EncodeOp3("jmpl", rd, r, ri))
		}
		return one(sparc.EncodeOp3Imm("jmpl", rd, r, off))
	case op == "ret":
		return one(sparc.EncodeOp3Imm("jmpl", sparc.RegG0, sparc.RegI7, 8))
	case op == "retl":
		return one(sparc.EncodeOp3Imm("jmpl", sparc.RegG0, sparc.RegO7, 8))
	case op == "ta":
		if len(args) != 1 {
			return fail("ta wants a trap number")
		}
		n, err := a.value(args[0], s)
		if err != nil {
			return nil, err
		}
		return one(sparc.EncodeTa(int32(n)))
	case op == "sethi":
		if len(args) != 2 {
			return fail("sethi wants value, rd")
		}
		rd, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		v, err := a.value(args[0], s)
		if err != nil {
			return nil, err
		}
		// The operand of sethi is the %hi value itself when written
		// with %hi(); otherwise the raw 22-bit field.
		if strings.HasPrefix(strings.TrimSpace(args[0]), "%hi(") {
			return one(sparc.EncodeSethi(rd, uint32(v)<<10))
		}
		return one(sparc.EncodeSethi(rd, uint32(v)<<10))
	case op == "set":
		if len(args) != 2 {
			return fail("set wants value, rd")
		}
		rd, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		v, err := a.value(args[0], s)
		if err != nil {
			return nil, err
		}
		hi, err1 := sparc.EncodeSethi(rd, uint32(v))
		lo, err2 := sparc.EncodeOp3Imm("or", rd, rd, int32(sparc.Lo(uint32(v))))
		if err1 != nil || err2 != nil {
			return fail("set: %v %v", err1, err2)
		}
		return []uint32{hi, lo}, nil
	case op == "mov":
		if len(args) != 2 {
			return fail("mov wants src, rd")
		}
		rd, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		if strings.HasPrefix(args[0], "%") {
			rs, err := sparc.ParseReg(args[0])
			if err != nil {
				return nil, &Error{s.line, err.Error()}
			}
			return one(sparc.EncodeOp3("or", rd, sparc.RegG0, rs))
		}
		v, err := a.value(args[0], s)
		if err != nil {
			return nil, err
		}
		return one(sparc.EncodeOp3Imm("or", rd, sparc.RegG0, int32(v)))
	case op == "clr":
		if len(args) != 1 {
			return fail("clr wants rd")
		}
		rd, err := sparc.ParseReg(args[0])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return one(sparc.EncodeOp3("or", rd, sparc.RegG0, sparc.RegG0))
	case op == "cmp":
		if len(args) != 2 {
			return fail("cmp wants two operands")
		}
		rs1, err := sparc.ParseReg(args[0])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		if strings.HasPrefix(args[1], "%") {
			rs2, err := sparc.ParseReg(args[1])
			if err != nil {
				return nil, &Error{s.line, err.Error()}
			}
			return one(sparc.EncodeOp3("subcc", sparc.RegG0, rs1, rs2))
		}
		v, err := a.value(args[1], s)
		if err != nil {
			return nil, err
		}
		return one(sparc.EncodeOp3Imm("subcc", sparc.RegG0, rs1, int32(v)))
	case op == "tst":
		if len(args) != 1 {
			return fail("tst wants one register")
		}
		rs1, err := sparc.ParseReg(args[0])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return one(sparc.EncodeOp3("orcc", sparc.RegG0, rs1, sparc.RegG0))
	case op == "restore" && len(args) == 0:
		return one(sparc.EncodeOp3("restore", sparc.RegG0, sparc.RegG0, sparc.RegG0))
	case aluOps[op]:
		return a.alu(op, args, s)
	case loadOps[op]:
		if len(args) != 2 {
			return fail("%s wants [address], rd", op)
		}
		rd, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return a.memInst(op, rd, args[0], s)
	case storeOps[op]:
		if len(args) != 2 {
			return fail("%s wants rd, [address]", op)
		}
		rd, err := sparc.ParseReg(args[0])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return a.memInst(op, rd, args[1], s)
	case op == "rd":
		if len(args) != 2 || args[0] != "%y" {
			return fail("rd wants %%y, rd")
		}
		rd, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return one(sparc.EncodeOp3("rdy", rd, sparc.RegG0, sparc.RegG0))
	case op == "wr":
		if len(args) != 2 || args[1] != "%y" {
			return fail("wr wants rs, %%y")
		}
		rs, err := sparc.ParseReg(args[0])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return one(sparc.EncodeOp3("wry", sparc.RegG0, rs, sparc.RegG0))
	case op == "fcmps" || op == "fmovs" || op == "fnegs" || op == "fabss" ||
		op == "fitos" || op == "fstoi":
		return a.fpUnary(op, args, s)
	}
	return fail("unknown instruction %q", s.op)
}

// alu assembles "op rs1, rs2-or-imm, rd".
func (a *assembler) alu(op string, args []string, s *stmt) ([]uint32, error) {
	if len(args) != 3 {
		return nil, &Error{s.line, op + " wants rs1, operand, rd"}
	}
	rs1, err := sparc.ParseReg(args[0])
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	rd, err := sparc.ParseReg(args[2])
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	if strings.HasPrefix(args[1], "%") && !strings.HasPrefix(args[1], "%lo(") {
		rs2, err := sparc.ParseReg(args[1])
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		w, err := sparc.EncodeOp3(op, rd, rs1, rs2)
		if err != nil {
			return nil, &Error{s.line, err.Error()}
		}
		return []uint32{w}, nil
	}
	v, err := a.value(args[1], s)
	if err != nil {
		return nil, err
	}
	w, err := sparc.EncodeOp3Imm(op, rd, rs1, int32(v))
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	return []uint32{w}, nil
}

// memInst assembles a load/store with a bracketed address operand.
func (a *assembler) memInst(op string, rd machine.Reg, addr string, s *stmt) ([]uint32, error) {
	addr = strings.TrimSpace(addr)
	if !strings.HasPrefix(addr, "[") || !strings.HasSuffix(addr, "]") {
		return nil, &Error{s.line, "memory operand must be bracketed"}
	}
	r, off, ri, useRI, err := a.memOperand(addr[1:len(addr)-1], s)
	if err != nil {
		return nil, err
	}
	var w uint32
	if useRI {
		w, err = sparc.EncodeOp3(op, rd, r, ri)
	} else {
		w, err = sparc.EncodeOp3Imm(op, rd, r, off)
	}
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	return []uint32{w}, nil
}

// memOperand parses "reg", "reg+imm", "reg-imm", "reg+reg", or a bare
// value (encoded as %g0+imm).
func (a *assembler) memOperand(text string, s *stmt) (base machine.Reg, off int32, ri machine.Reg, useRI bool, err error) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "%") {
		v, verr := a.value(text, s)
		if verr != nil {
			return 0, 0, 0, false, verr
		}
		return sparc.RegG0, int32(v), 0, false, nil
	}
	plus := strings.IndexAny(text[1:], "+-")
	if plus < 0 {
		r, rerr := sparc.ParseReg(text)
		if rerr != nil {
			return 0, 0, 0, false, &Error{s.line, rerr.Error()}
		}
		return r, 0, 0, false, nil
	}
	plus++ // index into text
	r, rerr := sparc.ParseReg(strings.TrimSpace(text[:plus]))
	if rerr != nil {
		return 0, 0, 0, false, &Error{s.line, rerr.Error()}
	}
	rest := strings.TrimSpace(text[plus+1:])
	neg := text[plus] == '-'
	if strings.HasPrefix(rest, "%") && !strings.HasPrefix(rest, "%lo(") {
		if neg {
			return 0, 0, 0, false, &Error{s.line, "cannot subtract a register"}
		}
		r2, rerr := sparc.ParseReg(rest)
		if rerr != nil {
			return 0, 0, 0, false, &Error{s.line, rerr.Error()}
		}
		return r, 0, r2, true, nil
	}
	v, verr := a.value(rest, s)
	if verr != nil {
		return 0, 0, 0, false, verr
	}
	if neg {
		v = -v
	}
	return r, int32(v), 0, false, nil
}

// fpUnary assembles two-operand FP forms.
func (a *assembler) fpUnary(op string, args []string, s *stmt) ([]uint32, error) {
	if len(args) != 2 {
		return nil, &Error{s.line, op + " wants two registers"}
	}
	r1, err := sparc.ParseReg(args[0])
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	r2, err := sparc.ParseReg(args[1])
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	var w uint32
	if op == "fcmps" {
		w, err = sparc.EncodeOp3("fcmps", sparc.RegG0, r1, r2)
	} else {
		w, err = sparc.EncodeOp3(op, r2, sparc.RegG0, r1)
	}
	if err != nil {
		return nil, &Error{s.line, err.Error()}
	}
	return []uint32{w}, nil
}
