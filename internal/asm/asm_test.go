package asm

import (
	"strings"
	"testing"
	"testing/quick"

	"eel/internal/machine"
	"eel/internal/sparc"
)

func assemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src, 0x10000)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

// decodeName decodes a word and returns its mnemonic.
func decodeName(w uint32) string {
	return sparc.NewDecoder().Decode(w).Name()
}

func TestMnemonicsRoundTrip(t *testing.T) {
	cases := []struct {
		src  string
		name string
	}{
		{"add %g1, %g2, %g3", "add"},
		{"add %g1, 5, %g3", "add"},
		{"sub %o0, -1, %o0", "sub"},
		{"subcc %l0, 1, %l0", "subcc"},
		{"and %g1, 0xff, %g2", "and"},
		{"sll %g1, 2, %g2", "sll"},
		{"sra %g1, 2, %g2", "sra"},
		{"smul %g1, %g2, %g3", "smul"},
		{"udiv %g1, %g2, %g3", "udiv"},
		{"ld [%g1], %g2", "ld"},
		{"ld [%g1+4], %g2", "ld"},
		{"ld [%g1+%g2], %g3", "ld"},
		{"ldub [%g1-1], %g2", "ldub"},
		{"ldsh [%g1+2], %g2", "ldsh"},
		{"st %g2, [%g1]", "st"},
		{"stb %g2, [%g1+1]", "stb"},
		{"ldd [%g2], %o2", "ldd"},
		{"std %o2, [%g2]", "std"},
		{"swap [%g1], %g2", "swap"},
		{"sethi 0x1234, %g1", "sethi"},
		{"save %sp, -96, %sp", "save"},
		{"ta 0", "ta"},
		{"fadds %f0, %f1, %f2", "fadds"},
		{"fcmps %f0, %f1", "fcmps"},
		{"fmovs %f1, %f2", "fmovs"},
		{"ldf [%g1], %f0", "ldf"},
		{"stf %f0, [%g1]", "stf"},
		{"rd %y, %g1", "rdy"},
		{"wr %g1, %y", "wry"},
	}
	for _, c := range cases {
		p := assemble(t, c.src)
		if got := decodeName(p.Words()[0]); got != c.name {
			t.Errorf("%q assembled to %s (%08x)", c.src, got, p.Words()[0])
		}
	}
}

func TestPseudoExpansions(t *testing.T) {
	// nop = sethi 0, %g0
	if w := assemble(t, "nop").Words()[0]; w != sparc.Nop() {
		t.Errorf("nop = %08x", w)
	}
	// mov imm -> or %g0, imm, rd
	p := assemble(t, "mov 7, %o1")
	inst := sparc.NewDecoder().Decode(p.Words()[0])
	if inst.Name() != "or" {
		t.Errorf("mov = %s", inst.Name())
	}
	// set expands to two words.
	p2 := assemble(t, "set 0x12345678, %g1")
	if len(p2.Words()) != 2 {
		t.Fatalf("set emitted %d words", len(p2.Words()))
	}
	if decodeName(p2.Words()[0]) != "sethi" || decodeName(p2.Words()[1]) != "or" {
		t.Errorf("set = %s/%s", decodeName(p2.Words()[0]), decodeName(p2.Words()[1]))
	}
	// cmp = subcc with %g0 destination.
	p3 := assemble(t, "cmp %o0, 3")
	i3 := sparc.NewDecoder().Decode(p3.Words()[0])
	if i3.Name() != "subcc" || i3.Writes().Has(0) {
		t.Errorf("cmp = %s writes %s", i3.Name(), i3.Writes())
	}
	// ret / retl are return-category jmpls.
	for _, src := range []string{"ret", "retl"} {
		pi := assemble(t, src)
		if c := sparc.NewDecoder().Decode(pi.Words()[0]).Category(); c != machine.CatReturn {
			t.Errorf("%s category = %s", src, c)
		}
	}
}

func TestSetValueReconstructs(t *testing.T) {
	f := func(v uint32) bool {
		p, err := Assemble("set "+hex(v)+", %g1", 0x10000)
		if err != nil {
			return false
		}
		// Execute mentally: sethi hi<<10 | lo reconstructs v.
		dec := sparc.NewDecoder()
		hi := dec.Decode(p.Words()[0])
		lo := dec.Decode(p.Words()[1])
		imm22, _ := hi.Field("imm22")
		simm, _ := lo.Field("simm13")
		return imm22<<10|simm == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func hex(v uint32) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 10)
	out = append(out, '0', 'x')
	started := false
	for i := 28; i >= 0; i -= 4 {
		d := (v >> i) & 0xf
		if d != 0 || started || i == 0 {
			started = true
			out = append(out, digits[d])
		}
	}
	return string(out)
}

func TestBranchTargets(t *testing.T) {
	p := assemble(t, `
	nop
back:	nop
	ba back
	nop
	bne,a back
	nop
	call back
	nop
`)
	words := p.Words()
	dec := sparc.NewDecoder()
	// ba at offset 2 (addr 0x10008) targets 0x10004.
	ba := dec.Decode(words[2])
	if tgt, ok := ba.StaticTarget(0x10008); !ok || tgt != 0x10004 {
		t.Errorf("ba target %#x ok=%v", tgt, ok)
	}
	bne := dec.Decode(words[4])
	if !bne.AnnulBit() {
		t.Error("',a' suffix lost")
	}
	if tgt, ok := bne.StaticTarget(0x10010); !ok || tgt != 0x10004 {
		t.Errorf("bne target %#x ok=%v", tgt, ok)
	}
	call := dec.Decode(words[6])
	if tgt, ok := call.StaticTarget(0x10018); !ok || tgt != 0x10004 {
		t.Errorf("call target %#x ok=%v", tgt, ok)
	}
}

func TestDirectives(t *testing.T) {
	p := assemble(t, `
	.word 0xdeadbeef, 42
	.half 0x1234
	.byte 1, 2
	.align 4
	.skip 8
lbl:	.asciz "hi"
`)
	b := p.Bytes
	if b[0] != 0xde || b[3] != 0xef {
		t.Errorf(".word bytes: % x", b[:4])
	}
	if b[7] != 42 {
		t.Errorf(".word 42: % x", b[4:8])
	}
	if b[8] != 0x12 || b[9] != 0x34 {
		t.Errorf(".half: % x", b[8:10])
	}
	if b[10] != 1 || b[11] != 2 {
		t.Errorf(".byte: % x", b[10:12])
	}
	// .align 4 pads to 12 (already aligned), .skip 8 zeros.
	lbl := p.Labels["lbl"]
	if lbl != 0x10000+20 {
		t.Errorf("lbl at %#x", lbl)
	}
	if string(b[lbl-0x10000:lbl-0x10000+3]) != "hi\x00" {
		t.Errorf("asciz = % x", b[lbl-0x10000:lbl-0x10000+3])
	}
}

func TestLabelArithmetic(t *testing.T) {
	p := assemble(t, `
tab:	.word tab+8
	.word tab-4
	nop
`)
	w := p.Words()
	if w[0] != 0x10008 {
		t.Errorf("tab+8 = %#x", w[0])
	}
	if w[1] != 0x0fffc {
		t.Errorf("tab-4 = %#x", w[1])
	}
}

func TestHiLoOperators(t *testing.T) {
	p := assemble(t, `
	sethi %hi(target), %g1
	or %g1, %lo(target), %g1
	nop
	nop
target:	nop
`)
	dec := sparc.NewDecoder()
	hi := dec.Decode(p.Words()[0])
	lo := dec.Decode(p.Words()[1])
	imm22, _ := hi.Field("imm22")
	simm, _ := lo.Field("simm13")
	if imm22<<10|simm != p.Labels["target"] {
		t.Errorf("hi/lo reconstruct %#x, want %#x", imm22<<10|simm, p.Labels["target"])
	}
}

func TestCommentsAndLabels(t *testing.T) {
	p := assemble(t, `
! full line comment
a:	nop        ! trailing
b: c:	nop        ; semicolon comment
	nop        // slashes
`)
	if len(p.Words()) != 3 {
		t.Fatalf("words = %d", len(p.Words()))
	}
	if p.Labels["a"] != 0x10000 || p.Labels["b"] != 0x10004 || p.Labels["c"] != 0x10004 {
		t.Errorf("labels = %v", p.Labels)
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"bogus %g1, %g2, %g3",
		"add %g1, %g2",        // missing operand
		"add %q1, %g2, %g3",   // bad register
		"ld %g1, %g2",         // unbracketed memory operand
		"add %g1, 99999, %g3", // immediate out of range
		"ba nowhere",          // unresolved label
		"dup: nop\ndup: nop",  // duplicate label
		".ascii unquoted",     // bad string
		"set 1, %g1, %g2",     // too many operands
	}
	for _, src := range bad {
		if _, err := Assemble(src, 0x10000); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestAssembleNeverPanics(t *testing.T) {
	words := []string{"add", "ld", "st", "ba", "call", "%g1", "%o0", "[%g1]",
		"1", ",", ":", "nop", ".word", "set", "label", "\n", "\t", "%hi(x)"}
	f := func(idx []uint8) bool {
		var b strings.Builder
		for _, i := range idx {
			b.WriteString(words[int(i)%len(words)])
			b.WriteByte(' ')
		}
		_, _ = Assemble(b.String(), 0x10000)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWordsRequiresAlignment(t *testing.T) {
	p := assemble(t, ".byte 1, 2, 3, 4\n.byte 5, 6, 7, 8")
	if len(p.Words()) != 2 {
		t.Errorf("words = %d", len(p.Words()))
	}
}
