package binfile_test

import (
	"os"
	"path/filepath"
	"testing"

	_ "eel/internal/aout"
	"eel/internal/binfile"
	_ "eel/internal/elf32"
)

func sample(format string) *binfile.File {
	return &binfile.File{
		Format: format,
		Entry:  0x10000,
		Sections: []binfile.Section{
			{Name: "text", Addr: 0x10000, Data: []byte{0, 1, 2, 3}},
			{Name: "data", Addr: 0x20000, Data: []byte{4, 5, 6, 7}},
		},
		Symbols: []binfile.Symbol{
			{Name: "b", Addr: 0x10000, Kind: binfile.SymFunc},
			{Name: "a", Addr: 0x10000, Kind: binfile.SymLabel},
			{Name: "z", Addr: 0x0f000, Kind: binfile.SymData},
		},
	}
}

func TestAutoDetectBothFormats(t *testing.T) {
	for _, f := range []string{"aout", "elf32"} {
		img, err := binfile.Write(sample(f))
		if err != nil {
			t.Fatalf("%s write: %v", f, err)
		}
		got, err := binfile.Read(img)
		if err != nil {
			t.Fatalf("%s read: %v", f, err)
		}
		if got.Format != f {
			t.Errorf("detected %q, want %q", got.Format, f)
		}
	}
}

func TestUnknownFormat(t *testing.T) {
	if _, err := binfile.Read([]byte("not an executable at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := binfile.Write(&binfile.File{Format: "tape-archive"}); err == nil {
		t.Error("unknown write format accepted")
	}
}

func TestSectionHelpers(t *testing.T) {
	f := sample("aout")
	s := f.Section("data")
	if s == nil || s.Addr != 0x20000 {
		t.Fatal("Section lookup failed")
	}
	if f.Section("bss") != nil {
		t.Error("phantom section")
	}
	if !s.Contains(0x20003) || s.Contains(0x20004) || s.Contains(0x1ffff) {
		t.Error("Contains boundaries wrong")
	}
	if s.End() != 0x20004 {
		t.Errorf("End = %#x", s.End())
	}
}

func TestSortSymbolsStable(t *testing.T) {
	f := sample("aout")
	f.SortSymbols()
	// Sorted by address then name: z (0xf000), then a, b at 0x10000.
	if f.Symbols[0].Name != "z" || f.Symbols[1].Name != "a" || f.Symbols[2].Name != "b" {
		t.Errorf("order: %v %v %v", f.Symbols[0].Name, f.Symbols[1].Name, f.Symbols[2].Name)
	}
}

func TestStrip(t *testing.T) {
	f := sample("aout")
	f.Strip()
	if len(f.Symbols) != 0 {
		t.Error("symbols survive Strip")
	}
}

func TestFileRoundTripOnDisk(t *testing.T) {
	dir := t.TempDir()
	for _, format := range []string{"aout", "elf32"} {
		path := filepath.Join(dir, format+".bin")
		if err := binfile.WriteFile(path, sample(format)); err != nil {
			t.Fatal(err)
		}
		got, err := binfile.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Entry != 0x10000 {
			t.Errorf("%s: entry = %#x", format, got.Entry)
		}
		// Executable bit set.
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Mode()&0o100 == 0 {
			t.Errorf("%s: not executable", format)
		}
	}
	if _, err := binfile.ReadFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file read succeeded")
	}
}

func TestSymKindString(t *testing.T) {
	if binfile.SymFunc.String() != "func" || binfile.SymDebug.String() != "debug" {
		t.Error("kind names")
	}
}
