// Package binfile is EEL's executable-container abstraction — the
// role GNU bfd plays in the paper (§4): one interface over multiple
// executable file formats, so everything above it is
// format-independent.  Two formats register themselves: a simple
// a.out-style container (internal/aout) and big-endian ELF32/SPARC
// (internal/elf32).
package binfile

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

// SymKind classifies a symbol the way EEL's symbol-table refinement
// (paper §3.1) needs: probable routines, data, compiler-internal
// labels, and debug/temporary labels.
type SymKind int

// Symbol kinds.
const (
	// SymFunc labels a routine entry.
	SymFunc SymKind = iota
	// SymData labels a data object.
	SymData
	// SymLabel is an internal (local, untyped) label.
	SymLabel
	// SymDebug is a debugging or temporary label that refinement
	// discards immediately.
	SymDebug
)

var symKindNames = [...]string{"func", "data", "label", "debug"}

// String returns the kind's short name.
func (k SymKind) String() string {
	if int(k) < len(symKindNames) {
		return symKindNames[k]
	}
	return fmt.Sprintf("symkind(%d)", int(k))
}

// Symbol is one symbol-table entry.
type Symbol struct {
	Name   string
	Addr   uint32
	Size   uint32
	Kind   SymKind
	Global bool
}

// Section is one loadable section.
type Section struct {
	Name string // "text" or "data"
	Addr uint32
	Data []byte
}

// End returns the address one past the section.
func (s *Section) End() uint32 { return s.Addr + uint32(len(s.Data)) }

// Contains reports whether addr falls inside the section.
func (s *Section) Contains(addr uint32) bool { return addr >= s.Addr && addr < s.End() }

// File is a format-independent executable image.
type File struct {
	Format   string
	Entry    uint32
	Sections []Section
	Symbols  []Symbol
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// Text returns the text (code) section, or nil.
func (f *File) Text() *Section { return f.Section("text") }

// Data returns the data section, or nil.
func (f *File) Data() *Section { return f.Section("data") }

// SortSymbols orders symbols by address, then name, in place.
func (f *File) SortSymbols() {
	sort.SliceStable(f.Symbols, func(i, j int) bool {
		if f.Symbols[i].Addr != f.Symbols[j].Addr {
			return f.Symbols[i].Addr < f.Symbols[j].Addr
		}
		return f.Symbols[i].Name < f.Symbols[j].Name
	})
}

// Strip removes all symbols, modeling a stripped executable
// (paper §3.1 step 2).
func (f *File) Strip() { f.Symbols = nil }

// Format reads and writes one concrete container format.
type Format interface {
	// Name identifies the format ("aout", "elf32").
	Name() string
	// Detect reports whether data looks like this format.
	Detect(data []byte) bool
	// Read parses an image.
	Read(data []byte) (*File, error)
	// Write serializes an image.
	Write(f *File) ([]byte, error)
}

var (
	mu      sync.Mutex
	formats []Format
)

// RegisterFormat adds a format to the detection list.
func RegisterFormat(f Format) {
	mu.Lock()
	defer mu.Unlock()
	formats = append(formats, f)
}

// ErrUnknownFormat reports undetectable input.
var ErrUnknownFormat = errors.New("binfile: unrecognized executable format")

func lookup(name string) (Format, error) {
	mu.Lock()
	defer mu.Unlock()
	for _, f := range formats {
		if f.Name() == name {
			return f, nil
		}
	}
	return nil, fmt.Errorf("binfile: no format %q registered", name)
}

// Read parses data, auto-detecting its format.
func Read(data []byte) (*File, error) {
	mu.Lock()
	regs := append([]Format(nil), formats...)
	mu.Unlock()
	for _, f := range regs {
		if f.Detect(data) {
			file, err := f.Read(data)
			if err != nil {
				return nil, fmt.Errorf("binfile: reading %s image: %w", f.Name(), err)
			}
			file.Format = f.Name()
			return file, nil
		}
	}
	return nil, ErrUnknownFormat
}

// Write serializes file in its declared format.
func Write(file *File) ([]byte, error) {
	f, err := lookup(file.Format)
	if err != nil {
		return nil, err
	}
	return f.Write(file)
}

// ReadFile reads and parses the executable at path.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("binfile: %w", err)
	}
	return Read(data)
}

// WriteFile serializes file and writes it to path.
func WriteFile(path string, file *File) error {
	data, err := Write(file)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o755); err != nil {
		return fmt.Errorf("binfile: %w", err)
	}
	return nil
}
