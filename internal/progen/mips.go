package progen

// The MIPS personality.  Where the SPARC generator goes through the
// textual assembler, this one emits instruction words directly from
// internal/mips's canonical encoders — the second source of encoding
// truth the retargeting story requires (§4: the same tools run from a
// different spawn description).  The generated idioms are the MIPS
// counterparts of the SPARC ones: a forward-only call DAG (terminating
// by construction) linking through $ra spilled to data memory instead
// of register windows, counted loops and compares in branch delay
// slots, productive delay slots on returns, HI/LO traffic, partial-word
// memory ops, indirect calls through writable function-pointer slots,
// write(2) traps, and data tables embedded in the text segment.
//
// Register conventions: $16 is the global accumulator every routine
// mixes into, $17 is main's loop counter (no routine touches it),
// $8-$13 are per-idiom scratch, $1 forms data addresses, and $31 links
// calls.  Non-leaf routines spill $31 to a per-routine data slot;
// calls only go to strictly later routines, so no slot is ever live
// twice.

import (
	"fmt"
	"math/rand"
	"strings"

	"eel/internal/binfile"
	"eel/internal/mips"
)

// Data-segment layout for the MIPS generator (all offsets from
// mipsDataBase, reachable with one lui+imm16):
//
//	0x000-0x0ff  memOp scratch slots (8 bytes per routine mod 32)
//	0x800-0x8ff  $ra spill slots (4 bytes per routine, <= 64 routines)
//	0x980-0x9ff  function-pointer slots for indirect calls
//	0xa00        write(2) buffer
const (
	mipsDataBase = 0x400000
	mipsDataHi   = mipsDataBase >> 16
	mipsRAOff    = 0x800
	mipsFPOff    = 0x980
	mipsBufOff   = 0xa00
)

type mipsFix struct {
	idx   int    // word index to patch
	label string // target label
	kind  byte   // 'b' branch disp, 'j' jump target26, 'h' lui hi16, 'l' ori lo16
	name  string // instruction mnemonic to re-encode
	rs    uint32
	rt    uint32
}

type mipsGen struct {
	cfg     Config
	rng     *rand.Rand
	words   []uint32
	list    strings.Builder
	labels  map[string]uint32
	fix     []mipsFix
	label   int
	program *Program

	mayCall  []bool
	hidden   []bool
	indirect []bool // routine makes a jalr call through its fp slot
	fpTarget []int  // indirect target routine (strictly later)
}

func generateMIPS(cfg Config) (*Program, error) {
	if cfg.Routines > 64 {
		return nil, fmt.Errorf("progen: mips personality supports at most 64 routines (got %d)", cfg.Routines)
	}
	if cfg.Base == 0 {
		cfg.Base = 0x10000
	}
	if cfg.BodyOps == 0 {
		cfg.BodyOps = 12
	}
	g := &mipsGen{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		labels:   map[string]uint32{},
		program:  &Program{},
		mayCall:  make([]bool, cfg.Routines),
		hidden:   make([]bool, cfg.Routines),
		indirect: make([]bool, cfg.Routines),
		fpTarget: make([]int, cfg.Routines),
	}
	for i := range g.mayCall {
		g.fpTarget[i] = -1
		if i+1 < cfg.Routines && g.rng.Float64() < 0.5 {
			g.mayCall[i] = true
		}
		if cfg.CallHeavy && i+1 < cfg.Routines {
			g.mayCall[i] = true
		}
		// Indirect calls ride on the call-saving prologue.
		if g.mayCall[i] && g.rng.Float64() < 0.3 {
			g.indirect[i] = true
			g.fpTarget[i] = i + 1 + g.rng.Intn(cfg.Routines-i-1)
			g.program.Switches++ // counted as the indirect-transfer feature
		}
		if g.rng.Float64() < cfg.HiddenFrac {
			g.hidden[i] = true
			g.program.Hidden++
		}
	}
	g.emitMain()
	for i := 0; i < cfg.Routines; i++ {
		g.emitRoutine(i)
		if cfg.DataTables && g.rng.Float64() < 0.2 {
			g.emitDataBlob()
		}
	}
	if err := g.resolve(); err != nil {
		return nil, err
	}

	text := make([]byte, len(g.words)*4)
	for i, w := range g.words {
		text[i*4] = byte(w >> 24)
		text[i*4+1] = byte(w >> 16)
		text[i*4+2] = byte(w >> 8)
		text[i*4+3] = byte(w)
	}
	f := &binfile.File{
		Format: "aout",
		Entry:  cfg.Base,
		Sections: []binfile.Section{
			{Name: "text", Addr: cfg.Base, Data: text},
			{Name: "data", Addr: mipsDataBase, Data: make([]byte, 8192)},
		},
	}
	g.addSymbols(f)
	if cfg.Strip {
		f.Strip()
	}
	g.program.Source = g.list.String()
	g.program.File = f
	g.program.DataRanges = g.program.DataRanges[:len(g.program.DataRanges):len(g.program.DataRanges)]
	return g.program, nil
}

// pc returns the address of the next word to be emitted.
func (g *mipsGen) pc() uint32 { return g.cfg.Base + uint32(len(g.words))*4 }

// w appends one instruction word, returning the listing writer so
// call sites read g.w(encode(...))("mnemonic ...").
func (g *mipsGen) w(word uint32, err error) func(format string, args ...any) {
	if err != nil {
		panic(fmt.Sprintf("progen: mips encode at %#x: %v", g.pc(), err))
	}
	g.words = append(g.words, word)
	return func(format string, args ...any) {
		fmt.Fprintf(&g.list, "\t"+format+"\n", args...)
	}
}

func (g *mipsGen) at(name string) {
	g.labels[name] = g.pc()
	fmt.Fprintf(&g.list, "%s:\n", name)
}

func (g *mipsGen) fresh(prefix string) string {
	g.label++
	return fmt.Sprintf(".X%s%d", prefix, g.label)
}

// branch emits a placeholder branch to label, patched in resolve.
func (g *mipsGen) branch(name string, rs, rt uint32, label string) {
	w, err := mips.EncodeBranch(name, rs, rt, 0)
	g.fix = append(g.fix, mipsFix{idx: len(g.words), label: label, kind: 'b', name: name, rs: rs, rt: rt})
	g.w(w, err)("%s $%d, $%d, %s", name, rs, rt, label)
}

// jump emits a placeholder j/jal to label, patched in resolve.
func (g *mipsGen) jump(name, label string) {
	w, err := mips.EncodeJ(name, 0)
	g.fix = append(g.fix, mipsFix{idx: len(g.words), label: label, kind: 'j', name: name})
	g.w(w, err)("%s %s", name, label)
}

// la materializes label's absolute address in reg (lui+ori, both
// patched in resolve).
func (g *mipsGen) la(reg uint32, label string) {
	w, err := mips.EncodeIU("lui", reg, 0, 0)
	g.fix = append(g.fix, mipsFix{idx: len(g.words), label: label, kind: 'h', rt: reg})
	g.w(w, err)("lui $%d, %%hi(%s)", reg, label)
	w, err = mips.EncodeIU("ori", reg, reg, 0)
	g.fix = append(g.fix, mipsFix{idx: len(g.words), label: label, kind: 'l', rs: reg, rt: reg})
	g.w(w, err)("ori $%d, $%d, %%lo(%s)", reg, reg, label)
}

func (g *mipsGen) resolve() error {
	for _, f := range g.fix {
		target, ok := g.labels[f.label]
		if !ok {
			return fmt.Errorf("progen: mips label %s undefined", f.label)
		}
		pc := g.cfg.Base + uint32(f.idx)*4
		var w uint32
		var err error
		switch f.kind {
		case 'b':
			disp := (int32(target) - int32(pc+4)) / 4
			w, err = mips.EncodeBranch(f.name, f.rs, f.rt, disp)
		case 'j':
			var tw uint32
			tw, err = mips.JTargetFor(pc, target)
			if err == nil {
				w, err = mips.EncodeJ(f.name, tw)
			}
		case 'h':
			w, err = mips.EncodeIU("lui", f.rt, 0, target>>16)
		case 'l':
			w, err = mips.EncodeIU("ori", f.rt, f.rs, target&0xffff)
		}
		if err != nil {
			return fmt.Errorf("progen: mips fixup %s -> %s: %w", f.name, f.label, err)
		}
		g.words[f.idx] = w
	}
	return nil
}

// must unwraps an encoder result inline.
func must(w uint32, err error) uint32 {
	if err != nil {
		panic(err)
	}
	return w
}

// slot fills a delay slot, occasionally with productive work on the
// accumulator (never touching branch/loop state).
func (g *mipsGen) slot() {
	if g.rng.Intn(3) == 0 {
		n := int32(1 + g.rng.Intn(15))
		g.w(mips.EncodeI("addiu", 16, 16, n))("addiu $16, $16, %d", n)
		return
	}
	g.w(mips.Nop(), nil)("nop")
}

func (g *mipsGen) emitMain() {
	g.at("main")
	g.w(mips.EncodeIU("lui", 1, 0, mipsDataHi))("lui $1, %#x", mipsDataHi)
	// Function-pointer slots for indirect-calling routines.
	for i, tgt := range g.fpTarget {
		if tgt < 0 {
			continue
		}
		g.la(8, fmt.Sprintf("r%d", tgt))
		g.w(mips.EncodeI("sw", 8, 1, int32(mipsFPOff+4*i)))("sw $8, %#x($1)", mipsFPOff+4*i)
	}
	g.w(mips.EncodeI("addiu", 16, 0, int32(1+g.rng.Intn(64))))("addiu $16, $0, init")
	roots := 1 + g.rng.Intn(minInt(4, g.cfg.Routines))
	for rep := 0; rep < 6; rep++ {
		for i := 0; i < roots; i++ {
			g.callRoutine(i * (g.cfg.Routines / roots))
		}
		g.w(mips.EncodeIU("xori", 16, 16, uint32(rep+1)))("xori $16, $16, %d", rep+1)
	}
	if g.cfg.HotLoop > 0 {
		top := g.fresh("hot")
		g.w(mips.EncodeI("addiu", 17, 0, int32(g.cfg.HotLoop)))("addiu $17, $0, %d", g.cfg.HotLoop)
		g.at(top)
		for i := 0; i < roots; i++ {
			g.callRoutine(i * (g.cfg.Routines / roots))
		}
		g.w(mips.EncodeI("addiu", 17, 17, -1))("addiu $17, $17, -1")
		g.branch("bne", 17, 0, top)
		g.w(mips.Nop(), nil)("nop")
	}
	g.w(mips.EncodeIU("andi", 4, 16, 0xff))("andi $4, $16, 0xff")
	g.w(mips.EncodeI("addiu", 2, 0, 1))("addiu $2, $0, 1")
	g.w(mips.EncodeSyscall())("syscall")
}

func (g *mipsGen) callRoutine(idx int) {
	if idx >= g.cfg.Routines {
		return
	}
	g.jump("jal", fmt.Sprintf("r%d", idx))
	g.slot()
}

func (g *mipsGen) emitRoutine(idx int) {
	g.at(fmt.Sprintf("r%d", idx))
	saves := g.mayCall[idx]
	if saves {
		g.w(mips.EncodeIU("lui", 1, 0, mipsDataHi))("lui $1, %#x", mipsDataHi)
		g.w(mips.EncodeI("sw", 31, 1, int32(mipsRAOff+4*idx)))("sw $31, %#x($1)", mipsRAOff+4*idx)
	}
	ops := g.cfg.BodyOps/2 + g.rng.Intn(g.cfg.BodyOps)
	didIndirect := false
	for i := 0; i < ops; i++ {
		kind := g.rng.Intn(9)
		if g.cfg.CallHeavy && (kind == 0 || kind == 5) {
			kind = 7
		}
		switch kind {
		case 0, 1, 2:
			g.arith()
		case 3:
			g.loop()
		case 4:
			g.ifThen()
		case 5:
			g.memOp(idx)
		case 6:
			g.mulOp()
		case 7:
			lo := idx + 1
			if lo < g.cfg.Routines && g.mayCall[idx] {
				g.callRoutine(lo + g.rng.Intn(g.cfg.Routines-lo))
			} else {
				g.arith()
			}
		case 8:
			if g.indirect[idx] && !didIndirect {
				didIndirect = true
				g.indirectCall(idx)
			} else {
				g.writeTrap()
			}
		}
		if g.cfg.MemHeavy && g.rng.Intn(2) == 0 {
			g.memOp(idx)
		}
	}
	if g.indirect[idx] && !didIndirect {
		g.indirectCall(idx)
	}
	// Epilogue: reload the spilled $ra if the routine called out, then
	// a jr with (sometimes) productive work in the delay slot.
	if saves {
		g.w(mips.EncodeIU("lui", 1, 0, mipsDataHi))("lui $1, %#x", mipsDataHi)
		g.w(mips.EncodeI("lw", 31, 1, int32(mipsRAOff+4*idx)))("lw $31, %#x($1)", mipsRAOff+4*idx)
	}
	g.w(mips.EncodeR("jr", 0, 31, 0))("jr $31")
	g.slot()
}

func (g *mipsGen) arith() {
	dst := []uint32{16, 8, 9, 16}[g.rng.Intn(4)]
	src := []uint32{16, 8, 9}[g.rng.Intn(3)]
	switch g.rng.Intn(4) {
	case 0:
		op := []string{"addu", "subu", "xor", "and", "or", "nor", "slt", "sltu"}[g.rng.Intn(8)]
		g.w(mips.EncodeR(op, dst, src, 16))("%s $%d, $%d, $16", op, dst, src)
	case 1:
		op := []string{"addiu", "slti"}[g.rng.Intn(2)]
		n := int32(g.rng.Intn(64)) - 16
		g.w(mips.EncodeI(op, dst, src, n))("%s $%d, $%d, %d", op, dst, src, n)
	case 2:
		op := []string{"andi", "ori", "xori"}[g.rng.Intn(3)]
		n := uint32(g.rng.Intn(1 << 12))
		g.w(mips.EncodeIU(op, dst, src, n))("%s $%d, $%d, %#x", op, dst, src, n)
	default:
		op := []string{"sll", "srl", "sra"}[g.rng.Intn(3)]
		n := uint32(1 + g.rng.Intn(5))
		g.w(mips.EncodeShift(op, dst, src, n))("%s $%d, $%d, %d", op, dst, src, n)
	}
}

// loop is a counted countdown with the backward branch's delay slot
// sometimes doing accumulator work.  $11 is the loop counter; the body
// must not touch it.
func (g *mipsGen) loop() {
	top := g.fresh("loop")
	n := int32(2 + g.rng.Intn(6))
	g.w(mips.EncodeI("addiu", 11, 0, n))("addiu $11, $0, %d", n)
	g.at(top)
	g.arith()
	g.w(mips.EncodeI("addiu", 11, 11, -1))("addiu $11, $11, -1")
	g.branch("bne", 11, 0, top)
	g.slot()
}

// ifThen emits a forward conditional skip using the full branch menu:
// the two-register forms and the single-register sign tests.
func (g *mipsGen) ifThen() {
	skip := g.fresh("skip")
	switch g.rng.Intn(4) {
	case 0:
		g.w(mips.EncodeI("slti", 9, 16, int32(g.rng.Intn(64))))("slti $9, $16, k")
		g.branch([]string{"beq", "bne"}[g.rng.Intn(2)], 9, 0, skip)
	case 1:
		g.w(mips.EncodeR("subu", 9, 16, 8))("subu $9, $16, $8")
		g.branch([]string{"beq", "bne"}[g.rng.Intn(2)], 9, 8, skip)
	case 2:
		name := []string{"blez", "bgtz"}[g.rng.Intn(2)]
		g.branch(name, 16, 0, skip)
	default:
		name := []string{"bltz", "bgez"}[g.rng.Intn(2)]
		g.branch(name, 16, 0, skip)
	}
	g.slot()
	g.arith()
	g.at(skip)
}

// memOp round-trips the accumulator through the routine's data slot,
// mixing in partial-word accesses.
func (g *mipsGen) memOp(idx int) {
	off := int32((idx % 32) * 8)
	g.w(mips.EncodeIU("lui", 1, 0, mipsDataHi))("lui $1, %#x", mipsDataHi)
	g.w(mips.EncodeI("sw", 16, 1, off))("sw $16, %d($1)", off)
	load := []string{"lw", "lb", "lbu", "lh", "lhu"}[g.rng.Intn(5)]
	ld := off
	switch load {
	case "lb", "lbu":
		ld += int32(g.rng.Intn(4))
	case "lh", "lhu":
		ld += int32(g.rng.Intn(2)) * 2
	}
	g.w(mips.EncodeI(load, 9, 1, ld))("%s $9, %d($1)", load, ld)
	if g.rng.Intn(2) == 0 {
		g.w(mips.EncodeI("sb", 9, 1, off+4))("sb $9, %d($1)", off+4)
		g.w(mips.EncodeI("sh", 16, 1, off+6))("sh $16, %d($1)", off+6)
	}
	g.w(mips.EncodeR("addu", 16, 16, 9))("addu $16, $16, $9")
	g.w(mips.EncodeShift("srl", 16, 16, 1))("srl $16, $16, 1")
}

// mulOp drives HI/LO: multiply the accumulator by a small constant and
// fold both halves back in.
func (g *mipsGen) mulOp() {
	k := int32(3 + g.rng.Intn(95))
	g.w(mips.EncodeI("addiu", 9, 0, k))("addiu $9, $0, %d", k)
	op := []string{"mult", "multu"}[g.rng.Intn(2)]
	g.w(mips.EncodeR(op, 0, 16, 9))("%s $16, $9", op)
	g.w(mips.EncodeR("mflo", 12, 0, 0))("mflo $12")
	g.w(mips.EncodeR("mfhi", 13, 0, 0))("mfhi $13")
	g.w(mips.EncodeR("xor", 16, 12, 13))("xor $16, $12, $13")
}

// indirectCall loads the routine's function-pointer slot (written by
// main, targeting a strictly later routine) and calls through it.
func (g *mipsGen) indirectCall(idx int) {
	g.w(mips.EncodeIU("lui", 1, 0, mipsDataHi))("lui $1, %#x", mipsDataHi)
	g.w(mips.EncodeI("lw", 12, 1, int32(mipsFPOff+4*idx)))("lw $12, %#x($1)", mipsFPOff+4*idx)
	g.w(mips.EncodeR("jalr", 31, 12, 0))("jalr $12")
	g.slot()
}

// writeTrap stores the accumulator and write(2)s it, so the oracles
// compare output bytes, not just final state.
func (g *mipsGen) writeTrap() {
	g.w(mips.EncodeIU("lui", 1, 0, mipsDataHi))("lui $1, %#x", mipsDataHi)
	g.w(mips.EncodeI("sw", 16, 1, mipsBufOff))("sw $16, %#x($1)", mipsBufOff)
	g.w(mips.EncodeI("addiu", 2, 0, 4))("addiu $2, $0, 4")
	g.w(mips.EncodeI("addiu", 4, 0, 1))("addiu $4, $0, 1")
	g.w(mips.EncodeIU("lui", 5, 0, mipsDataHi))("lui $5, %#x", mipsDataHi)
	g.w(mips.EncodeI("addiu", 5, 5, mipsBufOff))("addiu $5, $5, %#x", mipsBufOff)
	g.w(mips.EncodeI("addiu", 6, 0, 4))("addiu $6, $0, 4")
	g.w(mips.EncodeSyscall())("syscall")
}

func (g *mipsGen) emitDataBlob() {
	name := fmt.Sprintf("dtab%d", g.label)
	g.label++
	g.at(name)
	start := g.pc()
	n := 2 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		v := g.rng.Uint32()
		g.w(v, nil)(".word %#x", v)
	}
	g.program.DataRanges = append(g.program.DataRanges, [2]uint32{start, g.pc()})
}

func (g *mipsGen) addSymbols(f *binfile.File) {
	add := func(name string, kind binfile.SymKind, global bool) {
		if addr, ok := g.labels[name]; ok {
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: kind, Global: global})
		}
	}
	add("main", binfile.SymFunc, true)
	for i := 0; i < g.cfg.Routines; i++ {
		if g.hidden[i] {
			continue
		}
		add(fmt.Sprintf("r%d", i), binfile.SymFunc, true)
	}
	for name, addr := range g.labels {
		if strings.HasPrefix(name, "dtab") {
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: binfile.SymLabel})
		}
	}
	if addr, ok := g.labels["main"]; ok {
		f.Symbols = append(f.Symbols, binfile.Symbol{Name: "main_dup", Addr: addr, Kind: binfile.SymLabel})
	}
	f.SortSymbols()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
