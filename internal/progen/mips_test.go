package progen_test

import (
	"bytes"
	"testing"

	"eel/internal/mips"
	"eel/internal/progen"
	"eel/internal/sim"
)

func mipsConfig(seed int64) progen.Config {
	cfg := progen.DefaultConfig(seed)
	cfg.ISA = "mips"
	return cfg
}

// runMIPS executes the image on one engine.
func runMIPS(t *testing.T, p *progen.Program, nojit, nochain bool) (*sim.CPU, string) {
	t.Helper()
	var out bytes.Buffer
	cpu := sim.LoadFileWith(mips.NewDecoder(), p.File, &out)
	cpu.NoJIT, cpu.NoChain = nojit, nochain
	if err := cpu.Run(50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("did not halt")
	}
	return cpu, out.String()
}

func TestMIPSGeneratedProgramRuns(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := progen.MustGenerate(mipsConfig(seed))
		cpu, _ := runMIPS(t, p, true, false)
		t.Logf("seed %d: %d instructions, exit %d, %d indirect, %d hidden",
			seed, cpu.InstCount, cpu.ExitCode, p.Switches, p.Hidden)
		if cpu.InstCount < 100 {
			t.Errorf("seed %d: suspiciously short run (%d insts)", seed, cpu.InstCount)
		}
	}
}

// TestMIPSLockstep runs the same program on the interpreter, the
// unchained translation cache, and the chained engine, requiring
// bit-identical results — the MIPS counterpart of the SPARC
// engine-equivalence tests, driven entirely by the description.
func TestMIPSLockstep(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		p := progen.MustGenerate(mipsConfig(seed))
		ref, refOut := runMIPS(t, p, true, false)
		for _, eng := range []struct {
			name           string
			nojit, nochain bool
		}{{"translated", false, true}, {"chained", false, false}} {
			cpu, out := runMIPS(t, p, eng.nojit, eng.nochain)
			if cpu.ExitCode != ref.ExitCode || cpu.InstCount != ref.InstCount {
				t.Errorf("seed %d %s: exit=%d insts=%d, interp exit=%d insts=%d",
					seed, eng.name, cpu.ExitCode, cpu.InstCount, ref.ExitCode, ref.InstCount)
			}
			if out != refOut {
				t.Errorf("seed %d %s: output diverges (%d vs %d bytes)", seed, eng.name, len(out), len(refOut))
			}
			if a, b := cpu.ArchState(), ref.ArchState(); a != b {
				t.Errorf("seed %d %s: architected state diverges", seed, eng.name)
			}
		}
	}
}

// TestMIPSDeterministic: the same config must generate bit-identical
// images (the fuzz shrinker depends on this).
func TestMIPSDeterministic(t *testing.T) {
	a := progen.MustGenerate(mipsConfig(42))
	b := progen.MustGenerate(mipsConfig(42))
	if !bytes.Equal(a.File.Text().Data, b.File.Text().Data) {
		t.Error("same config generated different text")
	}
	if a.Source != b.Source {
		t.Error("same config generated different listings")
	}
}

// TestMIPSAllWordsDecode: every non-data word must come from the
// canonical encoders and decode under the description.
func TestMIPSAllWordsDecode(t *testing.T) {
	p := progen.MustGenerate(mipsConfig(3))
	dec := mips.NewDecoder()
	text := p.File.Text()
	data := 0
	for i := 0; i+3 < len(text.Data); i += 4 {
		addr := text.Addr + uint32(i)
		w := uint32(text.Data[i])<<24 | uint32(text.Data[i+1])<<16 |
			uint32(text.Data[i+2])<<8 | uint32(text.Data[i+3])
		if p.IsData(addr) {
			data++
			continue
		}
		if !dec.Decode(w).Valid() {
			t.Errorf("word %08x at %#x does not decode", w, addr)
		}
	}
	t.Logf("%d words, %d data", len(text.Data)/4, data)
}

func TestMIPSConfigErrors(t *testing.T) {
	cfg := mipsConfig(1)
	cfg.Routines = 65
	if _, err := progen.Generate(cfg); err == nil {
		t.Error("65 routines accepted")
	}
	cfg = progen.DefaultConfig(1)
	cfg.ISA = "vax"
	if _, err := progen.Generate(cfg); err == nil {
		t.Error("unknown ISA accepted")
	}
}
