package progen_test

import (
	"bytes"
	"testing"

	_ "eel/internal/aout"
	"eel/internal/binfile"
	"eel/internal/core"
	_ "eel/internal/elf32"
	"eel/internal/machine"
	"eel/internal/progen"
	"eel/internal/sim"
	"eel/internal/sparc"
)

// runFile executes an image and returns the CPU.
func sparcName(w uint32) string {
	return sparc.NewDecoder().Decode(w).Name()
}

func runFile(t *testing.T, f *binfile.File, maxSteps uint64) (*sim.CPU, string) {
	t.Helper()
	mem := sim.NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := sim.New(sparc.NewDecoder(), mem)
	var out bytes.Buffer
	cpu.Stdout = &out
	text := f.Text()
	cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	cpu.Reset(f.Entry, 0x7ff000)
	if err := cpu.Run(maxSteps); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("did not halt")
	}
	return cpu, out.String()
}

func TestGeneratedProgramRuns(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		p := progen.MustGenerate(progen.DefaultConfig(seed))
		cpu, _ := runFile(t, p.File, 50_000_000)
		t.Logf("seed %d: %d instructions, exit %d, %d switches",
			seed, cpu.InstCount, cpu.ExitCode, p.Switches)
		if cpu.InstCount < 100 {
			t.Errorf("seed %d: suspiciously short run (%d insts)", seed, cpu.InstCount)
		}
	}
}

func TestSunProProgramRuns(t *testing.T) {
	cfg := progen.DefaultConfig(7)
	cfg.Personality = progen.SunPro
	p := progen.MustGenerate(cfg)
	if p.Continuations == 0 {
		t.Skip("seed produced no continuations")
	}
	cpu, _ := runFile(t, p.File, 50_000_000)
	if cpu.InstCount < 100 {
		t.Errorf("short run: %d", cpu.InstCount)
	}
}

func TestDeterministic(t *testing.T) {
	a := progen.MustGenerate(progen.DefaultConfig(42))
	b := progen.MustGenerate(progen.DefaultConfig(42))
	if a.Source != b.Source {
		t.Error("same seed produced different programs")
	}
	c := progen.MustGenerate(progen.DefaultConfig(43))
	if a.Source == c.Source {
		t.Error("different seeds produced identical programs")
	}
}

// counterSnippet is the Figure 2 increment for testing edits.
func counterSnippet(t *testing.T, addr uint32) *core.Snippet {
	t.Helper()
	p1, p2 := machine.Reg(16), machine.Reg(17)
	hi, _ := sparc.EncodeSethi(p1, addr)
	ld, _ := sparc.EncodeOp3Imm("ld", p2, p1, int32(sparc.Lo(addr)))
	add, _ := sparc.EncodeOp3Imm("add", p2, p2, 1)
	st, _ := sparc.EncodeOp3Imm("st", p2, p1, int32(sparc.Lo(addr)))
	return core.NewSnippet([]uint32{hi, ld, add, st}, []machine.Reg{p1, p2})
}

// editAllBranches instruments every editable out-edge of every
// multi-successor block in every routine and returns counter count.
func editAllBranches(t *testing.T, e *core.Executable) int {
	t.Helper()
	n := 0
	for _, r := range e.Routines() {
		g, err := r.ControlFlowGraph()
		if err != nil {
			t.Fatalf("cfg %s: %v", r.Name, err)
		}
		for _, b := range g.Blocks {
			if len(b.Succ) <= 1 {
				continue
			}
			for _, edge := range b.Succ {
				if edge.Uneditable {
					continue
				}
				addr := e.AllocData(4)
				if err := r.AddCodeAlong(edge, counterSnippet(t, addr)); err != nil {
					t.Fatalf("edit %s: %v", r.Name, err)
				}
				n++
			}
		}
		if err := r.ProduceEditedRoutine(); err != nil {
			t.Fatalf("produce %s: %v", r.Name, err)
		}
	}
	return n
}

// TestEndToEndInstrumentedEquivalence is the repository's strongest
// validation: generated programs, fully instrumented on every branch
// edge, must behave identically after editing.
func TestEndToEndInstrumentedEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := progen.DefaultConfig(seed)
		if seed%2 == 0 {
			cfg.Personality = progen.SunPro
		}
		p := progen.MustGenerate(cfg)
		orig, origOut := runFile(t, p.File, 50_000_000)

		e, err := core.NewExecutable(p.File)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.ReadContents(); err != nil {
			t.Fatal(err)
		}
		edits := editAllBranches(t, e)
		edited, err := e.BuildEdited()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, gotOut := runFile(t, edited, 500_000_000)
		if got.ExitCode != orig.ExitCode {
			t.Errorf("seed %d: exit %d != original %d", seed, got.ExitCode, orig.ExitCode)
		}
		if gotOut != origOut {
			t.Errorf("seed %d: output diverged", seed)
		}
		if got.InstCount <= orig.InstCount {
			t.Errorf("seed %d: instrumented run not longer (%d vs %d)", seed, got.InstCount, orig.InstCount)
		}
		t.Logf("seed %d (%v): %d edits, %d→%d insts, exit %d",
			seed, cfg.Personality, edits, orig.InstCount, got.InstCount, orig.ExitCode)
	}
}

func TestStrippedEndToEnd(t *testing.T) {
	cfg := progen.DefaultConfig(3)
	cfg.Strip = true
	p := progen.MustGenerate(cfg)
	orig, _ := runFile(t, p.File, 50_000_000)

	e, err := core.NewExecutable(p.File)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	if len(e.Routines()) < 2 {
		t.Fatalf("stripped recovery found only %d routines", len(e.Routines()))
	}
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := runFile(t, edited, 500_000_000)
	if got.ExitCode != orig.ExitCode {
		t.Errorf("stripped: exit %d != %d", got.ExitCode, orig.ExitCode)
	}
}

// TestElf32Pipeline pushes a generated program through the second
// container format: serialize as ELF32, reload, instrument, run —
// the same tool works unchanged over either format (the paper's
// system-independence claim).
func TestElf32Pipeline(t *testing.T) {
	p := progen.MustGenerate(progen.DefaultConfig(12))
	orig, _ := runFile(t, p.File, 50_000_000)

	// Re-container as ELF32.
	elfImg := *p.File
	elfImg.Format = "elf32"
	data, err := binfile.Write(&elfImg)
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := binfile.Read(data)
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Format != "elf32" {
		t.Fatalf("format = %s", reloaded.Format)
	}
	e, err := core.NewExecutable(reloaded)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	editAllBranches(t, e)
	edited, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	if edited.Format != "elf32" {
		t.Errorf("edited format = %s", edited.Format)
	}
	got, _ := runFile(t, edited, 500_000_000)
	if got.ExitCode != orig.ExitCode {
		t.Errorf("elf32 pipeline diverged: %d vs %d", got.ExitCode, orig.ExitCode)
	}
}

// TestFloatingPointFeature ensures generated programs exercise the
// FP file when the generator emits fp features.
func TestFloatingPointFeature(t *testing.T) {
	found := false
	for seed := int64(1); seed <= 6 && !found; seed++ {
		p := progen.MustGenerate(progen.DefaultConfig(seed))
		for _, w := range p.Asm.Words() {
			if n := sparcName(w); n == "fadds" || n == "fitos" {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("no floating-point instructions generated across seeds")
	}
}

// TestSelfModProgram pins the -gen-selfmod workload: the program must
// halt with the same exit code and output in every engine, must leave
// non-SelfMod generation byte-identical (no extra rng draws), and must
// actually exercise the routine tier's promote/deopt cycle.
func TestSelfModProgram(t *testing.T) {
	base := progen.MustGenerate(progen.DefaultConfig(11))
	cfg := progen.DefaultConfig(11)
	cfg.SelfMod = true
	p := progen.MustGenerate(cfg)

	// SelfMod only appends: the shared prefix of both sources is
	// identical, so plain generation is unaffected by the feature.
	if got, want := progen.MustGenerate(progen.DefaultConfig(11)).Source, base.Source; got != want {
		t.Fatal("generating a SelfMod program perturbed a later plain generation")
	}

	ref, refOut := runFile(t, p.File, 50_000_000)

	mem := sim.NewMemory()
	for _, s := range p.File.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := sim.New(sparc.NewDecoder(), mem)
	var out bytes.Buffer
	cpu.Stdout = &out
	text := p.File.Text()
	cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	cpu.EnableRoutines = true
	cpu.RoutineSync = true
	cpu.RoutineHotThreshold = 1
	cpu.Reset(p.File.Entry, 0x7ff000)
	if err := cpu.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if cpu.ExitCode != ref.ExitCode || out.String() != refOut {
		t.Fatalf("routine tier diverged on self-modifying program: exit %d vs %d", cpu.ExitCode, ref.ExitCode)
	}
	k := cpu.Counters()
	if k.RoutinesCompiled == 0 {
		t.Error("self-mod program compiled no routines")
	}
	if k.RoutineDeopts == 0 {
		t.Error("self-mod program triggered no deopts")
	}
}
