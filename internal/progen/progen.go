// Package progen deterministically generates synthetic SPARC
// programs that exhibit the code idioms the paper's measurements
// depend on (§3.1, §3.3): conditional and annulled branches with
// delay slots, bounded loops, call DAGs, gcc-style switch lowering
// through dispatch tables embedded in the text segment, SunPro-style
// pop-frame-and-jump continuation transfers (the paper's only source
// of unanalyzable indirect jumps), register-window routines,
// multiple-entry routines, hidden (symbol-less) code, data tables
// with routine-indistinguishable symbols, and debug/duplicate
// labels.  Every generated program terminates deterministically, so
// original and edited executions can be compared exactly.
package progen

import (
	"fmt"
	"math/rand"
	"strings"

	"eel/internal/asm"
	"eel/internal/binfile"
)

// Personality selects the compiler style whose idioms the program
// imitates (the paper measured gcc/SunOS vs SunPro/Solaris).
type Personality int

// Personalities.
const (
	// GCC emits analyzable dispatch-table switches and ordinary
	// returns — the paper found zero unanalyzable indirect jumps in
	// this configuration.
	GCC Personality = iota
	// SunPro additionally emits pop-frame-and-jump continuation
	// transfers, reproducing the 138 unanalyzable jumps the paper
	// traced to that idiom.
	SunPro
)

// Config parameterizes generation.
type Config struct {
	Seed     int64
	Routines int
	// ISA selects the target machine: "" or "sparc" for the SPARC
	// generator (Personality applies), "mips" for the MIPS word-level
	// generator (see mips.go).
	ISA         string
	Personality Personality
	// SwitchFrac is the fraction of routines containing a
	// dispatch-table switch.
	SwitchFrac float64
	// ContFrac (SunPro only) is the fraction of routines ending in
	// a continuation jump.
	ContFrac float64
	// WindowFrac is the fraction of routines using register
	// windows (save/restore).
	WindowFrac float64
	// DataTables embeds data blobs in the text segment with
	// routine-indistinguishable symbols.
	DataTables bool
	// MultiEntry gives some routines a second, directly-called
	// entry point (Fortran ENTRY).
	MultiEntry bool
	// HiddenFrac omits symbols for a fraction of routines.
	HiddenFrac float64
	// DebugLabels sprinkles temporary/debugging labels.
	DebugLabels bool
	// Strip removes the symbol table entirely.
	Strip bool
	// BodyOps scales routine body length.
	BodyOps int
	// MemHeavy biases generation toward loads and stores (for the
	// Active Memory experiment's workloads).
	MemHeavy bool
	// CallHeavy biases generation toward deep call DAGs with register
	// windows on every non-tail routine — heavy cross-routine control
	// flow and window pressure (the routine tier's callheavy
	// benchmark flavour).
	CallHeavy bool
	// HotLoop, when positive, adds a counted loop to main that calls
	// the DAG roots that many times — a loop-heavy workload whose
	// dynamic execution is dominated by repeated paths across routine
	// boundaries (the emulator's block-chaining and trace-extension
	// benchmarks measure on it).  The trip count lives in data memory
	// because flat callees clobber main's locals.
	HotLoop int
	// SelfMod adds a routine that stores into its own text (the word
	// is rewritten unchanged, so behaviour is identical on every
	// engine and layout) and a counted loop in main that calls it
	// repeatedly — each call fires the emulator's write watch, so the
	// JIT's promote/install/invalidate/deopt cycle runs over and over.
	SelfMod bool
	// Base is the text load address.
	Base uint32
}

// DefaultConfig returns a medium-sized gcc-personality program.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Routines:    40,
		Personality: GCC,
		SwitchFrac:  0.25,
		ContFrac:    0.15,
		WindowFrac:  0.2,
		DataTables:  true,
		MultiEntry:  true,
		HiddenFrac:  0.1,
		DebugLabels: true,
		BodyOps:     12,
		Base:        0x10000,
	}
}

// Program is a generated program with its source and image.
type Program struct {
	Source string
	File   *binfile.File
	// Asm is the assembled SPARC program; nil for the MIPS generator,
	// which emits words directly through the canonical encoders.
	Asm *asm.Program
	// DataRanges lists [start,end) address ranges inside the text
	// segment holding data rather than instructions (filled by the
	// MIPS generator; the SPARC path records data in Asm).
	DataRanges [][2]uint32
	// ExpectedFeatures counts what was generated, for tests.
	Switches      int
	Continuations int
	Hidden        int
}

// IsData reports whether the text word at addr is embedded data
// rather than an encoder-produced instruction.
func (p *Program) IsData(addr uint32) bool {
	for _, r := range p.DataRanges {
		if addr >= r[0] && addr < r[1] {
			return true
		}
	}
	return false
}

type gen struct {
	cfg     Config
	rng     *rand.Rand
	b       strings.Builder
	label   int
	program *Program
	// tailTarget[i] >= 0 marks routine i as ending in the SunPro
	// pop-frame-and-tail-call idiom, jumping to that routine through
	// a function-pointer slot in writable data (unanalyzable).
	tailTarget []int
	// hasEntry2 marks multi-entry routines.
	hasEntry2 []bool
	usesWin   []bool
	// mayCall marks non-leaf routines; they always use register
	// windows, since a flat routine that calls would clobber its
	// own return address in %o7.
	mayCall []bool
	hidden  []bool
}

// Generate builds a program per cfg, dispatching on cfg.ISA.
func Generate(cfg Config) (*Program, error) {
	if cfg.Routines < 1 {
		return nil, fmt.Errorf("progen: need at least one routine")
	}
	switch cfg.ISA {
	case "", "sparc":
	case "mips", "mips32e":
		return generateMIPS(cfg)
	default:
		return nil, fmt.Errorf("progen: no generator personality for ISA %q", cfg.ISA)
	}
	if cfg.Base == 0 {
		cfg.Base = 0x10000
	}
	if cfg.BodyOps == 0 {
		cfg.BodyOps = 12
	}
	g := &gen{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		program:    &Program{},
		tailTarget: make([]int, cfg.Routines),
		hasEntry2:  make([]bool, cfg.Routines),
		usesWin:    make([]bool, cfg.Routines),
		mayCall:    make([]bool, cfg.Routines),
		hidden:     make([]bool, cfg.Routines),
	}
	for i := range g.tailTarget {
		g.tailTarget[i] = -1
		if cfg.Personality == SunPro && i+1 < cfg.Routines && g.rng.Float64() < cfg.ContFrac {
			// Tail-call a later routine through a data-segment
			// function pointer (the paper's unanalyzable idiom).
			g.tailTarget[i] = i + 1 + g.rng.Intn(cfg.Routines-i-1)
			g.program.Continuations++
		}
		isTail := g.tailTarget[i] >= 0
		if i+1 < cfg.Routines && !isTail && g.rng.Float64() < 0.5 {
			// Non-leaf: must keep a frame, so it uses windows.
			g.mayCall[i] = true
			g.usesWin[i] = true
		} else if g.rng.Float64() < cfg.WindowFrac && !isTail {
			g.usesWin[i] = true
		}
		if cfg.CallHeavy && i+1 < cfg.Routines && !isTail {
			// Every non-tail routine keeps a frame and may call
			// deeper.  Applied after the draws above so the
			// CallHeavy=false draw sequence is unchanged.
			g.mayCall[i] = true
			g.usesWin[i] = true
		}
		// Second entry points skip prologue code, so they are
		// incompatible with register windows (save would be
		// skipped) and tail epilogues.
		if cfg.MultiEntry && !g.usesWin[i] && !isTail && g.rng.Float64() < 0.15 {
			g.hasEntry2[i] = true
		}
		if g.rng.Float64() < cfg.HiddenFrac {
			g.hidden[i] = true
			g.program.Hidden++
		}
	}
	g.emitMain()
	for i := 0; i < cfg.Routines; i++ {
		g.emitRoutine(i)
		if cfg.DataTables && g.rng.Float64() < 0.2 {
			g.emitDataBlob()
		}
	}
	if cfg.SelfMod {
		g.emitSelfMod()
	}
	src := g.b.String()
	prog, err := asm.Assemble(src, cfg.Base)
	if err != nil {
		return nil, fmt.Errorf("progen: assembling generated program: %w", err)
	}
	f := &binfile.File{
		Format: "aout",
		Entry:  cfg.Base,
		Sections: []binfile.Section{
			{Name: "text", Addr: cfg.Base, Data: prog.Bytes},
			{Name: "data", Addr: 0x400000, Data: make([]byte, 8192)},
		},
	}
	g.addSymbols(f, prog)
	if cfg.Strip {
		f.Strip()
	}
	g.program.Source = src
	g.program.File = f
	g.program.Asm = prog
	return g.program, nil
}

// MustGenerate panics on error (tests and benchmarks).
func MustGenerate(cfg Config) *Program {
	p, err := Generate(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func (g *gen) l(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) fresh(prefix string) string {
	g.label++
	return fmt.Sprintf(".X%s%d", prefix, g.label)
}

// emitMain generates the entry routine: call every top-level routine
// in sequence, mixing results, then exit.
func (g *gen) emitMain() {
	g.l("main:")
	// Initialize the function-pointer slots for tail-call routines
	// (writable data, so the slicer must not constant-fold them).
	for i, tgt := range g.tailTarget {
		if tgt < 0 {
			continue
		}
		g.l("\tset r%d, %%l0", tgt)
		g.l("\tset %d, %%l1", fpSlot(i))
		g.l("\tst %%l0, [%%l1]")
	}
	g.l("\tmov %d, %%o0", 1+g.rng.Intn(64))
	// Call a few roots of the DAG, several rounds (unrolled: main's
	// locals are not preserved across flat callees, so no register
	// loop counter survives here).
	roots := 1 + g.rng.Intn(min(4, g.cfg.Routines))
	for rep := 0; rep < 20; rep++ {
		for i := 0; i < roots; i++ {
			g.call(i * (g.cfg.Routines / roots))
		}
		g.l("\txor %%o0, %d, %%o0", rep+1)
	}
	if g.cfg.HotLoop > 0 {
		top := g.fresh("hot")
		g.l("\tset %d, %%l1", hotSlot)
		g.l("\tset %d, %%l0", g.cfg.HotLoop)
		g.l("\tst %%l0, [%%l1]")
		g.l("%s:", top)
		for i := 0; i < roots; i++ {
			g.call(i * (g.cfg.Routines / roots))
		}
		g.l("\tset %d, %%l1", hotSlot)
		g.l("\tld [%%l1], %%l0")
		g.l("\tsubcc %%l0, 1, %%l0")
		g.l("\tst %%l0, [%%l1]")
		g.l("\tbne %s", top)
		g.l("\tnop")
	}
	if g.cfg.SelfMod {
		// A counted loop over the self-modifying routine.  Every call
		// re-heats selfmod from zero (its text write invalidates the
		// JIT's caches), so a low-threshold routine tier promotes,
		// installs, and deopts once per few iterations.  The counter
		// lives in data memory like HotLoop's.
		top := g.fresh("smloop")
		g.l("\tset %d, %%l1", smSlot)
		g.l("\tset 24, %%l0")
		g.l("\tst %%l0, [%%l1]")
		g.l("%s:", top)
		g.l("\tcall selfmod")
		g.l("\tnop")
		g.l("\tset %d, %%l1", smSlot)
		g.l("\tld [%%l1], %%l0")
		g.l("\tsubcc %%l0, 1, %%l0")
		g.l("\tst %%l0, [%%l1]")
		g.l("\tbne %s", top)
		g.l("\tnop")
	}
	g.l("\tmov 1, %%g1")
	g.l("\tta 0")
}

// call emits a plain call to routine idx (or its second entry).
func (g *gen) call(idx int) {
	if idx >= g.cfg.Routines {
		return
	}
	entry := fmt.Sprintf("r%d", idx)
	if g.hasEntry2[idx] && g.rng.Intn(2) == 0 {
		entry = fmt.Sprintf("r%d_entry2", idx)
	}
	g.l("\tcall %s", entry)
	g.l("\tnop")
}

// emitRoutine generates routine idx.  Convention: argument and
// result in %o0; %l0-%l7 and %o1-%o5 scratch.
func (g *gen) emitRoutine(idx int) {
	g.l("r%d:", idx)
	win := g.usesWin[idx]
	if win {
		g.l("\tsave %%sp, -96, %%sp")
		g.l("\tmov %%i0, %%o0")
	}
	if g.cfg.DebugLabels && g.rng.Intn(3) == 0 {
		g.l("%s:", g.fresh("dbg"))
	}
	ops := g.cfg.BodyOps/2 + g.rng.Intn(g.cfg.BodyOps)
	if g.hasEntry2[idx] && ops < 3 {
		ops = 3
	}
	var switches []string // deferred dispatch tables
	for i := 0; i < ops; i++ {
		if g.hasEntry2[idx] && i == max(1, ops/3) {
			// The second entry point (Fortran ENTRY): callers call
			// it directly, skipping the code above.
			g.l("r%d_entry2:", idx)
		}
		kind := g.rng.Intn(9)
		if g.cfg.CallHeavy && (kind == 0 || kind == 6) {
			kind = 7 // bias bodies toward calls, same draw count
		}
		switch kind {
		case 0, 1, 2:
			g.arith()
		case 3:
			g.loop()
		case 4:
			g.annulledLoop()
		case 5:
			g.ifThen()
		case 6:
			if g.rng.Float64() < g.cfg.SwitchFrac*2 {
				switches = append(switches, g.dispatchSwitch())
			} else {
				g.arith()
			}
		case 7:
			// Call a later routine (the DAG guarantees
			// termination).  Continuation routines make no calls:
			// their return protocol lives in %g1, which any callee
			// chain might clobber.
			lo := idx + 1
			if lo < g.cfg.Routines && g.mayCall[idx] {
				g.call(lo + g.rng.Intn(g.cfg.Routines-lo))
			} else {
				g.arith()
			}
		case 8:
			if g.rng.Intn(4) == 0 {
				g.fpOp(idx)
			} else {
				g.memOp(idx)
			}
		}
		if g.cfg.MemHeavy && g.rng.Intn(2) == 0 {
			g.memOp(idx)
		}
	}
	// Epilogue.
	switch {
	case g.tailTarget[idx] >= 0:
		// The SunPro idiom: pop the frame and jump to the callee
		// through a function pointer loaded from writable data —
		// the callee returns directly to this routine's caller via
		// the untouched %o7.
		g.l("\tset %d, %%l1", fpSlot(idx))
		g.l("\tld [%%l1], %%g5")
		g.l("\tadd %%sp, 0, %%sp")
		g.l("\tjmp %%g5")
		g.l("\tnop")
	case win:
		g.l("\tret")
		g.l("\trestore %%o0, 0, %%o0")
	default:
		g.l("\tretl")
		g.l("\tnop")
	}
	// Dispatch tables: data in the text segment, after the code
	// (the paper's premise that text contains data).
	for _, t := range switches {
		g.l("\t.align 4")
		g.l("%s", t)
	}
}

func (g *gen) arith() {
	dst := []string{"%o0", "%l0", "%l1", "%l2", "%o1", "%o2"}[g.rng.Intn(6)]
	src := []string{"%o0", "%l0", "%l1", "%o1"}[g.rng.Intn(4)]
	op := []string{"add", "sub", "xor", "and", "or", "sll", "srl"}[g.rng.Intn(7)]
	imm := g.rng.Intn(31) + 1
	if op == "sll" || op == "srl" {
		imm = g.rng.Intn(5) + 1
	}
	g.l("\t%s %s, %d, %s", op, src, imm, dst)
}

func (g *gen) loop() {
	top := g.fresh("loop")
	n := 2 + g.rng.Intn(6)
	g.l("\tmov %d, %%l6", n)
	g.l("%s:", top)
	g.arith()
	g.l("\tsubcc %%l6, 1, %%l6")
	g.l("\tbne %s", top)
	g.l("\tnop")
}

// annulledLoop uses a bne,a with productive code in the slot — the
// Fig 3 normalization case.
func (g *gen) annulledLoop() {
	top := g.fresh("aloop")
	n := 2 + g.rng.Intn(5)
	g.l("\tmov %d, %%l7", n)
	g.l("%s:", top)
	g.l("\tsubcc %%l7, 1, %%l7")
	g.l("\tbne,a %s", top)
	g.l("\tadd %%o0, 3, %%o0")
}

func (g *gen) ifThen() {
	skip := g.fresh("skip")
	cond := []string{"be", "bne", "bg", "ble", "bl", "bge", "bgu", "bleu"}[g.rng.Intn(8)]
	g.l("\tcmp %%o0, %d", g.rng.Intn(64))
	g.l("\t%s %s", cond, skip)
	g.l("\tnop")
	g.arith()
	g.l("%s:", skip)
}

// dispatchSwitch emits a gcc-style switch and returns its table text
// (placed after the routine body).
func (g *gen) dispatchSwitch() string {
	g.program.Switches++
	n := 3 + g.rng.Intn(5)
	tab := g.fresh("tab")
	def := g.fresh("def")
	end := g.fresh("end")
	arms := make([]string, n)
	for i := range arms {
		arms[i] = g.fresh("case")
	}
	g.l("\tand %%o0, %d, %%l5", n) // bounded-ish index
	g.l("\tcmp %%l5, %d", n-1)
	g.l("\tbgu %s", def)
	g.l("\tsll %%l5, 2, %%l4")
	g.l("\tset %s, %%l3", tab)
	g.l("\tld [%%l3+%%l4], %%l3")
	g.l("\tjmp %%l3")
	g.l("\tnop")
	for i, a := range arms {
		g.l("%s:", a)
		g.l("\tadd %%o0, %d, %%o0", i+1)
		g.l("\tba %s", end)
		g.l("\tnop")
	}
	g.l("%s:", def)
	g.l("\txor %%o0, 5, %%o0")
	g.l("%s:", end)

	var t strings.Builder
	fmt.Fprintf(&t, "%s:", tab)
	for _, a := range arms {
		fmt.Fprintf(&t, "\n\t.word %s", a)
	}
	return t.String()
}

// memOp stores and reloads through the data segment.
func (g *gen) memOp(idx int) {
	slot := 0x400000 + uint32(idx%32)*8
	g.l("\tset %d, %%l3", slot)
	g.l("\tst %%o0, [%%l3]")
	g.l("\tld [%%l3], %%l2")
	g.l("\tadd %%o0, %%l2, %%o0")
	g.l("\tsrl %%o0, 1, %%o0")
}

// fpOp exercises the floating-point file: convert the integer
// accumulator, do arithmetic, convert back (deterministic since the
// values are small integers).
func (g *gen) fpOp(idx int) {
	slot := 0x400400 + uint32(idx%16)*4
	g.l("\tset %d, %%l3", slot)
	g.l("\tand %%o0, 0xff, %%l2")
	g.l("\tst %%l2, [%%l3]")
	g.l("\tldf [%%l3], %%f0")
	g.l("\tfitos %%f0, %%f1")
	g.l("\tfadds %%f1, %%f1, %%f2")
	g.l("\tfstoi %%f2, %%f3")
	g.l("\tstf %%f3, [%%l3]")
	g.l("\tld [%%l3], %%l2")
	g.l("\txor %%o0, %%l2, %%o0")
}

// emitSelfMod generates the self-modifying routine: it loads the word
// at its own .Xsmpatch label and stores it back.  The store is a
// value-level no-op — execution is bit-identical on every engine and
// under code-moving instrumentation — but the emulator's write watch
// sees a text write and invalidates translated code, which is exactly
// the deopt storm the flight recorder exists to capture.
func (g *gen) emitSelfMod() {
	g.l("selfmod:")
	g.l("\tset .Xsmpatch, %%o3")
	g.l("\tld [%%o3], %%o4")
	g.l("\tst %%o4, [%%o3]")
	g.l(".Xsmpatch:")
	g.l("\tadd %%o0, 1, %%o0")
	g.l("\tretl")
	g.l("\tnop")
}

// emitDataBlob embeds a data table in text with a
// routine-indistinguishable label (§3.1).
func (g *gen) emitDataBlob() {
	g.l("\t.align 4")
	g.l("dtab%d:", g.label)
	g.label++
	n := 2 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		g.l("\t.word %d", g.rng.Uint32())
	}
}

// addSymbols builds the (misleading, in the paper's sense) symbol
// table: function symbols for visible routines, label-kind symbols
// for data blobs, debug labels, and a duplicate.
func (g *gen) addSymbols(f *binfile.File, prog *asm.Program) {
	add := func(name string, kind binfile.SymKind, global bool) {
		if addr, ok := prog.Labels[name]; ok {
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: kind, Global: global})
		}
	}
	add("main", binfile.SymFunc, true)
	if g.cfg.SelfMod {
		add("selfmod", binfile.SymFunc, true)
	}
	for i := 0; i < g.cfg.Routines; i++ {
		if g.hidden[i] {
			continue // hidden routine: no symbol
		}
		add(fmt.Sprintf("r%d", i), binfile.SymFunc, true)
	}
	for name, addr := range prog.Labels {
		switch {
		case strings.HasPrefix(name, "dtab"):
			// Indistinguishable from a routine label.
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: binfile.SymLabel})
		case g.cfg.DebugLabels && strings.HasPrefix(name, ".Xdbg"):
			f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: binfile.SymDebug})
		}
	}
	// A duplicate label for refinement to discard.
	if addr, ok := prog.Labels["main"]; ok {
		f.Symbols = append(f.Symbols, binfile.Symbol{Name: "main_dup", Addr: addr, Kind: binfile.SymLabel})
	}
	f.SortSymbols()
}

// fpSlot returns the data-segment address of routine i's
// function-pointer slot.
func fpSlot(i int) uint32 { return 0x400800 + uint32(i)*4 }

// hotSlot holds the HotLoop trip counter (clear of the memOp, fpOp,
// and function-pointer slot ranges); smSlot holds the SelfMod loop's.
const (
	hotSlot = 0x4007f0
	smSlot  = 0x4007ec
)

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
