package eeld

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"eel/internal/binfile"
	"eel/internal/obs"
	"eel/internal/progen"
	"eel/internal/telemetry"
)

// TestServerTracePropagation is the tentpole's tracing contract: the
// client mints a trace, the server continues it (new span, same
// trace), and the queue, handler, pipeline, wave, and per-routine
// spans all carry that one trace ID.
func TestServerTracePropagation(t *testing.T) {
	tr := telemetry.NewTracer()
	_, client, shutdown := newTestServer(t, Config{Workers: 2, Tracer: tr})

	var sums []RequestSummary
	client.OnSummary = func(s RequestSummary) { sums = append(sums, s) }
	bin := genBinary(t, 21, 12)
	if _, err := client.Analyze(context.Background(), &AnalyzeRequest{Binary: bin}); err != nil {
		t.Fatal(err)
	}
	// Drain + close before reading the tracer: the handler records its
	// last spans after the response body is written.
	shutdown()

	if len(sums) != 1 {
		t.Fatalf("OnSummary fired %d times, want 1", len(sums))
	}
	sum := sums[0]
	if !sum.Trace.Valid() {
		t.Fatal("client minted no trace")
	}
	server, ok := obs.ParseSpanContext(sum.ServerTrace)
	if !ok {
		t.Fatalf("server echoed unparseable trace %q", sum.ServerTrace)
	}
	if server.Trace != sum.Trace.Trace {
		t.Fatalf("server continued trace %016x, client minted %016x", server.Trace, sum.Trace.Trace)
	}
	if server.Span == sum.Trace.Span {
		t.Error("server child span reused the client's span id")
	}
	if sum.Status != http.StatusOK {
		t.Errorf("summary status %d", sum.Status)
	}
	if sum.CacheMisses == 0 {
		t.Error("cold analyze summary reported no cache misses")
	}

	traceID := sum.Trace.TraceID()
	onTrace := map[string]bool{}
	for _, ev := range tr.Events() {
		if ev.Args["trace"] == traceID {
			onTrace[ev.Name] = true
		}
	}
	for _, want := range []string{"eeld.request", "eeld.queue", "eeld.handler", "pipeline.AnalyzeAll"} {
		if !onTrace[want] {
			t.Errorf("no %q span on trace %s (got %v)", want, traceID, onTrace)
		}
	}
	var wave, perRoutine bool
	for name := range onTrace {
		wave = wave || strings.HasPrefix(name, "wave ")
		perRoutine = perRoutine || strings.HasPrefix(name, "analyze ")
	}
	if !wave || !perRoutine {
		t.Errorf("pipeline internals missing from trace: wave=%v per-routine=%v (%v)", wave, perRoutine, onTrace)
	}
}

// TestServerMetricsScrapeAgreement drives a batch of requests and
// checks (a) /metrics serves the request counter and latency buckets
// in Prometheus text format, and (b) the histogram-estimated p50/p99
// agree with the exact order statistics of the same per-request
// durations to within one log-scale bucket.
func TestServerMetricsScrapeAgreement(t *testing.T) {
	srv, client, shutdown := newTestServer(t, Config{Workers: 2})
	defer shutdown()
	ctx := context.Background()
	bins := [][]byte{genBinary(t, 31, 10), genBinary(t, 32, 10)}

	// Exact samples: the server-reported queue+run time per request —
	// the same interval the eeld.latency_ns histogram observes.
	var exact []uint64
	client.OnSummary = func(s RequestSummary) { exact = append(exact, uint64(s.QueueNS+s.RunNS)) }
	const n = 40
	for i := 0; i < n; i++ {
		if _, err := client.Analyze(ctx, &AnalyzeRequest{Binary: bins[i%len(bins)]}); err != nil {
			t.Fatal(err)
		}
	}
	if len(exact) != n {
		t.Fatalf("collected %d summaries, want %d", len(exact), n)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })

	hs := srv.Registry().Snapshot().Histograms["eeld.latency_ns"]
	if hs.Count != n {
		t.Fatalf("latency histogram holds %d observations, want %d", hs.Count, n)
	}
	for _, tc := range []struct {
		p    float64
		pct  int
		name string
	}{{0.5, 50, "p50"}, {0.99, 99, "p99"}} {
		est := hs.Quantile(tc.p)
		ex := exact[(len(exact)-1)*tc.pct/100]
		if d := telemetry.BucketIndex(est) - telemetry.BucketIndex(ex); d < -1 || d > 1 {
			t.Errorf("%s: histogram estimate %dns (bucket %d) vs exact %dns (bucket %d) — more than one bucket apart",
				tc.name, est, telemetry.BucketIndex(est), ex, telemetry.BucketIndex(ex))
		}
	}

	resp, err := http.Get(client.Base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("scrape content type %q", ct)
	}
	m := regexp.MustCompile(`(?m)^eeld_requests_total (\d+)$`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no eeld_requests_total in scrape:\n%s", out)
	}
	if v, _ := strconv.Atoi(m[1]); v < n {
		t.Errorf("eeld_requests_total %d, want >= %d", v, n)
	}
	for _, want := range []string{
		`eeld_latency_ns_bucket{le="`,
		`eeld_latency_ns_bucket{le="+Inf"} ` + strconv.Itoa(n),
		"eeld_latency_ns_count " + strconv.Itoa(n),
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestServerVerifySelfModFlightRecord forces the routine tier's
// promote/deopt cycle through a self-modifying verify job and checks
// the events land in the flight recorder and are served by
// /debug/flight.
func TestServerVerifySelfModFlightRecord(t *testing.T) {
	prev := obs.ActiveFlight()
	defer func() {
		obs.DisableFlight()
		if prev != nil {
			obs.EnableFlight(0)
		}
	}()
	obs.EnableFlight(4096)

	_, client, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()

	cfg := progen.DefaultConfig(5)
	cfg.Routines = 8
	cfg.SelfMod = true
	p, err := progen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := binfile.Write(p.File)
	if err != nil {
		t.Fatal(err)
	}

	vr, err := client.Verify(context.Background(), &VerifyRequest{Binary: bin})
	if err != nil {
		t.Fatal(err)
	}
	if !vr.OK {
		t.Fatalf("self-modifying program failed verify: %s", vr.Divergence)
	}

	resp, err := http.Get(client.Base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []struct {
		TS   int64  `json:"ts_ns"`
		Kind string `json:"kind"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&evs); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, e := range evs {
		kinds[e.Kind]++
		if e.TS == 0 {
			t.Error("flight event without timestamp")
		}
	}
	for _, want := range []string{"tier-promote", "routine-install", "routine-deopt", "invalidate"} {
		if kinds[want] == 0 {
			t.Errorf("verify of a self-modifying program recorded no %q events (got %v)", want, kinds)
		}
	}
}

func encodeBody(t *testing.T, v any) io.Reader {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// TestServerSummaryHeaders checks the per-request span summary rides
// the response headers.
func TestServerSummaryHeaders(t *testing.T) {
	_, client, shutdown := newTestServer(t, Config{Workers: 1})
	defer shutdown()
	bin := genBinary(t, 41, 8)

	req, err := http.NewRequest(http.MethodPost, client.Base+"/v1/analyze", encodeBody(t, &AnalyzeRequest{Binary: bin}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	sc := obs.NewSpanContext()
	req.Header.Set(obs.TraceHeader, sc.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	echoed, ok := obs.ParseSpanContext(resp.Header.Get(obs.TraceHeader))
	if !ok || echoed.Trace != sc.Trace {
		t.Errorf("trace header %q does not continue %q", resp.Header.Get(obs.TraceHeader), sc.String())
	}
	if resp.Header.Get(HeaderQueueNS) == "" || resp.Header.Get(HeaderRunNS) == "" {
		t.Error("summary timing headers missing")
	}
	if v, err := strconv.Atoi(resp.Header.Get(HeaderCacheMisses)); err != nil || v == 0 {
		t.Errorf("cold analyze X-Eel-Cache-Misses = %q", resp.Header.Get(HeaderCacheMisses))
	}
	if d, _ := strconv.ParseInt(resp.Header.Get(HeaderRunNS), 10, 64); d <= 0 || d > int64(time.Minute) {
		t.Errorf("implausible run duration %s", resp.Header.Get(HeaderRunNS))
	}
}
