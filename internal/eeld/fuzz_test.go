package eeld

import (
	"bytes"
	"encoding/base64"
	"strings"
	"testing"
)

// FuzzEeldRequest feeds arbitrary bytes to all three request decoders
// with a small size cap.  The decoders front a long-running daemon:
// they must reject malformed input with an error — never panic, hang,
// or accept a request that violates the documented invariants
// (non-empty binary within the cap, known mode, no unknown fields,
// no trailing content).
func FuzzEeldRequest(f *testing.F) {
	b64 := base64.StdEncoding.EncodeToString([]byte{0x7f, 'E', 'L', 'F', 1, 2, 3, 4})
	f.Add([]byte(`{"binary":"` + b64 + `"}`))
	f.Add([]byte(`{"binary":"` + b64 + `","no_liveness":true,"no_dominators":true,"no_loops":true}`))
	f.Add([]byte(`{"binary":"` + b64 + `","mode":"light"}`))
	f.Add([]byte(`{"binary":"` + b64 + `","mode":"turbo"}`))
	f.Add([]byte(`{"binary":"` + b64 + `","max_steps":1000000}`))
	f.Add([]byte(`{"binary":""}`))
	f.Add([]byte(`{"binary":null}`))
	f.Add([]byte(`{"binary":"not!!base64"}`))
	f.Add([]byte(`{"unknown_field":1}`))
	f.Add([]byte(`{"binary":"` + b64 + `"} trailing`))
	f.Add([]byte(`{"binary":"` + b64 + `"}{"binary":"` + b64 + `"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`"just a string"`))
	f.Add([]byte(``))
	f.Add([]byte(`{`))
	f.Add([]byte(strings.Repeat(`{"binary":"`, 100)))
	f.Add([]byte(`{"binary":"` + strings.Repeat("A", 4096) + `"}`))

	const maxBinary = 1024
	f.Fuzz(func(t *testing.T, data []byte) {
		if req, err := DecodeAnalyzeRequest(bytes.NewReader(data), maxBinary); err == nil {
			if len(req.Binary) == 0 || len(req.Binary) > maxBinary {
				t.Fatalf("analyze decoder accepted binary of %d bytes (cap %d)", len(req.Binary), maxBinary)
			}
		}
		if req, err := DecodeInstrumentRequest(bytes.NewReader(data), maxBinary); err == nil {
			if len(req.Binary) == 0 || len(req.Binary) > maxBinary {
				t.Fatalf("instrument decoder accepted binary of %d bytes (cap %d)", len(req.Binary), maxBinary)
			}
			switch req.Mode {
			case "", "full", "light":
			default:
				t.Fatalf("instrument decoder accepted mode %q", req.Mode)
			}
		}
		if req, err := DecodeVerifyRequest(bytes.NewReader(data), maxBinary); err == nil {
			if len(req.Binary) == 0 || len(req.Binary) > maxBinary {
				t.Fatalf("verify decoder accepted binary of %d bytes (cap %d)", len(req.Binary), maxBinary)
			}
		}
	})
}
