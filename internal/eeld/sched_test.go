package eeld

import (
	"fmt"
	"sync"
	"testing"
)

// drainOrder runs a single synthetic worker until the queue empties,
// returning the dispatch order of job labels.
func drainOrder(t *testing.T, s *sched, total int) []string {
	t.Helper()
	var order []string
	for i := 0; i < total; i++ {
		job, ok := s.next()
		if !ok {
			t.Fatalf("scheduler closed after %d of %d jobs", i, total)
		}
		job()
		s.done()
		order = append(order, lastLabel)
	}
	return order
}

// lastLabel is set by the label jobs drainOrder runs; single-threaded
// dispatch makes this safe.
var lastLabel string

func labelJob(l string) func() { return func() { lastLabel = l } }

// TestSchedFairness: client A floods the queue before B submits
// anything; with equal weights dispatch still alternates, so B's jobs
// finish at positions 2, 4, 6, ... instead of behind all of A's.
func TestSchedFairness(t *testing.T) {
	s := newSched(100)
	for i := 0; i < 20; i++ {
		if err := s.submit("A", 1, labelJob("A")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.submit("B", 1, labelJob("B")); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(t, s, 25)
	for i := 0; i < 10; i++ {
		want := "A"
		if i%2 == 1 {
			want = "B"
		}
		if order[i] != want {
			t.Fatalf("dispatch %d = %s, want %s (order %v)", i, order[i], want, order[:10])
		}
	}
	for i := 10; i < 25; i++ {
		if order[i] != "A" {
			t.Fatalf("dispatch %d = %s after B drained (order %v)", i, order[i], order)
		}
	}
}

// TestSchedWeights: a weight-2 client dispatches two jobs per turn to
// a weight-1 client's one.
func TestSchedWeights(t *testing.T) {
	s := newSched(100)
	for i := 0; i < 8; i++ {
		if err := s.submit("heavy", 2, labelJob("H")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.submit("light", 1, labelJob("L")); err != nil {
			t.Fatal(err)
		}
	}
	order := drainOrder(t, s, 12)
	want := []string{"H", "H", "L", "H", "H", "L", "H", "H", "L", "H", "H", "L"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}
}

// TestSchedQueueFull: the global bound rejects the overflow
// submission regardless of which client sends it.
func TestSchedQueueFull(t *testing.T) {
	s := newSched(3)
	for i := 0; i < 3; i++ {
		if err := s.submit(fmt.Sprintf("c%d", i), 1, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.submit("c0", 1, func() {}); err != ErrQueueFull {
		t.Fatalf("overflow submit returned %v, want ErrQueueFull", err)
	}
	// Draining one job frees one slot.
	job, _ := s.next()
	job()
	s.done()
	if err := s.submit("c9", 1, func() {}); err != nil {
		t.Fatalf("post-drain submit failed: %v", err)
	}
}

// TestSchedDrain: drain refuses new work, waits for queued and
// in-flight jobs, then unblocks workers.
func TestSchedDrain(t *testing.T) {
	s := newSched(10)
	var mu sync.Mutex
	ran := 0
	for i := 0; i < 5; i++ {
		if err := s.submit("c", 1, func() { mu.Lock(); ran++; mu.Unlock() }); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				job, ok := s.next()
				if !ok {
					return
				}
				job()
				s.done()
			}
		}()
	}
	s.drain()
	if err := s.submit("c", 1, func() {}); err != ErrDraining {
		t.Fatalf("submit during drain returned %v, want ErrDraining", err)
	}
	wg.Wait() // workers exit once closed
	mu.Lock()
	defer mu.Unlock()
	if ran != 5 {
		t.Fatalf("drain completed %d of 5 queued jobs", ran)
	}
}
