// Package eeld is the analysis-and-rewriting service: a long-running
// daemon (cmd/eeld) that serves analyze, instrument, and verify jobs
// over HTTP/JSON, backed by the shared per-routine analysis cache
// (internal/pipeline's in-memory tier plus the persistent DiskStore).
// Submitting the same binary twice — or a binary with one routine
// changed — costs only the changed routines; everything else replays
// from the cache, across clients and across daemon restarts.
//
// The wire protocol is deliberately small: POST a JSON request whose
// "binary" field carries the container bytes (base64 per encoding/json
// convention) to /v1/analyze, /v1/instrument, or /v1/verify; GET
// /v1/stats and /healthz for observability.  Admission control is a
// bounded queue with weighted round-robin fairness across client IDs
// (the X-Eel-Client header; X-Eel-Weight biases a client's share).
package eeld

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Request size and decode limits.  The decoder is strict — unknown
// fields, trailing garbage, and oversized bodies are errors — because
// it fronts a long-running daemon (and is fuzzed as FuzzEeldRequest).
const (
	// DefaultMaxBinaryBytes caps the decoded "binary" payload.
	DefaultMaxBinaryBytes = 16 << 20
	// maxRequestSlack is the allowance for the JSON envelope around
	// the base64 binary (field names, options, base64 expansion).
	maxRequestSlack = 4096
)

// AnalyzeRequest asks for a whole-binary analysis.
type AnalyzeRequest struct {
	// Binary is the executable container (a.out or ELF32) verbatim.
	Binary []byte `json:"binary"`
	// NoLiveness / NoDominators / NoLoops skip the corresponding
	// dataflow stage, mirroring pipeline.Options.
	NoLiveness   bool `json:"no_liveness,omitempty"`
	NoDominators bool `json:"no_dominators,omitempty"`
	NoLoops      bool `json:"no_loops,omitempty"`
}

// RoutineInfo is one routine's analysis summary.
type RoutineInfo struct {
	Name   string `json:"name"`
	Start  uint32 `json:"start"`
	End    uint32 `json:"end"`
	Hidden bool   `json:"hidden,omitempty"`
	Blocks int    `json:"blocks"`
	Edges  int    `json:"edges"`
	Loops  int    `json:"loops,omitempty"`
	Error  string `json:"error,omitempty"`
}

// CacheStats reports how the shared analysis cache served one job.
type CacheStats struct {
	Hits      uint64  `json:"hits"`
	DiskHits  uint64  `json:"disk_hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	HitRate   float64 `json:"hit_rate"`
}

// AnalyzeResponse is /v1/analyze's result.
type AnalyzeResponse struct {
	Routines int           `json:"routines"`
	Hidden   int           `json:"hidden"`
	Errors   int           `json:"errors"`
	WallNS   int64         `json:"wall_ns"`
	Cache    CacheStats    `json:"cache"`
	List     []RoutineInfo `json:"list,omitempty"`
}

// InstrumentRequest asks for qpt-style edge-profiling instrumentation
// and returns the edited binary.
type InstrumentRequest struct {
	Binary []byte `json:"binary"`
	// Mode selects the instrumentation flavor: "full" (default) or
	// "light".
	Mode string `json:"mode,omitempty"`
}

// InstrumentResponse is /v1/instrument's result.
type InstrumentResponse struct {
	// Binary is the edited executable container.
	Binary   []byte     `json:"binary"`
	Routines int        `json:"routines"`
	Hidden   int        `json:"hidden"`
	Counters int        `json:"counters"`
	WallNS   int64      `json:"wall_ns"`
	Cache    CacheStats `json:"cache"`
}

// VerifyRequest asks the daemon to instrument the binary and check
// the edited program behaves identically to the original on the
// bundled emulator (exit code and output compared).
type VerifyRequest struct {
	Binary []byte `json:"binary"`
	// MaxSteps bounds each emulator run (0 = the server default).
	MaxSteps uint64 `json:"max_steps,omitempty"`
}

// VerifyResponse is /v1/verify's result.
type VerifyResponse struct {
	OK           bool       `json:"ok"`
	OrigExit     uint32     `json:"orig_exit"`
	EditedExit   uint32     `json:"edited_exit"`
	OrigInsts    uint64     `json:"orig_insts"`
	EditedInsts  uint64     `json:"edited_insts"`
	OutputEqual  bool       `json:"output_equal"`
	OutputBytes  int        `json:"output_bytes"`
	WallNS       int64      `json:"wall_ns"`
	Cache        CacheStats `json:"cache"`
	Divergence   string     `json:"divergence,omitempty"`
	Instrumented int        `json:"instrumented"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Decode errors distinguished by the server's status-code mapping.
var (
	// ErrTooLarge means the request body exceeded the size cap.
	ErrTooLarge = errors.New("eeld: request too large")
	// ErrBadRequest wraps malformed JSON or invalid field values.
	ErrBadRequest = errors.New("eeld: bad request")
)

// decodeStrict unmarshals JSON from r into v with unknown fields
// rejected, the body size capped, and trailing content refused.
func decodeStrict(r io.Reader, v any, maxBytes int64) error {
	lr := &io.LimitedReader{R: r, N: maxBytes + 1}
	dec := json.NewDecoder(lr)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if lr.N <= 0 {
			return ErrTooLarge
		}
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if lr.N <= 0 {
		return ErrTooLarge
	}
	// Anything after the first value (other than whitespace the
	// decoder already consumed) is an error: one request per body.
	if dec.More() {
		return fmt.Errorf("%w: trailing content after request", ErrBadRequest)
	}
	return nil
}

// DecodeAnalyzeRequest parses and validates an analyze request body.
// maxBinary <= 0 selects DefaultMaxBinaryBytes.
func DecodeAnalyzeRequest(r io.Reader, maxBinary int64) (*AnalyzeRequest, error) {
	if maxBinary <= 0 {
		maxBinary = DefaultMaxBinaryBytes
	}
	var req AnalyzeRequest
	if err := decodeStrict(r, &req, requestCap(maxBinary)); err != nil {
		return nil, err
	}
	if err := checkBinary(req.Binary, maxBinary); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeInstrumentRequest parses and validates an instrument request.
func DecodeInstrumentRequest(r io.Reader, maxBinary int64) (*InstrumentRequest, error) {
	if maxBinary <= 0 {
		maxBinary = DefaultMaxBinaryBytes
	}
	var req InstrumentRequest
	if err := decodeStrict(r, &req, requestCap(maxBinary)); err != nil {
		return nil, err
	}
	if err := checkBinary(req.Binary, maxBinary); err != nil {
		return nil, err
	}
	switch req.Mode {
	case "", "full", "light":
	default:
		return nil, fmt.Errorf("%w: unknown mode %q", ErrBadRequest, req.Mode)
	}
	return &req, nil
}

// DecodeVerifyRequest parses and validates a verify request.
func DecodeVerifyRequest(r io.Reader, maxBinary int64) (*VerifyRequest, error) {
	if maxBinary <= 0 {
		maxBinary = DefaultMaxBinaryBytes
	}
	var req VerifyRequest
	if err := decodeStrict(r, &req, requestCap(maxBinary)); err != nil {
		return nil, err
	}
	if err := checkBinary(req.Binary, maxBinary); err != nil {
		return nil, err
	}
	return &req, nil
}

// requestCap is the raw body cap for a given binary cap: base64
// expands 4/3, plus the JSON envelope.
func requestCap(maxBinary int64) int64 {
	return maxBinary + maxBinary/3 + maxRequestSlack
}

func checkBinary(b []byte, maxBinary int64) error {
	if len(b) == 0 {
		return fmt.Errorf("%w: empty binary", ErrBadRequest)
	}
	if int64(len(b)) > maxBinary {
		return ErrTooLarge
	}
	return nil
}
