package eeld

import (
	"errors"
	"sync"
)

// Admission errors the server maps to HTTP status codes.
var (
	// ErrQueueFull means the bounded global queue is at capacity (429).
	ErrQueueFull = errors.New("eeld: queue full")
	// ErrDraining means the daemon is shutting down gracefully (503).
	ErrDraining = errors.New("eeld: draining")
)

// sched is the admission controller: a bounded global queue of jobs
// partitioned into per-client FIFOs, dispatched by weighted round
// robin so one flooding client cannot starve the rest — with equal
// weights and two active clients, dispatch alternates between them no
// matter how deep the flooder's backlog is.  A client's weight (1..16)
// is how many of its jobs dispatch per round-robin turn.
//
// Jobs are opaque funcs; the scheduler owns ordering only.  Execution
// workers call next() in a loop; drain() stops admission, waits for
// the queue and all in-flight jobs to finish, then releases the
// workers.
type sched struct {
	mu       sync.Mutex
	cond     *sync.Cond
	maxQueue int

	clients map[string]*clientQueue
	// ring is the round-robin order over clients that currently have
	// queued jobs; pos indexes the client whose turn it is, and credit
	// is how many more of its jobs dispatch before the turn passes.
	ring   []*clientQueue
	pos    int
	credit int

	queued   int
	inflight int
	draining bool
	closed   bool
}

type clientQueue struct {
	id     string
	weight int
	jobs   []func()
	ringed bool
}

// maxClientWeight bounds X-Eel-Weight so a client cannot buy the
// whole scheduler.
const maxClientWeight = 16

func newSched(maxQueue int) *sched {
	if maxQueue <= 0 {
		maxQueue = 256
	}
	s := &sched{maxQueue: maxQueue, clients: map[string]*clientQueue{}}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// submit enqueues job for client (creating its FIFO on first use;
// weight is clamped to [1, maxClientWeight] and the latest value
// wins).  It fails fast when the global queue is full or the
// scheduler is draining.
func (s *sched) submit(client string, weight int, job func()) error {
	if weight < 1 {
		weight = 1
	}
	if weight > maxClientWeight {
		weight = maxClientWeight
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if s.queued >= s.maxQueue {
		return ErrQueueFull
	}
	q := s.clients[client]
	if q == nil {
		q = &clientQueue{id: client}
		s.clients[client] = q
	}
	q.weight = weight
	q.jobs = append(q.jobs, job)
	if !q.ringed {
		q.ringed = true
		s.ring = append(s.ring, q)
	}
	s.queued++
	s.cond.Signal()
	return nil
}

// next blocks until a job is available and returns it, or returns
// false when the scheduler has been drained and emptied.  The caller
// must invoke done() after running the job.
func (s *sched) next() (func(), bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.queued > 0 {
			job := s.popLocked()
			s.inflight++
			return job, true
		}
		if s.closed {
			return nil, false
		}
		s.cond.Wait()
	}
}

// popLocked dispatches the next job under weighted round robin.
func (s *sched) popLocked() func() {
	if s.pos >= len(s.ring) {
		s.pos = 0
	}
	// Start a new turn when the current one is spent.
	if s.credit == 0 && len(s.ring) > 0 {
		s.credit = s.ring[s.pos].weight
	}
	// Find a client with work, passing empty turns along the ring.
	for len(s.ring) > 0 {
		q := s.ring[s.pos]
		if len(q.jobs) == 0 {
			// Exhausted client leaves the ring; its turn passes.
			q.ringed = false
			s.ring = append(s.ring[:s.pos], s.ring[s.pos+1:]...)
			if s.pos >= len(s.ring) {
				s.pos = 0
			}
			if len(s.ring) > 0 {
				s.credit = s.ring[s.pos].weight
			}
			continue
		}
		job := q.jobs[0]
		q.jobs = q.jobs[1:]
		s.queued--
		s.credit--
		if len(q.jobs) == 0 {
			// Client is out of work: drop it from the ring now so
			// the next dispatch doesn't spin on an empty queue.
			q.ringed = false
			s.ring = append(s.ring[:s.pos], s.ring[s.pos+1:]...)
			if s.pos >= len(s.ring) {
				s.pos = 0
			}
			s.credit = 0
			if len(s.ring) > 0 {
				s.credit = s.ring[s.pos].weight
			}
		} else if s.credit == 0 {
			// Turn spent: advance to the next client.
			s.pos++
			if s.pos >= len(s.ring) {
				s.pos = 0
			}
			s.credit = s.ring[s.pos].weight
		}
		return job
	}
	panic("eeld: popLocked with empty ring") // unreachable: queued > 0
}

// done records one job's completion.
func (s *sched) done() {
	s.mu.Lock()
	s.inflight--
	if s.inflight == 0 && s.queued == 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// depth reports the queued job count.
func (s *sched) depth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// drain stops admission (submit returns ErrDraining), waits until the
// queue empties and in-flight jobs complete, then releases workers
// blocked in next().
func (s *sched) drain() {
	s.mu.Lock()
	s.draining = true
	for s.queued > 0 || s.inflight > 0 {
		s.cond.Wait()
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}
