package eeld

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync"
	"time"

	_ "eel/internal/aout"
	_ "eel/internal/elf32"

	"eel/internal/binfile"
	"eel/internal/core"
	"eel/internal/obs"
	"eel/internal/pipeline"
	"eel/internal/qpt"
	"eel/internal/sim"
	"eel/internal/telemetry"
)

// Config sizes a Server.  The zero value is serviceable: an ephemeral
// port, an in-memory-only cache, and default bounds everywhere.
type Config struct {
	// Addr is the listen address ("" or ":0" picks an ephemeral port).
	Addr string
	// CacheDir, when non-empty, backs the analysis cache with a
	// persistent DiskStore there, so the cache survives restarts.
	CacheDir string
	// CacheEntries / CacheBytes bound the disk store (0 = defaults);
	// MemEntries bounds the in-memory tier.
	CacheEntries int
	CacheBytes   int64
	MemEntries   int
	// Workers is the job-execution pool size (how many requests run
	// concurrently); PipelineWorkers is each job's analysis pool (0 =
	// GOMAXPROCS).  Default Workers is 4.
	Workers         int
	PipelineWorkers int
	// MaxQueue bounds the admission queue (excess submissions get
	// 429); RequestTimeout bounds one request's queue wait plus
	// execution (default 60s).
	MaxQueue       int
	RequestTimeout time.Duration
	// MaxBinaryBytes caps a submitted binary (0 = 16 MiB).
	MaxBinaryBytes int64
	// MaxVerifySteps bounds each verify-job emulator run (0 = 100M).
	MaxVerifySteps uint64
	// Registry receives the daemon's telemetry (nil = the process
	// default registry).
	Registry *telemetry.Registry
	// Tracer receives request/queue/handler spans (nil = the process
	// active tracer, which may itself be nil — spans then cost one
	// branch).
	Tracer *telemetry.Tracer
	// Logger receives one structured line per request (nil = discard).
	Logger *slog.Logger
}

// Server is the eeld daemon: an HTTP front end over the shared
// analysis cache and the weighted-round-robin job scheduler.
type Server struct {
	cfg   Config
	cache *pipeline.Cache
	disk  *pipeline.DiskStore
	sched *sched
	reg   *telemetry.Registry
	log   *slog.Logger

	requests, completed, failed *telemetry.Counter
	rejected, timeouts          *telemetry.Counter
	latency                     *telemetry.Histogram
	bytesRewritten              *telemetry.Counter

	mux      *http.ServeMux
	listener net.Listener
	httpSrv  *http.Server

	mu       sync.Mutex
	draining bool
	workerWG sync.WaitGroup
	serveErr chan error
}

// New builds a Server (opening the disk store when CacheDir is set)
// and starts its execution workers; call Start to listen, or wire
// Handler into a test server.
func New(cfg Config) (*Server, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 60 * time.Second
	}
	if cfg.MaxBinaryBytes <= 0 {
		cfg.MaxBinaryBytes = DefaultMaxBinaryBytes
	}
	if cfg.MaxVerifySteps == 0 {
		cfg.MaxVerifySteps = 100_000_000
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.Default()
	}
	if reg == nil {
		// /v1/stats reads these counters back, so the daemon always
		// keeps a live registry even when process telemetry is off.
		reg = telemetry.New()
	}
	s := &Server{
		cfg:            cfg,
		cache:          pipeline.NewCache(cfg.MemEntries),
		sched:          newSched(cfg.MaxQueue),
		reg:            reg,
		requests:       reg.Counter("eeld.requests"),
		completed:      reg.Counter("eeld.completed"),
		failed:         reg.Counter("eeld.failed"),
		rejected:       reg.Counter("eeld.rejected"),
		timeouts:       reg.Counter("eeld.timeouts"),
		latency:        reg.Histogram("eeld.latency_ns"),
		bytesRewritten: reg.Counter("eeld.bytes_rewritten"),
		serveErr:       make(chan error, 1),
	}
	if cfg.Logger != nil {
		s.log = cfg.Logger
	} else {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// The flight recorder is always on in the daemon: when a request
	// goes sideways, the last few thousand notable events (deopts,
	// invalidations, admission rejects, corrupt cache drops) are the
	// story, and they are only there if recording never stopped.
	if obs.ActiveFlight() == nil {
		obs.EnableFlight(0)
	}
	if cfg.CacheDir != "" {
		disk, err := pipeline.OpenDiskStore(cfg.CacheDir, cfg.CacheEntries, cfg.CacheBytes)
		if err != nil {
			return nil, err
		}
		s.disk = disk
		s.cache.SetBackend(disk)
	}
	reg.GaugeFunc("eeld.queue_depth", func() int64 { return int64(s.sched.depth()) })
	reg.GaugeFunc("eeld.cache.mem_entries", func() int64 { return int64(s.cache.Len()) })
	if s.disk != nil {
		reg.GaugeFunc("eeld.cache.disk_entries", func() int64 { return int64(s.disk.Len()) })
		reg.GaugeFunc("eeld.cache.disk_bytes", func() int64 { return s.disk.Bytes() })
	}

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", obs.MetricsHandler(s.reg))
	s.mux.Handle("/debug/flight", obs.FlightHandler())
	s.mux.HandleFunc("/v1/analyze", s.job(s.runAnalyze))
	s.mux.HandleFunc("/v1/instrument", s.job(s.runInstrument))
	s.mux.HandleFunc("/v1/verify", s.job(s.runVerify))

	for i := 0; i < cfg.Workers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for {
				job, ok := s.sched.next()
				if !ok {
					return
				}
				job()
				s.sched.done()
			}
		}()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the daemon's telemetry registry — what /metrics
// serves.
func (s *Server) Registry() *telemetry.Registry { return s.reg }

func (s *Server) tracer() *telemetry.Tracer {
	if s.cfg.Tracer != nil {
		return s.cfg.Tracer
	}
	return telemetry.ActiveTracer()
}

// Start listens on the configured address and serves until Drain.
func (s *Server) Start() error {
	addr := s.cfg.Addr
	if addr == "" {
		addr = ":0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.listener = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go func() {
		if err := s.httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.serveErr <- err
		}
	}()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (s *Server) Addr() string {
	if s.listener == nil {
		return ""
	}
	return s.listener.Addr().String()
}

// ServeErr reports an asynchronous Serve failure, if any.
func (s *Server) ServeErr() <-chan error { return s.serveErr }

// Drain performs the graceful shutdown a SIGTERM asks for: stop
// admitting jobs (new submissions get 503), let queued and in-flight
// jobs finish, stop the workers, then close the HTTP server.  The
// disk store needs no close — every entry write is atomic.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.sched.drain()
		s.workerWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		return ctx.Err()
	}
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

// StatsResponse is /v1/stats's body: daemon counters plus both cache
// tiers' lifetime numbers.
type StatsResponse struct {
	Requests  uint64 `json:"requests"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	Rejected  uint64 `json:"rejected"`
	Timeouts  uint64 `json:"timeouts"`
	Queue     int    `json:"queue_depth"`
	Draining  bool   `json:"draining"`

	CacheHits      uint64 `json:"cache_hits"`
	CacheMisses    uint64 `json:"cache_misses"`
	CacheEvictions uint64 `json:"cache_evictions"`
	CacheEntries   int    `json:"cache_entries"`

	DiskEntries   int    `json:"disk_entries,omitempty"`
	DiskBytes     int64  `json:"disk_bytes,omitempty"`
	DiskLoads     uint64 `json:"disk_loads,omitempty"`
	DiskLoadHits  uint64 `json:"disk_load_hits,omitempty"`
	DiskStores    uint64 `json:"disk_stores,omitempty"`
	DiskEvictions uint64 `json:"disk_evictions,omitempty"`
	DiskCorrupt   uint64 `json:"disk_corrupt,omitempty"`

	BytesRewritten uint64 `json:"bytes_rewritten"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	hits, misses, evictions := s.cache.Counters()
	resp := StatsResponse{
		Requests:       s.requests.Value(),
		Completed:      s.completed.Value(),
		Failed:         s.failed.Value(),
		Rejected:       s.rejected.Value(),
		Timeouts:       s.timeouts.Value(),
		Queue:          s.sched.depth(),
		Draining:       s.isDraining(),
		CacheHits:      hits,
		CacheMisses:    misses,
		CacheEvictions: evictions,
		CacheEntries:   s.cache.Len(),
		BytesRewritten: s.bytesRewritten.Value(),
	}
	if s.disk != nil {
		c := s.disk.Counters()
		resp.DiskEntries = s.disk.Len()
		resp.DiskBytes = s.disk.Bytes()
		resp.DiskLoads = c.Loads
		resp.DiskLoadHits = c.LoadHits
		resp.DiskStores = c.Stores
		resp.DiskEvictions = c.Evictions
		resp.DiskCorrupt = c.Corrupt
	}
	writeJSON(w, http.StatusOK, resp)
}

// runner executes one decoded request and returns its response value.
type runner func(ctx context.Context, r *http.Request) (any, error)

// reqSummary is the per-request span summary returned in response
// headers and logged per request.
type reqSummary struct {
	cacheHits      uint64
	cacheMisses    uint64
	bytesRewritten int
}

// summarize pulls the span-summary fields out of a runner's response.
func summarize(resp any) (sum reqSummary) {
	switch v := resp.(type) {
	case *AnalyzeResponse:
		sum.cacheHits = v.Cache.Hits + v.Cache.DiskHits
		sum.cacheMisses = v.Cache.Misses
	case *InstrumentResponse:
		sum.cacheHits = v.Cache.Hits + v.Cache.DiskHits
		sum.cacheMisses = v.Cache.Misses
		sum.bytesRewritten = len(v.Binary)
	case *VerifyResponse:
		sum.cacheHits = v.Cache.Hits + v.Cache.DiskHits
		sum.cacheMisses = v.Cache.Misses
	}
	return sum
}

// Summary response headers, the lightweight alternative to a trace
// viewer: every reply says where its time went.
const (
	HeaderQueueNS        = "X-Eel-Queue-Ns"
	HeaderRunNS          = "X-Eel-Run-Ns"
	HeaderCacheHits      = "X-Eel-Cache-Hits"
	HeaderCacheMisses    = "X-Eel-Cache-Misses"
	HeaderBytesRewritten = "X-Eel-Bytes-Rewritten"
)

func setSummaryHeaders(h http.Header, queueNS, runNS int64, sum reqSummary) {
	h.Set(HeaderQueueNS, strconv.FormatInt(queueNS, 10))
	h.Set(HeaderRunNS, strconv.FormatInt(runNS, 10))
	h.Set(HeaderCacheHits, strconv.FormatUint(sum.cacheHits, 10))
	h.Set(HeaderCacheMisses, strconv.FormatUint(sum.cacheMisses, 10))
	h.Set(HeaderBytesRewritten, strconv.Itoa(sum.bytesRewritten))
}

// job wraps a runner with the daemon's admission control: strict
// method check, client identification, bounded-queue submission with
// weighted round robin, a request timeout spanning queue wait plus
// execution, and uniform error mapping.  It also owns the request's
// observability: the trace is continued (or minted) here, spans cover
// admission, queue wait, and handler execution, and every reply
// carries the X-Eel-Trace plus span-summary headers.
func (s *Server) job(run runner) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.requests.Add(1)

		// Continue the caller's trace or mint a fresh one, and echo
		// the (possibly new) context back immediately — even rejects
		// are correlatable.
		sc, ok := obs.ParseSpanContext(r.Header.Get(obs.TraceHeader))
		if ok {
			sc = sc.Child()
		} else {
			sc = obs.NewSpanContext()
		}
		w.Header().Set(obs.TraceHeader, sc.String())

		tr := s.tracer()
		reqSpan := tr.Begin("eeld.request", "eeld")
		reqSpan.Arg("trace", sc.TraceID())
		reqSpan.Arg("path", r.URL.Path)

		if s.isDraining() {
			s.reject(w, r, sc, http.StatusServiceUnavailable, ErrDraining)
			return
		}
		client := r.Header.Get("X-Eel-Client")
		if client == "" {
			client = "anon"
		}
		weight := 1
		if h := r.Header.Get("X-Eel-Weight"); h != "" {
			if v, err := strconv.Atoi(h); err == nil {
				weight = v
			}
		}
		reqSpan.Arg("client", client)

		ctx, cancel := context.WithTimeout(obs.ContextWith(r.Context(), sc), s.cfg.RequestTimeout)
		defer cancel()
		start := time.Now()

		type outcome struct {
			resp    any
			err     error
			queueNS int64
			runNS   int64
		}
		done := make(chan outcome, 1)
		queueSpan := tr.Begin("eeld.queue", "eeld")
		queueSpan.Arg("trace", sc.TraceID())
		queueSpan.Arg("client", client)
		err := s.sched.submit(client, weight, func() {
			queueNS := time.Since(start).Nanoseconds()
			queueSpan.End()
			// The request may have timed out or disconnected while
			// queued; don't burn a worker on it.
			if ctx.Err() != nil {
				done <- outcome{err: ctx.Err(), queueNS: queueNS}
				return
			}
			handlerSpan := tr.Begin("eeld.handler", "eeld")
			handlerSpan.Arg("trace", sc.TraceID())
			handlerSpan.Arg("path", r.URL.Path)
			runStart := time.Now()
			resp, err := run(ctx, r)
			handlerSpan.End()
			done <- outcome{resp: resp, err: err, queueNS: queueNS, runNS: time.Since(runStart).Nanoseconds()}
		})
		if err != nil {
			status := http.StatusServiceUnavailable
			if errors.Is(err, ErrQueueFull) {
				status = http.StatusTooManyRequests
			}
			s.reject(w, r, sc, status, err)
			return
		}

		var out outcome
		select {
		case out = <-done:
		case <-ctx.Done():
			// The job func checks ctx before running, so an expired
			// request left in the queue completes as a no-op.
			out = outcome{err: ctx.Err(), queueNS: time.Since(start).Nanoseconds()}
		}
		// Observe queue wait + handler run — the same interval the
		// summary headers report — rather than time.Since(start): the
		// latter also counts the done-channel wakeup, which under CPU
		// contention adds tens of ms of goroutine scheduling delay that
		// no client-visible measurement contains, skewing the
		// histogram's percentiles away from the exact ones.
		s.latency.Observe(uint64(out.queueNS + out.runNS))
		sum := summarize(out.resp)
		setSummaryHeaders(w.Header(), out.queueNS, out.runNS, sum)
		status := http.StatusOK
		if out.err != nil {
			status = s.writeRunError(w, out.err)
		} else {
			s.completed.Add(1)
			writeJSON(w, http.StatusOK, out.resp)
		}
		reqSpan.Arg("status", status)
		reqSpan.Arg("queue_ns", out.queueNS)
		reqSpan.Arg("cache_hits", sum.cacheHits)
		reqSpan.End()
		s.log.Info("eeld.request",
			"trace", sc.TraceID(), "client", client, "path", r.URL.Path,
			"status", status, "queue_ns", out.queueNS, "run_ns", out.runNS,
			"cache_hits", sum.cacheHits, "cache_misses", sum.cacheMisses,
			"bytes_rewritten", sum.bytesRewritten)
	}
}

// reject refuses a request at admission (draining, queue full) with
// the matching counter, flight event, and log line.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, sc obs.SpanContext, status int, err error) {
	s.rejected.Add(1)
	obs.Record(obs.EvAdmissionReject, uint64(status), uint64(s.sched.depth()))
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
	s.log.Warn("eeld.reject",
		"trace", sc.TraceID(), "path", r.URL.Path, "status", status, "err", err.Error())
}

func (s *Server) writeRunError(w http.ResponseWriter, err error) int {
	s.failed.Add(1)
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.timeouts.Add(1)
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "request timed out"})
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "request canceled"})
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrTooLarge):
		writeJSON(w, http.StatusRequestEntityTooLarge, ErrorResponse{Error: err.Error()})
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ErrBadRequest):
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return http.StatusBadRequest
	default:
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return http.StatusUnprocessableEntity
	}
}

// open parses and loads a submitted binary.
func (s *Server) open(binary []byte) (*core.Executable, error) {
	f, err := binfile.Read(binary)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	e, err := core.NewExecutable(f)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if err := e.ReadContents(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return e, nil
}

func cacheStats(st pipeline.Stats) CacheStats {
	return CacheStats{
		Hits:      st.CacheHits,
		DiskHits:  st.CacheDiskHits,
		Misses:    st.CacheMisses,
		Evictions: st.CacheEvictions,
		HitRate:   st.CacheHitRate(),
	}
}

func (s *Server) runAnalyze(ctx context.Context, r *http.Request) (any, error) {
	req, err := DecodeAnalyzeRequest(r.Body, s.cfg.MaxBinaryBytes)
	if err != nil {
		return nil, err
	}
	e, err := s.open(req.Binary)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := pipeline.AnalyzeAll(e, pipeline.Options{
		Workers:      s.cfg.PipelineWorkers,
		Cache:        s.cache,
		NoLiveness:   req.NoLiveness,
		NoDominators: req.NoDominators,
		NoLoops:      req.NoLoops,
		Telemetry:    s.reg,
		Tracer:       s.tracer(),
		TraceTag:     obs.FromContext(ctx).TraceID(),
	})
	if err != nil {
		return nil, err
	}
	resp := &AnalyzeResponse{
		Routines: res.Stats.Routines,
		Hidden:   res.Stats.Hidden,
		Errors:   res.Stats.Errors,
		WallNS:   time.Since(start).Nanoseconds(),
		Cache:    cacheStats(res.Stats),
	}
	for _, a := range res.Analyses {
		info := RoutineInfo{
			Name:   a.Routine.Name,
			Start:  a.Routine.Start,
			End:    a.Routine.End,
			Hidden: a.Routine.Hidden,
		}
		if a.Err != nil {
			info.Error = a.Err.Error()
		} else {
			info.Blocks = len(a.Graph.Blocks)
			info.Edges = len(a.Graph.Edges)
			info.Loops = len(a.Loops)
		}
		resp.List = append(resp.List, info)
	}
	return resp, nil
}

// instrumentCommon analyzes and instruments a binary, returning the
// edited container bytes plus counts.  verify reuses it.
func (s *Server) instrumentCommon(ctx context.Context, e *core.Executable, mode qpt.Mode) (*binfile.File, *qpt.Result, pipeline.Stats, error) {
	if mode == qpt.Light {
		e.LightAnalysis = true
		e.Scavenge = false
		e.FoldDelaySlots = false
	}
	res, err := pipeline.AnalyzeAll(e, pipeline.Options{
		Workers:      s.cfg.PipelineWorkers,
		Cache:        s.cache,
		NoDominators: true,
		NoLoops:      true,
		Telemetry:    s.reg,
		Tracer:       s.tracer(),
		TraceTag:     obs.FromContext(ctx).TraceID(),
	})
	if err != nil {
		return nil, nil, pipeline.Stats{}, err
	}
	qres, err := qpt.Instrument(e, mode)
	if err != nil {
		return nil, nil, res.Stats, err
	}
	edited, err := e.BuildEdited()
	if err != nil {
		return nil, nil, res.Stats, err
	}
	return edited, qres, res.Stats, nil
}

func (s *Server) runInstrument(ctx context.Context, r *http.Request) (any, error) {
	req, err := DecodeInstrumentRequest(r.Body, s.cfg.MaxBinaryBytes)
	if err != nil {
		return nil, err
	}
	mode := qpt.Full
	if req.Mode == "light" {
		mode = qpt.Light
	}
	e, err := s.open(req.Binary)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	edited, qres, st, err := s.instrumentCommon(ctx, e, mode)
	if err != nil {
		return nil, err
	}
	out, err := binfile.Write(edited)
	if err != nil {
		return nil, err
	}
	s.bytesRewritten.Add(uint64(len(out)))
	return &InstrumentResponse{
		Binary:   out,
		Routines: qres.RoutinesSeen,
		Hidden:   qres.HiddenSeen,
		Counters: len(qres.Counters),
		WallNS:   time.Since(start).Nanoseconds(),
		Cache:    cacheStats(st),
	}, nil
}

func (s *Server) runVerify(ctx context.Context, r *http.Request) (any, error) {
	req, err := DecodeVerifyRequest(r.Body, s.cfg.MaxBinaryBytes)
	if err != nil {
		return nil, err
	}
	maxSteps := req.MaxSteps
	if maxSteps == 0 || maxSteps > s.cfg.MaxVerifySteps {
		maxSteps = s.cfg.MaxVerifySteps
	}
	orig, err := binfile.Read(req.Binary)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	e, err := s.open(req.Binary)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	edited, qres, st, err := s.instrumentCommon(ctx, e, qpt.Full)
	if err != nil {
		return nil, err
	}

	runOne := func(f *binfile.File) (*sim.CPU, []byte, error) {
		var out bytes.Buffer
		cpu := sim.LoadFile(f, &out)
		// Verify jobs run on the routine tier with synchronous
		// promotion at threshold 1: maximum coverage of the engine the
		// daemon fronts, deterministic compile points, and
		// tier-promotion/deopt events landing in the flight recorder.
		// The threshold must be 1 for self-modifying inputs: their
		// stores invalidate installed programs and reset heat, so any
		// higher threshold never re-reaches the routine tier between
		// invalidations and the deopt path goes unexercised.
		cpu.EnableRoutines = true
		cpu.RoutineSync = true
		cpu.RoutineHotThreshold = 1
		if err := cpu.Run(maxSteps); err != nil {
			return nil, nil, err
		}
		if !cpu.Halted {
			return nil, nil, fmt.Errorf("program did not halt within %d steps", maxSteps)
		}
		return cpu, out.Bytes(), nil
	}
	oCPU, oOut, err := runOne(orig)
	if err != nil {
		return nil, fmt.Errorf("original: %w", err)
	}
	eCPU, eOut, err := runOne(edited)
	if err != nil {
		return nil, fmt.Errorf("edited: %w", err)
	}

	resp := &VerifyResponse{
		OrigExit:     oCPU.ExitCode,
		EditedExit:   eCPU.ExitCode,
		OrigInsts:    oCPU.InstCount,
		EditedInsts:  eCPU.InstCount,
		OutputEqual:  bytes.Equal(oOut, eOut),
		OutputBytes:  len(oOut),
		WallNS:       time.Since(start).Nanoseconds(),
		Cache:        cacheStats(st),
		Instrumented: qres.RoutinesSeen,
	}
	resp.OK = resp.OrigExit == resp.EditedExit && resp.OutputEqual
	if !resp.OK {
		resp.Divergence = fmt.Sprintf("exit %d vs %d, output equal %v",
			resp.OrigExit, resp.EditedExit, resp.OutputEqual)
	}
	return resp, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
