package eeld

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eel/internal/binfile"
	"eel/internal/progen"
	"eel/internal/sim"
)

// genBinary builds a progen workload and serializes its container.
func genBinary(t testing.TB, seed int64, routines int) []byte {
	t.Helper()
	cfg := progen.DefaultConfig(seed)
	cfg.Routines = routines
	p, err := progen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := binfile.Write(p.File)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func newTestServer(t testing.TB, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	client := &Client{Base: hs.URL, Name: "test"}
	return srv, client, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
		hs.Close()
	}
}

// TestServerAnalyzeInstrumentVerify is the end-to-end round trip: the
// same binary analyzed, instrumented (edited program runs and behaves
// identically), and verified through the daemon, with the second
// request a warm-cache replay.
func TestServerAnalyzeInstrumentVerify(t *testing.T) {
	_, client, shutdown := newTestServer(t, Config{Workers: 2})
	defer shutdown()
	ctx := context.Background()
	bin := genBinary(t, 7, 20)

	ar, err := client.Analyze(ctx, &AnalyzeRequest{Binary: bin})
	if err != nil {
		t.Fatal(err)
	}
	if ar.Routines == 0 || ar.Errors != 0 {
		t.Fatalf("analyze: %d routines, %d errors", ar.Routines, ar.Errors)
	}
	if len(ar.List) != ar.Routines {
		t.Fatalf("analyze: list has %d entries for %d routines", len(ar.List), ar.Routines)
	}
	if ar.Cache.Misses == 0 {
		t.Fatal("cold analyze reported no cache misses")
	}

	ir, err := client.Instrument(ctx, &InstrumentRequest{Binary: bin})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Counters == 0 || len(ir.Binary) == 0 {
		t.Fatalf("instrument: %d counters, %d bytes", ir.Counters, len(ir.Binary))
	}
	// The instrument run shares the analyze run's cache entries.
	if ir.Cache.Hits == 0 {
		t.Error("instrument after analyze reported no cache hits")
	}

	// The edited binary must behave like the original.
	origF, err := binfile.Read(bin)
	if err != nil {
		t.Fatal(err)
	}
	editedF, err := binfile.Read(ir.Binary)
	if err != nil {
		t.Fatal(err)
	}
	var oOut, eOut bytes.Buffer
	oCPU := sim.LoadFile(origF, &oOut)
	if err := oCPU.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	eCPU := sim.LoadFile(editedF, &eOut)
	if err := eCPU.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if oCPU.ExitCode != eCPU.ExitCode || !bytes.Equal(oOut.Bytes(), eOut.Bytes()) {
		t.Fatalf("edited binary diverged: exit %d vs %d", oCPU.ExitCode, eCPU.ExitCode)
	}

	vr, err := client.Verify(ctx, &VerifyRequest{Binary: bin})
	if err != nil {
		t.Fatal(err)
	}
	if !vr.OK {
		t.Fatalf("verify failed: %s", vr.Divergence)
	}
	if vr.EditedInsts <= vr.OrigInsts {
		t.Errorf("instrumented run executed %d insts, original %d — counters not running?",
			vr.EditedInsts, vr.OrigInsts)
	}

	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 3 || st.Failed != 0 {
		t.Errorf("stats: completed %d failed %d, want 3/0", st.Completed, st.Failed)
	}
	if st.BytesRewritten == 0 {
		t.Error("stats: no bytes rewritten after instrument")
	}
}

// TestServerWarmRestartCache is the tentpole property end to end: a
// daemon restarted on the same cache directory serves a previously
// seen corpus ≥ 90% from the persistent cache.
func TestServerWarmRestartCache(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	var bins [][]byte
	for seed := int64(1); seed <= 3; seed++ {
		bins = append(bins, genBinary(t, seed, 12))
	}

	srv1, client1, _ := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	for _, bin := range bins {
		if _, err := client1.Analyze(ctx, &AnalyzeRequest{Binary: bin}); err != nil {
			t.Fatal(err)
		}
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv1.Drain(dctx); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh server (empty in-memory tier), same directory.
	_, client2, shutdown2 := newTestServer(t, Config{Workers: 2, CacheDir: dir})
	defer shutdown2()
	var hits, misses, diskHits uint64
	for _, bin := range bins {
		ar, err := client2.Analyze(ctx, &AnalyzeRequest{Binary: bin})
		if err != nil {
			t.Fatal(err)
		}
		hits += ar.Cache.Hits
		misses += ar.Cache.Misses
		diskHits += ar.Cache.DiskHits
	}
	total := hits + misses
	if total == 0 {
		t.Fatal("warm corpus produced no cache traffic")
	}
	if rate := float64(hits) / float64(total); rate < 0.9 {
		t.Errorf("warm-restart hit rate %.1f%% (hits %d, misses %d), want >= 90%%",
			100*rate, hits, misses)
	}
	if diskHits == 0 {
		t.Error("warm restart served no hits from disk")
	}
}

// TestServerQueueFull: with the lone worker occupied and the bounded
// queue at capacity, a new request is rejected with 429.
func TestServerQueueFull(t *testing.T) {
	srv, client, shutdown := newTestServer(t, Config{Workers: 1, MaxQueue: 1})
	ctx := context.Background()

	started := make(chan struct{})
	release := make(chan struct{})
	if err := srv.sched.submit("holder", 1, func() { close(started); <-release }); err != nil {
		t.Fatal(err)
	}
	<-started // the only worker is now busy
	if err := srv.sched.submit("filler", 1, func() {}); err != nil {
		t.Fatal(err) // fills the 1-deep queue
	}

	_, err := client.Analyze(ctx, &AnalyzeRequest{Binary: genBinary(t, 5, 4)})
	var se *StatusError
	if !asStatus(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded analyze returned %v, want 429", err)
	}

	close(release)
	shutdown()
}

// TestServerDrainRejects: after Drain begins, health reports 503 and
// job submissions are refused, while already-queued work completes.
func TestServerDrain(t *testing.T) {
	srv, client, _ := newTestServer(t, Config{Workers: 2})
	ctx := context.Background()
	bin := genBinary(t, 9, 8)
	if _, err := client.Analyze(ctx, &AnalyzeRequest{Binary: bin}); err != nil {
		t.Fatal(err)
	}
	dctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		t.Fatal(err)
	}
	if err := client.Health(ctx); err == nil {
		t.Error("health succeeded on a drained server")
	}
	_, err := client.Analyze(ctx, &AnalyzeRequest{Binary: bin})
	var se *StatusError
	if !asStatus(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("analyze on drained server returned %v, want 503", err)
	}
}

// TestServerBadRequests: malformed bodies map to 4xx, never 5xx or a
// daemon crash.
func TestServerBadRequests(t *testing.T) {
	_, client, shutdown := newTestServer(t, Config{Workers: 1, MaxBinaryBytes: 1 << 16})
	defer shutdown()
	hc := client.httpClient()

	cases := []struct {
		name, body string
		status     int
	}{
		{"empty body", "", http.StatusBadRequest},
		{"not json", "hello", http.StatusBadRequest},
		{"unknown field", `{"binary":"AAAA","bogus":1}`, http.StatusBadRequest},
		{"empty binary", `{"binary":""}`, http.StatusBadRequest},
		{"trailing garbage", `{"binary":"AAAA"} extra`, http.StatusBadRequest},
		{"not a container", `{"binary":"AAAA"}`, http.StatusBadRequest},
		{"oversized", `{"binary":"` + strings.Repeat("A", 1<<17) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		res, err := hc.Post(client.Base+"/v1/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res.Body.Close()
		if res.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, res.StatusCode, tc.status)
		}
	}
}

func asStatus(err error, se **StatusError) bool { return errors.As(err, se) }
