package eeld

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// Client is the thin HTTP client behind cmd/eelctl and cmd/eelload.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8723".
	Base string
	// Name identifies this client to the fairness scheduler (the
	// X-Eel-Client header); Weight biases its round-robin share
	// (0 means server default).
	Name   string
	Weight int
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
}

// StatusError is a non-2xx server reply.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("eeld: server returned %d: %s", e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends req as JSON and decodes the 200 body into resp.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	if c.Name != "" {
		hr.Header.Set("X-Eel-Client", c.Name)
	}
	if c.Weight > 0 {
		hr.Header.Set("X-Eel-Weight", strconv.Itoa(c.Weight))
	}
	res, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return readError(res)
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

func readError(res *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return &StatusError{Code: res.StatusCode, Message: er.Error}
	}
	return &StatusError{Code: res.StatusCode, Message: string(bytes.TrimSpace(data))}
}

// Analyze submits a binary for whole-program analysis.
func (c *Client) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	var resp AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Instrument submits a binary for qpt instrumentation and returns the
// edited container.
func (c *Client) Instrument(ctx context.Context, req *InstrumentRequest) (*InstrumentResponse, error) {
	var resp InstrumentResponse
	if err := c.post(ctx, "/v1/instrument", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Verify submits a binary for instrument-and-compare verification.
func (c *Client) Verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, error) {
	var resp VerifyResponse
	if err := c.post(ctx, "/v1/verify", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, readError(res)
	}
	var resp StatsResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health checks the daemon's liveness; it returns nil when the
// daemon is up and accepting work.
func (c *Client) Health(ctx context.Context) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return readError(res)
	}
	return nil
}
