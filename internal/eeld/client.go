package eeld

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"eel/internal/obs"
)

// Client is the thin HTTP client behind cmd/eelctl and cmd/eelload.
type Client struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8723".
	Base string
	// Name identifies this client to the fairness scheduler (the
	// X-Eel-Client header); Weight biases its round-robin share
	// (0 means server default).
	Name   string
	Weight int
	// HTTP overrides the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// OnSummary, when set, receives the per-request span summary the
	// server returns in response headers (including the trace ID this
	// client minted), one call per completed request.
	OnSummary func(RequestSummary)
}

// RequestSummary is the client-side view of one request's span
// summary: the trace context minted for the request plus the
// server-reported timing and cache breakdown.
type RequestSummary struct {
	// Trace is the context this client sent; ServerTrace the (child)
	// context the server echoed back, sharing Trace's trace ID.
	Trace       obs.SpanContext
	ServerTrace string
	Path        string
	Status      int
	QueueNS     int64
	RunNS       int64
	CacheHits   uint64
	CacheMisses uint64
	BytesOut    int64
}

// StatusError is a non-2xx server reply.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("eeld: server returned %d: %s", e.Code, e.Message)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// post sends req as JSON and decodes the 200 body into resp.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hr.Header.Set("Content-Type", "application/json")
	if c.Name != "" {
		hr.Header.Set("X-Eel-Client", c.Name)
	}
	if c.Weight > 0 {
		hr.Header.Set("X-Eel-Weight", strconv.Itoa(c.Weight))
	}
	// Mint a trace for this request; the server continues it across
	// queue wait, handler, and pipeline and echoes it back.
	sc := obs.NewSpanContext()
	hr.Header.Set(obs.TraceHeader, sc.String())
	res, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if c.OnSummary != nil {
		c.OnSummary(RequestSummary{
			Trace:       sc,
			ServerTrace: res.Header.Get(obs.TraceHeader),
			Path:        path,
			Status:      res.StatusCode,
			QueueNS:     headerInt(res.Header, HeaderQueueNS),
			RunNS:       headerInt(res.Header, HeaderRunNS),
			CacheHits:   uint64(headerInt(res.Header, HeaderCacheHits)),
			CacheMisses: uint64(headerInt(res.Header, HeaderCacheMisses)),
			BytesOut:    headerInt(res.Header, HeaderBytesRewritten),
		})
	}
	if res.StatusCode != http.StatusOK {
		return readError(res)
	}
	return json.NewDecoder(res.Body).Decode(resp)
}

func headerInt(h http.Header, name string) int64 {
	v, _ := strconv.ParseInt(h.Get(name), 10, 64)
	return v
}

func readError(res *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(res.Body, 4096))
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return &StatusError{Code: res.StatusCode, Message: er.Error}
	}
	return &StatusError{Code: res.StatusCode, Message: string(bytes.TrimSpace(data))}
}

// Analyze submits a binary for whole-program analysis.
func (c *Client) Analyze(ctx context.Context, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	var resp AnalyzeResponse
	if err := c.post(ctx, "/v1/analyze", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Instrument submits a binary for qpt instrumentation and returns the
// edited container.
func (c *Client) Instrument(ctx context.Context, req *InstrumentRequest) (*InstrumentResponse, error) {
	var resp InstrumentResponse
	if err := c.post(ctx, "/v1/instrument", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Verify submits a binary for instrument-and-compare verification.
func (c *Client) Verify(ctx context.Context, req *VerifyRequest) (*VerifyResponse, error) {
	var resp VerifyResponse
	if err := c.post(ctx, "/v1/verify", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the daemon's counters.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.httpClient().Do(hr)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return nil, readError(res)
	}
	var resp StatsResponse
	if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health checks the daemon's liveness; it returns nil when the
// daemon is up and accepting work.
func (c *Client) Health(ctx context.Context) error {
	hr, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	res, err := c.httpClient().Do(hr)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		return readError(res)
	}
	return nil
}
