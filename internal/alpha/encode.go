package alpha

import "fmt"

// Encoding helpers build Alpha instruction words from the compiled
// description's field layout — the same single-source-of-truth idiom
// as the SPARC and MIPS encoders.

func mustField(name string) func(word, v uint32) uint32 {
	f, ok := desc.Field(name)
	if !ok {
		panic("alpha: missing field " + name)
	}
	return f.Insert
}

var (
	insRA      = mustField("ra")
	insRB      = mustField("rb")
	insRC      = mustField("rc")
	insLitflag = mustField("litflag")
	insLit     = mustField("lit")
	insBdisp   = mustField("bdisp")
	insMdisp   = mustField("mdisp")
)

// matchWord returns the fixed encoding bits of a named instruction.
func matchWord(name string) (uint32, error) {
	def, ok := desc.Lookup(name)
	if !ok {
		return 0, fmt.Errorf("alpha: unknown instruction %q", name)
	}
	return def.Match, nil
}

func regField(r uint32) (uint32, error) {
	if r >= 32 {
		return 0, fmt.Errorf("alpha: $%d is not a general register", r)
	}
	return r, nil
}

// EncodeOp encodes the register form of an operate instruction:
// name ra, rb, rc.
func EncodeOp(name string, ra, rb, rc uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	for _, r := range []uint32{ra, rb, rc} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insRC(insRB(insRA(w, ra), rb), rc), nil
}

// EncodeOpLit encodes the literal form of an operate instruction:
// name ra, lit, rc with lit in [0, 255].
func EncodeOpLit(name string, ra uint32, lit uint32, rc uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if lit > 255 {
		return 0, fmt.Errorf("alpha: literal %d out of 8-bit range", lit)
	}
	for _, r := range []uint32{ra, rc} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insRC(insLit(insLitflag(insRA(w, ra), 1), lit), rc), nil
}

// EncodeMem encodes a memory-format instruction (lda, ldah, ldl, ldq,
// stl, stq): name ra, disp(rb) with disp the sign-extended mdisp16.
func EncodeMem(name string, ra, rb uint32, disp int32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if disp < -(1<<15) || disp >= 1<<15 {
		return 0, fmt.Errorf("alpha: displacement %d out of mdisp16 range", disp)
	}
	for _, r := range []uint32{ra, rb} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insMdisp(insRB(insRA(w, ra), rb), uint32(disp)&0xffff), nil
}

// EncodeBranch encodes a branch-format instruction (br, bsr, beq,
// bne, blt, ble, bgt, bge): name ra, disp with disp in instruction
// words from the next pc (target = pc + 4 + 4*disp), signed 21 bits.
func EncodeBranch(name string, ra uint32, dispWords int32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	if dispWords < -(1<<20) || dispWords >= 1<<20 {
		return 0, fmt.Errorf("alpha: branch displacement %d words exceeds bdisp21", dispWords)
	}
	if _, err := regField(ra); err != nil {
		return 0, err
	}
	return insBdisp(insRA(w, ra), uint32(dispWords)&0x1fffff), nil
}

// EncodeJump encodes a jump-format instruction (jmpj, jsr, retj):
// name ra, (rb).
func EncodeJump(name string, ra, rb uint32) (uint32, error) {
	w, err := matchWord(name)
	if err != nil {
		return 0, err
	}
	for _, r := range []uint32{ra, rb} {
		if _, err := regField(r); err != nil {
			return 0, err
		}
	}
	return insRB(insRA(w, ra), rb), nil
}

// EncodeCallPal encodes call_pal with the given function code.
func EncodeCallPal(code uint32) (uint32, error) {
	w, err := matchWord("call_pal")
	if err != nil {
		return 0, err
	}
	if code >= 1<<16 {
		return 0, fmt.Errorf("alpha: PAL code %#x out of mdisp range", code)
	}
	return insMdisp(w, code), nil
}

// Nop returns a canonical no-op (bis $31, $31, $31).
func Nop() uint32 {
	w, _ := EncodeOp("bis", 31, 31, 31)
	return w
}
