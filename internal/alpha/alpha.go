// Package alpha provides a third spawn machine description — a
// Digital-Alpha-like 64-bit RISC — completing the paper's §4 trio
// ("a spawn description ... of the Digital Alpha architecture is 138
// lines").  Alpha differs from SPARC and MIPS in ways that exercise
// the description compiler from yet another angle: 64-bit registers,
// *no* delay slots (branches take effect immediately, so spawn must
// derive DelaySlots()==0 from the single-step semantics), a
// zero register at the top of the file (R31), and
// displacement-encoded memory instructions.
package alpha

import (
	"fmt"

	"eel/internal/machine"
	"eel/internal/spawn"
)

// DescriptionSource is the spawn description for the Alpha-like
// machine.
const DescriptionSource = `
machine alpha64e

instruction{32} fields
  opcode 26:31, ra 21:25, rb 16:20, rc 0:4,
  func7 5:11, litflag 12:12, lit 13:20,
  bdisp 0:20, mdisp 0:15, jdisp 0:13, jkind 14:15

register integer{64} R[32]
register integer{64} pc
zero is R[31]

// ---- Encodings ----

pat call_pal is opcode=0
pat lda is opcode=0b001000
pat ldah is opcode=0b001001
pat [ ldl ldq ] is opcode=[0b101000 0b101001]
pat [ stl stq ] is opcode=[0b101100 0b101101]

pat [ addl subl ] is opcode=0b010000 && func7=[0b0000000 0b0001001]
pat [ and bis xor ] is opcode=0b010001 && func7=[0b0000000 0b0100000 0b1000000]
pat [ sll srl ] is opcode=0b010010 && func7=[0b0111001 0b0110100]
pat cmpeq is opcode=0b010000 && func7=0b0101101
pat cmplt is opcode=0b010000 && func7=0b1001101

pat jmpj is opcode=0b011010 && jkind=0
pat jsr is opcode=0b011010 && jkind=1
pat retj is opcode=0b011010 && jkind=2

pat br is opcode=0b110000
pat bsr is opcode=0b110100
pat [ beq bne blt ble bgt bge ] is opcode=[0b111001 0b111101 0b111010 0b111011 0b111111 0b111110]

// ---- Semantics ----
// No semicolons in control transfers: Alpha has no delay slots, so
// pc assignments are immediate-step and spawn derives DelaySlots()=0.

val opb is litflag = 1 ? lit : R[rb]
val btgt is pc + 4 + shl(sex(bdisp), 2)
val cond is \t.((t R[ra]) ? pc := btgt)

sem call_pal is trap(mdisp)
sem lda is R[ra] := R[rb] + sex(mdisp)
sem ldah is R[ra] := R[rb] + shl(sex(mdisp), 16)
sem ldl is R[ra] := M[R[rb] + sex(mdisp)]{4}
sem ldq is R[ra] := M[R[rb] + sex(mdisp)]{8}
sem stl is M[R[rb] + sex(mdisp)]{4} := R[ra]
sem stq is M[R[rb] + sex(mdisp)]{8} := R[ra]

sem addl is R[rc] := R[ra] + opb
sem subl is R[rc] := R[ra] - opb
sem and is R[rc] := R[ra] & opb
sem bis is R[rc] := R[ra] | opb
sem xor is R[rc] := R[ra] ^ opb
sem sll is R[rc] := R[ra] << (opb & 63)
sem srl is R[rc] := R[ra] >> (opb & 63)
sem cmpeq is R[rc] := R[ra] == opb ? 1 : 0
sem cmplt is R[rc] := R[ra] < opb ? 1 : 0

sem jmpj is pc := R[rb] & ~3
sem jsr is R[ra] := pc + 4, pc := R[rb] & ~3
sem retj is pc := R[rb] & ~3

sem br is R[ra] := pc + 4, pc := btgt
sem bsr is R[ra] := pc + 4, pc := btgt

sem beq is (R[ra] == 0) ? pc := btgt
sem bne is (R[ra] != 0) ? pc := btgt
sem blt is (R[ra] < 0) ? pc := btgt
sem ble is (R[ra] <= 0) ? pc := btgt
sem bgt is (R[ra] > 0) ? pc := btgt
sem bge is (R[ra] >= 0) ? pc := btgt
`

var desc = spawn.MustParseDesc(DescriptionSource)

func init() {
	machine.RegisterArch(machine.ArchInfo{
		Name:       "alpha64e",
		Aliases:    []string{"alpha"},
		NewDecoder: func() machine.Decoder { return NewDecoder() },
		Trap: machine.TrapModel{
			Code:     0x83,               // call_pal callsys
			NumReg:   0,                  // $v0
			Args:     [3]int{16, 17, 18}, // $a0..$a2
			Ret:      0,
			SysExit:  1,
			SysWrite: 4,
		},
	})
}

// Desc returns the compiled Alpha description.
func Desc() *spawn.Desc { return desc }

// NewDecoder returns a decoder for the Alpha-like machine.
func NewDecoder() *spawn.TableDecoder {
	return spawn.NewDecoder(desc, Glue, RegName)
}

// Glue resolves Alpha's conventions: jsr links through ra (usually
// R26); ret through the same register is a return; br with ra=R31 is
// a plain branch, with a real ra it is "branch and link" (a call).
func Glue(d *spawn.Desc, def *spawn.InstDef, spec *machine.InstSpec) {
	get := func(name string) uint32 {
		for _, f := range spec.Fields {
			if f.Name == name {
				return f.Val
			}
		}
		return 0
	}
	switch def.Name {
	case "retj":
		spec.Cat = machine.CatReturn
	case "jsr":
		spec.Cat = machine.CatCallIndirect
	case "br":
		if get("ra") != 31 {
			spec.Cat = machine.CatCallDirect
		}
	}
}

// RegName renders registers in Alpha syntax.
func RegName(r machine.Reg) string {
	switch {
	case r < 32:
		return fmt.Sprintf("$%d", r)
	case r == machine.RegPC:
		return "$pc"
	}
	return fmt.Sprintf("$r%d", r)
}
