package alpha

import (
	"testing"

	"eel/internal/machine"
)

func enc(t *testing.T, fields map[string]uint32) uint32 {
	t.Helper()
	var w uint32
	for name, v := range fields {
		f, ok := Desc().Field(name)
		if !ok {
			t.Fatalf("no field %q", name)
		}
		w = f.Insert(w, v)
	}
	return w
}

func TestDescriptionCompiles(t *testing.T) {
	if Desc().MachineName != "alpha64e" {
		t.Fatalf("name = %q", Desc().MachineName)
	}
	if Desc().SourceLines > 150 {
		t.Errorf("description is %d lines; the paper's Alpha was 138", Desc().SourceLines)
	}
}

func TestNoDelaySlots(t *testing.T) {
	// Alpha has no delayed branches: spawn must derive zero slots
	// for every control transfer.
	for _, def := range Desc().Insts {
		if def.Info.DelaySlots != 0 {
			t.Errorf("%s has %d delay slots; Alpha has none", def.Name, def.Info.DelaySlots)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	dec := NewDecoder()
	beq := dec.Decode(enc(t, map[string]uint32{"opcode": 0b111001, "ra": 3, "bdisp": 8}))
	if beq.Category() != machine.CatBranch {
		t.Fatalf("beq = %s", beq.Category())
	}
	if !beq.Reads().Has(3) {
		t.Errorf("beq reads = %s (compares ra directly)", beq.Reads())
	}
	if tgt, ok := beq.StaticTarget(0x1000); !ok || tgt != 0x1000+4+32 {
		t.Errorf("beq target = %#x ok=%v", tgt, ok)
	}
}

func TestBrLinkConventions(t *testing.T) {
	dec := NewDecoder()
	// br $31, target: a plain jump (link into the zero register).
	plain := dec.Decode(enc(t, map[string]uint32{"opcode": 0b110000, "ra": 31, "bdisp": 4}))
	if plain.Category() != machine.CatJumpDirect {
		t.Errorf("br $31 = %s", plain.Category())
	}
	// bsr $26, target: a call.
	call := dec.Decode(enc(t, map[string]uint32{"opcode": 0b110100, "ra": 26, "bdisp": 4}))
	if call.Category() != machine.CatCallDirect {
		t.Errorf("bsr = %s", call.Category())
	}
	if !call.Writes().Has(26) {
		t.Errorf("bsr writes = %s", call.Writes())
	}
}

func TestJumpGroup(t *testing.T) {
	dec := NewDecoder()
	ret := dec.Decode(enc(t, map[string]uint32{"opcode": 0b011010, "jkind": 2, "rb": 26}))
	if ret.Category() != machine.CatReturn {
		t.Errorf("ret = %s", ret.Category())
	}
	jsr := dec.Decode(enc(t, map[string]uint32{"opcode": 0b011010, "jkind": 1, "ra": 26, "rb": 4}))
	if jsr.Category() != machine.CatCallIndirect {
		t.Errorf("jsr = %s", jsr.Category())
	}
	jmp := dec.Decode(enc(t, map[string]uint32{"opcode": 0b011010, "jkind": 0, "ra": 31, "rb": 4}))
	if jmp.Category() != machine.CatJumpIndirect {
		t.Errorf("jmp = %s", jmp.Category())
	}
}

func TestMemoryWidths(t *testing.T) {
	dec := NewDecoder()
	ldq := dec.Decode(enc(t, map[string]uint32{"opcode": 0b101001, "ra": 1, "rb": 2, "mdisp": 16}))
	if ldq.Category() != machine.CatLoad || ldq.MemWidth() != 8 {
		t.Errorf("ldq: %s width %d", ldq.Category(), ldq.MemWidth())
	}
	stl := dec.Decode(enc(t, map[string]uint32{"opcode": 0b101100, "ra": 1, "rb": 2}))
	if stl.Category() != machine.CatStore || stl.MemWidth() != 4 {
		t.Errorf("stl: %s width %d", stl.Category(), stl.MemWidth())
	}
	// lda is pure arithmetic despite its memory-format encoding.
	lda := dec.Decode(enc(t, map[string]uint32{"opcode": 0b001000, "ra": 1, "rb": 2, "mdisp": 8}))
	if lda.Category() != machine.CatCompute {
		t.Errorf("lda: %s", lda.Category())
	}
}

func TestZeroRegister(t *testing.T) {
	dec := NewDecoder()
	// addl $31, $31, $5: reads nothing.
	w := enc(t, map[string]uint32{"opcode": 0b010000, "ra": 31, "rb": 31, "rc": 5})
	inst := dec.Decode(w)
	if !inst.Reads().IsEmpty() || !inst.Writes().Has(5) {
		t.Errorf("reads=%s writes=%s", inst.Reads(), inst.Writes())
	}
}

func TestCallPal(t *testing.T) {
	dec := NewDecoder()
	if c := dec.Decode(enc(t, map[string]uint32{"opcode": 0})).Category(); c != machine.CatSystem {
		t.Errorf("call_pal = %s", c)
	}
}
