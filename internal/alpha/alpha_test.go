package alpha

import (
	"testing"

	"eel/internal/machine"
)

func enc(t *testing.T, fields map[string]uint32) uint32 {
	t.Helper()
	var w uint32
	for name, v := range fields {
		f, ok := Desc().Field(name)
		if !ok {
			t.Fatalf("no field %q", name)
		}
		w = f.Insert(w, v)
	}
	return w
}

func TestDescriptionCompiles(t *testing.T) {
	if Desc().MachineName != "alpha64e" {
		t.Fatalf("name = %q", Desc().MachineName)
	}
	if Desc().SourceLines > 150 {
		t.Errorf("description is %d lines; the paper's Alpha was 138", Desc().SourceLines)
	}
}

func TestNoDelaySlots(t *testing.T) {
	// Alpha has no delayed branches: spawn must derive zero slots
	// for every control transfer.
	for _, def := range Desc().Insts {
		if def.Info.DelaySlots != 0 {
			t.Errorf("%s has %d delay slots; Alpha has none", def.Name, def.Info.DelaySlots)
		}
	}
}

func TestBranchClassification(t *testing.T) {
	dec := NewDecoder()
	beq := dec.Decode(enc(t, map[string]uint32{"opcode": 0b111001, "ra": 3, "bdisp": 8}))
	if beq.Category() != machine.CatBranch {
		t.Fatalf("beq = %s", beq.Category())
	}
	if !beq.Reads().Has(3) {
		t.Errorf("beq reads = %s (compares ra directly)", beq.Reads())
	}
	if tgt, ok := beq.StaticTarget(0x1000); !ok || tgt != 0x1000+4+32 {
		t.Errorf("beq target = %#x ok=%v", tgt, ok)
	}
}

func TestBrLinkConventions(t *testing.T) {
	dec := NewDecoder()
	// br $31, target: a plain jump (link into the zero register).
	plain := dec.Decode(enc(t, map[string]uint32{"opcode": 0b110000, "ra": 31, "bdisp": 4}))
	if plain.Category() != machine.CatJumpDirect {
		t.Errorf("br $31 = %s", plain.Category())
	}
	// bsr $26, target: a call.
	call := dec.Decode(enc(t, map[string]uint32{"opcode": 0b110100, "ra": 26, "bdisp": 4}))
	if call.Category() != machine.CatCallDirect {
		t.Errorf("bsr = %s", call.Category())
	}
	if !call.Writes().Has(26) {
		t.Errorf("bsr writes = %s", call.Writes())
	}
}

func TestJumpGroup(t *testing.T) {
	dec := NewDecoder()
	ret := dec.Decode(enc(t, map[string]uint32{"opcode": 0b011010, "jkind": 2, "rb": 26}))
	if ret.Category() != machine.CatReturn {
		t.Errorf("ret = %s", ret.Category())
	}
	jsr := dec.Decode(enc(t, map[string]uint32{"opcode": 0b011010, "jkind": 1, "ra": 26, "rb": 4}))
	if jsr.Category() != machine.CatCallIndirect {
		t.Errorf("jsr = %s", jsr.Category())
	}
	jmp := dec.Decode(enc(t, map[string]uint32{"opcode": 0b011010, "jkind": 0, "ra": 31, "rb": 4}))
	if jmp.Category() != machine.CatJumpIndirect {
		t.Errorf("jmp = %s", jmp.Category())
	}
}

func TestMemoryWidths(t *testing.T) {
	dec := NewDecoder()
	ldq := dec.Decode(enc(t, map[string]uint32{"opcode": 0b101001, "ra": 1, "rb": 2, "mdisp": 16}))
	if ldq.Category() != machine.CatLoad || ldq.MemWidth() != 8 {
		t.Errorf("ldq: %s width %d", ldq.Category(), ldq.MemWidth())
	}
	stl := dec.Decode(enc(t, map[string]uint32{"opcode": 0b101100, "ra": 1, "rb": 2}))
	if stl.Category() != machine.CatStore || stl.MemWidth() != 4 {
		t.Errorf("stl: %s width %d", stl.Category(), stl.MemWidth())
	}
	// lda is pure arithmetic despite its memory-format encoding.
	lda := dec.Decode(enc(t, map[string]uint32{"opcode": 0b001000, "ra": 1, "rb": 2, "mdisp": 8}))
	if lda.Category() != machine.CatCompute {
		t.Errorf("lda: %s", lda.Category())
	}
}

func TestZeroRegister(t *testing.T) {
	dec := NewDecoder()
	// addl $31, $31, $5: reads nothing.
	w := enc(t, map[string]uint32{"opcode": 0b010000, "ra": 31, "rb": 31, "rc": 5})
	inst := dec.Decode(w)
	if !inst.Reads().IsEmpty() || !inst.Writes().Has(5) {
		t.Errorf("reads=%s writes=%s", inst.Reads(), inst.Writes())
	}
}

func TestCallPal(t *testing.T) {
	dec := NewDecoder()
	if c := dec.Decode(enc(t, map[string]uint32{"opcode": 0})).Category(); c != machine.CatSystem {
		t.Errorf("call_pal = %s", c)
	}
}

// signExt sign-extends a raw field value from the given bit width.
func signExt(v uint32, bits uint) int32 {
	shift := 32 - bits
	return int32(v<<shift) >> shift
}

func fieldOf(t *testing.T, w uint32, name string) uint32 {
	t.Helper()
	inst := NewDecoder().Decode(w)
	if !inst.Valid() {
		t.Fatalf("word %08x does not decode", w)
	}
	v, ok := inst.Field(name)
	if !ok {
		t.Fatalf("decoded %s has no %s field", inst.Name(), name)
	}
	return v
}

// TestEncodeDecodeBoundarySweep is the per-ISA port of the SPARC fuzz
// oracle's deterministic boundary sweep (see the MIPS twin): signed
// field extremes must round-trip exactly and out-of-range operands
// must be rejected by the encoder, never silently truncated.
func TestEncodeDecodeBoundarySweep(t *testing.T) {
	// mdisp16: memory-format displacements (lda shares the format).
	for _, name := range []string{"lda", "ldah", "ldl", "ldq", "stl", "stq"} {
		for _, d := range []int32{-32768, -32767, -1, 0, 1, 32766, 32767} {
			w, err := EncodeMem(name, 1, 2, d)
			if err != nil {
				t.Errorf("%s mdisp %d: encode failed: %v", name, d, err)
				continue
			}
			if got := signExt(fieldOf(t, w, "mdisp"), 16); got != d {
				t.Errorf("%s: mdisp %d encoded to %08x, decoded back as %d", name, d, w, got)
			}
		}
		for _, d := range []int32{-32769, 32768, 1 << 20} {
			if w, err := EncodeMem(name, 1, 2, d); err == nil {
				t.Errorf("%s: out-of-range mdisp %d encoded silently to %08x", name, d, w)
			}
		}
	}

	// bdisp21: branch displacements, through the derived static target.
	const pc = 0x40000000
	for _, name := range []string{"br", "bsr", "beq", "bne", "blt", "ble", "bgt", "bge"} {
		for _, d := range []int32{-(1 << 20), -1024, -1, 0, 1, 1024, 1<<20 - 1} {
			w, err := EncodeBranch(name, 3, d)
			if err != nil {
				t.Errorf("%s bdisp %d: encode failed: %v", name, d, err)
				continue
			}
			inst := NewDecoder().Decode(w)
			if !inst.Valid() || inst.Name() != name {
				t.Errorf("%s bdisp %d: decoded as %s (word %08x)", name, d, inst, w)
				continue
			}
			tgt, ok := inst.StaticTarget(pc)
			want := uint32(int64(pc) + 4 + 4*int64(d))
			if !ok || tgt != want {
				t.Errorf("%s: bdisp %d target %#x, want %#x (word %08x)", name, d, tgt, want, w)
			}
		}
		for _, d := range []int32{1 << 20, -(1 << 20) - 1, 1 << 24} {
			if w, err := EncodeBranch(name, 3, d); err == nil {
				t.Errorf("%s: out-of-range bdisp %d encoded silently to %08x", name, d, w)
			}
		}
	}

	// 8-bit operate literals.
	for _, lit := range []uint32{0, 1, 254, 255} {
		w, err := EncodeOpLit("addl", 1, lit, 3)
		if err != nil {
			t.Errorf("addl lit %d: encode failed: %v", lit, err)
			continue
		}
		if got := fieldOf(t, w, "lit"); got != lit {
			t.Errorf("addl: lit %d encoded to %08x, decoded back as %d", lit, w, got)
		}
		if got := fieldOf(t, w, "litflag"); got != 1 {
			t.Errorf("addl: lit form lost litflag (word %08x)", w)
		}
	}
	if w, err := EncodeOpLit("addl", 1, 256, 3); err == nil {
		t.Errorf("addl: out-of-range literal encoded silently to %08x", w)
	}

	// PAL codes.
	for _, code := range []uint32{0, 0x83, 0xffff} {
		w, err := EncodeCallPal(code)
		if err != nil {
			t.Errorf("call_pal %#x: encode failed: %v", code, err)
			continue
		}
		if got := fieldOf(t, w, "mdisp"); got != code {
			t.Errorf("call_pal: code %#x decoded back as %#x", code, got)
		}
	}
	if w, err := EncodeCallPal(1 << 16); err == nil {
		t.Errorf("call_pal: out-of-range code encoded silently to %08x", w)
	}

	// Register field extents.
	if w, err := EncodeOp("addl", 32, 1, 2); err == nil {
		t.Errorf("addl: register 32 encoded silently to %08x", w)
	}
}
