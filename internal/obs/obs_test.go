package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"eel/internal/telemetry"
)

func TestSpanContextRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatal("NewSpanContext returned an invalid context")
	}
	s := sc.String()
	if len(s) != 33 || s[16] != '-' {
		t.Fatalf("String() = %q, want 16-hex + dash + 16-hex", s)
	}
	got, ok := ParseSpanContext(s)
	if !ok || got != sc {
		t.Fatalf("ParseSpanContext(%q) = %+v, %v; want %+v", s, got, ok, sc)
	}
	if sc.TraceID() != s[:16] {
		t.Errorf("TraceID() = %q, want %q", sc.TraceID(), s[:16])
	}

	child := sc.Child()
	if child.Trace != sc.Trace {
		t.Errorf("Child changed the trace half: %x vs %x", child.Trace, sc.Trace)
	}
	if child.Span == sc.Span {
		t.Error("Child kept the parent's span id")
	}
}

func TestSpanContextInvalid(t *testing.T) {
	var zero SpanContext
	if zero.Valid() {
		t.Error("zero SpanContext is valid")
	}
	if zero.String() != "" {
		t.Errorf("zero String() = %q, want empty", zero.String())
	}

	bad := []string{
		"",
		"not-a-context",
		"0000000000000001",                     // no dash
		"00000000000000001-0000000000000001",   // 17-char trace
		"000000000000000g-0000000000000001",    // non-hex
		"0000000000000000-0000000000000001",    // zero trace
		"000000000000000a-0000000000000001-xx", // trailing junk
	}
	for _, s := range bad {
		if _, ok := ParseSpanContext(s); ok {
			t.Errorf("ParseSpanContext(%q) accepted", s)
		}
	}

	got, ok := ParseSpanContext("000000000000000a-000000000000000b")
	if !ok || got.Trace != 0xa || got.Span != 0xb {
		t.Errorf("ParseSpanContext = %+v, %v; want trace 0xa span 0xb", got, ok)
	}
}

func TestFlightRecordWrapSort(t *testing.T) {
	f := NewFlight(64) // 8 slots per shard
	const n = 500
	for i := 0; i < n; i++ {
		f.Record(EvTierPromote, uint64(i), 7)
	}
	evs := f.Events()
	if len(evs) == 0 || len(evs) > 64 {
		t.Fatalf("retained %d events after %d records into a 64-slot recorder", len(evs), n)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events not in sequence order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	last := evs[len(evs)-1]
	if last.Seq != n {
		t.Errorf("newest retained seq %d, want %d (newest must survive the wrap)", last.Seq, n)
	}
	if last.Kind != EvTierPromote || last.B != 7 {
		t.Errorf("event payload mangled: %+v", last)
	}
	if last.TS == 0 {
		t.Error("event has no timestamp")
	}
}

func TestFlightConcurrent(t *testing.T) {
	// 2048 slots per shard: even with random shard placement of 8000
	// events no shard comes near overflowing, so all must survive.
	f := NewFlight(16384)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f.Record(EvInvalidate, uint64(i), 0)
			}
		}()
	}
	wg.Wait()
	if evs := f.Events(); len(evs) != 8000 {
		t.Fatalf("retained %d events, want all 8000", len(evs))
	}
}

func TestFlightNilAndDisabled(t *testing.T) {
	var f *Flight
	f.Record(EvRoutineDeopt, 1, 2) // must not panic
	if f.Events() != nil {
		t.Error("nil recorder returned events")
	}
	var buf bytes.Buffer
	f.Dump(&buf)
	if !strings.Contains(buf.String(), "flight recorder dump: 0 events") {
		t.Errorf("nil Dump = %q", buf.String())
	}

	prev := ActiveFlight()
	defer active.Store(prev)
	DisableFlight()
	Record(EvRoutineDeopt, 1, 2) // package-level, disabled: no-op
	got := EnableFlight(16)
	if ActiveFlight() != got {
		t.Fatal("EnableFlight did not install the recorder")
	}
	Record(EvRoutineDeopt, 0x1234, 3)
	evs := got.Events()
	if len(evs) != 1 || evs[0].Kind != EvRoutineDeopt || evs[0].A != 0x1234 {
		t.Fatalf("package Record landed wrong: %+v", evs)
	}
}

func TestFlightDumpAndJSON(t *testing.T) {
	f := NewFlight(64)
	f.Record(EvRoutineDeopt, 0x4010, 2)
	f.Record(EvCacheCorrupt, 0x4000, 0xdeadbeef)

	var buf bytes.Buffer
	f.Dump(&buf)
	out := buf.String()
	if !strings.Contains(out, "flight recorder dump: 2 events") {
		t.Errorf("dump header missing: %q", out)
	}
	for _, want := range []string{"routine-deopt", "cache-corrupt", "a=0x4010", "b=0xdeadbeef"} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []struct {
		TS   int64  `json:"ts_ns"`
		Kind string `json:"kind"`
		A    string `json:"a"`
		B    string `json:"b"`
	}
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if len(evs) != 2 || evs[0].Kind != "routine-deopt" || evs[1].B != "0xdeadbeef" {
		t.Fatalf("JSON events wrong: %+v", evs)
	}
}

// TestFlightDisabledZeroAlloc is the "always-on" contract: with no
// recorder installed the package-level Record must not allocate (and
// with one installed it still must not — events land in preallocated
// slots).
func TestFlightDisabledZeroAlloc(t *testing.T) {
	prev := ActiveFlight()
	defer active.Store(prev)

	DisableFlight()
	if n := testing.AllocsPerRun(1000, func() { Record(EvRoutineDeopt, 1, 2) }); n != 0 {
		t.Errorf("disabled Record allocates %.1f per call", n)
	}
	EnableFlight(0)
	if n := testing.AllocsPerRun(1000, func() { Record(EvRoutineDeopt, 1, 2) }); n != 0 {
		t.Errorf("enabled Record allocates %.1f per call", n)
	}
}

func BenchmarkFlightDisabled(b *testing.B) {
	prev := ActiveFlight()
	defer active.Store(prev)
	DisableFlight()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Record(EvRoutineDeopt, uint64(i), 0)
	}
}

func BenchmarkFlightEnabled(b *testing.B) {
	prev := ActiveFlight()
	defer active.Store(prev)
	EnableFlight(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Record(EvRoutineDeopt, uint64(i), 0)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("eeld.requests").Add(42)
	reg.Counter("weird name!").Add(1)
	reg.Gauge("eeld.queue_depth").Set(3)
	h := reg.Histogram("eeld.latency_ns")
	for _, v := range []uint64{1, 2, 3, 100, 1000, 1 << 40} {
		h.Observe(v)
	}

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE eeld_requests_total counter\neeld_requests_total 42\n",
		"# TYPE weird_name__total counter\nweird_name__total 1\n",
		"# TYPE eeld_queue_depth gauge\neeld_queue_depth 3\n",
		"# TYPE eeld_latency_ns histogram\n",
		`eeld_latency_ns_bucket{le="+Inf"} 6`,
		"eeld_latency_ns_count 6\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Cumulative buckets must be monotone and end at the count.
	var last uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "eeld_latency_ns_bucket") {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, last)
		}
		last = v
	}
	if last != 6 {
		t.Errorf("final cumulative bucket %d, want 6", last)
	}
}

func TestMetricsAndFlightHandlers(t *testing.T) {
	reg := telemetry.New()
	reg.Counter("eeld.requests").Add(7)

	rr := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rr.Body.String(), "eeld_requests_total 7") {
		t.Errorf("scrape missing counter:\n%s", rr.Body.String())
	}

	prev := ActiveFlight()
	defer active.Store(prev)
	f := EnableFlight(16)
	f.Record(EvTierPromote, 0x4000, 4)

	rr = httptest.NewRecorder()
	FlightHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if !strings.Contains(rr.Body.String(), "tier-promote") {
		t.Errorf("flight JSON missing event:\n%s", rr.Body.String())
	}

	rr = httptest.NewRecorder()
	FlightHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?format=text", nil))
	if !strings.Contains(rr.Body.String(), "flight recorder dump: 1 events") {
		t.Errorf("flight text dump:\n%s", rr.Body.String())
	}
}
