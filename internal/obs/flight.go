package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a flight-recorder event.  Kinds are small and
// closed on purpose: the recorder is for the handful of rare, notable
// transitions that explain a latency spike or a wrong answer after
// the fact, not for general logging.
type EventKind uint8

const (
	EvNone          EventKind = iota
	EvRoutineDeopt            // routine-tier program hit a stale generation; A=entry PC, B=generation
	EvInvalidate              // write watch invalidated translated code; A=store addr, B=new generation
	EvTierPromote             // routine entry crossed the heat threshold; A=entry PC, B=enter count
	EvRoutineInstall          // compiled routine program installed; A=entry PC, B=program length
	EvCompileStall            // routine compile queue full, promotion dropped; A=entry PC, B=queue cap
	EvAdmissionReject         // eeld admission rejected a request; A=HTTP status, B=queue depth
	EvCacheCorrupt            // DiskStore dropped a corrupt entry; A=routine start PC, B=content hash
)

var kindNames = [...]string{
	EvNone:            "none",
	EvRoutineDeopt:    "routine-deopt",
	EvInvalidate:      "invalidate",
	EvTierPromote:     "tier-promote",
	EvRoutineInstall:  "routine-install",
	EvCompileStall:    "compile-stall",
	EvAdmissionReject: "admission-reject",
	EvCacheCorrupt:    "cache-corrupt",
}

func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind-%d", uint8(k))
}

// Event is one flight-recorder entry.  All fields are fixed-size so
// recording never allocates; A and B are kind-specific details (see
// the EventKind comments).
type Event struct {
	TS   int64 // nanoseconds since the Unix epoch
	Seq  uint64
	Kind EventKind
	A, B uint64
}

const (
	flightShards       = 8
	defaultFlightSize  = 4096
	minPerShardEntries = 8
)

// flightShard is one independently-locked ring.  Padding keeps the
// shards on separate cache lines, same trick as telemetry.Counter.
type flightShard struct {
	mu   sync.Mutex
	pos  int
	full bool
	buf  []Event
	_    [64 - 8]byte
}

// Flight is a fixed-size lock-sharded ring buffer of recent events.
// Recording takes one shard mutex and writes into a preallocated
// slot; old events are overwritten, never reallocated.  A nil *Flight
// drops events with a single branch.
type Flight struct {
	shards [flightShards]flightShard
	seq    atomic.Uint64
}

// NewFlight returns a recorder holding about size recent events
// (rounded up so every shard gets at least a few slots).  size <= 0
// selects the default of 4096.
func NewFlight(size int) *Flight {
	if size <= 0 {
		size = defaultFlightSize
	}
	per := size / flightShards
	if per < minPerShardEntries {
		per = minPerShardEntries
	}
	f := &Flight{}
	for i := range f.shards {
		f.shards[i].buf = make([]Event, per)
	}
	return f
}

// Record appends an event. Safe for concurrent use; zero allocations.
func (f *Flight) Record(kind EventKind, a, b uint64) {
	if f == nil {
		return
	}
	seq := f.seq.Add(1)
	sh := &f.shards[rand.Uint32()%flightShards]
	sh.mu.Lock()
	sh.buf[sh.pos] = Event{TS: time.Now().UnixNano(), Seq: seq, Kind: kind, A: a, B: b}
	sh.pos++
	if sh.pos == len(sh.buf) {
		sh.pos = 0
		sh.full = true
	}
	sh.mu.Unlock()
}

// Events returns a snapshot of the retained events in recording
// order (by sequence number).
func (f *Flight) Events() []Event {
	if f == nil {
		return nil
	}
	var out []Event
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.Lock()
		if sh.full {
			out = append(out, sh.buf[sh.pos:]...)
			out = append(out, sh.buf[:sh.pos]...)
		} else {
			out = append(out, sh.buf[:sh.pos]...)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// eventJSON is the wire shape served by /debug/flight: stable field
// names, hex details (they are almost always PCs or hashes).
type eventJSON struct {
	TS   int64  `json:"ts_ns"`
	Kind string `json:"kind"`
	A    string `json:"a"`
	B    string `json:"b"`
}

// WriteJSON writes the retained events as a JSON array, oldest first.
func (f *Flight) WriteJSON(w io.Writer) error {
	evs := f.Events()
	out := make([]eventJSON, len(evs))
	for i, e := range evs {
		out[i] = eventJSON{TS: e.TS, Kind: e.Kind.String(), A: fmt.Sprintf("%#x", e.A), B: fmt.Sprintf("%#x", e.B)}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Dump writes a human-readable flight record, oldest first — the
// SIGQUIT format.  Timestamps are wall-clock with nanoseconds so
// dumps from different processes line up.
func (f *Flight) Dump(w io.Writer) {
	evs := f.Events()
	fmt.Fprintf(w, "flight recorder dump: %d events\n", len(evs))
	for _, e := range evs {
		t := time.Unix(0, e.TS).UTC().Format("15:04:05.000000000")
		fmt.Fprintf(w, "  %s %-16s a=%#x b=%#x\n", t, e.Kind.String(), e.A, e.B)
	}
}

// active is the process-wide recorder, nil until EnableFlight.  The
// instrumented code paths in sim/pipeline/eeld call the package-level
// Record, which is a nil-check and a return while disabled.
var active atomic.Pointer[Flight]

// EnableFlight installs a fresh process-wide recorder of the given
// size (<= 0 for the default) and returns it.
func EnableFlight(size int) *Flight {
	f := NewFlight(size)
	active.Store(f)
	return f
}

// DisableFlight removes the process-wide recorder; subsequent Record
// calls become no-ops.
func DisableFlight() { active.Store(nil) }

// ActiveFlight returns the process-wide recorder, or nil when
// disabled.
func ActiveFlight() *Flight { return active.Load() }

// Record appends an event to the process-wide recorder, if any.
func Record(kind EventKind, a, b uint64) { active.Load().Record(kind, a, b) }
