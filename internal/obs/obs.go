// Package obs is the request-scoped observability layer on top of
// internal/telemetry: distributed trace identifiers propagated end to
// end through the eeld service (the X-Eel-Trace header), a Prometheus
// text exposition of the telemetry registry (prom.go), and an
// always-on flight recorder — a fixed-size lock-sharded ring buffer
// of recent notable events (flight.go) that can be dumped on SIGQUIT
// or scraped from /debug/flight when something just went wrong.
//
// Like the rest of the telemetry stack, everything here follows the
// nil-sink discipline: a nil *Flight absorbs Record calls with a
// single branch and zero allocations (BenchmarkFlightDisabled asserts
// it), so instrumented code paths cost nothing until a recorder is
// installed.
package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"strconv"
	"strings"
)

// TraceHeader is the HTTP header carrying a request's span context,
// formatted by SpanContext.String and parsed by ParseSpanContext.
const TraceHeader = "X-Eel-Trace"

// SpanContext locates one operation in a distributed trace: Trace is
// the 64-bit ID shared by every span the request touches (client,
// queue, handler, pipeline waves, per-routine analyses), Span the ID
// of the current operation.  The zero value is "no trace".
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// NewSpanContext mints a fresh trace with a root span.  IDs are
// random, not sequential, so traces minted by independent clients
// never collide.
func NewSpanContext() SpanContext {
	return SpanContext{Trace: nonzero64(), Span: nonzero64()}
}

func nonzero64() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

// Valid reports whether sc carries a trace.
func (sc SpanContext) Valid() bool { return sc.Trace != 0 }

// Child derives a new span in the same trace (the server continuing a
// client-minted trace).
func (sc SpanContext) Child() SpanContext {
	if !sc.Valid() {
		return SpanContext{}
	}
	return SpanContext{Trace: sc.Trace, Span: nonzero64()}
}

// String renders the wire form "tttttttttttttttt-ssssssssssssssss"
// (two fixed-width lowercase-hex fields).  The empty string stands
// for an invalid context.
func (sc SpanContext) String() string {
	if !sc.Valid() {
		return ""
	}
	return fmt.Sprintf("%016x-%016x", sc.Trace, sc.Span)
}

// TraceID renders just the trace half — the value every span of one
// request shares.
func (sc SpanContext) TraceID() string {
	if !sc.Valid() {
		return ""
	}
	return fmt.Sprintf("%016x", sc.Trace)
}

// ParseSpanContext parses the wire form.  It accepts exactly the
// String layout; anything else (including an empty header) reports
// ok=false so the caller mints a fresh context.
func ParseSpanContext(s string) (SpanContext, bool) {
	t, rest, found := strings.Cut(s, "-")
	if !found || len(t) != 16 || len(rest) != 16 {
		return SpanContext{}, false
	}
	tv, err1 := strconv.ParseUint(t, 16, 64)
	sv, err2 := strconv.ParseUint(rest, 16, 64)
	if err1 != nil || err2 != nil || tv == 0 {
		return SpanContext{}, false
	}
	return SpanContext{Trace: tv, Span: sv}, true
}

type ctxKey struct{}

// ContextWith returns ctx carrying sc, for handlers threading the
// request's trace down into the pipeline.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext returns the span context carried by ctx, or the zero
// (invalid) context.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
