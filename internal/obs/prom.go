package obs

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"

	"eel/internal/telemetry"
)

// WritePrometheus renders a telemetry snapshot in the Prometheus text
// exposition format (version 0.0.4).  Names are sanitized (dots and
// other separators become underscores), counters get the conventional
// _total suffix, and histograms are rendered with *cumulative*
// le-buckets plus _sum and _count so p50/p99 are scrape-derivable via
// histogram_quantile().  Output is deterministic: names sorted,
// buckets ascending.
func WritePrometheus(w io.Writer, s telemetry.Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[k])
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[k])
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		hs := s.Histograms[k]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		var cum uint64
		for _, bk := range hs.Buckets {
			cum += bk.Count
			if bk.Bucket >= 64 {
				// The top bucket's Hi is MaxUint64; it folds into +Inf.
				continue
			}
			fmt.Fprintf(&b, "%s_bucket{le=\"%d\"} %d\n", n, bk.Hi, cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, hs.Count)
		fmt.Fprintf(&b, "%s_sum %d\n", n, hs.Sum)
		fmt.Fprintf(&b, "%s_count %d\n", n, hs.Count)
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// PromName sanitizes a telemetry instrument name into a valid
// Prometheus metric name: every character outside [a-zA-Z0-9_:]
// becomes an underscore ("eeld.latency_ns" → "eeld_latency_ns").
func PromName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if ok {
			b.WriteRune(c)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// MetricsHandler serves the registry (or, when reg is nil, the
// process-wide telemetry default at request time) in Prometheus text
// format.
func MetricsHandler(reg *telemetry.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		target := reg
		if target == nil {
			target = telemetry.Default()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, target.Snapshot())
	})
}

// FlightHandler serves the process-wide flight recorder as JSON
// (?format=text for the human dump).  An empty or disabled recorder
// serves an empty array, not an error — scrapers should not have to
// special-case it.
func FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f := ActiveFlight()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			f.Dump(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		f.WriteJSON(w)
	})
}

// ServeDebug starts an HTTP server on addr exposing /metrics (for
// reg) and /debug/flight in the background — the -metrics-addr
// implementation shared by eelverify, eelprof, and friends.  Returns
// the listen error synchronously when the address is unusable.
func ServeDebug(addr string, reg *telemetry.Registry) error {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(reg))
	mux.Handle("/debug/flight", FlightHandler())
	srv := &http.Server{Addr: addr, Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	return nil
}
