// Package toolmain is the shared command-line driver behind cmd/qpt
// and cmd/qpt2: open (or generate) an executable, instrument it,
// write the edited program, and optionally run it on the emulator
// and report the profile.
package toolmain

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"eel/internal/binfile"
	"eel/internal/pipeline"
	"eel/internal/qpt"
	"eel/internal/sim"
)

// Run executes the tool with the given mode over args.
func Run(tool string, mode qpt.Mode, args []string) error {
	fs := flag.NewFlagSet(tool, flag.ContinueOnError)
	out := fs.String("o", "", "output path (default <input>.count)")
	runIt := fs.Bool("run", false, "execute the instrumented program and print the profile")
	optimal := fs.Bool("optimal", false, "use Ball-Larus spanning-tree counter placement (counts derived by flow conservation)")
	top := fs.Int("top", 10, "edges to print with -run")
	maxSteps := fs.Uint64("max-steps", 500_000_000, "emulator step limit")
	com := AddCommon(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	stop, err := com.Start(os.Stderr)
	if err != nil {
		return err
	}
	defer stop()

	if err := com.RequireSPARC(); err != nil {
		return err
	}
	f, input, err := com.OpenInput(fs.Arg(0))
	if err != nil {
		return err
	}
	e, err := Load(f)
	if err != nil {
		return err
	}

	// Analyze all routines up front on the concurrent pipeline; the
	// instrumentation pass below then finds every CFG already built.
	// Light mode's analysis options must be set before analysis, not
	// inside Instrument, so the cached graphs match the mode.
	if mode == qpt.Light {
		e.LightAnalysis = true
		e.Scavenge = false
		e.FoldDelaySlots = false
	}
	start := time.Now()
	if _, err := com.Analyze(e, pipeline.Options{
		NoDominators: true,
		NoLoops:      true,
	}); err != nil {
		return err
	}

	var res *qpt.Result
	var opt *qpt.OptimalResult
	if *optimal {
		opt, err = qpt.InstrumentOptimal(e)
	} else {
		res, err = qpt.Instrument(e, mode)
	}
	if err != nil {
		return err
	}
	edited, err := e.BuildEdited()
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	outPath := *out
	if outPath == "" {
		outPath = input + ".count"
	}
	if err := binfile.WriteFile(outPath, edited); err != nil {
		return err
	}
	if *optimal {
		fmt.Printf("%s: optimal placement: %d counters cover %d CFG edges, edited text %d bytes, %.1fms\n",
			tool, opt.Counters, opt.Edges, len(edited.Text().Data),
			float64(elapsed.Microseconds())/1000)
	} else {
		fmt.Printf("%s: %d routines (%d hidden), %d counters, edited text %d bytes, %.1fms\n",
			tool, res.RoutinesSeen, res.HiddenSeen, res.Edits,
			len(edited.Text().Data), float64(elapsed.Microseconds())/1000)
	}

	if !*runIt {
		return nil
	}
	cpu := sim.LoadFile(edited, os.Stdout)
	if err := cpu.Run(*maxSteps); err != nil {
		return fmt.Errorf("executing instrumented program: %w", err)
	}
	if *optimal {
		fmt.Printf("exit %d after %d instructions; derived edge counts per routine:\n", cpu.ExitCode, cpu.InstCount)
		shown := 0
		for _, rp := range opt.Routines {
			derived, err := rp.DeriveCounts(cpu.Mem)
			if err != nil {
				return err
			}
			var total uint64
			for _, v := range derived {
				total += v
			}
			if total == 0 || shown >= *top {
				continue
			}
			shown++
			fmt.Printf("  %-16s %5d edges, %8d traversals (dense=%v)\n",
				rp.Routine.Name, len(derived), total, rp.Dense)
		}
		return nil
	}
	counts := res.ReadCounts(cpu.Mem)
	type row struct {
		c qpt.Counter
		n uint64
	}
	rows := make([]row, len(counts))
	for i := range counts {
		rows[i] = row{res.Counters[i], counts[i]}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].n > rows[j].n })
	fmt.Printf("exit %d after %d instructions; top edges:\n", cpu.ExitCode, cpu.InstCount)
	for i, r := range rows {
		if i >= *top || r.n == 0 {
			break
		}
		fmt.Printf("  %8d  %s at %#x (%s edge)\n", r.n, r.c.Routine, r.c.From, r.c.EdgeKind)
	}
	return nil
}
