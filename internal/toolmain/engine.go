package toolmain

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eel/internal/sim"
)

// Engine is the tools' execution-engine selector: one -engine flag
// naming an emulator tier, plus the pre-tiering -nojit/-nochain
// booleans kept as deprecated aliases.  Register it with AddEngine,
// parse, then Configure each CPU the command runs.
type Engine struct {
	fs      *flag.FlagSet
	name    *string
	nojit   *bool
	nochain *bool
	warned  bool

	// Warn receives the one-line deprecation notice when -nojit or
	// -nochain selects the engine (nil = os.Stderr; tests inject a
	// buffer).
	Warn io.Writer
}

// Engine names accepted by -engine, slowest tier first.
const (
	EngineInterp     = "interp"
	EngineTranslated = "translated"
	EngineChained    = "chained"
	EngineRoutine    = "routine"
)

// AddEngine registers -engine and the deprecated aliases on fs.  The
// default is the routine tier: every tier produces bit-identical
// architected behaviour, so tools default to the fastest one.
func AddEngine(fs *flag.FlagSet) *Engine {
	return &Engine{
		fs: fs,
		name: fs.String("engine", EngineRoutine,
			"execution engine: interp, translated, chained, or routine"),
		nojit:   fs.Bool("nojit", false, "deprecated: alias for -engine=interp"),
		nochain: fs.Bool("nochain", false, "deprecated: alias for -engine=translated"),
	}
}

// Name resolves the selected engine after parsing.  An explicit
// -engine wins; otherwise the deprecated aliases select their old
// behaviour (-nojit the interpreter, -nochain the unchained
// translation cache).
func (e *Engine) Name() (string, error) {
	explicit := false
	e.fs.Visit(func(f *flag.Flag) {
		if f.Name == "engine" {
			explicit = true
		}
	})
	name := *e.name
	if !explicit {
		alias := ""
		switch {
		case *e.nojit:
			name, alias = EngineInterp, "-nojit"
		case *e.nochain:
			name, alias = EngineTranslated, "-nochain"
		}
		if alias != "" && !e.warned {
			e.warned = true
			w := e.Warn
			if w == nil {
				w = os.Stderr
			}
			fmt.Fprintf(w, "warning: %s is deprecated, use -engine=%s\n", alias, name)
		}
	}
	switch name {
	case EngineInterp, EngineTranslated, EngineChained, EngineRoutine:
		return name, nil
	}
	return "", fmt.Errorf("unknown engine %q (want interp, translated, chained, or routine)", name)
}

// Configure applies the selected engine to cpu.  Call it once per CPU
// before Run.
func (e *Engine) Configure(cpu *sim.CPU) error {
	name, err := e.Name()
	if err != nil {
		return err
	}
	ConfigureEngine(cpu, name)
	return nil
}

// ConfigureEngine sets cpu to execute with the named tier.  Unknown
// names fall through to the chained default; validate with
// Engine.Name first when the name comes from a flag.  Profiled runs
// (EnableProfile) execute routine-tier programs as chained: the
// whole-routine programs don't record per-pc counts, so the emulator
// keeps them disabled whenever a profile is attached.
func ConfigureEngine(cpu *sim.CPU, name string) {
	switch name {
	case EngineInterp:
		cpu.NoJIT = true
	case EngineTranslated:
		cpu.NoChain = true
	case EngineRoutine:
		cpu.EnableRoutines = true
	}
}
