package toolmain_test

import (
	"bytes"
	"flag"
	"io"
	"strings"
	"testing"

	"eel/internal/toolmain"
)

// TestEngineDeprecationWarning pins the -nojit/-nochain alias
// behaviour: each prints a one-line pointer at -engine exactly once,
// and an explicit -engine silences the aliases entirely.
func TestEngineDeprecationWarning(t *testing.T) {
	cases := []struct {
		args       []string
		wantEngine string
		wantWarn   string
	}{
		{[]string{"-nojit"}, toolmain.EngineInterp, "warning: -nojit is deprecated, use -engine=interp"},
		{[]string{"-nochain"}, toolmain.EngineTranslated, "warning: -nochain is deprecated, use -engine=translated"},
		{[]string{"-engine=chained", "-nojit"}, toolmain.EngineChained, ""},
		{[]string{"-engine=routine"}, toolmain.EngineRoutine, ""},
		{[]string{}, toolmain.EngineRoutine, ""},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		e := toolmain.AddEngine(fs)
		var warn bytes.Buffer
		e.Warn = &warn
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		name, err := e.Name()
		if err != nil {
			t.Fatalf("%v: %v", tc.args, err)
		}
		if name != tc.wantEngine {
			t.Errorf("%v: engine %q, want %q", tc.args, name, tc.wantEngine)
		}
		// The warning prints once, on the first resolution only.
		if _, err := e.Name(); err != nil {
			t.Fatal(err)
		}
		got := warn.String()
		if tc.wantWarn == "" {
			if got != "" {
				t.Errorf("%v: unexpected warning %q", tc.args, got)
			}
			continue
		}
		if strings.Count(got, "warning:") != 1 || !strings.Contains(got, tc.wantWarn) {
			t.Errorf("%v: warning output %q, want exactly one %q", tc.args, got, tc.wantWarn)
		}
	}
}
