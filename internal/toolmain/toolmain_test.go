package toolmain_test

import (
	"os"
	"path/filepath"
	"testing"

	"eel/internal/binfile"
	"eel/internal/progen"
	"eel/internal/qpt"
	"eel/internal/toolmain"
)

func TestRunGeneratesInstrumentsAndExecutes(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.count")
	// Suppress the tool's stdout chatter.
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	os.Stdout = devnull
	err := toolmain.Run("qpt2", qpt.Full, []string{"-gen", "5", "-run", "-o", out})
	os.Stdout = old
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	f, err := binfile.ReadFile(out)
	if err != nil {
		t.Fatalf("output unreadable: %v", err)
	}
	if f.Section("eeldata") == nil {
		t.Error("instrumented output lacks the counter section")
	}
}

func TestRunOnFileInput(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "prog")
	p := progen.MustGenerate(progen.DefaultConfig(6))
	if err := binfile.WriteFile(in, p.File); err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	devnull, _ := os.Open(os.DevNull)
	os.Stdout = devnull
	err := toolmain.Run("qpt", qpt.Light, []string{in})
	os.Stdout = old
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(in + ".count"); err != nil {
		t.Error("default output path not written")
	}
}

func TestRunErrors(t *testing.T) {
	if err := toolmain.Run("qpt2", qpt.Full, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := toolmain.Run("qpt2", qpt.Full, []string{"/nonexistent/file"}); err == nil {
		t.Error("missing input accepted")
	}
}
