package toolmain

import (
	"flag"
	"fmt"
	"io"

	_ "eel/internal/alpha" // register the architectures -isa can name
	_ "eel/internal/aout"
	_ "eel/internal/elf32"
	_ "eel/internal/mips"

	"eel/internal/binfile"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/obs"
	"eel/internal/pipeline"
	"eel/internal/progen"
	"eel/internal/spawn"
	"eel/internal/telemetry"
)

// Common bundles the flags and lifecycle every EEL command shares:
// the telemetry trio (-metrics, -trace, -pprof), the analysis worker
// count (-j), pipeline statistics (-stats), and synthetic-input
// generation (-gen, -gen-routines).  Commands register it on their
// flag set, parse, Start it, and use the accessors instead of
// re-implementing the wiring.
type Common struct {
	// Jobs is the -j analysis worker count (0 = GOMAXPROCS).
	Jobs int
	// Stats is -stats: print pipeline statistics after analysis.
	Stats bool
	// ISA is -isa: the registered architecture generated inputs and
	// emulator runs target ("sparc" by default; the editing pipeline
	// itself is still SPARC-only and tools that edit enforce that).
	ISA string
	// Gen is the -gen progen seed, -1 when absent; GenRoutines is
	// -gen-routines.
	Gen         int64
	GenRoutines int
	// GenSelfMod is -gen-selfmod: make the generated program patch
	// its own text so the routine tier's promote/deopt cycle (and the
	// flight recorder) gets exercised.
	GenSelfMod bool
	// MetricsAddr is -metrics-addr: serve /metrics (Prometheus text)
	// and /debug/flight on this address for the life of the command.
	MetricsAddr string

	tf   *telemetry.ToolFlags
	tool *telemetry.Tool
}

// AddCommon registers the shared flags on fs and returns the struct
// their parsed values land in.
func AddCommon(fs *flag.FlagSet) *Common {
	c := &Common{}
	fs.IntVar(&c.Jobs, "j", 0, "analysis worker count (0 = GOMAXPROCS)")
	fs.BoolVar(&c.Stats, "stats", false, "print analysis pipeline statistics")
	fs.StringVar(&c.ISA, "isa", "sparc", "target machine for -gen and execution (sparc, mips, alpha)")
	fs.Int64Var(&c.Gen, "gen", -1, "generate a synthetic input program with this seed")
	fs.IntVar(&c.GenRoutines, "gen-routines", 40, "routines in the generated program")
	fs.BoolVar(&c.GenSelfMod, "gen-selfmod", false, "make the generated program self-modifying (exercises JIT deopt)")
	fs.StringVar(&c.MetricsAddr, "metrics-addr", "", "serve Prometheus /metrics and /debug/flight on this address")
	c.tf = telemetry.AddFlags(fs)
	return c
}

// Start brings up whatever telemetry sinks the flags asked for.  Call
// it after flag parsing; the returned shutdown function flushes
// metrics to w and must run before the command exits (defer it).
func (c *Common) Start(w io.Writer) (func() error, error) {
	tool, err := c.tf.Start()
	if err != nil {
		return nil, err
	}
	c.tool = tool
	if c.MetricsAddr != "" {
		// A scrape endpoint implies the instruments behind it.
		telemetry.Enable()
		if obs.ActiveFlight() == nil {
			obs.EnableFlight(0)
		}
		if err := obs.ServeDebug(c.MetricsAddr, nil); err != nil {
			tool.Close(io.Discard)
			return nil, err
		}
	}
	return func() error { return tool.Close(w) }, nil
}

// OpenInput resolves the command's input program: a generated progen
// workload when -gen was given, otherwise the named file.  The
// returned name suits deriving output paths ("genN" for generated
// inputs without an explicit name).
func (c *Common) OpenInput(arg string) (*binfile.File, string, error) {
	switch {
	case c.Gen >= 0:
		cfg := progen.DefaultConfig(c.Gen)
		cfg.Routines = c.GenRoutines
		cfg.SelfMod = c.GenSelfMod
		if c.ISA != "sparc" {
			cfg.ISA = c.ISA
		}
		p, err := progen.Generate(cfg)
		if err != nil {
			return nil, "", err
		}
		name := arg
		if name == "" {
			name = fmt.Sprintf("gen%d", c.Gen)
		}
		return p.File, name, nil
	case arg != "":
		f, err := binfile.ReadFile(arg)
		return f, arg, err
	}
	return nil, "", fmt.Errorf("need an input executable or -gen seed")
}

// Arch resolves -isa against the architecture registry.
func (c *Common) Arch() (*machine.ArchInfo, error) {
	info, ok := machine.ArchByName(c.ISA)
	if !ok {
		return nil, fmt.Errorf("unknown -isa %q (registered: %v)", c.ISA, machine.ArchNames())
	}
	return info, nil
}

// Decoder returns a decoder for the selected machine, for tools that
// execute or disassemble per -isa.
func (c *Common) Decoder() (*spawn.TableDecoder, error) {
	info, err := c.Arch()
	if err != nil {
		return nil, err
	}
	return info.NewDecoder().(*spawn.TableDecoder), nil
}

// RequireSPARC rejects any -isa other than SPARC, for tools built on
// the (still SPARC-only) analysis and editing pipeline.
func (c *Common) RequireSPARC() error {
	info, err := c.Arch()
	if err != nil {
		return err
	}
	if info.Name != "sparc" {
		return fmt.Errorf("binary analysis and editing support sparc only (got -isa=%s)", c.ISA)
	}
	return nil
}

// Load wraps a parsed container as an analyzable executable (symbol
// refinement included).
func Load(f *binfile.File) (*core.Executable, error) {
	e, err := core.NewExecutable(f)
	if err != nil {
		return nil, err
	}
	if err := e.ReadContents(); err != nil {
		return nil, err
	}
	return e, nil
}

// Analyze runs the concurrent pipeline with the -j worker count wired
// in (unless opts already names one) and prints the run's statistics
// when -stats asked for them.
func (c *Common) Analyze(e *core.Executable, opts pipeline.Options) (*pipeline.Result, error) {
	if err := c.RequireSPARC(); err != nil {
		return nil, err
	}
	if opts.Workers == 0 {
		opts.Workers = c.Jobs
	}
	res, err := pipeline.AnalyzeAll(e, opts)
	if err != nil {
		return nil, err
	}
	if c.Stats {
		fmt.Println(res.Stats)
	}
	return res, nil
}
