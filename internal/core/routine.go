package core

import (
	"fmt"
	"sort"

	"eel/internal/cfg"
	"eel/internal/dataflow"
)

// Routine is a named region of the text segment (§3.2): it records
// the entity's extent and entry points and is the interface to CFG
// construction, analysis, and editing.
type Routine struct {
	Exec *Executable
	Name string
	// Start and End bound the routine; Entries lists its entry
	// points (multiple for Fortran ENTRY and interprocedural jumps).
	Start, End uint32
	Entries    []uint32
	// Hidden marks routines discovered by analysis rather than the
	// symbol table.
	Hidden bool

	graph *cfg.Graph

	edgeEdits   map[*cfg.Edge][]*Snippet
	beforeEdits map[instKey][]*Snippet
	afterEdits  map[instKey][]*Snippet
	deleted     map[instKey]bool

	plan *routinePlan // measured layout, built by ProduceEditedRoutine
}

type instKey struct {
	b   *cfg.Block
	idx int
}

// Size returns the routine's extent in bytes.
func (r *Routine) Size() uint32 { return r.End - r.Start }

// addEntry records an additional entry point (invalidating a cached
// graph, since reachability changes).
func (r *Routine) addEntry(a uint32) {
	for _, e := range r.Entries {
		if e == a {
			return
		}
	}
	r.Entries = append(r.Entries, a)
	r.graph = nil
}

// ControlFlowGraph builds (and caches) the routine's normalized CFG.
// Indirect jumps are resolved by the backward-slicing pass and the
// graph rebuilt with their dispatch-table targets until a fixpoint —
// the paper's two-stage construction (§3.3).  Hidden routines
// discovered from unreachable tails are registered with the
// executable (§3.1 stage 4).
//
// Distinct routines of one executable may build their graphs
// concurrently (internal/pipeline does): construction touches only
// this routine, read-only image data, the goroutine-safe decoder,
// and the locked routine list.  Calling it concurrently for the
// same routine is not supported.
func (r *Routine) ControlFlowGraph() (*cfg.Graph, error) {
	if r.graph != nil {
		return r.graph, nil
	}
	text := r.Exec.File.Text()
	opts := cfg.Options{
		IndirectTargets: map[uint32][]uint32{},
		Tables:          map[uint32]cfg.TableInfo{},
		ForceTranslate:  r.Exec.ForceRuntimeTranslation || r.Exec.LightAnalysis,
	}
	// Record every image address the resolver reads: words outside the
	// routine's (final) extent become the graph's ExternalReads, the
	// out-of-routine dependency set the analysis cache must validate.
	resolverReads := map[uint32]bool{}
	readWord := func(addr uint32) (uint32, bool) {
		resolverReads[addr] = true
		return r.Exec.ReadWord(addr)
	}
	var g *cfg.Graph
	for pass := 0; ; pass++ {
		var err error
		g, err = cfg.BuildWithOptions(r.Exec.Dec, text.Data, text.Addr, r.Start, r.End, r.Entries, opts)
		if err != nil {
			return nil, fmt.Errorf("core: routine %s: %w", r.Name, err)
		}
		if pass >= 8 {
			break
		}
		res := (&dataflow.Resolver{
			G:        g,
			ReadWord: readWord,
			InText:   text.Contains,
		}).AnalyzeIndirectJumps()
		progressed := false
		for addr, rr := range res {
			if rr.OK {
				// Keep only in-routine targets; a table whose
				// entries leave the routine is interprocedural.
				var targets []uint32
				for _, t := range rr.Targets {
					if t >= r.Start && t < r.End {
						targets = append(targets, t)
					}
				}
				if len(targets) > 0 {
					opts.IndirectTargets[addr] = targets
					opts.Tables[addr] = rr.Table
					progressed = true
				}
			}
		}
		if !progressed {
			break
		}
		// Rebuild with the resolved targets; newly reachable code
		// may contain further indirect jumps, so iterate until the
		// resolver finds nothing new.
	}
	if tail := g.UnreachableTail; tail != 0 {
		r.Exec.addHiddenTail(r, tail)
		// Rebuild with the shrunken extent so the tail is not part
		// of this routine.
		g2, err := cfg.BuildWithOptions(r.Exec.Dec, text.Data, text.Addr, r.Start, r.End, r.Entries, opts)
		if err == nil {
			g = g2
		}
	}
	for addr := range resolverReads {
		if addr < g.Start || addr >= g.End {
			g.ExternalReads = append(g.ExternalReads, addr)
		}
	}
	sort.Slice(g.ExternalReads, func(i, j int) bool { return g.ExternalReads[i] < g.ExternalReads[j] })
	r.graph = g
	return g, nil
}

// InstallGraph adopts a previously built CFG as this routine's graph,
// so ControlFlowGraph and ProduceEditedRoutine reuse it instead of
// recomputing.  The analysis pipeline calls this on a cache hit; the
// graph must describe this routine's extent and entry points.
func (r *Routine) InstallGraph(g *cfg.Graph) { r.graph = g }

// DeleteControlFlowGraph drops the cached CFG and any accumulated
// edits (the paper's delete_control_flow_graph, used to reclaim
// memory after producing an edited routine).
func (r *Routine) DeleteControlFlowGraph() {
	r.graph = nil
	r.edgeEdits = nil
	r.beforeEdits = nil
	r.afterEdits = nil
	r.deleted = nil
}

// editsInit lazily allocates the edit maps.
func (r *Routine) editsInit() {
	if r.edgeEdits == nil {
		r.edgeEdits = map[*cfg.Edge][]*Snippet{}
		r.beforeEdits = map[instKey][]*Snippet{}
		r.afterEdits = map[instKey][]*Snippet{}
		r.deleted = map[instKey]bool{}
	}
}

// AddCodeAlong attaches a snippet to a CFG edge (Fig 1's
// e->add_code_along).  Edits accumulate without changing the CFG and
// take effect at ProduceEditedRoutine (§3.3.1's batch editing).
func (r *Routine) AddCodeAlong(e *cfg.Edge, s *Snippet) error {
	if e.Uneditable {
		return fmt.Errorf("core: edge %s→%s is uneditable", e.From.Kind, e.To.Kind)
	}
	r.editsInit()
	r.edgeEdits[e] = append(r.edgeEdits[e], s)
	return nil
}

// AddCodeBefore inserts a snippet before instruction idx of block b.
func (r *Routine) AddCodeBefore(b *cfg.Block, idx int, s *Snippet) error {
	if err := r.checkInstEdit(b, idx); err != nil {
		return err
	}
	r.editsInit()
	k := instKey{b, idx}
	r.beforeEdits[k] = append(r.beforeEdits[k], s)
	return nil
}

// AddCodeAfter inserts a snippet after instruction idx of block b.
// The instruction must not be a control transfer (add code along the
// outgoing edges instead, which says which path to instrument).
func (r *Routine) AddCodeAfter(b *cfg.Block, idx int, s *Snippet) error {
	if err := r.checkInstEdit(b, idx); err != nil {
		return err
	}
	if b.Insts[idx].MI.Category().IsControl() {
		return fmt.Errorf("core: cannot add code after a control transfer; edit its edges")
	}
	r.editsInit()
	k := instKey{b, idx}
	r.afterEdits[k] = append(r.afterEdits[k], s)
	return nil
}

// DeleteInst removes instruction idx of block b from the edited
// routine.  Control transfers cannot be deleted (redirect edges
// instead).
func (r *Routine) DeleteInst(b *cfg.Block, idx int) error {
	if err := r.checkInstEdit(b, idx); err != nil {
		return err
	}
	if b.Insts[idx].MI.Category().IsControl() {
		return fmt.Errorf("core: cannot delete a control transfer")
	}
	r.editsInit()
	r.deleted[instKey{b, idx}] = true
	return nil
}

func (r *Routine) checkInstEdit(b *cfg.Block, idx int) error {
	if b.Uneditable {
		return fmt.Errorf("core: block (%s at %#x) is uneditable", b.Kind, b.Start())
	}
	if idx < 0 || idx >= len(b.Insts) {
		return fmt.Errorf("core: instruction index %d out of range", idx)
	}
	return nil
}

// ProduceEditedRoutine measures the routine's edited layout:
// snippets are instantiated (register scavenging, spill wrapping)
// and every block's output position fixed, so the executable-level
// layout can assign addresses.  Actual emission happens inside
// Executable.BuildEdited once all routines are placed (edited code
// contains cross-routine references).
func (r *Routine) ProduceEditedRoutine() error {
	g, err := r.ControlFlowGraph()
	if err != nil {
		return err
	}
	plan, err := measure(r, g)
	if err != nil {
		return fmt.Errorf("core: routine %s: %w", r.Name, err)
	}
	r.plan = plan
	return nil
}
