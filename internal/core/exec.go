package core

import (
	"fmt"
	"sort"
	"sync"

	"eel/internal/binfile"
	"eel/internal/machine"
	"eel/internal/sparc"
	"eel/internal/spawn"
)

// Executable is EEL's top abstraction (§3.1): code and data from an
// executable file.  Opening one runs the symbol-table refinement of
// §3.1 — discard misleading labels, discover hidden routines and
// multiple entry points, recover routines in stripped executables
// from direct calls — and exposes the refined routine list for
// analysis and editing.
type Executable struct {
	// File is the underlying container image.
	File *binfile.File
	// Dec decodes this executable's machine instructions.
	Dec *spawn.TableDecoder

	routines []*Routine // sorted by Start
	hidden   []*Routine // discovered but not yet claimed by the tool

	// mu guards the routine list against concurrent hidden-routine
	// discovery: distinct routines may be analyzed in parallel (see
	// internal/pipeline), and each analysis can split an unreachable
	// tail off its own routine, which inserts into the shared list.
	mu sync.Mutex

	// Options controlling editing (ablation hooks).
	// FoldDelaySlots re-folds unedited hoisted slot instructions
	// back into delay slots on output (on by default, §3.3).
	FoldDelaySlots bool
	// Scavenge uses liveness-driven register scavenging for
	// snippets; off forces spilling (ablation).
	Scavenge bool
	// ForceRuntimeTranslation treats every indirect jump as
	// unanalyzable (ablation for the slicing experiment).
	ForceRuntimeTranslation bool
	// LightAnalysis models the ad-hoc pre-EEL tool (experiment E1's
	// "qpt" baseline): no liveness (snippets always spill), no
	// slicing (indirect jumps always translate at run time), no
	// delay-slot folding.
	LightAnalysis bool

	// Stats accumulates snippet-allocation outcomes.
	Stats ScavengeStats

	// newData holds tool-allocated data (profile counters etc.).
	newData     []byte
	newDataBase uint32

	// edited output state
	edited    *binfile.File
	addrMap   map[uint32]uint32
	didLayout bool
}

// NewExecutable wraps a parsed image.  Call ReadContents before using
// routines (mirroring the paper's exec->read_contents()).
func NewExecutable(f *binfile.File) (*Executable, error) {
	if f.Text() == nil {
		return nil, fmt.Errorf("core: executable has no text section")
	}
	e := &Executable{
		File:           f,
		Dec:            sparc.NewDecoder(),
		FoldDelaySlots: true,
		Scavenge:       true,
	}
	e.newDataBase = e.freeAddressAfterSections(0x00800000)
	return e, nil
}

// OpenExecutable reads and wraps the executable at path.
func OpenExecutable(path string) (*Executable, error) {
	f, err := binfile.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return NewExecutable(f)
}

// freeAddressAfterSections picks an address beyond every section,
// aligned up generously.
func (e *Executable) freeAddressAfterSections(min uint32) uint32 {
	max := min
	for _, s := range e.File.Sections {
		if end := s.End(); end > max {
			max = end
		}
	}
	return (max + 0xFFFF) &^ 0xFFFF
}

// StartAddress returns the program's entry point.
func (e *Executable) StartAddress() uint32 { return e.File.Entry }

// Routines returns the refined routine list, sorted by address.
func (e *Executable) Routines() []*Routine { return e.routines }

// HiddenRoutines returns routines discovered by analysis that the
// tool has not yet claimed; TakeHidden pops one (the paper's
// hidden_routines worklist, Fig 1).
func (e *Executable) HiddenRoutines() []*Routine { return e.hidden }

// TakeHidden removes and returns one hidden routine (nil when none
// remain).  The routine is already in the main routine list for
// layout purposes; taking it lets the tool instrument it.
func (e *Executable) TakeHidden() *Routine {
	if len(e.hidden) == 0 {
		return nil
	}
	r := e.hidden[0]
	e.hidden = e.hidden[1:]
	return r
}

// RoutineByName finds a routine.
func (e *Executable) RoutineByName(name string) *Routine {
	for _, r := range e.routines {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// RoutineAt returns the routine containing addr, or nil.
func (e *Executable) RoutineAt(addr uint32) *Routine {
	i := sort.Search(len(e.routines), func(i int) bool { return e.routines[i].End > addr })
	if i < len(e.routines) && e.routines[i].Start <= addr {
		return e.routines[i]
	}
	return nil
}

// ReadWord reads a big-endian word from any mapped section.
func (e *Executable) ReadWord(addr uint32) (uint32, bool) {
	for i := range e.File.Sections {
		s := &e.File.Sections[i]
		if s.Contains(addr) && addr+4 <= s.End() {
			off := addr - s.Addr
			d := s.Data
			return uint32(d[off])<<24 | uint32(d[off+1])<<16 |
				uint32(d[off+2])<<8 | uint32(d[off+3]), true
		}
	}
	return 0, false
}

// AllocData reserves size bytes of fresh, zero-initialized data for
// the tool (profile counters, simulation state) and returns its
// address.  The region becomes an extra data section of the edited
// executable.
func (e *Executable) AllocData(size int) uint32 {
	size = (size + 3) &^ 3
	addr := e.newDataBase + uint32(len(e.newData))
	e.newData = append(e.newData, make([]byte, size)...)
	return addr
}

// ReadContents analyzes the program and refines its symbol table
// (paper §3.1 stages 1-3); stage 4 refinements happen as CFGs are
// built.
func (e *Executable) ReadContents() error {
	text := e.File.Text()
	var starts []routineSeed
	if hasRoutineSymbols(e.File) {
		starts = e.refineSymbols()
	} else {
		starts = e.recoverStripped()
	}
	if len(starts) == 0 {
		starts = []routineSeed{{addr: text.Addr, name: fmt.Sprintf("text_%08x", text.Addr)}}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].addr < starts[j].addr })
	// Deduplicate and build extents.
	var last uint32 = 0xffffffff
	for _, s := range starts {
		if s.addr == last {
			continue
		}
		last = s.addr
		e.routines = append(e.routines, &Routine{Exec: e, Name: s.name, Start: s.addr, Entries: []uint32{s.addr}})
	}
	for i, r := range e.routines {
		if i+1 < len(e.routines) {
			r.End = e.routines[i+1].Start
		} else {
			r.End = text.End()
		}
	}
	e.findInterproceduralEntries()
	return nil
}

type routineSeed struct {
	addr uint32
	name string
}

func hasRoutineSymbols(f *binfile.File) bool {
	text := f.Text()
	for _, s := range f.Symbols {
		if text.Contains(s.Addr) && s.Kind != binfile.SymDebug {
			return true
		}
	}
	return false
}

// refineSymbols implements stage 1: drop debugging and temporary
// labels, misaligned labels, and labels that are branch targets from
// the preceding routine (probable internal labels).
func (e *Executable) refineSymbols() []routineSeed {
	text := e.File.Text()
	type cand struct {
		sym  binfile.Symbol
		keep bool
	}
	var cands []cand
	seen := map[uint32]bool{}
	e.File.SortSymbols()
	for _, s := range e.File.Symbols {
		if !text.Contains(s.Addr) || s.Kind == binfile.SymDebug || s.Kind == binfile.SymData {
			continue
		}
		if s.Addr%4 != 0 {
			continue // not on an instruction boundary
		}
		if seen[s.Addr] {
			continue // duplicate label
		}
		seen[s.Addr] = true
		cands = append(cands, cand{sym: s, keep: true})
	}
	// Discard Label-kind candidates that are branch/jump (not call)
	// targets from the candidate region that precedes them.
	branchTargets := e.scanBranchTargets()
	for i := range cands {
		c := &cands[i]
		if c.sym.Kind == binfile.SymFunc {
			continue // typed function symbols are trusted
		}
		prevStart := text.Addr
		if i > 0 {
			prevStart = cands[i-1].sym.Addr
		}
		for _, from := range branchTargets[c.sym.Addr] {
			if from >= prevStart && from < c.sym.Addr {
				c.keep = false
				break
			}
		}
	}
	var out []routineSeed
	for _, c := range cands {
		if c.keep {
			out = append(out, routineSeed{addr: c.sym.Addr, name: c.sym.Name})
		}
	}
	return out
}

// scanBranchTargets linearly decodes the text segment and collects,
// for each branch/direct-jump target, the addresses that branch to
// it.  Calls are deliberately excluded (§3.1: "not call!").
func (e *Executable) scanBranchTargets() map[uint32][]uint32 {
	text := e.File.Text()
	out := map[uint32][]uint32{}
	for a := text.Addr; a+4 <= text.End(); a += 4 {
		w, _ := e.ReadWord(a)
		inst := e.Dec.Decode(w)
		switch inst.Category() {
		case machine.CatBranch, machine.CatJumpDirect:
			if t, ok := inst.StaticTarget(a); ok {
				out[t] = append(out[t], a)
			}
		}
	}
	return out
}

// recoverStripped implements stage 2: with no symbols, the entry
// point and first text address seed the routine set, refined by the
// targets of direct calls found in an extra pass.
func (e *Executable) recoverStripped() []routineSeed {
	text := e.File.Text()
	seeds := map[uint32]bool{
		e.File.Entry: true,
		text.Addr:    true,
	}
	for a := text.Addr; a+4 <= text.End(); a += 4 {
		w, _ := e.ReadWord(a)
		inst := e.Dec.Decode(w)
		if inst.Category() == machine.CatCallDirect {
			if t, ok := inst.StaticTarget(a); ok && text.Contains(t) && t%4 == 0 {
				seeds[t] = true
			}
		}
	}
	var out []routineSeed
	for addr := range seeds {
		if text.Contains(addr) {
			out = append(out, routineSeed{addr: addr, name: fmt.Sprintf("fn_%08x", addr)})
		}
	}
	return out
}

// findInterproceduralEntries implements stage 3: jumps out of a
// routine and calls to non-routine addresses become entry points of
// the routines containing them.  The scan is conservative (§3.1: it
// "may find invalid entries, as for example, when data is
// interpreted as an instruction, but it does not miss entry
// points").
func (e *Executable) findInterproceduralEntries() {
	text := e.File.Text()
	for a := text.Addr; a+4 <= text.End(); a += 4 {
		w, _ := e.ReadWord(a)
		inst := e.Dec.Decode(w)
		var t uint32
		var ok bool
		switch inst.Category() {
		case machine.CatBranch, machine.CatJumpDirect, machine.CatCallDirect:
			t, ok = inst.StaticTarget(a)
		}
		if !ok || !text.Contains(t) || t%4 != 0 {
			continue
		}
		src := e.RoutineAt(a)
		dst := e.RoutineAt(t)
		if src == nil || dst == nil || src == dst {
			continue
		}
		dst.addEntry(t)
	}
}

// addHiddenTail splits off the unreachable tail of r (stage 4) as a
// new hidden routine.  Only r's own analysis may call this for r, so
// r's extent needs no lock; the shared routine list does.
func (e *Executable) addHiddenTail(r *Routine, tail uint32) *Routine {
	if tail <= r.Start || tail >= r.End {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	h := &Routine{
		Exec:    e,
		Name:    fmt.Sprintf("hidden_%08x", tail),
		Start:   tail,
		End:     r.End,
		Entries: []uint32{tail},
		Hidden:  true,
	}
	// The split point can precede refined entry points of r (the
	// unreached region is a hole when a directly-called hidden
	// routine follows it); those entries belong to the split-off
	// routine now, and keeping them on r would put them outside its
	// shrunken extent.
	var keep []uint32
	for _, en := range r.Entries {
		switch {
		case en < tail:
			keep = append(keep, en)
		case en > tail:
			h.Entries = append(h.Entries, en)
		}
	}
	r.Entries = keep
	r.End = tail
	// Insert in sorted position.
	i := sort.Search(len(e.routines), func(i int) bool { return e.routines[i].Start > h.Start })
	e.routines = append(e.routines, nil)
	copy(e.routines[i+1:], e.routines[i:])
	e.routines[i] = h
	e.hidden = append(e.hidden, h)
	return h
}

// RegisterHiddenTail replays a hidden-routine split recorded by a
// cached analysis (internal/pipeline): the tail of r becomes a new
// hidden routine exactly as if this run's analysis had discovered it.
// It is a no-op when r has already been split at or before tail.
func (e *Executable) RegisterHiddenTail(r *Routine, tail uint32) *Routine {
	return e.addHiddenTail(r, tail)
}

// EditedAddr maps an original address to its location in the edited
// executable (valid after BuildEdited/WriteEditedExecutable).
func (e *Executable) EditedAddr(orig uint32) (uint32, bool) {
	v, ok := e.addrMap[orig]
	return v, ok
}
