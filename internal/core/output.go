package core

import (
	"encoding/binary"
	"fmt"

	"eel/internal/binfile"
)

// BuildEdited assembles the edited executable (§3.1/§3.3.1):
//
//   - every routine's measured plan is emitted at its new address
//     (routines without explicit edits are re-laid-out unchanged, so
//     all cross-routine references stay consistent);
//   - dispatch tables are rewritten to point at edited locations
//     (per-edge instrumentation goes through stubs);
//   - a translation table mapping every original text address to its
//     edited address is emitted when any unresolved indirect
//     transfer needs run-time translation;
//   - the original text segment is retained, non-executable, at its
//     original address, so data tables embedded in text keep
//     working;
//   - the symbol table is regenerated at edited addresses so
//     standard tools still work on the edited program.
func (e *Executable) BuildEdited() (*binfile.File, error) {
	if e.edited != nil {
		return e.edited, nil
	}
	// Ensure every routine has a plan (unedited ones get an
	// identity re-layout).  Building a plan can discover hidden
	// routines (unreachable tails, §3.1 stage 4) that join the
	// routine list mid-flight, so iterate to a fixpoint.
	for {
		missing := false
		for _, r := range e.routines {
			if r.plan == nil {
				missing = true
				if err := r.ProduceEditedRoutine(); err != nil {
					return nil, err
				}
			}
		}
		if !missing {
			break
		}
	}
	text := e.File.Text()

	// Place the new text beyond every existing section and the
	// tool-allocated data region.
	newTextBase := e.newDataBase + uint32(len(e.newData))
	newTextBase = (newTextBase + 0xFFFF) &^ 0xFFFF

	// Assign routine bases and build the global address map.
	e.addrMap = map[uint32]uint32{}
	bases := map[*Routine]uint32{}
	cursor := newTextBase
	needTT := false
	for _, r := range e.routines {
		bases[r] = cursor
		for orig, off := range r.plan.localMap {
			e.addrMap[orig] = cursor + uint32(off)
		}
		cursor += uint32(r.plan.sizeWords * 4)
		cursor = (cursor + 7) &^ 7
		if r.plan.needTT {
			needTT = true
		}
	}
	newTextEnd := cursor

	ttBase := (newTextEnd + 0xFFF) &^ 0xFFF
	var ttDelta uint32
	if needTT {
		ttDelta = ttBase - text.Addr
	}

	addrOf := func(orig uint32) (uint32, bool) {
		v, ok := e.addrMap[orig]
		return v, ok
	}

	// Emit every routine.
	newText := make([]byte, newTextEnd-newTextBase)
	stubAddrs := map[*Routine][]uint32{}
	for _, r := range e.routines {
		ctx := &emitCtx{exec: e, plan: r.plan, base: bases[r], addrOf: addrOf, ttDelta: ttDelta}
		for i, item := range r.plan.items {
			at := bases[r] + uint32(r.plan.offsets[i]*4)
			words, err := item.emit(ctx, at)
			if err != nil {
				return nil, fmt.Errorf("core: emitting %s: %w", r.Name, err)
			}
			if len(words) != item.sizeWords {
				return nil, fmt.Errorf("core: emitting %s: item size drifted (%d != %d)", r.Name, len(words), item.sizeWords)
			}
			off := at - newTextBase
			for j, w := range words {
				binary.BigEndian.PutUint32(newText[off+uint32(j*4):], w)
			}
		}
		var stubs []uint32
		for _, so := range r.plan.stubOffset {
			stubs = append(stubs, bases[r]+uint32(so*4))
		}
		stubAddrs[r] = stubs
	}

	// Copy original sections; rewrite dispatch tables in the copies.
	oldText := append([]byte(nil), text.Data...)
	var dataCopy []byte
	var dataSec *binfile.Section
	if d := e.File.Data(); d != nil {
		dataSec = d
		dataCopy = append([]byte(nil), d.Data...)
	}
	writeWord := func(addr, val uint32) error {
		if text.Contains(addr) {
			binary.BigEndian.PutUint32(oldText[addr-text.Addr:], val)
			return nil
		}
		if dataSec != nil && dataSec.Contains(addr) {
			binary.BigEndian.PutUint32(dataCopy[addr-dataSec.Addr:], val)
			return nil
		}
		return fmt.Errorf("core: dispatch table at %#x outside known sections", addr)
	}
	for _, r := range e.routines {
		// Per-edge redirects first, so plain rewriting does not
		// clobber them.
		redirected := map[uint32]map[uint32]uint32{} // table → origTarget → stubAddr
		for _, rd := range r.plan.redirects {
			mm := redirected[rd.tableAddr]
			if mm == nil {
				mm = map[uint32]uint32{}
				redirected[rd.tableAddr] = mm
			}
			mm[rd.origTarget] = stubAddrs[r][rd.stub]
		}
		for _, ij := range r.plan.tables {
			if ij.Literal || ij.TableLen == 0 {
				continue
			}
			for i := 0; i < ij.TableLen; i++ {
				entryAddr := ij.TableAddr + uint32(i*4)
				orig, ok := e.ReadWord(entryAddr)
				if !ok {
					return nil, fmt.Errorf("core: cannot read dispatch table entry at %#x", entryAddr)
				}
				var repl uint32
				if s, ok := redirected[ij.TableAddr][orig]; ok {
					repl = s
				} else if v, ok := e.addrMap[orig]; ok {
					repl = v
				} else {
					return nil, fmt.Errorf("core: dispatch entry %#x has no edited address", orig)
				}
				if err := writeWord(entryAddr, repl); err != nil {
					return nil, err
				}
			}
		}
	}

	out := &binfile.File{Format: e.File.Format}
	entry, ok := e.addrMap[e.File.Entry]
	if !ok {
		return nil, fmt.Errorf("core: entry point %#x has no edited address", e.File.Entry)
	}
	out.Entry = entry
	out.Sections = append(out.Sections, binfile.Section{Name: "text", Addr: newTextBase, Data: newText})
	// The original text stays resident as data (embedded tables,
	// strings); naming it "oldtext" keeps it non-executable.
	out.Sections = append(out.Sections, binfile.Section{Name: "oldtext", Addr: text.Addr, Data: oldText})
	if dataSec != nil {
		out.Sections = append(out.Sections, binfile.Section{Name: "data", Addr: dataSec.Addr, Data: dataCopy})
	}
	if len(e.newData) > 0 {
		out.Sections = append(out.Sections, binfile.Section{Name: "eeldata", Addr: e.newDataBase, Data: append([]byte(nil), e.newData...)})
	}
	if needTT {
		tt := make([]byte, len(text.Data))
		for a := text.Addr; a+4 <= text.End(); a += 4 {
			if v, ok := e.addrMap[a]; ok {
				binary.BigEndian.PutUint32(tt[a-text.Addr:], v)
			}
		}
		out.Sections = append(out.Sections, binfile.Section{Name: "ttable", Addr: ttBase, Data: tt})
	}

	// Regenerate the symbol table at edited addresses (§3.1: "EEL
	// maintains symbol table information for the edited program").
	for _, r := range e.routines {
		if addr, ok := e.addrMap[r.Start]; ok {
			out.Symbols = append(out.Symbols, binfile.Symbol{
				Name: r.Name, Addr: addr,
				Size: uint32(r.plan.sizeWords * 4),
				Kind: binfile.SymFunc, Global: !r.Hidden,
			})
		}
	}
	for _, s := range e.File.Symbols {
		if s.Kind == binfile.SymData {
			out.Symbols = append(out.Symbols, s)
		}
	}
	out.SortSymbols()

	e.edited = out
	e.didLayout = true
	return out, nil
}

// WriteEditedExecutable builds the edited program and writes it to
// path (the paper's write_edited_executable).
func (e *Executable) WriteEditedExecutable(path string) error {
	f, err := e.BuildEdited()
	if err != nil {
		return err
	}
	return binfile.WriteFile(path, f)
}

// EditedSize returns the edited text size in bytes (0 before layout).
func (e *Executable) EditedSize() int {
	if e.edited == nil {
		return 0
	}
	return len(e.edited.Text().Data)
}
