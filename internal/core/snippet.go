// Package core is EEL's editing engine — the paper's primary
// contribution (§3.3.1, §3.5, and the executable/routine abstractions
// of §3.1/§3.2).  It discovers and refines routines in an executable,
// builds their normalized CFGs (resolving indirect jumps by slicing),
// accumulates batch edits (snippets on edges and around
// instructions, deletions), and produces an edited executable:
// blocks and snippets laid out to minimize jumps, control-transfer
// displacements adjusted, unedited delay slots folded back, dispatch
// tables rewritten to edited locations, and run-time address
// translation generated for the transfers static analysis cannot
// resolve.
package core

import (
	"fmt"

	"eel/internal/machine"
	"eel/internal/sparc"
)

// Snippet encapsulates foreign code added to an executable (paper
// §3.5).  The body is machine code written with placeholder
// registers; at each insertion point EEL assigns dead registers to
// the placeholders (register scavenging) and, when too few are dead,
// wraps the body with spill code.  A snippet may carry an alternate
// body to use where the integer condition codes are live — the
// mechanism behind Blizzard's cc-aware access test (§5).
type Snippet struct {
	// Body is the code template.
	Body []uint32
	// AllocRegs lists the placeholder registers appearing in Body
	// that need real (dead) registers assigned.
	AllocRegs []machine.Reg
	// Forbid lists registers that must not be assigned even if dead
	// (the paper's second register set).
	Forbid machine.RegSet
	// ClobbersCC declares that Body overwrites the condition codes;
	// if unset it is derived from the body's instructions.
	ClobbersCC bool
	// CCAlt is an alternate, cc-preserving body used where the
	// condition codes are live.  If nil and the codes are live, the
	// insertion fails (condition codes cannot be spilled in user
	// code on SPARC V8).
	CCAlt []uint32
	// Callback, if set, runs after register allocation and layout,
	// when the snippet's final address is known; it may rewrite the
	// instantiated words in place but must not change their number
	// (paper §3.5's call-back).
	Callback func(words []uint32, addr uint32, assign map[machine.Reg]machine.Reg)
}

// NewSnippet builds a snippet from assembled words.
func NewSnippet(body []uint32, alloc []machine.Reg) *Snippet {
	return &Snippet{Body: body, AllocRegs: alloc}
}

// bodyClobbersCC reports whether any word writes the condition codes.
func bodyClobbersCC(words []uint32) bool {
	for _, w := range words {
		if sparc.WritesPSR(w) {
			return true
		}
	}
	return false
}

// placed is an instantiated snippet occurrence: registers assigned,
// spill wrapping applied, ready to emit.
type placed struct {
	words   []uint32
	assign  map[machine.Reg]machine.Reg
	snip    *Snippet
	spilled bool
	ccAlt   bool
}

func (p *placed) size() int { return len(p.words) }

// runCallback applies the snippet's callback at the final address.
func (p *placed) runCallback(addr uint32) {
	if p.snip != nil && p.snip.Callback != nil {
		p.snip.Callback(p.words, addr, p.assign)
	}
}

// ScavengeStats counts snippet-insertion outcomes (experiments
// E10/E11 and the scavenge-vs-spill ablation).
type ScavengeStats struct {
	// Sites is the number of snippet instantiations.
	Sites int
	// Scavenged sites found enough dead registers.
	Scavenged int
	// Spilled sites needed stack spill wrapping.
	Spilled int
	// CCLive sites had live condition codes (and used the alternate
	// body).
	CCLive int
}

// scavengeUniverse is the set snippets may borrow from: the integer
// file minus %g0, %sp, %fp, %o7, and the EEL-reserved scratch pair
// %g6/%g7 (used by run-time translation stubs).
func scavengeUniverse() machine.RegSet {
	var s machine.RegSet
	for r := machine.Reg(1); r < 32; r++ {
		s = s.Add(r)
	}
	return s.Remove(6).Remove(7).Remove(14).Remove(15).Remove(30)
}

// PickPlaceholders returns n distinct integer registers suitable as
// snippet placeholder names at a site that also references the given
// instruction's own registers.  Placeholder names must be disjoint
// from every real register the snippet body mentions: register
// substitution rewrites *names*, so a template that used %l0 as a
// placeholder while also reading the program's real %l0 would have
// the real reference rewritten too.
func PickPlaceholders(inst *machine.Inst, n int) ([]machine.Reg, error) {
	avoid := inst.Reads().Union(inst.Writes())
	var out []machine.Reg
	scavengeUniverse().Minus(avoid).ForEach(func(r machine.Reg) {
		if len(out) < n {
			out = append(out, r)
		}
	})
	if len(out) < n {
		return nil, fmt.Errorf("core: cannot find %d placeholder registers", n)
	}
	return out, nil
}

// instantiate allocates registers for s at a point where live is the
// live-register set.  When scavenge is false (ablation), every
// placeholder is spilled.
func instantiate(s *Snippet, live machine.RegSet, scavenge bool, stats *ScavengeStats) (*placed, error) {
	stats.Sites++
	body := s.Body
	usedAlt := false
	if (s.ClobbersCC || bodyClobbersCC(s.Body)) && live.Has(machine.RegPSR) {
		if s.CCAlt == nil {
			return nil, fmt.Errorf("core: snippet clobbers live condition codes and has no cc-preserving body")
		}
		body = s.CCAlt
		usedAlt = true
		stats.CCLive++
		if bodyClobbersCC(body) {
			return nil, fmt.Errorf("core: cc-preserving snippet body still clobbers the condition codes")
		}
	}

	assign := map[machine.Reg]machine.Reg{}
	var chosen machine.RegSet
	var spillRegs []machine.Reg

	candidates := scavengeUniverse().Minus(live).Minus(s.Forbid)
	for _, ph := range s.AllocRegs {
		var got machine.Reg
		found := false
		if scavenge {
			candidates.Minus(chosen).ForEach(func(r machine.Reg) {
				if !found {
					got, found = r, true
				}
			})
		}
		if !found {
			// No dead register: pick any allowed register and spill
			// it around the snippet (paper §3.5: "EEL wraps the
			// snippet with code to spill registers to the stack").
			spillPool := scavengeUniverse().Minus(s.Forbid).Minus(chosen)
			spillPool.ForEach(func(r machine.Reg) {
				if !found {
					got, found = r, true
				}
			})
			if !found {
				return nil, fmt.Errorf("core: no registers available for snippet")
			}
			spillRegs = append(spillRegs, got)
		}
		assign[ph] = got
		chosen = chosen.Add(got)
	}

	// Simultaneous substitution: a placeholder may be assigned a
	// register that is itself another placeholder's name.
	words := make([]uint32, len(body))
	for i, w := range body {
		words[i] = sparc.SubstRegs(w, assign)
	}

	if len(spillRegs) > 0 {
		wrapped, err := wrapSpill(words, spillRegs)
		if err != nil {
			return nil, err
		}
		words = wrapped
		stats.Spilled++
	} else {
		stats.Scavenged++
	}
	return &placed{words: words, assign: assign, snip: s, spilled: len(spillRegs) > 0, ccAlt: usedAlt}, nil
}

// wrapSpill surrounds body with stack spill/reload of regs.  The
// frame is popped before the body would need it, so snippet bodies
// must not address the stack (documented limitation, matching the
// paper's note that call-backs adjust sp-recording code).
func wrapSpill(body []uint32, regs []machine.Reg) ([]uint32, error) {
	const frame = 96 // standard minimal SPARC frame, keeps %sp aligned
	out := make([]uint32, 0, len(body)+2*len(regs)+2)
	push, err := sparc.EncodeOp3Imm("add", sparc.RegSP, sparc.RegSP, -frame)
	if err != nil {
		return nil, err
	}
	out = append(out, push)
	for i, r := range regs {
		st, err := sparc.EncodeOp3Imm("st", r, sparc.RegSP, int32(64+4*i))
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
	out = append(out, body...)
	for i, r := range regs {
		ld, err := sparc.EncodeOp3Imm("ld", r, sparc.RegSP, int32(64+4*i))
		if err != nil {
			return nil, err
		}
		out = append(out, ld)
	}
	pop, err := sparc.EncodeOp3Imm("add", sparc.RegSP, sparc.RegSP, frame)
	if err != nil {
		return nil, err
	}
	out = append(out, pop)
	return out, nil
}
