package core

import (
	"fmt"

	"eel/internal/cfg"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/sparc"
)

// This file turns an edited CFG back into machine code (§3.3.1):
// blocks are laid out in original order with edited control paths
// diverted through stubs appended at the routine's end, branch and
// call displacements are adjusted to the new layout, unedited delay
// slots get their hoisted instructions folded back, resolved
// indirect jumps keep their dispatch tables (rewritten to edited
// addresses, with per-edge instrumentation redirected through
// stubs), and unresolved indirect transfers go through a run-time
// address-translation table, exactly the fallback the paper
// describes for jumps the slicer cannot analyze.

// targetKind addresses one of three label spaces during emission.
type targetKind int

const (
	tBlock targetKind = iota // a block of this routine
	tOrig                    // an original program address (global map)
	tStub                    // a stub appended to this routine
)

type target struct {
	kind  targetKind
	block *cfg.Block
	orig  uint32
	stub  int
}

// emitItem is one fixed-size unit of output code.
type emitItem struct {
	sizeWords int
	emit      func(ctx *emitCtx, at uint32) ([]uint32, error)
}

// tableRedirect retargets dispatch-table entries whose edges carry
// instrumentation: entries holding origTarget are rewritten to the
// stub instead of the target's edited address.
type tableRedirect struct {
	tableAddr  uint32
	tableLen   int
	origTarget uint32
	stub       int
}

// routinePlan is a measured routine layout.
type routinePlan struct {
	r         *Routine
	items     []emitItem
	offsets   []int // word offset of each item
	sizeWords int

	blockOffset map[*cfg.Block]int
	stubOffset  []int

	// localMap: original instruction address → byte offset in the
	// edited routine.
	localMap map[uint32]int

	redirects []tableRedirect
	tables    []*cfg.IndirectJump
	needTT    bool
}

// emitCtx carries global layout state into emission.
type emitCtx struct {
	exec    *Executable
	plan    *routinePlan
	base    uint32 // this routine's new base address
	addrOf  func(orig uint32) (uint32, bool)
	ttDelta uint32
}

func (ctx *emitCtx) resolve(t target) (uint32, error) {
	switch t.kind {
	case tBlock:
		off, ok := ctx.plan.blockOffset[t.block]
		if !ok {
			return 0, fmt.Errorf("core: no layout position for block at %#x", t.block.Start())
		}
		return ctx.base + uint32(off*4), nil
	case tStub:
		return ctx.base + uint32(ctx.plan.stubOffset[t.stub]*4), nil
	default:
		a, ok := ctx.addrOf(t.orig)
		if !ok {
			return 0, fmt.Errorf("core: no edited address for %#x", t.orig)
		}
		return a, nil
	}
}

// measurer accumulates the plan.
type measurer struct {
	r     *Routine
	g     *cfg.Graph
	lv    *dataflow.Liveness
	plan  *routinePlan
	stubs []func() error // deferred stub bodies, measured after main code
	cur   int            // current word offset
}

// Liveness accessors: under LightAnalysis (the ad-hoc baseline of
// experiment E1) no liveness is computed and every register is
// considered live, so snippets always spill.
func (m *measurer) liveAtEdge(e *cfg.Edge) machine.RegSet {
	if m.lv == nil {
		return allRegsLive()
	}
	return m.lv.LiveAtEdge(e)
}

func (m *measurer) liveBefore(b *cfg.Block, idx int) machine.RegSet {
	if m.lv == nil {
		return allRegsLive()
	}
	return m.lv.LiveBefore(b, idx)
}

func (m *measurer) liveAfter(b *cfg.Block, idx int) machine.RegSet {
	if m.lv == nil {
		return allRegsLive()
	}
	return m.lv.LiveAfter(b, idx)
}

// allRegsLive returns the integer universe minus the condition
// codes (snippets that avoid cc still work without analysis).
func allRegsLive() machine.RegSet {
	var s machine.RegSet
	for r := machine.Reg(0); r < 64; r++ {
		s = s.Add(r)
	}
	for r := machine.FloatBase; r < machine.FloatBase+32; r++ {
		s = s.Add(r)
	}
	return s.Remove(machine.RegPSR)
}

// measure lays out routine r's edited code.
func measure(r *Routine, g *cfg.Graph) (*routinePlan, error) {
	m := &measurer{
		r: r,
		g: g,
		plan: &routinePlan{
			r:           r,
			blockOffset: map[*cfg.Block]int{},
			localMap:    map[uint32]int{},
		},
	}
	if !r.Exec.LightAnalysis {
		m.lv = dataflow.ComputeLiveness(g, dataflow.DefaultExitLive())
	}
	// Normal blocks in original address order keep fall-throughs
	// adjacent (the paper's "laying out its blocks and snippets to
	// minimize unnecessary jumps").
	var order []*cfg.Block
	for _, b := range g.Blocks {
		if b.Kind == cfg.KindNormal {
			order = append(order, b)
		}
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].Start() < order[i].Start() {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for i, b := range order {
		var next *cfg.Block
		if i+1 < len(order) {
			next = order[i+1]
		}
		if err := m.block(b, next); err != nil {
			return nil, err
		}
	}
	// Now measure the deferred stubs.
	for _, f := range m.stubs {
		if err := f(); err != nil {
			return nil, err
		}
	}
	m.plan.sizeWords = m.cur
	return m.plan, nil
}

// add appends an item at the current offset.
func (m *measurer) add(it emitItem) {
	m.plan.items = append(m.plan.items, it)
	m.plan.offsets = append(m.plan.offsets, m.cur)
	m.cur += it.sizeWords
}

// record maps an original address to the current offset; normal
// instruction occurrences overwrite delay-slot copies.
func (m *measurer) record(addr uint32, primary bool) {
	if _, ok := m.plan.localMap[addr]; ok && !primary {
		return
	}
	m.plan.localMap[addr] = m.cur * 4
}

// origWord emits the instruction's original encoding verbatim.
func (m *measurer) origWord(in cfg.Inst, primary bool) {
	m.record(in.Addr, primary)
	w := in.MI.Word()
	m.add(emitItem{sizeWords: 1, emit: func(*emitCtx, uint32) ([]uint32, error) {
		return []uint32{w}, nil
	}})
}

// snippets instantiates and emits a list of snippets at a point with
// the given live set.
func (m *measurer) snippets(list []*Snippet, live machine.RegSet) error {
	for _, s := range list {
		p, err := instantiate(s, live, m.r.Exec.Scavenge, &m.r.Exec.Stats)
		if err != nil {
			return err
		}
		m.add(emitItem{sizeWords: p.size(), emit: func(ctx *emitCtx, at uint32) ([]uint32, error) {
			p.runCallback(at)
			return p.words, nil
		}})
	}
	return nil
}

// branchTo emits a control-transfer word retargeted to t.  The word
// must be a disp22 branch or a call.  In routines that contain data
// (garbage decoded under a misleading symbol), unresolvable targets
// emit a trapping word instead of failing the whole layout: such
// paths are never executed, and if they ever are, the fault is loud.
func (m *measurer) branchTo(word uint32, isCall bool, t target) {
	tolerant := m.g.HasData
	m.add(emitItem{sizeWords: 1, emit: func(ctx *emitCtx, at uint32) ([]uint32, error) {
		dest, err := ctx.resolve(t)
		if err != nil {
			// A "branch" whose target lies outside the text segment
			// is data misread as code (stripped executables make
			// these routinely); it can never have executed.
			if tolerant || (t.kind == tOrig && !ctx.exec.File.Text().Contains(t.orig)) {
				return []uint32{0}, nil // UNIMP
			}
			return nil, err
		}
		disp := (int32(dest) - int32(at)) / 4
		if isCall {
			return []uint32{sparc.WithCallDisp(word, disp)}, nil
		}
		w, err := sparc.WithBranchDisp(word, disp)
		if err != nil {
			return nil, fmt.Errorf("core: branch span overflow: %w", err)
		}
		return []uint32{w}, nil
	}})
}

// jumpTo emits a synthetic unconditional transfer (ba,a — one word,
// no delay-slot execution) to t.
func (m *measurer) jumpTo(t target) error {
	w, err := sparc.EncodeBranch("ba", true, 0)
	if err != nil {
		return err
	}
	m.branchTo(w, false, t)
	return nil
}

// jumpToOrigOrTrap emits ba,a to an original address when it has an
// edited location, or an illegal word otherwise.  It is used where a
// block statically falls off the routine's end: when a routine
// follows, control continues there; when nothing is mapped (the text
// ends, or only data follows — typical after an exit system call),
// execution must never arrive, and the illegal word turns a
// mis-analysis into a loud fault instead of silent corruption.
func (m *measurer) jumpToOrigOrTrap(orig uint32) error {
	w, err := sparc.EncodeBranch("ba", true, 0)
	if err != nil {
		return err
	}
	m.add(emitItem{sizeWords: 1, emit: func(ctx *emitCtx, at uint32) ([]uint32, error) {
		dest, ok := ctx.addrOf(orig)
		if !ok {
			return []uint32{0}, nil // UNIMP: faults if ever reached
		}
		disp := (int32(dest) - int32(at)) / 4
		out, err := sparc.WithBranchDisp(w, disp)
		if err != nil {
			return nil, err
		}
		return []uint32{out}, nil
	}})
	return nil
}

// jumpToIfNotNext emits ba,a unless dest is the next laid-out block.
func (m *measurer) jumpToIfNotNext(dest *cfg.Block, next *cfg.Block) error {
	if dest == next {
		return nil
	}
	return m.jumpTo(target{kind: tBlock, block: dest})
}

// path is one way out of a control transfer: the edge leaving the
// block, an optional hoisted delay-slot block, the edge leaving it,
// and the destination.
type path struct {
	e1   *cfg.Edge
	ds   *cfg.Block
	e2   *cfg.Edge
	dest *cfg.Block // graph Exit for interprocedural transfers
	orig uint32     // original destination address when dest is Exit
}

// pathFor decodes the CFG shape downstream of edge e.
func (m *measurer) pathFor(e *cfg.Edge, origDest uint32) path {
	p := path{e1: e, dest: e.To, orig: origDest}
	if e.To.Kind == cfg.KindDelaySlot {
		p.ds = e.To
		p.e2 = e.To.Succ[0]
		p.dest = p.e2.To
	}
	return p
}

// edited reports whether any part of the path carries edits.
func (m *measurer) edited(p path) bool {
	r := m.r
	if len(r.edgeEdits[p.e1]) > 0 {
		return true
	}
	if p.e2 != nil && len(r.edgeEdits[p.e2]) > 0 {
		return true
	}
	if p.ds != nil {
		k := instKey{p.ds, 0}
		if len(r.beforeEdits[k]) > 0 || len(r.afterEdits[k]) > 0 || r.deleted[k] {
			return true
		}
	}
	return false
}

// emitPathBody emits a path's instrumentation and delay-slot copy
// (everything but the final transfer).
func (m *measurer) emitPathBody(p path) error {
	if err := m.snippets(m.r.edgeEdits[p.e1], m.liveAtEdge(p.e1)); err != nil {
		return err
	}
	if p.ds != nil {
		if err := m.instWithEdits(p.ds, 0, false); err != nil {
			return err
		}
	}
	if p.e2 != nil {
		if err := m.snippets(m.r.edgeEdits[p.e2], m.liveAtEdge(p.e2)); err != nil {
			return err
		}
	}
	return nil
}

// pathTarget returns where the path transfers to.
func (m *measurer) pathTarget(p path) target {
	if p.dest == m.g.Exit {
		return target{kind: tOrig, orig: p.orig}
	}
	return target{kind: tBlock, block: p.dest}
}

// instWithEdits emits one instruction with its before/after snippets,
// honouring deletion.
func (m *measurer) instWithEdits(b *cfg.Block, idx int, primary bool) error {
	k := instKey{b, idx}
	if err := m.snippets(m.r.beforeEdits[k], m.liveBefore(b, idx)); err != nil {
		return err
	}
	if m.r.deleted[k] {
		m.record(b.Insts[idx].Addr, primary)
	} else {
		m.origWord(b.Insts[idx], primary)
	}
	return m.snippets(m.r.afterEdits[k], m.liveAfter(b, idx))
}

// stub defers a code sequence to the routine's end and returns its
// label.
func (m *measurer) stub(body func() error) int {
	id := len(m.plan.stubOffset)
	m.plan.stubOffset = append(m.plan.stubOffset, -1)
	m.stubs = append(m.stubs, func() error {
		m.plan.stubOffset[id] = m.cur
		return body()
	})
	return id
}

// block lays out one normal block; next is the block laid out after
// it (for fall-through suppression).
func (m *measurer) block(b *cfg.Block, next *cfg.Block) error {
	m.plan.blockOffset[b] = m.cur
	last := len(b.Insts) - 1
	isCTI := last >= 0 && b.Insts[last].MI.Category().IsControl()

	bodyEnd := len(b.Insts)
	if isCTI {
		bodyEnd = last
	}
	for i := 0; i < bodyEnd; i++ {
		if err := m.instWithEdits(b, i, true); err != nil {
			return err
		}
	}
	if !isCTI {
		// Fall-through block: one successor edge.
		if len(b.Succ) == 0 {
			return nil
		}
		e := b.Succ[0]
		if err := m.snippets(m.r.edgeEdits[e], m.liveAtEdge(e)); err != nil {
			return err
		}
		if e.To == m.g.Exit {
			// Fell off the routine into the next one (or data).
			if b.HasData {
				return nil // nothing to transfer to; data follows
			}
			fallAddr := b.Insts[last].Addr + 4
			return m.jumpToOrigOrTrap(fallAddr)
		}
		return m.jumpToIfNotNext(e.To, next)
	}
	return m.terminator(b, last, next)
}

// terminator lowers the block's final control transfer.
func (m *measurer) terminator(b *cfg.Block, last int, next *cfg.Block) error {
	in := b.Insts[last]
	inst := in.MI
	a := in.Addr
	word := inst.Word()
	k := instKey{b, last}

	// Instrumentation before the transfer itself.
	if err := m.snippets(m.r.beforeEdits[k], m.liveBefore(b, last)); err != nil {
		return err
	}

	// Classify outgoing paths.
	var taken, fall path
	hasTaken, hasFall := false, false
	origTarget, _ := inst.StaticTarget(a)
	fallAddr := a + 4 + 4*uint32(inst.DelaySlots())
	for _, e := range b.Succ {
		switch e.Kind {
		case cfg.EdgeTaken:
			taken = m.pathFor(e, origTarget)
			hasTaken = true
		case cfg.EdgeFall:
			fall = m.pathFor(e, fallAddr)
			hasFall = true
		case cfg.EdgeExit:
			// Unconditional transfer out of the routine, or the
			// taken/fall side of a branch leaving the routine; the
			// original address distinguishes them below.
			p := m.pathFor(e, origTarget)
			if inst.Category() == machine.CatBranch && hasTaken {
				p.orig = fallAddr
				fall, hasFall = p, true
			} else {
				taken, hasTaken = p, true
			}
		}
	}

	switch inst.Category() {
	case machine.CatBranch:
		return m.lowerBranch(b, in, taken, fall, hasTaken, hasFall, next)
	case machine.CatJumpDirect:
		if !hasTaken {
			return fmt.Errorf("core: direct jump at %#x has no path", a)
		}
		// Literal jmpl transfers are always re-synthesized (their
		// word has no displacement field to adjust).
		clean := m.r.Exec.FoldDelaySlots && !m.edited(taken) && inst.Name() != "jmpl"
		if clean && taken.ds != nil {
			m.record(a, true)
			m.branchTo(word, false, m.pathTarget(taken))
			m.origWord(taken.ds.Insts[0], false)
			return nil
		}
		m.record(a, true)
		if err := m.emitPathBody(taken); err != nil {
			return err
		}
		// Replace the original transfer (ba or literal jmpl) with a
		// synthetic ba,a; a literal jmpl's stale address registers
		// become dead code.
		return m.jumpTo(m.pathTarget(taken))
	case machine.CatCallDirect, machine.CatCallIndirect:
		return m.lowerCall(b, in, next)
	case machine.CatReturn:
		m.record(a, true)
		m.add(verbatim(word))
		if len(b.Succ) > 0 {
			if p := m.pathFor(b.Succ[0], 0); p.ds != nil {
				m.origWord(p.ds.Insts[0], false)
			}
		}
		return nil
	case machine.CatJumpIndirect:
		return m.lowerIndirectJump(b, in)
	}
	return fmt.Errorf("core: unexpected terminator %s at %#x", inst, a)
}

func verbatim(word uint32) emitItem {
	return emitItem{sizeWords: 1, emit: func(*emitCtx, uint32) ([]uint32, error) {
		return []uint32{word}, nil
	}}
}

// lowerBranch handles conditional branches: the clean case re-emits
// the original branch + slot with an adjusted displacement (folding
// the hoisted slot back, §3.3); the edited case lowers to an
// annulled branch to a taken-path stub with the fall path inline.
func (m *measurer) lowerBranch(b *cfg.Block, in cfg.Inst, taken, fall path, hasTaken, hasFall bool, next *cfg.Block) error {
	if !hasTaken || !hasFall {
		return fmt.Errorf("core: branch at %#x lacks taken/fall paths", in.Addr)
	}
	clean := m.r.Exec.FoldDelaySlots && !m.edited(taken) && !m.edited(fall)
	if clean {
		m.record(in.Addr, true)
		m.branchTo(in.MI.Word(), false, m.pathTarget(taken))
		// Original slot word follows (it exists in the original
		// encoding whether or not the annul bit is set).
		var ds *cfg.Block
		if taken.ds != nil {
			ds = taken.ds
		} else if fall.ds != nil {
			ds = fall.ds
		}
		if ds != nil {
			m.origWord(ds.Insts[0], false)
		} else {
			// ba,a-style: no slot was hoisted; keep original layout
			// with a nop placeholder for the slot position.
			m.add(verbatim(sparc.Nop()))
		}
		// Fall path continues.
		if fall.dest == m.g.Exit {
			return m.jumpTo(target{kind: tOrig, orig: fall.orig})
		}
		return m.jumpToIfNotNext(fall.dest, next)
	}

	// Edited lowering: bcond,a to a stub carrying the taken path;
	// the annulled nop in the slot vanishes on the untaken path.
	m.record(in.Addr, true)
	takenStub := m.stub(func() error {
		if err := m.emitPathBody(taken); err != nil {
			return err
		}
		return m.jumpTo(m.pathTarget(taken))
	})
	w := in.MI.Word()
	// Force the annul bit so the nop below only runs when taken.
	wA, err := forceAnnul(w)
	if err != nil {
		return err
	}
	m.branchTo(wA, false, target{kind: tStub, stub: takenStub})
	m.add(verbatim(sparc.Nop()))
	// Fall path inline.
	if err := m.emitPathBody(fall); err != nil {
		return err
	}
	if fall.dest == m.g.Exit {
		return m.jumpTo(target{kind: tOrig, orig: fall.orig})
	}
	return m.jumpToIfNotNext(fall.dest, next)
}

// forceAnnul sets a branch word's annul bit.
func forceAnnul(word uint32) (uint32, error) {
	f, ok := sparc.Desc().Field("aflag")
	if !ok {
		return 0, fmt.Errorf("core: no aflag field")
	}
	return f.Insert(word, 1), nil
}

// lowerCall emits call/jmpl-call, its delay slot, return-edge
// instrumentation (which lands exactly at the callee's return point,
// call+8), and the continuation.
func (m *measurer) lowerCall(b *cfg.Block, in cfg.Inst, next *cfg.Block) error {
	inst := in.MI
	m.record(in.Addr, true)

	// Locate slot, surrogate, and return edge.
	var ds *cfg.Block
	e := b.Succ[0]
	if e.To.Kind == cfg.KindDelaySlot {
		ds = e.To
		e = ds.Succ[0]
	}
	surr := e.To
	if surr.Kind != cfg.KindCallSurrogate {
		return fmt.Errorf("core: call at %#x lacks surrogate", in.Addr)
	}
	retEdge := surr.Succ[0]

	if inst.Category() == machine.CatCallDirect {
		m.branchTo(inst.Word(), true, target{kind: tOrig, orig: surr.CallTarget})
	} else {
		// Indirect call: translate the target through the run-time
		// table using the reserved scratch pair %g6/%g7.
		if err := m.translateSeq(inst, true); err != nil {
			if m.g.HasData {
				m.add(verbatim(0)) // never-executed garbage
				return nil
			}
			return err
		}
	}
	if ds != nil {
		m.origWord(ds.Insts[0], false)
	} else {
		m.add(verbatim(sparc.Nop()))
	}
	// Return point: instrumentation on the surrogate's return edge.
	if err := m.snippets(m.r.edgeEdits[retEdge], m.liveAtEdge(retEdge)); err != nil {
		return err
	}
	if retEdge.To == m.g.Exit {
		// Call in tail position: if the callee returns, it returns
		// past the routine's end; transfer to the original
		// fall-through address.
		return m.jumpToOrigOrTrap(in.Addr + 8)
	}
	return m.jumpToIfNotNext(retEdge.To, next)
}

// translateSeq emits the run-time address translation for an
// indirect transfer: %g7 := original target; %g7 := TT[%g7 + delta];
// jmpl %g7 (link register preserved from the original instruction).
func (m *measurer) translateSeq(inst *machine.Inst, isCall bool) error {
	m.plan.needTT = true
	rs1F, _ := inst.Field("rs1")
	iflag, _ := inst.Field("iflag")
	rdF, _ := inst.Field("rd")
	rs1 := machine.Reg(rs1F)
	if rs1 == 6 || rs1 == 7 {
		return fmt.Errorf("core: indirect transfer uses reserved scratch register %s", sparc.RegName(rs1))
	}

	var computeTarget uint32
	var err error
	if iflag == 1 {
		simmF, _ := inst.Field("simm13")
		simm := int32(signExtend13(simmF))
		computeTarget, err = sparc.EncodeOp3Imm("add", 7, rs1, simm)
	} else {
		rs2F, _ := inst.Field("rs2")
		if rs2F == 6 || rs2F == 7 {
			return fmt.Errorf("core: indirect transfer uses reserved scratch register")
		}
		computeTarget, err = sparc.EncodeOp3("add", 7, rs1, machine.Reg(rs2F))
	}
	if err != nil {
		return err
	}
	m.add(verbatim(computeTarget))

	// sethi %hi(delta), %g6 ; or %g6, %lo(delta), %g6 — delta known
	// only at emission.
	m.add(emitItem{sizeWords: 2, emit: func(ctx *emitCtx, at uint32) ([]uint32, error) {
		hi, err := sparc.EncodeSethi(6, ctx.ttDelta)
		if err != nil {
			return nil, err
		}
		lo, err := sparc.EncodeOp3Imm("or", 6, 6, int32(sparc.Lo(ctx.ttDelta)))
		if err != nil {
			return nil, err
		}
		return []uint32{hi, lo}, nil
	}})

	ld, err := sparc.EncodeOp3("ld", 7, 7, 6)
	if err != nil {
		return err
	}
	m.add(verbatim(ld))

	jmpl, err := sparc.EncodeOp3Imm("jmpl", machine.Reg(rdF), 7, 0)
	if err != nil {
		return err
	}
	m.add(verbatim(jmpl))
	return nil
}

func signExtend13(v uint32) uint32 { return uint32(int32(v<<19) >> 19) }

// lowerIndirectJump handles register-indirect jumps: resolved ones
// keep the original jump with the dispatch table rewritten (per-edge
// instrumentation diverts table entries through stubs); unresolved
// ones translate at run time.
func (m *measurer) lowerIndirectJump(b *cfg.Block, in cfg.Inst) error {
	inst := in.MI
	var ij *cfg.IndirectJump
	for _, cand := range m.g.IndirectJumps {
		if cand.Addr == in.Addr {
			ij = cand
			break
		}
	}
	if ij == nil {
		return fmt.Errorf("core: indirect jump at %#x unregistered", in.Addr)
	}

	// Locate the slot block and outgoing edges.
	var ds *cfg.Block
	fanout := b.Succ
	var e1 *cfg.Edge
	if len(b.Succ) == 1 && b.Succ[0].To.Kind == cfg.KindDelaySlot {
		e1 = b.Succ[0]
		ds = e1.To
		fanout = ds.Succ
	}

	if !ij.Resolved || ij.RuntimeOnly {
		// Run-time translation: the translation sequence reads the
		// jump's operands *before* the transfer, and the original
		// slot instruction stays in the emitted jmpl's delay slot —
		// exactly the original ordering, so even a slot that writes
		// the jump's address register behaves identically.
		m.record(in.Addr, true)
		if err := m.translateSeq(inst, false); err != nil {
			if m.g.HasData {
				// Garbage decoded under a misleading symbol (e.g. a
				// jump "through" the reserved scratch registers):
				// emit a trapping word; the path never executes.
				m.add(verbatim(0))
				return nil
			}
			return err
		}
		if ds != nil {
			m.origWord(ds.Insts[0], false)
		} else {
			m.add(verbatim(sparc.Nop()))
		}
		return nil
	}

	// Resolved: pre-slot edge edits and slot edits force hoisting
	// the slot above the jump (safe unless it feeds the jump).
	k := instKey{ds, 0}
	hoist := e1 != nil && (len(m.r.edgeEdits[e1]) > 0 ||
		(ds != nil && (len(m.r.beforeEdits[k]) > 0 || len(m.r.afterEdits[k]) > 0 || m.r.deleted[k])))
	m.record(in.Addr, true)
	if hoist {
		if !ds.Insts[0].MI.Writes().Intersect(inst.Reads()).IsEmpty() {
			return fmt.Errorf("core: cannot hoist delay slot feeding the jump at %#x", in.Addr)
		}
		if err := m.snippets(m.r.edgeEdits[e1], m.liveAtEdge(e1)); err != nil {
			return err
		}
		if err := m.instWithEdits(ds, 0, false); err != nil {
			return err
		}
	}
	if ij.Literal {
		// Literal-target jump: emit as a direct transfer.
		if !hoist && ds != nil {
			if err := m.instWithEdits(ds, 0, false); err != nil {
				return err
			}
		}
		return m.jumpTo(target{kind: tOrig, orig: ij.LiteralTarget})
	}
	m.add(verbatim(inst.Word()))
	if hoist || ds == nil {
		m.add(verbatim(sparc.Nop()))
	} else {
		m.origWord(ds.Insts[0], false)
	}

	// Table bookkeeping: every fan-out edge with edits gets a stub
	// and a redirect; the executable rewrites the table.
	m.plan.tables = append(m.plan.tables, ij)
	for _, e := range fanout {
		if e.To == m.g.Exit || len(m.r.edgeEdits[e]) == 0 {
			continue
		}
		e := e
		destStart := e.To.Start()
		stub := m.stub(func() error {
			if err := m.snippets(m.r.edgeEdits[e], m.liveAtEdge(e)); err != nil {
				return err
			}
			return m.jumpTo(target{kind: tBlock, block: e.To})
		})
		m.plan.redirects = append(m.plan.redirects, tableRedirect{
			tableAddr:  ij.TableAddr,
			tableLen:   ij.TableLen,
			origTarget: destStart,
			stub:       stub,
		})
	}
	return nil
}
