package core_test

import (
	"testing"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/sim"
	"eel/internal/sparc"
)

// addSnippet builds a snippet writing a fixed value to addr (not an
// increment, so ordering tests can distinguish writers).
func storeValueSnippet(t *testing.T, addr uint32, value int32) *core.Snippet {
	t.Helper()
	p1, p2 := machine.Reg(16), machine.Reg(17)
	hi, err := sparc.EncodeSethi(p1, addr)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := sparc.EncodeOp3Imm("or", p2, 0, value)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sparc.EncodeOp3Imm("st", p2, p1, int32(sparc.Lo(addr)))
	if err != nil {
		t.Fatal(err)
	}
	return core.NewSnippet([]uint32{hi, mv, st}, []machine.Reg{p1, p2})
}

func TestMultipleSnippetsPerEdgeOrdered(t *testing.T) {
	// Snippets on one edge run in insertion order: the LAST writer
	// wins at the shared address.
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	addr := e.AllocData(4)
	for _, b := range g.Blocks {
		if len(b.Succ) <= 1 {
			continue
		}
		for _, edge := range b.Succ {
			if edge.Kind == cfg.EdgeFall {
				if err := r.AddCodeAlong(edge, storeValueSnippet(t, addr, 11)); err != nil {
					t.Fatal(err)
				}
				if err := r.AddCodeAlong(edge, storeValueSnippet(t, addr, 22)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 100000)
	if cpu.ExitCode != 55 {
		t.Fatalf("exit = %d", cpu.ExitCode)
	}
	if got := cpu.Mem.Read32(addr); got != 22 {
		t.Errorf("last snippet did not run last: %d", got)
	}
}

func TestAddCodeBeforeAndAfter(t *testing.T) {
	src := `
main:	mov 5, %o0
	add %o0, 1, %o0
	mov 1, %g1
	ta 0
`
	e, _ := makeExec(t, src, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	before := e.AllocData(4)
	after := e.AllocData(4)
	b := g.ByAddr[0x10000]
	// Before the add: o0 == 5; after: o0 == 6.  Capture o0 into the
	// two cells with custom snippets.
	cap := func(addr uint32) *core.Snippet {
		p1 := machine.Reg(16)
		hi, _ := sparc.EncodeSethi(p1, addr)
		st, _ := sparc.EncodeOp3Imm("st", 8 /*%o0*/, p1, int32(sparc.Lo(addr)))
		return core.NewSnippet([]uint32{hi, st}, []machine.Reg{p1})
	}
	if err := r.AddCodeBefore(b, 1, cap(before)); err != nil {
		t.Fatal(err)
	}
	if err := r.AddCodeAfter(b, 1, cap(after)); err != nil {
		t.Fatal(err)
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1000)
	if cpu.Mem.Read32(before) != 5 || cpu.Mem.Read32(after) != 6 {
		t.Errorf("before=%d after=%d, want 5/6",
			cpu.Mem.Read32(before), cpu.Mem.Read32(after))
	}
}

func TestEditDelaySlotBlock(t *testing.T) {
	// Instrumentation inside a hoisted delay-slot block runs only on
	// the path that executes the slot.
	src := `
main:	clr %o0
	cmp %g0, 1
	bne,a done
	add %o0, 5, %o0
	add %o0, 100, %o0
done:	mov 1, %g1
	ta 0
`
	e, _ := makeExec(t, src, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	addr := e.AllocData(4)
	found := false
	for _, b := range g.Blocks {
		if b.Kind == cfg.KindDelaySlot && !b.Uneditable {
			if err := r.AddCodeBefore(b, 0, storeValueSnippet(t, addr, 77)); err != nil {
				t.Fatal(err)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no editable delay-slot block")
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1000)
	// Branch taken: the slot executes, so the marker is written and
	// o0 == 5.
	if cpu.ExitCode != 5 {
		t.Fatalf("exit = %d", cpu.ExitCode)
	}
	if cpu.Mem.Read32(addr) != 77 {
		t.Errorf("delay-slot instrumentation missed: %d", cpu.Mem.Read32(addr))
	}
}

func TestForbiddenRegistersRespected(t *testing.T) {
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	addr := e.AllocData(4)
	snip := counterSnippet(t, addr)
	// Forbid everything except two registers: the allocator must
	// pick exactly those.
	var forbid machine.RegSet
	for reg := machine.Reg(1); reg < 32; reg++ {
		if reg != 20 && reg != 21 {
			forbid = forbid.Add(reg)
		}
	}
	snip.Forbid = forbid
	snip.Callback = func(words []uint32, a uint32, assign map[machine.Reg]machine.Reg) {
		for _, got := range assign {
			if got != 20 && got != 21 {
				t.Errorf("allocator chose forbidden register %d", got)
			}
		}
	}
	for _, b := range g.Blocks {
		if len(b.Succ) > 1 {
			for _, edge := range b.Succ {
				if !edge.Uneditable {
					if err := r.AddCodeAlong(edge, snip); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	if _, err := e.BuildEdited(); err != nil {
		t.Fatal(err)
	}
}

func TestNestedLoopInstrumentation(t *testing.T) {
	src := `
main:	clr %o0
	mov 3, %l0
outer:	mov 4, %l1
inner:	add %o0, 1, %o0
	subcc %l1, 1, %l1
	bne inner
	nop
	subcc %l0, 1, %l0
	bne outer
	nop
	mov 1, %g1
	ta 0
`
	e, _ := makeExec(t, src, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	var addrs []uint32
	for _, b := range g.Blocks {
		if len(b.Succ) <= 1 || b.Kind != cfg.KindNormal {
			continue
		}
		for _, edge := range b.Succ {
			if edge.Uneditable {
				continue
			}
			a := e.AllocData(4)
			addrs = append(addrs, a)
			if err := r.AddCodeAlong(edge, counterSnippet(t, a)); err != nil {
				t.Fatal(err)
			}
		}
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 100000)
	if cpu.ExitCode != 12 {
		t.Fatalf("exit = %d, want 12", cpu.ExitCode)
	}
	var total uint64
	for _, a := range addrs {
		total += uint64(cpu.Mem.Read32(a))
	}
	// inner bne: 9 taken + 3 fall; outer bne: 2 taken + 1 fall = 15.
	if total != 15 {
		t.Errorf("edge events = %d, want 15", total)
	}
}

func TestProduceEditedRoutineIdempotentAfterDelete(t *testing.T) {
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	if err := r.ProduceEditedRoutine(); err != nil {
		t.Fatal(err)
	}
	// DeleteControlFlowGraph then re-produce (the paper's memory
	// reclamation pattern).
	r.DeleteControlFlowGraph()
	if err := r.ProduceEditedRoutine(); err != nil {
		t.Fatal(err)
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 100000)
	if cpu.ExitCode != 55 {
		t.Errorf("exit = %d", cpu.ExitCode)
	}
}

func TestPickPlaceholders(t *testing.T) {
	w, _ := sparc.EncodeOp3("add", 16, 17, 18) // uses l0,l1,l2
	inst := sparc.NewDecoder().Decode(w)
	phs, err := core.PickPlaceholders(inst, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[machine.Reg]bool{}
	for _, p := range phs {
		if p == 16 || p == 17 || p == 18 {
			t.Errorf("placeholder %d collides with the instruction's registers", p)
		}
		if seen[p] {
			t.Errorf("duplicate placeholder %d", p)
		}
		seen[p] = true
	}
	if _, err := core.PickPlaceholders(inst, 30); err == nil {
		t.Error("impossible request satisfied")
	}
}

func TestStatsAccumulation(t *testing.T) {
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, b := range g.Blocks {
		if len(b.Succ) > 1 {
			for _, edge := range b.Succ {
				if !edge.Uneditable {
					if err := r.AddCodeAlong(edge, counterSnippet(t, e.AllocData(4))); err != nil {
						t.Fatal(err)
					}
					n++
				}
			}
		}
	}
	if _, err := e.BuildEdited(); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Sites != n {
		t.Errorf("stats sites = %d, want %d", e.Stats.Sites, n)
	}
	if e.Stats.Scavenged+e.Stats.Spilled != n {
		t.Errorf("scavenged+spilled = %d", e.Stats.Scavenged+e.Stats.Spilled)
	}
}

var _ = sim.NewMemory // keep the import when helpers change
