package core_test

import (
	"bytes"
	"testing"

	_ "eel/internal/aout" // register the a.out container format
	"eel/internal/asm"
	"eel/internal/binfile"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/sim"
	"eel/internal/sparc"
)

// makeExec assembles src at base and wraps it as an executable whose
// routines are the given labels (in address order; extents run to the
// next label or the image end).
func makeExec(t *testing.T, src string, base uint32, routines ...string) (*core.Executable, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, base)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	f := &binfile.File{
		Format: "aout",
		Entry:  base,
		Sections: []binfile.Section{
			{Name: "text", Addr: base, Data: prog.Bytes},
		},
	}
	for _, name := range routines {
		addr, ok := prog.Labels[name]
		if !ok {
			t.Fatalf("no label %q", name)
		}
		f.Symbols = append(f.Symbols, binfile.Symbol{Name: name, Addr: addr, Kind: binfile.SymFunc, Global: true})
	}
	if len(routines) == 0 {
		f.Symbols = append(f.Symbols, binfile.Symbol{Name: "main", Addr: base, Kind: binfile.SymFunc, Global: true})
	}
	e, err := core.NewExecutable(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	return e, prog
}

// runImage executes an image in the emulator.
func runImage(t *testing.T, f *binfile.File, maxSteps uint64) (*sim.CPU, string) {
	t.Helper()
	mem := sim.NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := sim.New(sparc.NewDecoder(), mem)
	var out bytes.Buffer
	cpu.Stdout = &out
	text := f.Text()
	cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	cpu.Reset(f.Entry, 0x7ff000)
	if err := cpu.Run(maxSteps); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !cpu.Halted {
		t.Fatal("program did not halt")
	}
	return cpu, out.String()
}

// counterSnippet builds the Figure 2/5 increment snippet for a
// counter at addr, with %l0/%l1 as placeholder registers.
func counterSnippet(t *testing.T, addr uint32) *core.Snippet {
	t.Helper()
	p1, p2 := machine.Reg(16), machine.Reg(17) // %l0 %l1 placeholders
	hi, err := sparc.EncodeSethi(p1, addr)
	if err != nil {
		t.Fatal(err)
	}
	ld, err := sparc.EncodeOp3Imm("ld", p2, p1, int32(sparc.Lo(addr)))
	if err != nil {
		t.Fatal(err)
	}
	add, err := sparc.EncodeOp3Imm("add", p2, p2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sparc.EncodeOp3Imm("st", p2, p1, int32(sparc.Lo(addr)))
	if err != nil {
		t.Fatal(err)
	}
	return core.NewSnippet([]uint32{hi, ld, add, st}, []machine.Reg{p1, p2})
}

const loopProgram = `
main:	mov 10, %l0
	clr %o0
loop:	add %o0, %l0, %o0
	subcc %l0, 1, %l0
	bne loop
	nop
	mov 1, %g1
	ta 0
`

func TestIdentityRelayout(t *testing.T) {
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 55 {
		t.Errorf("edited exit = %d, want 55", cpu.ExitCode)
	}
	// Edited entry is inside the new text, not the old.
	if f.Entry == 0x10000 {
		t.Error("entry not relocated")
	}
	if ea, ok := e.EditedAddr(0x10000); !ok || ea != f.Entry {
		t.Errorf("EditedAddr(main) = %#x ok=%v", ea, ok)
	}
}

func TestBranchCountingEndToEnd(t *testing.T) {
	// Figure 1's tool: a counter on each out-edge of every block
	// with more than one successor.
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	type ctr struct {
		addr uint32
	}
	var counters []ctr
	for _, b := range g.Blocks {
		if len(b.Succ) <= 1 {
			continue
		}
		for _, edge := range b.Succ {
			addr := e.AllocData(4)
			if err := r.AddCodeAlong(edge, counterSnippet(t, addr)); err != nil {
				t.Fatalf("AddCodeAlong: %v", err)
			}
			counters = append(counters, ctr{addr})
		}
	}
	if len(counters) != 2 {
		t.Fatalf("instrumented %d edges, want 2 (taken+fall of bne)", len(counters))
	}
	if err := r.ProduceEditedRoutine(); err != nil {
		t.Fatal(err)
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 55 {
		t.Fatalf("edited exit = %d, want 55", cpu.ExitCode)
	}
	// The loop iterates 10 times: bne taken 9, untaken 1.
	mem := sim.NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	// Re-run to inspect memory (runImage discards it).
	cpu2 := sim.New(sparc.NewDecoder(), mem)
	text := f.Text()
	cpu2.TextStart, cpu2.TextEnd = text.Addr, text.End()
	cpu2.Reset(f.Entry, 0x7ff000)
	if err := cpu2.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	got := []uint32{cpu2.Mem.Read32(counters[0].addr), cpu2.Mem.Read32(counters[1].addr)}
	// One edge saw 9, the other 1 (order depends on edge order).
	if !(got[0] == 9 && got[1] == 1 || got[0] == 1 && got[1] == 9) {
		t.Errorf("edge counts = %v, want {9,1}", got)
	}
}

func TestCallProgramSurvivesEditing(t *testing.T) {
	src := `
main:	mov 7, %o0
	call double
	nop
	call double
	nop
	mov 1, %g1
	ta 0
double:	retl
	add %o0, %o0, %o0
`
	e, _ := makeExec(t, src, 0x10000, "main", "double")
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 28 {
		t.Errorf("exit = %d, want 28", cpu.ExitCode)
	}
}

func TestInstrumentAfterCallReturn(t *testing.T) {
	src := `
main:	mov 7, %o0
	call double
	nop
	mov 1, %g1
	ta 0
double:	retl
	add %o0, %o0, %o0
`
	e, _ := makeExec(t, src, 0x10000, "main", "double")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	addr := e.AllocData(4)
	edited := false
	for _, b := range g.Blocks {
		if b.Kind != 4 { // KindCallSurrogate
			continue
		}
		if err := r.AddCodeAlong(b.Succ[0], counterSnippet(t, addr)); err != nil {
			t.Fatalf("edit return edge: %v", err)
		}
		edited = true
	}
	if !edited {
		t.Fatal("no call surrogate found")
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := sim.New(sparc.NewDecoder(), mem)
	text := f.Text()
	cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	cpu.Reset(f.Entry, 0x7ff000)
	if err := cpu.Run(100000); err != nil {
		t.Fatal(err)
	}
	if cpu.ExitCode != 14 {
		t.Errorf("exit = %d, want 14", cpu.ExitCode)
	}
	if n := cpu.Mem.Read32(addr); n != 1 {
		t.Errorf("return-edge counter = %d, want 1", n)
	}
}

const switchProgram = `
main:	mov 2, %o0
	cmp %o0, 3
	bgu default
	sll %o0, 2, %l1
	set table, %l2
	ld [%l2+%l1], %l3
	jmp %l3
	nop
case0:	mov 10, %o0
	ba done
	nop
case1:	mov 20, %o0
	ba done
	nop
case2:	mov 30, %o0
	ba done
	nop
case3:	mov 40, %o0
	ba done
	nop
default: mov 99, %o0
done:	mov 1, %g1
	ta 0
	.align 4
table:	.word case0
	.word case1
	.word case2
	.word case3
`

func TestDispatchTableProgramSurvivesEditing(t *testing.T) {
	e, _ := makeExec(t, switchProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !g.Complete {
		t.Fatal("dispatch table not resolved")
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 30 {
		t.Errorf("exit = %d, want 30 (case 2)", cpu.ExitCode)
	}
}

func TestDispatchEdgeInstrumentation(t *testing.T) {
	e, prog := makeExec(t, switchProgram, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	// Count entries into case2 via the dispatch edge.
	addr := e.AllocData(4)
	found := false
	for _, ij := range g.IndirectJumps {
		if ij.Slot == nil {
			continue
		}
		for _, edge := range ij.Slot.Succ {
			if edge.To.Start() == prog.Labels["case2"] {
				if err := r.AddCodeAlong(edge, counterSnippet(t, addr)); err != nil {
					t.Fatal(err)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("case2 dispatch edge not found")
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	mem := sim.NewMemory()
	for _, s := range f.Sections {
		mem.LoadSegment(s.Addr, s.Data)
	}
	cpu := sim.New(sparc.NewDecoder(), mem)
	text := f.Text()
	cpu.TextStart, cpu.TextEnd = text.Addr, text.End()
	cpu.Reset(f.Entry, 0x7ff000)
	if err := cpu.Run(100000); err != nil {
		t.Fatal(err)
	}
	if cpu.ExitCode != 30 {
		t.Fatalf("exit = %d, want 30", cpu.ExitCode)
	}
	if n := cpu.Mem.Read32(addr); n != 1 {
		t.Errorf("case2 edge counter = %d, want 1", n)
	}
}

func TestRuntimeTranslationFallback(t *testing.T) {
	// A jump through a caller-provided register is unanalyzable:
	// the edited program must still work via the translation table.
	src := `
main:	set helper, %g1
	call trampoline
	nop
	mov 1, %g1
	ta 0
trampoline: jmp %g1
	nop
helper:	mov 77, %o0
	retl
	nop
`
	e, _ := makeExec(t, src, 0x10000, "main", "trampoline", "helper")
	r := e.RoutineByName("trampoline")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	if g.Complete {
		t.Fatal("caller-provided jump should be unresolvable")
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	// helper returns to trampoline's caller via %o7 set by the
	// original call in main... the jmp does not relink, so helper's
	// retl returns to main's call+8. Exit code must be 77.
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 77 {
		t.Errorf("exit = %d, want 77", cpu.ExitCode)
	}
	// A translation table must have been emitted.
	if f.Section("ttable") == nil {
		t.Error("no translation table emitted")
	}
}

func TestIndirectCallThroughRegister(t *testing.T) {
	src := `
main:	set helper, %l0
	call %l0
	nop
	mov 1, %g1
	ta 0
helper:	mov 42, %o0
	retl
	nop
`
	e, _ := makeExec(t, src, 0x10000, "main", "helper")
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 42 {
		t.Errorf("exit = %d, want 42", cpu.ExitCode)
	}
}

func TestDeleteInstruction(t *testing.T) {
	src := `
main:	mov 5, %o0
	add %o0, 90, %o0
	mov 1, %g1
	ta 0
`
	e, _ := makeExec(t, src, 0x10000, "main")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	b := g.ByAddr[0x10000]
	if err := r.DeleteInst(b, 1); err != nil { // delete the add
		t.Fatal(err)
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1000)
	if cpu.ExitCode != 5 {
		t.Errorf("exit = %d, want 5 (add deleted)", cpu.ExitCode)
	}
}

func TestAnnulledBranchSurvivesEditing(t *testing.T) {
	src := `
main:	clr %o0
	cmp %g0, 1
	be,a away
	add %o0, 5, %o0
	add %o0, 1, %o0
	mov 1, %g1
	ta 0
away:	mov 99, %o0
	mov 1, %g1
	ta 0
`
	e, _ := makeExec(t, src, 0x10000, "main")
	// Add instrumentation somewhere to force the edited lowering.
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	addr := e.AllocData(4)
	for _, b := range g.Blocks {
		if b.Start() == 0x10000 {
			for _, edge := range b.Succ {
				if edge.Uneditable {
					continue
				}
				if err := r.AddCodeAlong(edge, counterSnippet(t, addr)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1000)
	if cpu.ExitCode != 1 {
		t.Errorf("exit = %d, want 1 (annulled slot must not run)", cpu.ExitCode)
	}
}

func TestSpillWhenNoDeadRegisters(t *testing.T) {
	// Force spilling by disabling scavenging (the ablation switch).
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	e.Scavenge = false
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	addr := e.AllocData(4)
	for _, b := range g.Blocks {
		if len(b.Succ) > 1 {
			for _, edge := range b.Succ {
				if err := r.AddCodeAlong(edge, counterSnippet(t, addr)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	f, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", cpu.ExitCode)
	}
	if e.Stats.Spilled == 0 {
		t.Error("expected spilled snippet sites with scavenging disabled")
	}
}

func TestStrippedExecutableRecovery(t *testing.T) {
	src := `
main:	call f
	nop
	mov 1, %g1
	ta 0
f:	mov 9, %o0
	retl
	nop
`
	prog := asm.MustAssemble(src, 0x10000)
	f := &binfile.File{
		Format: "aout",
		Entry:  0x10000,
		Sections: []binfile.Section{
			{Name: "text", Addr: 0x10000, Data: prog.Bytes},
		},
		// No symbols: stripped.
	}
	e, err := core.NewExecutable(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	// The call target must have been recovered as a routine.
	if e.RoutineAt(prog.Labels["f"]) == nil ||
		e.RoutineAt(prog.Labels["f"]).Start != prog.Labels["f"] {
		t.Fatal("stripped recovery missed the call target")
	}
	out, err := e.BuildEdited()
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, out, 1000)
	if cpu.ExitCode != 9 {
		t.Errorf("exit = %d, want 9", cpu.ExitCode)
	}
}

func TestUneditableEdgeRejected(t *testing.T) {
	src := `
main:	call f
	nop
	mov 1, %g1
	ta 0
f:	retl
	nop
`
	e, _ := makeExec(t, src, 0x10000, "main", "f")
	r := e.RoutineByName("main")
	g, err := r.ControlFlowGraph()
	if err != nil {
		t.Fatal(err)
	}
	rejected := false
	for _, edge := range g.Edges {
		if edge.Uneditable {
			if err := r.AddCodeAlong(edge, counterSnippet(t, e.AllocData(4))); err != nil {
				rejected = true
			}
		}
	}
	if !rejected {
		t.Error("uneditable edge accepted an edit")
	}
}

func TestWriteAndReadEditedFile(t *testing.T) {
	e, _ := makeExec(t, loopProgram, 0x10000, "main")
	path := t.TempDir() + "/edited.aout"
	if err := e.WriteEditedExecutable(path); err != nil {
		t.Fatal(err)
	}
	f, err := binfile.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := runImage(t, f, 1_000_000)
	if cpu.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", cpu.ExitCode)
	}
	// Symbols regenerated at edited addresses.
	foundMain := false
	for _, s := range f.Symbols {
		if s.Name == "main" && s.Addr == f.Entry {
			foundMain = true
		}
	}
	if !foundMain {
		t.Error("edited symbol table lacks relocated main")
	}
}
