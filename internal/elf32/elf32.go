// Package elf32 implements big-endian ELF32 for SPARC, reader and
// writer, from scratch.  Together with internal/aout it demonstrates
// the paper's claim that EEL's executable abstraction hides file
// format differences (§3.1, §4): the same tools run unchanged over
// either container.  Images written here are valid enough for Go's
// debug/elf to parse, which the tests use as an external check.
package elf32

import (
	"encoding/binary"
	"fmt"
	"strings"

	"eel/internal/binfile"
)

// ELF constants used by this implementation.
const (
	elfClass32   = 1
	elfData2MSB  = 2
	etExec       = 2
	emSparc      = 2
	shtProgbits  = 1
	shtSymtab    = 2
	shtStrtab    = 3
	shfAlloc     = 0x2
	shfExecinstr = 0x4
	shfWrite     = 0x1
	sttNotype    = 0
	sttObject    = 1
	sttFunc      = 2
	stbLocal     = 0
	stbGlobal    = 1
	ptLoad       = 1
)

// FormatName is the name this format registers under.
const FormatName = "elf32"

type format struct{}

func init() { binfile.RegisterFormat(format{}) }

func (format) Name() string { return FormatName }

func (format) Detect(data []byte) bool {
	return len(data) >= 6 && data[0] == 0x7f && data[1] == 'E' && data[2] == 'L' &&
		data[3] == 'F' && data[4] == elfClass32 && data[5] == elfData2MSB
}

type strtab struct {
	data []byte
	idx  map[string]uint32
}

func newStrtab() *strtab {
	return &strtab{data: []byte{0}, idx: map[string]uint32{"": 0}}
}

func (s *strtab) add(name string) uint32 {
	if off, ok := s.idx[name]; ok {
		return off
	}
	off := uint32(len(s.data))
	s.data = append(s.data, name...)
	s.data = append(s.data, 0)
	s.idx[name] = off
	return off
}

func (s *strtab) get(off uint32) string {
	if off >= uint32(len(s.data)) {
		return ""
	}
	end := off
	for end < uint32(len(s.data)) && s.data[end] != 0 {
		end++
	}
	return string(s.data[off:end])
}

type shdr struct {
	name      uint32
	typ       uint32
	flags     uint32
	addr      uint32
	off       uint32
	size      uint32
	link      uint32
	info      uint32
	addralign uint32
	entsize   uint32
}

func (format) Write(f *binfile.File) ([]byte, error) {
	shstr := newStrtab()
	str := newStrtab()

	text := f.Text()
	data := f.Data()
	if text == nil {
		return nil, fmt.Errorf("elf32: image lacks a text section")
	}

	// Symbols: null, locals, then globals (ELF ordering rule).
	type sym struct {
		name        uint32
		value, size uint32
		info, other byte
		shndx       uint16
		global      bool
	}
	shndxFor := func(addr uint32) uint16 {
		if text.Contains(addr) {
			return 1
		}
		if data != nil && data.Contains(addr) {
			return 2
		}
		return 0 // SHN_UNDEF-ish; keep absolute value anyway
	}
	var locals, globals []sym
	for _, s := range f.Symbols {
		var typ byte
		switch s.Kind {
		case binfile.SymFunc:
			typ = sttFunc
		case binfile.SymData:
			typ = sttObject
		default:
			typ = sttNotype
		}
		bind := byte(stbLocal)
		if s.Global {
			bind = stbGlobal
		}
		e := sym{
			name:   str.add(s.Name),
			value:  s.Addr,
			size:   s.Size,
			info:   bind<<4 | typ,
			shndx:  shndxFor(s.Addr),
			global: s.Global,
		}
		if s.Global {
			globals = append(globals, e)
		} else {
			locals = append(locals, e)
		}
	}
	syms := make([]sym, 0, 1+len(locals)+len(globals))
	syms = append(syms, sym{}) // null symbol
	syms = append(syms, locals...)
	syms = append(syms, globals...)
	firstGlobal := uint32(1 + len(locals))

	var symData []byte
	for _, e := range syms {
		symData = binary.BigEndian.AppendUint32(symData, e.name)
		symData = binary.BigEndian.AppendUint32(symData, e.value)
		symData = binary.BigEndian.AppendUint32(symData, e.size)
		symData = append(symData, e.info, e.other)
		symData = binary.BigEndian.AppendUint16(symData, e.shndx)
	}

	// Layout: ehdr(52) + phdrs(2*32) + section payloads + shdr table.
	const ehdrSize = 52
	const phentSize = 32
	nph := 1
	if data != nil {
		nph = 2
	}
	off := uint32(ehdrSize + nph*phentSize)
	align4 := func(v uint32) uint32 { return (v + 3) &^ 3 }

	type placed struct {
		hdr  shdr
		body []byte
	}
	var sections []placed
	add := func(name string, typ, flags uint32, addr uint32, body []byte, link, info, entsize uint32) int {
		off = align4(off)
		sections = append(sections, placed{
			hdr: shdr{
				name: shstr.add(name), typ: typ, flags: flags, addr: addr,
				off: off, size: uint32(len(body)), link: link, info: info,
				addralign: 4, entsize: entsize,
			},
			body: body,
		})
		off += uint32(len(body))
		return len(sections)
	}

	sections = append(sections, placed{}) // null section header
	add(".text", shtProgbits, shfAlloc|shfExecinstr, text.Addr, text.Data, 0, 0, 0)
	if data != nil {
		add(".data", shtProgbits, shfAlloc|shfWrite, data.Addr, data.Data, 0, 0, 0)
	}
	symShIdx := add(".symtab", shtSymtab, 0, 0, symData, uint32(len(sections)+1), firstGlobal, 16)
	add(".strtab", shtStrtab, 0, 0, str.data, 0, 0, 0)
	shstr.add(".shstrtab")
	add(".shstrtab", shtStrtab, 0, 0, shstr.data, 0, 0, 0)
	_ = symShIdx

	shoff := align4(off)

	var out []byte
	u16 := func(v uint16) { out = binary.BigEndian.AppendUint16(out, v) }
	u32 := func(v uint32) { out = binary.BigEndian.AppendUint32(out, v) }

	// ELF header.
	out = append(out, 0x7f, 'E', 'L', 'F', elfClass32, elfData2MSB, 1, 0)
	out = append(out, make([]byte, 8)...) // padding
	u16(etExec)
	u16(emSparc)
	u32(1) // version
	u32(f.Entry)
	u32(ehdrSize) // phoff
	u32(shoff)
	u32(0) // flags
	u16(ehdrSize)
	u16(phentSize)
	u16(uint16(nph))
	u16(40) // shentsize
	u16(uint16(len(sections)))
	u16(uint16(len(sections) - 1)) // shstrndx (last)

	// Program headers (text, then data).
	textOff := sections[1].hdr.off
	writePhdr := func(offset, vaddr, size, flags uint32) {
		u32(ptLoad)
		u32(offset)
		u32(vaddr)
		u32(vaddr)
		u32(size)
		u32(size)
		u32(flags)
		u32(4)
	}
	writePhdr(textOff, text.Addr, uint32(len(text.Data)), 0x5) // R+X
	if data != nil {
		writePhdr(sections[2].hdr.off, data.Addr, uint32(len(data.Data)), 0x6) // R+W
	}

	// Section payloads.
	for _, p := range sections[1:] {
		for uint32(len(out)) < p.hdr.off {
			out = append(out, 0)
		}
		out = append(out, p.body...)
	}
	for uint32(len(out)) < shoff {
		out = append(out, 0)
	}
	// Section header table.
	for _, p := range sections {
		u32(p.hdr.name)
		u32(p.hdr.typ)
		u32(p.hdr.flags)
		u32(p.hdr.addr)
		u32(p.hdr.off)
		u32(p.hdr.size)
		u32(p.hdr.link)
		u32(p.hdr.info)
		u32(p.hdr.addralign)
		u32(p.hdr.entsize)
	}
	return out, nil
}

func (format) Read(raw []byte) (*binfile.File, error) {
	if len(raw) < 52 {
		return nil, fmt.Errorf("elf32: truncated header")
	}
	if raw[0] != 0x7f || raw[1] != 'E' || raw[2] != 'L' || raw[3] != 'F' {
		return nil, fmt.Errorf("elf32: bad magic")
	}
	if raw[4] != elfClass32 || raw[5] != elfData2MSB {
		return nil, fmt.Errorf("elf32: not a big-endian 32-bit image")
	}
	be16 := func(off uint32) uint16 { return binary.BigEndian.Uint16(raw[off:]) }
	be32 := func(off uint32) uint32 { return binary.BigEndian.Uint32(raw[off:]) }
	if be16(18) != emSparc {
		return nil, fmt.Errorf("elf32: machine %d is not SPARC", be16(18))
	}
	f := &binfile.File{Format: FormatName, Entry: be32(24)}
	shoff := be32(32)
	shentsize := uint32(be16(46))
	shnum := uint32(be16(48))
	shstrndx := uint32(be16(50))
	// The bounds check must be carried out in 64 bits: shoff near
	// 2^32 with a small table, or a large shnum*shentsize product,
	// wraps uint32 arithmetic and would pass a 32-bit comparison only
	// to index past the end of raw below (found by FuzzElf32Read).
	if shentsize < 40 || uint64(shoff)+uint64(shnum)*uint64(shentsize) > uint64(len(raw)) ||
		shstrndx >= shnum {
		return nil, fmt.Errorf("elf32: corrupt section header table")
	}
	readShdr := func(i uint32) shdr {
		b := shoff + i*shentsize
		return shdr{
			name: be32(b), typ: be32(b + 4), flags: be32(b + 8), addr: be32(b + 12),
			off: be32(b + 16), size: be32(b + 20), link: be32(b + 24),
			info: be32(b + 28), addralign: be32(b + 32), entsize: be32(b + 36),
		}
	}
	sectionBody := func(h shdr) ([]byte, error) {
		// 64-bit arithmetic: off+size near 2^32 wraps uint32 and
		// would slice out of bounds (found by FuzzElf32Read).
		if uint64(h.off)+uint64(h.size) > uint64(len(raw)) {
			return nil, fmt.Errorf("elf32: section exceeds image")
		}
		return raw[h.off : h.off+h.size], nil
	}
	loadable := func(h shdr, name string) (binfile.Section, error) {
		// >= rather than >: a section ending exactly at 2^32 still
		// wraps binfile.Section.End() to zero.
		if uint64(h.addr)+uint64(h.size) >= 1<<32 {
			return binfile.Section{}, fmt.Errorf("elf32: section %s wraps the address space", name)
		}
		body, err := sectionBody(h)
		if err != nil {
			return binfile.Section{}, err
		}
		return binfile.Section{Name: name, Addr: h.addr, Data: append([]byte(nil), body...)}, nil
	}
	shstrHdr := readShdr(shstrndx)
	shstrBody, err := sectionBody(shstrHdr)
	if err != nil {
		return nil, err
	}
	shstr := &strtab{data: shstrBody}

	var symHdr, strHdr *shdr
	for i := uint32(1); i < shnum; i++ {
		h := readShdr(i)
		name := shstr.get(h.name)
		switch {
		case name == ".text" || (h.typ == shtProgbits && h.flags&shfExecinstr != 0):
			s, err := loadable(h, "text")
			if err != nil {
				return nil, err
			}
			f.Sections = append(f.Sections, s)
		case name == ".data":
			s, err := loadable(h, "data")
			if err != nil {
				return nil, err
			}
			f.Sections = append(f.Sections, s)
		case h.typ == shtSymtab:
			hc := h
			symHdr = &hc
		case h.typ == shtStrtab && i != shstrndx:
			hc := h
			strHdr = &hc
		}
	}
	if symHdr != nil {
		symBody, err := sectionBody(*symHdr)
		if err != nil {
			return nil, err
		}
		var names *strtab
		if strHdr != nil {
			strBody, err := sectionBody(*strHdr)
			if err != nil {
				return nil, err
			}
			names = &strtab{data: strBody}
		} else {
			names = newStrtab()
		}
		for off := uint32(16); off+16 <= uint32(len(symBody)); off += 16 {
			nameOff := binary.BigEndian.Uint32(symBody[off:])
			value := binary.BigEndian.Uint32(symBody[off+4:])
			size := binary.BigEndian.Uint32(symBody[off+8:])
			info := symBody[off+12]
			name := names.get(nameOff)
			kind := binfile.SymLabel
			switch info & 0xf {
			case sttFunc:
				kind = binfile.SymFunc
			case sttObject:
				kind = binfile.SymData
			default:
				if strings.HasPrefix(name, ".L") || strings.HasPrefix(name, "L$") {
					kind = binfile.SymDebug
				}
			}
			f.Symbols = append(f.Symbols, binfile.Symbol{
				Name: name, Addr: value, Size: size, Kind: kind,
				Global: info>>4 == stbGlobal,
			})
		}
	}
	return f, nil
}
