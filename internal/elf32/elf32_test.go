package elf32

import (
	"bytes"
	"debug/elf"
	"testing"

	"eel/internal/binfile"
)

func sample() *binfile.File {
	return &binfile.File{
		Format: FormatName,
		Entry:  0x10000,
		Sections: []binfile.Section{
			{Name: "text", Addr: 0x10000, Data: []byte{0x01, 0x00, 0x00, 0x00, 0x81, 0xc3, 0xe0, 0x08}},
			{Name: "data", Addr: 0x20000, Data: []byte{0xde, 0xad, 0xbe, 0xef}},
		},
		Symbols: []binfile.Symbol{
			{Name: "main", Addr: 0x10000, Size: 8, Kind: binfile.SymFunc, Global: true},
			{Name: "table", Addr: 0x20000, Size: 4, Kind: binfile.SymData},
			{Name: ".L42", Addr: 0x10004, Kind: binfile.SymDebug},
			{Name: "local_helper", Addr: 0x10004, Kind: binfile.SymLabel},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	f := sample()
	img, err := (format{}).Write(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := binfile.Read(img)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != FormatName {
		t.Errorf("format = %q", got.Format)
	}
	if got.Entry != f.Entry {
		t.Errorf("entry = %#x, want %#x", got.Entry, f.Entry)
	}
	text := got.Text()
	if text == nil || !bytes.Equal(text.Data, f.Text().Data) || text.Addr != 0x10000 {
		t.Fatalf("text mismatch: %+v", text)
	}
	data := got.Data()
	if data == nil || !bytes.Equal(data.Data, f.Data().Data) {
		t.Fatalf("data mismatch")
	}
	if len(got.Symbols) != len(f.Symbols) {
		t.Fatalf("symbols = %d, want %d", len(got.Symbols), len(f.Symbols))
	}
	byName := map[string]binfile.Symbol{}
	for _, s := range got.Symbols {
		byName[s.Name] = s
	}
	main := byName["main"]
	if main.Kind != binfile.SymFunc || !main.Global || main.Addr != 0x10000 || main.Size != 8 {
		t.Errorf("main = %+v", main)
	}
	if byName["table"].Kind != binfile.SymData {
		t.Errorf("table kind = %v", byName["table"].Kind)
	}
	if byName[".L42"].Kind != binfile.SymDebug {
		t.Errorf(".L42 kind = %v", byName[".L42"].Kind)
	}
	if byName["local_helper"].Kind != binfile.SymLabel {
		t.Errorf("local_helper kind = %v", byName["local_helper"].Kind)
	}
}

// TestDebugElfAccepts checks our writer against Go's own ELF parser.
func TestDebugElfAccepts(t *testing.T) {
	img, err := (format{}).Write(sample())
	if err != nil {
		t.Fatal(err)
	}
	ef, err := elf.NewFile(bytes.NewReader(img))
	if err != nil {
		t.Fatalf("debug/elf rejected our image: %v", err)
	}
	defer ef.Close()
	if ef.Machine != elf.EM_SPARC {
		t.Errorf("machine = %v", ef.Machine)
	}
	if ef.ByteOrder.String() != "BigEndian" {
		t.Errorf("byte order = %v", ef.ByteOrder)
	}
	sec := ef.Section(".text")
	if sec == nil {
		t.Fatal("no .text section")
	}
	body, err := sec.Data()
	if err != nil || !bytes.Equal(body, sample().Text().Data) {
		t.Errorf("text data mismatch: %v", err)
	}
	syms, err := ef.Symbols()
	if err != nil {
		t.Fatalf("symbols: %v", err)
	}
	found := false
	for _, s := range syms {
		if s.Name == "main" && elf.ST_TYPE(s.Info) == elf.STT_FUNC {
			found = true
		}
	}
	if !found {
		t.Error("debug/elf did not see main as STT_FUNC")
	}
}

func TestDetectRejectsOthers(t *testing.T) {
	if (format{}).Detect([]byte{0x57, 0x45, 0x58, 0x45, 0, 0, 0, 1}) {
		t.Error("detected aout image as ELF")
	}
	if (format{}).Detect([]byte{0x7f, 'E', 'L', 'F', 2, 1}) {
		t.Error("accepted 64-bit little-endian ELF")
	}
}

func TestReadRejectsCorrupt(t *testing.T) {
	img, err := (format{}).Write(sample())
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-way: must error, not panic.
	for _, n := range []int{10, 52, 60, len(img) / 2} {
		if _, err := (format{}).Read(img[:n]); err == nil {
			t.Errorf("accepted %d-byte truncation", n)
		}
	}
}

func TestWriteRequiresText(t *testing.T) {
	if _, err := (format{}).Write(&binfile.File{Format: FormatName}); err == nil {
		t.Error("accepted image without text")
	}
}
