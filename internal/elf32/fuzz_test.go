package elf32

import (
	"encoding/binary"
	"testing"
)

// corrupt32 returns img with the big-endian u32 at off replaced.
func corrupt32(img []byte, off int, v uint32) []byte {
	out := append([]byte(nil), img...)
	binary.BigEndian.PutUint32(out[off:], v)
	return out
}

// corrupt16 returns img with the big-endian u16 at off replaced.
func corrupt16(img []byte, off int, v uint16) []byte {
	out := append([]byte(nil), img...)
	binary.BigEndian.PutUint16(out[off:], v)
	return out
}

// FuzzElf32Read feeds arbitrary bytes to the ELF reader; it must
// return errors on malformed input, never panic or read out of
// bounds.
func FuzzElf32Read(f *testing.F) {
	img, err := (format{}).Write(sample())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(img)
	f.Add(img[:52])
	f.Add([]byte{0x7f, 'E', 'L', 'F'})
	// e_shoff lives at offset 32, e_shentsize/e_shnum/e_shstrndx at
	// 46/48/50: the overflow bait that found the uint32-wrap bugs.
	f.Add(corrupt32(img, 32, 0xfffffff0))
	f.Add(corrupt16(img, 48, 0xffff))
	f.Add(corrupt16(img, 46, 0xffff))
	f.Add(corrupt16(img, 50, 0xffff))
	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := (format{}).Read(data)
		if err != nil {
			return
		}
		// A successfully parsed file has sane sections: data slices
		// exist and no section wraps the 32-bit address space.
		for _, s := range parsed.Sections {
			if uint64(s.Addr)+uint64(len(s.Data)) >= 1<<32 {
				t.Fatalf("accepted section %q wrapping the address space (addr %#x len %d)",
					s.Name, s.Addr, len(s.Data))
			}
		}
	})
}

// TestReadOverflowingImages pins regressions for the uint32-overflow
// bounds checks in Read: each corruption must yield an error, not a
// slice panic.
func TestReadOverflowingImages(t *testing.T) {
	img, err := (format{}).Write(sample())
	if err != nil {
		t.Fatal(err)
	}
	// Find the first section header (skip the null header) so we can
	// corrupt sh_offset/sh_size of a real section.
	shoff := binary.BigEndian.Uint32(img[32:])
	shentsize := uint32(binary.BigEndian.Uint16(img[46:]))
	sh1 := int(shoff + shentsize)
	cases := []struct {
		name string
		data []byte
	}{
		// shoff near 2^32: shoff+shnum*shentsize wrapped uint32 and
		// passed the old 32-bit bounds check, then readShdr indexed
		// past the image (found by FuzzElf32Read).
		{"shoff wraps", corrupt32(img, 32, 0xffffffd0)},
		// Huge shnum: the product overflows 32 bits.
		{"shnum product overflows", corrupt16(img, 48, 0xffff)},
		// shstrndx outside the table.
		{"shstrndx out of range", corrupt16(img, 50, 200)},
		// Section body off+size wraps uint32 (found by FuzzElf32Read).
		{"section body wraps", corrupt32(img, sh1+16, 0xfffffff8)},
		{"section size past end", corrupt32(img, sh1+20, 0x7fffffff)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := (format{}).Read(tc.data); err == nil {
				t.Errorf("malformed image accepted")
			}
		})
	}
}

// TestReadRejectsWrappingSection checks the address-space wrap guard:
// a loadable section whose addr+size reaches 2^32 must be rejected
// (binfile.Section.End would wrap to 0).
func TestReadRejectsWrappingSection(t *testing.T) {
	f := sample()
	f.Sections[0].Addr = 0xfffffffc
	img, err := (format{}).Write(f)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (format{}).Read(img); err == nil {
		t.Error("accepted text section wrapping the address space")
	}
}
