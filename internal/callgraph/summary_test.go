package callgraph_test

import (
	"testing"

	"eel/internal/callgraph"
	"eel/internal/machine"
)

func TestLocalSummaries(t *testing.T) {
	src := `
main:	call outer
	nop
	mov 1, %g1
	ta 0
outer:	save %sp, -96, %sp
	call leaf
	nop
	ret
	restore %o0, 0, %o0
leaf:	add %o0, 1, %o0
	retl
	xor %o0, 2, %o0
`
	e := makeExec(t, src, "main", "outer", "leaf")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	sums := g.Summaries()
	leaf := sums[g.Node(e.RoutineByName("leaf"))]
	if !leaf.Exact {
		t.Fatal("leaf summary inexact")
	}
	// leaf touches %o0, %o7 (retl reads it) and PSR? no cc ops.
	if !leaf.Reads.Has(8) || !leaf.Writes.Has(8) {
		t.Errorf("leaf summary: reads=%s writes=%s", leaf.Reads, leaf.Writes)
	}
	if leaf.Reads.Has(20) || leaf.Writes.Has(20) {
		t.Errorf("leaf claims %%l4: %s", leaf.Writes)
	}
	// outer includes leaf's footprint transitively, plus the window
	// barrier (save/restore touch the whole integer file).
	outer := sums[g.Node(e.RoutineByName("outer"))]
	if !outer.Writes.Has(8) {
		t.Error("outer summary missing callee effect")
	}
	if outer.Writes.Len() < 25 {
		t.Errorf("outer (windowed) should touch most registers: %s", outer.Writes)
	}
}

func TestDeadAcrossCall(t *testing.T) {
	src := `
main:	call leaf
	nop
	mov 1, %g1
	ta 0
leaf:	add %o0, 1, %o0
	retl
	nop
`
	e := makeExec(t, src, "main", "leaf")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	sums := g.Summaries()
	leaf := g.Node(e.RoutineByName("leaf"))
	dead := g.DeadAcrossCall(sums, leaf)
	// The calling convention says %o1-%o5 and %g1-%g7 die across any
	// call; interprocedural analysis proves this leaf preserves them.
	for _, r := range []machine.Reg{9, 10, 16, 1} { // %o1 %o2 %l0 %g1
		if !dead.Has(r) {
			t.Errorf("r%d should be provably dead across the leaf call: %s", r, dead)
		}
	}
	if dead.Has(8) {
		t.Error("o0 is used by the callee")
	}
	if dead.Has(15) || dead.Has(14) {
		t.Error("reserved registers offered")
	}
}

func TestRecursiveSummaryConverges(t *testing.T) {
	src := `
main:	call f
	nop
	mov 1, %g1
	ta 0
f:	subcc %o0, 1, %o0
	be done
	nop
	call f
	nop
done:	retl
	xor %o0, %o1, %o0
`
	e := makeExec(t, src, "main", "f")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	sums := g.Summaries()
	f := sums[g.Node(e.RoutineByName("f"))]
	if !f.Exact {
		t.Fatal("recursive summary inexact")
	}
	if !f.Reads.Has(9) { // %o1 read in the delay slot of retl
		t.Errorf("recursive summary lost a read: %s", f.Reads)
	}
	if f.Writes.Has(20) {
		t.Errorf("phantom write: %s", f.Writes)
	}
}

func TestIndirectCallConservativeSummary(t *testing.T) {
	src := `
main:	set leaf, %l0
	call %l0
	nop
	mov 1, %g1
	ta 0
leaf:	retl
	nop
`
	e := makeExec(t, src, "main", "leaf")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	sums := g.Summaries()
	main := sums[g.Node(e.RoutineByName("main"))]
	if main.Exact {
		t.Error("indirect call must poison the caller's summary")
	}
}
