package callgraph

import (
	"eel/internal/cfg"
	"eel/internal/machine"
)

// Interprocedural register-usage summaries: the analysis behind the
// paper's remark that EEL "can manipulate an entire program, which
// permits it to perform interprocedural analysis rather than
// stopping at procedure boundaries" (§1).  A routine's summary is
// the set of registers it — or anything it can transitively call —
// may read or write.  Snippet scavenging at a call site can then use
// the callee's real footprint instead of the worst-case calling
// convention (dataflow.CallDef), recovering dead registers across
// calls to shallow leaf routines.

// Summary is one routine's transitive register footprint.
type Summary struct {
	// Reads and Writes cover the routine and its transitive callees.
	Reads, Writes machine.RegSet
	// Exact is false when unknown control flow (indirect calls,
	// unresolved jumps, data) forced the conservative full set.
	Exact bool
}

// Summaries computes per-routine transitive register usage, solving
// the (possibly cyclic, for recursion) system by iteration over the
// callee-first order.
func (g *Graph) Summaries() map[*Node]Summary {
	out := make(map[*Node]Summary, len(g.Nodes))
	// Local footprints first.
	local := make(map[*Node]Summary, len(g.Nodes))
	for _, n := range g.Nodes {
		local[n] = localSummary(n)
		out[n] = local[n]
	}
	// Propagate callee summaries to callers until fixpoint
	// (bottom-up order converges in one pass for DAGs; recursion
	// takes a few).
	order := g.BottomUp()
	for changed := true; changed; {
		changed = false
		for _, n := range order {
			s := out[n]
			for _, site := range n.Out {
				if site.To == nil {
					// Unknown callee: anything may be used.
					s = conservative()
					break
				}
				callee := out[site.To]
				s.Reads = s.Reads.Union(callee.Reads)
				s.Writes = s.Writes.Union(callee.Writes)
				s.Exact = s.Exact && callee.Exact
			}
			if !s.Reads.Equal(out[n].Reads) || !s.Writes.Equal(out[n].Writes) || s.Exact != out[n].Exact {
				out[n] = s
				changed = true
			}
		}
	}
	return out
}

// localSummary collects one routine's own register accesses.
func localSummary(n *Node) Summary {
	g, err := n.Routine.ControlFlowGraph()
	if err != nil || g.HasData || !g.Complete {
		return conservative()
	}
	s := Summary{Exact: true}
	for _, b := range g.Blocks {
		for _, in := range b.Insts {
			s.Reads = s.Reads.Union(in.MI.Reads())
			s.Writes = s.Writes.Union(in.MI.Writes())
			if in.MI.Category() == machine.CatSystem {
				// System calls may touch anything kernel-visible;
				// stay conservative about the ABI set only — the
				// decoder already added it to Reads/Writes.
				continue
			}
		}
		// Register windows rotate the o/l/i files; the barrier
		// effects are already in each save/restore's sets.
		_ = cfg.KindNormal
	}
	return s
}

func conservative() Summary {
	var all machine.RegSet
	for r := machine.Reg(0); r < machine.NumRegs; r++ {
		all = all.Add(r)
	}
	return Summary{Reads: all, Writes: all, Exact: false}
}

// DeadAcrossCall returns registers provably dead across a direct
// call to callee: registers the callee's transitive closure neither
// reads nor writes.  Tools may scavenge these at the call's return
// point even though the calling convention says they are clobbered.
func (g *Graph) DeadAcrossCall(summaries map[*Node]Summary, callee *Node) machine.RegSet {
	s, ok := summaries[callee]
	if !ok || !s.Exact {
		return machine.RegSet{}
	}
	var candidates machine.RegSet
	for r := machine.Reg(1); r < 32; r++ {
		candidates = candidates.Add(r)
	}
	candidates = candidates.Remove(6).Remove(7).Remove(14).Remove(15).Remove(30)
	return candidates.Minus(s.Reads).Minus(s.Writes)
}
