// Package callgraph implements the interprocedural layer the paper
// mentions but does not describe (§3: "EEL also supports
// interprocedural analysis and call graphs").  It builds a program
// call graph from the CFGs' call sites and interprocedural jumps and
// provides the analyses executable editors want from it:
//
//   - reachability from the entry point (dead-routine detection),
//   - recursion detection via strongly connected components,
//   - bottom-up (callee-first) traversal order, and
//   - program-wide free-register discovery — the facility the paper
//     promises in §3.5's footnote ("later releases of EEL will
//     provide a mechanism to free a register"): a register no
//     reachable instruction reads or writes can be handed to
//     instrumentation permanently, with no scavenging or spilling.
package callgraph

import (
	"fmt"
	"sort"

	"eel/internal/cfg"
	"eel/internal/core"
	"eel/internal/machine"
)

// Site is one call site.
type Site struct {
	From *Node
	To   *Node // nil for indirect calls with unknown callee
	// Addr is the call instruction's address.
	Addr uint32
	// Indirect marks register calls (unknown or multi-target).
	Indirect bool
	// Tail marks interprocedural jumps (tail transfers), as opposed
	// to calls.
	Tail bool
}

// Node is one routine in the call graph.
type Node struct {
	Routine *core.Routine
	// Out lists this routine's call sites; In the sites calling it.
	Out []*Site
	In  []*Site
	// SCC is the strongly-connected-component id (callee-first
	// topological order: callees have lower ids unless recursive).
	SCC int
}

// Graph is a program call graph.
type Graph struct {
	Exec  *core.Executable
	Nodes []*Node
	// Entry is the node containing the program entry point.
	Entry *Node
	// HasIndirect reports whether any unknown-target call exists
	// (reachability is then conservative: see Reachable).
	HasIndirect bool

	byRoutine map[*core.Routine]*Node
}

// Build constructs the call graph of e (building any CFGs that do
// not exist yet, which may discover hidden routines — they are
// included).
func Build(e *core.Executable) (*Graph, error) {
	g := &Graph{Exec: e, byRoutine: map[*core.Routine]*Node{}}
	// Force CFG construction to a fixpoint first (hidden routines).
	for {
		grew := false
		for _, r := range e.Routines() {
			if g.byRoutine[r] == nil {
				n := &Node{Routine: r}
				g.byRoutine[r] = n
				g.Nodes = append(g.Nodes, n)
				grew = true
				if _, err := r.ControlFlowGraph(); err != nil {
					return nil, fmt.Errorf("callgraph: %s: %w", r.Name, err)
				}
			}
		}
		if !grew {
			break
		}
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].Routine.Start < g.Nodes[j].Routine.Start })

	for _, n := range g.Nodes {
		graph, err := n.Routine.ControlFlowGraph()
		if err != nil {
			continue
		}
		for _, b := range graph.Blocks {
			if b.Kind != cfg.KindCallSurrogate {
				continue
			}
			site := &Site{From: n}
			if b.CallTarget != 0 {
				if callee := e.RoutineAt(b.CallTarget); callee != nil {
					site.To = g.byRoutine[callee]
				}
				// Find the site address from the surrogate's
				// predecessors (the call block's last instruction).
				site.Addr = callSiteAddr(b)
			} else {
				site.Indirect = true
				site.Addr = callSiteAddr(b)
				g.HasIndirect = true
			}
			n.Out = append(n.Out, site)
			if site.To != nil {
				site.To.In = append(site.To.In, site)
			}
		}
		// Interprocedural jumps (tail transfers) also link routines.
		for _, ref := range graph.OutRefs {
			if ref.IsCall {
				continue
			}
			callee := e.RoutineAt(ref.Target)
			if callee == nil || callee == n.Routine {
				continue
			}
			site := &Site{From: n, To: g.byRoutine[callee], Addr: ref.From, Tail: true}
			n.Out = append(n.Out, site)
			site.To.In = append(site.To.In, site)
		}
		// Unresolved indirect jumps can reach anywhere.
		for _, ij := range graph.IndirectJumps {
			if !ij.Resolved {
				g.HasIndirect = true
			}
		}
	}
	if entry := e.RoutineAt(e.StartAddress()); entry != nil {
		g.Entry = g.byRoutine[entry]
	}
	g.computeSCC()
	return g, nil
}

// callSiteAddr returns the call instruction address feeding a
// surrogate block.
func callSiteAddr(surr *cfg.Block) uint32 {
	b := surr
	for len(b.Pred) > 0 {
		p := b.Pred[0].From
		if last := p.Last(); last != nil && last.MI.Category().IsCall() {
			return last.Addr
		}
		if p.Kind != cfg.KindDelaySlot {
			break
		}
		b = p
	}
	return 0
}

// Node returns the graph node for r, or nil.
func (g *Graph) Node(r *core.Routine) *Node { return g.byRoutine[r] }

// Reachable returns the set of routines reachable from the entry
// point.  When the program contains calls with unknown targets, every
// routine whose address escapes analysis could be a callee, so the
// result is conservatively the full node set (flagged by
// HasIndirect); otherwise it is the true transitive closure.
func (g *Graph) Reachable() map[*Node]bool {
	out := map[*Node]bool{}
	if g.HasIndirect {
		for _, n := range g.Nodes {
			out[n] = true
		}
		return out
	}
	if g.Entry == nil {
		return out
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		if out[n] {
			return
		}
		out[n] = true
		for _, s := range n.Out {
			if s.To != nil {
				walk(s.To)
			}
		}
	}
	walk(g.Entry)
	return out
}

// DeadRoutines returns routines no call path reaches (empty when
// indirect calls make reachability conservative).
func (g *Graph) DeadRoutines() []*Node {
	reach := g.Reachable()
	var dead []*Node
	for _, n := range g.Nodes {
		if !reach[n] {
			dead = append(dead, n)
		}
	}
	return dead
}

// computeSCC runs Tarjan's algorithm, numbering components in
// reverse topological (callee-first) order.
func (g *Graph) computeSCC() {
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	next := 0
	comp := 0

	var strong func(n *Node)
	strong = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, s := range n.Out {
			m := s.To
			if m == nil {
				continue
			}
			if _, seen := index[m]; !seen {
				strong(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				m.SCC = comp
				if m == n {
					break
				}
			}
			comp++
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
}

// Recursive reports whether n participates in recursion (its SCC has
// more than one member, or it calls itself).
func (g *Graph) Recursive(n *Node) bool {
	for _, s := range n.Out {
		if s.To == n {
			return true
		}
		if s.To != nil && s.To.SCC == n.SCC {
			return true
		}
	}
	return false
}

// BottomUp returns the nodes callee-first: every non-recursive callee
// precedes its callers.
func (g *Graph) BottomUp() []*Node {
	out := append([]*Node(nil), g.Nodes...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].SCC < out[j].SCC })
	return out
}

// FreeRegisters returns integer registers that no instruction of any
// reachable routine reads or writes — registers a tool may claim for
// the whole program without scavenging or spilling (the §3.5
// footnote's promised mechanism).  The reserved stack/frame/link
// registers and the EEL translation scratch pair are never offered.
func (g *Graph) FreeRegisters() machine.RegSet {
	var used machine.RegSet
	for n := range g.Reachable() {
		graph, err := n.Routine.ControlFlowGraph()
		if err != nil {
			// Unanalyzable routine: assume it uses everything.
			return machine.RegSet{}
		}
		if graph.HasData || !graph.Complete {
			// Unknown code paths could touch anything.
			return machine.RegSet{}
		}
		for _, b := range graph.Blocks {
			for _, in := range b.Insts {
				used = used.Union(in.MI.Reads()).Union(in.MI.Writes())
			}
		}
	}
	free := machine.RegSet{}
	for r := machine.Reg(1); r < 32; r++ {
		free = free.Add(r)
	}
	free = free.Remove(6).Remove(7).Remove(14).Remove(15).Remove(30) // %g6 %g7 %sp %o7 %fp
	return free.Minus(used)
}
