package callgraph_test

import (
	"testing"

	"eel/internal/asm"
	"eel/internal/binfile"
	"eel/internal/callgraph"
	"eel/internal/core"
	"eel/internal/machine"
	"eel/internal/progen"
)

func makeExec(t *testing.T, src string, routines ...string) *core.Executable {
	t.Helper()
	prog, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	f := &binfile.File{
		Format: "aout",
		Entry:  0x10000,
		Sections: []binfile.Section{
			{Name: "text", Addr: 0x10000, Data: prog.Bytes},
		},
	}
	for _, name := range routines {
		f.Symbols = append(f.Symbols, binfile.Symbol{
			Name: name, Addr: prog.Labels[name], Kind: binfile.SymFunc, Global: true,
		})
	}
	e, err := core.NewExecutable(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	return e
}

const program = `
main:	call a
	nop
	call b
	nop
	mov 1, %g1
	ta 0
a:	call b
	nop
	retl
	nop
b:	retl
	nop
dead:	call b
	nop
	retl
	nop
rec:	call rec
	nop
	retl
	nop
`

func build(t *testing.T) (*core.Executable, *callgraph.Graph) {
	t.Helper()
	e := makeExec(t, program, "main", "a", "b", "dead", "rec")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, g
}

func TestEdges(t *testing.T) {
	e, g := build(t)
	main := g.Node(e.RoutineByName("main"))
	if main == nil || g.Entry != main {
		t.Fatal("entry node wrong")
	}
	calls := 0
	for _, s := range main.Out {
		if !s.Tail {
			calls++
		}
	}
	// Two calls; the static fall-through past "ta 0" into routine a
	// also records a (never-executed) tail edge.
	if calls != 2 {
		t.Fatalf("main has %d call sites", calls)
	}
	b := g.Node(e.RoutineByName("b"))
	// b is called from main, a, and dead.
	if len(b.In) != 3 {
		t.Errorf("b has %d callers", len(b.In))
	}
	for _, s := range main.Out {
		if s.Indirect || s.To == nil {
			t.Errorf("direct call recorded as indirect: %+v", s)
		}
		if s.Addr == 0 {
			t.Error("call site address missing")
		}
	}
}

func TestReachabilityAndDeadRoutines(t *testing.T) {
	e, g := build(t)
	reach := g.Reachable()
	if !reach[g.Node(e.RoutineByName("a"))] || !reach[g.Node(e.RoutineByName("b"))] {
		t.Error("a/b should be reachable")
	}
	dead := g.DeadRoutines()
	names := map[string]bool{}
	for _, n := range dead {
		names[n.Routine.Name] = true
	}
	if !names["dead"] || !names["rec"] {
		t.Errorf("dead routines = %v", names)
	}
	if names["main"] || names["a"] {
		t.Errorf("live routine reported dead: %v", names)
	}
}

func TestRecursionDetection(t *testing.T) {
	e, g := build(t)
	if !g.Recursive(g.Node(e.RoutineByName("rec"))) {
		t.Error("self-recursion missed")
	}
	if g.Recursive(g.Node(e.RoutineByName("a"))) {
		t.Error("a reported recursive")
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
main:	call even
	nop
	mov 1, %g1
	ta 0
even:	subcc %o0, 1, %o0
	be out
	nop
	call odd
	nop
out:	retl
	nop
odd:	call even
	nop
	retl
	nop
`
	e := makeExec(t, src, "main", "even", "odd")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	even := g.Node(e.RoutineByName("even"))
	odd := g.Node(e.RoutineByName("odd"))
	if !g.Recursive(even) || !g.Recursive(odd) {
		t.Error("mutual recursion missed")
	}
	if even.SCC != odd.SCC {
		t.Error("mutually recursive routines in different SCCs")
	}
}

func TestBottomUpOrder(t *testing.T) {
	_, g := build(t)
	pos := map[string]int{}
	for i, n := range g.BottomUp() {
		pos[n.Routine.Name] = i
	}
	if pos["b"] > pos["a"] || pos["a"] > pos["main"] {
		t.Errorf("bottom-up order wrong: %v", pos)
	}
}

func TestIndirectCallConservative(t *testing.T) {
	src := `
main:	set helper, %l0
	call %l0
	nop
	mov 1, %g1
	ta 0
helper:	retl
	nop
`
	e := makeExec(t, src, "main", "helper")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasIndirect {
		t.Fatal("indirect call not flagged")
	}
	if len(g.DeadRoutines()) != 0 {
		t.Error("reachability must be conservative under indirect calls")
	}
}

func TestTailTransferEdges(t *testing.T) {
	src := `
main:	call f
	nop
	mov 1, %g1
	ta 0
f:	ba g
	nop
g:	retl
	nop
`
	e := makeExec(t, src, "main", "f", "g")
	cg, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	f := cg.Node(e.RoutineByName("f"))
	found := false
	for _, s := range f.Out {
		if s.Tail && s.To == cg.Node(e.RoutineByName("g")) {
			found = true
		}
	}
	if !found {
		t.Error("tail transfer edge missing")
	}
	if len(cg.DeadRoutines()) != 0 {
		t.Error("g is reachable via the tail transfer")
	}
}

// TestFreeRegisters exercises the §3.5 footnote's promised
// register-freeing mechanism.
func TestFreeRegisters(t *testing.T) {
	// This program touches %o0, %l0, %g1 (syscall) — %l5, say, is
	// free everywhere.
	src := `
main:	mov 4, %o0
	call f
	nop
	mov 1, %g1
	ta 0
f:	add %o0, 1, %l0
	retl
	add %l0, 0, %o0
`
	e := makeExec(t, src, "main", "f")
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	free := g.FreeRegisters()
	if !free.Has(21) { // %l5
		t.Errorf("free = %s, want %%l5 in it", free)
	}
	if free.Has(8) || free.Has(16) || free.Has(1) {
		t.Errorf("used registers offered as free: %s", free)
	}
	for _, r := range []machine.Reg{0, 6, 7, 14, 15, 30} {
		if free.Has(r) {
			t.Errorf("reserved register r%d offered", r)
		}
	}
}

func TestFreeRegistersConservativeOnUnresolved(t *testing.T) {
	cfg := progen.DefaultConfig(4)
	cfg.Personality = progen.SunPro
	p := progen.MustGenerate(cfg)
	e, err := core.NewExecutable(p.File)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	// SunPro programs contain unresolved jumps: no register can be
	// proven free.
	if !g.FreeRegisters().IsEmpty() {
		t.Error("free registers claimed despite unresolved control flow")
	}
}

func TestProgenCallGraph(t *testing.T) {
	p := progen.MustGenerate(progen.DefaultConfig(9))
	e, err := core.NewExecutable(p.File)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ReadContents(); err != nil {
		t.Fatal(err)
	}
	g, err := callgraph.Build(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) < 10 {
		t.Fatalf("nodes = %d", len(g.Nodes))
	}
	edges := 0
	for _, n := range g.Nodes {
		edges += len(n.Out)
	}
	if edges == 0 {
		t.Fatal("no call edges found")
	}
	// progen programs form a DAG (plus tail transfers): main must
	// not be recursive.
	if g.Entry == nil {
		t.Fatal("no entry node")
	}
	if g.Recursive(g.Entry) {
		t.Error("main recursive in a DAG program")
	}
}
