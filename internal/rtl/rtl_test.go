package rtl

import (
	"strings"
	"testing"
	"testing/quick"
)

func parse(t *testing.T, src string) Node {
	t.Helper()
	n, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return n
}

func TestParseNumber(t *testing.T) {
	cases := map[string]int64{
		"42":     42,
		"0x2a":   42,
		"0b1010": 10,
		"0":      0,
	}
	for src, want := range cases {
		n := parse(t, src)
		num, ok := n.(Num)
		if !ok || num.Val != want {
			t.Errorf("Parse(%q) = %v, want %d", src, n, want)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c)
	n := parse(t, "a + b * c")
	add, ok := n.(Bin)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %v", n)
	}
	mul, ok := add.R.(Bin)
	if !ok || mul.Op != "*" {
		t.Fatalf("rhs = %v", add.R)
	}
	// shifts bind tighter than comparison
	n2 := parse(t, "a << 2 == b")
	cmp, ok := n2.(Bin)
	if !ok || cmp.Op != "==" {
		t.Fatalf("top = %v", n2)
	}
	// single '=' means equality
	n3 := parse(t, "iflag = 1")
	eq, ok := n3.(Bin)
	if !ok || eq.Op != "==" {
		t.Fatalf("'=' did not normalize: %v", n3)
	}
}

func TestParseAssignAndGuard(t *testing.T) {
	n := parse(t, "R[rd] := R[rs1] + 1")
	asg, ok := n.(Assign)
	if !ok {
		t.Fatalf("not an assign: %v", n)
	}
	if _, ok := asg.LHS.(Index); !ok {
		t.Errorf("lhs = %v", asg.LHS)
	}
	g := parse(t, "x = 1 ? a := 2 : b := 3")
	cond, ok := g.(Cond)
	if !ok {
		t.Fatalf("not a guard: %v", g)
	}
	if _, ok := cond.T.(Assign); !ok {
		t.Errorf("then arm = %v", cond.T)
	}
	if _, ok := cond.F.(Assign); !ok {
		t.Errorf("else arm = %v", cond.F)
	}
}

func TestParseGuardChain(t *testing.T) {
	// The paper's branch semantics: guard with a guard in the else arm.
	n := parse(t, "(t r) ? pc := tgt : (aflag = 1 ? annul)")
	outer, ok := n.(Cond)
	if !ok {
		t.Fatalf("outer = %v", n)
	}
	inner, ok := UnwrapSeq(outer.F).(Cond)
	if !ok {
		t.Fatalf("inner = %v", outer.F)
	}
	if id, ok := inner.T.(Ident); !ok || id.Name != "annul" {
		t.Errorf("annul arm = %v", inner.T)
	}
}

func TestParseSeqStepsAndParallel(t *testing.T) {
	n := parse(t, "a := 1, b := 2 ; c := 3")
	seq, ok := n.(Seq)
	if !ok {
		t.Fatalf("not a seq: %v", n)
	}
	if len(seq.Steps) != 2 || len(seq.Steps[0]) != 2 || len(seq.Steps[1]) != 1 {
		t.Fatalf("shape = %v", seq)
	}
}

func TestParseLambdaAndApply(t *testing.T) {
	n := parse(t, `\r.\op.(op r)`)
	lam, ok := n.(Lambda)
	if !ok || lam.Param != "r" {
		t.Fatalf("outer lambda = %v", n)
	}
	inner, ok := lam.Body.(Lambda)
	if !ok || inner.Param != "op" {
		t.Fatalf("inner = %v", lam.Body)
	}
	app, ok := UnwrapSeq(inner.Body).(Apply)
	if !ok {
		t.Fatalf("body = %v", inner.Body)
	}
	if fn, ok := app.Fn.(Ident); !ok || fn.Name != "op" {
		t.Errorf("fn = %v", app.Fn)
	}
}

func TestParseVectorAndRange(t *testing.T) {
	n := parse(t, "[a b 'c 1..3]")
	vec, ok := n.(Vector)
	if !ok {
		t.Fatalf("not a vector: %v", n)
	}
	if len(vec.Elems) != 6 { // a, b, 'c, 1, 2, 3
		t.Fatalf("elems = %d: %v", len(vec.Elems), vec)
	}
	if s, ok := vec.Elems[2].(Sym); !ok || s.Name != "c" {
		t.Errorf("sym = %v", vec.Elems[2])
	}
	if nu, ok := vec.Elems[5].(Num); !ok || nu.Val != 3 {
		t.Errorf("range end = %v", vec.Elems[5])
	}
}

func TestParseMapApply(t *testing.T) {
	n := parse(t, "branch PSR @ ['ne 'e]")
	ma, ok := n.(MapApply)
	if !ok {
		t.Fatalf("not a map-apply: %v", n)
	}
	if _, ok := ma.Fn.(Apply); !ok {
		t.Errorf("fn = %v (application should bind tighter than @)", ma.Fn)
	}
}

func TestParseMemRef(t *testing.T) {
	n := parse(t, "M[R[rs1] + 4]{2}")
	ix, ok := n.(Index)
	if !ok {
		t.Fatalf("not an index: %v", n)
	}
	if ix.Width == nil {
		t.Fatal("width missing")
	}
	if w, ok := ix.Width.(Num); !ok || w.Val != 2 {
		t.Errorf("width = %v", ix.Width)
	}
}

func TestParseMultiArgCall(t *testing.T) {
	n := parse(t, "cc_add(a, b)")
	fn, args := spine(n)
	if id, ok := fn.(Ident); !ok || id.Name != "cc_add" {
		t.Fatalf("fn = %v", fn)
	}
	if len(args) != 2 {
		t.Fatalf("args = %d", len(args))
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"(", "a :=", "[1..", "a ? ", "M{4}", "\\. x", "'", "a $ b",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseNeverPanics(t *testing.T) {
	// Random strings over the language's alphabet must never panic.
	alphabet := "ab01()[]{}+-*/%&|^~!<>=?:,;.\\@' R M pc"
	f := func(idx []uint8) bool {
		var b strings.Builder
		for _, i := range idx {
			b.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		_, _ = Parse(b.String())
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubstShadowing(t *testing.T) {
	// \x.x+y with y:=5 substitutes; x stays bound.
	lam := parse(t, `\x.(x + y)`).(Lambda)
	got := Subst(lam, "y", Num{Val: 5})
	if !strings.Contains(got.String(), "5") {
		t.Errorf("y not substituted: %s", got)
	}
	got2 := Subst(lam, "x", Num{Val: 9})
	if strings.Contains(got2.String(), "9") {
		t.Errorf("bound x substituted: %s", got2)
	}
}

func TestWalkVisitsAll(t *testing.T) {
	n := parse(t, "a := M[b + 1]{4} ; c ? d : e")
	count := 0
	Walk(n, func(Node) { count++ })
	if count < 10 {
		t.Errorf("walked only %d nodes", count)
	}
}

// --- evaluator ---

// testMachine is a simple rtl.Machine for evaluator tests.
type testMachine struct {
	fields map[string]int64
	regs   map[string]map[int64]uint64
	mem    map[uint64]uint64
	pc     uint64
	npc    uint64
	hasNPC bool
	annul  bool
	traps  []uint64
}

func newTestMachine() *testMachine {
	return &testMachine{
		fields: map[string]int64{},
		regs:   map[string]map[int64]uint64{"R": {}, "F": {}},
		mem:    map[uint64]uint64{},
	}
}

func (m *testMachine) Field(name string) (int64, bool) {
	v, ok := m.fields[name]
	return v, ok
}
func (m *testMachine) FieldWidth(name string) (int, bool) {
	if name == "simm13" {
		return 13, true
	}
	return 0, false
}
func (m *testMachine) RegAlias(name string) (string, int64, bool) {
	switch name {
	case "PSR":
		return "R", 33, true
	case "Y":
		return "R", 32, true
	}
	return "", 0, false
}
func (m *testMachine) IsRegFile(name string) bool { return name == "R" || name == "F" }
func (m *testMachine) ReadReg(f string, i int64) (uint64, error) {
	return m.regs[f][i], nil
}
func (m *testMachine) WriteReg(f string, i int64, v uint64) error {
	m.regs[f][i] = v
	return nil
}
func (m *testMachine) ReadMem(a uint64, w int) (uint64, error) { return m.mem[a], nil }
func (m *testMachine) WriteMem(a uint64, w int, v uint64) error {
	m.mem[a] = v
	return nil
}
func (m *testMachine) PC() uint64 { return m.pc }
func (m *testMachine) SetPC(v uint64, delayed bool) {
	m.npc = v
	m.hasNPC = true
}
func (m *testMachine) Annul()              { m.annul = true }
func (m *testMachine) Trap(v uint64) error { m.traps = append(m.traps, v); return nil }

func exec(t *testing.T, src string, m *testMachine) {
	t.Helper()
	if err := Exec(parse(t, src), m); err != nil {
		t.Fatalf("Exec(%q): %v", src, err)
	}
}

func TestExecAssign(t *testing.T) {
	m := newTestMachine()
	m.fields["rd"] = 3
	exec(t, "R[rd] := 7 + 4", m)
	if m.regs["R"][3] != 11 {
		t.Errorf("R[3] = %d", m.regs["R"][3])
	}
}

func TestExecParallelSwap(t *testing.T) {
	// Parallel operations read all inputs before committing: the
	// classic swap.
	m := newTestMachine()
	m.regs["R"][1] = 10
	m.regs["R"][2] = 20
	exec(t, "R[1] := R[2], R[2] := R[1]", m)
	if m.regs["R"][1] != 20 || m.regs["R"][2] != 10 {
		t.Errorf("swap failed: %v", m.regs["R"])
	}
}

func TestExecSequentialSteps(t *testing.T) {
	m := newTestMachine()
	exec(t, "t := 5 ; R[1] := t + 1", m)
	if m.regs["R"][1] != 6 {
		t.Errorf("R[1] = %d", m.regs["R"][1])
	}
}

func TestExecDelayedPC(t *testing.T) {
	m := newTestMachine()
	m.pc = 100
	exec(t, "t := pc + 8 ; pc := t", m)
	if !m.hasNPC || m.npc != 108 {
		t.Errorf("npc = %d has=%v", m.npc, m.hasNPC)
	}
}

func TestExecGuardAndAnnul(t *testing.T) {
	m := newTestMachine()
	m.fields["aflag"] = 1
	exec(t, "aflag = 1 ? annul", m)
	if !m.annul {
		t.Error("annul not taken")
	}
	m2 := newTestMachine()
	m2.fields["aflag"] = 0
	exec(t, "aflag = 1 ? annul", m2)
	if m2.annul {
		t.Error("annul taken with aflag=0")
	}
}

func TestExecTrap(t *testing.T) {
	m := newTestMachine()
	exec(t, "trap(42)", m)
	if len(m.traps) != 1 || m.traps[0] != 42 {
		t.Errorf("traps = %v", m.traps)
	}
}

func TestExecMemory(t *testing.T) {
	m := newTestMachine()
	m.regs["R"][1] = 0x1000
	exec(t, "M[R[1] + 4]{4} := 99", m)
	if m.mem[0x1004] != 99 {
		t.Errorf("mem = %v", m.mem)
	}
	exec(t, "R[2] := M[R[1] + 4]{4}", m)
	if m.regs["R"][2] != 99 {
		t.Errorf("R[2] = %d", m.regs["R"][2])
	}
}

func TestExecSignExtendBuiltins(t *testing.T) {
	m := newTestMachine()
	m.fields["simm13"] = 0x1fff // -1 in 13 bits
	exec(t, "R[1] := sex(simm13)", m)
	if int64(m.regs["R"][1]) != -1 {
		t.Errorf("sex = %#x", m.regs["R"][1])
	}
	exec(t, "R[2] := sexb(0xff)", m)
	if int64(m.regs["R"][2]) != -1 {
		t.Errorf("sexb = %#x", m.regs["R"][2])
	}
	exec(t, "R[3] := sex(6, 4)", m)
	if int64(m.regs["R"][3]) != 6 {
		t.Errorf("sex(6,4) = %#x", m.regs["R"][3])
	}
	exec(t, "R[4] := sex(12, 4)", m)
	if int64(m.regs["R"][4]) != -4 {
		t.Errorf("sex(12,4) = %d", int64(m.regs["R"][4]))
	}
}

func TestExecDivideByZero(t *testing.T) {
	m := newTestMachine()
	if err := Exec(parse(t, "R[1] := udiv(4, 0)"), m); err == nil {
		t.Error("division by zero succeeded")
	}
}

func TestCondTestTable(t *testing.T) {
	// icc = NZVC at bits 23:20.
	cases := []struct {
		name string
		icc  uint64
		want uint64
	}{
		{"e", 0b0100, 1}, {"e", 0, 0},
		{"ne", 0b0100, 0}, {"ne", 0, 1},
		{"l", 0b1000, 1},   // N^V
		{"l", 0b1010, 0},   // N=V
		{"gu", 0, 1},       // !C && !Z
		{"gu", 0b0001, 0},  // C
		{"leu", 0b0001, 1}, // C
		{"cs", 0b0001, 1}, {"cc", 0b0001, 0},
		{"neg", 0b1000, 1}, {"pos", 0b1000, 0},
		{"vs", 0b0010, 1}, {"vc", 0b0010, 0},
		{"a", 0, 1}, {"n", 0b1111, 0},
		{"ge", 0b1010, 1}, // N=V
		{"g", 0b0000, 1}, {"g", 0b0100, 0},
		{"le", 0b0100, 1},
	}
	for _, c := range cases {
		got, err := condTest(c.name, c.icc<<20, nil)
		if err != nil || got != c.want {
			t.Errorf("condTest(%s, icc=%04b) = %d err=%v, want %d", c.name, c.icc, got, err, c.want)
		}
	}
}

func TestFCondTestTable(t *testing.T) {
	// fcc at bits 11:10: 0=E 1=L 2=G 3=U.
	cases := []struct {
		name string
		fcc  uint64
		want uint64
	}{
		{"fe", 0, 1}, {"fe", 1, 0},
		{"fl", 1, 1}, {"fg", 2, 1}, {"fu", 3, 1},
		{"fne", 1, 1}, {"fne", 0, 0},
		{"fge", 2, 1}, {"fge", 1, 0},
		{"fo", 3, 0}, {"fo", 0, 1},
		{"fa", 3, 1}, {"fn", 0, 0},
	}
	for _, c := range cases {
		got, err := condTest(c.name, c.fcc<<10, nil)
		if err != nil || got != c.want {
			t.Errorf("condTest(%s, fcc=%d) = %d err=%v, want %d", c.name, c.fcc, got, err, c.want)
		}
	}
}

func TestCCAddMatchesArithmetic(t *testing.T) {
	// Property: Z iff result zero, N iff bit31, C iff 33-bit carry,
	// V iff signed overflow.
	f := func(a, b uint32) bool {
		icc := ccAdd(a, b) >> 20
		r := a + b
		n := icc>>3&1 == 1
		z := icc>>2&1 == 1
		v := icc>>1&1 == 1
		c := icc&1 == 1
		wantN := r&0x80000000 != 0
		wantZ := r == 0
		sum := int64(int32(a)) + int64(int32(b))
		wantV := sum != int64(int32(r))
		wantC := uint64(a)+uint64(b) > 0xffffffff
		return n == wantN && z == wantZ && v == wantV && c == wantC
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCCSubMatchesArithmetic(t *testing.T) {
	f := func(a, b uint32) bool {
		icc := ccSub(a, b) >> 20
		r := a - b
		n := icc>>3&1 == 1
		z := icc>>2&1 == 1
		v := icc>>1&1 == 1
		c := icc&1 == 1
		diff := int64(int32(a)) - int64(int32(b))
		return n == (r&0x80000000 != 0) && z == (r == 0) &&
			v == (diff != int64(int32(r))) && c == (b > a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignExtendProperty(t *testing.T) {
	// signExtend(v, w) preserves the low w bits and replicates bit
	// w-1 above.
	f := func(v uint32, w8 uint8) bool {
		w := int(w8%31) + 1
		got := signExtend(uint64(v)&((1<<w)-1), w)
		low := got & ((1 << w) - 1)
		if low != uint64(v)&((1<<w)-1) {
			return false
		}
		sign := got>>(uint(w)-1)&1 == 1
		hi := got >> uint(w)
		if sign {
			return hi == (1<<(64-uint(w)))-1
		}
		return hi == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShiftBuiltins(t *testing.T) {
	m := newTestMachine()
	exec(t, "R[1] := shl(1, 31)", m)
	if m.regs["R"][1] != 0x80000000 {
		t.Errorf("shl = %#x", m.regs["R"][1])
	}
	exec(t, "R[2] := sar(0x80000000, 31)", m)
	if uint32(m.regs["R"][2]) != 0xffffffff {
		t.Errorf("sar = %#x", m.regs["R"][2])
	}
	exec(t, "R[3] := shr(0x80000000, 31)", m)
	if m.regs["R"][3] != 1 {
		t.Errorf("shr = %#x", m.regs["R"][3])
	}
}

func TestFloatBuiltins(t *testing.T) {
	m := newTestMachine()
	// 3.0f = 0x40400000, 4.0f = 0x40800000; 3*4 = 12.0f = 0x41400000
	exec(t, "R[1] := fmul(0x40400000, 0x40800000)", m)
	if m.regs["R"][1] != 0x41400000 {
		t.Errorf("fmul = %#x", m.regs["R"][1])
	}
	exec(t, "R[2] := fstoi(0x41400000)", m)
	if m.regs["R"][2] != 12 {
		t.Errorf("fstoi = %d", m.regs["R"][2])
	}
	exec(t, "R[3] := fcmp(0x3f800000, 0x40000000)", m) // 1.0 < 2.0 → L
	if m.regs["R"][3]>>10 != 1 {
		t.Errorf("fcmp = %#x", m.regs["R"][3])
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	m := newTestMachine()
	// Short-circuit: the rhs (a division by zero) must not evaluate.
	exec(t, "R[1] := 0 && udiv(1, 0)", m)
	if m.regs["R"][1] != 0 {
		t.Errorf("&& = %d", m.regs["R"][1])
	}
	exec(t, "R[2] := 1 || udiv(1, 0)", m)
	if m.regs["R"][2] != 1 {
		t.Errorf("|| = %d", m.regs["R"][2])
	}
}
