// Package rtl implements the register-transfer-level language that
// spawn machine descriptions use to express instruction semantics
// (paper §4, Fig 7).  The same ASTs serve three masters: spawn's
// static analysis derives instruction categories and register
// read/write sets from them; spawn's partial evaluator computes
// static branch/call targets from them; and the emulator executes
// them directly, which is how a ~150-line description yields a
// complete machine implementation.
//
// The concrete syntax follows the paper: "," separates operations
// that execute in parallel, ";" separates sequential steps (a control
// transfer whose pc assignment sits in a late step is a delayed
// branch), "c ? a : b" guards statements, ":=" assigns, "\x.body"
// abstracts, juxtaposition applies, "[a b c]" builds vectors, "f @ v"
// maps f over v, and 'sym quotes a condition-test symbol.
package rtl

import (
	"fmt"
	"strings"
)

// Node is any RTL syntax node.  The language is unified: statements
// and expressions share one AST, because description-level bindings
// ("val") may denote either.
type Node interface {
	fmt.Stringer
	node()
}

// Num is an integer literal.
type Num struct{ Val int64 }

// Ident is an unresolved name.  Spawn resolves identifiers against
// the description's field, register, alias, and val tables.
type Ident struct{ Name string }

// Sym is a quoted condition-test symbol, e.g. 'ne.
type Sym struct{ Name string }

// Index is base[index]: a register-file reference (R[rs1]) or — when
// base is M — the address part of a memory reference.
type Index struct {
	Base  Node
	Elem  Node
	Width Node // non-nil only for M[addr]{width}
}

// Bin is a binary operation.  Ops: + - * / % & | ^ << >> == != < <=
// > >= && ||.  Comparison and logical operators yield 0 or 1.
type Bin struct {
	Op   string
	L, R Node
}

// Un is a unary operation: - ~ !.
type Un struct {
	Op string
	X  Node
}

// Cond is "c ? t : f"; F may be nil (a guard with no else arm).
type Cond struct{ C, T, F Node }

// Assign is "lhs := rhs".
type Assign struct{ LHS, RHS Node }

// Seq is a parenthesized statement list: Steps[i] holds the parallel
// operations of sequential step i.
type Seq struct{ Steps [][]Node }

// Lambda is "\param . body".
type Lambda struct {
	Param string
	Body  Node
}

// Apply is function application by juxtaposition: Fn Arg.
type Apply struct{ Fn, Arg Node }

// Vector is "[e1 e2 ...]".
type Vector struct{ Elems []Node }

// MapApply is "f @ v": elementwise application over a vector.
type MapApply struct{ Fn, Vec Node }

func (Num) node()      {}
func (Ident) node()    {}
func (Sym) node()      {}
func (Index) node()    {}
func (Bin) node()      {}
func (Un) node()       {}
func (Cond) node()     {}
func (Assign) node()   {}
func (Seq) node()      {}
func (Lambda) node()   {}
func (Apply) node()    {}
func (Vector) node()   {}
func (MapApply) node() {}

// String renders nodes in (approximately) source syntax.
func (n Num) String() string   { return fmt.Sprintf("%d", n.Val) }
func (n Ident) String() string { return n.Name }
func (n Sym) String() string   { return "'" + n.Name }

func (n Index) String() string {
	if n.Width != nil {
		return fmt.Sprintf("%s[%s]{%s}", n.Base, n.Elem, n.Width)
	}
	return fmt.Sprintf("%s[%s]", n.Base, n.Elem)
}

func (n Bin) String() string { return fmt.Sprintf("(%s %s %s)", n.L, n.Op, n.R) }
func (n Un) String() string  { return fmt.Sprintf("(%s%s)", n.Op, n.X) }
func (n Cond) String() string {
	if n.F == nil {
		return fmt.Sprintf("(%s ? %s)", n.C, n.T)
	}
	return fmt.Sprintf("(%s ? %s : %s)", n.C, n.T, n.F)
}
func (n Assign) String() string { return fmt.Sprintf("%s := %s", n.LHS, n.RHS) }

func (n Seq) String() string {
	var steps []string
	for _, step := range n.Steps {
		var ops []string
		for _, op := range step {
			ops = append(ops, op.String())
		}
		steps = append(steps, strings.Join(ops, ", "))
	}
	return "(" + strings.Join(steps, "; ") + ")"
}

func (n Lambda) String() string { return fmt.Sprintf("\\%s.%s", n.Param, n.Body) }
func (n Apply) String() string  { return fmt.Sprintf("(%s %s)", n.Fn, n.Arg) }

func (n Vector) String() string {
	var elems []string
	for _, e := range n.Elems {
		elems = append(elems, e.String())
	}
	return "[" + strings.Join(elems, " ") + "]"
}

func (n MapApply) String() string { return fmt.Sprintf("(%s @ %s)", n.Fn, n.Vec) }

// Walk calls f on n and every descendant, pre-order.  It visits the
// structural children of each node kind.
func Walk(n Node, f func(Node)) {
	if n == nil {
		return
	}
	f(n)
	switch x := n.(type) {
	case Index:
		Walk(x.Base, f)
		Walk(x.Elem, f)
		Walk(x.Width, f)
	case Bin:
		Walk(x.L, f)
		Walk(x.R, f)
	case Un:
		Walk(x.X, f)
	case Cond:
		Walk(x.C, f)
		Walk(x.T, f)
		Walk(x.F, f)
	case Assign:
		Walk(x.LHS, f)
		Walk(x.RHS, f)
	case Seq:
		for _, step := range x.Steps {
			for _, op := range step {
				Walk(op, f)
			}
		}
	case Lambda:
		Walk(x.Body, f)
	case Apply:
		Walk(x.Fn, f)
		Walk(x.Arg, f)
	case Vector:
		for _, e := range x.Elems {
			Walk(e, f)
		}
	case MapApply:
		Walk(x.Fn, f)
		Walk(x.Vec, f)
	}
}

// Subst returns n with every free occurrence of Ident{name} replaced
// by repl.  Lambda binders shadow as usual.
func Subst(n Node, name string, repl Node) Node {
	switch x := n.(type) {
	case nil:
		return nil
	case Num, Sym:
		return x
	case Ident:
		if x.Name == name {
			return repl
		}
		return x
	case Index:
		return Index{Base: Subst(x.Base, name, repl), Elem: Subst(x.Elem, name, repl), Width: substOrNil(x.Width, name, repl)}
	case Bin:
		return Bin{Op: x.Op, L: Subst(x.L, name, repl), R: Subst(x.R, name, repl)}
	case Un:
		return Un{Op: x.Op, X: Subst(x.X, name, repl)}
	case Cond:
		return Cond{C: Subst(x.C, name, repl), T: Subst(x.T, name, repl), F: substOrNil(x.F, name, repl)}
	case Assign:
		return Assign{LHS: Subst(x.LHS, name, repl), RHS: Subst(x.RHS, name, repl)}
	case Seq:
		steps := make([][]Node, len(x.Steps))
		for i, step := range x.Steps {
			steps[i] = make([]Node, len(step))
			for j, op := range step {
				steps[i][j] = Subst(op, name, repl)
			}
		}
		return Seq{Steps: steps}
	case Lambda:
		if x.Param == name {
			return x // shadowed
		}
		return Lambda{Param: x.Param, Body: Subst(x.Body, name, repl)}
	case Apply:
		return Apply{Fn: Subst(x.Fn, name, repl), Arg: Subst(x.Arg, name, repl)}
	case Vector:
		elems := make([]Node, len(x.Elems))
		for i, e := range x.Elems {
			elems[i] = Subst(e, name, repl)
		}
		return Vector{Elems: elems}
	case MapApply:
		return MapApply{Fn: Subst(x.Fn, name, repl), Vec: Subst(x.Vec, name, repl)}
	default:
		return n
	}
}

func substOrNil(n Node, name string, repl Node) Node {
	if n == nil {
		return nil
	}
	return Subst(n, name, repl)
}

// UnwrapSeq flattens a single-operation Seq to that operation; other
// nodes pass through.  Parenthesized expressions parse as one-step,
// one-op Seqs, so evaluators call this before dispatch.
func UnwrapSeq(n Node) Node {
	if s, ok := n.(Seq); ok && len(s.Steps) == 1 && len(s.Steps[0]) == 1 {
		return UnwrapSeq(s.Steps[0][0])
	}
	return n
}
