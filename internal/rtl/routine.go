// Routine-level compilation: the emulator's third tier.  Where
// compile.go lowers one instruction and direct.go one superblock,
// CompileRoutine consumes a whole routine's CFG plus liveness and
// emits a single flat program in which the SPARC register file and
// the integer condition codes live in an REnv the runner keeps in
// registers/cache across basic-block boundaries.  Architected state
// (the CPU struct) is touched only at routine entry and exit — the
// paper's §3 analyses (CFG + liveness) turned inward on the emulator
// itself.
//
// Condition codes are lazy: a subcc records its operands and kind
// instead of materializing NZVC into PSR; conditional branches fuse
// the comparison into a direct predicate on the recorded operands,
// and FlushCC materializes PSR only when it is actually observed
// (routine exit, addx/subx carry read, unfusable branch).  A cc def
// that liveness proves dead *and* that is locally re-defined before
// any fault-capable instruction is elided outright, so
// subcc-then-never-branched pays nothing.
//
// The compiled program is immutable and content-addressed by the
// caller, so one compilation is shared by every CPU executing the
// same text.
package rtl

import (
	"fmt"
	"math"
	"sort"
	"time"

	"eel/internal/cfg"
	"eel/internal/dataflow"
	"eel/internal/machine"
	"eel/internal/telemetry"
)

// RWindow is one saved SPARC register window (locals + ins).  The
// emulator's window stack aliases this type so routine-compiled save/
// restore and the interpreter push and pop the same representation.
type RWindow struct {
	Locals, Ins [8]uint32
}

// RBridge is the slow-path escape hatch a routine program calls for
// memory and traps.  The emulator's cpuEnv supplies it, so error
// strings and write-watch side effects are bit-identical to the
// interpreter's.
type RBridge interface {
	ReadMem(addr uint64, width int) (uint64, error)
	WriteMem(addr uint64, width int, v uint64) error
	// RTrap performs a software trap against the routine
	// environment's registers (not the CPU's: the register file
	// lives in e while the routine runs).
	RTrap(e *REnv, code uint64) error
}

// Lazy condition-code kinds.
const (
	ccNone = iota
	ccKAdd
	ccKSub
	ccKLogic
)

// Stop kinds a routine program reports through REnv.StopKind.
const (
	StopNone = iota
	// StopFault: an instruction faulted; StopErr holds the cause and
	// the faulting instruction did not retire.
	StopFault
	// StopHalt: a trap halted the machine (Halted/ExitCode set); the
	// trap instruction retired.
	StopHalt
	// StopGen: a store invalidated the translation generation
	// (self-modifying code); the store retired, the routine must
	// deopt.
	StopGen
)

// Terminator return sentinels.  A terminator returns the next block
// index (>= 0), or:
const (
	// RTermExit: control left the routine; PC/NPC/Insts are
	// finalized and the runner may re-enter another routine at PC.
	RTermExit int32 = -1
	// RTermStop: execution stopped; PC/NPC/Insts and the Stop*
	// fields are finalized.
	RTermStop int32 = -2
)

// REnv is the routine tier's execution environment: the architected
// state held privately while a routine program runs.  The runner
// fills it from the CPU at entry and spills it back at exit, calls,
// traps, and deopt points.
type REnv struct {
	R   [32]uint32
	Y   uint32
	PSR uint32
	FSR uint32
	F   [32]uint32

	PC, NPC uint32
	Insts   uint64
	Annuls  uint64

	Windows  []RWindow
	Halted   bool
	ExitCode uint32

	// Lazy integer condition codes: kind + operands of the most
	// recent cc-setting instruction.  PSR is stale while ccK !=
	// ccNone; FlushCC materializes it.
	ccK      uint8
	ccA, ccB uint32

	// Stop protocol (see Stop* constants).
	StopKind int
	StopErr  error
	StopPC   uint32

	Bridge RBridge

	// Gen is the translation generation the routine was entered
	// under; *GenP is the live counter.  A mismatch after a store
	// means self-modifying code.
	Gen  uint64
	GenP *uint64
}

// FlushCC materializes the lazy condition codes into PSR.  The
// recorded operands are preserved so an already-fused branch after a
// flush still sees them.
func (e *REnv) FlushCC() {
	switch e.ccK {
	case ccKAdd:
		e.PSR = uint32(ccAdd(e.ccA, e.ccB))
	case ccKSub:
		e.PSR = uint32(ccSub(e.ccA, e.ccB))
	case ccKLogic:
		e.PSR = uint32(ccLogic(e.ccA))
	}
	e.ccK = ccNone
}

// ResetCC clears the lazy condition-code state (PSR is
// authoritative); the runner calls it when filling the environment.
func (e *REnv) ResetCC() { e.ccK = ccNone }

// ROp is one compiled body instruction.  It returns true to stop,
// with StopKind/StopErr set; the runner finalizes PC/NPC/Insts from
// the op's position.
type ROp func(*REnv) bool

// RTerm is a compiled block terminator.  It returns the next block
// index or a sentinel; on RTermExit and RTermStop it has finalized
// PC, NPC, and the instruction/annul counters itself.
type RTerm func(*REnv) int32

// RBlock is one compiled basic block of a routine program.
type RBlock struct {
	Base uint32
	Ops  []ROp
	Term RTerm
	// Cost bounds how many instructions the block can retire
	// (body + terminator + delay slot); the runner refuses entry
	// when the step budget cannot cover it.
	Cost uint64
}

// RoutineProg is a whole compiled routine: a flat block list plus an
// index from block base pc to block number.  It is immutable after
// compilation and safe to share across CPUs.
type RoutineProg struct {
	Entry  uint32
	Blocks []RBlock
	// Index maps every compiled (non-stub) block base to its index;
	// these are the pcs at which the routine tier may enter.
	Index map[uint32]int32
	// Stubs counts blocks the compiler refused (uncompilable head);
	// control into them exits to the lower tier.
	Stubs int
}

// slotStop finalizes a stop raised by a delay-slot instruction.
// During the slot the pipeline state is PC=slotpc, NPC=target (the
// transfer already wrote the delayed target).
func slotStop(e *REnv, slotpc, target uint32) int32 {
	switch e.StopKind {
	case StopFault:
		e.Insts++ // the transfer retired; the slot did not
		e.PC, e.NPC = slotpc, target
		e.StopPC = slotpc
	case StopHalt:
		e.Insts += 2
		e.PC, e.NPC = slotpc, target
	case StopGen:
		e.Insts += 2
		e.PC, e.NPC = target, target+4
	}
	return RTermStop
}

// rtarget is a link-resolved control-flow target: an in-program
// block index, or an exit at pc.
type rtarget struct {
	k  int32 // block index, or RTermExit
	pc uint32
}

func (t rtarget) enter(e *REnv) int32 {
	if t.k >= 0 {
		return t.k
	}
	e.PC, e.NPC = t.pc, t.pc+4
	return RTermExit
}

// operand is a pre-decoded op2: either a sign-extended immediate or
// a register index.
type operand struct {
	imm bool
	k   uint32
	rs2 uint32
}

func (o operand) val(e *REnv) uint32 {
	if o.imm {
		return o.k
	}
	return e.R[o.rs2]
}

// CompileError from routine lowering (reuses the compile.go type).
// A block whose head fails to lower becomes a stub instead of
// failing the whole routine; CompileRoutine errors only when the
// entry block itself is uncompilable.
var errEntryStub = fmt.Errorf("rtl: routine entry block not compilable")

type instAt struct {
	pc uint32
	in *machine.Inst
}

// Terminator descriptor kinds, materialized after the block index is
// known.
type termKind int

const (
	tkFall      termKind = iota // fall through to target
	tkFallExit                  // fall off the analyzed region
	tkUncond                    // ba/fba, slot executes
	tkAnnulTaken                // ba,a / fba,a: slot annulled, to target
	tkAnnulSkip                 // bn,a / fbn,a: slot annulled, to pc+8
	tkCond                      // conditional branch
	tkCall                      // call (static target)
	tkJmpl                      // jmpl (indirect)
)

type termDesc struct {
	kind   termKind
	pc     uint32 // terminator instruction address
	target uint32 // static target / fallthrough pc
	annul  bool
	test   string // condition name for tkCond ("ne", "fge", ...)
	fp     bool
	slot   ROp
	slotPC uint32
	// jmpl operands
	rd, rs1 uint32
	op2     operand
}

type protoBlock struct {
	base uint32
	body []instAt
	term termDesc
	stub bool
}

// routineCompiler carries per-routine compile state.
type routineCompiler struct {
	inv map[uint32]*machine.Inst
	pl  *dataflow.PointLiveness
}

// CompileRoutine lowers the routine rooted at entry, described by g
// and analyzed by lv, to a RoutineProg.  lv may be nil (no elision).
func CompileRoutine(g *cfg.Graph, lv *dataflow.Liveness, entry uint32) (prog *RoutineProg, err error) {
	sp := telemetry.ActiveTracer().Begin("rtl.CompileRoutine", "rtl")
	start := time.Now()
	defer func() {
		telemetry.Default().Histogram("rtl.routine_compile_ns").Observe(uint64(time.Since(start)))
		sp.Arg("entry", fmt.Sprintf("%#x", entry))
		if prog != nil {
			sp.Arg("blocks", len(prog.Blocks))
		}
		if err != nil {
			sp.Arg("error", err.Error())
		}
		sp.End()
	}()
	rc := &routineCompiler{inv: make(map[uint32]*machine.Inst)}
	for _, b := range g.Blocks {
		for _, ci := range b.Insts {
			if ci.MI != nil && ci.MI.Valid() {
				rc.inv[ci.Addr] = ci.MI
			}
		}
	}
	if rc.inv[entry] == nil {
		return nil, fmt.Errorf("rtl: routine entry %#x not in graph", entry)
	}
	if lv != nil {
		rc.pl = lv.Points()
	}

	pcs := make([]uint32, 0, len(rc.inv))
	for pc := range rc.inv {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })

	leaders := map[uint32]bool{entry: true}
	for pc, in := range rc.inv {
		if isXfer(in) {
			leaders[pc+8] = true
			if t, ok := in.StaticTarget(pc); ok {
				leaders[t] = true
			}
		} else if isAnnulSkip(in) {
			leaders[pc+8] = true
		}
	}
	for _, pc := range pcs {
		if rc.inv[pc-4] == nil {
			leaders[pc] = true
		}
	}

	var protos []protoBlock
	for idx := 0; idx < len(pcs); {
		base := pcs[idx]
		if !leaders[base] {
			idx++
			continue
		}
		pb := rc.formBlock(base, leaders)
		protos = append(protos, pb)
		for idx < len(pcs) && (pcs[idx] < base+4 || !leaders[pcs[idx]]) {
			idx++
		}
	}

	prog = &RoutineProg{Entry: entry, Index: make(map[uint32]int32)}
	for i := range protos {
		pb := &protos[i]
		if pb.stub {
			prog.Stubs++
			continue
		}
		prog.Index[pb.base] = int32(len(prog.Blocks))
		prog.Blocks = append(prog.Blocks, RBlock{Base: pb.base})
	}
	if _, ok := prog.Index[entry]; !ok {
		return nil, errEntryStub
	}

	// Materialize blocks now that the index is known.
	bi := 0
	for i := range protos {
		pb := &protos[i]
		if pb.stub {
			continue
		}
		blk := &prog.Blocks[bi]
		bi++
		ops, ok := rc.compileBody(pb)
		if !ok {
			// Body failed late: demote to an immediate exit at the
			// block head (never executes any instruction).
			base := pb.base
			blk.Ops = nil
			blk.Term = func(e *REnv) int32 {
				e.PC, e.NPC = base, base+4
				return RTermExit
			}
			// A zero-cost self-exit would livelock the runner's
			// dispatch loop; cost 1 forces the budget check to pass
			// and the runner's no-progress guard to hand over.
			blk.Cost = 1
			delete(prog.Index, pb.base)
			prog.Stubs++
			continue
		}
		blk.Ops = ops
		blk.Term = rc.linkTerm(prog, pb)
		blk.Cost = uint64(len(ops)) + termCost(pb.term.kind)
	}
	return prog, nil
}

func termCost(k termKind) uint64 {
	switch k {
	case tkFall, tkFallExit:
		return 0
	case tkAnnulTaken, tkAnnulSkip:
		return 1
	default:
		return 2
	}
}

func isXfer(in *machine.Inst) bool { return in.DelaySlots() > 0 }

func isAnnulSkip(in *machine.Inst) bool {
	n := in.Name()
	return (n == "bn" || n == "fbn") && in.AnnulBit()
}

// formBlock scans forward from base collecting body instructions
// until a terminator or a leader boundary.
func (rc *routineCompiler) formBlock(base uint32, leaders map[uint32]bool) protoBlock {
	pb := protoBlock{base: base}
	pc := base
	for {
		in := rc.inv[pc]
		if in == nil {
			pb.term = termDesc{kind: tkFallExit, pc: pc, target: pc}
			return pb
		}
		if isXfer(in) || isAnnulSkip(in) {
			pb.term = rc.termFor(pc, in)
			if pb.term.kind == tkFall && pb.term.target == 0 {
				pb.stub = true
			}
			return pb
		}
		pb.body = append(pb.body, instAt{pc, in})
		pc += 4
		if leaders[pc] {
			pb.term = termDesc{kind: tkFall, pc: pc, target: pc}
			return pb
		}
	}
}

// termFor classifies a control-transfer (or annulling bn) into a
// terminator descriptor, compiling its delay slot when one executes.
// An unclassifiable transfer yields a stub marker (kind tkFall with
// target 0, caught by formBlock).
func (rc *routineCompiler) termFor(pc uint32, in *machine.Inst) termDesc {
	stub := termDesc{kind: tkFall, pc: pc, target: 0}
	name := in.Name()
	annul := in.AnnulBit()

	needSlot := func() (ROp, bool) {
		sin := rc.inv[pc+4]
		if sin == nil || isXfer(sin) || isAnnulSkip(sin) {
			return nil, false
		}
		// The slot runs after the branch decision, outside the body:
		// compile it with elision and fusion context disabled.
		op, ok := rc.bodyOp(pc+4, sin, false)
		return op, ok
	}

	switch {
	case name == "bn" || name == "fbn":
		// Only the annulled form reaches here.
		return termDesc{kind: tkAnnulSkip, pc: pc, target: pc + 8}

	case name == "ba" || name == "fba":
		t, ok := in.StaticTarget(pc)
		if !ok {
			return stub
		}
		if annul {
			return termDesc{kind: tkAnnulTaken, pc: pc, target: t}
		}
		slot, ok := needSlot()
		if !ok {
			return stub
		}
		return termDesc{kind: tkUncond, pc: pc, target: t, slot: slot, slotPC: pc + 4}

	case name == "call":
		t, ok := in.StaticTarget(pc)
		if !ok {
			return stub
		}
		slot, ok := needSlot()
		if !ok {
			return stub
		}
		return termDesc{kind: tkCall, pc: pc, target: t, slot: slot, slotPC: pc + 4}

	case name == "jmpl":
		rd, _ := in.Field("rd")
		rs1, _ := in.Field("rs1")
		op2, ok := decodeOp2(in)
		if !ok {
			return stub
		}
		slot, sok := needSlot()
		if !sok {
			return stub
		}
		return termDesc{kind: tkJmpl, pc: pc, rd: rd, rs1: rs1, op2: op2, slot: slot, slotPC: pc + 4}

	default:
		test, fp, ok := condName(name)
		if !ok {
			return stub
		}
		t, ok := in.StaticTarget(pc)
		if !ok {
			return stub
		}
		td := termDesc{kind: tkCond, pc: pc, target: t, annul: annul, test: test, fp: fp}
		if !annul {
			slot, ok := needSlot()
			if !ok {
				return stub
			}
			td.slot, td.slotPC = slot, pc+4
			return td
		}
		// Annulled conditional: the slot runs only when taken.
		slot, ok := needSlot()
		if !ok {
			return stub
		}
		td.slot, td.slotPC = slot, pc+4
		return td
	}
}

// condName maps a branch mnemonic to its condition-test symbol.
func condName(name string) (test string, fp, ok bool) {
	if len(name) > 2 && name[0] == 'f' && name[1] == 'b' {
		t := "f" + name[2:]
		_, ok := fccSets[t]
		return t, true, ok
	}
	if len(name) > 1 && name[0] == 'b' {
		t := name[1:]
		_, ok := condTests[t]
		return t, false, ok
	}
	return "", false, false
}

func decodeOp2(in *machine.Inst) (operand, bool) {
	iflag, ok := in.Field("iflag")
	if !ok {
		return operand{}, false
	}
	if iflag == 1 {
		simm, ok := in.Field("simm13")
		if !ok {
			return operand{}, false
		}
		return operand{imm: true, k: uint32(signExtend(uint64(simm), 13))}, true
	}
	rs2, ok := in.Field("rs2")
	if !ok {
		return operand{}, false
	}
	return operand{rs2: rs2}, true
}

// compileBody lowers a proto block's body instructions.  It returns
// ok=false when any instruction fails to lower.
func (rc *routineCompiler) compileBody(pb *protoBlock) ([]ROp, bool) {
	if len(pb.body) == 0 {
		return nil, true
	}
	ops := make([]ROp, len(pb.body))
	for i, ia := range pb.body {
		elide := rc.ccElidable(pb.body, i)
		op, ok := rc.bodyOp(ia.pc, ia.in, elide)
		if !ok {
			return nil, false
		}
		ops[i] = op
	}
	return ops, true
}

// lastCCKind reports the lazy-cc kind the block's last PSR-writing
// body instruction records, for branch fusion.  0 means "unknown"
// (no cc def in this block: the flags flow in from a predecessor).
func lastCCKind(body []instAt) uint8 {
	for i := len(body) - 1; i >= 0; i-- {
		if k := ccKindOf(body[i].in.Name()); k != ccNone {
			return k
		}
		if body[i].in.Writes().Has(machine.RegPSR) {
			return ccNone // non-cc PSR writer: don't fuse
		}
	}
	return ccNone
}

func ccKindOf(name string) uint8 {
	switch name {
	case "addcc":
		return ccKAdd
	case "subcc":
		return ccKSub
	case "andcc", "orcc", "xorcc", "andncc", "orncc", "xnorcc":
		return ccKLogic
	}
	return ccNone
}

// ccElidable reports whether the cc record of the instruction at
// body[i] can be skipped entirely: PSR must be dead after it
// (liveness), and — because liveness does not model faults — the
// next PSR def must arrive before any instruction that could observe
// PSR (a fault-capable op, a carry reader, or the block end, where a
// spill would materialize the flags).
func (rc *routineCompiler) ccElidable(body []instAt, i int) bool {
	if rc.pl == nil || ccKindOf(body[i].in.Name()) == ccNone {
		return false
	}
	if live, ok := rc.pl.LiveAfter(body[i].pc); !ok || live.Has(machine.RegPSR) {
		return false
	}
	for j := i + 1; j < len(body); j++ {
		in := body[j].in
		if ccKindOf(in.Name()) != ccNone {
			return true // re-defined before any observer
		}
		if in.Reads().Has(machine.RegPSR) || in.Writes().Has(machine.RegPSR) {
			return false
		}
		if faultCapable(in) {
			return false
		}
	}
	return false // reaches the terminator / block end
}

func faultCapable(in *machine.Inst) bool {
	if in.ReadsMem() || in.WritesMem() {
		return true
	}
	switch in.Name() {
	case "udiv", "sdiv", "ta":
		return true
	}
	return in.Category() == machine.CatSystem
}

func nopROp(*REnv) bool { return false }

func stopFault(e *REnv, err error) bool {
	e.StopKind = StopFault
	e.StopErr = err
	return true
}

// genCheck returns true (stop) when a store invalidated the text
// generation.
func genCheck(e *REnv) bool {
	if e.Gen != *e.GenP {
		e.StopKind = StopGen
		return true
	}
	return false
}

// divErrNode digs the udiv/sdiv application node out of the
// instruction's semantic AST so a division-by-zero fault renders the
// same "rtl: eval ...: division by zero" string as the interpreter.
func divErrNode(in *machine.Inst, op string) Node {
	type semSource interface{ SemNode() Node }
	ss, ok := in.Sem().(semSource)
	if !ok {
		return Ident{Name: op}
	}
	var found Node
	Walk(ss.SemNode(), func(n Node) {
		if found != nil {
			return
		}
		if a, ok := n.(Apply); ok {
			h, _ := spine(a)
			if id, ok := h.(Ident); ok && id.Name == op {
				found = a
			}
		}
	})
	if found == nil {
		return Ident{Name: op}
	}
	return found
}

// bodyOp lowers one non-transfer instruction to an ROp.  elideCC
// skips the lazy condition-code record of a cc-setting op (proven
// unobservable).  ok=false means the instruction is not compilable
// at this tier.
func (rc *routineCompiler) bodyOp(pc uint32, in *machine.Inst, elideCC bool) (ROp, bool) {
	name := in.Name()
	rd, _ := in.Field("rd")
	rs1, _ := in.Field("rs1")

	// Operand decode helpers; not every instruction has op2.
	o, hasOp2 := decodeOp2(in)
	need2 := func() bool { return hasOp2 }

	switch name {
	// --- plain ALU, hand-specialized imm/reg forms ---
	case "add":
		if !need2() {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		if o.imm {
			k := o.k
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] + k; return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool { e.R[rd] = e.R[rs1] + e.R[rs2]; return false }, true
	case "sub":
		if !need2() {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		if o.imm {
			k := o.k
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] - k; return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool { e.R[rd] = e.R[rs1] - e.R[rs2]; return false }, true
	case "and":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 { return a & b })
	case "or":
		if !need2() {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		if o.imm {
			k := o.k
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] | k; return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool { e.R[rd] = e.R[rs1] | e.R[rs2]; return false }, true
	case "xor":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 { return a ^ b })
	case "andn":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 { return a &^ b })
	case "orn":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 { return a | ^b })
	case "xnor":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 { return ^(a ^ b) })
	case "umul":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 { return a * b })
	case "smul":
		return rc.alu2(rd, rs1, o, hasOp2, func(a, b uint32) uint32 {
			return uint32(int32(a) * int32(b))
		})
	case "sll":
		if !need2() {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		if o.imm {
			k := o.k & 31
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] << k; return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool { e.R[rd] = e.R[rs1] << (e.R[rs2] & 31); return false }, true
	case "srl":
		if !need2() {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		if o.imm {
			k := o.k & 31
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] >> k; return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool { e.R[rd] = e.R[rs1] >> (e.R[rs2] & 31); return false }, true
	case "sra":
		if !need2() {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		if o.imm {
			k := o.k & 31
			return func(e *REnv) bool { e.R[rd] = uint32(int32(e.R[rs1]) >> k); return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool {
			e.R[rd] = uint32(int32(e.R[rs1]) >> (e.R[rs2] & 31))
			return false
		}, true

	case "sethi":
		imm22, ok := in.Field("imm22")
		if !ok {
			return nil, false
		}
		if rd == 0 {
			return nopROp, true
		}
		k := imm22 << 10
		return func(e *REnv) bool { e.R[rd] = k; return false }, true

	case "rdy":
		if rd == 0 {
			return nopROp, true
		}
		return func(e *REnv) bool { e.R[rd] = e.Y; return false }, true
	case "wry":
		if !need2() {
			return nil, false
		}
		if o.imm {
			k := o.k
			return func(e *REnv) bool { e.Y = e.R[rs1] ^ k; return false }, true
		}
		rs2 := o.rs2
		return func(e *REnv) bool { e.Y = e.R[rs1] ^ e.R[rs2]; return false }, true

	// --- carry readers: must flush the lazy flags ---
	case "addx":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			e.FlushCC()
			v := e.R[rs1] + op2.val(e) + (e.PSR>>20)&1
			if rd != 0 {
				e.R[rd] = v
			}
			return false
		}, true
	case "subx":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			e.FlushCC()
			v := e.R[rs1] - op2.val(e) - (e.PSR>>20)&1
			if rd != 0 {
				e.R[rd] = v
			}
			return false
		}, true

	// --- cc setters: record lazily (or elide) ---
	case "addcc":
		if !need2() {
			return nil, false
		}
		op2 := o
		if elideCC {
			if rd == 0 {
				return nopROp, true
			}
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] + op2.val(e); return false }, true
		}
		return func(e *REnv) bool {
			a, b := e.R[rs1], op2.val(e)
			e.ccK, e.ccA, e.ccB = ccKAdd, a, b
			if rd != 0 {
				e.R[rd] = a + b
			}
			return false
		}, true
	case "subcc":
		if !need2() {
			return nil, false
		}
		op2 := o
		if elideCC {
			if rd == 0 {
				return nopROp, true
			}
			return func(e *REnv) bool { e.R[rd] = e.R[rs1] - op2.val(e); return false }, true
		}
		if op2.imm {
			k := op2.k
			return func(e *REnv) bool {
				a := e.R[rs1]
				e.ccK, e.ccA, e.ccB = ccKSub, a, k
				if rd != 0 {
					e.R[rd] = a - k
				}
				return false
			}, true
		}
		return func(e *REnv) bool {
			a, b := e.R[rs1], e.R[op2.rs2]
			e.ccK, e.ccA, e.ccB = ccKSub, a, b
			if rd != 0 {
				e.R[rd] = a - b
			}
			return false
		}, true
	case "andcc", "orcc", "xorcc", "andncc", "orncc", "xnorcc":
		if !need2() {
			return nil, false
		}
		var f func(a, b uint32) uint32
		switch name {
		case "andcc":
			f = func(a, b uint32) uint32 { return a & b }
		case "orcc":
			f = func(a, b uint32) uint32 { return a | b }
		case "xorcc":
			f = func(a, b uint32) uint32 { return a ^ b }
		case "andncc":
			f = func(a, b uint32) uint32 { return a &^ b }
		case "orncc":
			f = func(a, b uint32) uint32 { return a | ^b }
		default:
			f = func(a, b uint32) uint32 { return ^(a ^ b) }
		}
		op2 := o
		if elideCC {
			if rd == 0 {
				return nopROp, true
			}
			return func(e *REnv) bool { e.R[rd] = f(e.R[rs1], op2.val(e)); return false }, true
		}
		return func(e *REnv) bool {
			r := f(e.R[rs1], op2.val(e))
			e.ccK, e.ccA = ccKLogic, r
			if rd != 0 {
				e.R[rd] = r
			}
			return false
		}, true

	// --- division: may fault, interpreter-identical error ---
	case "udiv", "sdiv":
		if !need2() {
			return nil, false
		}
		op2 := o
		signed := name == "sdiv"
		errAt := divErrNode(in, name)
		return func(e *REnv) bool {
			b := op2.val(e)
			if b == 0 {
				return stopFault(e, &EvalError{errAt, "division by zero"})
			}
			if rd != 0 {
				if signed {
					e.R[rd] = uint32(int32(e.R[rs1]) / int32(b))
				} else {
					e.R[rd] = e.R[rs1] / b
				}
			}
			return false
		}, true

	// --- non-transfer branches: bn/fbn without annul is a nop ---
	case "bn", "fbn":
		if in.AnnulBit() {
			return nil, false // terminator territory
		}
		return nopROp, true

	// --- loads ---
	case "ld", "ldub", "lduh", "ldsb", "ldsh":
		if !need2() {
			return nil, false
		}
		op2 := o
		var width int
		var sext int // sign-extension width, 0 = zero-extend
		switch name {
		case "ld":
			width = 4
		case "ldub":
			width = 1
		case "lduh":
			width = 2
		case "ldsb":
			width, sext = 1, 8
		case "ldsh":
			width, sext = 2, 16
		}
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			v, err := e.Bridge.ReadMem(uint64(ea), width)
			if err != nil {
				return stopFault(e, err)
			}
			if sext != 0 {
				v = signExtend(v, sext)
			}
			if rd != 0 {
				e.R[rd] = uint32(v)
			}
			return false
		}, true

	case "ldd":
		if !need2() {
			return nil, false
		}
		op2 := o
		rdOdd := rd | 1
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			v0, err := e.Bridge.ReadMem(uint64(ea), 4)
			if err != nil {
				return stopFault(e, err)
			}
			v1, err := e.Bridge.ReadMem(uint64(ea+4), 4)
			if err != nil {
				return stopFault(e, err)
			}
			if rd != 0 {
				e.R[rd] = uint32(v0)
			}
			e.R[rdOdd] = uint32(v1) // rd|1 is never %g0
			return false
		}, true

	// --- stores: generation check after the write ---
	case "st", "stb", "sth":
		if !need2() {
			return nil, false
		}
		op2 := o
		width := 4
		if name == "stb" {
			width = 1
		} else if name == "sth" {
			width = 2
		}
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			if err := e.Bridge.WriteMem(uint64(ea), width, uint64(e.R[rd])); err != nil {
				return stopFault(e, err)
			}
			return genCheck(e)
		}, true

	case "std":
		if !need2() {
			return nil, false
		}
		op2 := o
		rdOdd := rd | 1
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			if err := e.Bridge.WriteMem(uint64(ea), 4, uint64(e.R[rd])); err != nil {
				return stopFault(e, err)
			}
			if err := e.Bridge.WriteMem(uint64(ea+4), 4, uint64(e.R[rdOdd])); err != nil {
				return stopFault(e, err)
			}
			return genCheck(e)
		}, true

	case "ldstub":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			v, err := e.Bridge.ReadMem(uint64(ea), 1)
			if err != nil {
				return stopFault(e, err)
			}
			if err := e.Bridge.WriteMem(uint64(ea), 1, 255); err != nil {
				return stopFault(e, err)
			}
			if rd != 0 {
				e.R[rd] = uint32(v)
			}
			return genCheck(e)
		}, true

	case "swap":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			mem, err := e.Bridge.ReadMem(uint64(ea), 4)
			if err != nil {
				return stopFault(e, err)
			}
			old := e.R[rd]
			if rd != 0 {
				e.R[rd] = uint32(mem)
			}
			if err := e.Bridge.WriteMem(uint64(ea), 4, uint64(old)); err != nil {
				return stopFault(e, err)
			}
			return genCheck(e)
		}, true

	case "ldf":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			v, err := e.Bridge.ReadMem(uint64(ea), 4)
			if err != nil {
				return stopFault(e, err)
			}
			e.F[rd] = uint32(v)
			return false
		}, true
	case "stf":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			ea := e.R[rs1] + op2.val(e)
			if err := e.Bridge.WriteMem(uint64(ea), 4, uint64(e.F[rd])); err != nil {
				return stopFault(e, err)
			}
			return genCheck(e)
		}, true

	// --- floating point (FSR is eager: fcmps' only output is the
	// condition codes, so laziness buys nothing there) ---
	case "fmovs":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool { e.F[rd] = e.F[rs2]; return false }, true
	case "fnegs":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool {
			e.F[rd] = math.Float32bits(-math.Float32frombits(e.F[rs2]))
			return false
		}, true
	case "fabss":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool {
			e.F[rd] = math.Float32bits(float32(math.Abs(float64(math.Float32frombits(e.F[rs2])))))
			return false
		}, true
	case "fadds", "fsubs", "fmuls", "fdivs":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		var f func(a, b float32) float32
		switch name {
		case "fadds":
			f = func(a, b float32) float32 { return a + b }
		case "fsubs":
			f = func(a, b float32) float32 { return a - b }
		case "fmuls":
			f = func(a, b float32) float32 { return a * b }
		default:
			f = func(a, b float32) float32 { return a / b }
		}
		return func(e *REnv) bool {
			e.F[rd] = math.Float32bits(f(math.Float32frombits(e.F[rs1]), math.Float32frombits(e.F[rs2])))
			return false
		}, true
	case "fitos":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool {
			e.F[rd] = math.Float32bits(float32(int32(e.F[rs2])))
			return false
		}, true
	case "fstoi":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool {
			e.F[rd] = uint32(int32(math.Float32frombits(e.F[rs2])))
			return false
		}, true
	case "fcmps":
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool {
			a := math.Float32frombits(e.F[rs1])
			b := math.Float32frombits(e.F[rs2])
			var fcc uint32
			switch {
			case a != a || b != b:
				fcc = 3
			case a < b:
				fcc = 1
			case a > b:
				fcc = 2
			}
			e.FSR = fcc << 10
			return false
		}, true

	// --- register windows ---
	case "save":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			v := e.R[rs1] + op2.val(e) // computed in the old window
			var w RWindow
			copy(w.Locals[:], e.R[16:24])
			copy(w.Ins[:], e.R[24:32])
			e.Windows = append(e.Windows, w)
			copy(e.R[24:32], e.R[8:16]) // new ins = old outs
			for i := 8; i < 24; i++ {
				e.R[i] = 0
			}
			if rd != 0 {
				e.R[rd] = v
			}
			return false
		}, true
	case "restore":
		if !need2() {
			return nil, false
		}
		op2 := o
		return func(e *REnv) bool {
			v := e.R[rs1] + op2.val(e)
			copy(e.R[8:16], e.R[24:32]) // new outs = old ins
			if n := len(e.Windows); n > 0 {
				w := e.Windows[n-1]
				e.Windows = e.Windows[:n-1]
				copy(e.R[16:24], w.Locals[:])
				copy(e.R[24:32], w.Ins[:])
			} else {
				for i := 16; i < 32; i++ {
					e.R[i] = 0
				}
			}
			if rd != 0 {
				e.R[rd] = v
			}
			return false
		}, true

	// --- traps ---
	case "ta":
		iflag, ok := in.Field("iflag")
		if !ok {
			return nil, false
		}
		if iflag == 1 {
			simm, ok := in.Field("simm13")
			if !ok {
				return nil, false
			}
			code := signExtend(uint64(simm), 13)
			return func(e *REnv) bool {
				if err := e.Bridge.RTrap(e, code); err != nil {
					return stopFault(e, err)
				}
				if e.Halted {
					e.StopKind = StopHalt
					return true
				}
				return false
			}, true
		}
		rs2, ok := in.Field("rs2")
		if !ok {
			return nil, false
		}
		return func(e *REnv) bool {
			if err := e.Bridge.RTrap(e, uint64(e.R[rs2])); err != nil {
				return stopFault(e, err)
			}
			if e.Halted {
				e.StopKind = StopHalt
				return true
			}
			return false
		}, true
	}

	return nil, false
}

// alu2 builds a generic two-operand ALU op.
func (rc *routineCompiler) alu2(rd, rs1 uint32, o operand, hasOp2 bool, f func(a, b uint32) uint32) (ROp, bool) {
	if !hasOp2 {
		return nil, false
	}
	if rd == 0 {
		return nopROp, true
	}
	if o.imm {
		k := o.k
		return func(e *REnv) bool { e.R[rd] = f(e.R[rs1], k); return false }, true
	}
	rs2 := o.rs2
	return func(e *REnv) bool { e.R[rd] = f(e.R[rs1], e.R[rs2]); return false }, true
}

// linkTerm materializes a block's terminator against the finished
// block index.
func (rc *routineCompiler) linkTerm(prog *RoutineProg, pb *protoBlock) RTerm {
	td := &pb.term
	resolve := func(pc uint32) rtarget {
		if k, ok := prog.Index[pc]; ok {
			return rtarget{k: k, pc: pc}
		}
		return rtarget{k: RTermExit, pc: pc}
	}

	switch td.kind {
	case tkFall, tkFallExit:
		tg := resolve(td.target)
		return func(e *REnv) int32 { return tg.enter(e) }

	case tkAnnulTaken:
		tg := resolve(td.target)
		return func(e *REnv) int32 {
			e.Insts++
			e.Annuls++
			return tg.enter(e)
		}

	case tkAnnulSkip:
		tg := resolve(td.target)
		return func(e *REnv) int32 {
			e.Insts++
			e.Annuls++
			return tg.enter(e)
		}

	case tkUncond:
		tg := resolve(td.target)
		slot, slotPC, t := td.slot, td.slotPC, td.target
		return func(e *REnv) int32 {
			if slot(e) {
				return slotStop(e, slotPC, t)
			}
			e.Insts += 2
			return tg.enter(e)
		}

	case tkCall:
		tg := resolve(td.target)
		slot, slotPC, t, p := td.slot, td.slotPC, td.target, td.pc
		return func(e *REnv) int32 {
			e.R[15] = p // %o7 = call address, before the slot runs
			if slot(e) {
				return slotStop(e, slotPC, t)
			}
			e.Insts += 2
			return tg.enter(e)
		}

	case tkJmpl:
		slot, slotPC, p := td.slot, td.slotPC, td.pc
		rd, rs1, op2 := td.rd, td.rs1, td.op2
		index := prog.Index
		return func(e *REnv) int32 {
			t := e.R[rs1] + op2.val(e) // old rs1, before rd write
			if rd != 0 {
				e.R[rd] = p
			}
			if slot(e) {
				return slotStop(e, slotPC, t)
			}
			e.Insts += 2
			if k, ok := index[t]; ok {
				return k
			}
			e.PC, e.NPC = t, t+4
			return RTermExit
		}

	case tkCond:
		pred := rc.predFor(pb)
		tgT := resolve(td.target)
		tgF := resolve(td.pc + 8)
		slot, slotPC, t, f := td.slot, td.slotPC, td.target, td.pc+8
		if td.annul {
			return func(e *REnv) int32 {
				if pred(e) {
					if slot(e) {
						return slotStop(e, slotPC, t)
					}
					e.Insts += 2
					return tgT.enter(e)
				}
				e.Insts++
				e.Annuls++
				return tgF.enter(e)
			}
		}
		return func(e *REnv) int32 {
			if pred(e) {
				if slot(e) {
					return slotStop(e, slotPC, t)
				}
				e.Insts += 2
				return tgT.enter(e)
			}
			if slot(e) {
				return slotStop(e, slotPC, f)
			}
			e.Insts += 2
			return tgF.enter(e)
		}
	}
	// Unreachable; stub blocks never call linkTerm.
	return func(e *REnv) int32 {
		e.PC, e.NPC = pb.base, pb.base+4
		return RTermExit
	}
}

// predFor compiles the branch predicate, fusing the comparison with
// the block's last cc-setting instruction when its kind is known.
func (rc *routineCompiler) predFor(pb *protoBlock) func(*REnv) bool {
	td := &pb.term
	if td.fp {
		set := fccSets[td.test]
		return func(e *REnv) bool {
			return set&(1<<((e.FSR>>10)&3)) != 0
		}
	}
	kind := lastCCKind(pb.body)
	if p := fusedPred(kind, td.test); p != nil {
		return p
	}
	test := condTests[td.test]
	return func(e *REnv) bool {
		e.FlushCC()
		return test(uint64(e.PSR)) != 0
	}
}

// fusedPred returns a direct predicate over the lazily recorded cc
// operands, or nil when the (kind, test) pair is not fused (the
// caller falls back to flush + PSR test).
func fusedPred(kind uint8, test string) func(*REnv) bool {
	switch kind {
	case ccKSub:
		switch test {
		case "ne":
			return func(e *REnv) bool { return e.ccA != e.ccB }
		case "e":
			return func(e *REnv) bool { return e.ccA == e.ccB }
		case "g":
			return func(e *REnv) bool { return int32(e.ccA) > int32(e.ccB) }
		case "le":
			return func(e *REnv) bool { return int32(e.ccA) <= int32(e.ccB) }
		case "ge":
			return func(e *REnv) bool { return int32(e.ccA) >= int32(e.ccB) }
		case "l":
			return func(e *REnv) bool { return int32(e.ccA) < int32(e.ccB) }
		case "gu":
			return func(e *REnv) bool { return e.ccA > e.ccB }
		case "leu":
			return func(e *REnv) bool { return e.ccA <= e.ccB }
		case "cc":
			return func(e *REnv) bool { return e.ccA >= e.ccB }
		case "cs":
			return func(e *REnv) bool { return e.ccA < e.ccB }
		case "pos":
			return func(e *REnv) bool { return int32(e.ccA-e.ccB) >= 0 }
		case "neg":
			return func(e *REnv) bool { return int32(e.ccA-e.ccB) < 0 }
		case "vs":
			return func(e *REnv) bool {
				return (e.ccA^e.ccB)&(e.ccA^(e.ccA-e.ccB))&0x80000000 != 0
			}
		case "vc":
			return func(e *REnv) bool {
				return (e.ccA^e.ccB)&(e.ccA^(e.ccA-e.ccB))&0x80000000 == 0
			}
		}
	case ccKLogic:
		switch test {
		case "ne":
			return func(e *REnv) bool { return e.ccA != 0 }
		case "e":
			return func(e *REnv) bool { return e.ccA == 0 }
		case "g":
			return func(e *REnv) bool { return int32(e.ccA) > 0 }
		case "le":
			return func(e *REnv) bool { return int32(e.ccA) <= 0 }
		case "ge":
			return func(e *REnv) bool { return int32(e.ccA) >= 0 }
		case "l":
			return func(e *REnv) bool { return int32(e.ccA) < 0 }
		case "gu":
			return func(e *REnv) bool { return e.ccA != 0 }
		case "leu":
			return func(e *REnv) bool { return e.ccA == 0 }
		case "cc":
			return func(*REnv) bool { return true }
		case "cs":
			return func(*REnv) bool { return false }
		case "pos":
			return func(e *REnv) bool { return int32(e.ccA) >= 0 }
		case "neg":
			return func(e *REnv) bool { return int32(e.ccA) < 0 }
		case "vc":
			return func(*REnv) bool { return true }
		case "vs":
			return func(*REnv) bool { return false }
		}
	}
	// ccKAdd (rare as a branch feeder) and unknown kinds fall back.
	return nil
}
