package rtl_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"eel/internal/asm"
	"eel/internal/cfg"
	"eel/internal/dataflow"
	"eel/internal/rtl"
	"eel/internal/sparc"
)

func buildRoutine(t *testing.T, src string) (*cfg.Graph, *dataflow.Liveness, *asm.Program) {
	t.Helper()
	prog, err := asm.Assemble(src, 0x10000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	end := prog.Base + uint32(len(prog.Bytes))
	g, err := cfg.Build(sparc.NewDecoder(), prog.Bytes, prog.Base, prog.Base, end, []uint32{prog.Base})
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return g, dataflow.ComputeLiveness(g, dataflow.DefaultExitLive()), prog
}

// testBridge is a minimal RBridge: big-endian byte map memory and the
// emulator's trap-0 syscall convention.
type testBridge struct {
	mem map[uint32]byte
}

func (b *testBridge) ReadMem(addr uint64, width int) (uint64, error) {
	a := uint32(addr)
	if a%uint32(width) != 0 {
		return 0, fmt.Errorf("misaligned read%d at %#x", width, a)
	}
	var v uint64
	for i := 0; i < width; i++ {
		v = v<<8 | uint64(b.mem[a+uint32(i)])
	}
	return v, nil
}

func (b *testBridge) WriteMem(addr uint64, width int, v uint64) error {
	a := uint32(addr)
	if a%uint32(width) != 0 {
		return fmt.Errorf("misaligned write%d at %#x", width, a)
	}
	for i := width - 1; i >= 0; i-- {
		b.mem[a+uint32(i)] = byte(v)
		v >>= 8
	}
	return nil
}

func (b *testBridge) RTrap(e *rtl.REnv, code uint64) error {
	if code != 0 {
		return fmt.Errorf("unhandled trap %d", code)
	}
	if e.R[1] == 1 { // SysExit
		e.Halted = true
		e.ExitCode = e.R[8]
		return nil
	}
	return fmt.Errorf("bad syscall %d", e.R[1])
}

// runRoutineProg drives a RoutineProg exactly as the emulator's
// routine tier does: body stops finalized from the op index, block
// terminators self-finalizing, re-entry at exits that land on a
// compiled head.
func runRoutineProg(t *testing.T, p *rtl.RoutineProg, e *rtl.REnv) error {
	t.Helper()
	k, ok := p.Index[e.PC]
	if !ok {
		t.Fatalf("entry %#x not a compiled head", e.PC)
	}
	for steps := 0; ; steps++ {
		if steps > 1_000_000 {
			t.Fatal("routine runner livelock")
		}
		blk := &p.Blocks[k]
		stopped := false
		for i, op := range blk.Ops {
			if op(e) {
				pc := blk.Base + uint32(4*i)
				switch e.StopKind {
				case rtl.StopFault:
					e.Insts += uint64(i)
					e.PC, e.NPC = pc, pc+4
					e.StopPC = pc
					return e.StopErr
				case rtl.StopHalt:
					e.Insts += uint64(i) + 1
					e.PC, e.NPC = pc, pc+4
					return nil
				case rtl.StopGen:
					e.Insts += uint64(i) + 1
					e.PC, e.NPC = pc+4, pc+8
					return nil
				}
			}
		}
		if stopped {
			continue
		}
		e.Insts += uint64(len(blk.Ops))
		next := blk.Term(e)
		if next >= 0 {
			k = next
			continue
		}
		if next == rtl.RTermExit {
			if nk, ok := p.Index[e.PC]; ok && e.NPC == e.PC+4 {
				k = nk
				continue
			}
			return nil
		}
		// RTermStop: everything finalized.
		if e.StopKind == rtl.StopFault {
			return e.StopErr
		}
		return nil
	}
}

// A counted loop with a fused subcc/bne pair, ending in a clean
// syscall exit: checks register results, halt state, and exact
// instruction accounting against hand-counted interpreter behavior.
func TestRoutineLoopSum(t *testing.T) {
	g, lv, prog := buildRoutine(t, `
	mov 0, %o0
	mov 5, %o1
loop:	add %o0, %o1, %o0
	subcc %o1, 1, %o1
	bne loop
	nop
	mov 1, %g1
	ta 0
`)
	rp, err := rtl.CompileRoutine(g, lv, prog.Base)
	if err != nil {
		t.Fatalf("CompileRoutine: %v", err)
	}
	if rp.Stubs != 0 {
		t.Fatalf("unexpected stub blocks: %d", rp.Stubs)
	}

	e := &rtl.REnv{PC: prog.Base, NPC: prog.Base + 4, Bridge: &testBridge{mem: map[uint32]byte{}}}
	var gen uint64
	e.GenP = &gen
	if err := runRoutineProg(t, rp, e); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !e.Halted || e.ExitCode != 15 {
		t.Errorf("halted=%v exit=%d, want halted with 15", e.Halted, e.ExitCode)
	}
	if e.R[8] != 15 || e.R[9] != 0 {
		t.Errorf("o0=%d o1=%d, want 15, 0", e.R[8], e.R[9])
	}
	// 2 setup + 5 iterations of (add, subcc, bne, nop) + mov + ta.
	if want := uint64(2 + 5*4 + 2); e.Insts != want {
		t.Errorf("Insts=%d, want %d", e.Insts, want)
	}
	if e.Annuls != 0 {
		t.Errorf("Annuls=%d, want 0", e.Annuls)
	}
	// Halt leaves PC at the trap (the interpreter skips finishStep).
	taPC := prog.Base + 7*4
	if e.PC != taPC || e.NPC != taPC+4 {
		t.Errorf("PC/NPC=%#x/%#x, want %#x/%#x", e.PC, e.NPC, taPC, taPC+4)
	}
}

// Memory traffic through the bridge: a store then a load round-trips,
// and the store performs the post-write generation check.
func TestRoutineMemAndGen(t *testing.T) {
	g, lv, prog := buildRoutine(t, `
	sethi %hi(0x20000), %o2
	mov 77, %o3
	st %o3, [%o2]
	ld [%o2], %o4
	mov 1, %g1
	ta 0
`)
	rp, err := rtl.CompileRoutine(g, lv, prog.Base)
	if err != nil {
		t.Fatalf("CompileRoutine: %v", err)
	}
	br := &testBridge{mem: map[uint32]byte{}}
	e := &rtl.REnv{PC: prog.Base, NPC: prog.Base + 4, Bridge: br}
	var gen uint64
	e.GenP = &gen
	if err := runRoutineProg(t, rp, e); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.R[12] != 77 {
		t.Errorf("o4=%d, want 77 (store/load round-trip)", e.R[12])
	}
	got := binary.BigEndian.Uint32([]byte{br.mem[0x20000], br.mem[0x20001], br.mem[0x20002], br.mem[0x20003]})
	if got != 77 {
		t.Errorf("mem word = %d, want 77", got)
	}

	// A generation bump observed by the next store must deopt with
	// the store retired.
	e2 := &rtl.REnv{PC: prog.Base, NPC: prog.Base + 4, Bridge: &testBridge{mem: map[uint32]byte{}}}
	gen2 := uint64(0)
	e2.GenP = &gen2
	e2.Gen = 1 // entered under a different generation
	if err := runRoutineProg(t, rp, e2); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e2.StopKind != rtl.StopGen {
		t.Fatalf("StopKind=%d, want StopGen", e2.StopKind)
	}
	stPC := prog.Base + 2*4
	if e2.PC != stPC+4 || e2.Insts != 3 {
		t.Errorf("after gen deopt PC=%#x Insts=%d, want %#x, 3", e2.PC, e2.Insts, stPC+4)
	}
}

// Register windows: save/restore keep the interpreter's stack
// discipline (new ins = old outs, fresh locals, underflow zeroes).
func TestRoutineWindows(t *testing.T) {
	g, lv, prog := buildRoutine(t, `
	mov 42, %o0
	save %sp, -96, %sp
	add %i0, 1, %i0
	restore %i0, 0, %o0
	mov 1, %g1
	ta 0
`)
	rp, err := rtl.CompileRoutine(g, lv, prog.Base)
	if err != nil {
		t.Fatalf("CompileRoutine: %v", err)
	}
	e := &rtl.REnv{PC: prog.Base, NPC: prog.Base + 4, Bridge: &testBridge{mem: map[uint32]byte{}}}
	var gen uint64
	e.GenP = &gen
	e.R[14] = 0x7000 // %sp
	if err := runRoutineProg(t, rp, e); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.R[8] != 43 {
		t.Errorf("o0=%d, want 43 (42 through the window and back +1)", e.R[8])
	}
	if len(e.Windows) != 0 {
		t.Errorf("window stack depth %d after balanced save/restore", len(e.Windows))
	}
	if !e.Halted || e.ExitCode != 43 {
		t.Errorf("halted=%v exit=%d, want halted with 43", e.Halted, e.ExitCode)
	}
}

// The entry must be a compiled head and a diamond compiles without
// stubs.
func TestRoutineDiamondStructure(t *testing.T) {
	g, lv, prog := buildRoutine(t, `
	cmp %o0, 0
	be elsepart
	nop
	mov 1, %l0
	ba join
	nop
elsepart: mov 2, %l0
join:	mov %l0, %o0
	mov 1, %g1
	ta 0
`)
	rp, err := rtl.CompileRoutine(g, lv, prog.Base)
	if err != nil {
		t.Fatalf("CompileRoutine: %v", err)
	}
	if _, ok := rp.Index[prog.Base]; !ok {
		t.Fatal("entry not in block index")
	}
	if rp.Stubs != 0 {
		t.Errorf("stubs=%d, want 0", rp.Stubs)
	}
	// Both arms produce the same halt; run the taken arm.
	e := &rtl.REnv{PC: prog.Base, NPC: prog.Base + 4, Bridge: &testBridge{mem: map[uint32]byte{}}}
	var gen uint64
	e.GenP = &gen
	if err := runRoutineProg(t, rp, e); err != nil {
		t.Fatalf("run: %v", err)
	}
	if e.R[8] != 2 {
		t.Errorf("o0=%d, want 2 (else arm: %%o0 was 0)", e.R[8])
	}
}
