package rtl

// Direct-mode compilation: a second lowering used by the emulator's
// hot tier.  A normal Prog buffers register, memory and pc writes and
// commits them after each parallel step; that pending-write machinery
// (append, commit loop, interface dispatch) is the single largest
// per-instruction cost of translated code.  CompileDirect proves, per
// step, that committing each write immediately — in op order — is
// observationally equivalent to the buffered discipline, and then
// lowers assignments to immediate writes so RunDirect executes the
// program with no pending-write traffic at all.
//
// Equivalence argument.  A buffered step runs E1..En C1..Cn (Ei =
// evaluation of op i plus its immediate effects — temporaries, annul,
// trap, window specials; Ci = commit of op i's buffered writes);
// direct mode runs E1 C1 .. En Cn.  The reorder is unobservable when,
// within a step:
//
//  1. no op reads a location (register, memory, pc) written by an
//     earlier op, so every read sees pre-step state in both orders;
//  2. once any op has committed a write, no later op may fail during
//     evaluation (memory read, division, dynamic register index) —
//     a buffered step surfaces such an error before any commit;
//  3. trap and register-window specials, which read and write broad
//     machine state during evaluation, stand alone in their step.
//
// Writes within one op (evaluate RHS, then commit) already happen in
// that order in both modes, commits keep their relative order, and
// step boundaries are full barriers either way, so the analysis
// resets per step.  Anything it cannot prove makes CompileDirect
// fail and the caller keeps the buffered program: the fallback is the
// common, always-correct path.  The compiler reports reads, writes
// and may-fail points as it lowers — after constant folding, so an
// immediate-form operand contributes no register read and a folded
// guard hides its dead arm.

// Effect flags summarizing a compiled program, recorded during
// lowering in both modes.  The emulator uses them to pick a reduced
// pipeline-advance sequence for instructions that provably do not
// transfer control, annul, or trap.
const (
	FlagPC       uint8 = 1 << iota // may assign pc
	FlagAnnul                      // may annul the delay slot
	FlagTrap                       // may raise a trap
	FlagSpecial                    // register-window special operation
	FlagMemWrite                   // may write memory
)

// Flags reports the program's effect summary.
func (p *Prog) Flags() uint8 { return p.flags }

// Direct reports whether the program commits writes immediately
// (compiled by CompileDirect) rather than buffering them per step.
func (p *Prog) Direct() bool { return p.direct }

// CompileDirect lowers n like Compile but with immediate write
// commits.  It fails — with a CompileError, like any other
// uncompilable construct — when the commit reorder cannot be proven
// unobservable; callers fall back to the buffered Compile form.
// The result must be executed with RunDirect (Run also works: the
// buffered commit loop simply finds nothing pending).
func CompileDirect(n Node, env CompileEnv) (*Prog, error) {
	return compileWith(n, env, true)
}

// RunDirect executes a direct-mode program: Run minus the
// pending-write machinery.  The compile-time analysis guarantees the
// observable behaviour matches Run of the buffered form exactly,
// including which error surfaces first.
func (p *Prog) RunDirect(m Machine, ctx *Ctx) error {
	ctx.m = m
	if p.nTemps > 0 {
		if cap(ctx.temps) < p.nTemps {
			ctx.temps = make([]uint64, p.nTemps)
		} else {
			ctx.temps = ctx.temps[:p.nTemps]
			for i := range ctx.temps {
				ctx.temps[i] = 0
			}
		}
	}
	for _, op := range p.flat {
		if err := op(ctx); err != nil {
			return err
		}
	}
	return nil
}

// DirectOps exposes a direct-mode program as its flat operation list
// so a caller's inner loop can run the ops without the per-program
// RunDirect call (which shows up in emulator profiles).  Only
// temp-free direct programs qualify — their ops share one bound Ctx
// with no per-program reset; others return nil and must go through
// RunDirect.
func (p *Prog) DirectOps() []OpFunc {
	if !p.direct || p.nTemps > 0 {
		return nil
	}
	return p.flat
}

// Bind points ctx at m for subsequent DirectOps execution.  Run and
// RunDirect bind implicitly; this is only needed when driving ops
// directly.
func (ctx *Ctx) Bind(m Machine) { ctx.m = m }

// regLoc identifies one constant-index register in the write set.
type regLoc struct {
	file string
	idx  int64
}

// directAnalysis carries the per-step proof state for CompileDirect.
// The zero value starts a step with nothing written.
type directAnalysis struct {
	wReg      map[regLoc]bool // constant-index registers written
	wFile     map[string]bool // dynamic-index write: whole file dirty
	wMem      bool
	wPC       bool
	committed bool // some state write has been issued this step
	poisoned  bool // trap/special seen: nothing may follow in-step
	failed    bool

	// permuted marks a retry attempt lowering the step's ops in a
	// non-program order (see lowerStep).  The ops of a parallel step
	// commute only if distinct serializations are indistinguishable,
	// which needs two conditions beyond the usual rules: no two ops
	// write the same location (the last commit would win, and order is
	// no longer program order), and no op can fail at run time (an
	// error would surface in attempt order, not program order) — reads
	// of a constant register are the one failure source exempted,
	// since compiled semantics only name files the description defines.
	permuted bool
}

func (a *directAnalysis) resetStep() {
	a.wReg, a.wFile = nil, nil
	a.wMem, a.wPC, a.committed, a.poisoned = false, false, false, false
	a.permuted, a.failed = false, false
}

// gate is the common prologue of every note: once poisoned (a
// trap/special ran), any further activity in the step is unprovable.
func (a *directAnalysis) gate() bool {
	if a == nil || a.failed {
		return false
	}
	if a.poisoned {
		a.failed = true
		return false
	}
	return true
}

func (a *directAnalysis) regRead(file string, idx int64) {
	if !a.gate() {
		return
	}
	if a.wFile[file] || a.wReg[regLoc{file, idx}] {
		a.failed = true
	}
}

func (a *directAnalysis) regReadDyn(file string) {
	if !a.gate() {
		return
	}
	// A dynamic index may alias any written register of the file, and
	// its read can fail at run time (rule 2; fatal under permutation).
	if a.committed || a.wFile[file] || a.permuted {
		a.failed = true
		return
	}
	for loc := range a.wReg {
		if loc.file == file {
			a.failed = true
			return
		}
	}
}

func (a *directAnalysis) memRead() {
	if !a.gate() {
		return
	}
	// Memory reads can fault (rule 2) and may alias any earlier
	// memory write (rule 1); a fault is also an error whose order a
	// permuted serialization would not preserve.
	if a.committed || a.wMem || a.permuted {
		a.failed = true
	}
}

func (a *directAnalysis) pcRead() {
	if !a.gate() {
		return
	}
	if a.wPC {
		a.failed = true
	}
}

// mayErr marks an evaluation-time failure point (division, missing
// else arm): fatal once anything has committed, and fatal outright
// under permutation (error order must stay program order).
func (a *directAnalysis) mayErr() {
	if !a.gate() {
		return
	}
	if a.committed || a.permuted {
		a.failed = true
	}
}

func (a *directAnalysis) regWrite(file string, idx int64) {
	if !a.gate() {
		return
	}
	if a.permuted && (a.wFile[file] || a.wReg[regLoc{file, idx}]) {
		a.failed = true // reordered write-after-write: wrong last writer
		return
	}
	if a.wReg == nil {
		a.wReg = map[regLoc]bool{}
	}
	a.wReg[regLoc{file, idx}] = true
	a.committed = true
}

func (a *directAnalysis) regWriteDyn(file string) {
	if !a.gate() {
		return
	}
	if a.permuted {
		// May alias any other write of the file, and indexing can fail.
		a.failed = true
		return
	}
	if a.wFile == nil {
		a.wFile = map[string]bool{}
	}
	a.wFile[file] = true
	a.committed = true
}

func (a *directAnalysis) memWrite() {
	if !a.gate() {
		return
	}
	if a.permuted {
		// Stores may alias each other and can fail at run time;
		// neither ordering effect survives a reordered step.
		a.failed = true
		return
	}
	a.wMem = true
	a.committed = true
}

func (a *directAnalysis) pcWrite() {
	if !a.gate() {
		return
	}
	if a.permuted && a.wPC {
		a.failed = true
		return
	}
	a.wPC = true
	a.committed = true
}

// exclusive admits a trap or register-window special only as the
// step's sole operation (rule 3): it must see an untouched step and
// poisons the rest of it.
func (a *directAnalysis) exclusive() {
	if !a.gate() {
		return
	}
	if a.committed || a.wMem || a.wPC || len(a.wReg) > 0 || len(a.wFile) > 0 {
		a.failed = true
		return
	}
	a.poisoned = true
}
